// Benchmarks that regenerate every table and figure of the paper's
// evaluation, plus the ablations of DESIGN.md §5. Each benchmark runs a
// reduced-scale version of the corresponding experiment per iteration and
// reports the experiment's headline number as a custom metric, so
// `go test -bench=.` both times the harness and reproduces the shapes.
//
// cmd/indirectlab runs the same drivers at paper scale.
package repro_test

import (
	"context"
	"testing"

	"repro"
	"repro/internal/experiment"
	"repro/internal/relay"
)

// benchSeed keeps all benchmarks on one deterministic scenario.
const benchSeed = 42

func benchStudy(transfers int) *experiment.StudyResult {
	return experiment.RunStudy(experiment.StudyParams{
		Seed:               benchSeed,
		TransfersPerClient: transfers,
		Servers:            []string{"eBay"},
	})
}

// BenchmarkFig1ImprovementHistogram regenerates Figure 1: the improvement
// histogram over all clients (paper: avg 49%, median 37%, 12% penalties).
func BenchmarkFig1ImprovementHistogram(b *testing.B) {
	var avg, med float64
	for i := 0; i < b.N; i++ {
		f1 := experiment.Fig1(benchStudy(20))
		avg, med = f1.Summary.Mean, f1.Summary.Median
	}
	b.ReportMetric(avg, "avg-improvement-%")
	b.ReportMetric(med, "median-improvement-%")
}

// BenchmarkFig2PerClientHistograms regenerates Figure 2: per-client
// improvement histograms.
func BenchmarkFig2PerClientHistograms(b *testing.B) {
	study := benchStudy(20)
	b.ResetTimer()
	var clients int
	for i := 0; i < b.N; i++ {
		f2 := experiment.Fig2(study, nil)
		clients = len(f2.Clients)
	}
	b.ReportMetric(float64(clients), "clients")
}

// BenchmarkTable1PenaltyStats regenerates Table I: penalty statistics
// under the paper's two filters.
func BenchmarkTable1PenaltyStats(b *testing.B) {
	study := benchStudy(20)
	b.ResetTimer()
	var all, lowVar float64
	for i := 0; i < b.N; i++ {
		t1 := experiment.Table1(study)
		all, lowVar = t1.All.PenaltyPoints, t1.LowVar.PenaltyPoints
	}
	b.ReportMetric(all*100, "penalty-points-all-%")
	b.ReportMetric(lowVar*100, "penalty-points-lowvar-%")
}

func benchPairStudy() *experiment.PairStudyResult {
	return experiment.RunPairStudy(experiment.PairStudyParams{
		Seed:             benchSeed,
		TransfersPerPair: 6,
	})
}

// BenchmarkTable2TopIntermediates regenerates Table II: each client's top
// three intermediates by utilization.
func BenchmarkTable2TopIntermediates(b *testing.B) {
	var overlap int
	for i := 0; i < b.N; i++ {
		t2 := experiment.Table2(benchPairStudy())
		overlap = 0
		for _, c := range t2.OverlapCount {
			if c > overlap {
				overlap = c
			}
		}
	}
	b.ReportMetric(float64(overlap), "max-top3-overlap")
}

// BenchmarkFig3ImprovementVsThroughput regenerates Figure 3: the inverse
// relation between improvement and direct-path throughput.
func BenchmarkFig3ImprovementVsThroughput(b *testing.B) {
	ps := benchPairStudy()
	b.ResetTimer()
	var slope float64
	for i := 0; i < b.N; i++ {
		slope = experiment.Fig3(ps).MeanSlope
	}
	b.ReportMetric(slope, "mean-slope-%/Mbps")
}

// BenchmarkFig4IndirectOverTime regenerates Figure 4: indirect-path
// throughput stationarity.
func BenchmarkFig4IndirectOverTime(b *testing.B) {
	study := benchStudy(20)
	b.ResetTimer()
	var trend float64
	for i := 0; i < b.N; i++ {
		trend = experiment.Fig4(study, 5).MeanAbsSlopePct
	}
	b.ReportMetric(trend, "mean-abs-trend-%/hr")
}

// BenchmarkFig5UtilizationStats regenerates Figure 5: intermediate-node
// utilization statistics (paper: 45% average).
func BenchmarkFig5UtilizationStats(b *testing.B) {
	ps := benchPairStudy()
	b.ResetTimer()
	var overall float64
	for i := 0; i < b.N; i++ {
		overall = experiment.Fig5(ps).OverallAvg
	}
	b.ReportMetric(overall, "overall-utilization-%")
}

// BenchmarkFig6RandomSetSweep regenerates Figure 6: average improvement
// vs. random-set size (paper: levels off at ~10 of 35).
func BenchmarkFig6RandomSetSweep(b *testing.B) {
	var knee float64
	for i := 0; i < b.N; i++ {
		f6 := experiment.Fig6(experiment.Fig6Params{
			Seed:             benchSeed,
			SetSizes:         []int{1, 3, 10, 22, 35},
			TransfersPerSize: 30,
		})
		knee = 0
		for _, c := range f6.Curves {
			knee += float64(c.KneeSize())
		}
		knee /= float64(len(f6.Curves))
	}
	b.ReportMetric(knee, "mean-knee-size")
}

// BenchmarkTable3UtilizationVsImprovement regenerates Table III: the
// utilization↔improvement correlation for the Duke client.
func BenchmarkTable3UtilizationVsImprovement(b *testing.B) {
	var rho float64
	for i := 0; i < b.N; i++ {
		rho = experiment.Table3(experiment.Table3Params{
			Seed:   benchSeed,
			Rounds: 120,
		}).SpearmanR
	}
	b.ReportMetric(rho, "spearman-rho")
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationProbeSize sweeps the probe size x around the paper's
// 100 KB choice.
func BenchmarkAblationProbeSize(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		pts := experiment.AblateProbeSize(experiment.AblationParams{
			Seed: benchSeed, Rounds: 15,
		}, []int64{25_000, 100_000, 400_000})
		best = pts[1].AvgImprovement // the 100 KB point
	}
	b.ReportMetric(best, "avg-improvement-100KB-%")
}

// BenchmarkAblationSelectionRule compares first-finished and
// max-throughput probe selection.
func BenchmarkAblationSelectionRule(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		pts := experiment.AblateSelectionRule(experiment.AblationParams{
			Seed: benchSeed, Rounds: 15,
		})
		delta = pts[0].AvgImprovement - pts[1].AvgImprovement
	}
	b.ReportMetric(delta, "firstfinished-minus-maxtp-%")
}

// BenchmarkAblationWeightedSelection compares uniform and
// utilization-weighted candidate sets (the paper's Section 6 proposal).
func BenchmarkAblationWeightedSelection(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		pts := experiment.AblateWeightedPolicy(experiment.AblationParams{
			Seed: benchSeed, Rounds: 40,
		}, 5)
		delta = pts[1].AvgImprovement - pts[0].AvgImprovement
	}
	b.ReportMetric(delta, "weighted-minus-uniform-%")
}

// BenchmarkAblationSharedBottleneck measures how shared client-access
// bottlenecks erode indirect-routing gains.
func BenchmarkAblationSharedBottleneck(b *testing.B) {
	var erosion float64
	for i := 0; i < b.N; i++ {
		pts := experiment.AblateSharedBottleneck(experiment.AblationParams{
			Seed: benchSeed, Rounds: 15,
		}, []float64{0.0001, 0.999})
		erosion = pts[0].AvgImprovement - pts[1].AvgImprovement
	}
	b.ReportMetric(erosion, "improvement-erosion-%")
}

// BenchmarkExtensionAdaptiveDownloader measures the adaptive-downloader
// comparison (the paper's closing variability-reduction suggestion).
func BenchmarkExtensionAdaptiveDownloader(b *testing.B) {
	var dcv float64
	for i := 0; i < b.N; i++ {
		results := experiment.RunAdaptive(experiment.AdaptiveParams{
			Seed: benchSeed, Rounds: 20,
		})
		var one, ad float64
		for _, r := range results {
			one += r.OneShotCV
			ad += r.AdaptiveCV
		}
		if n := float64(len(results)); n > 0 {
			dcv = (one - ad) / n
		}
	}
	b.ReportMetric(dcv, "cv-reduction")
}

// BenchmarkExtensionMonitoredSelection compares in-band probing with
// RON-style background monitoring.
func BenchmarkExtensionMonitoredSelection(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		results := experiment.RunMonitored(experiment.MonitoredParams{
			Seed: benchSeed, Rounds: 20,
		})
		var probing, monitored float64
		for _, r := range results {
			probing += r.ProbingAvg
			monitored += r.MonitoredAvg
		}
		if n := float64(len(results)); n > 0 {
			delta = (probing - monitored) / n
		}
	}
	b.ReportMetric(delta, "probing-minus-monitored-%")
}

// BenchmarkExtensionMultipathStriping compares single-path selection with
// Bullet-style multipath striping.
func BenchmarkExtensionMultipathStriping(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		results := experiment.RunMultipath(experiment.MultipathParams{
			Seed: benchSeed, Rounds: 15,
		})
		var sel, str float64
		for _, r := range results {
			sel += r.SelectAvg
			str += r.StripeAvg
		}
		if n := float64(len(results)); n > 0 {
			delta = (str - sel) / n
		}
	}
	b.ReportMetric(delta, "striping-minus-selection-%")
}

// BenchmarkClientLoopbackStream times a full facade-level operation
// (probe, select, stream the remainder) against a real loopback origin,
// with content verification on. Its allocation figure is the streaming
// pipeline's end-to-end contract: per-operation allocations must not
// scale with object size, because every body flows through a recycled
// fixed-size buffer rather than being materialized.
func BenchmarkClientLoopbackStream(b *testing.B) {
	origin := relay.NewOrigin()
	origin.Put("bench.bin", 8<<20)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ol.Close()

	tr := &repro.RealTransport{
		Servers: map[string]string{"origin": ol.Addr().String()},
		Verify:  true,
	}
	c := repro.New(tr, repro.WithProbeBytes(100_000))
	defer tr.Close()
	obj := repro.Object{Server: "origin", Name: "bench.bin", Size: 8 << 20}

	b.SetBytes(obj.Size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := c.SelectAndFetch(context.Background(), obj, nil); out.Err != nil {
			b.Fatal(out.Err)
		}
	}
}
