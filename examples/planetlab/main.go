// planetlab: a scaled-down run of the paper's Section 3 measurement
// campaign — all 22 international clients downloading from eBay with a
// statically chosen good intermediate — followed by the Figure 1 and
// Table I reports.
//
//	go run ./examples/planetlab
package main

import (
	"fmt"
	"os"

	"repro/internal/experiment"
	"repro/internal/report"
)

func main() {
	fmt.Println("running 22 clients x 30 transfers against eBay (simulated)...")
	study := experiment.RunStudy(experiment.StudyParams{
		Seed:               2007,
		TransfersPerClient: 30,
		Servers:            []string{"eBay"},
	})

	report.Fig1(os.Stdout, experiment.Fig1(study))
	fmt.Println()
	report.Table1(os.Stdout, experiment.Table1(study))
	fmt.Println()
	report.Fig4(os.Stdout, experiment.Fig4(study, 5))
}
