// realrelay: the whole system over real TCP on loopback. It starts an
// origin server and three relay daemons in-process, shapes each path with
// a token-bucket emulator (direct 3 Mb/s; relays at 12, 2, and 6 Mb/s),
// then runs the selecting client five times and shows which path wins.
//
//	go run ./examples/realrelay
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/realnet"
	"repro/internal/relay"
	"repro/internal/shaper"
)

func main() {
	// Origin with a 1.5 MB object.
	origin := relay.NewOrigin()
	const objSize = 1_500_000
	origin.Put("large.bin", objSize)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ol.Close()

	// Three relay daemons.
	relays := map[string]*relay.Relay{"fast": {}, "slow": {}, "mid": {}}
	addrs := map[string]string{}
	for name, r := range relays {
		l, err := r.ServeAddr("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer l.Close()
		addrs[name] = l.Addr().String()
	}

	// Path emulation: per-target download rates + latency.
	d := shaper.NewDialer()
	d.SetProfile(ol.Addr().String(), shaper.PathProfile{DownloadBps: 3e6, Latency: 40 * time.Millisecond})
	d.SetProfile(addrs["fast"], shaper.PathProfile{DownloadBps: 12e6, Latency: 30 * time.Millisecond})
	d.SetProfile(addrs["slow"], shaper.PathProfile{DownloadBps: 2e6, Latency: 60 * time.Millisecond})
	d.SetProfile(addrs["mid"], shaper.PathProfile{DownloadBps: 6e6, Latency: 35 * time.Millisecond})

	tr := &realnet.Transport{
		Servers: map[string]string{"origin": ol.Addr().String()},
		Relays: map[string]string{
			"fast": addrs["fast"],
			"slow": addrs["slow"],
			"mid":  addrs["mid"],
		},
		Dial:   d.Dial,
		Verify: true,
	}

	obj := core.Object{Server: "origin", Name: "large.bin", Size: objSize}
	fmt.Printf("downloading %d bytes, direct at 3 Mb/s; relays fast=12, mid=6, slow=2 Mb/s\n\n", objSize)
	for i := 0; i < 5; i++ {
		out := core.SelectAndFetch(tr, obj, []string{"fast", "slow", "mid"},
			core.Config{ProbeBytes: 64_000})
		if out.Err != nil {
			log.Fatalf("round %d: %v", i, out.Err)
		}
		fmt.Printf("round %d: selected %-10s overall %5.2f Mb/s (probe phase %.2fs, total %.2fs)\n",
			i+1, out.Selected, out.Throughput()/1e6, out.ProbeEnd-out.Start, out.Duration())
	}
	fmt.Printf("\nrelay accounting: ")
	for name, r := range relays {
		fmt.Printf("%s=%dB ", name, r.BytesRelayed.Load())
	}
	fmt.Println()
}
