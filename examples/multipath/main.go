// multipath: Bullet-style striping over real TCP on loopback. An origin
// and two relays serve a 2 MB object over shaped paths (direct 3 Mb/s,
// relays 4 and 5 Mb/s); the MultipathDownloader pulls chunks over all
// three concurrently with work stealing and aggregates their bandwidth —
// then the same object is fetched with the paper's single-path selection
// for comparison.
//
//	go run ./examples/multipath
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/relay"
	"repro/internal/shaper"
)

func main() {
	origin := relay.NewOrigin()
	const objSize = 2_000_000
	origin.Put("large.bin", objSize)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ol.Close()

	relays := map[string]string{}
	for _, name := range []string{"r1", "r2"} {
		r := &relay.Relay{}
		l, err := r.ServeAddr("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer l.Close()
		relays[name] = l.Addr().String()
	}

	d := shaper.NewDialer()
	d.SetProfile(ol.Addr().String(), shaper.PathProfile{DownloadBps: 3e6})
	d.SetProfile(relays["r1"], shaper.PathProfile{DownloadBps: 4e6})
	d.SetProfile(relays["r2"], shaper.PathProfile{DownloadBps: 5e6})

	tr := &repro.RealTransport{
		Servers: map[string]string{"origin": ol.Addr().String()},
		Relays:  relays,
		Dial:    d.Dial,
		Verify:  true,
	}
	defer tr.Close()
	obj := repro.Object{Server: "origin", Name: "large.bin", Size: objSize}
	cands := []string{"r1", "r2"}

	fmt.Println("paths: direct 3 Mb/s, r1 4 Mb/s, r2 5 Mb/s")

	sel := repro.SelectAndFetch(tr, obj, cands, repro.Config{ProbeBytes: 150_000})
	if sel.Err != nil {
		log.Fatal(sel.Err)
	}
	fmt.Printf("single-path selection: chose %s, %.2f Mb/s overall\n",
		sel.Selected, sel.Throughput()/1e6)

	mp := &repro.MultipathDownloader{Transport: tr, ChunkBytes: 250_000}
	res, err := mp.Download(obj, cands)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multipath striping:    %.2f Mb/s aggregate\n", res.Throughput()/1e6)
	for _, s := range res.Shares {
		fmt.Printf("  %-10s %2d chunks, %7d bytes\n", s.Path, s.Chunks, s.Bytes)
	}
}
