// adaptive: the Section 4 intermediate-node selection policies on one
// client — how large must a uniform random candidate set be, and what
// does utilization-weighted sampling (the paper's Section 6 proposal)
// buy over it?
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"os"

	"repro/internal/experiment"
	"repro/internal/report"
)

func main() {
	fmt.Println("sweeping random-set size for Duke over 35 intermediates (simulated)...")
	f6 := experiment.Fig6(experiment.Fig6Params{
		Seed:             2007,
		Clients:          []string{"Duke (client)"},
		SetSizes:         []int{1, 2, 4, 6, 10, 16, 24, 35},
		TransfersPerSize: 80,
	})
	report.Fig6(os.Stdout, f6)

	fmt.Println("\ncomparing uniform vs utilization-weighted candidate sets (k=5)...")
	pts := experiment.AblateWeightedPolicy(experiment.AblationParams{
		Seed:    2007,
		Clients: []string{"Duke (client)"},
		Rounds:  120,
	}, 5)
	report.Ablation(os.Stdout, "uniform vs weighted random set", pts)
}
