// Quickstart: one simulated client selecting between the direct path and
// two indirect paths for a single 4 MB download, driven through the
// repro.Client facade.
//
// It builds a PlanetLab-like scenario, instantiates the client's network,
// probes all three paths with the paper's 100 KB range request, fetches
// the remainder over the winner, and prints what happened. The same
// Client API drives real TCP: swap the simulated world for a
// repro.RealTransport and add repro.WithTimeout / repro.WithRetry.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"repro"
	"repro/internal/httpsim"
	"repro/internal/randx"
	"repro/internal/simnet"
	"repro/internal/topo"
)

func main() {
	// A deterministic scenario: 22 international clients, 21 US
	// intermediates, 4 origin servers, as in the paper's Tables IV/V.
	scen := topo.NewScenario(topo.Params{Seed: 2007})
	client := scen.FindClient("Korea") // a Low-throughput client
	server := scen.FindServer("eBay")
	inters := []*topo.Node{
		scen.FindIntermediate("Berkeley"),
		scen.FindIntermediate("Princeton"),
	}

	// Bind the client's links (with stochastic capacity drivers) to a
	// fresh virtual-time network.
	eng := simnet.NewEngine()
	net := simnet.NewNetwork(eng)
	inst := scen.Instantiate(net, randx.New(1), client, []*topo.Node{server}, inters)
	world := httpsim.NewWorld(inst, []*topo.Node{server}, inters)
	world.Put("eBay", "large.bin", 4_000_000)
	inst.Warmup(300) // let link conditions decorrelate from their means

	// The facade binds the transport to a probe/selection configuration.
	// The simulator runs in virtual time, so wall-clock options like
	// WithTimeout are omitted here; on a RealTransport they bound the
	// transfer and cancel its connections. A Tracer attached with
	// WithObserver records the selection lifecycle event by event (the
	// client's built-in Metrics collector aggregates regardless).
	trace := repro.NewTracer(64)
	c := repro.New(world,
		repro.WithProbeBytes(repro.DefaultProbeBytes),
		repro.WithObserver(trace))

	obj := repro.Object{Server: "eBay", Name: "large.bin", Size: 4_000_000}
	out := c.SelectAndFetch(context.Background(), obj, []string{"Berkeley", "Princeton"})
	if out.Err != nil {
		panic(out.Err)
	}

	fmt.Printf("client %s downloading %d bytes from %s\n", client.Name, obj.Size, server.Name)
	fmt.Println("probe results (first 100 KB on every path):")
	for _, p := range out.Probes {
		fmt.Printf("  %-16s %6.2f Mb/s (finished at t=%.2fs)\n",
			p.Path, p.Throughput()/1e6, p.End)
	}
	fmt.Printf("selected path:    %s\n", out.Selected)
	fmt.Printf("total transfer:   %.1fs end to end -> %.2f Mb/s\n",
		out.Duration(), out.Throughput()/1e6)
	fmt.Printf("probing overhead: %.2fs of the total\n", out.ProbeEnd-out.Start)

	// What the observability layer saw: the traced lifecycle and the
	// aggregated per-path counters (utilization = selected/probed).
	fmt.Println("\nevent trace:")
	for _, e := range trace.Events() {
		fmt.Printf("  t=%6.2fs %-14s %s\n", e.Time, e.Kind, e.Path.Label())
	}
	snap := c.Snapshot()
	fmt.Println("metrics:")
	for _, label := range snap.PathLabels() {
		ps := snap.Paths[label]
		fmt.Printf("  %-16s probed %d, selected %d (utilization %.0f%%)\n",
			label, ps.Probed, ps.Selected, 100*ps.Utilization)
	}
}
