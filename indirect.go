// Package repro is an open-source reproduction of "A Performance Analysis
// of Indirect Routing" (Opos, Ramabhadran, Terry, Pasquale, Snoeren,
// Vahdat — IPPS 2007): a library for throughput-seeking indirect routing,
// the wide-area network simulator its evaluation runs on, and a real TCP
// relay stack for deployment.
//
// The root package is a facade over the implementation packages:
//
//   - the selection engine (probe, race, select, fetch) — internal/core
//   - the virtual-time network simulator — internal/simnet, internal/topo,
//     internal/httpsim, internal/tcpmodel
//   - the real TCP origin/relay daemons and transport — internal/relay,
//     internal/realnet, internal/httpx, internal/shaper
//   - the paper's evaluation drivers — internal/experiment,
//     internal/report
//
// # Quick use (real network)
//
//	tr := &repro.RealTransport{
//	    Servers: map[string]string{"origin": "10.0.0.1:8080"},
//	    Relays:  map[string]string{"campus": "10.0.0.2:8081"},
//	}
//	c := repro.New(tr,
//	    repro.WithTimeout(30*time.Second),
//	    repro.WithRetry(2, 200*time.Millisecond))
//	obj := repro.Object{Server: "origin", Name: "large.bin", Size: 4_000_000}
//	out := c.SelectAndFetch(ctx, obj, []string{"campus"})
//	fmt.Println(out.Selected, out.Throughput())
//
// Failures carry typed sentinels: errors.Is(out.Err, repro.ErrProbeTimeout),
// repro.ErrCanceled, repro.ErrAllPathsFailed.
//
// See the examples directory for simulated and loopback-TCP walkthroughs,
// and cmd/indirectlab for the paper's full evaluation.
package repro

import (
	"context"

	"repro/internal/core"
	"repro/internal/objcache"
	"repro/internal/obs"
	"repro/internal/realnet"
)

// Core selection-engine types, re-exported for downstream users.
type (
	// Object names a downloadable resource of known size.
	Object = core.Object
	// Path identifies the direct route or a relay by name.
	Path = core.Path
	// Config parameterizes probing and selection.
	Config = core.Config
	// Outcome describes one select-and-fetch operation.
	Outcome = core.Outcome
	// Transport moves object ranges over paths (simulated or real).
	Transport = core.Transport
	// Handle is an in-flight transfer.
	Handle = core.Handle
	// ProbeResult is a probe-phase transfer result.
	ProbeResult = core.ProbeResult
	// FetchResult is a completed transfer result.
	FetchResult = core.FetchResult
	// Rule selects the probe winner.
	Rule = core.Rule
	// Policy chooses candidate intermediates per transfer.
	Policy = core.Policy
	// Tracker accumulates per-intermediate utilization statistics.
	Tracker = core.Tracker

	// StaticPolicy always proposes one fixed intermediate.
	StaticPolicy = core.StaticPolicy
	// UniformRandomPolicy proposes a uniform random subset of size K.
	UniformRandomPolicy = core.UniformRandomPolicy
	// WeightedRandomPolicy samples candidates by their utilization.
	WeightedRandomPolicy = core.WeightedRandomPolicy

	// Downloader fetches adaptively: segments, periodic re-races,
	// failover.
	Downloader = core.Downloader
	// DownloadResult summarizes an adaptive download.
	DownloadResult = core.DownloadResult
	// Segment is one contiguous fetch within an adaptive download.
	Segment = core.Segment

	// Monitor keeps RON-style background path estimates for probe-free
	// selection.
	Monitor = core.Monitor

	// MultipathDownloader stripes an object across paths concurrently.
	MultipathDownloader = core.MultipathDownloader
	// MultipathResult summarizes a striped download.
	MultipathResult = core.MultipathResult
	// PathShare is one path's contribution to a striped download.
	PathShare = core.PathShare

	// RealTransport implements Transport over live TCP via relay daemons.
	RealTransport = realnet.Transport
	// RealPoolStats is a point-in-time view of a RealTransport's
	// connection-pool counters (RealTransport.PoolStats).
	RealPoolStats = realnet.PoolStats
	// CacheStats is a point-in-time view of an object cache's counters
	// and byte gauges (Client.CacheStats, RealTransport.CacheStats, and
	// the relay daemon's /debug/cache page share this shape).
	CacheStats = objcache.Stats

	// Observer receives selection-lifecycle events (attach with
	// WithObserver or Config.Observer).
	Observer = obs.Observer
	// BaseObserver is a no-op Observer for embedding.
	BaseObserver = obs.Base
	// Metrics aggregates events into counters, per-path utilization
	// tallies, and histograms.
	Metrics = obs.Metrics
	// MetricsSnapshot is a point-in-time view of a Metrics collector.
	MetricsSnapshot = obs.Snapshot
	// PathMetrics is one route's aggregated counters in a snapshot.
	PathMetrics = obs.PathSnapshot
	// Tracer retains the most recent events in a bounded ring buffer.
	Tracer = obs.Tracer
	// TraceEvent is the normalized, JSON-ready form of any event.
	TraceEvent = obs.Event
	// EventKind names a trace event's type.
	EventKind = obs.Kind
	// PathID identifies what an event was about (server, object, route).
	PathID = obs.PathID
	// ErrClass buckets transfer errors for observability.
	ErrClass = obs.ErrClass

	// Typed observer-callback payloads.
	ProbeStartEvent    = obs.ProbeStart
	ProbeEndEvent      = obs.ProbeEnd
	ProbeCancelEvent   = obs.ProbeCancel
	SelectionEvent     = obs.Selection
	TransferStartEvent = obs.TransferStart
	TransferEndEvent   = obs.TransferEnd
	RetryEvent         = obs.Retry
	AbortEvent         = obs.Abort

	// ProgressEvent reports payload bytes flowing through a streaming
	// transfer, one event per buffer chunk.
	ProgressEvent = obs.Progress
	// PoolEvent reports a connection-pool transition on one route.
	PoolEvent = obs.Pool
	// PoolOp names a connection-pool transition.
	PoolOp = obs.PoolOp

	// ProgressObserver is the optional Observer extension for
	// byte-level transfer progress; implement it alongside Observer
	// (embed BaseObserver for the rest) to receive ProgressEvents.
	ProgressObserver = obs.ProgressObserver
	// PoolObserver is the optional Observer extension for
	// connection-pool lifecycle events.
	PoolObserver = obs.PoolObserver

	// Distributed-tracing types (attach a collector with WithSpans).
	//
	// TraceID identifies one end-to-end operation across processes.
	TraceID = obs.TraceID
	// SpanID identifies one span within a trace.
	SpanID = obs.SpanID
	// SpanContext is the propagated (trace, span) pair.
	SpanContext = obs.SpanContext
	// Span is one completed timed phase of one request on one service.
	Span = obs.Span
	// SpanCollector buffers completed spans in a bounded ring.
	SpanCollector = obs.SpanCollector
	// TraceNode is one span plus its children in a stitched trace tree.
	TraceNode = obs.TraceNode
	// HistogramSnapshot is a point-in-time histogram copy with quantiles.
	HistogramSnapshot = obs.HistogramSnapshot

	// Path-health telemetry types (attach a monitor with
	// WithHealthMonitor).
	//
	// HealthMonitor folds transfer outcomes into per-path rolling windows
	// and keeps a damped health state per path.
	HealthMonitor = obs.HealthMonitor
	// HealthConfig parameterizes a HealthMonitor (zero value = defaults).
	HealthConfig = obs.HealthConfig
	// HealthState is a path's damped condition.
	HealthState = obs.HealthState
	// HealthSnapshot is a monitor's full per-path view at one instant.
	HealthSnapshot = obs.HealthSnapshot
	// PathHealthInfo is one path's point-in-time health view in a
	// snapshot.
	PathHealthInfo = obs.PathHealth
	// HealthTransition is one committed health-state change.
	HealthTransition = obs.HealthTransition

	// SLO burn-window types.
	//
	// SLOTracker accumulates request outcomes against availability and
	// latency objectives over fast/slow burn windows.
	SLOTracker = obs.SLOTracker
	// SLOConfig declares the objectives (zero value = defaults).
	SLOConfig = obs.SLOConfig
	// SLOSnapshot is a tracker's full state at one instant.
	SLOSnapshot = obs.SLOSnapshot
)

// Observability error classes.
const (
	ClassOK       = obs.ClassOK
	ClassCanceled = obs.ClassCanceled
	ClassTimeout  = obs.ClassTimeout
	ClassStatus   = obs.ClassStatus
	ClassFailed   = obs.ClassFailed
)

// Connection-pool transitions carried by PoolEvent.
const (
	PoolReuse   = obs.PoolReuse
	PoolMiss    = obs.PoolMiss
	PoolPark    = obs.PoolPark
	PoolEvict   = obs.PoolEvict
	PoolDiscard = obs.PoolDiscard
)

// Damped path-health states, best to worst.
const (
	HealthUnknown  = obs.HealthUnknown
	HealthHealthy  = obs.HealthHealthy
	HealthDegraded = obs.HealthDegraded
	HealthDown     = obs.HealthDown
)

// Trace event kinds, one per Observer callback.
const (
	KindProbeStart    = obs.KindProbeStart
	KindProbeEnd      = obs.KindProbeEnd
	KindProbeCancel   = obs.KindProbeCancel
	KindSelection     = obs.KindSelection
	KindTransferStart = obs.KindTransferStart
	KindTransferEnd   = obs.KindTransferEnd
	KindRetry         = obs.KindRetry
	KindAbort         = obs.KindAbort
)

// NewMetrics returns an empty standalone metrics collector (every Client
// already carries one; this is for wiring into Config.Observer or core
// downloaders directly).
func NewMetrics() *Metrics { return obs.NewMetrics() }

// NewTracer returns a tracer retaining the last capacity events
// (a default of 1024 when capacity <= 0).
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// MultiObserver fans events out to several observers; nil entries are
// skipped.
func MultiObserver(observers ...Observer) Observer { return obs.Multi(observers...) }

// NewSpanCollector returns a span collector retaining the last capacity
// spans (a default of 4096 when capacity <= 0). Wire it into a client
// with WithSpans, or into daemons via RelaySpans/OriginSpans fields.
func NewSpanCollector(capacity int) *SpanCollector { return obs.NewSpanCollector(capacity) }

// NewHealthMonitor returns a path-health monitor with cfg's gaps filled
// by defaults (60 s window, 12 buckets, 2-evaluation hysteresis). Wire
// it into a client with WithHealthMonitor, or feed daemons through the
// Relay/Origin Health fields.
func NewHealthMonitor(cfg HealthConfig) *HealthMonitor { return obs.NewHealthMonitor(cfg) }

// NewSLOTracker returns an SLO burn-window tracker with cfg's gaps
// filled by defaults (99.5% availability, 95% under 1 s, 5 m/1 h
// windows). Set it as a HealthConfig.SLO so health folds feed it.
func NewSLOTracker(cfg SLOConfig) *SLOTracker { return obs.NewSLOTracker(cfg) }

// HealthWallClock returns a wall clock (seconds since now) for
// HealthConfig.Clock in long-running processes; leave Clock nil to run
// on event time (deterministic with the simulator).
func HealthWallClock() func() float64 { return obs.WallClock() }

// TraceIDs returns the distinct trace IDs present in spans, first-seen
// order.
func TraceIDs(spans []Span) []TraceID { return obs.TraceIDs(spans) }

// StitchTrace assembles one trace's spans — merged from any number of
// processes' archives — into parent-child trees.
func StitchTrace(trace TraceID, spans []Span) []*TraceNode { return obs.StitchTrace(trace, spans) }

// FormatTrace renders stitched trees as an indented timeline.
func FormatTrace(trace TraceID, roots []*TraceNode) string { return obs.FormatTrace(trace, roots) }

// ErrClassOf buckets an error into the observability taxonomy.
func ErrClassOf(err error) ErrClass { return core.ErrClassOf(err) }

// Selection rules.
const (
	FirstFinished = core.FirstFinished
	MaxThroughput = core.MaxThroughput
)

// Direct is the Path.Via value for the default (non-relayed) route.
const Direct = core.Direct

// DefaultProbeBytes is the paper's probe size x (100 KB).
const DefaultProbeBytes = core.DefaultProbeBytes

// SelectAndFetch probes the direct path and all candidates, selects the
// winner, and fetches the remainder of obj over it.
//
// Deprecated: use [New] and [Client.SelectAndFetch], which take a
// context and support per-operation timeouts and retry. This wrapper
// runs a one-off Client under context.Background.
func SelectAndFetch(t Transport, obj Object, candidates []string, cfg Config) Outcome {
	return New(t, WithConfig(cfg)).SelectAndFetch(context.Background(), obj, candidates)
}

// Probe races an x-byte range request on the direct path and every
// candidate concurrently.
//
// Deprecated: use [Client.Probe], which takes a context and carries the
// probe size in the client's configuration.
func Probe(t Transport, obj Object, x int64, candidates []string) []ProbeResult {
	return New(t, WithProbeBytes(x)).Probe(context.Background(), obj, candidates)
}

// ProbeSequential probes candidates one at a time (contention-free).
//
// Deprecated: use [Client.ProbeSequential], which takes a context and
// carries the probe size in the client's configuration.
func ProbeSequential(t Transport, obj Object, x int64, candidates []string) []ProbeResult {
	return New(t, WithProbeBytes(x)).ProbeSequential(context.Background(), obj, candidates)
}

// Choose applies the selection rule to probe results.
func Choose(probes []ProbeResult, rule Rule) Path {
	return core.Choose(probes, rule)
}

// Improvement returns the paper's improvement metric in percent.
func Improvement(selected, direct float64) float64 {
	return core.Improvement(selected, direct)
}

// Penalty expresses a slowdown as the paper's penalty metric in percent.
func Penalty(selected, direct float64) float64 {
	return core.Penalty(selected, direct)
}

// NewTracker returns an empty utilization tracker.
func NewTracker() *Tracker { return core.NewTracker() }

// NewMonitor returns an empty background path monitor.
func NewMonitor() *Monitor { return core.NewMonitor() }

// SelectMonitored performs a probe-free transfer using the monitor's
// table, feeding the outcome back into it.
//
// Deprecated: use [Client.SelectMonitored], which takes a context.
func SelectMonitored(t Transport, obj Object, candidates []string, m *Monitor) Outcome {
	return New(t).SelectMonitored(context.Background(), obj, candidates, m)
}
