package repro_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro"
	"repro/internal/httpsim"
	"repro/internal/randx"
	"repro/internal/relay"
	"repro/internal/shaper"
	"repro/internal/simnet"
	"repro/internal/topo"
)

// TestClientSnapshotMatchesOutcomes is the acceptance check for the
// observability layer on a real loopback network: a Client with
// WithObserver runs several select-and-fetch operations, and the
// metrics snapshot's selection, cancellation, and per-relay
// utilization counts must exactly match what the returned Outcomes
// say happened.
func TestClientSnapshotMatchesOutcomes(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("large.bin", 600_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()

	relays := map[string]string{}
	for _, name := range []string{"campus", "isp"} {
		r := &relay.Relay{}
		rl, err := r.ServeAddr("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer rl.Close()
		relays[name] = rl.Addr().String()
	}

	d := shaper.NewDialer()
	d.SetProfile(ol.Addr().String(), shaper.PathProfile{DownloadBps: 2e6})
	d.SetProfile(relays["campus"], shaper.PathProfile{DownloadBps: 10e6})
	d.SetProfile(relays["isp"], shaper.PathProfile{DownloadBps: 4e6})

	tr := &repro.RealTransport{
		Servers: map[string]string{"origin": ol.Addr().String()},
		Relays:  relays,
		Dial:    d.Dial,
		Verify:  true,
	}
	defer tr.Close()

	trace := repro.NewTracer(256)
	client := repro.New(tr,
		repro.WithProbeBytes(150_000),
		repro.WithObserver(trace))
	tr.Observer = client.Observer()

	obj := repro.Object{Server: "origin", Name: "large.bin", Size: 600_000}
	cands := []string{"campus", "isp"}

	const runs = 3
	indirect, canceled := 0, 0
	selectedBy := map[string]int{}
	for i := 0; i < runs; i++ {
		out := client.SelectAndFetch(context.Background(), obj, cands)
		if out.Err != nil {
			t.Fatalf("run %d: %v", i, out.Err)
		}
		if out.SelectedIndirect() {
			indirect++
		}
		label := "direct"
		if !out.Selected.IsDirect() {
			label = out.Selected.Via
		}
		selectedBy[label]++
		for _, p := range out.Probes {
			if errors.Is(p.Err, repro.ErrCanceled) {
				canceled++
			}
		}
	}

	s := client.Snapshot()
	if s.Selections != runs || s.SelectionsIndirect != int64(indirect) {
		t.Fatalf("selections = %d (%d indirect), outcomes say %d (%d)",
			s.Selections, s.SelectionsIndirect, runs, indirect)
	}
	if s.ProbesStarted != runs*3 || s.ProbesFinished != runs*3 {
		t.Fatalf("probes = %d started / %d finished, want %d", s.ProbesStarted, s.ProbesFinished, runs*3)
	}
	if s.ProbesCanceled != int64(canceled) {
		t.Fatalf("probes canceled = %d, outcomes say %d", s.ProbesCanceled, canceled)
	}
	for _, label := range []string{"direct", "campus", "isp"} {
		ps, ok := s.Paths[label]
		if !ok || ps.Probed != runs {
			t.Fatalf("path %s probed %d times, want %d (%+v)", label, ps.Probed, runs, s.Paths)
		}
		if ps.Selected != int64(selectedBy[label]) {
			t.Fatalf("path %s selected %d times, outcomes say %d", label, ps.Selected, selectedBy[label])
		}
		if got, want := ps.Utilization, float64(selectedBy[label])/runs; got != want {
			t.Fatalf("path %s utilization = %v, want %v", label, got, want)
		}
	}
	// No retries happened, and the transport never aborted more
	// connections than the engine canceled probes.
	if s.Retries != 0 {
		t.Fatalf("unexpected retries: %d", s.Retries)
	}
	if s.Aborts > s.ProbesCanceled {
		t.Fatalf("aborts %d exceed canceled probes %d", s.Aborts, s.ProbesCanceled)
	}

	// The tracer attached via WithObserver saw the same stream.
	sel := 0
	for _, e := range trace.Events() {
		if e.Kind == repro.KindSelection {
			sel++
		}
	}
	if sel != runs {
		t.Fatalf("tracer saw %d selections, want %d", sel, runs)
	}
}

// simOutcome builds the quickstart's deterministic simulated world and
// runs one select-and-fetch through it, optionally observed.
func simOutcome(o repro.Observer) repro.Outcome {
	scen := topo.NewScenario(topo.Params{Seed: 2007})
	client := scen.FindClient("Korea")
	server := scen.FindServer("eBay")
	inters := []*topo.Node{
		scen.FindIntermediate("Berkeley"),
		scen.FindIntermediate("Princeton"),
	}
	eng := simnet.NewEngine()
	net := simnet.NewNetwork(eng)
	inst := scen.Instantiate(net, randx.New(1), client, []*topo.Node{server}, inters)
	world := httpsim.NewWorld(inst, []*topo.Node{server}, inters)
	world.Put("eBay", "large.bin", 4_000_000)
	inst.Warmup(300)

	obj := repro.Object{Server: "eBay", Name: "large.bin", Size: 4_000_000}
	cfg := repro.Config{ProbeBytes: repro.DefaultProbeBytes, Observer: o}
	return repro.SelectAndFetch(world, obj, []string{"Berkeley", "Princeton"}, cfg)
}

// TestSimulatorDeterministicUnderObservation asserts observation is
// passive: two identically seeded virtual-time runs — one unobserved,
// one with a Metrics collector and a Tracer attached — produce
// byte-identical outcomes.
func TestSimulatorDeterministicUnderObservation(t *testing.T) {
	bare := simOutcome(nil)
	m := repro.NewMetrics()
	trace := repro.NewTracer(64)
	observed := simOutcome(repro.MultiObserver(m, trace))

	if got, want := fmt.Sprintf("%+v", observed), fmt.Sprintf("%+v", bare); got != want {
		t.Fatalf("observed run diverged from bare run:\n got %s\nwant %s", got, want)
	}
	if bare.Err != nil {
		t.Fatalf("sim run failed: %v", bare.Err)
	}
	// And the observation actually happened.
	if s := m.Snapshot(); s.Selections != 1 || s.ProbesStarted != 3 {
		t.Fatalf("metrics missed the run: %+v", s)
	}
	if len(trace.Events()) == 0 {
		t.Fatal("tracer recorded nothing")
	}
	// Virtual-time stamps in the trace are exact simulator times, not
	// wall-clock: the first probe starts at the post-warmup instant.
	if ev := trace.Events()[0]; ev.Kind != repro.KindProbeStart || ev.Time < 300 {
		t.Fatalf("first event = %+v, want a probe-start at t>=300s virtual", ev)
	}
}
