package repro_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro"
	"repro/internal/registry"
)

// The discovery facade end to end: a live registry server, relays
// registered through the exported client, and DiscoverRelays returning
// the candidate map a RealTransport wants — healthiest first, down
// entries excluded.
func TestDiscoverRelaysFacade(t *testing.T) {
	s := &registry.Server{}
	l, err := s.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer l.Close()

	ctx := context.Background()
	c := repro.NewRegistryClient(l.Addr().String(),
		repro.WithRegistryTimeout(2*time.Second),
		repro.WithRegistryPooledConn())
	defer c.Close()

	for _, r := range []struct {
		name   string
		addr   string
		health float64
	}{
		{"warm", "10.0.0.1:8081", 0.9},
		{"cold", "10.0.0.2:8081", 0.2},
		{"mid", "10.0.0.3:8081", 0.5},
	} {
		if err := c.RegisterHealth(ctx, r.name, r.addr, time.Minute, r.health); err != nil {
			t.Fatalf("register %s: %v", r.name, err)
		}
	}

	relays, err := repro.DiscoverRelays(ctx, c, 2)
	if err != nil {
		t.Fatalf("discover: %v", err)
	}
	if len(relays) != 2 {
		t.Fatalf("got %d relays, want 2: %v", len(relays), relays)
	}
	if relays["warm"] != "10.0.0.1:8081" || relays["mid"] != "10.0.0.3:8081" {
		t.Fatalf("top-2 should be warm+mid, got %v", relays)
	}
}

// The exported error values must survive the facade round trip so
// downstream callers can errors.Is without importing internals.
func TestRegistryFacadeErrors(t *testing.T) {
	c := repro.NewRegistryClient("127.0.0.1:1", repro.WithRegistryTimeout(200*time.Millisecond))
	defer c.Close()
	_, err := repro.DiscoverRelays(context.Background(), c, 0)
	if !errors.Is(err, repro.ErrRegistryUnavailable) {
		t.Fatalf("want ErrRegistryUnavailable, got %v", err)
	}
}

// The delta-synced mirror through the facade: refresh against a live
// server, rank locally.
func TestRegistryRankedSetFacade(t *testing.T) {
	s := &registry.Server{}
	l, err := s.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer l.Close()

	ctx := context.Background()
	c := repro.NewRegistryClient(l.Addr().String(), repro.WithRegistryTimeout(2*time.Second))
	defer c.Close()
	if err := c.RegisterHealth(ctx, "only", "10.0.0.9:8081", time.Minute, 0.7); err != nil {
		t.Fatalf("register: %v", err)
	}

	set := repro.NewRegistryRankedSet()
	if err := set.Refresh(ctx, c); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	top := set.Top(1)
	if len(top) != 1 || top[0].Name != "only" {
		t.Fatalf("mirror top = %v", top)
	}
}
