// Package httpsim provides the simulated HTTP layer of the study: origin
// servers holding objects of known size, range-request semantics (the
// subset of HTTP the paper's mechanism needs), and relay forwarding via
// intermediate nodes. Transfers become fluid flows in the simnet network
// with TCP behaviour imposed by tcpmodel, and the package implements
// core.Transport so the selection engine runs unmodified on top of it.
package httpsim

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/tcpmodel"
	"repro/internal/topo"
)

// Transfer errors.
var (
	ErrNoSuchServer       = errors.New("httpsim: no such server")
	ErrNoSuchIntermediate = errors.New("httpsim: no such intermediate")
	ErrNoSuchObject       = errors.New("httpsim: no such object")
	ErrBadRange           = errors.New("httpsim: range not satisfiable")
)

// maxVirtualWait bounds how long Wait will advance virtual time before
// concluding the simulation is wedged (a bug, since every flow progresses
// at a positive floored rate).
const maxVirtualWait = 1e7 // seconds

// Server is a simulated origin holding ranged objects.
type Server struct {
	Node    *topo.Node
	objects map[string]int64
}

// Put registers an object of the given size on the server.
func (s *Server) Put(name string, size int64) {
	if size < 0 {
		panic("httpsim: negative object size")
	}
	s.objects[name] = size
}

// Size returns an object's size and whether it exists.
func (s *Server) Size(name string) (int64, bool) {
	sz, ok := s.objects[name]
	return sz, ok
}

// World binds one client's network instance to a set of origin servers and
// candidate intermediates, and moves object ranges between them. It
// implements core.Transport over virtual time.
type World struct {
	Inst *topo.Instance

	// SetupRTTs is the connection-establishment cost charged before the
	// first byte of every transfer, in round-trip times (TCP handshake +
	// HTTP request ≈ 1.5 RTT). Zero disables it. Every transfer opens a
	// fresh connection, as in the paper's measurement framework.
	SetupRTTs float64

	servers map[string]*Server
	inters  map[string]*topo.Node
}

// NewWorld creates a world for the instance's client. The servers and
// intermediates must be the ones the instance was built with.
func NewWorld(inst *topo.Instance, servers, inters []*topo.Node) *World {
	w := &World{
		Inst:    inst,
		servers: make(map[string]*Server, len(servers)),
		inters:  make(map[string]*topo.Node, len(inters)),
	}
	for _, sv := range servers {
		w.servers[sv.Name] = &Server{Node: sv, objects: make(map[string]int64)}
	}
	for _, in := range inters {
		w.inters[in.Name] = in
	}
	return w
}

// Server returns the named origin server, or nil.
func (w *World) Server(name string) *Server { return w.servers[name] }

// Put registers an object on the named server, creating nothing: the
// server must exist.
func (w *World) Put(server, name string, size int64) {
	s := w.servers[server]
	if s == nil {
		panic("httpsim: Put on unknown server " + server)
	}
	s.Put(name, size)
}

// Now returns the current virtual time.
func (w *World) Now() float64 { return w.Inst.Net.Engine().Now() }

// handle is an in-flight simulated transfer.
type handle struct {
	res  core.FetchResult
	done bool
}

func (h *handle) Done() bool               { return h.done }
func (h *handle) Result() core.FetchResult { return h.res }

func (w *World) failed(obj core.Object, path core.Path, off, n int64, err error) core.Handle {
	now := w.Now()
	return &handle{
		done: true,
		res: core.FetchResult{
			Path: path, Offset: off, Bytes: n,
			Start: now, End: now, Err: err,
		},
	}
}

// Start begins a range transfer of [off, off+n) of obj over path. The
// request is validated like an HTTP range request: the object must exist
// and the range must be satisfiable. Invalid requests return an
// already-done handle carrying the error, mirroring an immediate HTTP
// error response.
func (w *World) Start(obj core.Object, path core.Path, off, n int64) core.Handle {
	return w.start(obj, path, off, n, false)
}

// StartWarm begins a transfer that continues an established connection:
// no setup delay and no slow-start ramp (the congestion window is already
// open). It implements core.WarmStarter.
func (w *World) StartWarm(obj core.Object, path core.Path, off, n int64) core.Handle {
	return w.start(obj, path, off, n, true)
}

// StartCtx implements core.ContextStarter as a shim: a context that is
// already dead yields a born-failed handle with the typed error, and a
// live one starts a normal transfer that then IGNORES later
// cancellation. Mid-flight cancellation is deliberately not modelled —
// contexts die in wall-clock time, transfers progress in virtual
// seconds, and coupling the two would make results depend on host
// scheduling. Losing probes therefore drain and contend for bandwidth,
// exactly as the paper's real probes did.
func (w *World) StartCtx(ctx context.Context, obj core.Object, path core.Path, off, n int64) core.Handle {
	if err := core.CtxErr(ctx); err != nil {
		return w.failed(obj, path, off, n, err)
	}
	return w.start(obj, path, off, n, false)
}

// StartWarmCtx is StartWarm with the same start-time-only context check
// as StartCtx. It implements core.WarmContextStarter.
func (w *World) StartWarmCtx(ctx context.Context, obj core.Object, path core.Path, off, n int64) core.Handle {
	if err := core.CtxErr(ctx); err != nil {
		return w.failed(obj, path, off, n, err)
	}
	return w.start(obj, path, off, n, true)
}

func (w *World) start(obj core.Object, path core.Path, off, n int64, warm bool) core.Handle {
	srv := w.servers[obj.Server]
	if srv == nil {
		return w.failed(obj, path, off, n, fmt.Errorf("%w: %s", ErrNoSuchServer, obj.Server))
	}
	size, ok := srv.Size(obj.Name)
	if !ok {
		return w.failed(obj, path, off, n, fmt.Errorf("%w: %s/%s", ErrNoSuchObject, obj.Server, obj.Name))
	}
	if off < 0 || n < 0 || off+n > size {
		return w.failed(obj, path, off, n,
			fmt.Errorf("%w: [%d,%d) of %d", ErrBadRange, off, off+n, size))
	}

	var links []*simnet.Link
	if path.IsDirect() {
		links = w.Inst.DirectPath(srv.Node)
	} else {
		inter := w.inters[path.Via]
		if inter == nil {
			return w.failed(obj, path, off, n, fmt.Errorf("%w: %s", ErrNoSuchIntermediate, path.Via))
		}
		links = w.Inst.IndirectPath(inter, srv.Node)
	}

	h := &handle{res: core.FetchResult{Path: path, Offset: off, Bytes: n, Start: w.Now()}}
	params := tcpmodel.FromLinks(links)
	begin := func() {
		flow := w.Inst.Net.StartFlow(simnet.FlowSpec{
			Label: fmt.Sprintf("%s/%s[%d+%d] %s", obj.Server, obj.Name, off, n, path),
			Links: links,
			Bytes: n,
			OnComplete: func(f *simnet.Flow) {
				h.res.End = f.Finish()
				h.done = true
			},
		})
		if warm {
			// The connection's congestion window is already open: cap at
			// the steady-state ceiling with no ramp.
			w.Inst.Net.SetRateCap(flow, params.Ceiling())
		} else {
			tcpmodel.Attach(w.Inst.Net, flow, params)
		}
	}
	if setup := w.SetupRTTs * params.RTT; setup > 0 && !warm {
		w.Inst.Net.Engine().After(setup, begin)
	} else {
		begin()
	}
	return h
}

var _ core.WarmStarter = (*World)(nil)

// Wait advances virtual time until every handle is done. It panics if the
// event queue drains or the virtual-time budget is exhausted first, both
// of which indicate a simulation bug rather than a slow transfer.
func (w *World) Wait(hs ...core.Handle) {
	eng := w.Inst.Net.Engine()
	deadline := eng.Now() + maxVirtualWait
	pending := func() bool {
		for _, h := range hs {
			if !h.Done() {
				return true
			}
		}
		return false
	}
	for pending() {
		if eng.Now() > deadline {
			panic("httpsim: Wait exceeded virtual-time budget")
		}
		if !eng.Step() {
			panic("httpsim: event queue drained with transfers outstanding")
		}
	}
}

// WaitAny advances virtual time until at least one handle is done and
// returns its index. It implements core.AnyWaiter, enabling the
// first-finished early commit.
func (w *World) WaitAny(hs ...core.Handle) int {
	eng := w.Inst.Net.Engine()
	deadline := eng.Now() + maxVirtualWait
	for {
		for i, h := range hs {
			if h.Done() {
				return i
			}
		}
		if eng.Now() > deadline {
			panic("httpsim: WaitAny exceeded virtual-time budget")
		}
		if !eng.Step() {
			panic("httpsim: event queue drained with transfers outstanding")
		}
	}
}

var (
	_ core.Transport          = (*World)(nil)
	_ core.AnyWaiter          = (*World)(nil)
	_ core.ContextStarter     = (*World)(nil)
	_ core.WarmContextStarter = (*World)(nil)
)
