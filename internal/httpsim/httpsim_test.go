package httpsim

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/randx"
	"repro/internal/simnet"
	"repro/internal/topo"
)

// buildWorld constructs a small world: one client, one server, two
// intermediates.
func buildWorld(t *testing.T, seed uint64) (*World, *topo.Scenario) {
	t.Helper()
	s := topo.NewScenario(topo.Params{Seed: seed})
	eng := simnet.NewEngine()
	net := simnet.NewNetwork(eng)
	client := s.Clients[0]
	servers := []*topo.Node{s.Servers[0]}
	inters := s.Intermediates[:2]
	inst := s.Instantiate(net, randx.New(seed), client, servers, inters)
	w := NewWorld(inst, servers, inters)
	w.Put(servers[0].Name, "big.bin", 4_000_000)
	return w, s
}

func TestDirectFetchCompletes(t *testing.T) {
	w, s := buildWorld(t, 1)
	obj := core.Object{Server: s.Servers[0].Name, Name: "big.bin", Size: 4_000_000}
	h := w.Start(obj, core.Path{}, 0, 1_000_000)
	if h.Done() {
		t.Fatal("transfer done before any time passed")
	}
	w.Wait(h)
	res := h.Result()
	if res.Err != nil {
		t.Fatalf("fetch error: %v", res.Err)
	}
	if res.End <= res.Start {
		t.Fatal("no time elapsed during transfer")
	}
	if tp := res.Throughput(); tp <= 0 || tp > 100e6 {
		t.Fatalf("implausible throughput %v", tp)
	}
}

func TestIndirectFetchCompletes(t *testing.T) {
	w, s := buildWorld(t, 2)
	obj := core.Object{Server: s.Servers[0].Name, Name: "big.bin", Size: 4_000_000}
	h := w.Start(obj, core.Path{Via: s.Intermediates[0].Name}, 0, 500_000)
	w.Wait(h)
	if err := h.Result().Err; err != nil {
		t.Fatalf("indirect fetch error: %v", err)
	}
}

func TestConcurrentProbesIndependentTimes(t *testing.T) {
	w, s := buildWorld(t, 3)
	obj := core.Object{Server: s.Servers[0].Name, Name: "big.bin", Size: 4_000_000}
	d := w.Start(obj, core.Path{}, 0, 100_000)
	i1 := w.Start(obj, core.Path{Via: s.Intermediates[0].Name}, 0, 100_000)
	i2 := w.Start(obj, core.Path{Via: s.Intermediates[1].Name}, 0, 100_000)
	w.Wait(d, i1, i2)
	ends := []float64{d.Result().End, i1.Result().End, i2.Result().End}
	for _, e := range ends {
		if e <= 0 {
			t.Fatalf("probe end %v", e)
		}
	}
	// The three paths have different bottlenecks; at least two distinct
	// finish times are expected.
	if ends[0] == ends[1] && ends[1] == ends[2] {
		t.Fatal("all probes finished at identical times; contention model suspect")
	}
}

func TestRangeValidation(t *testing.T) {
	w, s := buildWorld(t, 4)
	srv := s.Servers[0].Name
	cases := []struct {
		name    string
		obj     core.Object
		path    core.Path
		off, n  int64
		wantErr error
	}{
		{"bad server", core.Object{Server: "nope", Name: "big.bin"}, core.Path{}, 0, 10, ErrNoSuchServer},
		{"bad object", core.Object{Server: srv, Name: "nope"}, core.Path{}, 0, 10, ErrNoSuchObject},
		{"past end", core.Object{Server: srv, Name: "big.bin"}, core.Path{}, 3_999_999, 100, ErrBadRange},
		{"negative off", core.Object{Server: srv, Name: "big.bin"}, core.Path{}, -1, 10, ErrBadRange},
		{"negative len", core.Object{Server: srv, Name: "big.bin"}, core.Path{}, 0, -10, ErrBadRange},
		{"bad relay", core.Object{Server: srv, Name: "big.bin"}, core.Path{Via: "Atlantis"}, 0, 10, ErrNoSuchIntermediate},
	}
	for _, c := range cases {
		h := w.Start(c.obj, c.path, c.off, c.n)
		if !h.Done() {
			t.Fatalf("%s: invalid request not immediately done", c.name)
		}
		if err := h.Result().Err; !errors.Is(err, c.wantErr) {
			t.Fatalf("%s: err = %v, want %v", c.name, err, c.wantErr)
		}
	}
}

func TestExactRangeToEndOK(t *testing.T) {
	w, s := buildWorld(t, 5)
	obj := core.Object{Server: s.Servers[0].Name, Name: "big.bin", Size: 4_000_000}
	h := w.Start(obj, core.Path{}, 3_900_000, 100_000)
	w.Wait(h)
	if err := h.Result().Err; err != nil {
		t.Fatalf("tail range rejected: %v", err)
	}
}

func TestSelectAndFetchOnSimulatedWorld(t *testing.T) {
	w, s := buildWorld(t, 6)
	obj := core.Object{Server: s.Servers[0].Name, Name: "big.bin", Size: 4_000_000}
	cands := []string{s.Intermediates[0].Name, s.Intermediates[1].Name}
	out := core.SelectAndFetch(w, obj, cands, core.Config{})
	if out.Err != nil {
		t.Fatalf("select-and-fetch error: %v", out.Err)
	}
	if len(out.Probes) != 3 {
		t.Fatalf("probes = %d, want 3", len(out.Probes))
	}
	if out.Throughput() <= 0 {
		t.Fatal("non-positive overall throughput")
	}
	if out.End <= out.ProbeEnd || out.ProbeEnd <= out.Start {
		t.Fatalf("phase times inconsistent: start=%v probeEnd=%v end=%v",
			out.Start, out.ProbeEnd, out.End)
	}
}

func TestPutUnknownServerPanics(t *testing.T) {
	w, _ := buildWorld(t, 7)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.Put("nope", "o", 1)
}

func TestNegativeObjectSizePanics(t *testing.T) {
	w, s := buildWorld(t, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.Put(s.Servers[0].Name, "o", -1)
}

func TestServerAccessors(t *testing.T) {
	w, s := buildWorld(t, 9)
	srv := w.Server(s.Servers[0].Name)
	if srv == nil {
		t.Fatal("Server() returned nil")
	}
	if _, ok := srv.Size("big.bin"); !ok {
		t.Fatal("registered object missing")
	}
	if _, ok := srv.Size("ghost"); ok {
		t.Fatal("phantom object present")
	}
	if w.Server("nope") != nil {
		t.Fatal("unknown server should be nil")
	}
}

func TestVirtualTimeMonotone(t *testing.T) {
	w, s := buildWorld(t, 10)
	obj := core.Object{Server: s.Servers[0].Name, Name: "big.bin", Size: 4_000_000}
	t0 := w.Now()
	h := w.Start(obj, core.Path{}, 0, 200_000)
	w.Wait(h)
	t1 := w.Now()
	if t1 <= t0 {
		t.Fatalf("time did not advance: %v -> %v", t0, t1)
	}
}

func TestSetupDelayChargesRTTs(t *testing.T) {
	w, s := buildWorld(t, 11)
	obj := core.Object{Server: s.Servers[0].Name, Name: "big.bin", Size: 4_000_000}
	// Measure a tiny transfer with and without setup cost; the setup
	// variant must take measurably longer.
	h := w.Start(obj, core.Path{}, 0, 10_000)
	w.Wait(h)
	base := h.Result().Duration()

	w.SetupRTTs = 1.5
	h2 := w.Start(obj, core.Path{}, 0, 10_000)
	w.Wait(h2)
	withSetup := h2.Result().Duration()
	if withSetup <= base {
		t.Fatalf("setup cost invisible: %v <= %v", withSetup, base)
	}
}

func TestDownloaderSwitchesInSimWorld(t *testing.T) {
	// End-to-end adaptive behavior over the simulated world: the direct
	// path starts fast and collapses mid-download; the Downloader must
	// switch to the relay and finish.
	s := topo.NewScenario(topo.Params{Seed: 31})
	eng := simnet.NewEngine()
	net := simnet.NewNetwork(eng)
	client := s.Clients[0]
	servers := []*topo.Node{s.Servers[0]}
	inters := s.Intermediates[:1]
	inst := s.Instantiate(net, randx.New(31), client, servers, inters)
	inst.Close() // detach stochastic drivers; this test steers capacities
	w := NewWorld(inst, servers, inters)
	w.Put(servers[0].Name, "big.bin", 12_000_000)

	direct := inst.DirectLink(servers[0])
	overlay := inst.OverlayLink(inters[0])
	// Start with the relay path so slow that the direct path certainly
	// wins the initial race regardless of RTT differences...
	direct.SetCapacity(8e6)
	overlay.SetCapacity(0.3e6)
	// ...then invert the situation shortly into the download.
	eng.After(4, func() {
		direct.SetCapacity(0.2e6)
		overlay.SetCapacity(4e6)
	})

	dl := &core.Downloader{
		Transport:    w,
		ProbeBytes:   100_000,
		SegmentBytes: 1_000_000,
		RefreshEvery: 1,
	}
	obj := core.Object{Server: servers[0].Name, Name: "big.bin", Size: 12_000_000}
	res, err := dl.Download(obj, []string{inters[0].Name})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalPath().Via != inters[0].Name {
		t.Fatalf("final path %v, want via %s after direct collapse", res.FinalPath(), inters[0].Name)
	}
	if res.Switches == 0 {
		t.Fatal("no switch recorded")
	}
	var total int64
	for _, seg := range res.Segments {
		total += seg.Bytes
	}
	if total != obj.Size {
		t.Fatalf("segments cover %d of %d bytes", total, obj.Size)
	}
}
