// Package tcpmodel models the throughput behaviour of a long-lived TCP
// connection well enough to reproduce the dynamics the indirect-routing
// paper depends on:
//
//   - slow start biases the throughput observed by short probes, which is
//     why the paper probes with x = 100 KB rather than a few packets;
//   - steady-state throughput is capped by the receiver window over the
//     RTT and by the Mathis/PFTK loss ceiling MSS/(RTT·sqrt(2p/3));
//   - available bandwidth on the bottleneck link caps everything else,
//     which the fluid simulator (package simnet) enforces via max-min
//     fair sharing.
//
// The model plugs into simnet by setting a flow's rate cap over time: the
// cap starts at the initial-window rate and doubles every RTT until it
// reaches the steady-state ceiling (slow start in the fluid limit).
package tcpmodel

import (
	"math"

	"repro/internal/simnet"
)

// Default protocol constants. MSS matches Ethernet-era TCP; the window
// default corresponds to typical 2005 PlanetLab kernels with window
// scaling enabled but moderate buffers.
const (
	DefaultMSS       = 1460    // bytes
	DefaultMaxWindow = 1 << 20 // bytes (1 MiB)
	DefaultInitSegs  = 8       // initial congestion window, segments
)

// Params are the TCP-relevant properties of one end-to-end path.
type Params struct {
	RTT       float64 // round-trip time, seconds
	Loss      float64 // end-to-end packet loss probability
	MSS       int     // segment size, bytes (0 = DefaultMSS)
	MaxWindow int     // max window, bytes (0 = DefaultMaxWindow)
	InitSegs  int     // initial window, segments (0 = DefaultInitSegs)
}

func (p Params) mss() float64 {
	if p.MSS > 0 {
		return float64(p.MSS)
	}
	return DefaultMSS
}

func (p Params) maxWindow() float64 {
	if p.MaxWindow > 0 {
		return float64(p.MaxWindow)
	}
	return DefaultMaxWindow
}

func (p Params) initSegs() float64 {
	if p.InitSegs > 0 {
		return float64(p.InitSegs)
	}
	return DefaultInitSegs
}

// InitialRate returns the slow-start starting rate in bits/sec: the
// initial window clocked out once per RTT.
func (p Params) InitialRate() float64 {
	if p.RTT <= 0 {
		return math.Inf(1)
	}
	return p.initSegs() * p.mss() * 8 / p.RTT
}

// WindowCeiling returns the receive/congestion-window rate limit in
// bits/sec: MaxWindow per RTT.
func (p Params) WindowCeiling() float64 {
	if p.RTT <= 0 {
		return math.Inf(1)
	}
	return p.maxWindow() * 8 / p.RTT
}

// LossCeiling returns the Mathis steady-state throughput ceiling
// MSS/(RTT·sqrt(2p/3)) in bits/sec, or +Inf for a loss-free path.
func (p Params) LossCeiling() float64 {
	if p.Loss <= 0 || p.RTT <= 0 {
		return math.Inf(1)
	}
	return p.mss() * 8 / (p.RTT * math.Sqrt(2*p.Loss/3))
}

// Ceiling returns the steady-state rate cap: the lesser of the window and
// loss ceilings.
func (p Params) Ceiling() float64 {
	return math.Min(p.WindowCeiling(), p.LossCeiling())
}

// FromLinks derives path parameters from the traversed links: RTT is twice
// the summed one-way latencies plus a fixed 2 ms end-host overhead, and
// loss combines independently per link.
func FromLinks(links []*simnet.Link) Params {
	var oneWay float64
	pass := 1.0
	for _, l := range links {
		oneWay += l.Latency
		pass *= 1 - l.Loss
	}
	return Params{RTT: 2*oneWay + 0.002, Loss: 1 - pass}
}

// rampSubSteps is the number of rate updates per RTT during slow start.
// Real TCP grows its window per ACK, i.e. continuously at timescales below
// one RTT; stepping 2^(1/4) every RTT/4 approximates that exponential
// growth far better than a single doubling per RTT, which would hold short
// probes at the initial rate for whole RTTs and blunt their ability to
// discriminate paths.
const rampSubSteps = 4

// Attach imposes the TCP model on a running simnet flow: the flow's rate
// cap follows the slow-start ramp (exponential doubling per RTT, applied
// in sub-RTT steps) from InitialRate up to Ceiling, then stays at Ceiling.
// Attach must be called right after the flow starts; it schedules its ramp
// on the network's engine and stops by itself when the ramp completes or
// the flow finishes.
func Attach(net *simnet.Network, flow *simnet.Flow, p Params) {
	ceiling := p.Ceiling()
	rate := math.Min(p.InitialRate(), ceiling)
	net.SetRateCap(flow, rate)
	if rate >= ceiling || p.RTT <= 0 {
		net.SetRateCap(flow, ceiling)
		return
	}
	eng := net.Engine()
	interval := p.RTT / rampSubSteps
	factor := math.Pow(2, 1.0/rampSubSteps)
	var step func()
	step = func() {
		if flow.Done() {
			return
		}
		rate *= factor
		if rate >= ceiling {
			net.SetRateCap(flow, ceiling)
			return
		}
		net.SetRateCap(flow, rate)
		eng.After(interval, step)
	}
	eng.After(interval, step)
}

// SlowStartBytes returns approximately how many bytes a connection moves
// before its rate first reaches the steady-state ceiling, assuming no
// bandwidth contention. The paper's probe size x must comfortably exceed
// this for probe throughput to predict full-transfer throughput.
func SlowStartBytes(p Params) int64 {
	ceiling := p.Ceiling()
	if math.IsInf(ceiling, 1) {
		return 0
	}
	rate := math.Min(p.InitialRate(), ceiling)
	interval := p.RTT / rampSubSteps
	factor := math.Pow(2, 1.0/rampSubSteps)
	var bits float64
	for rate < ceiling {
		bits += rate * interval
		rate *= factor
	}
	return int64(bits / 8)
}

// TransferTime returns the time for a transfer of the given size assuming
// the path's ceiling is the only constraint (no cross traffic), including
// the slow-start ramp. Used to validate the fluid implementation.
func TransferTime(p Params, bytes int64) float64 {
	bits := float64(bytes) * 8
	ceiling := p.Ceiling()
	rate := math.Min(p.InitialRate(), ceiling)
	interval := p.RTT / rampSubSteps
	factor := math.Pow(2, 1.0/rampSubSteps)
	t := 0.0
	for rate < ceiling {
		step := rate * interval
		if bits <= step {
			return t + bits/rate
		}
		bits -= step
		t += interval
		rate *= factor
	}
	return t + bits/ceiling
}
