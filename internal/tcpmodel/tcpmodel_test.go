package tcpmodel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simnet"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDefaults(t *testing.T) {
	p := Params{RTT: 0.1}
	if got := p.InitialRate(); !almost(got, DefaultInitSegs*1460*8/0.1, 1e-6) {
		t.Errorf("InitialRate=%v", got)
	}
	if got := p.WindowCeiling(); !almost(got, float64(1<<20)*8/0.1, 1e-3) {
		t.Errorf("WindowCeiling=%v", got)
	}
	if !math.IsInf(p.LossCeiling(), 1) {
		t.Errorf("loss-free LossCeiling=%v, want +Inf", p.LossCeiling())
	}
}

func TestLossCeilingMathis(t *testing.T) {
	p := Params{RTT: 0.1, Loss: 0.01}
	// MSS*8/(RTT*sqrt(2p/3)) = 1460*8/(0.1*sqrt(0.006667))
	want := 1460.0 * 8 / (0.1 * math.Sqrt(2*0.01/3))
	if got := p.LossCeiling(); !almost(got, want, 1) {
		t.Fatalf("LossCeiling=%v, want %v", got, want)
	}
}

func TestLossCeilingDecreasesWithLoss(t *testing.T) {
	prev := math.Inf(1)
	for _, loss := range []float64{0.0001, 0.001, 0.01, 0.05} {
		c := Params{RTT: 0.05, Loss: loss}.LossCeiling()
		if c >= prev {
			t.Fatalf("ceiling not decreasing at loss=%v: %v >= %v", loss, c, prev)
		}
		prev = c
	}
}

func TestCeilingIsMin(t *testing.T) {
	// High loss: loss ceiling binds.
	p := Params{RTT: 0.1, Loss: 0.05}
	if p.Ceiling() != p.LossCeiling() {
		t.Error("high-loss ceiling should be loss-bound")
	}
	// No loss: window binds.
	p = Params{RTT: 0.1}
	if p.Ceiling() != p.WindowCeiling() {
		t.Error("loss-free ceiling should be window-bound")
	}
}

func TestZeroRTTIsUnbounded(t *testing.T) {
	p := Params{}
	if !math.IsInf(p.InitialRate(), 1) || !math.IsInf(p.Ceiling(), 1) {
		t.Fatal("zero RTT should yield unbounded rates")
	}
}

func TestFromLinks(t *testing.T) {
	e := simnet.NewEngine()
	n := simnet.NewNetwork(e)
	a := n.NewLink("a", 1e6, 0.010, 0.001)
	b := n.NewLink("b", 1e6, 0.030, 0.002)
	p := FromLinks([]*simnet.Link{a, b})
	if !almost(p.RTT, 2*(0.010+0.030)+0.002, 1e-12) {
		t.Errorf("RTT=%v", p.RTT)
	}
	want := 1 - (1-0.001)*(1-0.002)
	if !almost(p.Loss, want, 1e-12) {
		t.Errorf("Loss=%v, want %v", p.Loss, want)
	}
}

func TestTransferTimeSteadyState(t *testing.T) {
	// Large transfer: ramp is negligible; throughput approaches ceiling.
	p := Params{RTT: 0.05, Loss: 0.001}
	bytes := int64(50_000_000)
	tt := TransferTime(p, bytes)
	eff := float64(bytes) * 8 / tt
	if math.Abs(eff-p.Ceiling())/p.Ceiling() > 0.02 {
		t.Fatalf("effective rate %v, ceiling %v", eff, p.Ceiling())
	}
}

func TestTransferTimeSmallIsSlower(t *testing.T) {
	// Slow start penalizes small transfers: effective throughput of 10 KB
	// must be well below that of 10 MB.
	p := Params{RTT: 0.1, Loss: 0.0005}
	small := float64(10_000) * 8 / TransferTime(p, 10_000)
	large := float64(10_000_000) * 8 / TransferTime(p, 10_000_000)
	if small > 0.7*large {
		t.Fatalf("small-transfer rate %v not much below large-transfer rate %v", small, large)
	}
}

func TestTransferTimeMonotoneProperty(t *testing.T) {
	p := Params{RTT: 0.08, Loss: 0.002}
	f := func(a, b uint32) bool {
		x, y := int64(a%10_000_000), int64(b%10_000_000)
		if x > y {
			x, y = y, x
		}
		return TransferTime(p, x) <= TransferTime(p, y)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSlowStartBytes(t *testing.T) {
	p := Params{RTT: 0.1, Loss: 0.001}
	ss := SlowStartBytes(p)
	if ss <= 0 {
		t.Fatalf("SlowStartBytes=%d, want > 0", ss)
	}
	// The paper's probe (100 KB) must exceed the slow-start phase for
	// typical wide-area parameters, otherwise probes mispredict.
	if ss > 100_000 {
		t.Logf("note: slow-start bytes %d exceeds 100KB probe for RTT=0.1 loss=0.001", ss)
	}
	if unb := SlowStartBytes(Params{}); unb != 0 {
		t.Fatalf("unbounded path SlowStartBytes=%d, want 0", unb)
	}
}

func TestAttachRampsToCeiling(t *testing.T) {
	e := simnet.NewEngine()
	n := simnet.NewNetwork(e)
	l := n.NewLink("l", 100e6, 0.025, 0) // RTT 0.052 via FromLinks
	p := FromLinks([]*simnet.Link{l})
	p.MaxWindow = 64 << 10 // 64 KB window -> ceiling ~10 Mb/s
	f := n.StartFlow(simnet.FlowSpec{Links: []*simnet.Link{l}, Bytes: 50_000_000})
	Attach(n, f, p)
	if f.Rate() >= p.Ceiling() {
		t.Fatalf("flow started at ceiling: %v >= %v", f.Rate(), p.Ceiling())
	}
	e.RunUntil(2)
	if !almost(f.Rate(), p.Ceiling(), 1) {
		t.Fatalf("flow rate %v after ramp, want ceiling %v", f.Rate(), p.Ceiling())
	}
}

func TestAttachFluidMatchesAnalytic(t *testing.T) {
	// With an uncontended fat link, the fluid transfer time must match
	// the analytic TransferTime closely.
	e := simnet.NewEngine()
	n := simnet.NewNetwork(e)
	l := n.NewLink("l", 1e9, 0.04, 0)
	p := FromLinks([]*simnet.Link{l})
	p.MaxWindow = 128 << 10
	var fin float64
	f := n.StartFlow(simnet.FlowSpec{Links: []*simnet.Link{l}, Bytes: 5_000_000,
		OnComplete: func(f *simnet.Flow) { fin = f.Finish() }})
	Attach(n, f, p)
	e.RunUntil(1000)
	want := TransferTime(p, 5_000_000)
	if fin == 0 {
		t.Fatal("flow did not finish")
	}
	if math.Abs(fin-want)/want > 0.05 {
		t.Fatalf("fluid time %v vs analytic %v", fin, want)
	}
}

func TestAttachStopsAfterFlowDone(t *testing.T) {
	e := simnet.NewEngine()
	n := simnet.NewNetwork(e)
	l := n.NewLink("l", 1e9, 0.001, 0)
	f := n.StartFlow(simnet.FlowSpec{Links: []*simnet.Link{l}, Bytes: 1000})
	Attach(n, f, FromLinks([]*simnet.Link{l}))
	e.RunUntil(10)
	if !f.Done() {
		t.Fatal("tiny flow should be done")
	}
	// Draining any remaining ramp events must not panic or resurrect
	// the flow.
	for e.Step() {
	}
}
