package daemon

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/httpx"
	"repro/internal/objcache"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/registry"
	"repro/internal/relay"
)

// scrape GETs one page from a debug server.
func scrape(t *testing.T, addr, path string) (int, []byte) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := httpx.NewGet(path, addr).Write(conn); err != nil {
		t.Fatal(err)
	}
	resp, err := httpx.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.Status, body
}

// serveDaemon runs d's debug mux for the test's lifetime.
func serveDaemon(t *testing.T, d *Daemon) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	srv := &httpx.Server{Mux: d.Mux()}
	go func() { defer close(done); srv.ServeListener(ctx, l) }()
	t.Cleanup(func() { cancel(); <-done })
	return l.Addr().String()
}

// TestAllDaemonMetricsPagesLint is the e2e exposition check: one
// loopback run with a live origin, relay, and registry — assembled
// through the same Daemon structs the cmd binaries use — drives real
// transfers through the relay, then scrapes /metrics from all three
// debug servers and passes every page through LintProm. /debug/vars,
// /debug/paths, and /debug/slo must parse as JSON alongside.
func TestAllDaemonMetricsPagesLint(t *testing.T) {
	// Origin with a health monitor keyed by object.
	origin := relay.NewOrigin()
	origin.Put("obj.bin", 1<<20)
	origin.Health = obs.NewHealthMonitor(obs.HealthConfig{Window: 10, Buckets: 10, Clock: obs.WallClock()})
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()

	// Relay with health + SLO + cache + flight recorder, built through
	// the options API the relayd binary uses.
	relaySLO := obs.NewSLOTracker(obs.SLOConfig{})
	relayFlight := flight.NewRecorder(flight.Config{Ring: 64})
	relayBundles := flight.NewEngine(flight.TriggerConfig{Recorder: relayFlight})
	defer relayBundles.Close()
	r := relay.New(
		relay.WithHealthMonitor(obs.NewHealthMonitor(obs.HealthConfig{
			Window: 10, Buckets: 10, Clock: obs.WallClock(), SLO: relaySLO,
		})),
		relay.WithCache(16<<20),
		relay.WithVerifier(relay.VerifyRange),
		relay.WithFlight(relayFlight),
	)
	rl, err := r.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()

	// Registry holding the relay.
	reg := &registry.Server{}
	gl, err := reg.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gl.Close()
	if err := registry.RegisterHealth(gl.Addr().String(), "r1", rl.Addr().String(), time.Minute, 0.9); err != nil {
		t.Fatal(err)
	}

	// Drive real traffic: direct fetches and relayed fetches, plus one
	// relayed failure (unknown object) so error counters move.
	for i := 0; i < 3; i++ {
		if _, err := relay.Fetch(nil, ol.Addr().String(), "obj.bin", 0, 50000); err != nil {
			t.Fatal(err)
		}
		if _, err := relay.FetchVia(nil, rl.Addr().String(), ol.Addr().String(), "obj.bin", 0, 50000); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := relay.FetchVia(nil, rl.Addr().String(), ol.Addr().String(), "missing.bin", 0, 10); err == nil {
		t.Fatal("fetch of missing object succeeded")
	}

	// The three daemons, assembled exactly as the cmd binaries do.
	daemons := map[string]*Daemon{
		"origind": {
			Prefix: "origin",
			Vars: func() any {
				return map[string]any{"bytes_served": origin.BytesServed.Load(), "conns": origin.Conns.Load()}
			},
			Prom: func(p *obs.Prom) {
				p.Counter("origin_bytes_served_total", "Content bytes written to clients.", float64(origin.BytesServed.Load()))
				p.Histogram("origin_request_latency_seconds", "Request serving times.", origin.LatencySnapshot())
			},
			Health: origin.Health,
		},
		"relayd": {
			Prefix: "relay",
			Vars: func() any {
				return map[string]any{"requests": r.Requests.Load(), "bytes_relayed": r.BytesRelayed.Load()}
			},
			Prom: func(p *obs.Prom) {
				p.Counter("relay_requests_total", "Requests handled.", float64(r.Requests.Load()))
				p.Histogram("relay_forward_latency_seconds", "Request forwarding times.", r.LatencySnapshot())
				r.Cache().Stats().WriteProm(p, "relay")
			},
			Health:  r.Health,
			SLO:     relaySLO,
			Cache:   func() any { return r.Cache().Stats() },
			Flight:  relayFlight,
			Bundles: relayBundles,
		},
		"registryd": {
			Prefix: "registry",
			Vars: func() any {
				return map[string]any{"registrations": reg.Registrations.Load(), "live_relays": len(reg.List())}
			},
			Prom: func(p *obs.Prom) {
				p.Counter("registry_registrations_total", "Accepted REGISTER commands.", float64(reg.Registrations.Load()))
				p.Gauge("registry_live_relays", "Relays currently registered and unexpired.", float64(len(reg.List())))
				p.Histogram("registry_command_latency_seconds", "Wire-command handling times.", reg.LatencySnapshot())
			},
		},
	}

	for name, d := range daemons {
		addr := serveDaemon(t, d)

		status, page := scrape(t, addr, "/metrics")
		if status != 200 {
			t.Fatalf("%s /metrics status %d", name, status)
		}
		if err := obs.LintProm(page); err != nil {
			t.Fatalf("%s /metrics lint: %v\n%s", name, err, page)
		}
		if !strings.Contains(string(page), d.Prefix+"_") {
			t.Fatalf("%s /metrics has no %s_ families:\n%s", name, d.Prefix, page)
		}
		if d.Health != nil && !strings.Contains(string(page), d.Prefix+"_path_health{") {
			t.Fatalf("%s /metrics missing path health gauges:\n%s", name, page)
		}
		if d.SLO != nil && !strings.Contains(string(page), d.Prefix+"_slo_availability_burn_fast") {
			t.Fatalf("%s /metrics missing SLO families:\n%s", name, page)
		}

		status, body := scrape(t, addr, "/debug/vars")
		var decoded map[string]any
		if status != 200 || json.Unmarshal(body, &decoded) != nil {
			t.Fatalf("%s /debug/vars = %d %q", name, status, body)
		}
		if status, _ := scrape(t, addr, "/healthz"); status != 200 {
			t.Fatalf("%s /healthz = %d", name, status)
		}

		if d.Health != nil {
			status, body := scrape(t, addr, "/debug/paths")
			var snap obs.HealthSnapshot
			if status != 200 || json.Unmarshal(body, &snap) != nil {
				t.Fatalf("%s /debug/paths = %d %q", name, status, body)
			}
			if len(snap.Paths) == 0 {
				t.Fatalf("%s /debug/paths empty after live traffic", name)
			}
		}
		if d.SLO != nil {
			status, body := scrape(t, addr, "/debug/slo")
			var snap obs.SLOSnapshot
			if status != 200 || json.Unmarshal(body, &snap) != nil {
				t.Fatalf("%s /debug/slo = %d %q", name, status, body)
			}
			if snap.Total == 0 {
				t.Fatalf("%s /debug/slo saw no requests", name)
			}
		}
		// /debug/stack is unconditional on every daemon: a plain-text
		// goroutine dump that works with -pprof off.
		status, stack := scrape(t, addr, "/debug/stack")
		if status != 200 || !strings.Contains(string(stack), "goroutine") {
			t.Fatalf("%s /debug/stack = %d %.80q", name, status, stack)
		}

		if d.Flight != nil {
			status, body := scrape(t, addr, "/debug/requests")
			var page struct {
				Seen   uint64         `json:"seen"`
				Events []flight.Event `json:"events"`
			}
			if status != 200 || json.Unmarshal(body, &page) != nil {
				t.Fatalf("%s /debug/requests = %d %q", name, status, body)
			}
			if len(page.Events) == 0 {
				t.Fatalf("%s /debug/requests empty after live traffic", name)
			}
			// The ?class= filter must narrow the page to matching events.
			status, body = scrape(t, addr, "/debug/requests?class=status")
			if status != 200 || json.Unmarshal(body, &page) != nil {
				t.Fatalf("%s /debug/requests?class= = %d %q", name, status, body)
			}
			for _, ev := range page.Events {
				if ev.Class != "status" {
					t.Fatalf("%s filtered page leaked class %q", name, ev.Class)
				}
			}
			status, body = scrape(t, addr, "/debug/active")
			var active []flight.ActiveTransfer
			if status != 200 || json.Unmarshal(body, &active) != nil {
				t.Fatalf("%s /debug/active = %d %q", name, status, body)
			}
		}
		if d.Bundles != nil {
			status, body := scrape(t, addr, "/debug/bundle")
			var listing struct {
				Stats   flight.EngineStats  `json:"stats"`
				Bundles []flight.BundleInfo `json:"bundles"`
			}
			if status != 200 || json.Unmarshal(body, &listing) != nil {
				t.Fatalf("%s /debug/bundle = %d %q", name, status, body)
			}
			if status, _ := scrape(t, addr, "/debug/bundle?name=nope"); status != 404 {
				t.Fatalf("%s /debug/bundle?name=nope = %d, want 404", name, status)
			}
		}

		if d.Cache != nil {
			status, body := scrape(t, addr, "/debug/cache")
			var snap objcache.Stats
			if status != 200 || json.Unmarshal(body, &snap) != nil {
				t.Fatalf("%s /debug/cache = %d %q", name, status, body)
			}
			if snap.Fills == 0 || snap.Hits == 0 || snap.BytesCached == 0 {
				t.Fatalf("%s /debug/cache saw no cache activity: %+v", name, snap)
			}
			if !strings.Contains(string(page), d.Prefix+"_cache_hits_total") {
				t.Fatalf("%s /metrics missing cache families:\n%s", name, page)
			}
		}
	}

	// The relay health monitor keyed its single upstream path.
	hs := r.Health.Snapshot()
	if _, ok := hs.Path(ol.Addr().String()); !ok {
		t.Fatalf("relay health has no entry for origin %s: %+v", ol.Addr(), hs.Paths)
	}
}
