// Package daemon is the shared introspection scaffolding for origind,
// relayd, and registryd: one place that assembles the debug mux
// (/healthz, /readyz, /debug/vars, /metrics, /debug/stack, and — when
// the subsystems are wired — /debug/paths, /debug/slo, /debug/cache,
// /debug/registry, /debug/requests, /debug/active, /debug/bundle), and
// the common logging
// flag plumbing around internal/obs/slogx. The daemons declaring their
// endpoints through this package means the e2e metrics test exercises
// exactly the pages the binaries serve, not a parallel reimplementation.
package daemon

import (
	"context"
	"encoding/json"
	"flag"
	"log/slog"
	"os"
	"strings"

	"repro/internal/httpx"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/slogx"
)

// Daemon describes one process's introspection surface.
type Daemon struct {
	// Prefix namespaces the Prometheus families ("origin", "relay",
	// "registry").
	Prefix string
	// Vars builds the /debug/vars payload; nil serves an empty object.
	Vars func() any
	// Prom appends the daemon's own metric families to a scrape; the
	// health and SLO families are appended automatically when those
	// subsystems are set.
	Prom func(p *obs.Prom)
	// Health, when set, adds /debug/paths and the per-path health
	// gauges to /metrics.
	Health *obs.HealthMonitor
	// SLO, when set, adds /debug/slo and the burn-rate families to
	// /metrics.
	SLO *obs.SLOTracker
	// Cache, when set, builds the /debug/cache payload (an
	// objcache.Stats snapshot); the cache's Prometheus families are the
	// daemon's to append via Prom.
	Cache func() any
	// Registry, when set, builds the /debug/registry payload (a
	// registry.Stats snapshot — shard occupancy, epoch, delta floor,
	// digest — plus peer sync cursors on a peered registryd).
	Registry func() any
	// Fleet, when set, builds the /debug/fleet payload (a
	// fleet.Snapshot on an aggregating registryd).
	Fleet func() any
	// Flight, when set, adds the flight-recorder pages: /debug/requests
	// (recent wide events, filterable by ?path=&class=&object=&trace=&n=)
	// and /debug/active (in-flight transfers).
	Flight *flight.Recorder
	// Bundles, when set, adds /debug/bundle: the trigger engine's
	// retained debug bundles (listing, or one bundle via ?name=).
	Bundles *flight.Engine
	// Ready backs /healthz and /readyz; nil means unconditionally
	// healthy (a daemon with no checks yet).
	Ready *httpx.Ready
}

// sloNow returns the wall-window time for SLO snapshots: the health
// monitor's clock when both subsystems share one, else the tracker's
// own event high-water (-1).
func (d *Daemon) sloNow() float64 {
	if d.Health != nil && d.Health.Config().Clock != nil && d.Health.SLO() == d.SLO {
		return d.Health.Config().Clock()
	}
	return -1
}

// Mux assembles the debug mux.
func (d *Daemon) Mux() *httpx.Mux {
	vars := d.Vars
	if vars == nil {
		vars = func() any { return map[string]any{} }
	}
	mux := httpx.NewReadyMux(vars, d.Ready)
	// /metrics content-negotiates: scrapers asking for OpenMetrics get
	// the same families plus histogram exemplars and the # EOF marker;
	// everyone else gets the classic text format, byte-for-byte what it
	// always was.
	mux.Handle("/metrics", func(req *httpx.Request) (int, map[string]string, []byte) {
		p := obs.NewProm()
		if req != nil && obs.AcceptsOpenMetrics(req.Header["accept"]) {
			p = obs.NewOpenMetricsProm()
		}
		if d.Prom != nil {
			d.Prom(p)
		}
		if d.Health != nil {
			d.Health.Snapshot().WriteProm(p, d.Prefix)
		}
		if d.SLO != nil {
			d.SLO.Snapshot(d.sloNow()).WriteProm(p, d.Prefix)
		}
		obs.WriteRuntimeProm(p)
		return 200, map[string]string{"content-type": p.ContentType()}, p.Bytes()
	})
	if d.Health != nil {
		mux.Handle("/debug/paths", httpx.JSONHandler(func() any {
			return d.Health.Snapshot()
		}))
	}
	if d.SLO != nil {
		mux.Handle("/debug/slo", httpx.JSONHandler(func() any {
			return d.SLO.Snapshot(d.sloNow())
		}))
	}
	if d.Cache != nil {
		mux.Handle("/debug/cache", httpx.JSONHandler(d.Cache))
	}
	if d.Registry != nil {
		mux.Handle("/debug/registry", httpx.JSONHandler(d.Registry))
	}
	if d.Fleet != nil {
		mux.Handle("/debug/fleet", httpx.JSONHandler(d.Fleet))
	}
	// /debug/stack is unconditional: a wedged daemon must be inspectable
	// even when it was started without -pprof (and without a flight
	// recorder). Plain text, the classic debug=2 goroutine dump.
	mux.Handle("/debug/stack", func(*httpx.Request) (int, map[string]string, []byte) {
		return 200, map[string]string{"content-type": "text/plain; charset=utf-8"}, flight.GoroutineDump()
	})
	if d.Flight != nil {
		mux.Handle("/debug/requests", func(req *httpx.Request) (int, map[string]string, []byte) {
			var f flight.Filter
			if req != nil {
				f = flight.ParseQuery(req.Target)
			}
			return jsonPage(struct {
				Seen    uint64         `json:"seen"`
				Dropped uint64         `json:"dropped"`
				Events  []flight.Event `json:"events"`
			}{d.Flight.Seen(), d.Flight.Dropped(), d.Flight.Events(f)})
		})
		mux.Handle("/debug/active", httpx.JSONHandler(func() any {
			return d.Flight.Active()
		}))
	}
	if d.Bundles != nil {
		mux.Handle("/debug/bundle", func(req *httpx.Request) (int, map[string]string, []byte) {
			if name := queryValue(req, "name"); name != "" {
				b, found := d.Bundles.Bundle(name)
				if !found {
					return 404, map[string]string{"content-type": "text/plain; charset=utf-8"},
						[]byte("no such bundle: " + name + "\n")
				}
				return jsonPage(b)
			}
			return jsonPage(struct {
				Stats   flight.EngineStats  `json:"stats"`
				Bundles []flight.BundleInfo `json:"bundles"`
			}{d.Bundles.Stats(), d.Bundles.Bundles()})
		})
	}
	return mux
}

// jsonPage renders one debug payload the way httpx.JSONHandler does.
func jsonPage(v any) (int, map[string]string, []byte) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return 500, nil, []byte(err.Error() + "\n")
	}
	return 200, map[string]string{"content-type": "application/json"}, append(b, '\n')
}

// queryValue extracts one ?key= value from a request target.
func queryValue(req *httpx.Request, key string) string {
	if req == nil {
		return ""
	}
	_, query, ok := strings.Cut(req.Target, "?")
	if !ok {
		return ""
	}
	for _, kv := range strings.Split(query, "&") {
		if k, v, ok := strings.Cut(kv, "="); ok && k == key {
			return v
		}
	}
	return ""
}

// ServeMetrics starts the debug server on addr in the background,
// logging the terminal error (if any) through logger. No-op when addr
// is empty.
func (d *Daemon) ServeMetrics(ctx context.Context, addr string, logger *slog.Logger) {
	if addr == "" {
		return
	}
	mux := d.Mux()
	go func() {
		if err := httpx.Serve(ctx, mux, addr); err != nil {
			logger.Error("metrics server failed", "addr", addr, "err", err)
		}
	}()
	logger.Info("metrics serving", "addr", addr,
		"endpoints", "/debug/vars /metrics /healthz /readyz")
}

// LogFlags registers the shared logging flags (-log-format, -log-level,
// -log-components) on the default flag set and returns a constructor to
// call after flag.Parse: it builds the component-labeled root logger
// (writing to stderr) or exits with a usage error on a bad flag value.
func LogFlags() func(component string) *slog.Logger {
	format := flag.String("log-format", "text", "log encoding: text or json")
	level := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	components := flag.String("log-components", "", "per-component level overrides, e.g. registry=debug,relay=warn")
	return func(component string) *slog.Logger {
		lvl, err := slogx.ParseLevel(*level)
		if err != nil {
			slog.Error(err.Error())
			os.Exit(2)
		}
		perComp, err := slogx.ParseComponentLevels(*components)
		if err != nil {
			slog.Error(err.Error())
			os.Exit(2)
		}
		return slogx.New(os.Stderr, component, slogx.Config{
			Format:          *format,
			Level:           lvl,
			ComponentLevels: perComp,
		})
	}
}
