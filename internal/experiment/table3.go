package experiment

import (
	"sort"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Table3Params configures the utilization-vs-improvement analysis of the
// paper's Table III: one client (Duke) runs a long random-set campaign
// over the 35-node full set, and every intermediate is scored by how often
// it wins when offered and by how much improvement it delivers.
type Table3Params struct {
	Seed     uint64
	Scenario topo.Params
	Client   string // default "Duke (client)"
	SetSize  int    // default 10 (the Figure 6 knee)
	Rounds   int    // default 500
	Config   Config
	Workers  int
}

func (p Table3Params) withDefaults() Table3Params {
	if p.Scenario.Seed == 0 {
		p.Scenario.Seed = p.Seed
	}
	if p.Scenario.NumIntermediates == 0 {
		p.Scenario.NumIntermediates = 35
	}
	if p.Client == "" {
		p.Client = "Duke (client)"
	}
	if p.SetSize == 0 {
		p.SetSize = 10
	}
	if p.Rounds == 0 {
		p.Rounds = 500
	}
	if p.Config.Period == 0 {
		p.Config.Period = 30
	}
	// Same Section 4 methodology as Figure 6.
	p.Config.SequentialProbes = true
	p.Config.ExcludeProbePhase = true
	return p
}

// Table3Row is one intermediate's line in Table III.
type Table3Row struct {
	Inter string
	// Utilization is chosen/offered in percent (Section 4 definition).
	Utilization float64
	// Improvement is the mean improvement (percent) of the rounds this
	// intermediate won.
	Improvement float64
	// Offered and Chosen are the raw counts.
	Offered, Chosen int64
}

// Table3Result reproduces Table III.
type Table3Result struct {
	Client string
	Rows   []Table3Row // non-zero-utilization rows, best first

	// PearsonR and SpearmanR correlate utilization with improvement
	// across rows; the paper finds them positive but imperfect.
	PearsonR, SpearmanR float64
}

// Table3 runs the campaign and derives the correlation table.
func Table3(p Table3Params) Table3Result {
	p = p.withDefaults()
	scen := topo.NewScenario(p.Scenario)
	client := scen.FindClient(p.Client)
	must(client != nil, "unknown client %q", p.Client)
	server := scen.FindServer("eBay")
	must(server != nil, "eBay server missing")

	result := RunCampaign(CampaignSpec{
		Scenario:  scen,
		Client:    client,
		Server:    server,
		Inters:    scen.Intermediates,
		Policy:    core.UniformRandomPolicy{K: p.SetSize},
		Transfers: p.Rounds,
		Seed:      campaignSeed(p.Seed, label("table3", p.Client)),
		Config:    p.Config,
	})

	perInter := make(map[string][]float64)
	for _, rec := range result.Records {
		if rec.Err == nil && rec.Indirect() {
			perInter[rec.Selected] = append(perInter[rec.Selected], rec.Improvement)
		}
	}

	res := Table3Result{Client: p.Client}
	for _, name := range result.Tracker.Names() {
		chosen := result.Tracker.Chosen(name)
		if chosen == 0 {
			continue // the paper's table lists non-zero utilizations only
		}
		res.Rows = append(res.Rows, Table3Row{
			Inter:       name,
			Utilization: result.Tracker.Utilization(name) * 100,
			Improvement: stats.Mean(perInter[name]),
			Offered:     result.Tracker.InSet(name),
			Chosen:      chosen,
		})
	}
	sort.Slice(res.Rows, func(i, j int) bool {
		if res.Rows[i].Utilization != res.Rows[j].Utilization {
			return res.Rows[i].Utilization > res.Rows[j].Utilization
		}
		return res.Rows[i].Inter < res.Rows[j].Inter
	})

	var us, is []float64
	for _, r := range res.Rows {
		us = append(us, r.Utilization)
		is = append(is, r.Improvement)
	}
	res.PearsonR = stats.Pearson(us, is)
	res.SpearmanR = stats.Spearman(us, is)
	return res
}
