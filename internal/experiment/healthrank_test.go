package experiment

import "testing"

// TestHealthRankedBeatsRandom asserts the telemetry payoff claim: the
// registry's health-ranked K=10 candidate set delivers mean improvement
// at least matching uniform random K=10 sets (small tolerance for
// sampling noise — "matches or beats", not "dominates").
func TestHealthRankedBeatsRandom(t *testing.T) {
	r := RunHealthRank(HealthRankParams{Seed: 42})
	if len(r.Ranked) != 10 {
		t.Fatalf("ranked set has %d entries, want 10: %v", len(r.Ranked), r.Ranked)
	}
	if len(r.RandomAvgs) != 3 {
		t.Fatalf("random baseline has %d draws, want 3", len(r.RandomAvgs))
	}

	// The published health values must actually discriminate: the ranked
	// set's mean health strictly above the full-population mean.
	rankedHealth, allHealth := 0.0, 0.0
	for _, name := range r.Ranked {
		rankedHealth += r.Health[name]
	}
	rankedHealth /= float64(len(r.Ranked))
	for _, v := range r.Health {
		allHealth += v
	}
	allHealth /= float64(len(r.Health))
	if rankedHealth <= allHealth {
		t.Errorf("ranked mean health %.3f not above population mean %.3f", rankedHealth, allHealth)
	}

	if r.RankedAvg < r.RandomAvg-1.0 {
		t.Errorf("health-ranked K=%d mean improvement %.1f%% below random baseline %.1f%% (draws %v)",
			r.K, r.RankedAvg, r.RandomAvg, r.RandomAvgs)
	}
	t.Logf("ranked %.1f%% vs random %.1f%% (draws %v)", r.RankedAvg, r.RandomAvg, r.RandomAvgs)
}

func TestHealthRankDefaults(t *testing.T) {
	p := HealthRankParams{Seed: 1}.withDefaults()
	if p.K != 10 || p.Scenario.NumIntermediates != 35 {
		t.Errorf("defaults K=%d inters=%d, want 10 of 35", p.K, p.Scenario.NumIntermediates)
	}
	if p.Client != "Duke (client)" {
		t.Errorf("default client %q", p.Client)
	}
	if !p.Config.SequentialProbes || !p.Config.ExcludeProbePhase {
		t.Error("healthrank must use Section 4 methodology flags")
	}
}
