package experiment

import (
	"testing"

	"repro/internal/core"
	"repro/internal/topo"
)

// smallSpec builds a quick single-intermediate campaign spec.
func smallSpec(seed uint64, transfers int) CampaignSpec {
	scen := topo.NewScenario(topo.Params{Seed: seed})
	client := scen.FindClient("Korea") // Low-throughput, benefits clearly
	inter := staticIntermediate(scen, client)
	return CampaignSpec{
		Scenario:  scen,
		Client:    client,
		Server:    scen.Servers[0],
		Inters:    []*topo.Node{inter},
		Policy:    core.StaticPolicy{Intermediate: inter.Name},
		Transfers: transfers,
		Seed:      seed,
	}
}

func TestRunCampaignRecordCount(t *testing.T) {
	res := RunCampaign(smallSpec(1, 12))
	if len(res.Records) != 12 {
		t.Fatalf("records = %d, want 12", len(res.Records))
	}
	for i, r := range res.Records {
		if r.Err != nil {
			t.Fatalf("round %d failed: %v", i, r.Err)
		}
		if r.DirectTp <= 0 || r.SelectedTp <= 0 {
			t.Fatalf("round %d has non-positive throughputs: %+v", i, r)
		}
		if r.Client != "Korea" {
			t.Fatalf("round %d has wrong client %q", i, r.Client)
		}
	}
}

func TestRunCampaignDeterminism(t *testing.T) {
	a := RunCampaign(smallSpec(7, 8))
	b := RunCampaign(smallSpec(7, 8))
	for i := range a.Records {
		if a.Records[i].Improvement != b.Records[i].Improvement ||
			a.Records[i].Selected != b.Records[i].Selected {
			t.Fatalf("round %d differs across identical runs", i)
		}
	}
}

func TestRunCampaignSeedsDiffer(t *testing.T) {
	a := RunCampaign(smallSpec(1, 10))
	b := RunCampaign(smallSpec(2, 10))
	same := 0
	for i := range a.Records {
		if a.Records[i].Improvement == b.Records[i].Improvement {
			same++
		}
	}
	if same == len(a.Records) {
		t.Fatal("different seeds produced identical campaigns")
	}
}

func TestRunCampaignRoundSpacing(t *testing.T) {
	res := RunCampaign(smallSpec(3, 5))
	for i := 1; i < len(res.Records); i++ {
		gap := res.Records[i].Time - res.Records[i-1].Time
		if gap < 300 { // period 360 with some tolerance for overruns
			t.Fatalf("rounds %d-%d only %.0fs apart", i-1, i, gap)
		}
	}
}

func TestRunCampaignDirectSelectionNearZeroImprovement(t *testing.T) {
	// When the direct path wins the probe race, the selecting process and
	// the control process share the direct path; improvement must be
	// near zero (small probing overhead only).
	res := RunCampaign(smallSpec(4, 30))
	for _, r := range res.Records {
		if !r.Indirect() {
			if r.Improvement > 10 || r.Improvement < -25 {
				t.Fatalf("direct-selected round improvement %.1f%%, want ~0", r.Improvement)
			}
		}
	}
}

func TestRunCampaignTrackerConsistent(t *testing.T) {
	res := RunCampaign(smallSpec(5, 20))
	inter := res.Spec.Inters[0].Name
	if got := res.Tracker.InSet(inter); got != 20 {
		t.Fatalf("tracker inSet = %d, want 20", got)
	}
	indirect := 0
	for _, r := range res.Records {
		if r.Indirect() {
			indirect++
		}
	}
	if got := res.Tracker.Chosen(inter); got != int64(indirect) {
		t.Fatalf("tracker chosen = %d, records say %d", got, indirect)
	}
}

func TestRunCampaignSequentialProbes(t *testing.T) {
	spec := smallSpec(6, 10)
	spec.Config.SequentialProbes = true
	spec.Config.ExcludeProbePhase = true
	res := RunCampaign(spec)
	for i, r := range res.Records {
		if r.Err != nil {
			t.Fatalf("sequential round %d failed: %v", i, r.Err)
		}
	}
}

func TestRunAllOrderAndParallelism(t *testing.T) {
	specs := []CampaignSpec{smallSpec(1, 4), smallSpec(2, 4), smallSpec(3, 4)}
	seq := RunAll(specs, 1)
	par := RunAll(specs, 3)
	for i := range specs {
		if len(seq[i].Records) != 4 || len(par[i].Records) != 4 {
			t.Fatalf("spec %d wrong record counts", i)
		}
		for j := range seq[i].Records {
			if seq[i].Records[j].Improvement != par[i].Records[j].Improvement {
				t.Fatalf("parallel execution changed results (spec %d round %d)", i, j)
			}
		}
	}
}

func TestRunAllEmpty(t *testing.T) {
	if got := RunAll(nil, 4); len(got) != 0 {
		t.Fatal("empty spec list should yield empty results")
	}
}

func TestCampaignSeedStability(t *testing.T) {
	a := campaignSeed(1, "study|X|Y")
	b := campaignSeed(1, "study|X|Y")
	c := campaignSeed(1, "study|X|Z")
	d := campaignSeed(2, "study|X|Y")
	if a != b {
		t.Fatal("campaignSeed not deterministic")
	}
	if a == c || a == d {
		t.Fatal("campaignSeed collisions across labels/seeds")
	}
}

func TestLabel(t *testing.T) {
	if got := label("a", "b", "c"); got != "a|b|c" {
		t.Fatalf("label = %q", got)
	}
	if got := label(); got != "" {
		t.Fatalf("empty label = %q", got)
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.ObjectBytes != 4_000_000 || cfg.ProbeBytes != core.DefaultProbeBytes {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if cfg.Period != 360 || cfg.Warmup != 600 {
		t.Fatalf("schedule defaults wrong: %+v", cfg)
	}
	over := Config{ObjectBytes: 123, ProbeBytes: 7, Period: 1, Warmup: 2}.withDefaults()
	if over.ObjectBytes != 123 || over.ProbeBytes != 7 || over.Period != 1 || over.Warmup != 2 {
		t.Fatalf("overrides lost: %+v", over)
	}
}
