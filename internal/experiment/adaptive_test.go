package experiment

import "testing"

func TestRunAdaptive(t *testing.T) {
	results := RunAdaptive(AdaptiveParams{Seed: 42, Rounds: 25})
	if len(results) == 0 {
		t.Fatal("no adaptive results")
	}
	for _, r := range results {
		if r.OneShot <= 0 || r.Adaptive <= 0 {
			t.Fatalf("%s: non-positive throughputs %+v", r.Client, r)
		}
		if r.OneShotCV < 0 || r.AdaptiveCV < 0 {
			t.Fatalf("%s: negative CV", r.Client)
		}
		// The adaptive client re-races and switches sometimes; a client
		// that never switches suggests the mechanism is inert.
	}
	anySwitches := false
	for _, r := range results {
		if r.MeanSwitches > 0 {
			anySwitches = true
		}
	}
	if !anySwitches {
		t.Fatal("adaptive downloader never switched on any variable client")
	}
}

func TestRunAdaptiveThroughputComparable(t *testing.T) {
	// Adaptation must not be catastrophically worse than one-shot
	// selection (it may pay re-race overhead but recovers from bad
	// commitments).
	results := RunAdaptive(AdaptiveParams{Seed: 42, Rounds: 25})
	for _, r := range results {
		if r.Adaptive < 0.5*r.OneShot {
			t.Errorf("%s: adaptive %.2f << one-shot %.2f Mb/s",
				r.Client, r.Adaptive/1e6, r.OneShot/1e6)
		}
	}
}
