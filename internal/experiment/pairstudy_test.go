package experiment

import (
	"testing"
)

var pairStudyCache *PairStudyResult

func testPairStudy(t *testing.T) *PairStudyResult {
	t.Helper()
	if pairStudyCache == nil {
		pairStudyCache = RunPairStudy(PairStudyParams{Seed: 42, TransfersPerPair: 12})
	}
	return pairStudyCache
}

func TestPairStudyCoverage(t *testing.T) {
	ps := testPairStudy(t)
	if len(ps.PerPair) != 22 {
		t.Fatalf("pair study covers %d clients, want 22", len(ps.PerPair))
	}
	for c, m := range ps.PerPair {
		if len(m) != 21 {
			t.Fatalf("client %s paired with %d intermediates, want 21", c, len(m))
		}
	}
	if ps.Server != "eBay" {
		t.Fatalf("default server %q, want eBay", ps.Server)
	}
}

func TestTable2TopThree(t *testing.T) {
	ps := testPairStudy(t)
	t2 := Table2(ps)
	if len(t2.Rows) != 22 {
		t.Fatalf("table II has %d rows, want 22", len(t2.Rows))
	}
	for _, row := range t2.Rows {
		if len(row.Top) == 0 || len(row.Top) > 3 {
			t.Fatalf("client %s has %d top intermediates", row.Client, len(row.Top))
		}
		for i := 1; i < len(row.Top); i++ {
			if row.Top[i].Utilization > row.Top[i-1].Utilization {
				t.Fatalf("client %s top list not sorted", row.Client)
			}
		}
		for _, u := range row.Top {
			if u.Utilization < 0 || u.Utilization > 1 {
				t.Fatalf("client %s utilization %v out of [0,1]", row.Client, u.Utilization)
			}
		}
	}
}

// TestTable2Overlap asserts the paper's observation that a handful of
// intermediates recur across many clients' top-3 lists.
func TestTable2Overlap(t *testing.T) {
	t2 := Table2(testPairStudy(t))
	maxOverlap := 0
	for _, c := range t2.OverlapCount {
		if c > maxOverlap {
			maxOverlap = c
		}
	}
	if maxOverlap < 4 {
		t.Fatalf("max top-3 overlap %d clients, want >= 4 (paper: heavy overlap)", maxOverlap)
	}
	if len(t2.OverlapCount) >= 22*3 {
		t.Fatal("no overlap at all: every top-3 slot is distinct")
	}
}

// TestFig3InverseRelation asserts the paper's Figure 3 trend: improvement
// decreases as direct-path throughput rises, for the vast majority of
// clients.
func TestFig3InverseRelation(t *testing.T) {
	f3 := Fig3(testPairStudy(t))
	if len(f3.Clients) < 15 {
		t.Fatalf("only %d clients have enough indirect rounds", len(f3.Clients))
	}
	if f3.MeanSlope >= 0 {
		t.Errorf("mean slope %.1f %%/Mbps, want negative", f3.MeanSlope)
	}
	if f3.FractionNegative < 0.7 {
		t.Errorf("only %.0f%% of clients trend downward, want >= 70%%", f3.FractionNegative*100)
	}
}

// TestFig5UtilizationStats asserts the Figure 5 shape: overall average
// utilization in the paper's ballpark and per-intermediate stats coherent.
func TestFig5UtilizationStats(t *testing.T) {
	f5 := Fig5(testPairStudy(t))
	if len(f5.Rows) != 21 {
		t.Fatalf("fig5 has %d intermediates, want 21", len(f5.Rows))
	}
	if f5.OverallAvg < 25 || f5.OverallAvg > 65 {
		t.Errorf("overall avg utilization %.1f%%, want within [25, 65] (paper: 45%%)", f5.OverallAvg)
	}
	for _, r := range f5.Rows {
		if r.Average < 0 || r.Average > 100 {
			t.Fatalf("%s avg utilization %v out of range", r.Inter, r.Average)
		}
		// RMS >= |mean| always.
		if r.RMS < r.Average-1e-9 {
			t.Fatalf("%s RMS %.1f < mean %.1f", r.Inter, r.RMS, r.Average)
		}
	}
	// Intermediates must differ in usefulness (quality spread).
	lo, hi := f5.Rows[0].Average, f5.Rows[0].Average
	for _, r := range f5.Rows {
		if r.Average < lo {
			lo = r.Average
		}
		if r.Average > hi {
			hi = r.Average
		}
	}
	if hi-lo < 15 {
		t.Errorf("utilization range %.1f-%.1f too narrow; popularity effects missing", lo, hi)
	}
}
