package experiment

import "testing"

// TestCacheEgressReduction is the tentpole acceptance check: 10 clients
// fetching a shared catalog through a caching relay must cut origin
// egress at least 5x against the cacheless baseline.
func TestCacheEgressReduction(t *testing.T) {
	r := RunCacheEgress(CacheEgressParams{
		Clients:    10,
		Objects:    4,
		ObjectSize: 32 << 10, // small objects keep the live-TCP run fast
	})
	wantBaseline := int64(10 * 4 * (32 << 10))
	if r.BaselineEgress != wantBaseline {
		t.Fatalf("baseline egress = %d, want %d (every fetch billed to the origin)", r.BaselineEgress, wantBaseline)
	}
	if r.Reduction < 5 {
		t.Fatalf("egress reduction %.1fx, want >= 5x (baseline %d, cached %d)",
			r.Reduction, r.BaselineEgress, r.CachedEgress)
	}
	// The cache's own ledger agrees with the egress counter: each object
	// filled from the origin, everything else hits or shared fills.
	s := r.CacheStats
	if s.FillBytes != r.CachedEgress {
		t.Fatalf("cache fill bytes %d != origin egress %d", s.FillBytes, r.CachedEgress)
	}
	if s.Hits+s.SharedFills == 0 {
		t.Fatalf("no cache sharing recorded: %+v", s)
	}
}
