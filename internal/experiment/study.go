package experiment

import (
	"sort"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/topo"
)

// StudyParams configures the Section 3 measurement study: every client
// downloads from every chosen server through a statically chosen "good"
// indirect path, 100 times per pairing in the paper.
type StudyParams struct {
	Seed               uint64
	Scenario           topo.Params
	TransfersPerClient int      // per (client, server); default 100
	Servers            []string // server names; default all four sites
	Config             Config
	Workers            int
}

func (p StudyParams) withDefaults() StudyParams {
	if p.Scenario.Seed == 0 {
		p.Scenario.Seed = p.Seed
	}
	if p.TransfersPerClient == 0 {
		p.TransfersPerClient = 100
	}
	return p
}

// StudyResult is the Section 3 dataset.
type StudyResult struct {
	Scenario *topo.Scenario
	Records  []Record

	// PerClient groups records by client name.
	PerClient map[string][]Record

	// StaticInter is the a-priori chosen intermediate per client.
	StaticInter map[string]string

	// ClientCV is the post-hoc direct-path throughput coefficient of
	// variation per client (the paper's "variability" classifier).
	ClientCV map[string]float64
}

// staticIntermediate picks the a-priori "good" indirect path for a client:
// the fifth-best overlay pair by long-run mean — clearly good, but "not
// necessarily the best since it is selected statically" (paper
// Section 2.2).
func staticIntermediate(s *topo.Scenario, client *topo.Node) *topo.Node {
	inters := append([]*topo.Node{}, s.Intermediates...)
	sort.Slice(inters, func(i, j int) bool {
		return s.PairMean(client, inters[i]) > s.PairMean(client, inters[j])
	})
	if len(inters) > 4 {
		return inters[4]
	}
	return inters[len(inters)-1]
}

// RunStudy executes the Section 3 study and computes the post-hoc
// per-client statistics.
func RunStudy(p StudyParams) *StudyResult {
	p = p.withDefaults()
	scen := topo.NewScenario(p.Scenario)

	servers := scen.Servers
	if len(p.Servers) > 0 {
		servers = nil
		for _, name := range p.Servers {
			sv := scen.FindServer(name)
			must(sv != nil, "unknown server %q", name)
			servers = append(servers, sv)
		}
	}

	var specs []CampaignSpec
	staticInter := make(map[string]string)
	for _, c := range scen.Clients {
		inter := staticIntermediate(scen, c)
		staticInter[c.Name] = inter.Name
		for _, sv := range servers {
			specs = append(specs, CampaignSpec{
				Scenario:  scen,
				Client:    c,
				Server:    sv,
				Inters:    []*topo.Node{inter},
				Policy:    core.StaticPolicy{Intermediate: inter.Name},
				Transfers: p.TransfersPerClient,
				Seed:      campaignSeed(p.Seed, label("study", c.Name, sv.Name)),
				Config:    p.Config,
			})
		}
	}

	results := RunAll(specs, p.Workers)
	out := &StudyResult{
		Scenario:    scen,
		PerClient:   make(map[string][]Record),
		StaticInter: staticInter,
		ClientCV:    make(map[string]float64),
	}
	for _, r := range results {
		for _, rec := range r.Records {
			if rec.Err != nil {
				continue
			}
			out.Records = append(out.Records, rec)
			out.PerClient[rec.Client] = append(out.PerClient[rec.Client], rec)
		}
	}
	for client, recs := range out.PerClient {
		var acc stats.Acc
		for _, rec := range recs {
			acc.Add(rec.DirectTp)
		}
		if acc.Mean() > 0 {
			out.ClientCV[client] = acc.Std() / acc.Mean()
		}
	}
	return out
}

// Improvements extracts the improvement samples (percent) of rounds that
// selected the indirect path — the population of the paper's Figure 1.
func Improvements(recs []Record) []float64 {
	var out []float64
	for _, r := range recs {
		if r.Indirect() {
			out = append(out, r.Improvement)
		}
	}
	return out
}

// UtilizationOf returns the fraction of rounds that chose the indirect
// path.
func UtilizationOf(recs []Record) float64 {
	if len(recs) == 0 {
		return 0
	}
	n := 0
	for _, r := range recs {
		if r.Indirect() {
			n++
		}
	}
	return float64(n) / float64(len(recs))
}

// highVariabilityCV is the post-hoc CV threshold above which a client's
// direct path counts as "highly variable" for the Table I filters.
const highVariabilityCV = 0.35
