package experiment

import (
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/topo"
)

// PenaltyRow is one row of the paper's Table I: the fraction of rounds
// ending in a penalty and the distribution of penalty magnitudes, where a
// penalty is expressed as how many percent slower the selected path was
// than the direct path ((direct/selected − 1) × 100 — the only reading
// under which the paper's 290%/3840% figures are possible, since the
// improvement metric is bounded below by −100%).
type PenaltyRow struct {
	Filter string

	// Rounds is the number of indirect-selected rounds surviving the
	// filter; PenaltyPoints the fraction of them that were penalties.
	Rounds        int
	PenaltyPoints float64

	// AvgPenalty, StdDev, and Max summarize penalty magnitudes (percent).
	AvgPenalty, StdDev, Max float64
}

// Table1Result reproduces Table I: penalty statistics for all clients,
// after removing High-throughput clients, and after additionally removing
// highly variable Low/Medium clients.
type Table1Result struct {
	All, MedLow, LowVar PenaltyRow

	// HighVarClients lists clients classified as highly variable by the
	// post-hoc CV analysis.
	HighVarClients []string
}

// Table1 computes the penalty analysis from the Section 3 dataset.
func Table1(study *StudyResult) Table1Result {
	var res Table1Result
	for client, cv := range study.ClientCV {
		if cv > highVariabilityCV {
			res.HighVarClients = append(res.HighVarClients, client)
		}
	}
	highVar := make(map[string]bool, len(res.HighVarClients))
	for _, c := range res.HighVarClients {
		highVar[c] = true
	}

	res.All = penaltyRow("All", study.Records, func(Record) bool { return true })
	res.MedLow = penaltyRow("Med/Low Throughput", study.Records, func(r Record) bool {
		return r.Category != topo.High
	})
	res.LowVar = penaltyRow("Low Variability", study.Records, func(r Record) bool {
		return r.Category != topo.High && !highVar[r.Client]
	})
	return res
}

func penaltyRow(name string, recs []Record, keep func(Record) bool) PenaltyRow {
	row := PenaltyRow{Filter: name}
	var penalties []float64
	for _, r := range recs {
		if !r.Indirect() || !keep(r) {
			continue
		}
		row.Rounds++
		if r.Improvement < 0 {
			penalties = append(penalties, core.Penalty(r.SelectedTp, r.DirectTp))
		}
	}
	if row.Rounds > 0 {
		row.PenaltyPoints = float64(len(penalties)) / float64(row.Rounds)
	}
	if len(penalties) > 0 {
		s := stats.Summarize(penalties)
		row.AvgPenalty, row.StdDev, row.Max = s.Mean, s.Std, s.Max
	}
	return row
}
