package experiment

import (
	"sort"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/topo"
)

// PairStudyParams configures the per-(client, intermediate) campaigns that
// back Table II, Figure 3, and Figure 5: every client is paired with every
// intermediate in turn as a static indirect path.
type PairStudyParams struct {
	Seed             uint64
	Scenario         topo.Params
	TransfersPerPair int    // default 30
	Server           string // default "eBay" (the paper's focus dataset)
	Config           Config
	Workers          int
}

func (p PairStudyParams) withDefaults() PairStudyParams {
	if p.Scenario.Seed == 0 {
		p.Scenario.Seed = p.Seed
	}
	if p.TransfersPerPair == 0 {
		p.TransfersPerPair = 30
	}
	if p.Server == "" {
		p.Server = "eBay"
	}
	return p
}

// PairStudyResult is the per-pair dataset.
type PairStudyResult struct {
	Scenario *topo.Scenario
	Server   string

	// PerPair indexes records by client name, then intermediate name.
	PerPair map[string]map[string][]Record
}

// RunPairStudy executes one campaign per (client, intermediate) pair.
func RunPairStudy(p PairStudyParams) *PairStudyResult {
	p = p.withDefaults()
	scen := topo.NewScenario(p.Scenario)
	server := scen.FindServer(p.Server)
	must(server != nil, "unknown server %q", p.Server)

	var specs []CampaignSpec
	for _, c := range scen.Clients {
		for _, in := range scen.Intermediates {
			specs = append(specs, CampaignSpec{
				Scenario:  scen,
				Client:    c,
				Server:    server,
				Inters:    []*topo.Node{in},
				Policy:    core.StaticPolicy{Intermediate: in.Name},
				Transfers: p.TransfersPerPair,
				Seed:      campaignSeed(p.Seed, label("pair", c.Name, in.Name)),
				Config:    p.Config,
			})
		}
	}
	results := RunAll(specs, p.Workers)

	out := &PairStudyResult{
		Scenario: scen,
		Server:   p.Server,
		PerPair:  make(map[string]map[string][]Record),
	}
	for i, r := range results {
		client := specs[i].Client.Name
		inter := specs[i].Inters[0].Name
		m := out.PerPair[client]
		if m == nil {
			m = make(map[string][]Record)
			out.PerPair[client] = m
		}
		for _, rec := range r.Records {
			if rec.Err == nil {
				m[inter] = append(m[inter], rec)
			}
		}
	}
	return out
}

// InterUtil is an intermediate's utilization as observed by one client (or
// aggregated).
type InterUtil struct {
	Inter       string
	Utilization float64 // fraction of rounds that chose this indirect path
}

// Table2Row is one row of the paper's Table II: a client and its top three
// intermediates by per-client utilization.
type Table2Row struct {
	Client string
	Top    []InterUtil // up to 3, best first
}

// Table2Result reproduces Table II.
type Table2Result struct {
	Rows []Table2Row

	// OverlapCount maps each intermediate to the number of clients whose
	// top-3 include it — the paper's observation that "a handful of
	// intermediate nodes may be able to yield a majority of the
	// improvement".
	OverlapCount map[string]int
}

// Table2 extracts each client's top-3 intermediates by utilization.
func Table2(ps *PairStudyResult) Table2Result {
	res := Table2Result{OverlapCount: make(map[string]int)}
	clients := make([]string, 0, len(ps.PerPair))
	for c := range ps.PerPair {
		clients = append(clients, c)
	}
	sort.Strings(clients)
	for _, c := range clients {
		var utils []InterUtil
		for inter, recs := range ps.PerPair[c] {
			utils = append(utils, InterUtil{Inter: inter, Utilization: UtilizationOf(recs)})
		}
		sort.Slice(utils, func(i, j int) bool {
			if utils[i].Utilization != utils[j].Utilization {
				return utils[i].Utilization > utils[j].Utilization
			}
			return utils[i].Inter < utils[j].Inter
		})
		if len(utils) > 3 {
			utils = utils[:3]
		}
		res.Rows = append(res.Rows, Table2Row{Client: c, Top: utils})
		for _, u := range utils {
			res.OverlapCount[u.Inter]++
		}
	}
	return res
}

// Fig3Point is one scatter point of Figure 3: a round's direct-path
// throughput against its improvement.
type Fig3Point struct {
	DirectTp    float64 // bits/sec
	Improvement float64 // percent
}

// Fig3Client is one client's panel of Figure 3.
type Fig3Client struct {
	Client string
	Points []Fig3Point
	// Slope is the OLS slope of improvement (percent) per Mb/s of direct
	// throughput; the paper's figure shows downward trends, i.e.
	// negative slopes.
	Slope float64
	R2    float64
}

// Fig3Result reproduces Figure 3: improvement vs. client throughput for
// each client over its top three intermediates.
type Fig3Result struct {
	Clients []Fig3Client
	// MeanSlope is the across-client average slope (%/Mbps).
	MeanSlope float64
	// FractionNegative is the share of clients with a negative slope.
	FractionNegative float64
}

// Fig3 derives the improvement-vs-throughput relation from the pair study,
// using each client's top three intermediates (as the paper's figure
// does).
func Fig3(ps *PairStudyResult) Fig3Result {
	t2 := Table2(ps)
	var res Fig3Result
	neg := 0
	var slopeSum float64
	for _, row := range t2.Rows {
		fc := Fig3Client{Client: row.Client}
		var xs, ys []float64
		for _, top := range row.Top {
			for _, rec := range ps.PerPair[row.Client][top.Inter] {
				if !rec.Indirect() {
					continue
				}
				pt := Fig3Point{DirectTp: rec.DirectTp, Improvement: rec.Improvement}
				fc.Points = append(fc.Points, pt)
				xs = append(xs, rec.DirectTp/1e6)
				ys = append(ys, rec.Improvement)
			}
		}
		if len(xs) >= 2 {
			fit := stats.OLS(xs, ys)
			fc.Slope, fc.R2 = fit.Slope, fit.R2
			slopeSum += fit.Slope
			if fit.Slope < 0 {
				neg++
			}
			res.Clients = append(res.Clients, fc)
		}
	}
	if n := len(res.Clients); n > 0 {
		res.MeanSlope = slopeSum / float64(n)
		res.FractionNegative = float64(neg) / float64(n)
	}
	return res
}

// Fig5Row is one intermediate's utilization statistics across clients.
type Fig5Row struct {
	Inter string
	// Average, Stdev, RMS are over per-client utilizations (percent), as
	// plotted in the paper's Figure 5.
	Average, Stdev, RMS float64
}

// Fig5Result reproduces Figure 5: total utilization per intermediate node,
// with an overall average the paper reports as 45%.
type Fig5Result struct {
	Rows []Fig5Row
	// OverallAvg is the mean utilization across all intermediates
	// (percent).
	OverallAvg float64
}

// Fig5 aggregates intermediate utilizations across all clients.
func Fig5(ps *PairStudyResult) Fig5Result {
	perInter := make(map[string][]float64)
	for _, m := range ps.PerPair {
		for inter, recs := range m {
			perInter[inter] = append(perInter[inter], UtilizationOf(recs)*100)
		}
	}
	inters := make([]string, 0, len(perInter))
	for in := range perInter {
		inters = append(inters, in)
	}
	sort.Strings(inters)

	var res Fig5Result
	var total float64
	for _, in := range inters {
		var acc stats.Acc
		for _, u := range perInter[in] {
			acc.Add(u)
		}
		res.Rows = append(res.Rows, Fig5Row{
			Inter:   in,
			Average: acc.Mean(),
			Stdev:   acc.Std(),
			RMS:     acc.RMS(),
		})
		total += acc.Mean()
	}
	if len(res.Rows) > 0 {
		res.OverallAvg = total / float64(len(res.Rows))
	}
	return res
}
