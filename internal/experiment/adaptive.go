package experiment

import (
	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/randx"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/topo"
)

// The adaptive experiment quantifies the paper's closing suggestion that
// indirect routing "can also be used to decrease throughput variability":
// it compares the one-shot probe-and-commit client of the paper against
// the adaptive Downloader (segment fetches with periodic re-races) on the
// same simulated paths.

// AdaptiveParams configures the comparison.
type AdaptiveParams struct {
	Seed     uint64
	Scenario topo.Params
	// Clients defaults to variable (regime-switching) clients, where
	// adaptation should matter most.
	Clients []string
	Rounds  int // per client; default 60
	// SegmentBytes and RefreshEvery parameterize the Downloader.
	SegmentBytes int64
	RefreshEvery int
	Config       Config
	Workers      int
}

func (p AdaptiveParams) withDefaults() AdaptiveParams {
	if p.Scenario.Seed == 0 {
		p.Scenario.Seed = p.Seed
	}
	if p.Rounds == 0 {
		p.Rounds = 60
	}
	if p.SegmentBytes == 0 {
		p.SegmentBytes = 1_000_000
	}
	if p.RefreshEvery == 0 {
		p.RefreshEvery = 1
	}
	if p.Config.Period == 0 {
		p.Config.Period = 120
	}
	return p
}

// AdaptiveResult is the per-client comparison.
type AdaptiveResult struct {
	Client string

	// OneShot and Adaptive are the mean throughputs (bits/sec) of the
	// two clients over identical rounds (not identical noise, but the
	// same path processes).
	OneShot, Adaptive float64

	// OneShotCV and AdaptiveCV are the coefficients of variation of
	// per-round throughput — the paper's variability claim predicts the
	// adaptive client's should be lower.
	OneShotCV, AdaptiveCV float64

	// MeanSwitches is the average number of mid-transfer path switches
	// per adaptive round.
	MeanSwitches float64
}

// RunAdaptive executes the comparison. Both clients run in the same
// simulated world in alternating rounds, so they sample the same path
// processes.
func RunAdaptive(p AdaptiveParams) []AdaptiveResult {
	p = p.withDefaults()
	scen := topo.NewScenario(p.Scenario)
	if len(p.Clients) == 0 {
		for _, c := range scen.Clients {
			if scen.ClientNet(c).Variable {
				p.Clients = append(p.Clients, c.Name)
			}
			if len(p.Clients) == 4 {
				break
			}
		}
	}
	server := scen.FindServer("eBay")
	must(server != nil, "eBay server missing")

	var out []AdaptiveResult
	for _, name := range p.Clients {
		client := scen.FindClient(name)
		must(client != nil, "unknown client %q", name)
		out = append(out, runAdaptiveClient(p, scen, client, server))
	}
	return out
}

func runAdaptiveClient(p AdaptiveParams, scen *topo.Scenario, client, server *topo.Node) AdaptiveResult {
	cfg := p.Config.withDefaults()
	eng := simnet.NewEngine()
	net := simnet.NewNetwork(eng)
	rng := randx.New(campaignSeed(p.Seed, label("adaptive", client.Name)))
	inter := staticIntermediate(scen, client)
	inst := scen.Instantiate(net, rng.Fork("instance"), client,
		[]*topo.Node{server}, []*topo.Node{inter})
	defer inst.Close()
	world := httpsim.NewWorld(inst, []*topo.Node{server}, []*topo.Node{inter})
	world.SetupRTTs = cfg.SetupRTTs
	world.Put(server.Name, objectName, cfg.ObjectBytes)
	inst.Warmup(cfg.Warmup)

	obj := core.Object{Server: server.Name, Name: objectName, Size: cfg.ObjectBytes}
	cands := []string{inter.Name}
	dl := &core.Downloader{
		Transport:    world,
		ProbeBytes:   cfg.ProbeBytes,
		SegmentBytes: p.SegmentBytes,
		RefreshEvery: p.RefreshEvery,
		Rule:         cfg.Rule,
	}

	var oneShot, adaptive []float64
	switches := 0
	for i := 0; i < p.Rounds; i++ {
		start := world.Now()

		// One-shot client (the paper's mechanism).
		o := core.SelectAndFetch(world, obj, cands,
			core.Config{ProbeBytes: cfg.ProbeBytes, Rule: cfg.Rule})
		if o.Err == nil {
			oneShot = append(oneShot, o.Throughput())
		}
		eng.RunUntil(world.Now() + 10)

		// Adaptive client on the same paths, shortly after.
		r, err := dl.Download(obj, cands)
		if err == nil {
			adaptive = append(adaptive, r.Throughput())
			switches += r.Switches
		}

		next := start + cfg.Period
		if now := world.Now(); next < now+5 {
			next = now + 5
		}
		eng.RunUntil(next)
	}

	res := AdaptiveResult{Client: client.Name}
	var a, b stats.Acc
	for _, v := range oneShot {
		a.Add(v)
	}
	for _, v := range adaptive {
		b.Add(v)
	}
	res.OneShot, res.Adaptive = a.Mean(), b.Mean()
	if a.Mean() > 0 {
		res.OneShotCV = a.Std() / a.Mean()
	}
	if b.Mean() > 0 {
		res.AdaptiveCV = b.Std() / b.Mean()
	}
	if len(adaptive) > 0 {
		res.MeanSwitches = float64(switches) / float64(len(adaptive))
	}
	return res
}
