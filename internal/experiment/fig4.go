package experiment

import (
	"sort"

	"repro/internal/stats"
)

// Fig4Series is one client's indirect-path throughput time series.
type Fig4Series struct {
	Client string
	Times  []float64 // virtual seconds
	Tp     []float64 // bits/sec of the selected indirect transfer

	// SlopePerHourPct is the OLS trend expressed as percent of the mean
	// throughput per hour — the paper's Figure 4 shows "no discernable
	// uptrend or downtrend", i.e. values near zero.
	SlopePerHourPct float64

	// JumpCount is the number of successive samples differing by more
	// than 50% of the mean — the "few small jumps" the paper observes.
	JumpCount int
}

// Fig4Result reproduces Figure 4: indirect path throughput vs. time for
// each client with enough indirect-selected rounds.
type Fig4Result struct {
	Series []Fig4Series

	// MeanAbsSlopePct is the across-client mean |trend| in %/hour; small
	// values support the paper's stationarity claim.
	MeanAbsSlopePct float64
}

// Fig4 extracts indirect-path throughput over time from the Section 3
// dataset. Clients with fewer than minSamples indirect rounds are skipped
// (5 when minSamples <= 0).
func Fig4(study *StudyResult, minSamples int) Fig4Result {
	if minSamples <= 0 {
		minSamples = 5
	}
	clients := make([]string, 0, len(study.PerClient))
	for c := range study.PerClient {
		clients = append(clients, c)
	}
	sort.Strings(clients)

	var res Fig4Result
	var absSum float64
	for _, c := range clients {
		var s Fig4Series
		s.Client = c
		for _, rec := range study.PerClient[c] {
			if rec.Indirect() {
				s.Times = append(s.Times, rec.Time)
				s.Tp = append(s.Tp, rec.SelectedTp)
			}
		}
		if len(s.Tp) < minSamples {
			continue
		}
		mean := stats.Mean(s.Tp)
		if mean > 0 {
			s.SlopePerHourPct = stats.TrendSlopePerHour(s.Times, s.Tp) / mean * 100
			for i := 1; i < len(s.Tp); i++ {
				if abs(s.Tp[i]-s.Tp[i-1]) > 0.5*mean {
					s.JumpCount++
				}
			}
		}
		absSum += abs(s.SlopePerHourPct)
		res.Series = append(res.Series, s)
	}
	if len(res.Series) > 0 {
		res.MeanAbsSlopePct = absSum / float64(len(res.Series))
	}
	return res
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
