package experiment

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/randx"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Fig6Params configures the Section 4 random-set-size sweep: three clients
// (Duke, Italy, Sweden) select among random subsets of the 35-node full
// intermediate set, for subset sizes 1..35.
type Fig6Params struct {
	Seed     uint64
	Scenario topo.Params

	// SetSizes are the random-set sizes to sweep. Default covers 1..35
	// with coarser spacing at the flat end.
	SetSizes []int

	// TransfersPerSize is the number of rounds per (client, size). The
	// paper ran 720 (every 30 s for 6 h); the default 120 preserves the
	// curve shape at a fraction of the cost.
	TransfersPerSize int

	// Clients defaults to the paper's Duke, Italy, Sweden.
	Clients []string

	Config  Config
	Workers int
}

func (p Fig6Params) withDefaults() Fig6Params {
	if p.Scenario.Seed == 0 {
		p.Scenario.Seed = p.Seed
	}
	if p.Scenario.NumIntermediates == 0 {
		p.Scenario.NumIntermediates = 35
	}
	if len(p.SetSizes) == 0 {
		p.SetSizes = []int{1, 2, 3, 4, 5, 6, 8, 10, 12, 15, 20, 25, 30, 35}
	}
	if p.TransfersPerSize == 0 {
		p.TransfersPerSize = 120
	}
	if len(p.Clients) == 0 {
		p.Clients = []string{"Duke (client)", "Italy (client)", "Sweden (client)"}
	}
	if p.Config.Period == 0 {
		// Section 4 schedule: one transfer every 30 s.
		p.Config.Period = 30
	}
	// Section 4 methodology: per-candidate preliminary tests, improvement
	// measured on the selected transfer itself.
	p.Config.SequentialProbes = true
	p.Config.ExcludeProbePhase = true
	return p
}

// Fig6Curve is one client's improvement-vs-set-size curve.
type Fig6Curve struct {
	Client string
	Sizes  []int
	// AvgImprovement[i] is the mean improvement (percent) over ALL
	// rounds at Sizes[i], including direct-selected rounds — matching
	// the paper's Figure 6 axis.
	AvgImprovement []float64
	// ImprovementCI[i] is a bootstrap 95% confidence interval for
	// AvgImprovement[i] (an error margin the paper's figure lacks).
	ImprovementCI []stats.CI
	// Utilization[i] is the fraction of rounds selecting indirect.
	Utilization []float64
}

// KneeSize returns the smallest set size achieving at least 80% of the
// curve's plateau value (the mean improvement over the three largest
// sizes) — the paper eyeballs the knee at ~10 of 35. Measuring against
// the plateau rather than the single maximum keeps the estimate robust to
// sampling noise at individual sizes.
func (c Fig6Curve) KneeSize() int {
	n := len(c.Sizes)
	if n == 0 {
		return 0
	}
	tail := 3
	if tail > n {
		tail = n
	}
	plateau := 0.0
	for _, v := range c.AvgImprovement[n-tail:] {
		plateau += v
	}
	plateau /= float64(tail)
	for i, v := range c.AvgImprovement {
		if v >= 0.8*plateau {
			return c.Sizes[i]
		}
	}
	return c.Sizes[n-1]
}

// Fig6Result reproduces Figure 6.
type Fig6Result struct {
	Curves []Fig6Curve
}

// Fig6 runs the random-set-size sweep.
func Fig6(p Fig6Params) Fig6Result {
	p = p.withDefaults()
	scen := topo.NewScenario(p.Scenario)

	server := scen.FindServer("eBay")
	must(server != nil, "eBay server missing")

	type key struct {
		client string
		size   int
	}
	var specs []CampaignSpec
	var keys []key
	for _, name := range p.Clients {
		client := scen.FindClient(name)
		must(client != nil, "unknown client %q", name)
		for _, k := range p.SetSizes {
			specs = append(specs, CampaignSpec{
				Scenario:  scen,
				Client:    client,
				Server:    server,
				Inters:    scen.Intermediates,
				Policy:    core.UniformRandomPolicy{K: k},
				Transfers: p.TransfersPerSize,
				Seed:      campaignSeed(p.Seed, label("fig6", name, strconv.Itoa(k))),
				Config:    p.Config,
			})
			keys = append(keys, key{name, k})
		}
	}
	results := RunAll(specs, p.Workers)

	byClient := make(map[string]*Fig6Curve)
	var res Fig6Result
	for _, name := range p.Clients {
		c := &Fig6Curve{Client: name}
		byClient[name] = c
	}
	ciRng := randx.New(p.Seed ^ 0xb007)
	for i, r := range results {
		k := keys[i]
		c := byClient[k.client]
		var imps []float64
		for _, rec := range r.Records {
			if rec.Err == nil {
				imps = append(imps, rec.Improvement)
			}
		}
		c.Sizes = append(c.Sizes, k.size)
		c.AvgImprovement = append(c.AvgImprovement, stats.Mean(imps))
		c.ImprovementCI = append(c.ImprovementCI,
			stats.BootstrapMeanCI(imps, 0.95, 400, ciRng.Fork(label(k.client, strconv.Itoa(k.size)))))
		c.Utilization = append(c.Utilization, UtilizationOf(r.Records))
	}
	for _, name := range p.Clients {
		res.Curves = append(res.Curves, *byClient[name])
	}
	return res
}
