package experiment

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/randx"
	"repro/internal/simnet"
	"repro/internal/topo"
)

// The monitored-selection experiment compares the paper's in-band probing
// (pay a probe race on every transfer, always act on fresh information)
// against RON-style background monitoring (keep a path table refreshed out
// of band, act on possibly stale estimates with zero per-transfer probing
// overhead) — the design-space neighbor the paper's related-work section
// positions against.

// MonitoredParams configures the comparison.
type MonitoredParams struct {
	Seed     uint64
	Scenario topo.Params
	Clients  []string // default: one per category
	Rounds   int      // default 80
	// RefreshEvery is how many rounds pass between background refreshes
	// of the monitor's table (default 5; 1 = refresh before every
	// transfer).
	RefreshEvery int
	Candidates   int // candidate relays per client (default 3, best pairs)
	Config       Config
	Workers      int
}

func (p MonitoredParams) withDefaults() MonitoredParams {
	if p.Scenario.Seed == 0 {
		p.Scenario.Seed = p.Seed
	}
	if len(p.Clients) == 0 {
		p.Clients = []string{"India", "Sweden", "Canada"}
	}
	if p.Rounds == 0 {
		p.Rounds = 80
	}
	if p.RefreshEvery == 0 {
		p.RefreshEvery = 5
	}
	if p.Candidates == 0 {
		p.Candidates = 3
	}
	if p.Config.Period == 0 {
		p.Config.Period = 120
	}
	return p
}

// MonitoredResult aggregates one strategy's rounds per client.
type MonitoredResult struct {
	Client string

	// ProbingAvg and MonitoredAvg are mean improvements (percent) over
	// the control direct process.
	ProbingAvg, MonitoredAvg float64

	// ProbingPenalties and MonitoredPenalties are penalty fractions of
	// indirect-selected rounds.
	ProbingPenalties, MonitoredPenalties float64

	// MonitoredStaleness counts rounds where the monitored client chose
	// a path the probing client (with fresh information) would not have.
	Disagreements int
	Rounds        int
}

// RunMonitored executes the comparison: in each round both strategies run
// back-to-back on the same simulated paths next to their own direct
// control transfers.
func RunMonitored(p MonitoredParams) []MonitoredResult {
	p = p.withDefaults()
	scen := topo.NewScenario(p.Scenario)
	server := scen.FindServer("eBay")
	must(server != nil, "eBay server missing")

	var out []MonitoredResult
	for _, name := range p.Clients {
		client := scen.FindClient(name)
		must(client != nil, "unknown client %q", name)
		out = append(out, runMonitoredClient(p, scen, client, server))
	}
	return out
}

func runMonitoredClient(p MonitoredParams, scen *topo.Scenario, client, server *topo.Node) MonitoredResult {
	cfg := p.Config.withDefaults()
	eng := simnet.NewEngine()
	net := simnet.NewNetwork(eng)
	rng := randx.New(campaignSeed(p.Seed, label("monitored", client.Name, strconv.Itoa(p.RefreshEvery))))

	// Candidate set: the client's best overlay pairs.
	inters := bestPairs(scen, client, p.Candidates)
	inst := scen.Instantiate(net, rng.Fork("instance"), client, []*topo.Node{server}, inters)
	defer inst.Close()
	world := httpsim.NewWorld(inst, []*topo.Node{server}, inters)
	world.SetupRTTs = cfg.SetupRTTs
	world.Put(server.Name, objectName, cfg.ObjectBytes)
	inst.Warmup(cfg.Warmup)

	cands := make([]string, len(inters))
	for i, in := range inters {
		cands[i] = in.Name
	}
	obj := core.Object{Server: server.Name, Name: objectName, Size: cfg.ObjectBytes}
	mon := core.NewMonitor()

	res := MonitoredResult{Client: client.Name, Rounds: p.Rounds}
	var probImps, monImps []float64
	probPen, probInd, monPen, monInd := 0, 0, 0, 0

	for i := 0; i < p.Rounds; i++ {
		start := world.Now()

		// Background refresh (out of band, between transfers).
		if i%p.RefreshEvery == 0 {
			mon.Refresh(world, obj, cfg.ProbeBytes, cands)
		}

		// Probing strategy with its own control.
		ctrl := world.Start(obj, core.Path{}, 0, obj.Size)
		probing := core.SelectAndFetch(world, obj, cands,
			core.Config{ProbeBytes: cfg.ProbeBytes, Rule: cfg.Rule})
		world.Wait(ctrl)
		if probing.Err == nil && ctrl.Result().Err == nil {
			imp := core.Improvement(probing.Throughput(), ctrl.Result().Throughput())
			probImps = append(probImps, imp)
			if probing.SelectedIndirect() {
				probInd++
				if imp < 0 {
					probPen++
				}
			}
		}
		eng.RunUntil(world.Now() + 10)

		// Monitored strategy with its own control.
		ctrl2 := world.Start(obj, core.Path{}, 0, obj.Size)
		monitored := core.SelectMonitored(world, obj, cands, mon)
		world.Wait(ctrl2)
		if monitored.Err == nil && ctrl2.Result().Err == nil {
			imp := core.Improvement(monitored.Throughput(), ctrl2.Result().Throughput())
			monImps = append(monImps, imp)
			if monitored.SelectedIndirect() {
				monInd++
				if imp < 0 {
					monPen++
				}
			}
		}
		if monitored.Selected != probing.Selected {
			res.Disagreements++
		}

		next := start + cfg.Period
		if now := world.Now(); next < now+5 {
			next = now + 5
		}
		eng.RunUntil(next)
	}

	res.ProbingAvg = mean(probImps)
	res.MonitoredAvg = mean(monImps)
	if probInd > 0 {
		res.ProbingPenalties = float64(probPen) / float64(probInd)
	}
	if monInd > 0 {
		res.MonitoredPenalties = float64(monPen) / float64(monInd)
	}
	return res
}

// bestPairs returns the client's top-n intermediates by pair mean.
func bestPairs(scen *topo.Scenario, client *topo.Node, n int) []*topo.Node {
	inters := append([]*topo.Node{}, scen.Intermediates...)
	for i := 1; i < len(inters); i++ {
		for j := i; j > 0 && scen.PairMean(client, inters[j]) > scen.PairMean(client, inters[j-1]); j-- {
			inters[j], inters[j-1] = inters[j-1], inters[j]
		}
	}
	if n > len(inters) {
		n = len(inters)
	}
	return inters[:n]
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
