package experiment

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/topo"
)

// The ablations quantify the design choices DESIGN.md calls out: the probe
// size x, the selection rule, utilization-weighted candidate sets, and the
// cost of shared bottlenecks.

// AblationPoint is one configuration's aggregate outcome.
type AblationPoint struct {
	Label string

	// AvgImprovement is the mean improvement (percent) over all rounds.
	AvgImprovement float64
	// Utilization is the indirect-selection fraction.
	Utilization float64
	// PenaltyFrac is the fraction of indirect-selected rounds with
	// negative improvement (mispredictions).
	PenaltyFrac float64
	// ProbeOverheadPct is the mean share of round duration spent probing.
	ProbeOverheadPct float64
}

// summarizeRounds folds campaign records into an AblationPoint.
func summarizeRounds(lbl string, recs []Record) AblationPoint {
	pt := AblationPoint{Label: lbl}
	var imps []float64
	indirect, penalties := 0, 0
	for _, r := range recs {
		if r.Err != nil {
			continue
		}
		imps = append(imps, r.Improvement)
		if r.Indirect() {
			indirect++
			if r.Improvement < 0 {
				penalties++
			}
		}
	}
	pt.AvgImprovement = stats.Mean(imps)
	if len(imps) > 0 {
		pt.Utilization = float64(indirect) / float64(len(imps))
	}
	if indirect > 0 {
		pt.PenaltyFrac = float64(penalties) / float64(indirect)
	}
	return pt
}

// AblationParams configures all ablation sweeps.
type AblationParams struct {
	Seed     uint64
	Scenario topo.Params
	// Clients are the subjects; default: one client per category.
	Clients []string
	Rounds  int // default 80 per configuration per client
	Config  Config
	Workers int
}

func (p AblationParams) withDefaults() AblationParams {
	if p.Scenario.Seed == 0 {
		p.Scenario.Seed = p.Seed
	}
	if len(p.Clients) == 0 {
		p.Clients = []string{"India", "Sweden", "Canada"} // Low, Medium, High
	}
	if p.Rounds == 0 {
		p.Rounds = 80
	}
	if p.Config.Period == 0 {
		p.Config.Period = 60
	}
	return p
}

// sec4Config applies the Section 4 methodology flags used by the
// set-based ablations.
func sec4Config(c Config) Config {
	c.SequentialProbes = true
	c.ExcludeProbePhase = true
	return c
}

// AblateProbeSize sweeps the probe size x and reports how prediction
// quality and overhead respond. The paper determined x = 100 KB
// experimentally; small probes terminate inside slow start and mispredict,
// huge probes waste time on both paths.
func AblateProbeSize(p AblationParams, sizes []int64) []AblationPoint {
	p = p.withDefaults()
	if len(sizes) == 0 {
		sizes = []int64{10_000, 25_000, 50_000, 100_000, 250_000, 500_000, 1_000_000}
	}
	scen := topo.NewScenario(p.Scenario)
	server := scen.FindServer("eBay")
	must(server != nil, "eBay server missing")

	var specs []CampaignSpec
	var labels []string
	for _, x := range sizes {
		cfg := p.Config
		cfg.ProbeBytes = x
		for _, name := range p.Clients {
			client := scen.FindClient(name)
			must(client != nil, "unknown client %q", name)
			inter := staticIntermediate(scen, client)
			specs = append(specs, CampaignSpec{
				Scenario:  scen,
				Client:    client,
				Server:    server,
				Inters:    []*topo.Node{inter},
				Policy:    core.StaticPolicy{Intermediate: inter.Name},
				Transfers: p.Rounds,
				Seed:      campaignSeed(p.Seed, label("probe", strconv.FormatInt(x, 10), name)),
				Config:    cfg,
			})
			labels = append(labels, "x="+strconv.FormatInt(x, 10))
		}
	}
	results := RunAll(specs, p.Workers)
	return groupPoints(labels, results)
}

// AblateSelectionRule compares first-finished selection with
// max-measured-throughput selection on identical campaigns.
func AblateSelectionRule(p AblationParams) []AblationPoint {
	p = p.withDefaults()
	scen := topo.NewScenario(p.Scenario)
	server := scen.FindServer("eBay")
	must(server != nil, "eBay server missing")

	var specs []CampaignSpec
	var labels []string
	for _, rule := range []core.Rule{core.FirstFinished, core.MaxThroughput} {
		cfg := p.Config
		cfg.Rule = rule
		for _, name := range p.Clients {
			client := scen.FindClient(name)
			must(client != nil, "unknown client %q", name)
			inter := staticIntermediate(scen, client)
			specs = append(specs, CampaignSpec{
				Scenario:  scen,
				Client:    client,
				Server:    server,
				Inters:    []*topo.Node{inter},
				Policy:    core.StaticPolicy{Intermediate: inter.Name},
				Transfers: p.Rounds,
				Seed:      campaignSeed(p.Seed, label("rule", rule.String(), name)),
				Config:    cfg,
			})
			labels = append(labels, rule.String())
		}
	}
	results := RunAll(specs, p.Workers)
	return groupPoints(labels, results)
}

// AblateWeightedPolicy compares the uniform random set against the
// utilization-weighted random set the paper proposes in Section 6, at the
// same set size.
func AblateWeightedPolicy(p AblationParams, setSize int) []AblationPoint {
	p = p.withDefaults()
	if setSize == 0 {
		setSize = 5
	}
	scenP := p.Scenario
	scenP.NumIntermediates = 35
	scen := topo.NewScenario(scenP)
	server := scen.FindServer("eBay")
	must(server != nil, "eBay server missing")

	var specs []CampaignSpec
	var labels []string
	for _, name := range p.Clients {
		client := scen.FindClient(name)
		must(client != nil, "unknown client %q", name)

		specs = append(specs, CampaignSpec{
			Scenario:  scen,
			Client:    client,
			Server:    server,
			Inters:    scen.Intermediates,
			Policy:    core.UniformRandomPolicy{K: setSize},
			Transfers: p.Rounds,
			Seed:      campaignSeed(p.Seed, label("policy", "uniform", name)),
			Config:    sec4Config(p.Config),
		})
		labels = append(labels, "uniform")

		tracker := core.NewTracker()
		specs = append(specs, CampaignSpec{
			Scenario:  scen,
			Client:    client,
			Server:    server,
			Inters:    scen.Intermediates,
			Policy:    core.WeightedRandomPolicy{K: setSize, Tracker: tracker},
			Transfers: p.Rounds,
			Seed:      campaignSeed(p.Seed, label("policy", "weighted", name)),
			Config:    sec4Config(p.Config),
			Tracker:   tracker,
		})
		labels = append(labels, "weighted")
	}
	results := RunAll(specs, p.Workers)
	return groupPoints(labels, results)
}

// AblateSharedBottleneck sweeps the fraction of clients whose access link
// pins both paths, showing how shared bottlenecks erode improvement and
// inflate penalties (a paper-identified failure mode).
func AblateSharedBottleneck(p AblationParams, fracs []float64) []AblationPoint {
	p = p.withDefaults()
	if len(fracs) == 0 {
		fracs = []float64{0.0001, 0.25, 0.5, 0.999}
	}
	var out []AblationPoint
	for _, f := range fracs {
		scenP := p.Scenario
		scenP.SharedBottleneckFrac = f
		scen := topo.NewScenario(scenP)
		server := scen.FindServer("eBay")
		must(server != nil, "eBay server missing")

		var specs []CampaignSpec
		for _, name := range p.Clients {
			client := scen.FindClient(name)
			must(client != nil, "unknown client %q", name)
			inter := staticIntermediate(scen, client)
			specs = append(specs, CampaignSpec{
				Scenario:  scen,
				Client:    client,
				Server:    server,
				Inters:    []*topo.Node{inter},
				Policy:    core.StaticPolicy{Intermediate: inter.Name},
				Transfers: p.Rounds,
				Seed:      campaignSeed(p.Seed, label("shared", strconv.FormatFloat(f, 'g', -1, 64), name)),
				Config:    p.Config,
			})
		}
		results := RunAll(specs, p.Workers)
		var recs []Record
		for _, r := range results {
			recs = append(recs, r.Records...)
		}
		out = append(out, summarizeRounds("frac="+strconv.FormatFloat(f, 'g', 3, 64), recs))
	}
	return out
}

// groupPoints merges same-labelled campaign results into one point each,
// preserving first-appearance order.
func groupPoints(labels []string, results []CampaignResult) []AblationPoint {
	byLabel := make(map[string][]Record)
	var order []string
	for i, r := range results {
		if _, ok := byLabel[labels[i]]; !ok {
			order = append(order, labels[i])
		}
		byLabel[labels[i]] = append(byLabel[labels[i]], r.Records...)
	}
	var out []AblationPoint
	for _, lbl := range order {
		pt := summarizeRounds(lbl, byLabel[lbl])
		pt.ProbeOverheadPct = probeOverhead(byLabel[lbl])
		out = append(out, pt)
	}
	return out
}

// probeOverhead estimates the probing share of the selecting process's
// round time from probe and overall throughput.
func probeOverhead(recs []Record) float64 {
	var sum float64
	n := 0
	for _, r := range recs {
		if r.Err != nil || r.SelectedTp <= 0 || r.ProbeBestTp <= 0 {
			continue
		}
		// Round duration = size/selectedTp; probe duration approximated
		// by probeBytes/probeBestTp is not recorded directly, so use the
		// throughput deficit as the proxy: 1 - selected/best ceiling.
		deficit := 1 - r.SelectedTp/maxF(r.ProbeBestTp, r.SelectedTp)
		sum += deficit * 100
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// AblateObjectSize sweeps the download size, showing why the paper
// restricts itself to files of at least 2 MB: short transfers are
// dominated by slow start and the fixed probing overhead, so indirect
// routing cannot pay for itself.
func AblateObjectSize(p AblationParams, sizes []int64) []AblationPoint {
	p = p.withDefaults()
	if len(sizes) == 0 {
		sizes = []int64{250_000, 500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000}
	}
	scen := topo.NewScenario(p.Scenario)
	server := scen.FindServer("eBay")
	must(server != nil, "eBay server missing")

	var specs []CampaignSpec
	var labels []string
	for _, size := range sizes {
		cfg := p.Config
		cfg.ObjectBytes = size
		for _, name := range p.Clients {
			client := scen.FindClient(name)
			must(client != nil, "unknown client %q", name)
			inter := staticIntermediate(scen, client)
			specs = append(specs, CampaignSpec{
				Scenario:  scen,
				Client:    client,
				Server:    server,
				Inters:    []*topo.Node{inter},
				Policy:    core.StaticPolicy{Intermediate: inter.Name},
				Transfers: p.Rounds,
				Seed:      campaignSeed(p.Seed, label("objsize", strconv.FormatInt(size, 10), name)),
				Config:    cfg,
			})
			labels = append(labels, "size="+strconv.FormatInt(size, 10))
		}
	}
	results := RunAll(specs, p.Workers)
	return groupPoints(labels, results)
}
