package experiment

import (
	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/randx"
	"repro/internal/simnet"
	"repro/internal/topo"
)

// The multipath experiment contrasts the paper's select-one-path design
// with mesh-style striping across paths (the Bullet direction from the
// related work): chunks of the object are pulled over the direct path and
// the candidate relays concurrently with work stealing. Striping can
// aggregate bandwidth — but all of a client's paths share its access
// link, so the gain collapses exactly where the paper's penalties live.

// MultipathParams configures the comparison.
type MultipathParams struct {
	Seed       uint64
	Scenario   topo.Params
	Clients    []string // default: one per category
	Rounds     int      // default 60
	Candidates int      // relays striped over (default 2, best pairs)
	ChunkBytes int64    // striping granularity (default 500 KB)
	Config     Config
	Workers    int
}

func (p MultipathParams) withDefaults() MultipathParams {
	if p.Scenario.Seed == 0 {
		p.Scenario.Seed = p.Seed
	}
	if len(p.Clients) == 0 {
		p.Clients = []string{"India", "Sweden", "Canada"}
	}
	if p.Rounds == 0 {
		p.Rounds = 60
	}
	if p.Candidates == 0 {
		p.Candidates = 2
	}
	if p.ChunkBytes == 0 {
		p.ChunkBytes = 500_000
	}
	if p.Config.Period == 0 {
		p.Config.Period = 120
	}
	return p
}

// MultipathResult compares the strategies for one client.
type MultipathResult struct {
	Client string

	// SelectAvg and StripeAvg are mean improvements (percent) over the
	// control direct transfer.
	SelectAvg, StripeAvg float64

	// StripeSpread is the mean fraction of bytes carried by non-direct
	// paths in the striped download.
	StripeSpread float64

	SharedBottleneck bool
	Rounds           int
}

// RunMultipath executes the comparison per client.
func RunMultipath(p MultipathParams) []MultipathResult {
	p = p.withDefaults()
	scen := topo.NewScenario(p.Scenario)
	server := scen.FindServer("eBay")
	must(server != nil, "eBay server missing")

	var out []MultipathResult
	for _, name := range p.Clients {
		client := scen.FindClient(name)
		must(client != nil, "unknown client %q", name)
		out = append(out, runMultipathClient(p, scen, client, server))
	}
	return out
}

func runMultipathClient(p MultipathParams, scen *topo.Scenario, client, server *topo.Node) MultipathResult {
	cfg := p.Config.withDefaults()
	eng := simnet.NewEngine()
	net := simnet.NewNetwork(eng)
	rng := randx.New(campaignSeed(p.Seed, label("multipath", client.Name)))

	inters := bestPairs(scen, client, p.Candidates)
	inst := scen.Instantiate(net, rng.Fork("instance"), client, []*topo.Node{server}, inters)
	defer inst.Close()
	world := httpsim.NewWorld(inst, []*topo.Node{server}, inters)
	world.SetupRTTs = cfg.SetupRTTs
	world.Put(server.Name, objectName, cfg.ObjectBytes)
	inst.Warmup(cfg.Warmup)

	cands := make([]string, len(inters))
	for i, in := range inters {
		cands[i] = in.Name
	}
	obj := core.Object{Server: server.Name, Name: objectName, Size: cfg.ObjectBytes}
	mp := &core.MultipathDownloader{Transport: world, ChunkBytes: p.ChunkBytes}

	res := MultipathResult{
		Client:           client.Name,
		Rounds:           p.Rounds,
		SharedBottleneck: scen.ClientNet(client).SharedBottleneck,
	}
	var selImps, strImps, spreads []float64

	for i := 0; i < p.Rounds; i++ {
		start := world.Now()

		// Single-path selection with its control.
		ctrl := world.Start(obj, core.Path{}, 0, obj.Size)
		sel := core.SelectAndFetch(world, obj, cands,
			core.Config{ProbeBytes: cfg.ProbeBytes, Rule: cfg.Rule})
		world.Wait(ctrl)
		if sel.Err == nil && ctrl.Result().Err == nil {
			selImps = append(selImps,
				core.Improvement(sel.Throughput(), ctrl.Result().Throughput()))
		}
		eng.RunUntil(world.Now() + 10)

		// Multipath striping with its control.
		ctrl2 := world.Start(obj, core.Path{}, 0, obj.Size)
		str, err := mp.Download(obj, cands)
		world.Wait(ctrl2)
		if err == nil && ctrl2.Result().Err == nil {
			strImps = append(strImps,
				core.Improvement(str.Throughput(), ctrl2.Result().Throughput()))
			var indirect, total int64
			for _, sh := range str.Shares {
				total += sh.Bytes
				if !sh.Path.IsDirect() {
					indirect += sh.Bytes
				}
			}
			if total > 0 {
				spreads = append(spreads, float64(indirect)/float64(total))
			}
		}

		next := start + cfg.Period
		if now := world.Now(); next < now+5 {
			next = now + 5
		}
		eng.RunUntil(next)
	}

	res.SelectAvg = mean(selImps)
	res.StripeAvg = mean(strImps)
	res.StripeSpread = mean(spreads)
	return res
}
