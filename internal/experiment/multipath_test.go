package experiment

import "testing"

func TestRunMultipath(t *testing.T) {
	results := RunMultipath(MultipathParams{Seed: 42, Rounds: 20})
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	anyStriping := false
	for _, r := range results {
		if r.Rounds != 20 {
			t.Fatalf("%s rounds = %d", r.Client, r.Rounds)
		}
		if r.StripeSpread < 0 || r.StripeSpread > 1 {
			t.Fatalf("%s spread = %v", r.Client, r.StripeSpread)
		}
		if r.StripeSpread > 0.1 {
			anyStriping = true
		}
		// Striping must not be catastrophically worse than selection —
		// work stealing keeps slow paths from dragging the download.
		if r.StripeAvg < r.SelectAvg-120 {
			t.Errorf("%s: striping %.1f%% far below selection %.1f%%",
				r.Client, r.StripeAvg, r.SelectAvg)
		}
	}
	if !anyStriping {
		t.Error("no client spread meaningful bytes over relays; striping inert")
	}
}

func TestRunMultipathAggregatesForLowClients(t *testing.T) {
	// For a low-throughput client whose access link has headroom, striping
	// direct+relay should beat single-path selection on average (it uses
	// both pipes).
	results := RunMultipath(MultipathParams{
		Seed: 42, Rounds: 30, Clients: []string{"Korea"},
	})
	r := results[0]
	if r.StripeAvg <= r.SelectAvg {
		t.Logf("note: striping %.1f%% did not beat selection %.1f%% for %s",
			r.StripeAvg, r.SelectAvg, r.Client)
	}
	if r.StripeAvg < 10 {
		t.Errorf("striping improvement %.1f%% implausibly low for a Low client", r.StripeAvg)
	}
}
