package experiment

import (
	"strconv"
	"sync"

	"repro/internal/objcache"
	"repro/internal/relay"
)

// The cache-egress experiment quantifies what the relay tier's object
// cache buys the origin: a shared catalog fetched by many clients
// through one relay, once with the cache off (every fetch billed to the
// origin) and once with it on (each object leaves the origin once and
// is served from relay memory thereafter). The ratio of origin egress
// between the two runs is the experiment's headline number. Unlike the
// paper-reproduction experiments this one runs on live loopback TCP —
// the measured bytes are the origin daemon's own egress counter, not a
// model.

// CacheEgressParams configures the egress comparison.
type CacheEgressParams struct {
	// Clients is the number of concurrent clients fetching the catalog
	// (default 10).
	Clients int
	// Objects is the catalog size (default 8).
	Objects int
	// ObjectSize is each object's size in bytes (default 128 KB).
	ObjectSize int64
	// CacheBytes is the cached relay's capacity (default 64 MB — the
	// whole catalog fits, isolating the sharing effect from eviction).
	CacheBytes int64
}

func (p CacheEgressParams) withDefaults() CacheEgressParams {
	if p.Clients == 0 {
		p.Clients = 10
	}
	if p.Objects == 0 {
		p.Objects = 8
	}
	if p.ObjectSize == 0 {
		p.ObjectSize = 128 << 10
	}
	if p.CacheBytes == 0 {
		p.CacheBytes = 64 << 20
	}
	return p
}

// CacheEgressResult is the measured comparison.
type CacheEgressResult struct {
	Clients    int
	Objects    int
	ObjectSize int64

	// BaselineEgress is the origin bytes served with a cacheless relay:
	// every client fetch billed to the origin.
	BaselineEgress int64
	// CachedEgress is the origin bytes served through the caching relay.
	CachedEgress int64
	// Reduction is BaselineEgress / CachedEgress — how many times less
	// origin egress the cache tier cost.
	Reduction float64

	// CacheStats is the caching relay's final cache snapshot (hits,
	// shared fills, warmth).
	CacheStats objcache.Stats
}

// RunCacheEgress measures origin egress with and without the relay
// cache on live loopback TCP.
func RunCacheEgress(p CacheEgressParams) CacheEgressResult {
	p = p.withDefaults()
	origin := relay.NewOriginServer()
	names := make([]string, p.Objects)
	for i := range names {
		names[i] = "obj-" + strconv.Itoa(i) + ".bin"
		origin.Put(names[i], p.ObjectSize)
	}
	ol, err := origin.ServeAddr("127.0.0.1:0")
	must(err == nil, "origin listen: %v", err)
	defer ol.Close()
	originAddr := ol.Addr().String()

	res := CacheEgressResult{Clients: p.Clients, Objects: p.Objects, ObjectSize: p.ObjectSize}

	// fetchAll drives the workload through one relay: every client
	// fetches the whole catalog concurrently, each starting at a
	// different object so the run mixes distinct-object concurrency with
	// same-object collisions (the singleflight case). Returns the origin
	// egress the run cost.
	fetchAll := func(r *relay.Relay) int64 {
		l, err := r.ServeAddr("127.0.0.1:0")
		must(err == nil, "relay listen: %v", err)
		defer l.Close()
		relayAddr := l.Addr().String()

		before := origin.BytesServed.Load()
		var wg sync.WaitGroup
		for c := 0; c < p.Clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < p.Objects; i++ {
					name := names[(c+i)%p.Objects]
					body, err := relay.FetchVia(nil, relayAddr, originAddr, name, 0, p.ObjectSize)
					must(err == nil, "fetch %s: %v", name, err)
					must(int64(len(body)) == p.ObjectSize, "fetch %s: %d bytes", name, len(body))
					must(relay.VerifyRange(name, 0, body), "fetch %s: corrupt bytes", name)
				}
			}(c)
		}
		wg.Wait()
		return origin.BytesServed.Load() - before
	}

	res.BaselineEgress = fetchAll(relay.New())
	cached := relay.New(relay.WithCache(p.CacheBytes), relay.WithVerifier(relay.VerifyRange))
	res.CachedEgress = fetchAll(cached)
	res.CacheStats = cached.Cache().Stats()
	if res.CachedEgress > 0 {
		res.Reduction = float64(res.BaselineEgress) / float64(res.CachedEgress)
	}
	return res
}
