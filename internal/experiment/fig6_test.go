package experiment

import "testing"

// TestFig6LevelsOff asserts the Section 4 result: a modest random set
// captures most of the attainable improvement; growing the set further
// yields little.
func TestFig6LevelsOff(t *testing.T) {
	f6 := Fig6(Fig6Params{
		Seed:             42,
		SetSizes:         []int{1, 3, 10, 22, 35},
		TransfersPerSize: 60,
	})
	if len(f6.Curves) != 3 {
		t.Fatalf("curves = %d, want 3 (Duke, Italy, Sweden)", len(f6.Curves))
	}
	for _, c := range f6.Curves {
		if len(c.Sizes) != 5 {
			t.Fatalf("%s has %d sizes", c.Client, len(c.Sizes))
		}
		knee := c.KneeSize()
		if knee > 22 {
			t.Errorf("%s knee at %d, want <= 22 (paper: ~10 of 35)", c.Client, knee)
		}
		// Utilization must not decrease dramatically with set size (more
		// candidates can only help find a better-than-direct path).
		if c.Utilization[len(c.Utilization)-1]+0.25 < c.Utilization[0] {
			t.Errorf("%s utilization collapsed with larger sets: %v", c.Client, c.Utilization)
		}
	}
	// At least one client should show clearly positive plateau
	// improvement.
	best := 0.0
	for _, c := range f6.Curves {
		for _, v := range c.AvgImprovement {
			if v > best {
				best = v
			}
		}
	}
	if best < 15 {
		t.Errorf("best improvement %.1f%%, want >= 15 (paper: ~45%%)", best)
	}
}

func TestFig6Defaults(t *testing.T) {
	p := Fig6Params{Seed: 1}.withDefaults()
	if p.Scenario.NumIntermediates != 35 {
		t.Error("fig6 must default to the 35-node full set")
	}
	if len(p.Clients) != 3 || p.Clients[0] != "Duke (client)" {
		t.Errorf("default clients = %v", p.Clients)
	}
	if !p.Config.SequentialProbes || !p.Config.ExcludeProbePhase {
		t.Error("fig6 must use Section 4 methodology flags")
	}
	if p.Config.Period != 30 {
		t.Errorf("fig6 period = %v, want 30s", p.Config.Period)
	}
}

func TestKneeSize(t *testing.T) {
	c := Fig6Curve{
		Sizes:          []int{1, 5, 10, 20, 35},
		AvgImprovement: []float64{10, 30, 42, 44, 43},
	}
	if knee := c.KneeSize(); knee != 10 {
		t.Fatalf("knee = %d, want 10", knee)
	}
	flat := Fig6Curve{Sizes: []int{1, 2}, AvgImprovement: []float64{5, 5}}
	if knee := flat.KneeSize(); knee != 1 {
		t.Fatalf("flat knee = %d, want 1", knee)
	}
	if (Fig6Curve{}).KneeSize() != 0 {
		t.Fatal("empty curve knee should be 0")
	}
}

// TestTable3Correlation asserts the paper's Table III finding: utilization
// and delivered improvement correlate positively (but imperfectly).
func TestTable3Correlation(t *testing.T) {
	t3 := Table3(Table3Params{Seed: 42, Rounds: 200})
	if t3.Client != "Duke (client)" {
		t.Fatalf("client = %q", t3.Client)
	}
	if len(t3.Rows) < 8 {
		t.Fatalf("only %d non-zero-utilization rows", len(t3.Rows))
	}
	for i := 1; i < len(t3.Rows); i++ {
		if t3.Rows[i].Utilization > t3.Rows[i-1].Utilization {
			t.Fatal("rows not sorted by utilization")
		}
	}
	if t3.SpearmanR <= 0 {
		t.Errorf("Spearman rho = %.2f, want positive (paper: utilization correlates with improvement)", t3.SpearmanR)
	}
	for _, r := range t3.Rows {
		if r.Chosen > r.Offered {
			t.Fatalf("%s chosen %d > offered %d", r.Inter, r.Chosen, r.Offered)
		}
		if r.Utilization < 0 || r.Utilization > 100 {
			t.Fatalf("%s utilization %v", r.Inter, r.Utilization)
		}
	}
}
