package experiment

import (
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/obs"
	"repro/internal/randx"
	"repro/internal/registry"
	"repro/internal/simnet"
	"repro/internal/topo"
)

// The health-ranked candidate experiment closes the loop between the
// telemetry subsystem and the paper's Section 4 result. The paper shows a
// random set of ~10 of 35 intermediates captures nearly all attainable
// improvement; the registry's health-ranked List exists on the bet that a
// *ranked* 10 does at least as well, because health telemetry concentrates
// the candidate budget on the paths that have recently delivered. This
// driver seeds an obs.HealthMonitor from observation transfers over the
// full intermediate set, publishes per-intermediate health to a live
// registry.Server exactly as relayd self-reports, takes the registry's
// ListRanked(K) as the candidate set, and measures it against uniform
// random K-sets under the Section 4 methodology.

// HealthRankParams configures the comparison.
type HealthRankParams struct {
	Seed     uint64
	Scenario topo.Params

	// Client is the measuring client (default "Duke (client)").
	Client string

	// K is the candidate-set size under test (default 10, the paper's
	// knee).
	K int

	// SeedTransfers is how many observation transfers per intermediate
	// seed the health monitor (default 2).
	SeedTransfers int
	// SeedBytes is the size of each observation transfer (default 500 KB
	// — large enough that delivered throughput dominates setup cost).
	SeedBytes int64

	// EvalTransfers is the rounds per evaluation campaign (default 40).
	EvalTransfers int
	// RandomSets is how many independent random K-sets form the baseline
	// mean (default 3).
	RandomSets int

	Config  Config
	Workers int
}

func (p HealthRankParams) withDefaults() HealthRankParams {
	if p.Scenario.Seed == 0 {
		p.Scenario.Seed = p.Seed
	}
	if p.Scenario.NumIntermediates == 0 {
		p.Scenario.NumIntermediates = 35
	}
	if p.Client == "" {
		p.Client = "Duke (client)"
	}
	if p.K == 0 {
		p.K = 10
	}
	if p.SeedTransfers == 0 {
		p.SeedTransfers = 2
	}
	if p.SeedBytes == 0 {
		p.SeedBytes = 500_000
	}
	if p.EvalTransfers == 0 {
		p.EvalTransfers = 80
	}
	if p.RandomSets == 0 {
		p.RandomSets = 3
	}
	if p.Config.Period == 0 {
		p.Config.Period = 30
	}
	// Section 4 methodology, as in Fig6: per-candidate preliminary tests,
	// improvement measured on the selected transfer itself.
	p.Config.SequentialProbes = true
	p.Config.ExcludeProbePhase = true
	return p
}

// HealthRankResult is the comparison outcome.
type HealthRankResult struct {
	Client string
	K      int

	// Ranked is the registry's health-ranked candidate set (intermediate
	// names, healthiest first).
	Ranked []string
	// Health maps every intermediate to the health value published to the
	// registry during seeding.
	Health map[string]float64

	// RankedAvg is the mean improvement (percent) with the health-ranked
	// set; RandomAvgs the per-draw means for the random baseline sets and
	// RandomAvg their mean.
	RankedAvg  float64
	RandomAvgs []float64
	RandomAvg  float64
}

// RunHealthRank seeds path health over the full intermediate set, asks a
// live registry for the healthiest K, and races that set against uniform
// random K-sets.
func RunHealthRank(p HealthRankParams) HealthRankResult {
	p = p.withDefaults()
	cfg := p.Config.withDefaults()
	scen := topo.NewScenario(p.Scenario)
	server := scen.FindServer("eBay")
	must(server != nil, "eBay server missing")
	client := scen.FindClient(p.Client)
	must(client != nil, "unknown client %q", p.Client)

	res := HealthRankResult{Client: p.Client, K: p.K}
	res.Health = seedHealth(p, cfg, scen, client, server)

	// Publish to a live registry the way relayd self-reports, then take
	// its health-ranked list as the candidate set. Registry names must be
	// wire-safe, so intermediates register under their domain.
	reg := &registry.Server{}
	byDomain := make(map[string]*topo.Node, len(scen.Intermediates))
	for _, in := range scen.Intermediates {
		byDomain[in.Domain] = in
		must(reg.RegisterHealth(in.Domain, in.Domain+":3128", time.Hour, res.Health[in.Name]) == nil,
			"register %q", in.Domain)
	}
	var ranked []*topo.Node
	for _, e := range reg.ListRanked(p.K) {
		in := byDomain[e.Name]
		must(in != nil, "registry returned unknown relay %q", e.Name)
		ranked = append(ranked, in)
		res.Ranked = append(res.Ranked, in.Name)
	}

	// Evaluation campaigns: the ranked set plus RandomSets uniform draws,
	// each a fixed candidate set probed in full every round.
	rng := randx.New(campaignSeed(p.Seed, label("healthrank", p.Client, "draws")))
	specs := []CampaignSpec{{
		Scenario: scen, Client: client, Server: server,
		Inters: ranked, Policy: core.UniformRandomPolicy{K: len(ranked)},
		Transfers: p.EvalTransfers,
		Seed:      campaignSeed(p.Seed, label("healthrank", p.Client, "ranked")),
		Config:    p.Config,
	}}
	for i := 0; i < p.RandomSets; i++ {
		perm := rng.Perm(len(scen.Intermediates))
		subset := make([]*topo.Node, 0, p.K)
		for _, idx := range perm[:p.K] {
			subset = append(subset, scen.Intermediates[idx])
		}
		specs = append(specs, CampaignSpec{
			Scenario: scen, Client: client, Server: server,
			Inters: subset, Policy: core.UniformRandomPolicy{K: len(subset)},
			Transfers: p.EvalTransfers,
			Seed:      campaignSeed(p.Seed, label("healthrank", p.Client, "random", strconv.Itoa(i))),
			Config:    p.Config,
		})
	}
	results := RunAll(specs, p.Workers)

	res.RankedAvg = mean(okImprovements(results[0].Records))
	for _, r := range results[1:] {
		res.RandomAvgs = append(res.RandomAvgs, mean(okImprovements(r.Records)))
	}
	res.RandomAvg = mean(res.RandomAvgs)
	return res
}

// seedHealth runs the observation phase: SeedTransfers fetches over every
// intermediate path in one shared world, folded into a HealthMonitor on
// the simulator's clock, then collapsed into the scalar each relay would
// publish. The registry stores one float in [0,1], and among all-healthy
// paths the damped score alone cannot separate fast from slow (its
// throughput factor is a collapse detector, a fast/slow EWMA ratio), so
// the published value scales the score by the path's throughput EWMA
// normalized against the best peer — mirroring how an operator would
// derive a ranking signal from /debug/paths.
func seedHealth(p HealthRankParams, cfg Config, scen *topo.Scenario, client, server *topo.Node) map[string]float64 {
	eng := simnet.NewEngine()
	net := simnet.NewNetwork(eng)
	rng := randx.New(campaignSeed(p.Seed, label("healthrank", p.Client, "seed")))

	inst := scen.Instantiate(net, rng.Fork("instance"), client, []*topo.Node{server}, scen.Intermediates)
	defer inst.Close()
	world := httpsim.NewWorld(inst, []*topo.Node{server}, scen.Intermediates)
	world.SetupRTTs = cfg.SetupRTTs
	world.Put(server.Name, objectName, cfg.ObjectBytes)
	inst.Warmup(cfg.Warmup)

	// The window must span the whole observation phase: the monitor ranks
	// on everything seen, not a recent slice.
	mon := obs.NewHealthMonitor(obs.HealthConfig{
		Window: 1e6, Buckets: 64, MaxSuccessAge: 1e6,
		Clock: world.Now,
	})
	obj := core.Object{Server: server.Name, Name: objectName, Size: cfg.ObjectBytes}
	for round := 0; round < p.SeedTransfers; round++ {
		for _, in := range scen.Intermediates {
			h := world.Start(obj, core.Path{Via: in.Name}, 0, p.SeedBytes)
			world.Wait(h)
			r := h.Result()
			mon.Observe(in.Name, core.ErrClassOf(r.Err), r.Duration(), r.Bytes)
			eng.RunUntil(world.Now() + 2)
		}
	}

	snap := mon.Snapshot()
	maxEWMA := 0.0
	for _, ph := range snap.Paths {
		if ph.ThroughputEWMA > maxEWMA {
			maxEWMA = ph.ThroughputEWMA
		}
	}
	health := make(map[string]float64, len(snap.Paths))
	for _, ph := range snap.Paths {
		v := ph.Score
		if maxEWMA > 0 {
			v *= ph.ThroughputEWMA / maxEWMA
		}
		health[ph.Path] = v
	}
	return health
}

// okImprovements extracts the improvements of error-free rounds.
func okImprovements(recs []Record) []float64 {
	var out []float64
	for _, r := range recs {
		if r.Err == nil {
			out = append(out, r.Improvement)
		}
	}
	return out
}
