package experiment

import (
	"repro/internal/stats"
)

// The seed sweep checks that the reproduction's headline numbers are
// properties of the calibrated model, not accidents of one random seed: it
// reruns the Section 3 study across several seeds (fresh scenario AND
// fresh dynamics per seed) and reports the spread of every headline
// statistic, plus pairwise KS tests on the improvement distributions.

// SeedSweepParams configures the sweep.
type SeedSweepParams struct {
	Seeds              []uint64 // default 41..45
	TransfersPerClient int      // default 40
	Servers            []string // default eBay only (faster)
	Config             Config
	Workers            int
}

func (p SeedSweepParams) withDefaults() SeedSweepParams {
	if len(p.Seeds) == 0 {
		p.Seeds = []uint64{41, 42, 43, 44, 45}
	}
	if p.TransfersPerClient == 0 {
		p.TransfersPerClient = 40
	}
	if len(p.Servers) == 0 {
		p.Servers = []string{"eBay"}
	}
	return p
}

// SeedPoint is one seed's headline numbers.
type SeedPoint struct {
	Seed              uint64
	AvgImprovement    float64
	MedianImprovement float64
	PenaltyFrac       float64
	Utilization       float64
	Samples           int
}

// SeedSweepResult aggregates the sweep.
type SeedSweepResult struct {
	Points []SeedPoint

	// Avg/Median/Penalty/Utilization summarize the per-seed headline
	// values (mean and standard deviation across seeds).
	AvgMean, AvgStd         float64
	MedianMean, MedianStd   float64
	PenaltyMean, PenaltyStd float64
	UtilMean, UtilStd       float64

	// MaxKSD and MinKSPValue summarize the pairwise KS comparisons of
	// the improvement distributions across seeds: a stable reproduction
	// has small D and non-vanishing p-values.
	MaxKSD      float64
	MinKSPValue float64
}

// SeedSweep reruns the Section 3 study per seed and aggregates.
func SeedSweep(p SeedSweepParams) SeedSweepResult {
	p = p.withDefaults()
	var res SeedSweepResult
	var avgA, medA, penA, utilA stats.Acc
	samples := make([][]float64, 0, len(p.Seeds))

	for _, seed := range p.Seeds {
		study := RunStudy(StudyParams{
			Seed:               seed,
			TransfersPerClient: p.TransfersPerClient,
			Servers:            p.Servers,
			Config:             p.Config,
			Workers:            p.Workers,
		})
		f1 := Fig1(study)
		pt := SeedPoint{
			Seed:              seed,
			AvgImprovement:    f1.Summary.Mean,
			MedianImprovement: f1.Summary.Median,
			PenaltyFrac:       f1.FracNegative,
			Utilization:       f1.Utilization,
			Samples:           f1.Summary.N,
		}
		res.Points = append(res.Points, pt)
		avgA.Add(pt.AvgImprovement)
		medA.Add(pt.MedianImprovement)
		penA.Add(pt.PenaltyFrac)
		utilA.Add(pt.Utilization)
		samples = append(samples, Improvements(study.Records))
	}

	res.AvgMean, res.AvgStd = avgA.Mean(), avgA.Std()
	res.MedianMean, res.MedianStd = medA.Mean(), medA.Std()
	res.PenaltyMean, res.PenaltyStd = penA.Mean(), penA.Std()
	res.UtilMean, res.UtilStd = utilA.Mean(), utilA.Std()

	res.MinKSPValue = 1
	for i := 0; i < len(samples); i++ {
		for j := i + 1; j < len(samples); j++ {
			ks := stats.KolmogorovSmirnov(samples[i], samples[j])
			if ks.D > res.MaxKSD {
				res.MaxKSD = ks.D
			}
			if ks.PValue < res.MinKSPValue {
				res.MinKSPValue = ks.PValue
			}
		}
	}
	return res
}
