// Package experiment reproduces the paper's evaluation: it drives
// measurement campaigns on the simulated PlanetLab topology and derives
// every table and figure of the paper (Figures 1–6, Tables I–III), plus
// ablations of the design choices.
//
// The unit of work is a campaign: one client node repeatedly downloading a
// large object from one web server, with two logical client processes as
// in the paper's methodology — a control process that always uses the
// direct path, and a selecting process that probes the direct and
// candidate indirect paths, picks the winner, and fetches the remainder
// over it. Campaigns are independent (each owns a simulator instance), so
// the drivers fan them out across a worker pool.
package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/randx"
	"repro/internal/simnet"
	"repro/internal/topo"
)

// Config holds the transfer-level parameters shared by all experiments.
type Config struct {
	// ObjectBytes is the download size (the paper uses multi-megabyte
	// files, at least 2 MB). Default 4 MB.
	ObjectBytes int64
	// ProbeBytes is the initial range-request size x. Default 100 KB.
	ProbeBytes int64
	// Rule selects the probe winner. Default FirstFinished.
	Rule core.Rule
	// Period is the virtual time between transfer starts (the paper's
	// Section 3 schedule is one transfer every 6 minutes). Default 360 s.
	Period float64
	// Warmup is the virtual time the stochastic link drivers run before
	// the first transfer. Default 600 s.
	Warmup float64
	// SequentialProbes probes candidates one at a time (Section 4's
	// per-candidate "preliminary download tests") instead of racing them
	// concurrently. Implies max-throughput selection.
	SequentialProbes bool
	// ExcludeProbePhase computes the selecting process's throughput over
	// the remainder transfer only, leaving the probing overhead out of
	// the improvement metric (used by the Section 4 analyses, where the
	// probing phase grows with the candidate-set size).
	ExcludeProbePhase bool
	// SetupRTTs is the per-transfer connection-establishment cost in
	// RTTs (default 1.5: TCP handshake + request; < 0 disables).
	SetupRTTs float64
}

// DefaultConfig returns the paper-faithful transfer configuration.
func DefaultConfig() Config {
	return Config{
		ObjectBytes: 4_000_000,
		ProbeBytes:  core.DefaultProbeBytes,
		Rule:        core.FirstFinished,
		Period:      360,
		Warmup:      600,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.ObjectBytes == 0 {
		c.ObjectBytes = d.ObjectBytes
	}
	if c.ProbeBytes == 0 {
		c.ProbeBytes = d.ProbeBytes
	}
	if c.Period == 0 {
		c.Period = d.Period
	}
	if c.Warmup == 0 {
		c.Warmup = d.Warmup
	}
	switch {
	case c.SetupRTTs == 0:
		c.SetupRTTs = 1.5
	case c.SetupRTTs < 0:
		c.SetupRTTs = 0
	}
	return c
}

// Record is the measurement from one transfer round: the selecting
// process's outcome side by side with the concurrent control process.
type Record struct {
	Client   string
	Category topo.Category
	Server   string

	// Time is the virtual time at which the round's probing began.
	Time float64

	// Candidates is the intermediate set offered to the probe race.
	Candidates []string

	// Selected is the winning intermediate, or "" when the direct path
	// won.
	Selected string

	// DirectTp is the control process's throughput (bits/sec) over the
	// full object on the direct path.
	DirectTp float64

	// SelectedTp is the selecting process's overall throughput (bits/sec)
	// over the full object, probing overhead included.
	SelectedTp float64

	// ProbeDirectTp and ProbeBestTp are the probe-phase throughputs of
	// the direct path and of the winning path.
	ProbeDirectTp float64
	ProbeBestTp   float64

	// Improvement is the paper's metric in percent:
	// (SelectedTp − DirectTp) / DirectTp × 100.
	Improvement float64

	// Err records a failed round (excluded from statistics by drivers).
	Err error
}

// Indirect reports whether the round selected an indirect path.
func (r Record) Indirect() bool { return r.Selected != "" }

// CampaignSpec describes one measurement campaign.
type CampaignSpec struct {
	Scenario *topo.Scenario
	Client   *topo.Node
	Server   *topo.Node
	// Inters is the full intermediate set instantiated for the campaign;
	// Policy draws per-transfer candidate subsets from it.
	Inters    []*topo.Node
	Policy    core.Policy
	Transfers int
	Seed      uint64
	Config    Config

	// Tracker, when non-nil, receives the campaign's utilization
	// observations; passing the same tracker to a WeightedRandomPolicy
	// closes the adaptation loop (the paper's Section 6 proposal). When
	// nil a fresh tracker is created.
	Tracker *core.Tracker
}

// CampaignResult bundles the per-transfer records with the utilization
// tracker accumulated over the campaign.
type CampaignResult struct {
	Spec    CampaignSpec
	Records []Record
	Tracker *core.Tracker
}

// objectName is the synthetic large file every server exposes.
const objectName = "large.bin"

// RunCampaign executes one campaign to completion and returns its records.
// It is deterministic in spec.Seed.
func RunCampaign(spec CampaignSpec) CampaignResult {
	cfg := spec.Config.withDefaults()
	eng := simnet.NewEngine()
	net := simnet.NewNetwork(eng)
	rng := randx.New(spec.Seed)

	inst := spec.Scenario.Instantiate(net, rng.Fork("instance"), spec.Client,
		[]*topo.Node{spec.Server}, spec.Inters)
	defer inst.Close()
	world := httpsim.NewWorld(inst, []*topo.Node{spec.Server}, spec.Inters)
	world.SetupRTTs = cfg.SetupRTTs
	world.Put(spec.Server.Name, objectName, cfg.ObjectBytes)

	inst.Warmup(cfg.Warmup)
	polRng := rng.Fork("policy")
	tracker := spec.Tracker
	if tracker == nil {
		tracker = core.NewTracker()
	}
	full := make([]string, len(spec.Inters))
	for i, in := range spec.Inters {
		full[i] = in.Name
	}

	obj := core.Object{Server: spec.Server.Name, Name: objectName, Size: cfg.ObjectBytes}
	x := cfg.ProbeBytes
	if x > obj.Size {
		x = obj.Size
	}

	res := CampaignResult{Spec: spec, Tracker: tracker}
	for i := 0; i < spec.Transfers; i++ {
		roundStart := world.Now()
		cands := spec.Policy.Candidates(full, polRng)

		// Phase 1: probe race. Under the first-finished rule the client
		// commits the moment the first probe completes (early commit);
		// sequential probing measures each candidate in turn.
		var probes []core.ProbeResult
		var sel core.Path
		var rem, ctrl core.Handle
		if cfg.SequentialProbes || cfg.Rule == core.MaxThroughput {
			// Max-throughput selection needs every probe measured before
			// the decision; sequential probing implies it.
			if cfg.SequentialProbes {
				probes = core.ProbeSequential(world, obj, x, cands)
			} else {
				probes = core.Probe(world, obj, x, cands)
			}
			sel = core.Choose(probes, core.MaxThroughput)
			ctrl = world.Start(obj, core.Path{Via: core.Direct}, 0, obj.Size)
			if obj.Size > x {
				rem = world.StartWarm(obj, sel, x, obj.Size-x)
				world.Wait(ctrl, rem)
			} else {
				world.Wait(ctrl)
			}
		} else {
			paths, handles := core.StartProbes(world, obj, x, cands)
			win, pending := core.AwaitFirstSuccess(world, handles)
			sel = core.Path{Via: core.Direct}
			if win >= 0 {
				sel = paths[win]
			}
			// Phase 2: the control process downloads the whole object
			// directly while the selecting process fetches the remainder
			// over the winner; losing probes drain alongside, contending
			// for bandwidth as in the real deployment.
			ctrl = world.Start(obj, core.Path{Via: core.Direct}, 0, obj.Size)
			if obj.Size > x && win >= 0 {
				rem = world.StartWarm(obj, sel, x, obj.Size-x)
			}
			wait := []core.Handle{ctrl}
			for _, pi := range pending {
				wait = append(wait, handles[pi])
			}
			if rem != nil {
				wait = append(wait, rem)
			}
			world.Wait(wait...)
			probes = make([]core.ProbeResult, len(handles))
			for pi, h := range handles {
				probes[pi] = core.ProbeResult{FetchResult: h.Result()}
			}
		}
		tracker.Observe(cands, sel)

		rec := Record{
			Client:     spec.Client.Name,
			Category:   spec.Client.Category,
			Server:     spec.Server.Name,
			Time:       roundStart,
			Candidates: cands,
			Selected:   sel.Via,
		}
		ctrlRes := ctrl.Result()
		rec.DirectTp = ctrlRes.Throughput()
		rec.ProbeDirectTp = probes[0].Throughput()
		if cfg.ExcludeProbePhase {
			if rem != nil {
				rec.SelectedTp = rem.Result().Throughput()
			} else {
				rec.SelectedTp = rec.DirectTp
			}
		} else {
			selEnd := world.Now()
			if rem != nil {
				selEnd = rem.Result().End
			}
			if dur := selEnd - roundStart; dur > 0 {
				rec.SelectedTp = float64(obj.Size) * 8 / dur
			}
		}
		if rem != nil {
			if rr := rem.Result(); rr.Err != nil {
				rec.Err = rr.Err
			}
		}
		for _, p := range probes {
			if p.Err != nil {
				rec.Err = p.Err
			}
			if p.Path.Via == sel.Via && p.Err == nil {
				rec.ProbeBestTp = p.Throughput()
			}
		}
		if ctrlRes.Err != nil {
			rec.Err = ctrlRes.Err
		}
		rec.Improvement = core.Improvement(rec.SelectedTp, rec.DirectTp)
		res.Records = append(res.Records, rec)

		// Schedule the next round.
		next := roundStart + cfg.Period
		if now := world.Now(); next < now+5 {
			next = now + 5
		}
		eng.RunUntil(next)
	}
	return res
}

// RunAll executes campaigns across a worker pool and returns results in
// input order. workers <= 0 uses GOMAXPROCS.
func RunAll(specs []CampaignSpec, workers int) []CampaignResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	results := make([]CampaignResult, len(specs))
	if len(specs) == 0 {
		return results
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = RunCampaign(specs[i])
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// campaignSeed derives a stable per-campaign seed from the study seed and
// a label, so adding campaigns never changes existing ones.
func campaignSeed(studySeed uint64, label string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return h ^ (studySeed * 0x9e3779b97f4a7c15)
}

// label builds the canonical campaign label.
func label(parts ...string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "|"
		}
		out += p
	}
	return out
}

// must panics with a formatted message; experiment drivers use it for
// impossible states.
func must(cond bool, format string, args ...any) {
	if !cond {
		panic("experiment: " + fmt.Sprintf(format, args...))
	}
}
