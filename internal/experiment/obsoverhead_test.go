package experiment

import "testing"

// TestRunObsOverhead exercises the overhead experiment machinery at
// quick scale: both relays must serve the workload, the observed one
// must track paths and decide traces, and the result must carry a
// finite verdict. The ceiling here is deliberately loose — CI boxes
// are shared and noisy, and the 5% claim is made by the archived
// BENCH artifact runs, not by every unit-test invocation.
func TestRunObsOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("live loopback experiment")
	}
	res := RunObsOverhead(ObsOverheadParams{
		Rounds:           3,
		RequestsPerRound: 40,
		Clients:          2,
		ObjectSize:       32 << 10,
		MaxOverhead:      0.5,
		MaxAlwaysOn:      0.5,
	})
	if res.Paths < 1 {
		t.Fatalf("observed relay tracked %d paths", res.Paths)
	}
	if res.KeptTraces+res.DroppedTraces == 0 {
		t.Fatal("tail collector decided no traces")
	}
	if res.BareCPUSecs <= 0 || res.ObservedCPUSecs <= 0 {
		t.Fatalf("non-positive CPU medians: bare %v observed %v", res.BareCPUSecs, res.ObservedCPUSecs)
	}
	if res.BareRPS <= 0 || res.ObservedRPS <= 0 {
		t.Fatalf("non-positive RPS: bare %v observed %v", res.BareRPS, res.ObservedRPS)
	}
	if res.OverheadFrac < -1 || res.OverheadFrac > 1 {
		t.Fatalf("implausible overhead fraction %v", res.OverheadFrac)
	}
	if res.FlightEvents == 0 {
		t.Fatal("flight ring recorded no wide events")
	}
	if res.ProfilerCycleCPUSecs <= 0 || res.ProfilerOverheadFrac <= 0 {
		t.Fatalf("profiler cycle unpriced: cpu %v frac %v",
			res.ProfilerCycleCPUSecs, res.ProfilerOverheadFrac)
	}
	if res.AlwaysOnOverheadFrac < -1 || res.AlwaysOnOverheadFrac > 1 {
		t.Fatalf("implausible always-on fraction %v", res.AlwaysOnOverheadFrac)
	}
	t.Logf("overhead %.2f%% (bare %.0f req/s, observed %.0f req/s); flight always-on %.2f%% (%d events)",
		100*res.OverheadFrac, res.BareRPS, res.ObservedRPS,
		100*res.AlwaysOnOverheadFrac, res.FlightEvents)
}
