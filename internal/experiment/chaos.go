package experiment

import (
	"bufio"
	"io"
	"net"
	"path/filepath"
	"time"

	"repro/internal/faultproxy"
	"repro/internal/httpx"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/randx"
	"repro/internal/relay"
	"repro/internal/simnet"
)

// The chaos campaign is the standing bug sweep: every fault class the
// chaos layer can inject — packet-level faults on the fluid simulator
// (loss, reorder, duplication, burst loss) and connection-level faults
// on live loopback TCP (partition, relay flap, slow-loris stall,
// mid-stream reset, corrupted range) — is driven against the stack, and
// for each class the campaign checks the properties the rest of the
// repo depends on: the health monitor converges to the right verdict
// within a window or two, the SLO tracker burns its error budget when
// and only when requests actually fail, no fault wedges a transfer past
// its deadline, and the relay cache never serves a corrupted span.

// ChaosParams configures the campaign.
type ChaosParams struct {
	// Seed drives the simulator-side fault chains (default 1).
	Seed uint64
	// ObjectSize is the live-transfer object size (default 96 KB).
	ObjectSize int64
	// Transfers is the minimum fetches per live fault phase (default 16).
	Transfers int
	// Deadline is the per-fetch client deadline on live classes
	// (default 2 s). No fetch may run past it.
	Deadline time.Duration
	// SimBytes is each simulated transfer's size (default 1 MB over an
	// 8 Mb/s link, ~1 s clean).
	SimBytes int64
	// SimTransfers is the number of simulated transfers per fault phase
	// (default 24).
	SimTransfers int
	// BundleDir, when set, persists each live class's anomaly debug
	// bundles under BundleDir/<class>/ — the chaos-smoke CI artifact.
	// Empty keeps bundles in memory only.
	BundleDir string
}

func (p ChaosParams) withDefaults() ChaosParams {
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.ObjectSize == 0 {
		p.ObjectSize = 96 << 10
	}
	if p.Transfers == 0 {
		p.Transfers = 16
	}
	if p.Deadline == 0 {
		p.Deadline = 2 * time.Second
	}
	if p.SimBytes == 0 {
		p.SimBytes = 1 << 20
	}
	if p.SimTransfers == 0 {
		p.SimTransfers = 24
	}
	return p
}

// ChaosEntry is one fault class's scorecard.
type ChaosEntry struct {
	Class string `json:"class"`
	// Mode is "sim" (fluid simulator) or "live" (loopback TCP).
	Mode string `json:"mode"`
	// Transfers attempted during the fault phase; Failures among them
	// (errors, truncations, timeouts, or corruption caught by
	// verification).
	Transfers int `json:"transfers"`
	Failures  int `json:"failures"`
	// Verdict is the health state the monitor settled on under fault;
	// VerdictOK whether it is one the class is expected to produce.
	Verdict   string `json:"verdict"`
	VerdictOK bool   `json:"verdict_ok"`
	// Recovered reports the monitor returning to healthy after the
	// fault was lifted.
	Recovered bool `json:"recovered"`
	// BurnAlert reports the fast-window SLO availability burn exceeding
	// 1 (budget burning faster than the objective allows) during the
	// fault. Live classes only.
	BurnAlert bool `json:"burn_alert"`
	// MaxTransfer is the slowest transfer observed, in seconds (virtual
	// for sim classes, wall-clock for live ones).
	MaxTransfer float64 `json:"max_transfer_s"`
	// DeadlineExceeded counts transfers that ran past their deadline —
	// the "no fault class wedges a transfer" property; must be 0.
	DeadlineExceeded int `json:"deadline_exceeded"`
	// CorruptDeliveries counts fetches whose bytes failed verification
	// but were served from the relay cache as if clean; must be 0.
	CorruptDeliveries int `json:"corrupt_deliveries"`
	// Bundles is how many debug bundles the flight trigger engine
	// captured during the phase (live classes only): exactly 1 for a
	// hard-failing class — overlapping SLO-burn and health-down triggers
	// on the one faulted path must collapse under the rate limit — and 0
	// for a transport-clean one. BundleEvents and BundleTraces describe
	// the first bundle: the faulted path's wide events and stitched
	// traces it captured.
	Bundles      int `json:"bundles,omitempty"`
	BundleEvents int `json:"bundle_events,omitempty"`
	BundleTraces int `json:"bundle_traces,omitempty"`
}

// ChaosResult aggregates the campaign.
type ChaosResult struct {
	Seed    uint64       `json:"seed"`
	Entries []ChaosEntry `json:"entries"`
	// AllVerdictsOK / zero-totals are the campaign's pass line.
	AllVerdictsOK          bool `json:"all_verdicts_ok"`
	AllRecovered           bool `json:"all_recovered"`
	TotalDeadlineExceeded  int  `json:"total_deadline_exceeded"`
	TotalCorruptDeliveries int  `json:"total_corrupt_deliveries"`
}

// RunChaos drives every fault class and scores the stack's behavior.
func RunChaos(p ChaosParams) ChaosResult {
	p = p.withDefaults()
	res := ChaosResult{Seed: p.Seed, AllVerdictsOK: true, AllRecovered: true}

	sims := []struct {
		name string
		prof simnet.FaultProfile
	}{
		{"loss", simnet.FaultProfile{Loss: 0.5}},
		{"reorder", simnet.FaultProfile{Reorder: 0.9}},
		{"duplication", simnet.FaultProfile{Dup: 0.9}},
		{"burst-loss", simnet.FaultProfile{
			Burst: &simnet.GEParams{MeanGood: 1, MeanBad: 3, LossGood: 0.001, LossBad: 0.5},
		}},
	}
	for _, s := range sims {
		res.Entries = append(res.Entries, runSimChaos(s.name, s.prof, p))
	}

	lives := []struct {
		name   string
		expect []obs.HealthState
		drive  func(px *faultproxy.Proxy) (heal func())
		cache  bool
	}{
		{"partition", []obs.HealthState{obs.HealthDown},
			func(px *faultproxy.Proxy) func() {
				px.SetPartitioned(true)
				return func() { px.SetPartitioned(false) }
			}, false},
		{"flap", []obs.HealthState{obs.HealthDegraded, obs.HealthDown},
			func(px *faultproxy.Proxy) func() {
				return px.Flap(120*time.Millisecond, 120*time.Millisecond)
			}, false},
		{"slow-loris", []obs.HealthState{obs.HealthDown},
			scheduleFault("conn=* phase=body@4096 stall=30s"), false},
		{"mid-stream-reset", []obs.HealthState{obs.HealthDown},
			scheduleFault("conn=* phase=body@4096 reset"), false},
		// A corrupting path is invisible to the relay's transport health
		// (the bytes flow fine); the defense is verification, so the
		// expected verdict is healthy and the scorecard instead counts
		// corrupt deliveries out of the cache.
		{"corrupted-range", []obs.HealthState{obs.HealthHealthy},
			scheduleFault("conn=* phase=body@1024 corrupt=512"), true},
	}
	for _, l := range lives {
		res.Entries = append(res.Entries, runLiveChaos(l.name, p, l.expect, l.drive, l.cache))
	}

	for _, e := range res.Entries {
		res.AllVerdictsOK = res.AllVerdictsOK && e.VerdictOK
		res.AllRecovered = res.AllRecovered && e.Recovered
		res.TotalDeadlineExceeded += e.DeadlineExceeded
		res.TotalCorruptDeliveries += e.CorruptDeliveries
	}
	return res
}

func scheduleFault(rules string) func(px *faultproxy.Proxy) func() {
	return func(px *faultproxy.Proxy) func() {
		px.SetSchedule(faultproxy.MustParse(rules))
		return func() { px.SetSchedule(nil) }
	}
}

// --- Simulator-side classes ------------------------------------------

// runSimChaos drives one packet-fault class on the fluid simulator:
// clean transfers to baseline the link and arm a deadline, faulted
// transfers folded into an event-time health monitor (aborted at the
// deadline, as the real transport would), then clean transfers until
// the monitor recovers.
func runSimChaos(class string, prof simnet.FaultProfile, p ChaosParams) ChaosEntry {
	eng := simnet.NewEngine()
	net := simnet.NewNetwork(eng)
	link := net.NewLink("wan", 8e6, 0.02, 0)
	mon := obs.NewHealthMonitor(obs.HealthConfig{Window: 20, Buckets: 5})
	pid := obs.PathID{Via: "wan"}
	e := ChaosEntry{Class: class, Mode: "sim"}

	// transfer runs one flow, aborting it at deadline (0 = none), and
	// returns its duration (capped at the deadline) and whether it hit.
	transfer := func(deadline float64) (dur float64, timedOut bool) {
		done := false
		fl := net.StartFlow(simnet.FlowSpec{
			Label: class, Links: []*simnet.Link{link}, Bytes: p.SimBytes,
			OnComplete: func(*simnet.Flow) { done = true },
		})
		if deadline > 0 {
			tm := eng.After(deadline, func() {
				if !done {
					timedOut = true
					net.Abort(fl)
				}
			})
			defer tm.Cancel()
		}
		eng.RunWhile(func() bool { return !done && !timedOut })
		return fl.Duration(), timedOut
	}

	// Baseline: the clean link's transfer time sets the deadline the
	// paper's penalty analysis would — comfortably above clean, well
	// below what a degraded link can meet.
	var base float64
	for i := 0; i < 4; i++ {
		d, _ := transfer(0)
		base = d
		mon.TransferFinished(obs.TransferEnd{Path: pid, Time: eng.Now(), Bytes: p.SimBytes, Duration: d, Class: obs.ClassOK})
	}
	deadline := 1.6 * base

	faults := link.InjectFaults(prof, 0.25, randx.New(p.Seed))
	for i := 0; i < p.SimTransfers; i++ {
		d, timedOut := transfer(deadline)
		if timedOut {
			d = deadline
			e.Failures++
			mon.TransferAborted(obs.Abort{Path: pid, Time: eng.Now(), Class: obs.ClassTimeout})
		} else {
			mon.TransferFinished(obs.TransferEnd{Path: pid, Time: eng.Now(), Bytes: p.SimBytes, Duration: d, Class: obs.ClassOK})
		}
		if d > e.MaxTransfer {
			e.MaxTransfer = d
		}
		if d > deadline+1e-9 {
			e.DeadlineExceeded++
		}
		e.Transfers++
	}
	state := mon.State(pid.Label())
	e.Verdict = state.String()
	e.VerdictOK = state == obs.HealthDegraded || state == obs.HealthDown
	faults.Stop()

	// Recovery: clean transfers until the verdict heals (bounded by a
	// few windows of virtual time).
	for i := 0; i < 60 && mon.State(pid.Label()) != obs.HealthHealthy; i++ {
		d, _ := transfer(0)
		mon.TransferFinished(obs.TransferEnd{Path: pid, Time: eng.Now(), Bytes: p.SimBytes, Duration: d, Class: obs.ClassOK})
	}
	e.Recovered = mon.State(pid.Label()) == obs.HealthHealthy
	return e
}

// --- Live classes -----------------------------------------------------

// liveFetch is one client fetch through the relay with a hard deadline:
// it reports the outcome, whether the bytes verified, whether the relay
// answered from its cache, and how long the fetch took.
type liveFetch struct {
	ok       bool
	verified bool
	cacheHit bool
	full     bool
	elapsed  time.Duration
}

func chaosFetch(relayAddr, originAddr, name string, size int64, deadline time.Duration) liveFetch {
	start := time.Now()
	f := liveFetch{}
	conn, err := net.Dial("tcp", relayAddr)
	if err != nil {
		f.elapsed = time.Since(start)
		return f
	}
	defer conn.Close()
	conn.SetDeadline(start.Add(deadline))
	req := httpx.NewGet("http://"+originAddr+"/"+name, originAddr)
	req.SetRange(0, size)
	if err := req.Write(conn); err != nil {
		f.elapsed = time.Since(start)
		return f
	}
	resp, err := httpx.ReadResponse(bufio.NewReader(conn))
	if err != nil || (resp.Status != 200 && resp.Status != 206) {
		f.elapsed = time.Since(start)
		return f
	}
	f.cacheHit = resp.Header["x-cache"] == "hit"
	body, err := io.ReadAll(resp.Body)
	f.elapsed = time.Since(start)
	f.full = int64(len(body)) == size
	f.verified = relay.VerifyRange(name, 0, body)
	f.ok = err == nil && f.full && f.verified
	return f
}

// runLiveChaos drives one connection-fault class on loopback TCP:
// origin → fault proxy → relay, with the relay's own health monitor and
// SLO tracker as the instruments under test.
func runLiveChaos(class string, p ChaosParams, expect []obs.HealthState, drive func(px *faultproxy.Proxy) func(), withCache bool) ChaosEntry {
	e := ChaosEntry{Class: class, Mode: "live"}

	origin := relay.NewOriginServer()
	origin.Put("warm.bin", p.ObjectSize)
	origin.Put("chaos.bin", p.ObjectSize)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	must(err == nil, "origin listen: %v", err)
	defer ol.Close()
	originAddr := ol.Addr().String()

	px, err := faultproxy.Listen("127.0.0.1:0", originAddr)
	must(err == nil, "fault proxy listen: %v", err)
	defer px.Close()
	proxyAddr := px.Addr()

	// The flight recorder rides along as an instrument under test: the
	// relay records one wide event per forward, the tail span collector
	// keeps every trace at this scale (KeepProb 1), and the trigger
	// engine watches the monitor and SLO hooks. The engine variable is
	// assigned before the relay serves, so the nil-safe closures can
	// never race a live trigger.
	var engine *flight.Engine
	rec := flight.NewRecorder(flight.Config{Ring: 256})
	spans := obs.NewTailSpanCollector(obs.TailConfig{ByteBudget: 1 << 20, KeepProb: 1})

	clk := obs.WallClock()
	slo := obs.NewSLOTracker(obs.SLOConfig{
		FastWindow: 2, FastBuckets: 8, SlowWindow: 30, SlowBuckets: 15,
		OnFastBurn: func(path string, burn float64) { engine.FireBurn(path, burn) },
	})
	mon := obs.NewHealthMonitor(obs.HealthConfig{
		Clock: clk, Window: 2, Buckets: 4, SLO: slo,
		OnTransition: func(path string, tr obs.HealthTransition) { engine.FireHealth(path, tr) },
	})
	bundleDir := ""
	if p.BundleDir != "" {
		bundleDir = filepath.Join(p.BundleDir, class)
	}
	engine = flight.NewEngine(flight.TriggerConfig{
		Recorder: rec,
		Spans:    spans,
		Dir:      bundleDir,
	})
	opts := []relay.Option{
		relay.WithHealthMonitor(mon),
		relay.WithSpans(spans),
		relay.WithFlight(rec),
		relay.WithUpstreamStall(300 * time.Millisecond),
		relay.WithDialer(func(network, addr string) (net.Conn, error) {
			return net.Dial(network, proxyAddr)
		}),
	}
	if withCache {
		opts = append(opts, relay.WithCache(4<<20), relay.WithVerifier(relay.VerifyRange))
	}
	r := relay.New(opts...)
	rl, err := r.ServeAddr("127.0.0.1:0")
	must(err == nil, "relay listen: %v", err)
	defer rl.Close()
	relayAddr := rl.Addr().String()

	state := func() obs.HealthState { return mon.State(originAddr) }
	isExpected := func(s obs.HealthState) bool {
		for _, want := range expect {
			if s == want {
				return true
			}
		}
		return false
	}

	// Baseline: clean traffic establishes the healthy verdict. The
	// corrupted-range class fetches a different object here than under
	// fault, so its cache fill happens during the fault phase.
	for i := 0; i < 6 || state() != obs.HealthHealthy; i++ {
		must(i < 100, "%s: baseline never reached healthy", class)
		f := chaosFetch(relayAddr, originAddr, "warm.bin", p.ObjectSize, p.Deadline)
		must(f.ok, "%s: clean baseline fetch failed", class)
		time.Sleep(40 * time.Millisecond)
	}

	heal := drive(px)

	// Fault phase: keep fetching (each fetch folds an outcome, and only
	// folds advance the verdict machinery) until the monitor converges
	// on an expected state, bounded by a few windows of wall time.
	budget := time.Now().Add(8 * time.Second)
	var maxElapsed time.Duration
	for e.Transfers < p.Transfers || (!isExpected(state()) && time.Now().Before(budget)) {
		if e.Transfers >= 4*p.Transfers {
			break
		}
		f := chaosFetch(relayAddr, originAddr, "chaos.bin", p.ObjectSize, p.Deadline)
		e.Transfers++
		if !f.ok {
			e.Failures++
		}
		if f.full && !f.verified && f.cacheHit {
			e.CorruptDeliveries++
		}
		if f.elapsed > maxElapsed {
			maxElapsed = f.elapsed
		}
		if f.elapsed > p.Deadline+500*time.Millisecond {
			e.DeadlineExceeded++
		}
		if burn := slo.Snapshot(clk()).AvailabilityFast.BurnRate; burn > 1 {
			e.BurnAlert = true
		}
		time.Sleep(60 * time.Millisecond)
	}
	e.MaxTransfer = maxElapsed.Seconds()
	st := state()
	e.Verdict = st.String()
	e.VerdictOK = isExpected(st)

	// Heal and re-drive clean traffic until the verdict recovers. The
	// corrupted-range class keeps fetching the object whose cached span
	// was poisoned — those fetches must come back verified-clean.
	heal()
	budget = time.Now().Add(8 * time.Second)
	for state() != obs.HealthHealthy && time.Now().Before(budget) {
		chaosFetch(relayAddr, originAddr, "chaos.bin", p.ObjectSize, p.Deadline)
		time.Sleep(60 * time.Millisecond)
	}
	e.Recovered = state() == obs.HealthHealthy
	if e.Recovered {
		f := chaosFetch(relayAddr, originAddr, "chaos.bin", p.ObjectSize, p.Deadline)
		if f.full && !f.verified && f.cacheHit {
			e.CorruptDeliveries++
		}
		must(f.ok, "%s: healed fetch still failing", class)
	}

	// Close drains the engine's build queue, so every fired trigger has
	// become a bundle before the scorecard reads them.
	engine.Close()
	bundles := engine.Bundles()
	e.Bundles = len(bundles)
	if len(bundles) > 0 {
		first := bundles[len(bundles)-1] // oldest: the one the fault fired
		e.BundleEvents = first.Events
		e.BundleTraces = first.TraceCount
	}
	return e
}
