package experiment

import "testing"

// Reduced-scale smoke run of the registry load harness: asserts the
// harness mechanics (open-loop completion, both configs measured, byte
// probe ran) and the directional claims with loose CI-safe margins —
// the full-scale acceptance ratios live in BENCH_7.json, produced by
// `indirectlab -exp registryload` at default scale.
func TestRunRegistryLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live-TCP load harness")
	}
	r := RunRegistryLoad(RegistryLoadParams{
		Relays:        3000,
		Registrations: 600,
		Rate:          1500,
		Workers:       8,
		RankedScans:   3,
		DeltaPolls:    5,
	})
	if r.Baseline.Shards != 1 || r.Sharded.Shards < 2 {
		t.Fatalf("config shards: baseline=%d sharded=%d", r.Baseline.Shards, r.Sharded.Shards)
	}
	if r.Baseline.RegisterP99Ms <= 0 || r.Sharded.RegisterP99Ms <= 0 {
		t.Fatalf("missing latency measurements: %+v", r)
	}
	if r.Baseline.Scans == 0 || r.Sharded.Scans == 0 {
		t.Fatalf("listers never scanned: %+v", r)
	}
	// The full table is a few hundred KB on the wire; a steady-state
	// delta poll is tens of bytes. Even at toy scale the savings must be
	// large — this is the protocol claim, not a scheduler-sensitive one.
	if r.FullListBytes < int64(r.Relays)*10 {
		t.Fatalf("full list implausibly small: %d bytes for %d relays", r.FullListBytes, r.Relays)
	}
	if r.DeltaSavings < 10 {
		t.Fatalf("delta savings %.1fx, want >= 10x (full=%dB delta=%.0fB)",
			r.DeltaSavings, r.FullListBytes, r.DeltaPollBytes)
	}
}
