package experiment

import (
	"math"
	"testing"

	"repro/internal/topo"
)

// testStudy runs a reduced Section 3 study once and shares it across the
// shape tests in this file.
var testStudyCache *StudyResult

func testStudy(t *testing.T) *StudyResult {
	t.Helper()
	if testStudyCache == nil {
		testStudyCache = RunStudy(StudyParams{
			Seed:               42,
			TransfersPerClient: 40,
			Servers:            []string{"eBay"},
		})
	}
	return testStudyCache
}

func TestStudyCoversAllClients(t *testing.T) {
	study := testStudy(t)
	if got := len(study.PerClient); got != 22 {
		t.Fatalf("study covers %d clients, want 22", got)
	}
	for c, recs := range study.PerClient {
		if len(recs) == 0 {
			t.Fatalf("client %s has no records", c)
		}
		if study.StaticInter[c] == "" {
			t.Fatalf("client %s has no static intermediate", c)
		}
	}
}

func TestStudyClientCVPositive(t *testing.T) {
	study := testStudy(t)
	for c, cv := range study.ClientCV {
		if cv <= 0 || math.IsNaN(cv) {
			t.Fatalf("client %s has CV %v", c, cv)
		}
	}
}

// TestFig1Shape asserts the headline Figure 1 statistics fall in the
// paper's qualitative bands: tens-of-percent average improvement,
// double-digit median, a minority of penalties, and substantial indirect
// utilization.
func TestFig1Shape(t *testing.T) {
	study := testStudy(t)
	f1 := Fig1(study)
	if f1.Summary.N < 200 {
		t.Fatalf("only %d improvement samples", f1.Summary.N)
	}
	if f1.Summary.Mean < 20 || f1.Summary.Mean > 90 {
		t.Errorf("avg improvement %.1f%%, want within [20, 90] (paper: 49%%)", f1.Summary.Mean)
	}
	if f1.Summary.Median < 15 || f1.Summary.Median > 70 {
		t.Errorf("median improvement %.1f%%, want within [15, 70] (paper: 37%%)", f1.Summary.Median)
	}
	if f1.FracNegative < 0.02 || f1.FracNegative > 0.30 {
		t.Errorf("penalty fraction %.2f, want within [0.02, 0.30] (paper: 0.12)", f1.FracNegative)
	}
	if f1.FracZeroToHundred < 0.5 {
		t.Errorf("mass in [0,100] = %.2f, want > 0.5 (paper: 0.84)", f1.FracZeroToHundred)
	}
	if f1.Utilization < 0.3 || f1.Utilization > 0.85 {
		t.Errorf("utilization %.2f, want within [0.3, 0.85] (paper: ~0.45-0.6)", f1.Utilization)
	}
	if f1.Hist.Total() != int64(f1.Summary.N) {
		t.Errorf("histogram total %d != samples %d", f1.Hist.Total(), f1.Summary.N)
	}
}

func TestFig1PerSiteRange(t *testing.T) {
	// All four sites, fewer transfers: per-site averages should all be
	// positive and within a plausible band of each other (paper: 33-49%).
	study := RunStudy(StudyParams{Seed: 42, TransfersPerClient: 15})
	f1 := Fig1(study)
	if len(f1.Sites) != 4 {
		t.Fatalf("sites = %v, want 4", f1.Sites)
	}
	for _, s := range f1.Sites {
		avg := f1.PerSiteAvg[s]
		if avg < 10 || avg > 120 {
			t.Errorf("site %s avg improvement %.1f%%, want within [10, 120]", s, avg)
		}
	}
}

func TestFig2PerClientHistograms(t *testing.T) {
	study := testStudy(t)
	f2 := Fig2(study, nil)
	if len(f2.Clients) == 0 {
		t.Fatal("no exemplar clients selected")
	}
	for _, c := range f2.Clients {
		if f2.Hists[c] == nil {
			t.Fatalf("missing histogram for %s", c)
		}
		if f2.Summary[c].N != int(f2.Hists[c].Total()) {
			t.Fatalf("%s: summary N %d != hist total %d", c, f2.Summary[c].N, f2.Hists[c].Total())
		}
	}
	custom := Fig2(study, []string{"Korea"})
	if len(custom.Clients) != 1 || custom.Hists["Korea"] == nil {
		t.Fatal("explicit client list ignored")
	}
}

// TestTable1FilterOrdering asserts the paper's central Table I claim: each
// successive filter lowers (or keeps equal) both the penalty fraction and
// the average penalty.
func TestTable1FilterOrdering(t *testing.T) {
	study := testStudy(t)
	t1 := Table1(study)
	if t1.All.Rounds == 0 {
		t.Fatal("no rounds in penalty analysis")
	}
	if t1.MedLow.PenaltyPoints > t1.All.PenaltyPoints+1e-9 {
		t.Errorf("MedLow penalty fraction %.3f > All %.3f", t1.MedLow.PenaltyPoints, t1.All.PenaltyPoints)
	}
	if t1.LowVar.PenaltyPoints > t1.MedLow.PenaltyPoints+1e-9 {
		t.Errorf("LowVar penalty fraction %.3f > MedLow %.3f", t1.LowVar.PenaltyPoints, t1.MedLow.PenaltyPoints)
	}
	if t1.All.Rounds < t1.MedLow.Rounds || t1.MedLow.Rounds < t1.LowVar.Rounds {
		t.Error("filters must not add rounds")
	}
	if t1.MedLow.AvgPenalty > t1.All.AvgPenalty+1e-9 {
		t.Errorf("MedLow avg penalty %.1f > All %.1f", t1.MedLow.AvgPenalty, t1.All.AvgPenalty)
	}
}

func TestTable1PenaltiesNonNegative(t *testing.T) {
	t1 := Table1(testStudy(t))
	for _, row := range []PenaltyRow{t1.All, t1.MedLow, t1.LowVar} {
		if row.AvgPenalty < 0 || row.Max < 0 || row.PenaltyPoints < 0 || row.PenaltyPoints > 1 {
			t.Fatalf("row %s has invalid stats: %+v", row.Filter, row)
		}
		if row.Max < row.AvgPenalty {
			t.Fatalf("row %s: max %.1f < avg %.1f", row.Filter, row.Max, row.AvgPenalty)
		}
	}
}

// TestFig4NoTrend asserts the paper's Figure 4 claim: indirect-path
// throughput shows no systematic drift over the measurement window.
func TestFig4NoTrend(t *testing.T) {
	study := testStudy(t)
	f4 := Fig4(study, 8)
	if len(f4.Series) < 5 {
		t.Fatalf("only %d clients with enough indirect rounds", len(f4.Series))
	}
	// Average |trend| across clients should be modest: well under 100% of
	// the mean per hour.
	if f4.MeanAbsSlopePct > 60 {
		t.Errorf("mean |trend| %.1f%%/hour, want < 60 (paper: no discernable trend)", f4.MeanAbsSlopePct)
	}
	for _, s := range f4.Series {
		if len(s.Times) != len(s.Tp) {
			t.Fatalf("series %s length mismatch", s.Client)
		}
	}
}

func TestImprovementsHelper(t *testing.T) {
	recs := []Record{
		{Selected: "X", Improvement: 50},
		{Selected: "", Improvement: -1},
		{Selected: "Y", Improvement: -20},
	}
	imps := Improvements(recs)
	if len(imps) != 2 || imps[0] != 50 || imps[1] != -20 {
		t.Fatalf("improvements = %v", imps)
	}
	if got := UtilizationOf(recs); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("utilization = %v", got)
	}
	if UtilizationOf(nil) != 0 {
		t.Fatal("empty utilization should be 0")
	}
}

func TestStaticIntermediateIsGoodButNotBest(t *testing.T) {
	scen := topo.NewScenario(topo.Params{Seed: 9})
	client := scen.Clients[0]
	pick := staticIntermediate(scen, client)
	better := 0
	for _, in := range scen.Intermediates {
		if scen.PairMean(client, in) > scen.PairMean(client, pick) {
			better++
		}
	}
	if better != 4 {
		t.Fatalf("static pick has %d better pairs, want 4 (fifth-best)", better)
	}
}

func TestRunStudyUnknownServerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown server")
		}
	}()
	RunStudy(StudyParams{Seed: 1, TransfersPerClient: 1, Servers: []string{"AltaVista"}})
}
