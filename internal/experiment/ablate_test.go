package experiment

import "testing"

func TestAblateProbeSize(t *testing.T) {
	pts := AblateProbeSize(AblationParams{Seed: 42, Rounds: 30},
		[]int64{10_000, 100_000, 500_000})
	if len(pts) != 3 {
		t.Fatalf("points = %d, want 3", len(pts))
	}
	for _, p := range pts {
		if p.Utilization < 0 || p.Utilization > 1 {
			t.Fatalf("%s utilization %v", p.Label, p.Utilization)
		}
		if p.PenaltyFrac < 0 || p.PenaltyFrac > 1 {
			t.Fatalf("%s penalty frac %v", p.Label, p.PenaltyFrac)
		}
	}
	// A huge probe drags overall throughput down: the 500 KB point's
	// average improvement should not exceed the 100 KB point's by a wide
	// margin (probing 1/8th of the object on every candidate is costly).
	if pts[2].AvgImprovement > pts[1].AvgImprovement+25 {
		t.Errorf("500KB probe improved on 100KB by too much: %+v", pts)
	}
}

func TestAblateSelectionRule(t *testing.T) {
	pts := AblateSelectionRule(AblationParams{Seed: 42, Rounds: 30})
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	if pts[0].Label != "first-finished" || pts[1].Label != "max-throughput" {
		t.Fatalf("labels = %v, %v", pts[0].Label, pts[1].Label)
	}
	// The two rules agree on equal-size probes up to timing detail; their
	// aggregate outcomes should be in the same band.
	d := pts[0].AvgImprovement - pts[1].AvgImprovement
	if d > 40 || d < -40 {
		t.Errorf("rules diverge too much: %+v vs %+v", pts[0], pts[1])
	}
}

func TestAblateWeightedPolicy(t *testing.T) {
	pts := AblateWeightedPolicy(AblationParams{Seed: 42, Rounds: 60}, 5)
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	uniform, weighted := pts[0], pts[1]
	if uniform.Label != "uniform" || weighted.Label != "weighted" {
		t.Fatalf("labels = %q, %q", uniform.Label, weighted.Label)
	}
	// The paper's Section 6 expectation: weighting by utilization finds
	// the better nodes more often. Allow sampling slack but weighted must
	// not be dramatically worse.
	if weighted.AvgImprovement < uniform.AvgImprovement-20 {
		t.Errorf("weighted policy much worse than uniform: %+v vs %+v", weighted, uniform)
	}
}

func TestAblateSharedBottleneck(t *testing.T) {
	pts := AblateSharedBottleneck(AblationParams{Seed: 42, Rounds: 40},
		[]float64{0.0001, 0.999})
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	noShare, allShare := pts[0], pts[1]
	// With every client bottlenecked at its own access link, indirect
	// routing cannot deliver meaningful gains: average improvement must
	// collapse relative to the no-sharing configuration.
	if allShare.AvgImprovement > noShare.AvgImprovement/2+5 {
		t.Errorf("shared bottleneck did not erode improvement: %+v vs %+v", allShare, noShare)
	}
}

func TestSummarizeRoundsSkipsErrors(t *testing.T) {
	recs := []Record{
		{Improvement: 50, Selected: "X"},
		{Improvement: 999, Err: errTest},
		{Improvement: -10, Selected: "Y"},
		{Improvement: 0, Selected: ""},
	}
	pt := summarizeRounds("t", recs)
	if pt.AvgImprovement != (50-10+0)/3.0 {
		t.Fatalf("avg = %v", pt.AvgImprovement)
	}
	if pt.Utilization != 2.0/3 {
		t.Fatalf("utilization = %v", pt.Utilization)
	}
	if pt.PenaltyFrac != 0.5 {
		t.Fatalf("penalty frac = %v", pt.PenaltyFrac)
	}
}

var errTest = errSentinel{}

type errSentinel struct{}

func (errSentinel) Error() string { return "test error" }

func TestAblateObjectSize(t *testing.T) {
	pts := AblateObjectSize(AblationParams{Seed: 42, Rounds: 25},
		[]int64{500_000, 4_000_000})
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	small, large := pts[0], pts[1]
	// Large transfers must benefit at least as much as small ones: the
	// probe is a fixed cost that a 500 KB object cannot amortize.
	if large.AvgImprovement < small.AvgImprovement-10 {
		t.Errorf("large transfers gained less than small: %+v vs %+v", large, small)
	}
}
