package experiment

import (
	"testing"
	"time"
)

// TestRunChaos drives the whole campaign at test scale and asserts the
// acceptance line: every fault class produced the expected verdict, the
// monitor recovered after every heal, nothing ran past its deadline,
// and the cache never served a corrupted span.
func TestRunChaos(t *testing.T) {
	res := RunChaos(ChaosParams{
		Seed:         7,
		ObjectSize:   48 << 10,
		Transfers:    10,
		Deadline:     2 * time.Second,
		SimBytes:     1 << 20,
		SimTransfers: 12,
	})
	if len(res.Entries) != 9 {
		t.Fatalf("campaign covered %d fault classes, want 9", len(res.Entries))
	}
	for _, e := range res.Entries {
		t.Logf("%-16s %-4s transfers=%d failures=%d verdict=%s ok=%v recovered=%v burn=%v max=%.3fs",
			e.Class, e.Mode, e.Transfers, e.Failures, e.Verdict, e.VerdictOK, e.Recovered, e.BurnAlert, e.MaxTransfer)
		if !e.VerdictOK {
			t.Errorf("%s: verdict %s not among the expected states", e.Class, e.Verdict)
		}
		if !e.Recovered {
			t.Errorf("%s: monitor never recovered after heal", e.Class)
		}
		if e.DeadlineExceeded != 0 {
			t.Errorf("%s: %d transfers ran past their deadline", e.Class, e.DeadlineExceeded)
		}
		if e.CorruptDeliveries != 0 {
			t.Errorf("%s: %d corrupt spans served from cache", e.Class, e.CorruptDeliveries)
		}
		if e.Class != "corrupted-range" && e.Mode == "live" && e.Failures == 0 {
			t.Errorf("%s: fault phase produced no failures — injection inert?", e.Class)
		}
	}
	// Hard-failing live classes must have tripped the fast-window SLO
	// burn alert; the corruption class (transport-clean) must not have.
	// The same split governs the flight trigger engine: a hard-failing
	// class captures exactly one rate-limited debug bundle (overlapping
	// burn and health-down triggers on the one faulted path collapse),
	// carrying the path's wide events and at least one stitched trace;
	// a transport-clean class captures none.
	for _, e := range res.Entries {
		switch e.Class {
		case "partition", "slow-loris", "mid-stream-reset":
			if !e.BurnAlert {
				t.Errorf("%s: SLO fast-window burn alert never fired", e.Class)
			}
			if e.Bundles != 1 {
				t.Errorf("%s: trigger engine captured %d bundles, want exactly 1", e.Class, e.Bundles)
			}
			if e.BundleEvents == 0 {
				t.Errorf("%s: bundle carries no wide events for the faulted path", e.Class)
			}
			if e.BundleTraces == 0 {
				t.Errorf("%s: bundle carries no stitched traces", e.Class)
			}
		case "flap":
			if !e.BurnAlert {
				t.Errorf("%s: SLO fast-window burn alert never fired", e.Class)
			}
			// A flapping path may settle at degraded without ever firing a
			// trigger, or go down and fire one — but never more than one
			// inside the rate-limit window.
			if e.Bundles > 1 {
				t.Errorf("flap: trigger engine captured %d bundles, want at most 1", e.Bundles)
			}
		case "corrupted-range":
			if e.BurnAlert {
				t.Errorf("corrupted-range: burn alert fired on a transport-clean path")
			}
			if e.Bundles != 0 {
				t.Errorf("corrupted-range: %d bundles captured on a transport-clean path", e.Bundles)
			}
		}
	}
	if !res.AllVerdictsOK || !res.AllRecovered {
		t.Errorf("campaign rollup: verdicts_ok=%v recovered=%v", res.AllVerdictsOK, res.AllRecovered)
	}
	if res.TotalDeadlineExceeded != 0 || res.TotalCorruptDeliveries != 0 {
		t.Errorf("campaign rollup: deadline_exceeded=%d corrupt=%d",
			res.TotalDeadlineExceeded, res.TotalCorruptDeliveries)
	}
}
