package experiment

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/registry"
	"repro/internal/stats"
)

// The registry-load experiment proves the discovery tier holds up at
// registry scale: a table of (by default) 100k simulated relays under a
// churning heartbeat storm plus concurrent client LIST traffic, over
// live loopback TCP. Two comparisons come out of it:
//
//   - Sharding: the same open-loop REGISTER workload is driven against a
//     single-mutex registry (NumShards: 1 — exactly the old design) and
//     a sharded one, with incremental delta polls racing the writes.
//     Every poll sweeps the full table under its locks while emitting
//     only the changed handful, so the single mutex turns each poll
//     into a registration stall covering the whole table; the sharded
//     layout confines each stall to 1/NumShards of the keyspace.
//     Open-loop pacing means latency is measured from the op's
//     scheduled dispatch time, so queueing delay counts — a saturated
//     server cannot hide behind a closed loop's back-pressure. Ranked
//     full-table scans are timed separately, before the storm: on a
//     small machine their sort CPU saturates the core identically for
//     both configurations, which would mask the lock behavior under
//     measurement.
//
//   - Delta sync: during the steady-state heartbeat churn (almost all
//     refreshes are pure — nothing material changes), a delta client
//     polls LISTD while a legacy client re-pulls full LISTH lists, and
//     the experiment reports the measured bytes on the wire per poll for
//     each. The delta client's steady-state poll is a single EPOCH line.

// RegistryLoadParams configures the load comparison.
type RegistryLoadParams struct {
	// Relays is the preloaded table size (default 100_000).
	Relays int
	// Registrations is how many open-loop REGISTER ops to measure per
	// configuration (default 16000).
	Registrations int
	// Rate is the open-loop dispatch rate in ops/sec (default 1000 — a
	// rate even one core sustains between scans, so the tail measures
	// lock stalls and their queue drain rather than CPU saturation).
	Rate float64
	// Workers is the size of the registering client pool (default 16).
	Workers int
	// RankedScans is how many ranked LISTH scans to time (default 5).
	// They run sequentially before the storm: ranking 100k entries is
	// hundreds of ms of raw CPU, so interleaving them with the measured
	// REGISTER stream would report core saturation, not lock behavior.
	RankedScans int
	// ScanK is the ranked scans' LISTH top-K (default 100). The server
	// still sweeps, copies, and ranks the full table per scan — K bounds
	// only the response size, mirroring fetch -top K clients.
	ScanK int
	// DeltaScanners is how many clients poll LISTD with a live cursor
	// (default 8) — the steady-state read load of delta-sync mirrors,
	// and the contention that breaks a single-mutex table: an
	// incremental delta sweeps every entry under the shard locks but
	// emits only the handful that changed, so nearly all of its cost is
	// lock-hold time. The scanners share one cadence, so their polls
	// arrive as synchronized bursts — the realistic worst case for a
	// fleet of mirrors on a fixed refresh interval, and the single
	// mutex serializes the entire burst into one indivisible stall.
	DeltaScanners int
	// DeltaScanEvery is each delta scanner's poll cadence (default 2s).
	DeltaScanEvery time.Duration
	// DeltaPolls is how many LISTD/LISTH byte-measurement polls run
	// during the churn (default 25).
	DeltaPolls int
	// Shards is the sharded configuration's partition count (default
	// registry.DefaultShards).
	Shards int
}

func (p RegistryLoadParams) withDefaults() RegistryLoadParams {
	if p.Relays == 0 {
		p.Relays = 100_000
	}
	if p.Registrations == 0 {
		p.Registrations = 16000
	}
	if p.Rate == 0 {
		p.Rate = 1000
	}
	if p.Workers == 0 {
		p.Workers = 16
	}
	if p.RankedScans == 0 {
		p.RankedScans = 5
	}
	if p.ScanK == 0 {
		p.ScanK = 100
	}
	if p.DeltaScanners == 0 {
		p.DeltaScanners = 8
	}
	if p.DeltaScanEvery == 0 {
		p.DeltaScanEvery = 2 * time.Second
	}
	if p.DeltaPolls == 0 {
		p.DeltaPolls = 25
	}
	if p.Shards == 0 {
		p.Shards = registry.DefaultShards
	}
	return p
}

// RegistryLoadConfig is one configuration's measured behavior under the
// storm.
type RegistryLoadConfig struct {
	Shards int `json:"shards"`
	// RegisterP50Ms/RegisterP99Ms are REGISTER latencies measured from
	// scheduled dispatch time (open loop: queueing delay counts).
	RegisterP50Ms float64 `json:"register_p50_ms"`
	RegisterP99Ms float64 `json:"register_p99_ms"`
	// ListP50Ms/ListP99Ms are ranked LISTH scan latencies (the server
	// sweeps and ranks the full table per scan).
	ListP50Ms float64 `json:"list_p50_ms"`
	ListP99Ms float64 `json:"list_p99_ms"`
	// DeltaP50Ms/DeltaP99Ms are incremental LISTD poll latencies during
	// the storm.
	DeltaP50Ms float64 `json:"delta_p50_ms"`
	DeltaP99Ms float64 `json:"delta_p99_ms"`
	// Scans is how many ranked LISTH scans were timed; DeltaScans is how
	// many incremental LISTD polls the delta scanners completed during
	// the storm.
	Scans      int `json:"scans"`
	DeltaScans int `json:"delta_scans"`
	// AchievedRate is the measured REGISTER completion rate (ops/sec);
	// well below the target rate means the configuration saturated.
	AchievedRate float64 `json:"achieved_rate"`
}

// RegistryLoadResult is the full comparison.
type RegistryLoadResult struct {
	Relays        int     `json:"relays"`
	Registrations int     `json:"registrations"`
	TargetRate    float64 `json:"target_rate"`

	Baseline RegistryLoadConfig `json:"baseline"` // NumShards = 1: the old single-mutex design
	Sharded  RegistryLoadConfig `json:"sharded"`

	// P99Speedup is Baseline.RegisterP99Ms / Sharded.RegisterP99Ms.
	P99Speedup float64 `json:"p99_speedup"`

	// FullListBytes is the measured LISTH response size for the full
	// table; DeltaPollBytes is the mean LISTD response size during
	// steady-state churn; DeltaSavings is their ratio.
	FullListBytes  int64   `json:"full_list_bytes"`
	DeltaPollBytes float64 `json:"delta_poll_bytes"`
	DeltaPolls     int     `json:"delta_polls"`
	DeltaSavings   float64 `json:"delta_savings"`
}

// RunRegistryLoad drives the storm against both configurations on live
// loopback TCP.
func RunRegistryLoad(p RegistryLoadParams) RegistryLoadResult {
	p = p.withDefaults()
	// On boxes with very few cores, give the runtime extra Ps (applied
	// identically to both configurations): with GOMAXPROCS=1 a woken
	// REGISTER goroutine queues behind every CPU-bound scan goroutine
	// regardless of lock layout, so the measurement reports single-P
	// scheduler serialization instead of lock architecture. OS
	// timesharing across Ms stands in for hardware parallelism.
	if runtime.GOMAXPROCS(0) < 4 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	}
	res := RegistryLoadResult{
		Relays:        p.Relays,
		Registrations: p.Registrations,
		TargetRate:    p.Rate,
	}
	res.Baseline = runRegistryConfig(p, 1, nil)
	res.Sharded = runRegistryConfig(p, p.Shards, &res)
	if res.Sharded.RegisterP99Ms > 0 {
		res.P99Speedup = res.Baseline.RegisterP99Ms / res.Sharded.RegisterP99Ms
	}
	return res
}

// runRegistryConfig measures one configuration. When byteRes is non-nil
// the delta-vs-full byte measurement also runs (on the sharded pass —
// the protocol is identical in both, so once is enough).
func runRegistryConfig(p RegistryLoadParams, shards int, byteRes *RegistryLoadResult) RegistryLoadConfig {
	s := &registry.Server{NumShards: shards}
	// Preload in-process: the storm measures steady-state behavior at
	// scale, not bulk-load throughput.
	for i := 0; i < p.Relays; i++ {
		err := s.RegisterHealth(relayName(i), "10.0.0.1:8081", time.Hour, 0.5)
		must(err == nil, "preload: %v", err)
	}
	l, err := s.ServeAddr("127.0.0.1:0")
	must(err == nil, "registry listen: %v", err)
	defer l.Close()
	addr := l.Addr().String()
	ctx := context.Background()

	cfg := RegistryLoadConfig{Shards: shards}

	// Phase 1 — ranked scans, timed solo: LISTH top-K over a raw
	// connection (draining, not parsing). Sequential and pre-storm
	// because ranking 100k entries is hundreds of ms of raw CPU; on a
	// small machine, racing that against the measured REGISTER stream
	// reports core saturation for both configurations, not lock
	// behavior.
	var listLat []float64
	{
		conn, err := net.Dial("tcp", addr)
		must(err == nil, "lister dial: %v", err)
		br := bufio.NewReader(conn)
		scanCmd := fmt.Sprintf("LISTH %d\n", p.ScanK)
		for i := 0; i < p.RankedScans; i++ {
			t0 := time.Now()
			_, err := conn.Write([]byte(scanCmd))
			must(err == nil, "lister write: %v", err)
			lines := 0
			for {
				line, err := br.ReadString('\n')
				must(err == nil, "lister read: %v", err)
				if line == ".\n" {
					break
				}
				lines++
			}
			must(lines >= min(p.ScanK, p.Relays), "lister saw %d lines, want %d", lines, min(p.ScanK, p.Relays))
			listLat = append(listLat, float64(time.Since(t0).Microseconds())/1000)
		}
		conn.Close()
	}

	// Phase 2 — delta scanners: incremental LISTD polls with a live
	// cursor, the steady-state read traffic of deployed delta-sync
	// mirrors. Each poll sweeps the whole table under the shard locks
	// while emitting only the changed handful, so its cost is almost
	// pure lock-hold: the load that turns a single-mutex table into a
	// REGISTER stall machine, and exactly what striping confines. Each
	// scanner pays for its initial full snapshot *before* the measured
	// storm begins (a mirror bootstraps once, then holds its cursor).
	stop := make(chan struct{})
	startStorm := make(chan struct{})
	var listWG, warmWG sync.WaitGroup
	var deltaMu sync.Mutex
	var deltaLat []float64
	for i := 0; i < p.DeltaScanners; i++ {
		listWG.Add(1)
		warmWG.Add(1)
		go func() {
			defer listWG.Done()
			conn, err := net.Dial("tcp", addr)
			must(err == nil, "delta scanner dial: %v", err)
			defer conn.Close()
			br := bufio.NewReader(conn)
			var cursor uint64
			poll := func() {
				_, err := fmt.Fprintf(conn, "LISTD %d\n", cursor)
				must(err == nil, "delta scanner write: %v", err)
				header := ""
				for {
					line, err := br.ReadString('\n')
					must(err == nil, "delta scanner read: %v", err)
					if header == "" {
						header = line
					}
					if line == ".\n" {
						break
					}
				}
				_, err = fmt.Sscanf(header, "EPOCH %d", &cursor)
				must(err == nil, "delta scanner epoch parse: %q", header)
			}
			poll() // bootstrap: the one full snapshot, unmeasured
			warmWG.Done()
			<-startStorm
			// Open-loop pacing, like the heartbeat storm: polls are due
			// every DeltaScanEvery regardless of how long the previous
			// one took, so a table that can't keep up accumulates a
			// queue instead of quietly throttling its readers.
			due := time.Now()
			for {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				poll()
				deltaMu.Lock()
				deltaLat = append(deltaLat, float64(time.Since(t0).Microseconds())/1000)
				deltaMu.Unlock()
				due = due.Add(p.DeltaScanEvery)
				d := time.Until(due)
				if d <= 0 {
					continue
				}
				select {
				case <-stop:
					return
				case <-time.After(d):
				}
			}
		}()
	}
	warmWG.Wait()
	// Start the measured storm from a collected heap: the preload and the
	// ranked scans above leave tens of MB of garbage, and on a small
	// machine a collection firing mid-storm is a config-independent tail
	// event big enough to drown the lock behavior under measurement.
	runtime.GC()

	// Phase 3 — the heartbeat storm, open loop: ops are due at
	// start + i/rate and latency is measured from the due time. Almost
	// all heartbeats are pure refreshes (same addr, same health); 1 in
	// 100 moves its health so the delta stream sees realistic sparse
	// change.
	type op struct {
		idx int
		due time.Time
	}
	ops := make(chan op, p.Workers*4)
	regLat := make([]float64, p.Registrations)
	var workWG sync.WaitGroup
	for w := 0; w < p.Workers; w++ {
		workWG.Add(1)
		go func() {
			defer workWG.Done()
			c := registry.NewClient(addr, registry.WithPooledConn())
			defer c.Close()
			for o := range ops {
				health := 0.5
				if o.idx%100 == 0 {
					health = 0.5 + float64(o.idx%7)/100 // sparse material churn
				}
				err := c.RegisterHealth(ctx, relayName(o.idx%p.Relays), "10.0.0.1:8081", time.Hour, health)
				must(err == nil, "storm register: %v", err)
				regLat[o.idx] = float64(time.Since(o.due).Microseconds()) / 1000
			}
		}()
	}
	close(startStorm)
	start := time.Now()
	interval := time.Duration(float64(time.Second) / p.Rate)
	for i := 0; i < p.Registrations; i++ {
		due := start.Add(time.Duration(i) * interval)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		ops <- op{idx: i, due: due}
	}
	close(ops)
	workWG.Wait()
	elapsed := time.Since(start).Seconds()
	close(stop)
	listWG.Wait()

	// Phase 4 (sharded pass only) — bytes on the wire, delta vs full,
	// under a background churn matching the storm's change rate. Kept
	// out of the measured storm: the full-list pull it needs for the
	// comparison would stall the REGISTER stream on a small machine.
	if byteRes != nil {
		churnStop := make(chan struct{})
		var churnWG sync.WaitGroup
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			c := registry.NewClient(addr, registry.WithPooledConn())
			defer c.Close()
			for i := 0; ; i++ {
				select {
				case <-churnStop:
					return
				default:
				}
				health := 0.5
				if i%100 == 0 {
					health = 0.5 + float64(i%7)/100
				}
				err := c.RegisterHealth(ctx, relayName(i%p.Relays), "10.0.0.1:8081", time.Hour, health)
				must(err == nil, "churn register: %v", err)
				time.Sleep(5 * time.Millisecond)
			}
		}()
		measureWireBytes(addr, p, byteRes)
		close(churnStop)
		churnWG.Wait()
	}

	sort.Float64s(regLat)
	cfg.RegisterP50Ms = stats.Quantile(regLat, 0.50)
	cfg.RegisterP99Ms = stats.Quantile(regLat, 0.99)
	sort.Float64s(listLat)
	cfg.ListP50Ms = stats.Quantile(listLat, 0.50)
	cfg.ListP99Ms = stats.Quantile(listLat, 0.99)
	cfg.Scans = len(listLat)
	sort.Float64s(deltaLat)
	cfg.DeltaP50Ms = stats.Quantile(deltaLat, 0.50)
	cfg.DeltaP99Ms = stats.Quantile(deltaLat, 0.99)
	cfg.DeltaScans = len(deltaLat)
	if elapsed > 0 {
		cfg.AchievedRate = float64(p.Registrations) / elapsed
	}
	return cfg
}

// measureWireBytes counts raw response bytes for one full LISTH pull and
// p.DeltaPolls steady-state LISTD polls over one raw connection each way.
func measureWireBytes(addr string, p RegistryLoadParams, res *RegistryLoadResult) {
	conn, err := net.Dial("tcp", addr)
	must(err == nil, "byte probe dial: %v", err)
	defer conn.Close()
	br := bufio.NewReader(conn)

	// countResponse reads lines until the "." terminator (or a bare
	// EPOCH header's end for LISTD incremental responses) and returns the
	// byte count on the wire.
	countResponse := func(cmd string) (int64, string) {
		_, err := conn.Write([]byte(cmd))
		must(err == nil, "byte probe write: %v", err)
		var n int64
		var header string
		for {
			line, err := br.ReadString('\n')
			must(err == nil, "byte probe read: %v", err)
			n += int64(len(line))
			if header == "" {
				header = strings.TrimSpace(line)
			}
			if strings.TrimSpace(line) == "." {
				return n, header
			}
		}
	}

	full, _ := countResponse("LISTH\n")
	res.FullListBytes = full

	// First LISTD pull pays for a full snapshot; poll from its epoch.
	_, header := countResponse("LISTD 0\n")
	var epoch uint64
	_, err = fmt.Sscanf(header, "EPOCH %d", &epoch)
	must(err == nil, "byte probe epoch parse: %q", header)

	var deltaTotal int64
	for i := 0; i < p.DeltaPolls; i++ {
		time.Sleep(20 * time.Millisecond) // let the storm churn between polls
		n, header := countResponse(fmt.Sprintf("LISTD %d\n", epoch))
		_, err = fmt.Sscanf(header, "EPOCH %d", &epoch)
		must(err == nil, "byte probe epoch parse: %q", header)
		deltaTotal += n
	}
	res.DeltaPolls = p.DeltaPolls
	res.DeltaPollBytes = float64(deltaTotal) / float64(p.DeltaPolls)
	if res.DeltaPollBytes > 0 {
		res.DeltaSavings = float64(res.FullListBytes) / res.DeltaPollBytes
	}
}

func relayName(i int) string { return fmt.Sprintf("relay-%06d", i) }
