package experiment

import (
	"bufio"
	"io"
	"net"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"syscall"
	"time"

	"repro/internal/httpx"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/relay"
)

// The observer-overhead experiment prices the observability plane: the
// same loopback workload is driven through a bare relay (counters only —
// they cannot be turned off), through a fully instrumented one
// (path-health monitor with SLO windows, tail-kept span collection, and
// traced requests feeding histogram exemplars), and through one that
// additionally runs the flight recorder's always-on wide-event ring, in
// interleaved rounds so machine drift hits all sides equally.
// Observability that costs more than a few percent gets turned off in
// production and then isn't there for the outage; the experiment asserts
// the full plane stays under MaxOverhead (default 5%) of the bare
// forwarding path, and separately prices the flight recorder's always-on
// tax — the wide-event ring's increment over the instrumented relay plus
// the continuous profiler's capture cycle amortised over its production
// cadence — against MaxAlwaysOn (default 2%).

// ObsOverheadParams configures the overhead comparison.
type ObsOverheadParams struct {
	// Rounds is the number of ABBA measurement blocks — each block
	// runs bare, observed, observed, bare — (default 9; the verdict
	// aggregates per-block ratios, so more, shorter blocks beat fewer
	// long ones).
	Rounds int
	// RequestsPerRound is how many sequential requests each client
	// issues per round (default 80).
	RequestsPerRound int
	// Clients is the number of concurrent keep-alive client connections
	// (default 4).
	Clients int
	// ObjectSize is the transfer size per request (default 64 KB).
	ObjectSize int64
	// MaxOverhead is the asserted ceiling on the observed-over-bare
	// slowdown fraction (default 0.05).
	MaxOverhead float64
	// MaxAlwaysOn is the asserted ceiling on the flight recorder's
	// always-on fraction: the wide-event ring's increment over the
	// instrumented relay plus the profiler cycle amortised over
	// ProfilerCadenceSecs (default 0.02).
	MaxAlwaysOn float64
	// ProfilerCadenceSecs is the production capture cadence the profiler
	// cycle is amortised over (default 30, matching the daemons'
	// -profile-every default).
	ProfilerCadenceSecs float64
}

func (p ObsOverheadParams) withDefaults() ObsOverheadParams {
	if p.Rounds == 0 {
		p.Rounds = 9
	}
	if p.RequestsPerRound == 0 {
		p.RequestsPerRound = 80
	}
	if p.Clients == 0 {
		p.Clients = 4
	}
	if p.ObjectSize == 0 {
		p.ObjectSize = 64 << 10
	}
	if p.MaxOverhead == 0 {
		p.MaxOverhead = 0.05
	}
	if p.MaxAlwaysOn == 0 {
		p.MaxAlwaysOn = 0.02
	}
	if p.ProfilerCadenceSecs == 0 {
		p.ProfilerCadenceSecs = 30
	}
	return p
}

// ObsOverheadResult is the measured comparison.
type ObsOverheadResult struct {
	Rounds           int
	RequestsPerRound int
	Clients          int
	ObjectSize       int64

	// BareMedianSecs and ObservedMedianSecs are the median round wall
	// times for each relay; BareMinSecs and ObservedMinSecs the fastest
	// round each side managed. Wall times are reported for context but
	// deliberately not the verdict.
	BareMedianSecs     float64
	ObservedMedianSecs float64
	BareMinSecs        float64
	ObservedMinSecs    float64
	// BareCPUSecs and ObservedCPUSecs are the median per-block process
	// CPU times (user+sys, getrusage; a block is two rounds per side).
	BareCPUSecs     float64
	ObservedCPUSecs float64
	// BareRPS and ObservedRPS are the request rates of the fastest
	// rounds.
	BareRPS     float64
	ObservedRPS float64
	// OverheadFrac is the trimmed-total CPU-time ratio minus one: the
	// round pairs with the most extreme observed/bare ratios are
	// discarded, the surviving rounds' CPU times are summed per side,
	// and the sums are divided. CPU time, not wall time: on a shared
	// box a noisy neighbor preempts the process and inflates wall
	// clocks by ±10% at the 100ms scale, but it cannot bill CPU to us
	// — while everything the plane actually costs (span bookkeeping,
	// health folds, allocation work) shows up in rusage. Trimming
	// drops the pairs a co-tenant burst landed on; summing the rest
	// averages the remaining jitter down by √N where a plain median
	// would keep a single pair's noise intact.
	OverheadFrac float64

	// Tail-retention accounting from the observed relay's collector —
	// proof the span path actually ran.
	KeptTraces    uint64
	DroppedTraces uint64
	// Paths is how many upstream paths the observed relay's health
	// monitor tracked (sanity: must be >= 1).
	Paths int

	// FlightMedianSecs and FlightCPUSecs are the flight-instrumented
	// relay's medians (full plane plus the always-on wide-event ring).
	FlightMedianSecs float64
	FlightCPUSecs    float64
	// FlightEvents is how many wide events the ring recorded — proof the
	// append path actually ran on every forward.
	FlightEvents uint64
	// FlightOverheadFrac is the wide-event ring's increment over the
	// instrumented relay (trimmed CPU ratio minus one; can dip slightly
	// negative under measurement noise when the true cost is near zero).
	FlightOverheadFrac float64
	// ProfilerCycleCPUSecs is the measured process-CPU cost of one
	// profiler capture cycle (CPU window + heap and goroutine snapshots
	// + file writes), and ProfilerOverheadFrac that cost amortised over
	// ProfilerCadenceSecs relative to the bare workload's CPU burn rate.
	ProfilerCycleCPUSecs float64
	ProfilerCadenceSecs  float64
	ProfilerOverheadFrac float64
	// AlwaysOnOverheadFrac is the flight recorder's total always-on tax:
	// FlightOverheadFrac + ProfilerOverheadFrac. Asserted under
	// MaxAlwaysOn.
	AlwaysOnOverheadFrac float64
}

// RunObsOverhead measures the cost of the full observability plane on
// live loopback TCP.
func RunObsOverhead(p ObsOverheadParams) ObsOverheadResult {
	p = p.withDefaults()
	origin := relay.NewOriginServer()
	const objName = "obs-overhead.bin"
	origin.Put(objName, p.ObjectSize)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	must(err == nil, "origin listen: %v", err)
	defer ol.Close()
	originAddr := ol.Addr().String()

	bare := relay.New()
	slo := obs.NewSLOTracker(obs.SLOConfig{})
	spans := obs.NewTailSpanCollector(obs.TailConfig{KeepProb: 0.1})
	observed := relay.New(
		relay.WithHealthMonitor(obs.NewHealthMonitor(obs.HealthConfig{Clock: obs.WallClock(), SLO: slo})),
		relay.WithSpans(spans),
	)
	// The flight relay carries the same plane plus the always-on
	// wide-event ring, so its increment over the observed relay isolates
	// what one ring append per forward actually costs.
	rec := flight.NewRecorder(flight.Config{Ring: 512})
	flighted := relay.New(
		relay.WithHealthMonitor(obs.NewHealthMonitor(obs.HealthConfig{Clock: obs.WallClock(), SLO: obs.NewSLOTracker(obs.SLOConfig{})})),
		relay.WithSpans(obs.NewTailSpanCollector(obs.TailConfig{KeepProb: 0.1})),
		relay.WithFlight(rec),
	)

	bl, err := bare.ServeAddr("127.0.0.1:0")
	must(err == nil, "bare relay listen: %v", err)
	defer bl.Close()
	obl, err := observed.ServeAddr("127.0.0.1:0")
	must(err == nil, "observed relay listen: %v", err)
	defer obl.Close()
	fll, err := flighted.ServeAddr("127.0.0.1:0")
	must(err == nil, "flight relay listen: %v", err)
	defer fll.Close()

	// round drives the whole per-round workload through one relay and
	// returns its wall and process-CPU times: each client holds one
	// keep-alive connection and issues its requests sequentially, every
	// request carrying a fresh x-trace (both relays parse it; only the
	// observed one also records spans and folds path health).
	// Automatic GC is off for the whole measurement (restored on return),
	// with an untimed forced collection between rounds: with it on,
	// whether a background cycle's mark work drains during a bare or an
	// observed round is scheduler luck, and that luck is worth several
	// percent either way — more than the effect being measured. What the
	// rounds then time is the plane's direct cost: span and health
	// bookkeeping plus the allocation work itself. The plane's GC-mark
	// residency is excluded, deliberately — it is bounded by the
	// collector's byte budget (~1 MiB default), not by traffic.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	round := func(relayAddr string) (wall, cpu float64) {
		runtime.GC()
		cpuStart := processCPU()
		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < p.Clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				conn, err := net.Dial("tcp", relayAddr)
				must(err == nil, "client dial: %v", err)
				defer conn.Close()
				br := bufio.NewReader(conn)
				for i := 0; i < p.RequestsPerRound; i++ {
					req := httpx.NewGet("http://"+originAddr+"/"+objName, originAddr)
					req.SetRange(0, p.ObjectSize)
					// NewGet defaults to connection: close; this loop holds
					// its connection across the whole round so the timing
					// measures forwarding, not TCP setup.
					req.Header["connection"] = "keep-alive"
					sc := obs.SpanContext{Trace: obs.NewTraceID(), Span: obs.NewSpanID()}
					req.Header[obs.TraceHeader] = sc.Header()
					must(req.Write(conn) == nil, "client write")
					resp, err := httpx.ReadResponse(br)
					must(err == nil, "client read: %v", err)
					must(resp.Status == 206 || resp.Status == 200, "status %d", resp.Status)
					n, err := io.Copy(io.Discard, resp.Body)
					must(err == nil && n == p.ObjectSize, "body: %d bytes, err %v", n, err)
				}
			}()
		}
		wg.Wait()
		return time.Since(start).Seconds(), processCPU() - cpuStart
	}

	// One untimed warmup round each settles listeners, the origin, and
	// the runtime before anything is measured.
	round(bl.Addr().String())
	round(obl.Addr().String())
	round(fll.Addr().String())

	bareTimes := make([]float64, 0, p.Rounds)
	obsTimes := make([]float64, 0, p.Rounds)
	fltTimes := make([]float64, 0, p.Rounds)
	bareCPUs := make([]float64, 0, p.Rounds)
	obsCPUs := make([]float64, 0, p.Rounds)
	fltCPUs := make([]float64, 0, p.Rounds)
	ratios := make([]float64, 0, p.Rounds)
	fltRatios := make([]float64, 0, p.Rounds)
	bareWall := 0.0
	bareCPUTotal := 0.0
	for r := 0; r < p.Rounds; r++ {
		// Each block runs bare, observed, flight, flight, observed,
		// bare: machine drift at the round timescale (frequency scaling,
		// co-tenant cache pressure) is close to linear across the six
		// slots, and the mirrored order gives every side the same drift
		// weight — slots 0+5 for bare, 1+4 for observed, 2+3 for flight
		// — so each block's ratios cancel it to first order instead of
		// billing it to whichever side ran later.
		b1w, b1 := round(bl.Addr().String())
		o1w, o1 := round(obl.Addr().String())
		f1w, f1 := round(fll.Addr().String())
		f2w, f2 := round(fll.Addr().String())
		o2w, o2 := round(obl.Addr().String())
		b2w, b2 := round(bl.Addr().String())
		bareTimes = append(bareTimes, b1w, b2w)
		obsTimes = append(obsTimes, o1w, o2w)
		fltTimes = append(fltTimes, f1w, f2w)
		bareCPUs = append(bareCPUs, b1+b2)
		obsCPUs = append(obsCPUs, o1+o2)
		fltCPUs = append(fltCPUs, f1+f2)
		ratios = append(ratios, (o1+o2)/(b1+b2))
		fltRatios = append(fltRatios, (f1+f2)/(o1+o2))
		bareWall += b1w + b2w
		bareCPUTotal += b1 + b2
	}

	res := ObsOverheadResult{
		Rounds: p.Rounds, RequestsPerRound: p.RequestsPerRound,
		Clients: p.Clients, ObjectSize: p.ObjectSize,
		BareMedianSecs:     median(bareTimes),
		ObservedMedianSecs: median(obsTimes),
		BareMinSecs:        minOf(bareTimes),
		ObservedMinSecs:    minOf(obsTimes),
		BareCPUSecs:        median(bareCPUs),
		ObservedCPUSecs:    median(obsCPUs),
	}
	reqs := float64(p.Clients * p.RequestsPerRound)
	res.BareRPS = reqs / res.BareMinSecs
	res.ObservedRPS = reqs / res.ObservedMinSecs
	res.OverheadFrac = trimmedRatio(bareCPUs, obsCPUs, ratios) - 1
	res.FlightMedianSecs = median(fltTimes)
	res.FlightCPUSecs = median(fltCPUs)
	res.FlightEvents = rec.Seen()
	res.FlightOverheadFrac = trimmedRatio(obsCPUs, fltCPUs, fltRatios) - 1

	// Price the continuous profiler the same way it runs in production:
	// one full capture cycle (CPU-profile window, heap and goroutine
	// snapshots, file writes) measured in process CPU, then amortised
	// over the capture cadence against the bare workload's CPU burn
	// rate. The cycle runs untimed, outside the blocks, so its cost
	// never pollutes the relay ratios. A short CPU window keeps the
	// experiment fast; the window's own cost is per-sample signal
	// handling, negligible next to the snapshots it bounds.
	profDir, err := os.MkdirTemp("", "obs-overhead-prof")
	must(err == nil, "profiler dir: %v", err)
	defer os.RemoveAll(profDir)
	prof, err := flight.NewProfiler(flight.ProfilerConfig{Dir: profDir, CPUSeconds: 0.5})
	must(err == nil, "profiler: %v", err)
	cycleStart := processCPU()
	must(prof.CycleNow() == nil, "profiler cycle")
	res.ProfilerCycleCPUSecs = processCPU() - cycleStart
	res.ProfilerCadenceSecs = p.ProfilerCadenceSecs
	if bareWall > 0 && bareCPUTotal > 0 {
		bareCPUPerSec := bareCPUTotal / bareWall
		res.ProfilerOverheadFrac = res.ProfilerCycleCPUSecs / (p.ProfilerCadenceSecs * bareCPUPerSec)
	}
	res.AlwaysOnOverheadFrac = res.FlightOverheadFrac + res.ProfilerOverheadFrac

	if ts, ok := spans.TailStats(); ok {
		res.KeptTraces = ts.KeptTraces
		res.DroppedTraces = ts.DroppedTraces
	}
	res.Paths = len(observed.Health.Snapshot().Paths)
	must(res.Paths >= 1, "observed relay tracked no paths")
	must(res.KeptTraces+res.DroppedTraces > 0, "tail collector decided no traces")
	must(res.FlightEvents > 0, "flight ring recorded no wide events")
	must(res.OverheadFrac < p.MaxOverhead,
		"observability overhead %.1f%% exceeds %.1f%% ceiling",
		100*res.OverheadFrac, 100*p.MaxOverhead)
	must(res.AlwaysOnOverheadFrac < p.MaxAlwaysOn,
		"flight always-on overhead %.1f%% exceeds %.1f%% ceiling",
		100*res.AlwaysOnOverheadFrac, 100*p.MaxAlwaysOn)
	return res
}

// trimmedRatio discards the measurement blocks with the most extreme
// observed/bare ratios (1/6 of the blocks at each end, at least one),
// sums the surviving blocks' CPU per side, and returns the ratio of
// sums. A single co-tenant burst lands on one or two blocks and shows
// up as an extreme block ratio in either direction; trimming removes it
// symmetrically, and the summed ratio of what remains averages the
// residual jitter instead of letting one block decide the verdict.
func trimmedRatio(bare, obsd, ratios []float64) float64 {
	n := len(ratios)
	if n == 0 {
		return 1
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ratios[idx[a]] < ratios[idx[b]] })
	drop := n / 6
	if drop < 1 {
		drop = 1
	}
	if 2*drop >= n {
		drop = 0
	}
	var sumBare, sumObs float64
	for _, i := range idx[drop : n-drop] {
		sumBare += bare[i]
		sumObs += obsd[i]
	}
	if sumBare == 0 {
		return 1
	}
	return sumObs / sumBare
}

// processCPU returns the process's cumulative user+system CPU seconds.
func processCPU() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	sec := func(tv syscall.Timeval) float64 {
		return float64(tv.Sec) + float64(tv.Usec)/1e6
	}
	return sec(ru.Utime) + sec(ru.Stime)
}

// minOf returns the smallest of xs (0 when empty).
func minOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// median returns the middle of xs (mean of the middle two when even).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
