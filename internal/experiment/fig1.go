package experiment

import (
	"sort"

	"repro/internal/stats"
)

// Fig1Result reproduces Figure 1 (histogram of throughput improvements
// aggregated over all clients) together with the headline statistics the
// paper reports around it: average and median improvement, the fraction of
// mass in [0, 100], the fraction of penalties, and the per-site average
// improvement range (33–49% in the paper).
type Fig1Result struct {
	// Hist is the improvement histogram over all indirect-selected
	// rounds, in percent, with the paper's axis ([-100, 300), 5%-wide
	// bins).
	Hist *stats.Histogram

	// Summary summarizes the same improvement samples.
	Summary stats.Summary

	// FracNegative is the penalty fraction (paper: ~12%).
	FracNegative float64

	// FracZeroToHundred is the fraction of samples in [0, 100]
	// (paper: 84%).
	FracZeroToHundred float64

	// Utilization is the overall fraction of rounds that chose the
	// indirect path (paper: ~45%).
	Utilization float64

	// PerSiteAvg is the average improvement (conditional on indirect
	// selection) per destination web site (paper: 33–49% depending on
	// site).
	PerSiteAvg map[string]float64

	// Sites lists the sites in deterministic order.
	Sites []string
}

// Fig1 computes the Figure 1 artifacts from the Section 3 dataset.
func Fig1(study *StudyResult) Fig1Result {
	imps := Improvements(study.Records)
	must(stats.NaNFree(imps), "NaN improvement sample")

	res := Fig1Result{
		Hist:       stats.NewHistogram(-100, 300, 80),
		Summary:    stats.Summarize(imps),
		PerSiteAvg: make(map[string]float64),
	}
	res.Hist.AddAll(imps)
	neg, inBand := 0, 0
	for _, v := range imps {
		if v < 0 {
			neg++
		}
		if v >= 0 && v <= 100 {
			inBand++
		}
	}
	if len(imps) > 0 {
		res.FracNegative = float64(neg) / float64(len(imps))
		res.FracZeroToHundred = float64(inBand) / float64(len(imps))
	}
	res.Utilization = UtilizationOf(study.Records)

	perSite := make(map[string][]float64)
	for _, r := range study.Records {
		if r.Indirect() {
			perSite[r.Server] = append(perSite[r.Server], r.Improvement)
		}
	}
	for site, vals := range perSite {
		res.PerSiteAvg[site] = stats.Mean(vals)
		res.Sites = append(res.Sites, site)
	}
	sort.Strings(res.Sites)
	return res
}

// Fig2Result reproduces Figure 2: per-client improvement histograms for a
// selection of clients, which the paper shows to be roughly similar to the
// aggregate distribution.
type Fig2Result struct {
	Clients []string
	Hists   map[string]*stats.Histogram
	Summary map[string]stats.Summary
}

// Fig2 computes per-client improvement histograms. clients defaults to the
// figure's exemplars present in the dataset when nil.
func Fig2(study *StudyResult, clients []string) Fig2Result {
	if clients == nil {
		for _, c := range []string{"Australia 2", "France", "Israel", "Sweden"} {
			if len(study.PerClient[c]) > 0 {
				clients = append(clients, c)
			}
		}
	}
	res := Fig2Result{
		Clients: clients,
		Hists:   make(map[string]*stats.Histogram),
		Summary: make(map[string]stats.Summary),
	}
	for _, c := range clients {
		imps := Improvements(study.PerClient[c])
		h := stats.NewHistogram(-100, 300, 40)
		h.AddAll(imps)
		res.Hists[c] = h
		res.Summary[c] = stats.Summarize(imps)
	}
	return res
}
