package experiment

import "testing"

func TestValidate(t *testing.T) {
	res := Validate()
	if len(res.Points) != 6 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// The low/medium-rate rows (which drive the paper's results) sit near
	// 1.1-1.2; the high-BDP row reaches ~2 because the simplified Reno
	// recovery over-penalizes multi-loss windows where NewReno/SACK would
	// recover smoothly.
	if res.RatioMin < 0.7 || res.RatioMax > 2.2 {
		t.Fatalf("fluid-vs-packet ratios [%.2f, %.2f] out of tolerance",
			res.RatioMin, res.RatioMax)
	}
	// The deliberately under-buffered row must show the documented
	// divergence: buffer-starved TCP falls well behind the fluid model.
	stress := res.Points[len(res.Points)-1]
	if stress.Note == "" || stress.Ratio < 1.5 {
		t.Fatalf("stress row did not stress: %+v", stress)
	}
	if res.Fairness2 < 0.9 {
		t.Fatalf("2-flow Jain index %.3f; fluid fair-share assumption shaky", res.Fairness2)
	}
	if res.Fairness4 < 0.8 {
		t.Fatalf("4-flow Jain index %.3f; fluid fair-share assumption shaky", res.Fairness4)
	}
}
