package experiment

import "testing"

func TestRunMonitored(t *testing.T) {
	results := RunMonitored(MonitoredParams{Seed: 42, Rounds: 30})
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Rounds != 30 {
			t.Fatalf("%s: rounds = %d", r.Client, r.Rounds)
		}
		// Both strategies must produce meaningful data; monitored must
		// not be catastrophically worse than probing (its whole point is
		// trading freshness for zero probe overhead).
		if r.MonitoredAvg < r.ProbingAvg-60 {
			t.Errorf("%s: monitored %.1f%% far below probing %.1f%%",
				r.Client, r.MonitoredAvg, r.ProbingAvg)
		}
		if r.Disagreements == 0 && r.Client == "Canada" {
			// Variable clients should occasionally diverge; a zero here
			// for every client would suggest the monitor is shadowing
			// the prober rather than acting on its own table.
			t.Logf("%s: strategies never disagreed", r.Client)
		}
	}
}

func TestRunMonitoredRefreshEveryRound(t *testing.T) {
	// Refreshing before every round should keep the monitored client at
	// least competitive on average across clients.
	results := RunMonitored(MonitoredParams{Seed: 42, Rounds: 25, RefreshEvery: 1})
	var probing, monitored float64
	for _, r := range results {
		probing += r.ProbingAvg
		monitored += r.MonitoredAvg
	}
	if monitored < probing-90 {
		t.Errorf("fresh monitored selection much worse: %.1f vs %.1f (summed)",
			monitored, probing)
	}
}
