package experiment

import "testing"

// TestSeedSweepStability asserts the reproduction's headline statistics
// are seed-robust: every seed must land in the qualitative bands, and the
// improvement distributions across seeds must not be wildly different.
func TestSeedSweepStability(t *testing.T) {
	res := SeedSweep(SeedSweepParams{
		Seeds:              []uint64{41, 42, 43},
		TransfersPerClient: 25,
	})
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, pt := range res.Points {
		if pt.AvgImprovement < 15 || pt.AvgImprovement > 120 {
			t.Errorf("seed %d: avg improvement %.1f out of band", pt.Seed, pt.AvgImprovement)
		}
		if pt.Utilization < 0.2 || pt.Utilization > 0.9 {
			t.Errorf("seed %d: utilization %.2f out of band", pt.Seed, pt.Utilization)
		}
		if pt.PenaltyFrac > 0.35 {
			t.Errorf("seed %d: penalties %.2f out of band", pt.Seed, pt.PenaltyFrac)
		}
	}
	// Across-seed spread should be modest relative to the mean.
	if res.AvgStd > res.AvgMean {
		t.Errorf("avg improvement spread %.1f exceeds mean %.1f", res.AvgStd, res.AvgMean)
	}
	// Distributions across seeds differ (different scenarios!) but not
	// unrecognizably: the KS distance stays well below 1.
	if res.MaxKSD > 0.5 {
		t.Errorf("max KS distance %.2f: seeds produce unrecognizably different distributions", res.MaxKSD)
	}
}
