package experiment

import (
	"math"

	"repro/internal/randx"
	"repro/internal/stats"
	"repro/internal/tcpmodel"
	"repro/internal/tcpsim"
)

// The validation sweep makes the model cross-checks visible: for a grid of
// path configurations it compares the fluid TCP model's transfer time
// (what the evaluation simulator uses) against an independent packet-level
// TCP Reno simulation, and measures how fairly competing packet-level
// flows share a bottleneck (the fluid simulator assumes max-min fairness).

// ValidatePoint is one configuration's comparison.
type ValidatePoint struct {
	BottleneckMbps float64
	RTTms          float64
	Bytes          int64

	Note string // non-empty for deliberate stress configurations

	FluidSeconds  float64
	PacketSeconds float64
	// Ratio is PacketSeconds / FluidSeconds: near 1 means the fluid
	// model's timing is trustworthy.
	Ratio float64
}

// ValidateResult aggregates the sweep.
type ValidateResult struct {
	Points []ValidatePoint

	// RatioMin and RatioMax bound the packet/fluid timing ratios.
	RatioMin, RatioMax float64

	// Fairness2 and Fairness4 are Jain indices for 2 and 4 identical
	// packet-level flows competing at one bottleneck (1.0 = perfectly
	// fair, matching the fluid max-min assumption).
	Fairness2, Fairness4 float64
}

// Validate runs the model-validation sweep. It is deterministic.
func Validate() ValidateResult {
	// The grid covers the evaluation's envelope (0.4–8 Mb/s, 50–200 ms)
	// with buffers sized by the router rule of thumb (one BDP). The final
	// row deliberately under-buffers a high-BDP path to expose the known
	// fluid-model limit: buffer-starved TCP sawtooths far below the link
	// rate, which a rate-capped fluid cannot reproduce.
	grid := []struct {
		bps   float64
		rtt   float64
		bytes int64
		queue int
		note  string
	}{
		{1e6, 0.20, 2_000_000, 0, ""},
		{2e6, 0.10, 4_000_000, 0, ""},
		{4e6, 0.15, 8_000_000, 64, ""},
		{8e6, 0.05, 4_000_000, 64, ""},
		{8e6, 0.20, 8_000_000, 160, ""},
		{8e6, 0.20, 8_000_000, 32, "under-buffered"},
	}
	res := ValidateResult{RatioMin: math.Inf(1)}
	for _, g := range grid {
		pkt := tcpsim.Transfer(tcpsim.Config{
			BottleneckBps: g.bps, RTT: g.rtt, QueuePackets: g.queue,
		}, g.bytes, nil)
		p := tcpmodel.Params{RTT: g.rtt}
		fluid := fluidTime(p, math.Min(p.Ceiling(), g.bps), g.bytes)
		pt := ValidatePoint{
			BottleneckMbps: g.bps / 1e6,
			RTTms:          g.rtt * 1000,
			Bytes:          g.bytes,
			Note:           g.note,
			FluidSeconds:   fluid,
			PacketSeconds:  pkt.Duration,
			Ratio:          pkt.Duration / fluid,
		}
		res.Points = append(res.Points, pt)
		if g.note == "" {
			// Ratio bounds summarize the realistic (well-buffered) rows;
			// the deliberate stress row is reported but not bounded.
			res.RatioMin = math.Min(res.RatioMin, pt.Ratio)
			res.RatioMax = math.Max(res.RatioMax, pt.Ratio)
		}
	}

	fair := func(n int) float64 {
		sizes := make([]int64, n)
		for i := range sizes {
			sizes[i] = 8_000_000
		}
		rs := tcpsim.TransferN(tcpsim.Config{BottleneckBps: 10e6, RTT: 0.08},
			sizes, randx.New(1))
		tps := make([]float64, n)
		for i, r := range rs {
			tps[i] = r.Throughput()
		}
		return stats.JainFairness(tps)
	}
	res.Fairness2 = fair(2)
	res.Fairness4 = fair(4)
	return res
}

// fluidTime mirrors tcpmodel.TransferTime with an explicit link ceiling.
func fluidTime(p tcpmodel.Params, ceiling float64, bytes int64) float64 {
	bits := float64(bytes) * 8
	rate := math.Min(p.InitialRate(), ceiling)
	const sub = 4
	interval := p.RTT / sub
	factor := math.Pow(2, 1.0/sub)
	t := 0.0
	for rate < ceiling {
		step := rate * interval
		if bits <= step {
			return t + bits/rate
		}
		bits -= step
		t += interval
		rate *= factor
	}
	return t + bits/ceiling
}
