package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("seed 0 produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestForkIndependentOfParentPosition(t *testing.T) {
	p1 := New(7)
	p2 := New(7)
	p2.Uint64() // advance p2; forks should not care about stream position
	f1 := p1.Fork("link-3")
	f2 := p2.Fork("link-3")
	for i := 0; i < 100; i++ {
		if f1.Uint64() != f2.Uint64() {
			t.Fatalf("fork depends on parent position (step %d)", i)
		}
	}
}

func TestForkDoesNotAdvanceParent(t *testing.T) {
	a, b := New(9), New(9)
	a.Fork("x")
	a.Fork("y")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Fork advanced the parent stream (step %d)", i)
		}
	}
}

func TestForkLabelsDiffer(t *testing.T) {
	p := New(7)
	f1, f2 := p.Fork("a"), p.Fork("b")
	same := 0
	for i := 0; i < 100; i++ {
		if f1.Uint64() == f2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forks 'a' and 'b' collided %d/100 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBoundsProperty(t *testing.T) {
	r := New(5)
	f := func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(6)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	for i, c := range counts {
		frac := float64(c) / draws
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("bucket %d has fraction %v, want ~0.1", i, frac)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(10)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential variate negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(12)
	xs := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 28 {
		t.Fatalf("shuffle lost elements: sum=%d", sum)
	}
}
