package randx

import "math"

// Process is a discrete-time stochastic process: each call to Step advances
// the process by dt seconds and returns the new value. Processes drive
// time-varying link conditions (cross-traffic load, capacity modulation) in
// the network simulator.
type Process interface {
	// Step advances the process by dt and returns the new value.
	Step(r *RNG, dt float64) float64
	// Value returns the current value without advancing.
	Value() float64
}

// OU is a mean-reverting Ornstein–Uhlenbeck process evolved in log space,
// so its value is always positive and fluctuates multiplicatively around
// exp(LogMean). Wide-area available-bandwidth traces are well described by
// such a process: bursts decay back toward a long-run level at a rate set
// by Theta.
//
// Sigma is the STATIONARY standard deviation of log(value) — the
// long-run multiplicative spread — not the instantaneous SDE volatility.
// Sigma = 0.4 means the process spends most of its time within a factor
// of about e^±0.4 of the mean regardless of Theta, which is the natural
// way to calibrate "how variable is this path".
type OU struct {
	LogMean float64 // long-run mean of log(value)
	Theta   float64 // mean-reversion rate (1/seconds)
	Sigma   float64 // stationary standard deviation of log(value)

	x float64 // current log(value)
}

// NewOU returns an OU process whose value reverts to mean with reversion
// rate theta and stationary log-spread sigma, starting at the mean.
func NewOU(mean, theta, sigma float64) *OU {
	if mean <= 0 {
		panic("randx: NewOU requires mean > 0")
	}
	lm := math.Log(mean)
	return &OU{LogMean: lm, Theta: theta, Sigma: sigma, x: lm}
}

// Step advances the process using the exact discretization of the OU SDE,
// scaled so the stationary log-sd equals Sigma.
func (p *OU) Step(r *RNG, dt float64) float64 {
	if dt <= 0 {
		return math.Exp(p.x)
	}
	e := math.Exp(-p.Theta * dt)
	std := p.Sigma * math.Sqrt(1-e*e)
	p.x = p.LogMean + (p.x-p.LogMean)*e + std*r.NormFloat64()
	return math.Exp(p.x)
}

// Value returns the current value of the process.
func (p *OU) Value() float64 { return math.Exp(p.x) }

// SetValue forces the current value, e.g. to start a path in a congested
// state.
func (p *OU) SetValue(v float64) {
	if v <= 0 {
		panic("randx: OU value must be > 0")
	}
	p.x = math.Log(v)
}

// Regime is a two-state Markov regime-switching process: the value is
// Normal[i] while in regime i, and the process flips between regimes with
// exponential holding times. It models the abrupt load shifts ("jumps")
// that the paper observes on direct paths: long quiet periods punctuated
// by sustained congestion episodes.
type Regime struct {
	Level [2]float64 // multiplier in each regime
	Hold  [2]float64 // mean holding time (seconds) in each regime

	state     int
	untilFlip float64
}

// NewRegime builds a regime process starting in state 0. levelQuiet and
// levelBusy are the multipliers in the two regimes; holdQuiet and holdBusy
// are the mean sojourn times.
func NewRegime(levelQuiet, levelBusy, holdQuiet, holdBusy float64) *Regime {
	return &Regime{
		Level: [2]float64{levelQuiet, levelBusy},
		Hold:  [2]float64{holdQuiet, holdBusy},
	}
}

// Step advances the regime clock by dt, flipping states as holding times
// expire, and returns the current level.
func (p *Regime) Step(r *RNG, dt float64) float64 {
	if p.untilFlip == 0 {
		p.untilFlip = r.ExpFloat64() * p.Hold[p.state]
	}
	for dt > 0 {
		if dt < p.untilFlip {
			p.untilFlip -= dt
			break
		}
		dt -= p.untilFlip
		p.state = 1 - p.state
		p.untilFlip = r.ExpFloat64() * p.Hold[p.state]
	}
	return p.Level[p.state]
}

// Value returns the current regime level.
func (p *Regime) Value() float64 { return p.Level[p.state] }

// State returns the current regime index (0 or 1).
func (p *Regime) State() int { return p.state }

// Diurnal is a deterministic sinusoidal modulation with the given Period
// and Amplitude around 1.0: value = 1 + Amplitude*sin(2π t/Period + Phase).
// It models time-of-day load on transit links.
type Diurnal struct {
	Period    float64
	Amplitude float64
	Phase     float64

	t float64
}

// Step advances time by dt and returns the modulation factor.
func (p *Diurnal) Step(_ *RNG, dt float64) float64 {
	p.t += dt
	return p.Value()
}

// Value returns the current modulation factor.
func (p *Diurnal) Value() float64 {
	return 1 + p.Amplitude*math.Sin(2*math.Pi*p.t/p.Period+p.Phase)
}

// Product composes processes multiplicatively; its value is the product of
// the component values. Typical composition: OU base load × regime jumps ×
// diurnal modulation.
type Product struct {
	Parts []Process
}

// Step advances every component by dt and returns the product of the new
// values.
func (p *Product) Step(r *RNG, dt float64) float64 {
	v := 1.0
	for _, part := range p.Parts {
		v *= part.Step(r, dt)
	}
	return v
}

// Value returns the product of the component values.
func (p *Product) Value() float64 {
	v := 1.0
	for _, part := range p.Parts {
		v *= part.Value()
	}
	return v
}
