// Package randx provides deterministic pseudo-random number generation,
// probability distributions, and stochastic processes for the indirect
// routing simulator.
//
// Everything in this package is reproducible: the same seed always yields
// the same stream. Independent substreams are derived with Fork, which
// hashes a label into the parent state so that adding a new consumer never
// perturbs existing ones. The generator is xoshiro256** seeded through
// splitmix64, which is small, fast, and has no shared global state, making
// it safe to embed one RNG per worker in parallel sweeps.
package randx

import "math"

// RNG is a deterministic pseudo-random number generator (xoshiro256**).
// The zero value is not usable; construct with New or Fork.
type RNG struct {
	s        [4]uint64
	id       uint64 // seed-derived identity, stable as the stream advances
	spare    float64
	hasSpare bool
}

// New returns an RNG seeded from seed via splitmix64 so that nearby seeds
// produce uncorrelated streams.
func New(seed uint64) *RNG {
	r := new(RNG)
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitmix64(sm)
	}
	_, r.id = splitmix64(sm)
	// xoshiro must not start at the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Fork derives an independent substream labeled by name. Substreams with
// different labels are statistically independent of each other and of the
// parent, and forking does not advance the parent stream, so the set of
// consumers can grow without changing existing results.
func (r *RNG) Fork(label string) *RNG {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	// Mix the parent's seed-derived identity (not its evolving position)
	// with the label hash.
	return New(r.id ^ rotl(h, 17) ^ (h * 0x2545f4914f6cdd1d))
}

func splitmix64(x uint64) (next, out uint64) {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return x, z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("randx: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function (Fisher–Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal variate (polar Box–Muller).
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			f := math.Sqrt(-2 * math.Log(s) / s)
			r.spare, r.hasSpare = v*f, true
			return u * f
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}
