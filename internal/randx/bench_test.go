package randx

import "testing"

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Float64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.NormFloat64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Intn(35)
	}
}

func BenchmarkPerm35(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Perm(35)
	}
}

func BenchmarkFork(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Fork("label")
	}
}

func BenchmarkOUStep(b *testing.B) {
	r := New(1)
	p := NewOU(1e6, 1.0/60, 0.4)
	for i := 0; i < b.N; i++ {
		p.Step(r, 15)
	}
}

func BenchmarkRegimeStep(b *testing.B) {
	r := New(1)
	p := NewRegime(1, 0.4, 600, 120)
	for i := 0; i < b.N; i++ {
		p.Step(r, 15)
	}
}
