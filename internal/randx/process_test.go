package randx

import (
	"math"
	"testing"
)

func TestOUStartsAtMean(t *testing.T) {
	p := NewOU(2.5, 0.1, 0.3)
	if math.Abs(p.Value()-2.5) > 1e-12 {
		t.Fatalf("OU initial value %v, want 2.5", p.Value())
	}
}

func TestOUStaysPositive(t *testing.T) {
	p := NewOU(1.0, 0.05, 1.0)
	r := New(1)
	for i := 0; i < 10000; i++ {
		if v := p.Step(r, 1.0); v <= 0 {
			t.Fatalf("OU went non-positive at step %d: %v", i, v)
		}
	}
}

func TestOUMeanReversion(t *testing.T) {
	// Start far from the mean with zero noise: must decay toward the mean.
	p := NewOU(1.0, 0.5, 0)
	p.SetValue(10)
	r := New(2)
	prev := p.Value()
	for i := 0; i < 20; i++ {
		v := p.Step(r, 1.0)
		if v >= prev {
			t.Fatalf("noiseless OU failed to decay at step %d: %v >= %v", i, v, prev)
		}
		prev = v
	}
	if math.Abs(prev-1.0) > 0.01 {
		t.Fatalf("OU did not converge to mean: %v", prev)
	}
}

func TestOULongRunGeometricMean(t *testing.T) {
	p := NewOU(2.0, 0.2, 0.4)
	r := New(3)
	sumLog := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		sumLog += math.Log(p.Step(r, 1.0))
	}
	gm := math.Exp(sumLog / n)
	if math.Abs(gm-2.0) > 0.1 {
		t.Fatalf("OU long-run geometric mean %v, want ~2.0", gm)
	}
}

func TestOUZeroDtNoChange(t *testing.T) {
	p := NewOU(1.0, 0.1, 0.5)
	r := New(4)
	p.Step(r, 5)
	before := p.Value()
	if v := p.Step(r, 0); v != before {
		t.Fatalf("dt=0 changed value: %v -> %v", before, v)
	}
}

func TestOUPanicsOnBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mean <= 0")
		}
	}()
	NewOU(0, 0.1, 0.1)
}

func TestRegimeLevels(t *testing.T) {
	p := NewRegime(1.0, 0.2, 100, 20)
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := p.Step(r, 1.0)
		if v != 1.0 && v != 0.2 {
			t.Fatalf("regime produced level %v, want 1.0 or 0.2", v)
		}
	}
}

func TestRegimeOccupancy(t *testing.T) {
	// Mean holds 100s quiet / 25s busy: long-run busy fraction ~ 25/125 = 0.2.
	p := NewRegime(0, 1, 100, 25)
	r := New(6)
	busy := 0.0
	const n = 400000
	for i := 0; i < n; i++ {
		busy += p.Step(r, 1.0)
	}
	frac := busy / n
	if math.Abs(frac-0.2) > 0.02 {
		t.Fatalf("busy occupancy %v, want ~0.2", frac)
	}
}

func TestRegimeSwitches(t *testing.T) {
	p := NewRegime(1, 2, 10, 10)
	r := New(7)
	switches := 0
	prev := p.State()
	for i := 0; i < 1000; i++ {
		p.Step(r, 5)
		if p.State() != prev {
			switches++
			prev = p.State()
		}
	}
	if switches < 100 {
		t.Fatalf("regime switched only %d times in 5000s with 10s holds", switches)
	}
}

func TestDiurnalPeriodicity(t *testing.T) {
	p := &Diurnal{Period: 86400, Amplitude: 0.3}
	r := New(8)
	v0 := p.Value()
	for i := 0; i < 24; i++ {
		p.Step(r, 3600)
	}
	if math.Abs(p.Value()-v0) > 1e-9 {
		t.Fatalf("diurnal not periodic: %v vs %v", p.Value(), v0)
	}
}

func TestDiurnalBounds(t *testing.T) {
	p := &Diurnal{Period: 100, Amplitude: 0.4}
	r := New(9)
	for i := 0; i < 1000; i++ {
		v := p.Step(r, 1)
		if v < 0.6-1e-9 || v > 1.4+1e-9 {
			t.Fatalf("diurnal out of [0.6,1.4]: %v", v)
		}
	}
}

func TestProductComposes(t *testing.T) {
	a := NewRegime(2, 2, 10, 10) // constant 2
	b := &Diurnal{Period: 100, Amplitude: 0}
	p := &Product{Parts: []Process{a, b}}
	r := New(10)
	if v := p.Step(r, 1); math.Abs(v-2) > 1e-12 {
		t.Fatalf("product value %v, want 2", v)
	}
	if v := p.Value(); math.Abs(v-2) > 1e-12 {
		t.Fatalf("product Value %v, want 2", v)
	}
}
