package randx

import "math"

// Dist is a one-dimensional probability distribution that can be sampled
// with an explicit RNG, keeping all randomness caller-controlled.
type Dist interface {
	// Sample draws one variate.
	Sample(r *RNG) float64
	// Mean returns the distribution's analytic mean.
	Mean() float64
}

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample draws a uniform variate.
func (u Uniform) Sample(r *RNG) float64 { return u.Lo + (u.Hi-u.Lo)*r.Float64() }

// Mean returns (Lo+Hi)/2.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Normal is the Gaussian distribution with mean Mu and standard deviation
// Sigma.
type Normal struct {
	Mu, Sigma float64
}

// Sample draws a normal variate.
func (n Normal) Sample(r *RNG) float64 { return n.Mu + n.Sigma*r.NormFloat64() }

// Mean returns Mu.
func (n Normal) Mean() float64 { return n.Mu }

// LogNormal is the log-normal distribution: exp(N(Mu, Sigma²)).
// Throughput samples in the simulator are log-normal, matching the heavy
// right tail of wide-area TCP throughput measurements.
type LogNormal struct {
	Mu, Sigma float64
}

// Sample draws a log-normal variate.
func (l LogNormal) Sample(r *RNG) float64 { return math.Exp(l.Mu + l.Sigma*r.NormFloat64()) }

// Mean returns exp(Mu + Sigma²/2).
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// LogNormalFromMean builds a LogNormal with the given linear-space mean and
// the given sigma of the underlying normal. This is the natural way to say
// "average 1.2 Mb/s with multiplicative spread sigma".
func LogNormalFromMean(mean, sigma float64) LogNormal {
	if mean <= 0 {
		panic("randx: LogNormalFromMean requires mean > 0")
	}
	return LogNormal{Mu: math.Log(mean) - sigma*sigma/2, Sigma: sigma}
}

// Exponential is the exponential distribution with the given Rate (λ).
type Exponential struct {
	Rate float64
}

// Sample draws an exponential variate.
func (e Exponential) Sample(r *RNG) float64 { return r.ExpFloat64() / e.Rate }

// Mean returns 1/Rate.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Pareto is the Pareto (type I) distribution with scale Xm and shape Alpha.
// Used for heavy-tailed cross-traffic burst sizes.
type Pareto struct {
	Xm, Alpha float64
}

// Sample draws a Pareto variate.
func (p Pareto) Sample(r *RNG) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return p.Xm / math.Pow(u, 1/p.Alpha)
		}
	}
}

// Mean returns Alpha*Xm/(Alpha-1) for Alpha > 1, and +Inf otherwise.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// Constant is a degenerate distribution that always returns Value. It lets
// deterministic parameters flow through APIs that accept a Dist.
type Constant struct {
	Value float64
}

// Sample returns Value.
func (c Constant) Sample(*RNG) float64 { return c.Value }

// Mean returns Value.
func (c Constant) Mean() float64 { return c.Value }

// Clamped wraps a distribution and clamps its samples to [Lo, Hi].
type Clamped struct {
	D      Dist
	Lo, Hi float64
}

// Sample draws from D and clamps the result.
func (c Clamped) Sample(r *RNG) float64 {
	v := c.D.Sample(r)
	if v < c.Lo {
		return c.Lo
	}
	if v > c.Hi {
		return c.Hi
	}
	return v
}

// Mean returns the wrapped distribution's mean clamped to [Lo, Hi]; this is
// an approximation of the true clamped mean, adequate for reporting.
func (c Clamped) Mean() float64 {
	m := c.D.Mean()
	if m < c.Lo {
		return c.Lo
	}
	if m > c.Hi {
		return c.Hi
	}
	return m
}
