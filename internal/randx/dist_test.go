package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func sampleMean(d Dist, r *RNG, n int) float64 {
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	return sum / float64(n)
}

func TestUniformMean(t *testing.T) {
	d := Uniform{Lo: 2, Hi: 6}
	got := sampleMean(d, New(1), 100000)
	if math.Abs(got-d.Mean()) > 0.05 {
		t.Fatalf("uniform sample mean %v, want ~%v", got, d.Mean())
	}
}

func TestUniformRange(t *testing.T) {
	d := Uniform{Lo: -1, Hi: 1}
	r := New(2)
	for i := 0; i < 10000; i++ {
		v := d.Sample(r)
		if v < -1 || v >= 1 {
			t.Fatalf("uniform out of range: %v", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	d := Normal{Mu: 5, Sigma: 2}
	r := New(3)
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("normal mean %v, want ~5", mean)
	}
	if math.Abs(sd-2) > 0.05 {
		t.Errorf("normal sd %v, want ~2", sd)
	}
}

func TestLogNormalPositive(t *testing.T) {
	d := LogNormal{Mu: 0, Sigma: 1.5}
	r := New(4)
	for i := 0; i < 10000; i++ {
		if v := d.Sample(r); v <= 0 {
			t.Fatalf("lognormal variate non-positive: %v", v)
		}
	}
}

func TestLogNormalFromMeanHitsMean(t *testing.T) {
	for _, sigma := range []float64{0.2, 0.5, 1.0} {
		d := LogNormalFromMean(3.0, sigma)
		if math.Abs(d.Mean()-3.0) > 1e-12 {
			t.Fatalf("analytic mean %v, want 3.0 (sigma=%v)", d.Mean(), sigma)
		}
		got := sampleMean(d, New(5), 400000)
		if math.Abs(got-3.0) > 0.1 {
			t.Fatalf("sample mean %v, want ~3.0 (sigma=%v)", got, sigma)
		}
	}
}

func TestLogNormalFromMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LogNormalFromMean(0, 1)
}

func TestExponentialMean(t *testing.T) {
	d := Exponential{Rate: 0.25}
	got := sampleMean(d, New(6), 200000)
	if math.Abs(got-4) > 0.1 {
		t.Fatalf("exponential mean %v, want ~4", got)
	}
}

func TestParetoTailAndMean(t *testing.T) {
	d := Pareto{Xm: 1, Alpha: 3}
	r := New(7)
	for i := 0; i < 10000; i++ {
		if v := d.Sample(r); v < 1 {
			t.Fatalf("pareto below scale: %v", v)
		}
	}
	want := d.Mean() // 1.5
	got := sampleMean(d, New(8), 400000)
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("pareto mean %v, want ~%v", got, want)
	}
}

func TestParetoInfiniteMean(t *testing.T) {
	d := Pareto{Xm: 1, Alpha: 1}
	if !math.IsInf(d.Mean(), 1) {
		t.Fatalf("alpha=1 mean should be +Inf, got %v", d.Mean())
	}
}

func TestConstant(t *testing.T) {
	d := Constant{Value: 7.5}
	if d.Sample(New(1)) != 7.5 || d.Mean() != 7.5 {
		t.Fatal("Constant should always return its value")
	}
}

func TestClampedProperty(t *testing.T) {
	r := New(9)
	c := Clamped{D: Normal{Mu: 0, Sigma: 10}, Lo: -1, Hi: 2}
	f := func(uint8) bool {
		v := c.Sample(r)
		return v >= -1 && v <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestClampedMean(t *testing.T) {
	if m := (Clamped{D: Constant{Value: 10}, Lo: 0, Hi: 5}).Mean(); m != 5 {
		t.Fatalf("clamped mean above range = %v, want 5", m)
	}
	if m := (Clamped{D: Constant{Value: -3}, Lo: 0, Hi: 5}).Mean(); m != 0 {
		t.Fatalf("clamped mean below range = %v, want 0", m)
	}
	if m := (Clamped{D: Constant{Value: 3}, Lo: 0, Hi: 5}).Mean(); m != 3 {
		t.Fatalf("clamped mean inside range = %v, want 3", m)
	}
}
