package relay

import (
	"bytes"
	"io"
)

// streamChunk is the generation/verification granularity of the streaming
// helpers: large enough to amortize the per-chunk call, small enough that
// scratch buffers stay cache-friendly.
const streamChunk = 32 << 10

// WriteRange streams the canonical content of object name at
// [off, off+n) into w through buf, returning the bytes written (including
// the partial count when w errors mid-stream). A scratch buffer is
// allocated when buf is empty, so callers on a hot path should pass their
// own. Generation, not allocation, scales with n: this is how both the
// origin server and tests produce arbitrarily large ranges in constant
// memory.
func WriteRange(w io.Writer, name string, off, n int64, buf []byte) (int64, error) {
	if len(buf) == 0 {
		buf = make([]byte, streamChunk)
	}
	var written int64
	for written < n {
		chunk := int64(len(buf))
		if rest := n - written; rest < chunk {
			chunk = rest
		}
		FillRange(name, off+written, buf[:chunk])
		m, err := w.Write(buf[:chunk])
		written += int64(m)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Verifier checks a byte stream against the canonical synthetic content
// of an object, incrementally: each Verify call checks the next slice of
// the stream and advances the position, so a transfer can be validated
// chunk by chunk as bytes arrive instead of materializing the whole body
// for one VerifyRange call. The scratch buffer is reused across calls, so
// a Verifier performs no per-chunk allocation. Not safe for concurrent
// use; one Verifier per transfer.
type Verifier struct {
	name string
	off  int64
	want []byte
}

// NewVerifier returns a verifier positioned at offset off of object name.
func NewVerifier(name string, off int64) *Verifier {
	return &Verifier{name: name, off: off}
}

// Offset returns the object position the next Verify call checks against
// — after a mismatch, the start of the chunk that failed.
func (v *Verifier) Offset() int64 { return v.off }

// Verify checks p against the canonical content at the current position
// and advances past it. It reports false on the first corrupt chunk,
// leaving Offset at that chunk's start.
func (v *Verifier) Verify(p []byte) bool {
	if v.want == nil {
		v.want = make([]byte, streamChunk)
	}
	for len(p) > 0 {
		n := len(p)
		if n > streamChunk {
			n = streamChunk
		}
		want := v.want[:n]
		FillRange(v.name, v.off, want)
		if !bytes.Equal(p[:n], want) {
			return false
		}
		v.off += int64(n)
		p = p[n:]
	}
	return true
}
