package relay

import (
	"bufio"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/httpx"
)

// startCachedRelay starts a relay built through the options API with a
// cache of the given capacity (plus any extra options).
func startCachedRelay(t *testing.T, cacheBytes int64, extra ...Option) (*Relay, string) {
	t.Helper()
	r := New(append([]Option{WithCache(cacheBytes)}, extra...)...)
	l, err := r.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return r, l.Addr().String()
}

// fetchWhole downloads a full object (no Range header) through the
// relay, returning the body and the response's x-cache header.
func fetchWhole(relayAddr, originAddr, name string) ([]byte, string, error) {
	conn, err := net.Dial("tcp", relayAddr)
	if err != nil {
		return nil, "", err
	}
	defer conn.Close()
	req := httpx.NewGet("http://"+originAddr+"/"+name, originAddr)
	if err := req.Write(conn); err != nil {
		return nil, "", err
	}
	resp, err := httpx.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		return nil, "", err
	}
	body, err := io.ReadAll(resp.Body)
	return body, resp.Header["x-cache"], err
}

func TestCachedRelayServesRepeatsWithoutOrigin(t *testing.T) {
	o, originAddr := startOrigin(t)
	r, relayAddr := startCachedRelay(t, 1<<20)

	body, err := FetchVia(nil, relayAddr, originAddr, "big.bin", 0, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyRange("big.bin", 0, body) {
		t.Fatal("first (miss) fetch returned wrong bytes")
	}
	conns := o.Conns.Load()
	egress := o.BytesServed.Load()

	// The identical range, then sub-ranges of the cached span: all must
	// be served from memory without a single new origin connection.
	for _, rg := range []struct{ off, n int64 }{{0, 64 << 10}, {1000, 1000}, {63 << 10, 1 << 10}} {
		body, err := FetchVia(nil, relayAddr, originAddr, "big.bin", rg.off, rg.n)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(body)) != rg.n || !VerifyRange("big.bin", rg.off, body) {
			t.Fatalf("cached range [%d,+%d) served wrong bytes", rg.off, rg.n)
		}
	}
	if got := o.Conns.Load(); got != conns {
		t.Fatalf("cached fetches opened %d new origin conns", got-conns)
	}
	if got := o.BytesServed.Load(); got != egress {
		t.Fatalf("cached fetches cost %d origin bytes", got-egress)
	}
	s := r.Cache().Stats()
	if s.Hits != 3 || s.Misses != 1 || s.Fills != 1 {
		t.Fatalf("cache counters: %+v", s)
	}
}

func TestCachedRelayWholeObjectLearnsSize(t *testing.T) {
	o, originAddr := startOrigin(t)
	o.Put("small.bin", 8192)
	r, relayAddr := startCachedRelay(t, 1<<20)

	body, how, err := fetchWhole(relayAddr, originAddr, "small.bin")
	if err != nil {
		t.Fatal(err)
	}
	if how != "miss" || len(body) != 8192 || !VerifyRange("small.bin", 0, body) {
		t.Fatalf("first whole-object fetch: x-cache=%q, %d bytes", how, len(body))
	}
	conns := o.Conns.Load()

	// The 200's Content-Length recorded the extent, so the repeat — still
	// rangeless — resolves to the full cached span.
	body, how, err = fetchWhole(relayAddr, originAddr, "small.bin")
	if err != nil {
		t.Fatal(err)
	}
	if how != "hit" || !VerifyRange("small.bin", 0, body) {
		t.Fatalf("repeat whole-object fetch: x-cache=%q", how)
	}
	// And so does an explicit range over the same bytes.
	rbody, err := FetchVia(nil, relayAddr, originAddr, "small.bin", 100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyRange("small.bin", 100, rbody) {
		t.Fatal("ranged read of whole-object fill served wrong bytes")
	}
	if got := o.Conns.Load(); got != conns {
		t.Fatalf("%d extra origin conns after whole-object fill", got-conns)
	}
	if size, ok := r.Cache().Size(cacheKey(originAddr, "/small.bin")); !ok || size != 8192 {
		t.Fatalf("recorded size = %d, %v", size, ok)
	}
}

// TestSingleflightCollapsesRelayMisses is the acceptance-criteria proof:
// K concurrent misses for the same range issue exactly one origin fetch
// that every waiter is served from.
func TestSingleflightCollapsesRelayMisses(t *testing.T) {
	o, originAddr := startOrigin(t)
	gate := make(chan struct{})
	r, relayAddr := startCachedRelay(t, 1<<20, WithDialer(
		func(network, addr string) (net.Conn, error) {
			<-gate // hold the leader's upstream dial until every waiter is parked
			return net.Dial(network, addr)
		}))

	const clients = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, err := FetchVia(nil, relayAddr, originAddr, "big.bin", 4096, 32<<10)
			if err == nil && !VerifyRange("big.bin", 4096, body) {
				err = errWrongBytes
			}
			errs <- err
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for r.Cache().Stats().FlightWaiters != clients-1 {
		if time.Now().After(deadline) {
			t.Fatalf("waiters never converged: %+v", r.Cache().Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	if got := o.Conns.Load(); got != 1 {
		t.Fatalf("%d origin fetches for %d concurrent misses, want exactly 1", got, clients)
	}
	s := r.Cache().Stats()
	if s.SharedFills != clients-1 || s.ActiveFlights != 0 {
		t.Fatalf("flight counters: %+v", s)
	}
}

func TestCorruptedCachedRangeRefetchedOnServe(t *testing.T) {
	o, originAddr := startOrigin(t)
	r, relayAddr := startCachedRelay(t, 1<<20, WithVerifier(VerifyRange))

	if _, err := FetchVia(nil, relayAddr, originAddr, "big.bin", 0, 32<<10); err != nil {
		t.Fatal(err)
	}
	conns := o.Conns.Load()

	// Flip the cached bytes under the relay (all zeroes never match the
	// synthetic content). Serving must catch it, drop the span, and
	// refetch from the origin rather than hand out the corruption.
	r.Cache().Put(cacheKey(originAddr, "/big.bin"), 0, make([]byte, 32<<10))
	body, err := FetchVia(nil, relayAddr, originAddr, "big.bin", 0, 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyRange("big.bin", 0, body) {
		t.Fatal("relay served corrupted cached bytes")
	}
	if got := o.Conns.Load(); got != conns+1 {
		t.Fatalf("refetch opened %d origin conns, want 1", got-conns)
	}
	s := r.Cache().Stats()
	if s.VerifyFailures != 1 {
		t.Fatalf("verify counters: %+v", s)
	}
	// The refetch replaced the span with good bytes: warm again.
	if _, err := FetchVia(nil, relayAddr, originAddr, "big.bin", 0, 32<<10); err != nil {
		t.Fatal(err)
	}
	if got := o.Conns.Load(); got != conns+1 {
		t.Fatal("post-refetch fetch went to the origin again")
	}
}

func TestCachelessRelayUnchangedByOptionsAPI(t *testing.T) {
	o, originAddr := startOrigin(t)
	r := New() // no options: equivalent to &Relay{}
	l, err := r.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if r.Cache() != nil {
		t.Fatal("cache attached without WithCache")
	}
	for i := 0; i < 2; i++ {
		body, err := FetchVia(nil, l.Addr().String(), originAddr, "big.bin", 0, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if !VerifyRange("big.bin", 0, body) {
			t.Fatal("wrong bytes")
		}
	}
	if got := o.Conns.Load(); got != 2 {
		t.Fatalf("cacheless relay reached the origin %d times, want every request", got)
	}
}

var errWrongBytes = errVerify{}

type errVerify struct{}

func (errVerify) Error() string { return "relay: fetched bytes failed verification" }
