package relay

import "testing"

// benchRelayPair starts an origin and a cached relay on loopback.
func benchRelayPair(b *testing.B, cacheBytes int64) (originAddr, relayAddr string) {
	b.Helper()
	o := NewOrigin()
	o.Put("bench.bin", 1<<30)
	ol, err := o.ServeAddr("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ol.Close() })
	r := New(WithCache(cacheBytes))
	rl, err := r.ServeAddr("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { rl.Close() })
	return ol.Addr().String(), rl.Addr().String()
}

// BenchmarkCacheHitRelayedFetch64K is the warm path end to end: a full
// client fetch through the relay, served from a cached span without
// touching the origin. The delta against the miss benchmark is the
// origin round trip the cache saves.
func BenchmarkCacheHitRelayedFetch64K(b *testing.B) {
	originAddr, relayAddr := benchRelayPair(b, 16<<20)
	if _, err := FetchVia(nil, relayAddr, originAddr, "bench.bin", 0, 64<<10); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(64 << 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FetchVia(nil, relayAddr, originAddr, "bench.bin", 0, 64<<10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheMissRelayedFetch64K is the cold path: every fetch names
// a range outside the (deliberately small) cache, so each one fills
// through from the origin — the relayed fetch plus the tee overhead.
func BenchmarkCacheMissRelayedFetch64K(b *testing.B) {
	originAddr, relayAddr := benchRelayPair(b, 1<<20)
	b.SetBytes(64 << 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A rotating 64 MB window of offsets: far more ranges than the
		// 1 MB cache retains, so the working set never warms.
		off := int64(i%1024) * (64 << 10)
		if _, err := FetchVia(nil, relayAddr, originAddr, "bench.bin", off, 64<<10); err != nil {
			b.Fatal(err)
		}
	}
}
