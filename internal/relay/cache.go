package relay

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"

	"repro/internal/httpx"
	"repro/internal/objcache"
	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// This file is the relay's cached forwarding path. With a cache
// attached (relay.New + WithCache), GET requests are tried against the
// cached spans first; misses open a singleflight fill that streams the
// origin's response to the client while teeing the bytes into the
// cache, and every concurrent miss for the same object/range waits on
// that one fill instead of hitting the origin again. Requests the cache
// cannot express (non-explicit range forms, ranges larger than the
// whole cache, HEAD) fall back to the plain forwarding path untouched.

// errUncacheable marks a fill whose body could not be retained (no
// declared length, or larger than the cache); waiters fall back to
// their own upstream fetch.
var errUncacheable = errors.New("relay: response not cacheable")

// cacheRange maps a request's Range header to the cache's coordinates.
// want == objcache.SizeUnknown means "the whole object, extent not yet
// known". ok=false means the form is not cacheable (suffix/open-ended
// ranges) and the request must take the plain path.
func (r *Relay) cacheRange(key, rg string) (off, want int64, whole, ok bool) {
	if rg == "" {
		if size, known := r.cache.Size(key); known {
			return 0, size, true, true
		}
		return 0, objcache.SizeUnknown, true, true
	}
	spec, cut := strings.CutPrefix(rg, "bytes=")
	if !cut || strings.ContainsAny(spec, ", ") {
		return 0, 0, false, false
	}
	dash := strings.IndexByte(spec, '-')
	if dash <= 0 || dash == len(spec)-1 {
		return 0, 0, false, false // suffix or open-ended: let the origin decide
	}
	a, errA := strconv.ParseInt(spec[:dash], 10, 64)
	b, errB := strconv.ParseInt(spec[dash+1:], 10, 64)
	if errA != nil || errB != nil || a < 0 || b < a {
		return 0, 0, false, false
	}
	off, want = a, b-a+1
	if size, known := r.cache.Size(key); known {
		if off >= size {
			return 0, 0, false, false // unsatisfiable: the origin's 416 is authoritative
		}
		if off+want > size {
			want = size - off // origin clamps; look up what it would serve
		}
	}
	return off, want, false, true
}

// serveCached is the cache-first request path. handled=false means the
// cache could not take the request (unsupported range form, oversized
// range, or a failed shared fill) and the caller must forward plainly.
// healthAddr is empty for hits and shared fills: they never touched
// the upstream path, so they say nothing about its health.
func (r *Relay) serveCached(conn net.Conn, req *httpx.Request, fspan *obs.ActiveSpan, ft *flight.Transfer, upstreamAddr, path string) (handled, again bool, class obs.ErrClass, detail, healthAddr string, n int64) {
	key := cacheKey(upstreamAddr, path)
	off, want, whole, ok := r.cacheRange(key, req.Header["range"])
	if !ok {
		return false, false, obs.ClassOK, "", "", 0
	}
	if want != objcache.SizeUnknown {
		if want > r.cache.Capacity() {
			return false, false, obs.ClassOK, "", "", 0
		}
		if data, hit := r.cache.Get(key, off, want); hit {
			again, class, detail, n = r.writeCached(conn, ft, key, data, off, whole, "hit")
			return true, again, class, detail, "", n
		}
	}
	fl, leader := r.cache.StartFlight(key, off, want)
	if !leader {
		ft.Phase("shared-wait")
		data, err := fl.Wait(context.Background())
		if err != nil {
			// The leader's fetch failed or was uncacheable; fetch for
			// ourselves over the plain path.
			return false, false, obs.ClassOK, "", "", 0
		}
		if whole && want == objcache.SizeUnknown {
			want = int64(len(data))
		}
		if int64(len(data)) > want {
			data = data[:want]
		}
		again, class, detail, n = r.writeCached(conn, ft, key, data, off, whole, "shared")
		return true, again, class, detail, "", n
	}
	return r.fillForward(conn, req, fspan, ft, upstreamAddr, path, key, fl, off, want, whole)
}

// writeCached serves data (the bytes of [off, off+len)) straight from
// memory, with the response shape the origin would have used: 200 for
// whole-object requests, 206 with Content-Range for ranged ones. The
// x-cache header says how the bytes were obtained.
func (r *Relay) writeCached(conn net.Conn, ft *flight.Transfer, key string, data []byte, off int64, whole bool, how string) (again bool, class obs.ErrClass, detail string, n int64) {
	ft.SetCache(how)
	ft.Phase("write")
	header := map[string]string{
		"content-length": strconv.Itoa(len(data)),
		"accept-ranges":  "bytes",
		"x-cache":        how,
	}
	status, reason := 200, "OK"
	if !whole {
		status, reason = 206, "Partial Content"
		total := "*"
		if size, known := r.cache.Size(key); known {
			total = strconv.FormatInt(size, 10)
		}
		header["content-range"] = fmt.Sprintf("bytes %d-%d/%s", off, off+int64(len(data))-1, total)
	}
	if err := httpx.WriteResponseHead(conn, status, reason, header); err != nil {
		return false, obs.ClassCanceled, "client: " + err.Error(), 0
	}
	m, err := conn.Write(data)
	n = int64(m)
	ft.StoreBytes(n)
	r.BytesRelayed.Add(n)
	if err != nil {
		return false, obs.ClassCanceled, "client: " + err.Error(), n
	}
	return true, obs.ClassOK, "", n
}

// parseContentRange extracts (first-byte offset, total size) from a
// "bytes a-b/size" header; (-1, -1) when absent or malformed, and
// size -1 for an unknown "/*" total.
func parseContentRange(h string) (off, size int64) {
	rest, ok := strings.CutPrefix(h, "bytes ")
	if !ok {
		return -1, -1
	}
	dash := strings.IndexByte(rest, '-')
	slash := strings.IndexByte(rest, '/')
	if dash <= 0 || slash < dash {
		return -1, -1
	}
	off, errA := strconv.ParseInt(rest[:dash], 10, 64)
	if errA != nil || off < 0 {
		return -1, -1
	}
	if rest[slash+1:] == "*" {
		return off, -1
	}
	size, errS := strconv.ParseInt(rest[slash+1:], 10, 64)
	if errS != nil || size < 0 {
		return off, -1
	}
	return off, size
}

// fillForward is the cache-miss leader: it performs the upstream fetch
// (mirroring the plain forwarding path), streams the response to the
// client, and tees the body into the flight so the cache warms and
// every waiter is served from this one origin fetch. If the client
// hangs up mid-stream the fill keeps draining the upstream — the
// waiters and the cache still get their bytes.
func (r *Relay) fillForward(conn net.Conn, req *httpx.Request, fspan *obs.ActiveSpan, ft *flight.Transfer, upstreamAddr, path, key string, fl *objcache.Flight, off, want int64, whole bool) (handled, again bool, class obs.ErrClass, detail, healthAddr string, n int64) {
	handled = true
	healthAddr = upstreamAddr
	ft.SetCache("miss")

	dial := r.Dial
	if dial == nil {
		dial = net.Dial
	}
	dspan := r.childSpan(fspan, "dial")
	dspan.SetAttr("addr", upstreamAddr)
	ft.Phase("dial")
	upstream, err := dial("tcp", upstreamAddr)
	if err != nil {
		dspan.End(obs.ClassFailed, err.Error())
		fl.Complete(nil, err)
		httpx.WriteResponseHead(conn, 502, "Bad Gateway",
			map[string]string{"content-length": "0"})
		return handled, true, obs.ClassFailed, err.Error(), healthAddr, 0
	}
	dspan.EndOK()
	defer upstream.Close()

	fwd := httpx.NewGet(path, upstreamAddr)
	for k, v := range req.Header {
		if strings.HasPrefix(k, "x-") {
			fwd.Header[k] = v
		}
	}
	if !whole {
		fwd.SetRange(off, want)
	}
	if fspan != nil {
		fwd.Header[obs.TraceHeader] = fspan.Context().Header()
	}
	tspan := r.childSpan(fspan, "ttfb")
	ft.Phase("ttfb")
	if err := fwd.Write(upstream); err != nil {
		tspan.End(obs.ClassFailed, err.Error())
		fl.Complete(nil, err)
		httpx.WriteResponseHead(conn, 502, "Bad Gateway",
			map[string]string{"content-length": "0"})
		return handled, true, obs.ClassFailed, err.Error(), healthAddr, 0
	}
	if r.UpstreamStall > 0 {
		upstream.SetReadDeadline(time.Now().Add(r.UpstreamStall))
	}
	resp, err := httpx.ReadResponse(bufio.NewReader(upstream))
	if err != nil {
		tspan.End(obs.ClassFailed, err.Error())
		fl.Complete(nil, err)
		httpx.WriteResponseHead(conn, 502, "Bad Gateway",
			map[string]string{"content-length": "0"})
		return handled, true, obs.ClassFailed, err.Error(), healthAddr, 0
	}
	tspan.EndOK()
	if fspan != nil {
		fspan.SetAttr("status", strconv.Itoa(resp.Status))
	}

	if resp.Status != 200 && resp.Status != 206 {
		// Error responses are forwarded, never cached; waiters refetch.
		fl.Complete(nil, &statusError{resp.Status, resp.Reason})
		if resp.ContentLength < 0 {
			resp.Header["connection"] = "close"
		}
		if werr := httpx.WriteResponseHead(conn, resp.Status, resp.Reason, resp.Header); werr != nil {
			return handled, false, obs.ClassCanceled, "client: " + werr.Error(), healthAddr, 0
		}
		var werr, rerr error
		n, werr, rerr = copyStream(conn, resp.Body, ft)
		r.BytesRelayed.Add(n)
		switch {
		case werr != nil:
			return handled, false, obs.ClassCanceled, "client: " + werr.Error(), healthAddr, n
		case rerr != nil:
			return handled, false, obs.ClassFailed, rerr.Error(), healthAddr, n
		}
		return handled, resp.ContentLength >= 0, obs.ClassStatus, resp.Reason, healthAddr, n
	}

	// Learn the object's geometry from the response: a 206's
	// Content-Range carries the actual offset and the full size, a 200's
	// Content-Length is the full size.
	actualOff := int64(0)
	if resp.Status == 206 {
		croff, total := parseContentRange(resp.Header["content-range"])
		if croff >= 0 {
			actualOff = croff
		} else {
			actualOff = off
		}
		if total >= 0 {
			r.cache.SetSize(key, total)
		}
	} else if resp.ContentLength >= 0 {
		r.cache.SetSize(key, resp.ContentLength)
	}

	// A body without a declared length, one bigger than the whole cache,
	// or a 206 whose actual offset differs from the one the flight was
	// opened at streams through without teeing; the flight reports
	// uncacheable and waiters fetch for themselves.
	tee := resp.ContentLength >= 0 && resp.ContentLength <= r.cache.Capacity() && actualOff == off
	if resp.ContentLength < 0 {
		resp.Header["connection"] = "close"
	}
	resp.Header["x-cache"] = "miss"
	headErr := httpx.WriteResponseHead(conn, resp.Status, resp.Reason, resp.Header)
	if headErr != nil && !tee {
		fl.Complete(nil, errUncacheable)
		return handled, false, obs.ClassCanceled, "client: " + headErr.Error(), healthAddr, 0
	}

	sspan := r.childSpan(fspan, "stream")
	ft.Phase("stream")
	var fill []byte
	if tee {
		fill = make([]byte, 0, resp.ContentLength)
	}
	body := io.Reader(resp.Body)
	if r.UpstreamStall > 0 {
		// Same stall guard as the plain path: a fill that goes silent
		// must fail (waiters refetch) rather than wedge the flight.
		body = &stallGuard{conn: upstream, d: r.UpstreamStall, r: body}
	}
	buf := relayBufs.Get().([]byte)
	defer relayBufs.Put(buf)
	clientErr := headErr
	var got int64
	var rerr error
	for {
		nr, err := body.Read(buf)
		if nr > 0 {
			got += int64(nr)
			if tee {
				fill = append(fill, buf[:nr]...)
			}
			if clientErr == nil {
				nw, werr := conn.Write(buf[:nr])
				n += int64(nw)
				ft.AddBytes(int64(nw))
				if werr != nil {
					clientErr = werr
					if !tee {
						break // nothing to salvage for the cache: stop
					}
				}
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			rerr = err
			break
		}
	}
	r.BytesRelayed.Add(n)
	if sspan != nil {
		sspan.SetAttr("bytes", strconv.FormatInt(n, 10))
	}

	complete := rerr == nil && (resp.ContentLength < 0 || got == resp.ContentLength)
	switch {
	case !complete:
		ferr := rerr
		if ferr == nil {
			ferr = fmt.Errorf("relay: short upstream body %d of %d bytes", got, resp.ContentLength)
		}
		fl.Complete(nil, ferr)
	case tee:
		fl.Complete(fill, nil)
	default:
		fl.Complete(nil, errUncacheable)
	}

	switch {
	case clientErr != nil:
		sspan.End(obs.ClassCanceled, "client: "+clientErr.Error())
		return handled, false, obs.ClassCanceled, "client: " + clientErr.Error(), healthAddr, n
	case rerr != nil:
		sspan.End(obs.ClassFailed, rerr.Error())
		return handled, false, obs.ClassFailed, rerr.Error(), healthAddr, n
	case !complete:
		err := fmt.Errorf("relay: short upstream body %d of %d bytes", got, resp.ContentLength)
		sspan.End(obs.ClassFailed, err.Error())
		return handled, false, obs.ClassFailed, err.Error(), healthAddr, n
	}
	sspan.EndOK()
	return handled, resp.ContentLength >= 0, obs.ClassOK, "", healthAddr, n
}

// statusError carries an upstream error status through a flight so
// waiters know the fill failed for a non-transport reason.
type statusError struct {
	status int
	reason string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("relay: upstream status %d %s", e.status, e.reason)
}
