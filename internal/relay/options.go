package relay

import (
	"net"
	"strings"
	"time"

	"repro/internal/objcache"
	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// This file is the options-first construction API for the relay tier,
// mirroring the repro.Client facade: one constructor per component
// (New for relays, NewOriginServer for origins), configured entirely
// through With<Noun> options so new capabilities land as new options
// instead of new constructor signatures. Direct struct construction
// (&Relay{...}) still works for the exported wiring fields and remains
// common in tests, but the cache can only be attached through New —
// its internals are deliberately unexported.

// VerifyFunc checks a served byte range against the canonical content
// of the named object; VerifyRange is the canonical implementation for
// this repo's synthetic objects.
type VerifyFunc func(name string, off int64, p []byte) bool

// options collects everything the relay-tier constructors accept. One
// shared bag keeps option names uniform across New and NewOriginServer;
// each constructor applies the subset that concerns it.
type options struct {
	dial          func(network, addr string) (net.Conn, error)
	spans         *obs.SpanCollector
	health        *obs.HealthMonitor
	cacheBytes    int64
	cacheTTL      time.Duration
	verify        VerifyFunc
	upstreamStall time.Duration
	flight        *flight.Recorder
}

// Option configures a relay-tier constructor.
type Option func(*options)

// WithDialer sets the upstream dialer (nil means net.Dial). Tests and
// the loopback examples inject a shaping dialer here to emulate the
// intermediate-to-origin path.
func WithDialer(dial func(network, addr string) (net.Conn, error)) Option {
	return func(o *options) { o.dial = dial }
}

// WithSpans enables distributed tracing: every request records spans
// into sc, continuing the trace named by the client's x-trace header.
func WithSpans(sc *obs.SpanCollector) Option {
	return func(o *options) { o.spans = sc }
}

// WithHealthMonitor attaches a path-health monitor: one outcome per
// request folds into it (keyed by upstream address on the relay, by
// object on the origin), feeding /debug/paths and the health score
// self-reported to the registry.
func WithHealthMonitor(h *obs.HealthMonitor) Option {
	return func(o *options) { o.health = h }
}

// WithCache gives the relay a bounded range-aware object cache of the
// given capacity: response ranges fill it as they stream through,
// later requests covered by cached spans are served without touching
// the origin, and concurrent misses for the same object/range collapse
// into one upstream fetch. Zero or negative disables caching (the
// default), leaving the forwarding path byte-identical to a cacheless
// relay.
func WithCache(bytes int64) Option {
	return func(o *options) { o.cacheBytes = bytes }
}

// WithCacheTTL expires cached spans this long after their fill; 0 (the
// default) keeps them until evicted. Only meaningful with WithCache.
func WithCacheTTL(ttl time.Duration) Option {
	return func(o *options) { o.cacheTTL = ttl }
}

// WithVerifier re-verifies cached content at serve time: before the
// cache serves a span, v checks it against the canonical object
// content, and a failing span is dropped and refetched from the origin
// instead of served. Only meaningful with WithCache.
func WithVerifier(v VerifyFunc) Option {
	return func(o *options) { o.verify = v }
}

// WithFlight attaches a flight recorder: every forwarded request
// records one wide event (phases, bytes, cache state, retries, trace
// ID) into its bounded ring and appears in its in-flight table while
// active. Nil (the default) costs nothing.
func WithFlight(rec *flight.Recorder) Option {
	return func(o *options) { o.flight = rec }
}

// WithUpstreamStall bounds upstream silence while a response streams
// through the relay: each upstream read re-arms a deadline of d, so a
// slow-loris origin fails the request (and folds as a path failure)
// instead of wedging the handler goroutine forever. Zero (the default)
// disables the guard.
func WithUpstreamStall(d time.Duration) Option {
	return func(o *options) { o.upstreamStall = d }
}

// New constructs a Relay from options:
//
//	r := relay.New(
//	    relay.WithCache(256<<20),
//	    relay.WithCacheTTL(10*time.Minute),
//	    relay.WithVerifier(relay.VerifyRange),
//	    relay.WithHealthMonitor(mon),
//	)
//
// Without options it is equivalent to &Relay{}: a plain forwarding
// relay with no cache, tracing, or health telemetry.
func New(opts ...Option) *Relay {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	r := &Relay{Dial: o.dial, Spans: o.spans, Health: o.health, UpstreamStall: o.upstreamStall, Flight: o.flight}
	if o.cacheBytes > 0 {
		var verify objcache.VerifyFunc
		if o.verify != nil {
			v := o.verify
			verify = func(key string, off int64, data []byte) bool {
				return v(objectNameFromKey(key), off, data)
			}
		}
		r.cache = objcache.New(objcache.Config{
			MaxBytes: o.cacheBytes,
			TTL:      o.cacheTTL,
			Verify:   verify,
		})
	}
	return r
}

// NewOriginServer constructs an empty origin server from options
// (WithSpans, WithHealthMonitor; the others do not apply to origins).
func NewOriginServer(opts ...Option) *Origin {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return &Origin{
		objects: make(map[string]int64),
		Spans:   o.spans,
		Health:  o.health,
	}
}

// Cache returns the relay's object cache, or nil when the relay was
// built without WithCache.
func (r *Relay) Cache() *objcache.Cache { return r.cache }

// cacheKey is the cache identity of an object as seen by the relay:
// the upstream address plus the request path, so the same name on two
// origins never aliases.
func cacheKey(upstreamAddr, path string) string { return upstreamAddr + path }

// objectNameFromKey recovers the object name a cache key refers to,
// for serve-time re-verification: everything after the first '/'.
func objectNameFromKey(key string) string {
	if i := strings.IndexByte(key, '/'); i >= 0 {
		return key[i+1:]
	}
	return key
}
