package relay

import (
	"bufio"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/faultproxy"
	"repro/internal/httpx"
	"repro/internal/obs"
)

// Regression tests for the fault classes the chaos suite flushed out of
// the plain forwarding path: an origin that FINs mid-body used to be
// reported as success (the LimitReader surfaces the early close as a
// clean EOF), leaving the client hung on a keep-alive connection
// awaiting bytes that would never come, and folding a spurious OK into
// the relay's path health.

// chaosRelay wires origin → faultproxy → relay and returns the relay's
// address, the origin's address (the health key), and the proxy.
func chaosRelay(t *testing.T, objSize int64, schedule string, opts ...Option) (relayAddr, originAddr string, p *faultproxy.Proxy, mon *obs.HealthMonitor) {
	t.Helper()
	origin := NewOriginServer()
	origin.Put("obj.bin", objSize)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ol.Close() })
	originAddr = ol.Addr().String()

	p, err = faultproxy.Listen("127.0.0.1:0", originAddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	if schedule != "" {
		p.SetSchedule(faultproxy.MustParse(schedule))
	}

	mon = obs.NewHealthMonitor(obs.HealthConfig{Clock: obs.WallClock()})
	proxyAddr := p.Addr()
	opts = append([]Option{
		WithHealthMonitor(mon),
		// Route the upstream leg through the fault proxy regardless of
		// the address the request names.
		WithDialer(func(network, addr string) (net.Conn, error) {
			return net.Dial(network, proxyAddr)
		}),
	}, opts...)
	r := New(opts...)
	rl, err := r.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rl.Close() })
	return rl.Addr().String(), originAddr, p, mon
}

// shortGet issues one whole-object GET through the relay with a hard
// client deadline and returns the declared length, the delivered body,
// the open connection, and how long the read took.
func shortGet(t *testing.T, relayAddr, originAddr, name string, deadline time.Duration) (clen int64, body []byte, conn net.Conn, elapsed time.Duration) {
	t.Helper()
	conn, err := net.Dial("tcp", relayAddr)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetDeadline(time.Now().Add(deadline))
	req := httpx.NewGet("http://"+originAddr+"/"+name, originAddr)
	delete(req.Header, "connection") // keep-alive: pin the hang, not mask it
	if err := req.Write(conn); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err := httpx.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatalf("response head: %v", err)
	}
	if resp.Status != 200 {
		t.Fatalf("status %d, want 200", resp.Status)
	}
	body, err = io.ReadAll(resp.Body)
	elapsed = time.Since(start)
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatalf("client hung for %v on a truncated body (%d of %d bytes)",
			elapsed, len(body), resp.ContentLength)
	}
	return resp.ContentLength, body, conn, elapsed
}

func TestForwardShortUpstreamBody(t *testing.T) {
	const objSize = 64 << 10
	// The origin's FIN lands 8 KB into the response stream: a clean
	// early close, not a reset — exactly the case EOF semantics hide.
	relayAddr, originAddr, _, mon := chaosRelay(t, objSize, "conn=* phase=body@8192 close")

	clen, body, conn, elapsed := shortGet(t, relayAddr, originAddr, "obj.bin", 5*time.Second)
	defer conn.Close()
	if clen != objSize {
		t.Fatalf("declared length %d, want %d", clen, objSize)
	}
	if int64(len(body)) >= objSize {
		t.Fatalf("got the whole object (%d bytes) through a truncating proxy", len(body))
	}
	if elapsed > 2*time.Second {
		t.Fatalf("short read took %v: client waited on a dead keep-alive conn", elapsed)
	}
	// The delivered prefix must be intact bytes of the object.
	if !VerifyRange("obj.bin", 0, body) {
		t.Fatal("delivered prefix corrupted")
	}

	// The relay must close the client connection after a truncated
	// forward: a second request on it cannot succeed.
	req := httpx.NewGet("http://"+originAddr+"/obj.bin", originAddr)
	delete(req.Header, "connection")
	if err := req.Write(conn); err == nil {
		if _, err := httpx.ReadResponse(bufio.NewReader(conn)); err == nil {
			t.Fatal("keep-alive survived a truncated forward")
		}
	}

	// And the truncation folds as an upstream transport failure — never
	// an OK sample.
	ph := waitForFold(t, mon, originAddr, func(ph obs.PathHealth) bool { return ph.Failed >= 1 })
	if ph.Ok != 0 {
		t.Fatalf("health folded ok=%d failed=%d, want the truncation as a failure", ph.Ok, ph.Failed)
	}
}

func TestForwardUpstreamStallGuard(t *testing.T) {
	const objSize = 64 << 10
	// The origin goes silent 8 KB in, far longer than the relay's stall
	// guard: the relay must fail the forward, not wedge its handler.
	relayAddr, originAddr, _, mon := chaosRelay(t, objSize,
		"conn=* phase=body@8192 stall=30s", WithUpstreamStall(250*time.Millisecond))

	_, body, conn, elapsed := shortGet(t, relayAddr, originAddr, "obj.bin", 10*time.Second)
	defer conn.Close()
	if int64(len(body)) >= objSize {
		t.Fatalf("got the whole object (%d bytes) past a stalled upstream", len(body))
	}
	if elapsed > 2*time.Second {
		t.Fatalf("stalled forward released the client after %v, want ~the stall guard", elapsed)
	}
	ph := waitForFold(t, mon, originAddr, func(ph obs.PathHealth) bool { return ph.Failed >= 1 })
	if ph.Ok != 0 {
		t.Fatalf("health folded ok=%d failed=%d, want the stall as a failure", ph.Ok, ph.Failed)
	}
}

func TestFillForwardTruncationNeverPoisonsCache(t *testing.T) {
	const objSize = 32 << 10
	relayAddr, originAddr, p, _ := chaosRelay(t, objSize,
		"conn=1 phase=body@4096 close",
		WithCache(1<<20), WithVerifier(VerifyRange))

	// First fetch rides the truncated fill; it must come back short or
	// failed, and must not leave a partial span behind.
	if body, err := FetchVia(nil, relayAddr, originAddr, "obj.bin", 0, objSize); err == nil && int64(len(body)) == objSize {
		t.Fatal("truncated fill delivered a full object")
	}

	// Heal the path; the refetch must serve complete, verified bytes.
	p.SetSchedule(nil)
	body, err := FetchVia(nil, relayAddr, originAddr, "obj.bin", 0, objSize)
	if err != nil {
		t.Fatalf("healed refetch: %v", err)
	}
	if int64(len(body)) != objSize || !VerifyRange("obj.bin", 0, body) {
		t.Fatalf("healed refetch returned %d corrupt-or-short bytes", len(body))
	}
}

func TestCachedRelayNeverServesCorruptSpan(t *testing.T) {
	const objSize = 32 << 10
	// Conn 1 (the cache fill) delivers a corrupted range; the serve-time
	// verifier must keep the poisoned span from ever reaching a client.
	relayAddr, originAddr, p, _ := chaosRelay(t, objSize,
		"conn=1 phase=body@4096 corrupt=64",
		WithCache(1<<20), WithVerifier(VerifyRange))

	first, err := FetchVia(nil, relayAddr, originAddr, "obj.bin", 0, objSize)
	if err == nil && VerifyRange("obj.bin", 0, first) && int64(len(first)) == objSize {
		t.Fatal("corrupting proxy delivered intact bytes; fault injection broke")
	}

	// Heal the upstream; every subsequent fetch — whether it hits the
	// cache or refills — must verify.
	p.SetSchedule(nil)
	for i := 0; i < 3; i++ {
		body, err := FetchVia(nil, relayAddr, originAddr, "obj.bin", 0, objSize)
		if err != nil {
			t.Fatalf("fetch %d after heal: %v", i, err)
		}
		if int64(len(body)) != objSize || !VerifyRange("obj.bin", 0, body) {
			t.Fatalf("fetch %d served corrupt bytes from the relay tier", i)
		}
	}
}
