package relay

import (
	"errors"
	"testing"
	"testing/quick"
)

func startOrigin(t *testing.T) (*Origin, string) {
	t.Helper()
	o := NewOrigin()
	o.Put("big.bin", 1_000_000)
	l, err := o.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return o, l.Addr().String()
}

func startRelay(t *testing.T) (*Relay, string) {
	t.Helper()
	r := &Relay{}
	l, err := r.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return r, l.Addr().String()
}

func TestFillRangeDeterministicAndPositionIndependent(t *testing.T) {
	whole := make([]byte, 1024)
	FillRange("obj", 0, whole)
	part := make([]byte, 100)
	FillRange("obj", 500, part)
	for i := range part {
		if part[i] != whole[500+i] {
			t.Fatal("range content depends on starting offset")
		}
	}
	other := make([]byte, 1024)
	FillRange("other", 0, other)
	same := 0
	for i := range whole {
		if whole[i] == other[i] {
			same++
		}
	}
	if same > 100 { // ~4 expected by chance per 1024
		t.Fatalf("different objects share %d/1024 bytes", same)
	}
}

func TestVerifyRangeProperty(t *testing.T) {
	f := func(offRaw uint16, lenRaw uint8) bool {
		off := int64(offRaw)
		p := make([]byte, int(lenRaw)+1)
		FillRange("x", off, p)
		if !VerifyRange("x", off, p) {
			return false
		}
		p[len(p)/2] ^= 0xff
		return !VerifyRange("x", off, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectFetch(t *testing.T) {
	o, addr := startOrigin(t)
	body, err := Fetch(nil, addr, "big.bin", 1000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != 5000 {
		t.Fatalf("got %d bytes", len(body))
	}
	if !VerifyRange("big.bin", 1000, body) {
		t.Fatal("content mismatch")
	}
	if o.BytesServed.Load() < 5000 {
		t.Fatal("origin accounting missing")
	}
}

func TestFetchMissingObject(t *testing.T) {
	_, addr := startOrigin(t)
	if _, err := Fetch(nil, addr, "ghost.bin", 0, 10); err == nil {
		t.Fatal("expected 404 error")
	}
}

func TestFetchViaRelay(t *testing.T) {
	_, originAddr := startOrigin(t)
	r, relayAddr := startRelay(t)
	body, err := FetchVia(nil, relayAddr, originAddr, "big.bin", 2048, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != 4096 {
		t.Fatalf("got %d bytes", len(body))
	}
	if !VerifyRange("big.bin", 2048, body) {
		t.Fatal("relayed content mismatch")
	}
	if r.BytesRelayed.Load() != 4096 {
		t.Fatalf("relay accounted %d bytes, want 4096", r.BytesRelayed.Load())
	}
	if r.Requests.Load() != 1 {
		t.Fatalf("relay requests = %d", r.Requests.Load())
	}
}

func TestRelayBadGateway(t *testing.T) {
	_, relayAddr := startRelay(t)
	// Point at a dead origin.
	if _, err := FetchVia(nil, relayAddr, "127.0.0.1:1", "x", 0, 10); err == nil {
		t.Fatal("expected bad-gateway error")
	}
}

func TestRelayRejectsOriginForm(t *testing.T) {
	_, relayAddr := startRelay(t)
	// A direct-form request to the relay must be rejected (400), which
	// surfaces as a fetch error.
	if _, err := Fetch(nil, relayAddr, "big.bin", 0, 10); err == nil {
		t.Fatal("relay accepted origin-form request")
	}
}

func TestOriginFullObjectNoRange(t *testing.T) {
	o := NewOrigin()
	o.Put("small.bin", 1234)
	l, err := o.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Fetch with a range covering everything behaves like a full get.
	body, err := Fetch(nil, l.Addr().String(), "small.bin", 0, 1234)
	if err != nil || len(body) != 1234 {
		t.Fatalf("full fetch: %d bytes, err %v", len(body), err)
	}
}

func TestOriginPutNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewOrigin().Put("x", -1)
}

func TestOriginUnsatisfiableRange(t *testing.T) {
	_, addr := startOrigin(t)
	if _, err := Fetch(nil, addr, "big.bin", 2_000_000, 10); err == nil {
		t.Fatal("expected 416 error")
	}
}

func TestConcurrentFetches(t *testing.T) {
	_, originAddr := startOrigin(t)
	_, relayAddr := startRelay(t)
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		off := int64(i) * 10_000
		go func() {
			body, err := FetchVia(nil, relayAddr, originAddr, "big.bin", off, 10_000)
			if err == nil && !VerifyRange("big.bin", off, body) {
				err = errContent
			}
			errs <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

var errContent = errors.New("relayed content mismatch")

func TestHeadSizeDiscovery(t *testing.T) {
	_, addr := startOrigin(t)
	size, err := Head(nil, addr, "big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if size != 1_000_000 {
		t.Fatalf("size = %d, want 1000000", size)
	}
	if _, err := Head(nil, addr, "ghost.bin"); err == nil {
		t.Fatal("HEAD of missing object should fail")
	}
}
