// Package relay contains the real-TCP components of the indirect routing
// system: an origin server that serves synthetic ranged objects, and the
// relay daemon that forwards client requests to origins — the
// intermediate-node software of the paper. Both speak the httpx protocol
// subset over plain net.Conn.
package relay

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/httpx"
	"repro/internal/obs"
)

// keepAliveIdle is how long a connection may sit idle between requests
// before the server drops it.
const keepAliveIdle = 60 * time.Second

// FillRange writes the deterministic content of object name at [off,
// off+len(p)) into p. Content is a cheap position-dependent pattern, so
// any byte range can be generated (and verified) without materializing
// the object.
func FillRange(name string, off int64, p []byte) {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	for i := range p {
		pos := uint64(off + int64(i))
		x := (pos + h) * 0x9e3779b97f4a7c15
		x ^= x >> 29
		p[i] = byte(x)
	}
}

// VerifyRange reports whether p matches the canonical content of object
// name at offset off.
func VerifyRange(name string, off int64, p []byte) bool {
	want := make([]byte, len(p))
	FillRange(name, off, want)
	for i := range p {
		if p[i] != want[i] {
			return false
		}
	}
	return true
}

// Origin is an origin server holding synthetic objects of declared sizes.
type Origin struct {
	mu      sync.RWMutex
	objects map[string]int64

	// Spans collects the origin's tracing spans. When set, every request
	// records a terminal "serve" span, continuing the trace named by the
	// x-trace request header (stamped by the client or rewritten by the
	// relay) or rooting a fresh one. Nil disables tracing.
	Spans *obs.SpanCollector

	// Health, when set, receives one outcome per request keyed by object
	// name — the origin's serving-quality view, feeding /debug/paths.
	// Nil costs nothing.
	Health *obs.HealthMonitor

	// BytesServed counts content bytes written to clients.
	BytesServed atomic.Int64
	// Conns counts accepted connections (keep-alive reuse keeps this
	// flat across requests).
	Conns atomic.Int64

	lat obs.LatencyRecorder
}

// LatencySnapshot returns the distribution of request serving times,
// ready for Prometheus exposition.
func (o *Origin) LatencySnapshot() obs.HistogramSnapshot { return o.lat.Snapshot() }

// NewOrigin returns an empty origin server.
//
// Deprecated: use NewOriginServer, the options-first constructor; this
// wrapper remains for existing callers and is equivalent to
// NewOriginServer() with no options.
func NewOrigin() *Origin {
	return NewOriginServer()
}

// Put registers an object.
func (o *Origin) Put(name string, size int64) {
	if size < 0 {
		panic("relay: negative object size")
	}
	o.mu.Lock()
	o.objects[name] = size
	o.mu.Unlock()
}

// Size returns an object's size.
func (o *Origin) Size(name string) (int64, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	sz, ok := o.objects[name]
	return sz, ok
}

// Serve accepts connections until the listener closes. A connection
// serves requests in sequence (HTTP keep-alive) until the client sends
// "connection: close" or hangs up — which is what lets the remainder of
// a selected transfer continue on the winning probe's warm connection.
func (o *Origin) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go o.handle(conn)
	}
}

func (o *Origin) handle(conn net.Conn) {
	defer conn.Close()
	o.Conns.Add(1)
	br := bufio.NewReader(conn)
	for {
		// Idle keep-alive connections lapse so they cannot accumulate.
		conn.SetReadDeadline(time.Now().Add(keepAliveIdle))
		req, err := httpx.ReadRequest(br)
		if err != nil {
			return
		}
		conn.SetReadDeadline(time.Time{})
		if !o.serveOne(conn, req) {
			return
		}
		if req.Header["connection"] == "close" {
			return
		}
	}
}

// serveOne answers a single request; it reports whether the connection
// can serve another. When tracing, the exchange records a terminal
// "serve" span under whatever trace the request's x-trace header names.
func (o *Origin) serveOne(conn net.Conn, req *httpx.Request) bool {
	start := time.Now()
	// Parse the trace header unconditionally: the latency histogram's
	// exemplars want the trace even when span recording is off.
	parent, _ := obs.ParseTraceHeader(req.Header[obs.TraceHeader])
	var span *obs.ActiveSpan
	if o.Spans != nil {
		span = o.Spans.StartSpan(parent, "origin", "serve")
	}
	again, class, detail, object, sent := o.serve(conn, req, span)
	span.End(class, detail)
	elapsed := time.Since(start)
	o.lat.ObserveTrace(elapsed, parent.Trace)
	if o.Health != nil {
		o.Health.Observe(object, class, elapsed.Seconds(), sent)
	}
	return again
}

func (o *Origin) serve(conn net.Conn, req *httpx.Request, span *obs.ActiveSpan) (again bool, class obs.ErrClass, detail, object string, sent int64) {
	name := req.Target
	if _, path, ok := req.AbsoluteTarget(); ok {
		name = path
	}
	if len(name) > 0 && name[0] == '/' {
		name = name[1:]
	}
	span.SetAttr("object", name)
	size, ok := o.Size(name)
	if !ok {
		return httpx.WriteResponseHead(conn, 404, "Not Found",
			map[string]string{"content-length": "0"}) == nil, obs.ClassStatus, "not found", name, 0
	}
	off, n, err := httpx.ParseRange(req.Header["range"], size)
	if err != nil {
		status, reason := 400, "Bad Request"
		if errors.Is(err, httpx.ErrUnsatisfiable) {
			status, reason = 416, "Range Not Satisfiable"
		}
		return httpx.WriteResponseHead(conn, status, reason,
			map[string]string{"content-length": "0"}) == nil, obs.ClassStatus, reason, name, 0
	}

	header := map[string]string{
		"content-length": strconv.FormatInt(n, 10),
		"accept-ranges":  "bytes",
	}
	status, reason := 200, "OK"
	if req.Header["range"] != "" {
		status, reason = 206, "Partial Content"
		header["content-range"] = httpx.ContentRange(off, n, size)
	}
	if err := httpx.WriteResponseHead(conn, status, reason, header); err != nil {
		return false, obs.ClassFailed, err.Error(), name, 0
	}
	if req.Method == "HEAD" {
		return true, obs.ClassOK, "", name, 0
	}

	sent, werr := WriteRange(conn, name, off, n, nil)
	o.BytesServed.Add(sent)
	if span != nil { // gate the FormatInt: no formatting on the untraced path
		span.SetAttr("bytes", strconv.FormatInt(sent, 10))
	}
	if werr != nil {
		return false, obs.ClassFailed, werr.Error(), name, sent
	}
	return true, obs.ClassOK, "", name, sent
}

// ServeAddr starts the origin on addr (e.g. "127.0.0.1:0") and returns the
// listener; callers close it to stop.
func (o *Origin) ServeAddr(addr string) (net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go o.Serve(l)
	return l, nil
}

// Head asks the origin (or a relay, with an absolute-form target built by
// the caller) for an object's size without transferring content.
func Head(dial func(network, addr string) (net.Conn, error), addr, name string) (int64, error) {
	if dial == nil {
		dial = net.Dial
	}
	conn, err := dial("tcp", addr)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	req := httpx.NewGet("/"+name, addr)
	req.Method = "HEAD"
	if err := req.Write(conn); err != nil {
		return 0, err
	}
	resp, err := httpx.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		return 0, err
	}
	if resp.Status != 200 {
		return 0, fmt.Errorf("relay: head status %d", resp.Status)
	}
	if resp.ContentLength < 0 {
		return 0, errors.New("relay: head response missing content-length")
	}
	return resp.ContentLength, nil
}

// Fetch is a convenience client: it downloads [off, off+n) of object name
// from addr over a fresh connection, optionally via dial (nil = net.Dial),
// returning the body.
func Fetch(dial func(network, addr string) (net.Conn, error), addr, name string, off, n int64) ([]byte, error) {
	if dial == nil {
		dial = net.Dial
	}
	conn, err := dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	req := httpx.NewGet("/"+name, addr)
	if off != 0 || n >= 0 {
		req.SetRange(off, n)
	}
	if err := req.Write(conn); err != nil {
		return nil, err
	}
	resp, err := httpx.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		return nil, err
	}
	if resp.Status != 200 && resp.Status != 206 {
		return nil, fmt.Errorf("relay: fetch status %d", resp.Status)
	}
	return io.ReadAll(resp.Body)
}
