package relay

import (
	"bufio"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/httpx"
	"repro/internal/obs"
)

// waitForFold polls until the relay's monitor shows the predicate true
// for the upstream path (the health fold happens after the response is
// written, so the test must not race it).
func waitForFold(t *testing.T, m *obs.HealthMonitor, key string, pred func(obs.PathHealth) bool) obs.PathHealth {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ph, ok := m.PathHealth(key); ok && pred(ph) {
			return ph
		}
		if time.Now().After(deadline) {
			ph, _ := m.PathHealth(key)
			t.Fatalf("condition never held for %q: %+v", key, ph)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClientDisconnectIsNotPathFailure pins the health-feed
// classification: a downstream client hanging up mid-response — which
// happens on every reaped losing probe — must not count as a failure of
// the upstream path. Only upstream trouble (e.g. a dead origin) may.
func TestClientDisconnectIsNotPathFailure(t *testing.T) {
	origin := NewOrigin()
	origin.Put("big.bin", 8<<20)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()
	up := ol.Addr().String()

	r := &Relay{Health: obs.NewHealthMonitor(obs.HealthConfig{Clock: obs.WallClock()})}
	rl, err := r.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()

	// A client that requests the whole object, reads the head plus a
	// little body, then slams the connection — a reaped loser.
	conn, err := net.Dial("tcp", rl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	req := httpx.NewGet("http://"+up+"/big.bin", up)
	if err := req.Write(conn); err != nil {
		t.Fatal(err)
	}
	resp, err := httpx.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(resp.Body, make([]byte, 16<<10)); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// The disconnect folds as canceled: not a sample, so the path stays
	// unknown with no failures on the books.
	ph := waitForFold(t, r.Health, up, func(ph obs.PathHealth) bool { return true })
	if ph.Failed != 0 {
		t.Fatalf("client disconnect counted as upstream failure: %+v", ph)
	}
	if ph.State != obs.HealthUnknown {
		t.Fatalf("state = %v after only a client disconnect, want unknown", ph.State)
	}

	// A complete fetch is a real (successful) sample.
	if _, err := FetchVia(nil, rl.Addr().String(), up, "big.bin", 0, 4096); err != nil {
		t.Fatal(err)
	}
	ph = waitForFold(t, r.Health, up, func(ph obs.PathHealth) bool { return ph.Ok >= 1 })
	if ph.Failed != 0 || ph.State != obs.HealthHealthy {
		t.Fatalf("successful fetch: %+v, want 1 ok / healthy", ph)
	}

	// Upstream death, by contrast, is the path's fault.
	ol.Close()
	if _, err := FetchVia(nil, rl.Addr().String(), up, "big.bin", 0, 4096); err == nil {
		t.Fatal("fetch through dead origin succeeded")
	}
	ph = waitForFold(t, r.Health, up, func(ph obs.PathHealth) bool { return ph.Failed >= 1 })
	if ph.Ok != 1 {
		t.Fatalf("after upstream death: %+v, want the earlier ok preserved", ph)
	}
}
