package relay

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestWriteRangeMatchesFillRange(t *testing.T) {
	var got bytes.Buffer
	n, err := WriteRange(&got, "obj", 12_345, 100_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100_000 || got.Len() != 100_000 {
		t.Fatalf("wrote %d (%d buffered), want 100000", n, got.Len())
	}
	want := make([]byte, 100_000)
	FillRange("obj", 12_345, want)
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("streamed content differs from FillRange")
	}
}

func TestWriteRangeReportsPartialOnWriterError(t *testing.T) {
	w := &failAfter{limit: 50_000}
	n, err := WriteRange(w, "obj", 0, 200_000, make([]byte, 4<<10))
	if err == nil {
		t.Fatal("writer error not surfaced")
	}
	if n != w.written {
		t.Fatalf("reported %d written, writer accepted %d", n, w.written)
	}
	if n >= 200_000 || n < 50_000 {
		t.Fatalf("partial count %d out of range", n)
	}
}

// failAfter accepts limit bytes, then fails every write.
type failAfter struct {
	written int64
	limit   int64
}

func (w *failAfter) Write(p []byte) (int, error) {
	if w.written >= w.limit {
		return 0, errors.New("writer full")
	}
	w.written += int64(len(p))
	return len(p), nil
}

func TestVerifierAcceptsStreamedChunks(t *testing.T) {
	const off, total = int64(777), 200_000
	body := make([]byte, total)
	FillRange("obj", off, body)
	v := NewVerifier("obj", off)
	// Feed in uneven chunk sizes to exercise the internal sub-chunking.
	for i, sizes := 0, []int{1, 100, 32<<10 - 7, 64 << 10, total}; i < total; {
		n := sizes[0]
		sizes = append(sizes[1:], sizes[0])
		if i+n > total {
			n = total - i
		}
		if !v.Verify(body[i : i+n]) {
			t.Fatalf("verifier rejected clean chunk at %d", i)
		}
		i += n
	}
	if v.Offset() != off+total {
		t.Fatalf("offset %d after stream, want %d", v.Offset(), off+total)
	}
}

func TestVerifierFlagsCorruptionAndHoldsOffset(t *testing.T) {
	body := make([]byte, 100_000)
	FillRange("obj", 0, body)
	body[70_000] ^= 0xff
	v := NewVerifier("obj", 0)
	if !v.Verify(body[:64<<10]) {
		t.Fatal("clean prefix rejected")
	}
	pos := v.Offset()
	if v.Verify(body[64<<10:]) {
		t.Fatal("corruption not detected")
	}
	// The offset stays at the start of the failed chunk, inside the
	// corrupt window.
	if got := v.Offset(); got != pos {
		t.Fatalf("offset advanced past a failed chunk: %d -> %d", pos, got)
	}
}

func TestVerifierAgreesWithVerifyRange(t *testing.T) {
	body := make([]byte, 50_000)
	FillRange("obj", 123, body)
	v := NewVerifier("obj", 123)
	if got, want := v.Verify(body), VerifyRange("obj", 123, body); got != want {
		t.Fatalf("Verifier = %v, VerifyRange = %v", got, want)
	}
}

func TestOriginStreamsLargeRange(t *testing.T) {
	o := NewOrigin()
	o.Put("huge.bin", 64<<20)
	l, err := o.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// An 8 MB slice out of a 64 MB object: the origin generates it on the
	// fly through WriteRange.
	const off, n = int64(30 << 20), int64(8 << 20)
	body, err := Fetch(nil, l.Addr().String(), "huge.bin", off, n)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(body)) != n {
		t.Fatalf("got %d bytes, want %d", len(body), n)
	}
	v := NewVerifier("huge.bin", off)
	if !v.Verify(body) {
		t.Fatal("streamed origin content failed verification")
	}
	if got := o.BytesServed.Load(); got != n {
		t.Fatalf("BytesServed = %d, want %d", got, n)
	}
}

var _ io.Writer = (*failAfter)(nil)
