package relay

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// TestRelayFlightWideEvents drives forwards through a caching relay and
// asserts the relay-side wide events: identity keyed by upstream
// address (the health monitor's fold key), cache disposition across
// miss → hit, forwarding phases, and the trace ID continued from the
// client's x-trace header.
func TestRelayFlightWideEvents(t *testing.T) {
	origin := NewOrigin()
	origin.Put("obj.bin", 200_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()

	rec := flight.NewRecorder(flight.Config{Ring: 16})
	spans := obs.NewSpanCollector(0)
	r := New(
		WithCache(1<<20),
		WithVerifier(VerifyRange),
		WithSpans(spans),
		WithFlight(rec),
	)
	rl, err := r.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()

	upstream := ol.Addr().String()
	// First forward fills the cache (miss), second serves from it (hit).
	for i := 0; i < 2; i++ {
		if _, err := FetchVia(nil, rl.Addr().String(), upstream, "obj.bin", 0, 50_000); err != nil {
			t.Fatal(err)
		}
	}

	evs := rec.Events(flight.Filter{Path: upstream})
	if len(evs) != 2 {
		t.Fatalf("recorded %d wide events for upstream %s, want 2: %+v",
			len(evs), upstream, rec.Events(flight.Filter{}))
	}
	hit, miss := evs[0], evs[1] // newest first
	if miss.Cache != "miss" || hit.Cache != "hit" {
		t.Fatalf("cache dispositions = %q then %q, want miss then hit", miss.Cache, hit.Cache)
	}
	for _, ev := range evs {
		if ev.Service != "relay" || ev.Object != "obj.bin" || ev.Class != "ok" {
			t.Fatalf("event = %+v", ev)
		}
		if ev.Bytes != 50_000 {
			t.Fatalf("event bytes = %d, want 50000", ev.Bytes)
		}
		if ev.Trace == "" {
			t.Fatalf("relay event carries no trace: %+v", ev)
		}
	}
	// The miss forwarded upstream: dial/ttfb/stream phases exist.
	names := map[string]bool{}
	for _, p := range miss.Phases {
		names[p.Name] = true
	}
	for _, want := range []string{"dial", "ttfb", "stream"} {
		if !names[want] {
			t.Fatalf("miss phases %v missing %q", miss.Phases, want)
		}
	}
	// The hit never dialed.
	for _, p := range hit.Phases {
		if p.Name == "dial" {
			t.Fatalf("cache hit dialed upstream: %+v", hit.Phases)
		}
	}
	// The events' traces resolve into the relay's span set.
	for _, ev := range evs {
		found := false
		for _, s := range spans.Spans() {
			if s.Trace.String() == ev.Trace {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("event trace %q matches no relay span", ev.Trace)
		}
	}
}

// TestRelayFlightEventOnFailure asserts a failing forward records its
// outcome class, and a malformed request still produces an event.
func TestRelayFlightEventOnFailure(t *testing.T) {
	origin := NewOrigin()
	origin.Put("obj.bin", 1000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()

	rec := flight.NewRecorder(flight.Config{Ring: 16})
	r := New(WithFlight(rec))
	rl, err := r.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()

	if _, err := FetchVia(nil, rl.Addr().String(), ol.Addr().String(), "missing.bin", 0, 10); err == nil {
		t.Fatal("forward of a missing object succeeded")
	}
	evs := rec.Events(flight.Filter{Path: ol.Addr().String()})
	if len(evs) != 1 {
		t.Fatalf("events = %+v", rec.Events(flight.Filter{}))
	}
	if evs[0].Class == "ok" {
		t.Fatalf("failed forward recorded class ok: %+v", evs[0])
	}
	if evs[0].Object != "missing.bin" {
		t.Fatalf("event object = %q", evs[0].Object)
	}
}
