package relay

import (
	"io"
	"testing"
)

func BenchmarkFillRange32K(b *testing.B) {
	buf := make([]byte, 32<<10)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		FillRange("large.bin", int64(i)<<15, buf)
	}
}

// BenchmarkWriteRange1M times streaming generation: with a caller-supplied
// scratch buffer the only cost is FillRange + the writes — zero
// allocations regardless of range size.
func BenchmarkWriteRange1M(b *testing.B) {
	buf := make([]byte, 32<<10)
	b.SetBytes(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := WriteRange(io.Discard, "large.bin", 0, 1<<20, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifier1M times incremental verification of a 1 MB body fed
// in 64 KB stream chunks — the realnet stream loop's per-chunk check.
func BenchmarkVerifier1M(b *testing.B) {
	body := make([]byte, 1<<20)
	FillRange("large.bin", 0, body)
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := NewVerifier("large.bin", 0)
		for off := 0; off < len(body); off += 64 << 10 {
			if !v.Verify(body[off : off+(64<<10)]) {
				b.Fatal("clean body rejected")
			}
		}
	}
}

func BenchmarkLoopbackFetch64K(b *testing.B) {
	o := NewOrigin()
	o.Put("big.bin", 1<<20)
	l, err := o.ServeAddr("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fetch(nil, l.Addr().String(), "big.bin", 0, 64<<10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoopbackRelayedFetch64K(b *testing.B) {
	o := NewOrigin()
	o.Put("big.bin", 1<<20)
	ol, err := o.ServeAddr("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ol.Close()
	r := &Relay{}
	rl, err := r.ServeAddr("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer rl.Close()
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FetchVia(nil, rl.Addr().String(), ol.Addr().String(), "big.bin", 0, 64<<10); err != nil {
			b.Fatal(err)
		}
	}
}
