package relay

import "testing"

func BenchmarkFillRange32K(b *testing.B) {
	buf := make([]byte, 32<<10)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		FillRange("large.bin", int64(i)<<15, buf)
	}
}

func BenchmarkLoopbackFetch64K(b *testing.B) {
	o := NewOrigin()
	o.Put("big.bin", 1<<20)
	l, err := o.ServeAddr("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fetch(nil, l.Addr().String(), "big.bin", 0, 64<<10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoopbackRelayedFetch64K(b *testing.B) {
	o := NewOrigin()
	o.Put("big.bin", 1<<20)
	ol, err := o.ServeAddr("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ol.Close()
	r := &Relay{}
	rl, err := r.ServeAddr("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer rl.Close()
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FetchVia(nil, rl.Addr().String(), ol.Addr().String(), "big.bin", 0, 64<<10); err != nil {
			b.Fatal(err)
		}
	}
}
