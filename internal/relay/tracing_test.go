package relay

import (
	"bufio"
	"io"
	"net"
	"strconv"
	"testing"

	"repro/internal/httpx"
	"repro/internal/obs"
)

// captureOrigin is a one-request fake origin that records the headers it
// receives and answers with a tiny valid response, so tests can observe
// exactly what crossed the relay hop.
func captureOrigin(t *testing.T) (addr string, got chan map[string]string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	got = make(chan map[string]string, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		req, err := httpx.ReadRequest(bufio.NewReader(conn))
		if err != nil {
			return
		}
		got <- req.Header
		body := []byte("ok")
		httpx.WriteResponseHead(conn, 200, "OK",
			map[string]string{"content-length": strconv.Itoa(len(body))})
		conn.Write(body)
	}()
	return l.Addr().String(), got
}

// fetchWithHeaders issues one GET through the relay with extra request
// headers and drains the response.
func fetchWithHeaders(t *testing.T, relayAddr, originAddr string, hdr map[string]string) {
	t.Helper()
	conn, err := net.Dial("tcp", relayAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := httpx.NewGet("http://"+originAddr+"/x", originAddr)
	for k, v := range hdr {
		req.Header[k] = v
	}
	if err := req.Write(conn); err != nil {
		t.Fatal(err)
	}
	resp, err := httpx.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
}

// TestRelayForwardsExtensionHeaders is the regression test for the
// header-forwarding fix: the relay used to copy only the range and
// connection headers upstream, silently dropping x-trace and any future
// extension header. Every "x-*" header must now cross the hop verbatim.
func TestRelayForwardsExtensionHeaders(t *testing.T) {
	originAddr, got := captureOrigin(t)
	_, relayAddr := startRelay(t)

	trace := obs.SpanContext{Trace: obs.NewTraceID(), Span: obs.NewSpanID()}.Header()
	fetchWithHeaders(t, relayAddr, originAddr, map[string]string{
		obs.TraceHeader: trace,
		"x-custom":      "survives",
		"accept":        "should-not-cross", // non-extension, not forwarded
	})

	hdr := <-got
	if hdr["x-custom"] != "survives" {
		t.Fatalf("x-custom did not cross the relay: %v", hdr)
	}
	// With relay tracing off, the client's trace context passes through
	// untouched, so the origin can still join the client's trace.
	if hdr[obs.TraceHeader] != trace {
		t.Fatalf("x-trace = %q, want pass-through %q", hdr[obs.TraceHeader], trace)
	}
	if hdr["accept"] != "" {
		t.Fatal("relay forwarded a non-extension header")
	}
}

// TestRelayRewritesTraceWhenTracing: with tracing on, the relay's forward
// span continues the client's trace and the upstream request carries the
// forward span's context, so the origin's serve span nests under the relay
// hop rather than beside it.
func TestRelayRewritesTraceWhenTracing(t *testing.T) {
	originAddr, got := captureOrigin(t)
	spans := obs.NewSpanCollector(16)
	r := &Relay{Spans: spans}
	l, err := r.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })

	client := obs.SpanContext{Trace: obs.NewTraceID(), Span: obs.NewSpanID()}
	fetchWithHeaders(t, l.Addr().String(), originAddr, map[string]string{
		obs.TraceHeader: client.Header(),
	})

	hdr := <-got
	up, ok := obs.ParseTraceHeader(hdr[obs.TraceHeader])
	if !ok {
		t.Fatalf("upstream x-trace unparseable: %q", hdr[obs.TraceHeader])
	}
	if up.Trace != client.Trace {
		t.Fatal("relay did not continue the client's trace")
	}
	if up.Span == client.Span {
		t.Fatal("relay forwarded the client's span ID instead of its own")
	}

	var fwd *obs.Span
	for _, s := range spans.Spans() {
		if s.Phase == "forward" {
			fwd = &s
			break
		}
	}
	if fwd == nil {
		t.Fatal("no forward span recorded")
	}
	if fwd.Trace != client.Trace || fwd.Parent != client.Span {
		t.Fatalf("forward span not parented on the client span: %+v", fwd)
	}
	if fwd.ID != up.Span {
		t.Fatal("upstream x-trace does not name the forward span")
	}
	if fwd.Service != "relay" || fwd.Class != "ok" {
		t.Fatalf("forward span fields: %+v", fwd)
	}
}

// TestRelaySpanPhases: one traced relayed fetch records the full
// server-side phase set with the children parented on the forward span.
func TestRelaySpanPhases(t *testing.T) {
	_, originAddr := startOrigin(t)
	spans := obs.NewSpanCollector(16)
	r := &Relay{Spans: spans}
	l, err := r.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })

	body, err := FetchVia(nil, l.Addr().String(), originAddr, "big.bin", 0, 4096)
	if err != nil || len(body) != 4096 {
		t.Fatalf("fetch: %d bytes, %v", len(body), err)
	}

	byPhase := map[string]obs.Span{}
	for _, s := range spans.Spans() {
		byPhase[s.Phase] = s
	}
	fwd, ok := byPhase["forward"]
	if !ok {
		t.Fatalf("no forward span: %v", byPhase)
	}
	for _, phase := range []string{"dial", "ttfb", "stream"} {
		child, ok := byPhase[phase]
		if !ok {
			t.Fatalf("missing %s span", phase)
		}
		if child.Parent != fwd.ID || child.Trace != fwd.Trace {
			t.Fatalf("%s span not a child of forward", phase)
		}
		if child.Class != "ok" {
			t.Fatalf("%s span class = %q", phase, child.Class)
		}
	}
	if fwd.Attrs["status"] != "206" {
		t.Fatalf("forward status attr = %q", fwd.Attrs["status"])
	}
	if byPhase["stream"].Attrs["bytes"] != "4096" {
		t.Fatalf("stream bytes attr = %q", byPhase["stream"].Attrs["bytes"])
	}
	// An untraced client request roots a fresh trace rather than failing.
	if fwd.Parent.IsZero() == false {
		t.Fatalf("untraced request should root a fresh trace: parent %v", fwd.Parent)
	}
}
