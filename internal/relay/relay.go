package relay

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/httpx"
)

// Relay is the intermediate-node forwarding service: it accepts
// absolute-form GET requests ("GET http://origin:port/name"), dials the
// origin, forwards the (possibly ranged) request, and splices the
// response back to the client — the overlay proxy of the paper's
// methodology.
type Relay struct {
	// Dial opens upstream connections; nil means net.Dial. Tests and the
	// loopback example inject a shaping dialer here to emulate the
	// intermediate-to-origin path.
	Dial func(network, addr string) (net.Conn, error)

	// BytesRelayed counts response-body bytes forwarded to clients.
	BytesRelayed atomic.Int64
	// Requests counts requests handled (including failures).
	Requests atomic.Int64
}

// Serve accepts and forwards until the listener closes.
func (r *Relay) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go r.handle(conn)
	}
}

// ServeAddr starts the relay on addr and returns its listener.
func (r *Relay) ServeAddr(addr string) (net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go r.Serve(l)
	return l, nil
}

func (r *Relay) handle(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	for {
		conn.SetReadDeadline(time.Now().Add(keepAliveIdle))
		req, err := httpx.ReadRequest(br)
		if err != nil {
			return
		}
		conn.SetReadDeadline(time.Time{})
		if !r.forwardOne(conn, req) {
			return
		}
		if req.Header["connection"] == "close" {
			return
		}
	}
}

// forwardOne relays a single request upstream; it reports whether the
// client connection can carry another request. Upstream connections are
// per-request; the client-facing connection stays warm.
func (r *Relay) forwardOne(conn net.Conn, req *httpx.Request) bool {
	r.Requests.Add(1)
	upstreamAddr, path, ok := req.AbsoluteTarget()
	if !ok {
		httpx.WriteResponseHead(conn, 400, "Bad Request: relay requires absolute-form target",
			map[string]string{"content-length": "0"})
		return true
	}

	dial := r.Dial
	if dial == nil {
		dial = net.Dial
	}
	upstream, err := dial("tcp", upstreamAddr)
	if err != nil {
		httpx.WriteResponseHead(conn, 502, "Bad Gateway",
			map[string]string{"content-length": "0"})
		return true
	}
	defer upstream.Close()

	// Rewrite to origin form, preserving the method (GET/HEAD) and the
	// Range header — the relay is transparent to the range-probing
	// mechanism. The upstream leg is one-shot.
	fwd := httpx.NewGet(path, upstreamAddr)
	fwd.Method = req.Method
	if rg := req.Header["range"]; rg != "" {
		fwd.Header["range"] = rg
	}
	if err := fwd.Write(upstream); err != nil {
		httpx.WriteResponseHead(conn, 502, "Bad Gateway",
			map[string]string{"content-length": "0"})
		return true
	}

	ubr := bufio.NewReader(upstream)
	resp, err := httpx.ReadResponse(ubr)
	if err != nil {
		httpx.WriteResponseHead(conn, 502, "Bad Gateway",
			map[string]string{"content-length": "0"})
		return true
	}
	if resp.ContentLength < 0 {
		// Without a length the body is delimited by upstream close; the
		// client connection cannot be reused afterwards.
		resp.Header["connection"] = "close"
	}
	if err := httpx.WriteResponseHead(conn, resp.Status, resp.Reason, resp.Header); err != nil {
		return false
	}
	n, err := io.Copy(conn, resp.Body)
	r.BytesRelayed.Add(n)
	return err == nil && resp.ContentLength >= 0
}

// FetchVia downloads [off, off+n) of object name from originAddr through
// the relay at relayAddr, optionally with a custom dialer for the
// client-to-relay hop.
func FetchVia(dial func(network, addr string) (net.Conn, error), relayAddr, originAddr, name string, off, n int64) ([]byte, error) {
	if dial == nil {
		dial = net.Dial
	}
	conn, err := dial("tcp", relayAddr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	req := httpx.NewGet("http://"+originAddr+"/"+name, originAddr)
	req.SetRange(off, n)
	if err := req.Write(conn); err != nil {
		return nil, err
	}
	resp, err := httpx.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		return nil, err
	}
	if resp.Status != 200 && resp.Status != 206 {
		return nil, errors.New("relay: upstream status " + resp.Reason)
	}
	return io.ReadAll(resp.Body)
}
