package relay

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/httpx"
	"repro/internal/objcache"
	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// Relay is the intermediate-node forwarding service: it accepts
// absolute-form GET requests ("GET http://origin:port/name"), dials the
// origin, forwards the (possibly ranged) request, and splices the
// response back to the client — the overlay proxy of the paper's
// methodology.
type Relay struct {
	// Dial opens upstream connections; nil means net.Dial. Tests and the
	// loopback example inject a shaping dialer here to emulate the
	// intermediate-to-origin path.
	Dial func(network, addr string) (net.Conn, error)

	// Spans collects the relay's server-side tracing spans. When set,
	// every forwarded request records a "forward" span — continuing the
	// trace named by the client's x-trace header, or rooting a fresh one —
	// with dial/ttfb/stream children for the upstream leg, and the
	// forwarded request carries the forward span's context so the origin's
	// serve span nests beneath it. Nil disables tracing.
	Spans *obs.SpanCollector

	// Health, when set, receives one outcome per forwarded request keyed
	// by the upstream address — the relay's view of its origin paths,
	// feeding /debug/paths and the health score it self-reports to the
	// registry. Nil costs nothing.
	Health *obs.HealthMonitor

	// Flight, when set, records one wide event per forwarded request into
	// the flight recorder (keyed by the upstream address like Health, with
	// phase durations, bytes, cache state, and trace ID) and exposes
	// in-flight forwards to its active table. Nil costs nothing.
	Flight *flight.Recorder

	// UpstreamStall bounds how long the upstream may go silent while a
	// response streams through: each upstream read re-arms a deadline of
	// this length, so a slow-loris origin fails the request instead of
	// wedging the handler goroutine (and the client) forever. Zero
	// disables the guard.
	UpstreamStall time.Duration

	// BytesRelayed counts response-body bytes forwarded to clients.
	BytesRelayed atomic.Int64
	// Requests counts requests handled (including failures).
	Requests atomic.Int64

	// cache, when non-nil, is the bounded range-aware object cache the
	// forwarding path consults before dialing upstream. Only relay.New
	// with WithCache sets it; a zero Relay forwards exactly as before.
	cache *objcache.Cache

	lat obs.LatencyRecorder
}

// LatencySnapshot returns the distribution of request handling times,
// ready for Prometheus exposition.
func (r *Relay) LatencySnapshot() obs.HistogramSnapshot { return r.lat.Snapshot() }

// Serve accepts and forwards until the listener closes.
func (r *Relay) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go r.handle(conn)
	}
}

// ServeAddr starts the relay on addr and returns its listener.
func (r *Relay) ServeAddr(addr string) (net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go r.Serve(l)
	return l, nil
}

func (r *Relay) handle(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	for {
		conn.SetReadDeadline(time.Now().Add(keepAliveIdle))
		req, err := httpx.ReadRequest(br)
		if err != nil {
			return
		}
		conn.SetReadDeadline(time.Time{})
		if !r.forwardOne(conn, req) {
			return
		}
		if req.Header["connection"] == "close" {
			return
		}
	}
}

// forwardOne relays a single request upstream; it reports whether the
// client connection can carry another request. When tracing, the whole
// exchange is wrapped in a "forward" span continuing the client's trace
// (a missing or malformed x-trace header simply roots a fresh one).
func (r *Relay) forwardOne(conn net.Conn, req *httpx.Request) bool {
	r.Requests.Add(1)
	start := time.Now()
	// The trace header is parsed even when span recording is off: the
	// latency histogram's exemplars link buckets to traces, and a traced
	// client deserves that link whether or not this relay keeps spans.
	parent, hasTrace := obs.ParseTraceHeader(req.Header[obs.TraceHeader])
	var fspan *obs.ActiveSpan
	if r.Spans != nil {
		fspan = r.Spans.StartSpan(parent, "relay", "forward")
		fspan.SetAttr("target", req.Target)
	}
	var ft *flight.Transfer
	if r.Flight != nil {
		// The wide event is keyed like Health: by the upstream address the
		// request names. Malformed targets still get an event (path "",
		// object = raw target) — the anomaly log should show garbage too.
		addr, opath, ok := req.AbsoluteTarget()
		if ok {
			ft = r.Flight.Start("relay", addr, strings.TrimPrefix(opath, "/"))
		} else {
			ft = r.Flight.Start("relay", "", req.Target)
		}
		switch {
		case fspan != nil:
			ft.SetTrace(fspan.Context().Trace.String())
		case hasTrace:
			ft.SetTrace(parent.Trace.String())
		}
	}
	var (
		again    bool
		class    obs.ErrClass
		detail   string
		upstream string
		n        int64
	)
	flight.DoLabeled(context.Background(), "forward", func(context.Context) {
		again, class, detail, upstream, n = r.forward(conn, req, fspan, ft)
	})
	fspan.End(class, detail)
	ft.Finish(class.String(), detail)
	elapsed := time.Since(start)
	r.lat.ObserveTrace(elapsed, parent.Trace)
	if r.Health != nil && upstream != "" {
		// Malformed requests never name an upstream; they say nothing
		// about any path and are not folded.
		r.Health.Observe(upstream, class, elapsed.Seconds(), n)
	}
	return again
}

// childSpan opens a per-phase child of the forward span; nil in, nil out.
func (r *Relay) childSpan(parent *obs.ActiveSpan, phase string) *obs.ActiveSpan {
	if parent == nil {
		return nil
	}
	return r.Spans.StartSpan(parent.Context(), "relay", phase)
}

// forward does the actual relaying and classifies the outcome for the
// forward span and the health monitor (addr is the upstream the request
// named, "" when malformed; n the body bytes forwarded). Upstream
// connections are per-request; the client-facing connection stays warm.
func (r *Relay) forward(conn net.Conn, req *httpx.Request, fspan *obs.ActiveSpan, ft *flight.Transfer) (again bool, class obs.ErrClass, detail, addr string, n int64) {
	upstreamAddr, path, ok := req.AbsoluteTarget()
	if !ok {
		httpx.WriteResponseHead(conn, 400, "Bad Request: relay requires absolute-form target",
			map[string]string{"content-length": "0"})
		return true, obs.ClassStatus, "non-absolute target", "", 0
	}

	if r.cache != nil && req.Method == "GET" {
		handled, cagain, cclass, cdetail, caddr, cn := r.serveCached(conn, req, fspan, ft, upstreamAddr, path)
		if handled {
			return cagain, cclass, cdetail, caddr, cn
		}
		// Not cacheable (or a failed shared fill): plain path below.
	}

	dial := r.Dial
	if dial == nil {
		dial = net.Dial
	}
	dspan := r.childSpan(fspan, "dial")
	dspan.SetAttr("addr", upstreamAddr)
	ft.Phase("dial")
	upstream, err := dial("tcp", upstreamAddr)
	if err != nil {
		dspan.End(obs.ClassFailed, err.Error())
		httpx.WriteResponseHead(conn, 502, "Bad Gateway",
			map[string]string{"content-length": "0"})
		return true, obs.ClassFailed, err.Error(), upstreamAddr, 0
	}
	dspan.EndOK()
	defer upstream.Close()

	// Rewrite to origin form, preserving the method (GET/HEAD), the Range
	// header — the relay is transparent to the range-probing mechanism —
	// and every extension ("x-*") header generically, so trace propagation
	// and future extensions survive the hop without the relay naming them
	// one by one. The upstream leg is one-shot.
	fwd := httpx.NewGet(path, upstreamAddr)
	fwd.Method = req.Method
	for k, v := range req.Header {
		if strings.HasPrefix(k, "x-") {
			fwd.Header[k] = v
		}
	}
	if rg := req.Header["range"]; rg != "" {
		fwd.Header["range"] = rg
	}
	if fspan != nil {
		// With tracing on, the upstream request carries the forward span's
		// context so the origin's serve span nests under this hop (with it
		// off, the client's own x-trace passed through unmodified above).
		fwd.Header[obs.TraceHeader] = fspan.Context().Header()
	}
	tspan := r.childSpan(fspan, "ttfb")
	ft.Phase("ttfb")
	if err := fwd.Write(upstream); err != nil {
		tspan.End(obs.ClassFailed, err.Error())
		httpx.WriteResponseHead(conn, 502, "Bad Gateway",
			map[string]string{"content-length": "0"})
		return true, obs.ClassFailed, err.Error(), upstreamAddr, 0
	}

	ubr := bufio.NewReader(upstream)
	if r.UpstreamStall > 0 {
		// The guard also covers time-to-first-byte: a server that
		// accepts and never answers is the same pathology as one that
		// stalls mid-body.
		upstream.SetReadDeadline(time.Now().Add(r.UpstreamStall))
	}
	resp, err := httpx.ReadResponse(ubr)
	if err != nil {
		tspan.End(obs.ClassFailed, err.Error())
		httpx.WriteResponseHead(conn, 502, "Bad Gateway",
			map[string]string{"content-length": "0"})
		return true, obs.ClassFailed, err.Error(), upstreamAddr, 0
	}
	tspan.EndOK()
	if fspan != nil { // gate the Itoa: no formatting on the untraced path
		fspan.SetAttr("status", strconv.Itoa(resp.Status))
	}
	if resp.ContentLength < 0 {
		// Without a length the body is delimited by upstream close; the
		// client connection cannot be reused afterwards.
		resp.Header["connection"] = "close"
	}
	if err := httpx.WriteResponseHead(conn, resp.Status, resp.Reason, resp.Header); err != nil {
		// Downstream write failure: the client went away (e.g. a losing
		// probe reaped mid-response). That says nothing about the
		// upstream path, so it folds as canceled, not failed.
		return false, obs.ClassCanceled, "client: " + err.Error(), upstreamAddr, 0
	}
	sspan := r.childSpan(fspan, "stream")
	ft.Phase("stream")
	body := resp.Body
	if r.UpstreamStall > 0 {
		body = &stallGuard{conn: upstream, d: r.UpstreamStall, r: body}
	}
	var werr, rerr error
	n, werr, rerr = copyStream(conn, body, ft)
	r.BytesRelayed.Add(n)
	if sspan != nil {
		sspan.SetAttr("bytes", strconv.FormatInt(n, 10))
	}
	if werr != nil {
		sspan.End(obs.ClassCanceled, "client: "+werr.Error())
		return false, obs.ClassCanceled, "client: " + werr.Error(), upstreamAddr, n
	}
	if rerr != nil {
		sspan.End(obs.ClassFailed, rerr.Error())
		return false, obs.ClassFailed, rerr.Error(), upstreamAddr, n
	}
	if resp.ContentLength >= 0 && n < resp.ContentLength {
		// The upstream closed mid-body: its LimitReader surfaces the early
		// FIN as a clean EOF, but the client was promised ContentLength
		// bytes. Report the truncation as an upstream transport failure and
		// close the client connection, so the client sees a short read
		// immediately instead of hanging on a keep-alive conn that will
		// never carry the rest. (The cache fill path has the same
		// completeness check; this is the plain-forward twin.)
		detail = "upstream: short body " + strconv.FormatInt(n, 10) +
			"/" + strconv.FormatInt(resp.ContentLength, 10)
		sspan.End(obs.ClassFailed, detail)
		return false, obs.ClassFailed, detail, upstreamAddr, n
	}
	sspan.EndOK()
	if resp.Status != 200 && resp.Status != 206 {
		return resp.ContentLength >= 0, obs.ClassStatus, resp.Reason, upstreamAddr, n
	}
	return resp.ContentLength >= 0, obs.ClassOK, "", upstreamAddr, n
}

// stallGuard re-arms a read deadline on the upstream connection before
// every body read: progress resets the clock, silence longer than d
// surfaces as a timeout error from the read. A stall detector, not a
// transfer cap — an arbitrarily large body is fine as long as bytes keep
// arriving.
type stallGuard struct {
	conn net.Conn
	d    time.Duration
	r    io.Reader
}

func (g *stallGuard) Read(p []byte) (int, error) {
	g.conn.SetReadDeadline(time.Now().Add(g.d))
	return g.r.Read(p)
}

// relayBufs recycles forward-stream buffers across requests.
var relayBufs = sync.Pool{
	New: func() any { return make([]byte, 32<<10) },
}

// copyStream pumps src to dst like io.Copy but reports read (upstream)
// and write (downstream) failures separately: the relay's health
// telemetry must not blame the upstream path when the downstream client
// hung up. A non-nil flight handle sees the byte count live, so the
// in-flight inspector shows a wedged stream's progress while it hangs.
func copyStream(dst io.Writer, src io.Reader, ft *flight.Transfer) (n int64, werr, rerr error) {
	buf := relayBufs.Get().([]byte)
	defer relayBufs.Put(buf)
	for {
		nr, err := src.Read(buf)
		if nr > 0 {
			nw, err := dst.Write(buf[:nr])
			n += int64(nw)
			ft.AddBytes(int64(nw))
			if err != nil {
				return n, err, nil
			}
		}
		if err == io.EOF {
			return n, nil, nil
		}
		if err != nil {
			return n, nil, err
		}
	}
}

// FetchVia downloads [off, off+n) of object name from originAddr through
// the relay at relayAddr, optionally with a custom dialer for the
// client-to-relay hop.
func FetchVia(dial func(network, addr string) (net.Conn, error), relayAddr, originAddr, name string, off, n int64) ([]byte, error) {
	if dial == nil {
		dial = net.Dial
	}
	conn, err := dial("tcp", relayAddr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	req := httpx.NewGet("http://"+originAddr+"/"+name, originAddr)
	req.SetRange(off, n)
	if err := req.Write(conn); err != nil {
		return nil, err
	}
	resp, err := httpx.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		return nil, err
	}
	if resp.Status != 200 && resp.Status != 206 {
		return nil, errors.New("relay: upstream status " + resp.Reason)
	}
	return io.ReadAll(resp.Body)
}
