package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/experiment"
)

// The plot-data writers emit tab-separated series with a commented header
// line, ready for gnuplot/matplotlib, so the paper's figures can be
// re-drawn graphically from the same results the terminal renderers show.

// WriteTSV writes a commented header and tab-separated rows.
func WriteTSV(w io.Writer, header []string, rows [][]string) error {
	if _, err := fmt.Fprintf(w, "# %s\n", strings.Join(header, "\t")); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// Fig1Data writes the improvement histogram as (bin_center, count) rows.
func Fig1Data(w io.Writer, r experiment.Fig1Result) error {
	rows := make([][]string, 0, len(r.Hist.Bins))
	for i, c := range r.Hist.Bins {
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", r.Hist.BinCenter(i)),
			fmt.Sprintf("%d", c),
		})
	}
	return WriteTSV(w, []string{"improvement_pct_bin", "count"}, rows)
}

// Fig3Data writes the scatter of (direct Mb/s, improvement %) points with a
// client column.
func Fig3Data(w io.Writer, r experiment.Fig3Result) error {
	var rows [][]string
	for _, c := range r.Clients {
		for _, p := range c.Points {
			rows = append(rows, []string{
				strings.ReplaceAll(c.Client, " ", "_"),
				fmt.Sprintf("%.4f", p.DirectTp/1e6),
				fmt.Sprintf("%.2f", p.Improvement),
			})
		}
	}
	return WriteTSV(w, []string{"client", "direct_mbps", "improvement_pct"}, rows)
}

// Fig4Data writes per-client time series as (client, t_seconds, mbps).
func Fig4Data(w io.Writer, r experiment.Fig4Result) error {
	var rows [][]string
	for _, s := range r.Series {
		for i := range s.Times {
			rows = append(rows, []string{
				strings.ReplaceAll(s.Client, " ", "_"),
				fmt.Sprintf("%.0f", s.Times[i]),
				fmt.Sprintf("%.4f", s.Tp[i]/1e6),
			})
		}
	}
	return WriteTSV(w, []string{"client", "t_seconds", "indirect_mbps"}, rows)
}

// Fig5Data writes per-intermediate utilization statistics.
func Fig5Data(w io.Writer, r experiment.Fig5Result) error {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			strings.ReplaceAll(row.Inter, " ", "_"),
			fmt.Sprintf("%.2f", row.Average),
			fmt.Sprintf("%.2f", row.Stdev),
			fmt.Sprintf("%.2f", row.RMS),
		})
	}
	return WriteTSV(w, []string{"intermediate", "avg_util_pct", "stdev", "rms"}, rows)
}

// Fig6Data writes the improvement-vs-set-size curves with CI bounds.
func Fig6Data(w io.Writer, r experiment.Fig6Result) error {
	var rows [][]string
	for _, c := range r.Curves {
		for i, k := range c.Sizes {
			lo, hi := "", ""
			if i < len(c.ImprovementCI) {
				lo = fmt.Sprintf("%.2f", c.ImprovementCI[i].Lo)
				hi = fmt.Sprintf("%.2f", c.ImprovementCI[i].Hi)
			}
			rows = append(rows, []string{
				strings.ReplaceAll(c.Client, " ", "_"),
				fmt.Sprintf("%d", k),
				fmt.Sprintf("%.2f", c.AvgImprovement[i]),
				lo, hi,
				fmt.Sprintf("%.3f", c.Utilization[i]),
			})
		}
	}
	return WriteTSV(w, []string{"client", "set_size", "avg_improvement_pct", "ci_lo", "ci_hi", "utilization"}, rows)
}

// Table2Data writes each client's top-3 intermediates.
func Table2Data(w io.Writer, r experiment.Table2Result) error {
	var rows [][]string
	for _, row := range r.Rows {
		for rank, u := range row.Top {
			rows = append(rows, []string{
				strings.ReplaceAll(row.Client, " ", "_"),
				fmt.Sprintf("%d", rank+1),
				strings.ReplaceAll(u.Inter, " ", "_"),
				fmt.Sprintf("%.3f", u.Utilization),
			})
		}
	}
	return WriteTSV(w, []string{"client", "rank", "intermediate", "utilization"}, rows)
}

// Table3Data writes the utilization-improvement pairs.
func Table3Data(w io.Writer, r experiment.Table3Result) error {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			strings.ReplaceAll(row.Inter, " ", "_"),
			fmt.Sprintf("%.2f", row.Utilization),
			fmt.Sprintf("%.2f", row.Improvement),
			fmt.Sprintf("%d", row.Chosen),
			fmt.Sprintf("%d", row.Offered),
		})
	}
	return WriteTSV(w, []string{"intermediate", "utilization_pct", "improvement_pct", "chosen", "offered"}, rows)
}

// Table1Data writes the penalty rows.
func Table1Data(w io.Writer, r experiment.Table1Result) error {
	rows := make([][]string, 0, 3)
	for _, row := range []experiment.PenaltyRow{r.All, r.MedLow, r.LowVar} {
		rows = append(rows, []string{
			strings.ReplaceAll(row.Filter, " ", "_"),
			fmt.Sprintf("%.4f", row.PenaltyPoints),
			fmt.Sprintf("%.2f", row.AvgPenalty),
			fmt.Sprintf("%.2f", row.StdDev),
			fmt.Sprintf("%.2f", row.Max),
		})
	}
	return WriteTSV(w, []string{"filter", "penalty_points", "avg_penalty", "stdev", "max"}, rows)
}
