package report

import (
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/stats"
)

func TestTableAlignment(t *testing.T) {
	var b strings.Builder
	Table(&b, []string{"A", "Long header"}, [][]string{
		{"x", "1"},
		{"yyyy", "22"},
	})
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	if !strings.Contains(lines[0], "A") || !strings.Contains(lines[0], "Long header") {
		t.Fatalf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("separator missing: %q", lines[1])
	}
}

func TestHistogramRendering(t *testing.T) {
	h := stats.NewHistogram(0, 100, 10)
	h.AddAll([]float64{-5, 5, 5, 15, 200})
	var b strings.Builder
	Histogram(&b, h, 20)
	out := b.String()
	if !strings.Contains(out, "#") {
		t.Fatal("no bars rendered")
	}
	if !strings.Contains(out, "< min") || !strings.Contains(out, "> max") {
		t.Fatal("under/overflow rows missing")
	}
}

func TestHistogramEmpty(t *testing.T) {
	var b strings.Builder
	Histogram(&b, stats.NewHistogram(0, 10, 5), 20)
	if !strings.Contains(b.String(), "empty") {
		t.Fatal("empty histogram not flagged")
	}
}

func TestLineChart(t *testing.T) {
	var b strings.Builder
	Line(&b, []float64{1, 2, 3, 4}, []float64{1, 3, 2, 4}, 4, "y")
	out := b.String()
	if strings.Count(out, "*") != 4 {
		t.Fatalf("expected 4 points, got output:\n%s", out)
	}
	var empty strings.Builder
	Line(&empty, nil, nil, 4, "y")
	if !strings.Contains(empty.String(), "no data") {
		t.Fatal("empty series not flagged")
	}
}

func TestLineFlatSeries(t *testing.T) {
	var b strings.Builder
	Line(&b, []float64{1, 2}, []float64{5, 5}, 3, "y")
	if !strings.Contains(b.String(), "*") {
		t.Fatal("flat series should still render points")
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	// A tiny end-to-end render over real experiment results: every
	// renderer must produce non-empty output containing its title.
	study := experiment.RunStudy(experiment.StudyParams{
		Seed: 5, TransfersPerClient: 6, Servers: []string{"eBay"},
	})
	checks := []struct {
		name   string
		render func(b *strings.Builder)
	}{
		{"Figure 1", func(b *strings.Builder) { Fig1(b, experiment.Fig1(study)) }},
		{"Figure 2", func(b *strings.Builder) { Fig2(b, experiment.Fig2(study, nil)) }},
		{"Table I", func(b *strings.Builder) { Table1(b, experiment.Table1(study)) }},
		{"Figure 4", func(b *strings.Builder) { Fig4(b, experiment.Fig4(study, 2)) }},
	}
	for _, c := range checks {
		var b strings.Builder
		c.render(&b)
		if !strings.Contains(b.String(), c.name) {
			t.Errorf("%s: title missing from output", c.name)
		}
		if len(b.String()) < 40 {
			t.Errorf("%s: output suspiciously short", c.name)
		}
	}
}

func TestAblationRender(t *testing.T) {
	var b strings.Builder
	Ablation(&b, "probe size", []experiment.AblationPoint{
		{Label: "x=10000", AvgImprovement: 12.5, Utilization: 0.4, PenaltyFrac: 0.2},
	})
	out := b.String()
	if !strings.Contains(out, "probe size") || !strings.Contains(out, "x=10000") {
		t.Fatalf("ablation render missing fields:\n%s", out)
	}
}

func TestRemainingRenderers(t *testing.T) {
	var b strings.Builder

	Fig3(&b, experiment.Fig3Result{
		Clients: []experiment.Fig3Client{{
			Client: "Korea", Slope: -120.5, R2: 0.4,
			Points: []experiment.Fig3Point{{DirectTp: 1e6, Improvement: 50}},
		}},
		MeanSlope:        -120.5,
		FractionNegative: 1,
	})
	if !strings.Contains(b.String(), "Figure 3") || !strings.Contains(b.String(), "-120.5") {
		t.Errorf("fig3 render:\n%s", b.String())
	}

	b.Reset()
	Fig5(&b, experiment.Fig5Result{
		Rows:       []experiment.Fig5Row{{Inter: "MIT", Average: 40, Stdev: 10, RMS: 41}},
		OverallAvg: 40,
	})
	if !strings.Contains(b.String(), "Figure 5") || !strings.Contains(b.String(), "MIT") {
		t.Errorf("fig5 render:\n%s", b.String())
	}

	b.Reset()
	Fig6(&b, experiment.Fig6Result{Curves: []experiment.Fig6Curve{{
		Client:         "Duke (client)",
		Sizes:          []int{1, 10, 35},
		AvgImprovement: []float64{15, 42, 45},
		ImprovementCI: []stats.CI{
			{Lo: 12, Hi: 18, Resample: 100},
			{Lo: 39, Hi: 45, Resample: 100},
			{Lo: 42, Hi: 48, Resample: 100},
		},
		Utilization: []float64{0.5, 0.9, 0.95},
	}}})
	out := b.String()
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "knee") {
		t.Errorf("fig6 render:\n%s", out)
	}
	if !strings.Contains(out, "[39.0, 45.0]") {
		t.Errorf("fig6 CI missing:\n%s", out)
	}

	b.Reset()
	Table2(&b, experiment.Table2Result{
		Rows: []experiment.Table2Row{{
			Client: "Korea",
			Top:    []experiment.InterUtil{{Inter: "MIT", Utilization: 0.8}},
		}},
		OverlapCount: map[string]int{"MIT": 5},
	})
	if !strings.Contains(b.String(), "Table II") || !strings.Contains(b.String(), "MIT (80%)") {
		t.Errorf("table2 render:\n%s", b.String())
	}

	b.Reset()
	Table3(&b, experiment.Table3Result{
		Client:    "Duke (client)",
		Rows:      []experiment.Table3Row{{Inter: "MIT", Utilization: 84, Improvement: 53, Chosen: 10, Offered: 12}},
		PearsonR:  0.56,
		SpearmanR: 0.63,
	})
	if !strings.Contains(b.String(), "Table III") || !strings.Contains(b.String(), "0.63") {
		t.Errorf("table3 render:\n%s", b.String())
	}

	b.Reset()
	Adaptive(&b, []experiment.AdaptiveResult{{
		Client: "Berlin", OneShot: 2.4e6, Adaptive: 2.1e6,
		OneShotCV: 0.32, AdaptiveCV: 0.24, MeanSwitches: 0.17,
	}})
	if !strings.Contains(b.String(), "adaptive") || !strings.Contains(b.String(), "Berlin") {
		t.Errorf("adaptive render:\n%s", b.String())
	}
}
