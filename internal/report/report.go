// Package report renders the experiment results as terminal text: aligned
// tables, horizontal-bar histograms, and line charts, one renderer per
// paper artifact. All output goes to an io.Writer so the CLI, tests, and
// examples share the same rendering.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/experiment"
	"repro/internal/stats"
)

// Table writes an aligned text table with a header row.
func Table(w io.Writer, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}

// Histogram renders h as a horizontal bar chart, collapsing empty leading
// and trailing bins and scaling bars to width columns.
func Histogram(w io.Writer, h *stats.Histogram, width int) {
	if width <= 0 {
		width = 50
	}
	lo, hi := 0, len(h.Bins)-1
	for lo < len(h.Bins) && h.Bins[lo] == 0 {
		lo++
	}
	for hi >= 0 && h.Bins[hi] == 0 {
		hi--
	}
	if lo > hi {
		fmt.Fprintln(w, "  (empty histogram)")
		return
	}
	var maxCount int64 = 1
	for _, c := range h.Bins[lo : hi+1] {
		if c > maxCount {
			maxCount = c
		}
	}
	if h.Underflow > 0 {
		fmt.Fprintf(w, "  %9s  %6d\n", "< min", h.Underflow)
	}
	for i := lo; i <= hi; i++ {
		bar := int(h.Bins[i] * int64(width) / maxCount)
		fmt.Fprintf(w, "  %8.1f  %6d  %s\n", h.BinCenter(i), h.Bins[i], strings.Repeat("#", bar))
	}
	if h.Overflow > 0 {
		fmt.Fprintf(w, "  %9s  %6d\n", "> max", h.Overflow)
	}
}

// Line renders an (x, y) series as an ASCII chart with height rows.
func Line(w io.Writer, xs []float64, ys []float64, height int, yLabel string) {
	if len(xs) == 0 || len(xs) != len(ys) {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	if height <= 0 {
		height = 10
	}
	minY, maxY := ys[0], ys[0]
	for _, y := range ys {
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	if maxY == minY {
		maxY = minY + 1
	}
	width := len(xs)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for i, y := range ys {
		r := int((maxY - y) / (maxY - minY) * float64(height-1))
		grid[r][i] = '*'
	}
	fmt.Fprintf(w, "  %s (%.1f .. %.1f)\n", yLabel, minY, maxY)
	for _, row := range grid {
		fmt.Fprintf(w, "  |%s\n", string(row))
	}
	fmt.Fprintf(w, "  +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "  x: %.0f .. %.0f\n", xs[0], xs[len(xs)-1])
}

// Fig1 renders the Figure 1 report.
func Fig1(w io.Writer, r experiment.Fig1Result) {
	fmt.Fprintln(w, "Figure 1 — Histogram of throughput improvements over all clients")
	fmt.Fprintf(w, "  samples=%d  avg=%.1f%%  median=%.1f%%  penalties=%.0f%%  in[0,100]=%.0f%%  utilization=%.0f%%\n",
		r.Summary.N, r.Summary.Mean, r.Summary.Median,
		r.FracNegative*100, r.FracZeroToHundred*100, r.Utilization*100)
	fmt.Fprintln(w, "  paper:      avg=49%  median=37%  penalties=12%  in[0,100]=84%")
	Histogram(w, r.Hist, 50)
	if len(r.Sites) > 0 {
		fmt.Fprintln(w, "  Average improvement per site (paper: 33-49%):")
		for _, s := range r.Sites {
			fmt.Fprintf(w, "    %-10s %6.1f%%\n", s, r.PerSiteAvg[s])
		}
	}
}

// Fig2 renders the per-client histograms.
func Fig2(w io.Writer, r experiment.Fig2Result) {
	fmt.Fprintln(w, "Figure 2 — Per-client improvement histograms")
	for _, c := range r.Clients {
		s := r.Summary[c]
		fmt.Fprintf(w, "  %s: n=%d avg=%.1f%% median=%.1f%%\n", c, s.N, s.Mean, s.Median)
		Histogram(w, r.Hists[c], 40)
	}
}

// Table1 renders the penalty statistics table.
func Table1(w io.Writer, r experiment.Table1Result) {
	fmt.Fprintln(w, "Table I — Penalty statistics (penalty = (direct/selected - 1) x 100)")
	rows := [][]string{}
	for _, row := range []experiment.PenaltyRow{r.All, r.MedLow, r.LowVar} {
		rows = append(rows, []string{
			row.Filter,
			fmt.Sprintf("%.0f%%", row.PenaltyPoints*100),
			fmt.Sprintf("%.0f%%", row.AvgPenalty),
			fmt.Sprintf("%.0f%%", row.StdDev),
			fmt.Sprintf("%.0f%%", row.Max),
		})
	}
	Table(w, []string{"Filter", "Penalty Points", "Avg Penalty", "St.Dev", "Max"}, rows)
	fmt.Fprintf(w, "  paper: All 12%%/290%%/706%%/3840%%, Med-Low 8%%/43%%/71%%/356%%, Low-Var 3%%/12%%/7%%/35%%\n")
	if len(r.HighVarClients) > 0 {
		fmt.Fprintf(w, "  high-variability clients: %s\n", strings.Join(r.HighVarClients, ", "))
	}
}

// Table2 renders the per-client top-3 intermediates.
func Table2(w io.Writer, r experiment.Table2Result) {
	fmt.Fprintln(w, "Table II — Clients and their top three intermediate nodes (utilizations)")
	rows := [][]string{}
	for _, row := range r.Rows {
		cells := []string{row.Client}
		for _, u := range row.Top {
			cells = append(cells, fmt.Sprintf("%s (%.0f%%)", u.Inter, u.Utilization*100))
		}
		for len(cells) < 4 {
			cells = append(cells, "-")
		}
		rows = append(rows, cells)
	}
	Table(w, []string{"Client", "First", "Second", "Third"}, rows)

	type ov struct {
		name  string
		count int
	}
	var ovs []ov
	for n, c := range r.OverlapCount {
		ovs = append(ovs, ov{n, c})
	}
	sort.Slice(ovs, func(i, j int) bool {
		if ovs[i].count != ovs[j].count {
			return ovs[i].count > ovs[j].count
		}
		return ovs[i].name < ovs[j].name
	})
	fmt.Fprint(w, "  most-shared intermediates:")
	for i, o := range ovs {
		if i == 5 {
			break
		}
		fmt.Fprintf(w, " %s(%d)", o.name, o.count)
	}
	fmt.Fprintln(w)
}

// Fig3 renders the improvement-vs-throughput trends.
func Fig3(w io.Writer, r experiment.Fig3Result) {
	fmt.Fprintln(w, "Figure 3 — Improvement vs. direct-path throughput (top-3 intermediates per client)")
	fmt.Fprintf(w, "  mean OLS slope %.1f %%/Mbps across %d clients; %.0f%% of clients trend downward\n",
		r.MeanSlope, len(r.Clients), r.FractionNegative*100)
	fmt.Fprintln(w, "  paper: downward trends for all shown clients")
	rows := [][]string{}
	for _, c := range r.Clients {
		rows = append(rows, []string{
			c.Client,
			fmt.Sprintf("%d", len(c.Points)),
			fmt.Sprintf("%.1f", c.Slope),
			fmt.Sprintf("%.2f", c.R2),
		})
	}
	Table(w, []string{"Client", "Points", "Slope %/Mbps", "R^2"}, rows)
}

// Fig4 renders the indirect-throughput-over-time stationarity report.
func Fig4(w io.Writer, r experiment.Fig4Result) {
	fmt.Fprintln(w, "Figure 4 — Indirect path throughput vs. time")
	fmt.Fprintf(w, "  mean |trend| = %.1f%% of mean per hour (paper: no discernable trend)\n", r.MeanAbsSlopePct)
	rows := [][]string{}
	for _, s := range r.Series {
		rows = append(rows, []string{
			s.Client,
			fmt.Sprintf("%d", len(s.Tp)),
			fmt.Sprintf("%+.1f", s.SlopePerHourPct),
			fmt.Sprintf("%d", s.JumpCount),
		})
	}
	Table(w, []string{"Client", "Samples", "Trend %/hr", "Jumps"}, rows)
}

// Fig5 renders the intermediate utilization statistics.
func Fig5(w io.Writer, r experiment.Fig5Result) {
	fmt.Fprintln(w, "Figure 5 — Intermediate node utilization across all clients")
	fmt.Fprintf(w, "  overall average utilization = %.1f%% (paper: 45%%)\n", r.OverallAvg)
	rows := [][]string{}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Inter,
			fmt.Sprintf("%.1f", row.Average),
			fmt.Sprintf("%.1f", row.Stdev),
			fmt.Sprintf("%.1f", row.RMS),
		})
	}
	Table(w, []string{"Intermediate", "Average %", "Stdev", "RMS"}, rows)
}

// Fig6 renders the random-set-size sweep.
func Fig6(w io.Writer, r experiment.Fig6Result) {
	fmt.Fprintln(w, "Figure 6 — Avg. throughput improvement vs. random set size")
	for _, c := range r.Curves {
		fmt.Fprintf(w, "  %s (knee at %d nodes; paper: ~10 of 35):\n", c.Client, c.KneeSize())
		xs := make([]float64, len(c.Sizes))
		for i, s := range c.Sizes {
			xs[i] = float64(s)
		}
		Line(w, xs, c.AvgImprovement, 8, "avg improvement %")
		for i, s := range c.Sizes {
			ci := ""
			if i < len(c.ImprovementCI) && c.ImprovementCI[i].Resample > 0 {
				ci = fmt.Sprintf("  [%.1f, %.1f]", c.ImprovementCI[i].Lo, c.ImprovementCI[i].Hi)
			}
			fmt.Fprintf(w, "    k=%-3d avg=%6.1f%%  util=%.0f%%%s\n", s, c.AvgImprovement[i], c.Utilization[i]*100, ci)
		}
	}
}

// Table3 renders the utilization-vs-improvement correlation table.
func Table3(w io.Writer, r experiment.Table3Result) {
	fmt.Fprintf(w, "Table III — Intermediate utilizations and improvements (%s)\n", r.Client)
	fmt.Fprintf(w, "  Pearson r=%.2f  Spearman rho=%.2f (paper: positive, imperfect)\n", r.PearsonR, r.SpearmanR)
	rows := [][]string{}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Inter,
			fmt.Sprintf("%.1f", row.Utilization),
			fmt.Sprintf("%.1f", row.Improvement),
			fmt.Sprintf("%d/%d", row.Chosen, row.Offered),
		})
	}
	Table(w, []string{"Node", "Utilization %", "Improvement %", "Chosen/Offered"}, rows)
}

// Ablation renders one ablation sweep.
func Ablation(w io.Writer, title string, pts []experiment.AblationPoint) {
	fmt.Fprintln(w, "Ablation — "+title)
	rows := [][]string{}
	for _, p := range pts {
		rows = append(rows, []string{
			p.Label,
			fmt.Sprintf("%.1f", p.AvgImprovement),
			fmt.Sprintf("%.0f%%", p.Utilization*100),
			fmt.Sprintf("%.0f%%", p.PenaltyFrac*100),
		})
	}
	Table(w, []string{"Config", "Avg Improvement %", "Utilization", "Penalties"}, rows)
}

// Adaptive renders the one-shot vs adaptive-downloader comparison.
func Adaptive(w io.Writer, results []experiment.AdaptiveResult) {
	fmt.Fprintln(w, "Extension — one-shot selection vs adaptive mid-transfer switching")
	rows := [][]string{}
	for _, r := range results {
		rows = append(rows, []string{
			r.Client,
			fmt.Sprintf("%.2f", r.OneShot/1e6),
			fmt.Sprintf("%.2f", r.Adaptive/1e6),
			fmt.Sprintf("%.2f", r.OneShotCV),
			fmt.Sprintf("%.2f", r.AdaptiveCV),
			fmt.Sprintf("%.2f", r.MeanSwitches),
		})
	}
	Table(w, []string{"Client", "One-shot Mb/s", "Adaptive Mb/s", "One-shot CV", "Adaptive CV", "Switches/round"}, rows)
	fmt.Fprintln(w, "  paper (conclusions): indirect routing can also decrease throughput variability")
}

// SeedSweep renders the seed-robustness report.
func SeedSweep(w io.Writer, r experiment.SeedSweepResult) {
	fmt.Fprintln(w, "Robustness — Section 3 headline statistics across seeds")
	rows := [][]string{}
	for _, pt := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", pt.Seed),
			fmt.Sprintf("%.1f", pt.AvgImprovement),
			fmt.Sprintf("%.1f", pt.MedianImprovement),
			fmt.Sprintf("%.0f%%", pt.PenaltyFrac*100),
			fmt.Sprintf("%.0f%%", pt.Utilization*100),
			fmt.Sprintf("%d", pt.Samples),
		})
	}
	Table(w, []string{"Seed", "Avg Imp %", "Median %", "Penalties", "Utilization", "Samples"}, rows)
	fmt.Fprintf(w, "  across seeds: avg %.1f±%.1f  median %.1f±%.1f  penalties %.0f±%.0f%%  utilization %.0f±%.0f%%\n",
		r.AvgMean, r.AvgStd, r.MedianMean, r.MedianStd,
		r.PenaltyMean*100, r.PenaltyStd*100, r.UtilMean*100, r.UtilStd*100)
	fmt.Fprintf(w, "  pairwise KS over improvement distributions: max D=%.3f, min p=%.3f\n",
		r.MaxKSD, r.MinKSPValue)
}

// Monitored renders the probing-vs-monitoring comparison.
func Monitored(w io.Writer, results []experiment.MonitoredResult) {
	fmt.Fprintln(w, "Extension — in-band probing vs background monitoring (RON-style)")
	rows := [][]string{}
	for _, r := range results {
		rows = append(rows, []string{
			r.Client,
			fmt.Sprintf("%.1f", r.ProbingAvg),
			fmt.Sprintf("%.1f", r.MonitoredAvg),
			fmt.Sprintf("%.0f%%", r.ProbingPenalties*100),
			fmt.Sprintf("%.0f%%", r.MonitoredPenalties*100),
			fmt.Sprintf("%d/%d", r.Disagreements, r.Rounds),
		})
	}
	Table(w, []string{"Client", "Probing Imp %", "Monitored Imp %", "Probing Pen", "Monitored Pen", "Disagree"}, rows)
	fmt.Fprintln(w, "  probing pays a per-transfer race for fresh data; monitoring acts instantly on a table")
}

// Multipath renders the selection-vs-striping comparison.
func Multipath(w io.Writer, results []experiment.MultipathResult) {
	fmt.Fprintln(w, "Extension — single-path selection vs multipath striping (Bullet-style)")
	rows := [][]string{}
	for _, r := range results {
		shared := ""
		if r.SharedBottleneck {
			shared = "yes"
		}
		rows = append(rows, []string{
			r.Client,
			fmt.Sprintf("%.1f", r.SelectAvg),
			fmt.Sprintf("%.1f", r.StripeAvg),
			fmt.Sprintf("%.0f%%", r.StripeSpread*100),
			shared,
		})
	}
	Table(w, []string{"Client", "Selection Imp %", "Striping Imp %", "Relay Share", "Shared Bottleneck"}, rows)
	fmt.Fprintln(w, "  striping aggregates path bandwidth until the client's access link binds")
}

// Validate renders the model-validation sweep.
func Validate(w io.Writer, r experiment.ValidateResult) {
	fmt.Fprintln(w, "Validation — fluid TCP model vs packet-level TCP Reno")
	rows := [][]string{}
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", p.BottleneckMbps),
			fmt.Sprintf("%.0f", p.RTTms),
			fmt.Sprintf("%d", p.Bytes),
			fmt.Sprintf("%.2f", p.FluidSeconds),
			fmt.Sprintf("%.2f", p.PacketSeconds),
			fmt.Sprintf("%.2f", p.Ratio),
			p.Note,
		})
	}
	Table(w, []string{"Mb/s", "RTT ms", "Bytes", "Fluid s", "Packet s", "Ratio", "Note"}, rows)
	fmt.Fprintf(w, "  timing ratios within [%.2f, %.2f]; Jain fairness: 2 flows %.3f, 4 flows %.3f\n",
		r.RatioMin, r.RatioMax, r.Fairness2, r.Fairness4)
	fmt.Fprintln(w, "  (the evaluation's fluid simulator assumes these hold)")
}

// HealthRank renders the health-ranked vs random candidate-set
// comparison.
func HealthRank(w io.Writer, r experiment.HealthRankResult) {
	fmt.Fprintf(w, "Extension — registry health-ranked K=%d vs uniform random K=%d (%s)\n", r.K, r.K, r.Client)
	rows := [][]string{{"health-ranked", fmt.Sprintf("%.1f", r.RankedAvg)}}
	for i, avg := range r.RandomAvgs {
		rows = append(rows, []string{fmt.Sprintf("random draw %d", i+1), fmt.Sprintf("%.1f", avg)})
	}
	rows = append(rows, []string{"random mean", fmt.Sprintf("%.1f", r.RandomAvg)})
	Table(w, []string{"Candidate set", "Improvement %"}, rows)
	fmt.Fprintf(w, "  ranked set: %v\n", r.Ranked)
	fmt.Fprintln(w, "  telemetry concentrates the probe budget on recently-delivering paths")
}

// CacheEgress renders the relay-cache origin-egress comparison.
func CacheEgress(w io.Writer, r experiment.CacheEgressResult) {
	fmt.Fprintf(w, "Extension — relay cache origin egress (%d clients x %d objects x %d KB, live loopback TCP)\n",
		r.Clients, r.Objects, r.ObjectSize>>10)
	Table(w, []string{"Relay", "Origin egress KB"}, [][]string{
		{"no cache", fmt.Sprintf("%d", r.BaselineEgress>>10)},
		{"cached", fmt.Sprintf("%d", r.CachedEgress>>10)},
	})
	s := r.CacheStats
	fmt.Fprintf(w, "  egress reduction %.1fx; cache: %d hits, %d shared fills, %d fills, hit rate %.2f, warmth %.2f\n",
		r.Reduction, s.Hits, s.SharedFills, s.Fills, s.HitRate(), s.Warmth())
	fmt.Fprintln(w, "  each object leaves the origin once; every later request is served from relay memory")
}

// ObsOverhead renders the observability-plane pricing: bare relay vs
// fully instrumented relay on the same interleaved loopback workload.
func ObsOverhead(w io.Writer, r experiment.ObsOverheadResult) {
	fmt.Fprintf(w, "Extension — observability overhead (%d clients x %d reqs x %d KB, %d interleaved rounds, live loopback TCP)\n",
		r.Clients, r.RequestsPerRound, r.ObjectSize>>10, r.Rounds)
	Table(w, []string{"Relay", "Best round s", "Median s", "Requests/s"}, [][]string{
		{"bare (counters only)", fmt.Sprintf("%.3f", r.BareMinSecs),
			fmt.Sprintf("%.3f", r.BareMedianSecs), fmt.Sprintf("%.0f", r.BareRPS)},
		{"full plane (health+SLO+traces)", fmt.Sprintf("%.3f", r.ObservedMinSecs),
			fmt.Sprintf("%.3f", r.ObservedMedianSecs), fmt.Sprintf("%.0f", r.ObservedRPS)},
		{"+ flight wide-event ring", "-",
			fmt.Sprintf("%.3f", r.FlightMedianSecs), "-"},
	})
	fmt.Fprintf(w, "  overhead %.2f%% (trimmed CPU-time ratio, mirrored blocks); tail retention kept %d traces, dropped %d; %d upstream paths tracked\n",
		100*r.OverheadFrac, r.KeptTraces, r.DroppedTraces, r.Paths)
	fmt.Fprintf(w, "  flight always-on %.2f%% = ring increment %.2f%% + profiler cycle %.3fs CPU amortised over %.0fs cadence (%.2f%%); %d wide events recorded\n",
		100*r.AlwaysOnOverheadFrac, 100*r.FlightOverheadFrac,
		r.ProfilerCycleCPUSecs, r.ProfilerCadenceSecs, 100*r.ProfilerOverheadFrac, r.FlightEvents)
	fmt.Fprintln(w, "  the full observability plane must cost so little it never gets turned off")
}

// RegistryLoad renders the registry scale comparison: single-mutex vs
// sharded REGISTER tail latency under concurrent full-table scans, and
// delta-sync vs full-list bytes on the wire.
func RegistryLoad(w io.Writer, r experiment.RegistryLoadResult) {
	fmt.Fprintf(w, "Extension — registry at scale (%d relays, %d REGISTERs open-loop @ %.0f/s, live loopback TCP)\n",
		r.Relays, r.Registrations, r.TargetRate)
	row := func(label string, c experiment.RegistryLoadConfig) []string {
		return []string{
			label, fmt.Sprintf("%d", c.Shards),
			fmt.Sprintf("%.2f", c.RegisterP50Ms), fmt.Sprintf("%.2f", c.RegisterP99Ms),
			fmt.Sprintf("%.1f", c.ListP99Ms), fmt.Sprintf("%.1f", c.DeltaP99Ms),
			fmt.Sprintf("%.0f", c.AchievedRate),
		}
	}
	Table(w, []string{"Config", "Shards", "REGISTER p50 ms", "REGISTER p99 ms", "LISTH p99 ms", "LISTD p99 ms", "ops/s"}, [][]string{
		row("single mutex", r.Baseline),
		row("sharded", r.Sharded),
	})
	fmt.Fprintf(w, "  REGISTER p99 speedup %.1fx; full LISTH %d bytes vs steady-state LISTD %.0f bytes/poll (%.0fx smaller)\n",
		r.P99Speedup, r.FullListBytes, r.DeltaPollBytes, r.DeltaSavings)
	fmt.Fprintln(w, "  striped locks confine scan stalls; epoch deltas make a quiet poll one EPOCH line")
}

// Chaos renders the chaos campaign scorecard: one row per injected
// fault class, with the health verdict the monitor converged to and the
// safety counters that must stay zero.
func Chaos(w io.Writer, r experiment.ChaosResult) {
	fmt.Fprintf(w, "Extension — chaos campaign (seed %d, %d fault classes: fluid sim + live loopback TCP)\n",
		r.Seed, len(r.Entries))
	rows := [][]string{}
	for _, e := range r.Entries {
		verdict := e.Verdict
		if !e.VerdictOK {
			verdict += " (WRONG)"
		}
		burn, bundles := "-", "-"
		if e.Mode == "live" {
			burn = fmt.Sprintf("%v", e.BurnAlert)
			bundles = fmt.Sprintf("%d", e.Bundles)
		}
		rows = append(rows, []string{
			e.Class, e.Mode,
			fmt.Sprintf("%d", e.Transfers), fmt.Sprintf("%d", e.Failures),
			verdict, fmt.Sprintf("%v", e.Recovered), burn, bundles,
			fmt.Sprintf("%.2f", e.MaxTransfer),
			fmt.Sprintf("%d", e.DeadlineExceeded), fmt.Sprintf("%d", e.CorruptDeliveries),
		})
	}
	Table(w, []string{"Fault", "Mode", "Xfers", "Fail", "Verdict", "Recovered", "Burn", "Bundles", "Max s", "Over-DL", "Corrupt"}, rows)
	fmt.Fprintf(w, "  verdicts ok: %v; recovered: %v; deadline overruns %d; corrupt cache serves %d\n",
		r.AllVerdictsOK, r.AllRecovered, r.TotalDeadlineExceeded, r.TotalCorruptDeliveries)
	fmt.Fprintln(w, "  every fault class must degrade the verdict it should, heal when lifted, and never wedge or corrupt a transfer")
	fmt.Fprintln(w, "  hard-failing live classes each capture exactly one rate-limited flight-recorder debug bundle")
}
