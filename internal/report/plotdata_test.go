package report

import (
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/stats"
)

func TestWriteTSV(t *testing.T) {
	var b strings.Builder
	err := WriteTSV(&b, []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "# a\tb" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "1\t2" {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestFig1Data(t *testing.T) {
	h := stats.NewHistogram(-100, 300, 4)
	h.AddAll([]float64{10, 20, 150})
	var b strings.Builder
	if err := Fig1Data(&b, experiment.Fig1Result{Hist: h}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "improvement_pct_bin") {
		t.Fatal("header missing")
	}
	if lines := strings.Count(out, "\n"); lines != 5 { // header + 4 bins
		t.Fatalf("line count = %d", lines)
	}
}

func TestFig6DataIncludesCI(t *testing.T) {
	r := experiment.Fig6Result{Curves: []experiment.Fig6Curve{{
		Client:         "Duke (client)",
		Sizes:          []int{1, 10},
		AvgImprovement: []float64{10, 40},
		ImprovementCI: []stats.CI{
			{Lo: 8, Hi: 12, Resample: 100},
			{Lo: 37, Hi: 43, Resample: 100},
		},
		Utilization: []float64{0.5, 0.9},
	}}}
	var b strings.Builder
	if err := Fig6Data(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Duke_(client)\t10\t40.00\t37.00\t43.00\t0.900") {
		t.Fatalf("row missing or malformed:\n%s", out)
	}
}

func TestPlotDataEndToEnd(t *testing.T) {
	study := experiment.RunStudy(experiment.StudyParams{
		Seed: 6, TransfersPerClient: 5, Servers: []string{"eBay"},
	})
	checks := map[string]func(*strings.Builder) error{
		"fig1":   func(b *strings.Builder) error { return Fig1Data(b, experiment.Fig1(study)) },
		"fig4":   func(b *strings.Builder) error { return Fig4Data(b, experiment.Fig4(study, 1)) },
		"table1": func(b *strings.Builder) error { return Table1Data(b, experiment.Table1(study)) },
	}
	for name, fn := range checks {
		var b strings.Builder
		if err := fn(&b); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.HasPrefix(b.String(), "# ") {
			t.Fatalf("%s: missing header comment", name)
		}
		if len(strings.Split(strings.TrimSpace(b.String()), "\n")) < 2 {
			t.Fatalf("%s: no data rows", name)
		}
	}
}

func TestTableDataWriters(t *testing.T) {
	t2 := experiment.Table2Result{Rows: []experiment.Table2Row{{
		Client: "Korea",
		Top:    []experiment.InterUtil{{Inter: "Notre Dame", Utilization: 0.5}},
	}}}
	var b strings.Builder
	if err := Table2Data(&b, t2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Korea\t1\tNotre_Dame\t0.500") {
		t.Fatalf("table2 row wrong:\n%s", b.String())
	}

	t3 := experiment.Table3Result{Rows: []experiment.Table3Row{{
		Inter: "MIT", Utilization: 84, Improvement: 53.4, Chosen: 152, Offered: 181,
	}}}
	b.Reset()
	if err := Table3Data(&b, t3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "MIT\t84.00\t53.40\t152\t181") {
		t.Fatalf("table3 row wrong:\n%s", b.String())
	}

	f3 := experiment.Fig3Result{Clients: []experiment.Fig3Client{{
		Client: "Korea",
		Points: []experiment.Fig3Point{{DirectTp: 1e6, Improvement: 42}},
	}}}
	b.Reset()
	if err := Fig3Data(&b, f3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Korea\t1.0000\t42.00") {
		t.Fatalf("fig3 row wrong:\n%s", b.String())
	}

	f5 := experiment.Fig5Result{Rows: []experiment.Fig5Row{{
		Inter: "Georgia Tech", Average: 36.5, Stdev: 12.1, RMS: 38.4,
	}}}
	b.Reset()
	if err := Fig5Data(&b, f5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Georgia_Tech\t36.50\t12.10\t38.40") {
		t.Fatalf("fig5 row wrong:\n%s", b.String())
	}
}
