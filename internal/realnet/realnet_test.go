package realnet

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/relay"
	"repro/internal/shaper"
)

// testbed spins up one origin and two relays on loopback with shaped
// client paths: the direct path is slow, relay "fast" is quick, relay
// "slow" is slower than direct.
func testbed(t *testing.T) (*Transport, func()) {
	t.Helper()
	origin := relay.NewOrigin()
	origin.Put("big.bin", 2_000_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	fast := &relay.Relay{}
	fl, err := fast.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	slow := &relay.Relay{}
	sl, err := slow.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	d := shaper.NewDialer()
	d.SetProfile(ol.Addr().String(), shaper.PathProfile{DownloadBps: 4e6})  // direct: 4 Mb/s
	d.SetProfile(fl.Addr().String(), shaper.PathProfile{DownloadBps: 16e6}) // fast relay
	d.SetProfile(sl.Addr().String(), shaper.PathProfile{DownloadBps: 1e6})  // slow relay

	tr := &Transport{
		Servers: map[string]string{"origin": ol.Addr().String()},
		Relays: map[string]string{
			"fast": fl.Addr().String(),
			"slow": sl.Addr().String(),
		},
		Dial:   d.Dial,
		Verify: true,
	}
	cleanup := func() {
		ol.Close()
		fl.Close()
		sl.Close()
	}
	return tr, cleanup
}

func TestDirectTransfer(t *testing.T) {
	tr, cleanup := testbed(t)
	defer cleanup()
	obj := core.Object{Server: "origin", Name: "big.bin", Size: 2_000_000}
	h := tr.Start(obj, core.Path{}, 0, 100_000)
	tr.Wait(h)
	res := h.Result()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Throughput() <= 0 {
		t.Fatal("no throughput measured")
	}
}

func TestSelectionPicksFastRelay(t *testing.T) {
	tr, cleanup := testbed(t)
	defer cleanup()
	obj := core.Object{Server: "origin", Name: "big.bin", Size: 600_000}
	out := core.SelectAndFetch(tr, obj, []string{"slow", "fast"}, core.Config{ProbeBytes: 100_000})
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if out.Selected.Via != "fast" {
		t.Fatalf("selected %v, want via fast (16 Mb/s vs 4 direct vs 1 slow)", out.Selected)
	}
	if out.Throughput() <= 0 {
		t.Fatal("no overall throughput")
	}
}

func TestSelectionPrefersDirectOverSlowRelay(t *testing.T) {
	tr, cleanup := testbed(t)
	defer cleanup()
	obj := core.Object{Server: "origin", Name: "big.bin", Size: 400_000}
	out := core.SelectAndFetch(tr, obj, []string{"slow"}, core.Config{ProbeBytes: 100_000})
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if !out.Selected.IsDirect() {
		t.Fatalf("selected %v, want direct (4 Mb/s vs 1 Mb/s relay)", out.Selected)
	}
}

func TestContentVerification(t *testing.T) {
	tr, cleanup := testbed(t)
	defer cleanup()
	obj := core.Object{Server: "origin", Name: "big.bin", Size: 2_000_000}
	h := tr.Start(obj, core.Path{Via: "fast"}, 50_000, 75_000)
	tr.Wait(h)
	if err := h.Result().Err; err != nil {
		t.Fatalf("verified relay fetch failed: %v", err)
	}
}

func TestUnknownServerAndRelay(t *testing.T) {
	tr, cleanup := testbed(t)
	defer cleanup()
	h := tr.Start(core.Object{Server: "nope", Name: "x", Size: 10}, core.Path{}, 0, 10)
	tr.Wait(h)
	if h.Result().Err == nil {
		t.Fatal("unknown server not reported")
	}
	h = tr.Start(core.Object{Server: "origin", Name: "big.bin", Size: 10}, core.Path{Via: "ghost"}, 0, 10)
	tr.Wait(h)
	if h.Result().Err == nil {
		t.Fatal("unknown relay not reported")
	}
}

func TestShortObjectError(t *testing.T) {
	tr, cleanup := testbed(t)
	defer cleanup()
	// Range beyond the object must surface an error, not hang.
	h := tr.Start(core.Object{Server: "origin", Name: "big.bin", Size: 2_000_000}, core.Path{}, 1_999_999, 500)
	done := make(chan struct{})
	go func() {
		tr.Wait(h)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("wait hung on bad range")
	}
	if h.Result().Err == nil {
		t.Fatal("expected range error")
	}
}

func TestNowMonotone(t *testing.T) {
	tr, cleanup := testbed(t)
	defer cleanup()
	a := tr.Now()
	time.Sleep(10 * time.Millisecond)
	b := tr.Now()
	if b <= a {
		t.Fatalf("clock not monotone: %v -> %v", a, b)
	}
}

func TestConcurrentProbesWallClock(t *testing.T) {
	tr, cleanup := testbed(t)
	defer cleanup()
	obj := core.Object{Server: "origin", Name: "big.bin", Size: 2_000_000}
	start := time.Now()
	probes := core.Probe(tr, obj, 50_000, []string{"fast", "slow"})
	elapsed := time.Since(start)
	for _, p := range probes {
		if p.Err != nil {
			t.Fatalf("probe %v failed: %v", p.Path, p.Err)
		}
	}
	// Probes run concurrently: total time should be near the slowest
	// single probe (~50KB at 1 Mb/s = 0.4s), not the sum (> 0.5s + ...).
	if elapsed > 3*time.Second {
		t.Fatalf("probe race took %v; not concurrent?", elapsed)
	}
}

func TestStat(t *testing.T) {
	tr, cleanup := testbed(t)
	defer cleanup()
	size, err := tr.Stat("origin", "big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if size != 2_000_000 {
		t.Fatalf("size = %d, want 2000000", size)
	}
	if _, err := tr.Stat("nope", "big.bin"); err == nil {
		t.Fatal("unknown server should fail")
	}
	if _, err := tr.Stat("origin", "ghost"); err == nil {
		t.Fatal("unknown object should fail")
	}
}

func TestMiniCampaignSelectionTracksConditions(t *testing.T) {
	// A small real-TCP measurement campaign: the direct path's emulated
	// bandwidth flips between fast and slow across rounds; the selection
	// must follow it. This exercises the paper's whole loop (probe,
	// select, fetch, account) over live sockets.
	origin := relay.NewOrigin()
	origin.Put("big.bin", 500_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()
	r := &relay.Relay{}
	rl, err := r.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()

	d := shaper.NewDialer()
	d.SetProfile(rl.Addr().String(), shaper.PathProfile{DownloadBps: 4e6}) // relay fixed
	tr := &Transport{
		Servers: map[string]string{"origin": ol.Addr().String()},
		Relays:  map[string]string{"r": rl.Addr().String()},
		Dial:    d.Dial,
		Verify:  true,
	}
	obj := core.Object{Server: "origin", Name: "big.bin", Size: 500_000}
	tracker := core.NewTracker()
	for round := 0; round < 4; round++ {
		directFast := round%2 == 0
		rate := 12e6
		if !directFast {
			rate = 1e6
		}
		d.SetProfile(ol.Addr().String(), shaper.PathProfile{DownloadBps: rate})
		out := core.SelectAndFetch(tr, obj, []string{"r"}, core.Config{ProbeBytes: 150_000})
		if out.Err != nil {
			t.Fatalf("round %d: %v", round, out.Err)
		}
		tracker.Observe([]string{"r"}, out.Selected)
		if directFast && out.SelectedIndirect() {
			t.Errorf("round %d: picked relay while direct was 12 Mb/s", round)
		}
		if !directFast && !out.SelectedIndirect() {
			t.Errorf("round %d: picked direct while it was 1 Mb/s", round)
		}
	}
	if got := tracker.Utilization("r"); got != 0.5 {
		t.Fatalf("relay utilization %.2f, want 0.50", got)
	}
}

func TestWarmReuseSkipsHandshake(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("big.bin", 1_000_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()
	tr := &Transport{
		Servers: map[string]string{"origin": ol.Addr().String()},
		Verify:  true,
	}
	defer tr.Close()
	obj := core.Object{Server: "origin", Name: "big.bin", Size: 1_000_000}

	// Cold fetch opens a connection and parks it.
	h := tr.Start(obj, core.Path{}, 0, 100_000)
	tr.Wait(h)
	if err := h.Result().Err; err != nil {
		t.Fatal(err)
	}
	cold := origin.Conns.Load()
	if cold < 1 {
		t.Fatal("no connection accounted")
	}

	// Warm continuation must reuse the parked connection: the origin's
	// connection count stays flat.
	h2 := tr.StartWarm(obj, core.Path{}, 100_000, 200_000)
	tr.Wait(h2)
	if err := h2.Result().Err; err != nil {
		t.Fatal(err)
	}
	if got := origin.Conns.Load(); got != cold {
		t.Fatalf("warm fetch opened a new connection: %d -> %d", cold, got)
	}

	// A cold fetch always dials.
	h3 := tr.Start(obj, core.Path{}, 0, 50_000)
	tr.Wait(h3)
	if got := origin.Conns.Load(); got != cold+1 {
		t.Fatalf("cold fetch did not dial: %d -> %d", cold, got)
	}
}

func TestWarmReuseThroughRelay(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("big.bin", 1_000_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()
	r := &relay.Relay{}
	rl, err := r.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()
	tr := &Transport{
		Servers: map[string]string{"origin": ol.Addr().String()},
		Relays:  map[string]string{"r": rl.Addr().String()},
		Verify:  true,
	}
	defer tr.Close()
	obj := core.Object{Server: "origin", Name: "big.bin", Size: 1_000_000}
	h := tr.Start(obj, core.Path{Via: "r"}, 0, 100_000)
	tr.Wait(h)
	if err := h.Result().Err; err != nil {
		t.Fatal(err)
	}
	h2 := tr.StartWarm(obj, core.Path{Via: "r"}, 100_000, 300_000)
	tr.Wait(h2)
	if err := h2.Result().Err; err != nil {
		t.Fatal(err)
	}
	if got := r.Requests.Load(); got != 2 {
		t.Fatalf("relay handled %d requests, want 2 (both on one client conn)", got)
	}
}

func TestWarmFallsBackWhenConnStale(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("big.bin", 1_000_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tr := &Transport{
		Servers: map[string]string{"origin": ol.Addr().String()},
		Verify:  true,
	}
	defer tr.Close()
	obj := core.Object{Server: "origin", Name: "big.bin", Size: 1_000_000}
	h := tr.Start(obj, core.Path{}, 0, 50_000)
	tr.Wait(h)
	if err := h.Result().Err; err != nil {
		t.Fatal(err)
	}
	// Kill the parked connections from under the pool.
	p := tr.idlePool()
	p.mu.Lock()
	for _, list := range p.idle {
		for _, e := range list {
			e.pc.conn.Close()
		}
	}
	p.mu.Unlock()
	h2 := tr.StartWarm(obj, core.Path{}, 50_000, 50_000)
	tr.Wait(h2)
	if err := h2.Result().Err; err != nil {
		t.Fatalf("stale-connection fallback failed: %v", err)
	}
}
