package realnet

import (
	"testing"

	"repro/internal/core"
	"repro/internal/relay"
)

// cacheTestbed is one origin on loopback and a transport with a
// client-side cache, no shaping.
func cacheTestbed(t *testing.T, cacheBytes int64) (*Transport, *relay.Origin) {
	t.Helper()
	origin := relay.NewOrigin()
	origin.Put("big.bin", 2_000_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ol.Close() })
	return &Transport{
		Servers:    map[string]string{"origin": ol.Addr().String()},
		Verify:     true,
		CacheBytes: cacheBytes,
	}, origin
}

func TestClientCacheServesRepeatWithoutNetwork(t *testing.T) {
	tr, origin := cacheTestbed(t, 1<<20)
	obj := core.Object{Server: "origin", Name: "big.bin", Size: 2_000_000}

	h := tr.Start(obj, core.Path{}, 0, 128<<10)
	tr.Wait(h)
	if err := h.Result().Err; err != nil {
		t.Fatal(err)
	}
	egress := origin.BytesServed.Load()
	conns := origin.Conns.Load()

	// The same range, then sub-ranges of it: all from the cache, with the
	// origin never contacted again.
	for _, rg := range []struct{ off, n int64 }{{0, 128 << 10}, {4096, 4096}, {100_000, 20_000}} {
		h := tr.Start(obj, core.Path{}, rg.off, rg.n)
		tr.Wait(h)
		if err := h.Result().Err; err != nil {
			t.Fatalf("cached range [%d,+%d): %v", rg.off, rg.n, err)
		}
	}
	if got := origin.BytesServed.Load(); got != egress {
		t.Fatalf("cached fetches cost %d origin bytes", got-egress)
	}
	if got := origin.Conns.Load(); got != conns {
		t.Fatalf("cached fetches opened %d origin conns", got-conns)
	}
	s := tr.CacheStats()
	if s.Hits != 3 || s.Fills != 1 {
		t.Fatalf("cache counters: %+v", s)
	}
	if s.Warmth() <= 0 {
		t.Fatalf("warmth = %v after hits", s.Warmth())
	}
}

func TestClientCacheDisabledIsZeroStats(t *testing.T) {
	tr, origin := cacheTestbed(t, 0)
	obj := core.Object{Server: "origin", Name: "big.bin", Size: 2_000_000}
	for i := 0; i < 2; i++ {
		h := tr.Start(obj, core.Path{}, 0, 4096)
		tr.Wait(h)
		if err := h.Result().Err; err != nil {
			t.Fatal(err)
		}
	}
	if got := origin.Conns.Load(); got == 0 {
		t.Fatal("no origin traffic recorded")
	}
	if s := tr.CacheStats(); s.CapacityBytes != 0 || s.Lookups() != 0 {
		t.Fatalf("disabled cache reported activity: %+v", s)
	}
}

func TestClientCacheOversizedRangeStreamsUncached(t *testing.T) {
	tr, _ := cacheTestbed(t, 32<<10) // smaller than the range below
	obj := core.Object{Server: "origin", Name: "big.bin", Size: 2_000_000}
	h := tr.Start(obj, core.Path{}, 0, 64<<10)
	tr.Wait(h)
	if err := h.Result().Err; err != nil {
		t.Fatal(err)
	}
	if s := tr.CacheStats(); s.Fills != 0 || s.BytesCached != 0 {
		t.Fatalf("oversized range was teed into the cache: %+v", s)
	}
}
