// Package realnet implements core.Transport over real TCP connections,
// tying the selection engine to the relay/origin daemons. Where package
// httpsim measures virtual time on the fluid simulator, realnet measures
// wall-clock time on live sockets — the same engine code drives both,
// which is the point: the library a downstream user deploys is the one
// the experiments exercised.
//
// The transport is fully context-aware (core.ContextStarter and
// core.WarmContextStarter): cancelling a transfer's context closes the
// underlying connection, so a raced probe that lost is torn down within
// a round trip, and a transfer against a stalled relay fails at its
// deadline instead of hanging. Cold-connection failures are retried with
// exponential backoff and jitter, bounded by MaxRetries.
//
// Bodies stream through fixed 64 KB buffers — verified and counted
// chunk by chunk, never materialized — so a transfer's memory footprint
// is constant regardless of range size. Warm continuations draw from a
// bounded per-path pool of idle keep-alive connections (MaxIdlePerPath,
// IdleTTL); probes always dial cold, preserving the cold-path latency
// the paper's selection races measure.
package realnet

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/httpx"
	"repro/internal/objcache"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/relay"
)

// DefaultDialTimeout bounds connection establishment when the transport
// does not specify one.
const DefaultDialTimeout = 10 * time.Second

// DefaultMaxRetries is how many extra cold attempts a transfer makes
// after a transient failure when MaxRetries is unset.
const DefaultMaxRetries = 2

// DefaultRetryBackoff is the base backoff before the first retry; it
// doubles per attempt, with jitter, when RetryBackoff is unset.
const DefaultRetryBackoff = 50 * time.Millisecond

// Transport fetches object ranges directly from origin servers or through
// relay daemons.
type Transport struct {
	// Servers maps origin server names (core.Object.Server) to TCP
	// addresses.
	Servers map[string]string
	// Relays maps intermediate names (core.Path.Via) to relay addresses.
	Relays map[string]string
	// Dial opens client-side connections; nil means a net.Dialer. Inject
	// a shaper.Dialer to emulate heterogeneous paths on loopback.
	Dial func(network, addr string) (net.Conn, error)
	// Verify checks received bytes against the canonical synthetic
	// content and fails transfers on corruption.
	Verify bool

	// DialTimeout bounds each connection attempt (DefaultDialTimeout
	// when 0; negative disables the bound).
	DialTimeout time.Duration
	// TransferTimeout is the per-transfer deadline applied to every
	// Start whose context does not already carry an earlier one (0 = no
	// deadline). Expiry fails the transfer with core.ErrProbeTimeout and
	// closes its connection.
	TransferTimeout time.Duration
	// MaxRetries is how many extra cold attempts a transfer makes after
	// a transient dial or I/O failure (DefaultMaxRetries when 0;
	// negative disables retry). HTTP status errors are never retried —
	// the server answered, repeating the question won't change it.
	MaxRetries int
	// RetryBackoff is the base delay before the first retry
	// (DefaultRetryBackoff when 0); it doubles per attempt with ±50%
	// jitter, capped at maxRetryDelay, so synchronized clients do not
	// stampede a recovering node.
	RetryBackoff time.Duration

	// MaxIdlePerPath bounds the idle keep-alive connections parked per
	// path (DefaultMaxIdlePerPath when 0; negative disables pooling).
	// Probes always dial cold — the race measures cold-path latency, as
	// in the paper — so only warm continuations draw from the pool.
	MaxIdlePerPath int
	// IdleTTL is how long a parked connection may sit idle before the
	// pool evicts it (DefaultIdleTTL when 0; negative disables expiry).
	IdleTTL time.Duration

	// CacheBytes, when positive, gives the client a bounded range-aware
	// object cache: every streamed range also fills the cache (keyed by
	// server/name, position-exact), and a later fetch fully covered by
	// cached spans completes without touching the network at all. Zero
	// (the default) disables caching and leaves the transfer path —
	// including its allocation profile — untouched.
	CacheBytes int64
	// CacheTTL expires cached spans this long after their fill; 0 keeps
	// them until evicted. Only meaningful with CacheBytes set.
	CacheTTL time.Duration

	// Observer receives transport-level events: RetryScheduled for every
	// cold re-attempt (with the chosen backoff) and TransferAborted for
	// every context-death teardown. Nil disables emission. The engine's
	// probe/selection events are configured separately (core.Config);
	// pointing both at the same Metrics collector gives one unified view.
	Observer obs.Observer

	// Spans collects distributed-tracing spans. When set, every transfer
	// records a "transfer" span (parented on the span context carried by
	// its context, typically the engine's root or race span) with
	// per-phase children — dial, request-write, ttfb, stream, verify — and
	// stamps the transfer span's context into the request's x-trace header
	// so relay and origin continue the same trace. Nil (the default)
	// disables tracing; every span site then reduces to a nil check, so
	// the hot path's allocation profile is unchanged.
	Spans *obs.SpanCollector

	// Flight, when set, records one wide event per transfer into the
	// flight recorder's bounded ring (phases, bytes, cache state, retries,
	// trace ID) and exposes in-flight transfers to its active table. Nil
	// (the default) disables recording; every hook reduces to a nil check
	// on the handle, so the hot path's allocation profile is unchanged.
	Flight *flight.Recorder

	// Retries counts retry attempts performed across all transfers.
	// It is kept in lockstep with the RetryScheduled events for callers
	// that only want the number, not the stream.
	Retries atomic.Int64
	// Canceled counts transfers that ended by cancellation or deadline,
	// in lockstep with the TransferAborted events.
	Canceled atomic.Int64

	startOnce sync.Once
	start     time.Time

	// pool holds the per-path parked keep-alive connections that warm
	// continuations reuse, built lazily from the fields above.
	poolOnce sync.Once
	pool     *connPool

	// cache is the client-side object cache, built lazily from
	// CacheBytes/CacheTTL on first use; nil when caching is disabled.
	cacheOnce sync.Once
	cache     *objcache.Cache
}

type pooledConn struct {
	conn net.Conn
	br   *bufio.Reader
}

// Now returns seconds since the transport's first use.
func (t *Transport) Now() float64 {
	t.init()
	return time.Since(t.start).Seconds()
}

func (t *Transport) init() {
	t.startOnce.Do(func() { t.start = time.Now() })
}

func (t *Transport) dialTimeout() time.Duration {
	switch {
	case t.DialTimeout > 0:
		return t.DialTimeout
	case t.DialTimeout < 0:
		return 0
	}
	return DefaultDialTimeout
}

func (t *Transport) maxRetries() int {
	switch {
	case t.MaxRetries > 0:
		return t.MaxRetries
	case t.MaxRetries < 0:
		return 0
	}
	return DefaultMaxRetries
}

func (t *Transport) retryBackoff() time.Duration {
	if t.RetryBackoff > 0 {
		return t.RetryBackoff
	}
	return DefaultRetryBackoff
}

func (t *Transport) maxIdlePerPath() int {
	switch {
	case t.MaxIdlePerPath > 0:
		return t.MaxIdlePerPath
	case t.MaxIdlePerPath < 0:
		return 0
	}
	return DefaultMaxIdlePerPath
}

func (t *Transport) idleTTL() time.Duration {
	switch {
	case t.IdleTTL > 0:
		return t.IdleTTL
	case t.IdleTTL < 0:
		return 0
	}
	return DefaultIdleTTL
}

// idlePool returns the transport's connection pool, building it from the
// MaxIdlePerPath/IdleTTL fields on first use (so they must be set before
// the first transfer, like every other Transport field).
func (t *Transport) idlePool() *connPool {
	t.poolOnce.Do(func() {
		t.pool = newConnPool(t.maxIdlePerPath(), t.idleTTL(), t.poolEvent)
	})
	return t.pool
}

// poolEvent relays a pool transition to the observer.
func (t *Transport) poolEvent(key string, op obs.PoolOp) {
	if o := t.Observer; o != nil {
		obs.EmitPool(o, obs.Pool{Key: poolLabel(key), Time: t.Now(), Op: op})
	}
}

// PoolStats returns the connection pool's counters: how often warm
// fetches reused a parked connection, missed, and how connections left
// the pool.
func (t *Transport) PoolStats() PoolStats {
	return t.idlePool().stats()
}

// objCache returns the client-side object cache, building it from
// CacheBytes/CacheTTL on first use (so, like every other Transport
// field, they must be set before the first transfer); nil when caching
// is disabled.
func (t *Transport) objCache() *objcache.Cache {
	t.cacheOnce.Do(func() {
		if t.CacheBytes <= 0 {
			return
		}
		var verify objcache.VerifyFunc
		if t.Verify {
			verify = func(key string, off int64, data []byte) bool {
				return relay.VerifyRange(objectNameFromCacheKey(key), off, data)
			}
		}
		t.cache = objcache.New(objcache.Config{
			MaxBytes: t.CacheBytes,
			TTL:      t.CacheTTL,
			Verify:   verify,
		})
	})
	return t.cache
}

// CacheStats returns the client-side cache's counters; the zero Stats
// (capacity 0) when caching is disabled.
func (t *Transport) CacheStats() objcache.Stats {
	if c := t.objCache(); c != nil {
		return c.Stats()
	}
	return objcache.Stats{}
}

// objCacheKey is the cache identity of an object on this client:
// origin server name plus object name. Unlike the relay's key it is
// address-independent — the same object fetched over different paths
// shares one cache entry, which is the point of caching above the
// path-selection layer.
func objCacheKey(obj core.Object) string { return obj.Server + "/" + obj.Name }

// objectNameFromCacheKey recovers the object name for serve-time
// re-verification: everything after the first '/'.
func objectNameFromCacheKey(key string) string {
	if i := strings.IndexByte(key, '/'); i >= 0 {
		return key[i+1:]
	}
	return key
}

// StatusError reports a non-success HTTP response. It is permanent from
// the transport's point of view: the server answered, so the request is
// not retried.
type StatusError struct {
	Status int
	Reason string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("realnet: status %d %s", e.Status, e.Reason)
}

// ObsClass classifies the error for observability (core.Classer): the
// server answered, just not with the bytes.
func (e *StatusError) ObsClass() obs.ErrClass { return obs.ClassStatus }

// handle is an in-flight transfer. Its result is published exactly once
// (through finish), by whichever comes first: the fetch goroutine
// completing, or the context watcher observing cancellation. The watcher
// also closes the transfer's active connection so blocked reads unwind
// promptly — that close IS the cancellation on a real socket.
type handle struct {
	done chan struct{}
	once sync.Once

	mu  sync.Mutex
	res core.FetchResult

	// progress is the payload bytes delivered by the current attempt,
	// updated from the stream loop and folded into the result on failure
	// so callers can account for partial delivery.
	progress atomic.Int64

	connMu   sync.Mutex
	conn     net.Conn
	canceled bool
}

func (h *handle) Done() bool {
	select {
	case <-h.done:
		return true
	default:
		return false
	}
}

func (h *handle) Result() core.FetchResult {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.res
}

// finish publishes the transfer outcome; only the first caller wins. A
// failed transfer records how far the stream got before dying.
func (h *handle) finish(end float64, err error) {
	h.once.Do(func() {
		h.mu.Lock()
		h.res.End = end
		h.res.Err = err
		if err != nil {
			h.res.Delivered = h.progress.Load()
		}
		h.mu.Unlock()
		close(h.done)
	})
}

// setConn registers the transfer's active connection for cancellation;
// pass nil to deregister. If cancellation already fired, the connection
// is closed immediately.
func (h *handle) setConn(c net.Conn) {
	h.connMu.Lock()
	canceled := h.canceled
	h.conn = c
	h.connMu.Unlock()
	if canceled && c != nil {
		c.Close()
	}
}

// cancel marks the handle canceled and closes whatever connection the
// transfer currently holds.
func (h *handle) cancel() {
	h.connMu.Lock()
	h.canceled = true
	c := h.conn
	h.connMu.Unlock()
	if c != nil {
		c.Close()
	}
}

// Start launches the range transfer on its own goroutine over a fresh
// connection (the cold path: TCP handshake + slow start included).
func (t *Transport) Start(obj core.Object, path core.Path, off, n int64) core.Handle {
	return t.startFetch(context.Background(), obj, path, off, n, false)
}

// StartCtx is Start observing ctx: cancellation or deadline expiry
// closes the transfer's connection and fails the handle promptly with
// core.ErrCanceled / core.ErrProbeTimeout. It implements
// core.ContextStarter.
func (t *Transport) StartCtx(ctx context.Context, obj core.Object, path core.Path, off, n int64) core.Handle {
	return t.startFetch(ctx, obj, path, off, n, false)
}

// StartWarm continues on the path's parked keep-alive connection when one
// is available: no TCP handshake, and the kernel's congestion window is
// already open — the real counterpart of the simulator's warm start. It
// implements core.WarmStarter.
func (t *Transport) StartWarm(obj core.Object, path core.Path, off, n int64) core.Handle {
	return t.startFetch(context.Background(), obj, path, off, n, true)
}

// StartWarmCtx is StartWarm observing ctx. It implements
// core.WarmContextStarter.
func (t *Transport) StartWarmCtx(ctx context.Context, obj core.Object, path core.Path, off, n int64) core.Handle {
	return t.startFetch(ctx, obj, path, off, n, true)
}

func (t *Transport) startFetch(ctx context.Context, obj core.Object, path core.Path, off, n int64, warm bool) core.Handle {
	t.init()
	h := &handle{done: make(chan struct{})}
	h.res = core.FetchResult{Path: path, Offset: off, Bytes: n, Start: t.Now()}

	var tspan *obs.ActiveSpan
	if t.Spans != nil {
		parent, _ := obs.SpanFromContext(ctx)
		tspan = t.Spans.StartSpan(parent, "client", "transfer")
		tspan.SetAttr("path", obsPathID(obj, path).Label())
		tspan.SetAttr("object", obj.Name)
		if warm {
			tspan.SetAttr("warm", "true")
		}
	}
	ft := t.Flight.Start("client", obsPathID(obj, path).Label(), obj.Name)
	if warm {
		ft.SetWarm()
	}
	if tspan != nil {
		ft.SetTrace(tspan.Context().Trace.String())
	}

	ctx, cancelCtx := t.transferContext(ctx)
	go func() {
		defer cancelCtx()
		var err error
		flight.DoLabeled(ctx, "fetch", func(ctx context.Context) {
			err = t.fetch(ctx, h, obj, path, off, n, warm, tspan, ft)
		})
		// The fetch goroutine owns the span (and the wide event): even when
		// the watcher below publishes a cancellation first, fetch returns
		// the typed error moments later (the closed socket unwinds its
		// read), so both still end exactly once with the right class.
		tspan.End(core.ErrClassOf(err), errString(err))
		ft.Finish(core.ErrClassOf(err).String(), errString(err))
		h.finish(t.Now(), err)
	}()
	// The watcher makes cancellation prompt: the instant ctx dies it
	// closes the transfer's connection and publishes the typed error, so
	// Wait/WaitAny return without spinning until the socket unwinds.
	go func() {
		select {
		case <-ctx.Done():
			h.cancel()
			t.Canceled.Add(1)
			err := core.CtxErr(ctx)
			if o := t.Observer; o != nil {
				o.TransferAborted(obs.Abort{
					Path: obsPathID(obj, path), Time: t.Now(), Class: core.ErrClassOf(err),
				})
			}
			h.finish(t.Now(), err)
		case <-h.done:
		}
	}()
	return h
}

// obsPathID is the event identity of a transfer on this transport.
func obsPathID(obj core.Object, p core.Path) obs.PathID {
	return obs.PathID{Server: obj.Server, Object: obj.Name, Via: p.Via}
}

// childSpan opens a per-phase child of a transfer span; nil in, nil out,
// so phase sites need no enabled-checks of their own.
func (t *Transport) childSpan(parent *obs.ActiveSpan, phase string) *obs.ActiveSpan {
	if parent == nil {
		return nil
	}
	return t.Spans.StartSpan(parent.Context(), "client", phase)
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// transferContext applies the transport's per-transfer deadline unless
// the caller's context already expires sooner.
func (t *Transport) transferContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if t.TransferTimeout <= 0 {
		return context.WithCancel(ctx)
	}
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= t.TransferTimeout {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, t.TransferTimeout)
}

// pathKey identifies a path's connection-pool slots.
func pathKey(p core.Path) string {
	if p.IsDirect() {
		return "\x00direct"
	}
	return p.Via
}

// poolLabel is pathKey's observable form, matching obs.PathID.Label().
func poolLabel(key string) string {
	if key == "\x00direct" {
		return "direct"
	}
	return key
}

// Close releases all parked keep-alive connections and stops the pool's
// idle sweeper. The transport still transfers afterwards, but finished
// connections are discarded instead of parked.
func (t *Transport) Close() {
	t.idlePool().close()
}

// dialConn opens one connection, honouring ctx and the dial timeout.
// Custom dialers (which predate contexts) run on their own goroutine so
// a dead ctx still returns promptly; a connection that arrives after
// abandonment is closed, not leaked.
func (t *Transport) dialConn(ctx context.Context, addr string) (net.Conn, error) {
	if to := t.dialTimeout(); to > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, to)
		defer cancel()
	}
	if t.Dial == nil {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}
	type dialed struct {
		c   net.Conn
		err error
	}
	ch := make(chan dialed, 1)
	go func() {
		c, err := t.Dial("tcp", addr)
		ch <- dialed{c, err}
	}()
	select {
	case d := <-ch:
		return d.c, d.err
	case <-ctx.Done():
		go func() {
			if d := <-ch; d.c != nil {
				d.c.Close()
			}
		}()
		return nil, ctx.Err()
	}
}

// maxRetryDelay caps the exponential backoff. Beyond keeping retries
// responsive, the cap is a correctness fix: the old unbounded shift
// overflowed time.Duration for large attempt numbers and fed a negative
// argument to rand.Int63n, which panics.
const maxRetryDelay = 5 * time.Second

// retryDelay picks the backoff before retry attempt (1-based): the base
// doubles per attempt up to maxRetryDelay, with ±50% jitter so
// synchronized clients do not stampede a recovering node.
func (t *Transport) retryDelay(attempt int) time.Duration {
	d := t.retryBackoff()
	for i := 1; i < attempt && d < maxRetryDelay; i++ {
		d *= 2
	}
	if d > maxRetryDelay {
		d = maxRetryDelay
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// scheduleRetry counts a retry, announces it (with the chosen backoff)
// to the observer, and sleeps the backoff out — returning early with the
// typed error if ctx dies first.
func (t *Transport) scheduleRetry(ctx context.Context, obj core.Object, path core.Path, attempt int, cause error) error {
	t.Retries.Add(1)
	d := t.retryDelay(attempt)
	if o := t.Observer; o != nil {
		o.RetryScheduled(obs.Retry{
			Path: obsPathID(obj, path), Time: t.Now(),
			Attempt: attempt, Backoff: d.Seconds(), Err: cause.Error(),
		})
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return core.CtxErr(ctx)
	}
}

// fetch moves one range. Cold fetches dial; warm fetches reuse a parked
// keep-alive connection from the path's pool when one exists (falling
// back to a fresh dial if the parked connection has gone stale — that
// fallback is free and does not count against the retry budget).
// Transient dial and I/O failures are retried cold with exponential
// backoff; HTTP status errors and context death are not. Fetches that
// leave the connection in a known-good state park it for the next warm
// continuation — including status-error responses whose body was fully
// drained, since the server answered cleanly.
func (t *Transport) fetch(ctx context.Context, h *handle, obj core.Object, path core.Path, off, n int64, warm bool, tspan *obs.ActiveSpan, ft *flight.Transfer) error {
	if c := t.objCache(); c != nil {
		if data, ok := c.Get(objCacheKey(obj), off, n); ok {
			// Fully covered by cached spans: the transfer completes without
			// touching the network (and without consulting path health — a
			// local hit says nothing about any path).
			if tspan != nil {
				tspan.SetAttr("cache", "hit")
			}
			ft.SetCache("hit")
			delivered := int64(len(data))
			ft.StoreBytes(delivered)
			h.progress.Store(delivered)
			t.emitProgress(obj, path, off, delivered, delivered, n)
			return nil
		}
	}
	originAddr, ok := t.Servers[obj.Server]
	if !ok {
		return fmt.Errorf("realnet: unknown server %q", obj.Server)
	}
	var dialAddr, target, host string
	if path.IsDirect() {
		dialAddr, target, host = originAddr, "/"+obj.Name, originAddr
	} else {
		relayAddr, ok := t.Relays[path.Via]
		if !ok {
			return fmt.Errorf("realnet: unknown relay %q", path.Via)
		}
		dialAddr, target, host = relayAddr, "http://"+originAddr+"/"+obj.Name, originAddr
	}
	key := pathKey(path)

	var pc *pooledConn
	reused := false
	if warm {
		if pc = t.idlePool().take(key); pc != nil {
			reused = true
		}
	}
	retries := 0
	for {
		if err := core.CtxErr(ctx); err != nil {
			return err
		}
		if pc == nil {
			dspan := t.childSpan(tspan, "dial")
			dspan.SetAttr("addr", dialAddr)
			ft.Phase("dial")
			conn, err := t.dialConn(ctx, dialAddr)
			if err != nil {
				dspan.End(core.ErrClassOf(err), err.Error())
				if cerr := core.CtxErr(ctx); cerr != nil {
					return cerr
				}
				if retries >= t.maxRetries() {
					return fmt.Errorf("realnet: dial %s: %w", dialAddr, err)
				}
				retries++
				ft.Retry()
				if berr := t.scheduleRetry(ctx, obj, path, retries, err); berr != nil {
					return berr
				}
				continue
			}
			dspan.EndOK()
			pc = &pooledConn{conn: conn, br: bufio.NewReader(conn)}
		}
		h.setConn(pc.conn)
		// Arm the ctx deadline — or, when ctx has none, explicitly clear
		// whatever deadline a previous transfer may have left armed on a
		// pooled connection, so a lazy warm fetch never inherits a sooner
		// expiry. A connection that can't even take a deadline is already
		// dead (e.g. closed under us by the pool sweeper); for a reused one
		// that's the free keep-alive fallback, not an error.
		dl, _ := ctx.Deadline()
		if err := pc.conn.SetDeadline(dl); err != nil && reused {
			pc.conn.Close()
			pc = nil
			reused = false
			continue
		}
		h.progress.Store(0)
		reusable, err := t.doRange(pc, h, obj, path, target, host, off, n, tspan, ft)
		h.setConn(nil)
		if err != nil {
			var se *StatusError
			if errors.As(err, &se) {
				// The server answered; a reusable connection survives the
				// failure (the old code closed it here, burning a warm
				// connection on every 404). Parking requires clearing the
				// transfer deadline — a connection that refuses is dead and
				// must not reach the pool with a stale deadline armed.
				if reusable && pc.conn.SetDeadline(time.Time{}) == nil {
					t.idlePool().park(key, pc)
				} else {
					pc.conn.Close()
				}
				return err
			}
			pc.conn.Close()
			pc = nil
			if cerr := core.CtxErr(ctx); cerr != nil {
				return cerr
			}
			if reused {
				// The parked connection went stale; a fresh dial is the
				// normal keep-alive fallback, not a retry. This check runs
				// before the timeout classification on purpose: a half-open
				// pooled connection swallows the request silently until the
				// armed deadline pops, which used to surface as a spurious
				// ErrProbeTimeout even though the ctx (checked just above)
				// was still alive.
				reused = false
				continue
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				// A connection deadline fired without the ctx (cold
				// standalone timeout): surface it as the typed expiry.
				return fmt.Errorf("%w: %w", core.ErrProbeTimeout, err)
			}
			if retries >= t.maxRetries() {
				return err
			}
			retries++
			ft.Retry()
			if berr := t.scheduleRetry(ctx, obj, path, retries, err); berr != nil {
				return berr
			}
			continue
		}
		// Same park-site guard as above: only a connection whose deadline
		// cleanly cleared may re-enter the pool.
		if reusable && pc.conn.SetDeadline(time.Time{}) == nil {
			t.idlePool().park(key, pc)
		} else {
			pc.conn.Close()
		}
		return nil
	}
}

// streamBufSize is the transfer buffer: large enough to keep syscall
// overhead negligible, small enough that a transfer's memory footprint is
// constant regardless of range size.
const streamBufSize = 64 << 10

// maxStatusDrain bounds how large an error-response body the transport
// drains to keep a connection reusable; anything bigger is cheaper to
// re-dial than to read.
const maxStatusDrain = 256 << 10

// streamBufs recycles transfer buffers across fetches, so steady-state
// transfers allocate nothing proportional to object size.
var streamBufs = sync.Pool{
	New: func() any { return make([]byte, streamBufSize) },
}

// doRange issues one keep-alive range request on an open connection and
// streams the body: each buffer-full is verified (when Verify is set)
// and counted into the handle's progress as it arrives, so nothing
// proportional to n is ever held in memory. It reports whether the
// connection remains usable for another request.
func (t *Transport) doRange(pc *pooledConn, h *handle, obj core.Object, path core.Path, target, host string, off, n int64, tspan *obs.ActiveSpan, ft *flight.Transfer) (reusable bool, err error) {
	req := httpx.NewGet(target, host)
	delete(req.Header, "connection") // keep-alive
	req.SetRange(off, n)
	if tspan != nil {
		// The transfer span's context goes on the wire, so the relay's
		// forward span (and through it the origin's serve span) nests under
		// this transfer in the stitched timeline.
		req.Header[obs.TraceHeader] = tspan.Context().Header()
	}
	wspan := t.childSpan(tspan, "request-write")
	ft.Phase("request-write")
	if err := req.Write(pc.conn); err != nil {
		wspan.End(obs.ClassFailed, err.Error())
		return false, err
	}
	wspan.EndOK()
	fspan := t.childSpan(tspan, "ttfb")
	ft.Phase("ttfb")
	resp, err := httpx.ReadResponse(pc.br)
	if err != nil {
		fspan.End(obs.ClassFailed, err.Error())
		return false, err
	}
	fspan.EndOK()
	keep := resp.Header["connection"] != "close"
	if resp.Status != 200 && resp.Status != 206 {
		// Drain a bounded error body so the connection stays usable, then
		// report the failure.
		drained := false
		if resp.ContentLength >= 0 && resp.ContentLength <= maxStatusDrain {
			_, derr := io.Copy(io.Discard, resp.Body)
			drained = derr == nil
		}
		return keep && drained, &StatusError{Status: resp.Status, Reason: resp.Reason}
	}
	if resp.ContentLength > n {
		// More content than the range asked for: the framing is wrong, and
		// reading past n would just bury the protocol error.
		return false, fmt.Errorf("realnet: oversized body %d for %d-byte range", resp.ContentLength, n)
	}

	var v *relay.Verifier
	if t.Verify {
		v = relay.NewVerifier(obj.Name, off)
	}
	// With caching on, the stream tees into a fill buffer so the range
	// lands in the cache as a side effect of delivery. With it off (or
	// the range bigger than the whole cache) fill stays nil and the loop
	// below is byte-for-byte the uncached one.
	var fill []byte
	cache := t.objCache()
	if cache != nil && n <= cache.Capacity() {
		fill = make([]byte, 0, n)
	}
	buf := streamBufs.Get().([]byte)
	defer streamBufs.Put(buf)
	sspan := t.childSpan(tspan, "stream")
	ft.Phase("stream")
	// Verification interleaves with streaming, so its cost is measured as
	// cumulative busy time and recorded as one after-the-fact span spanning
	// first check to stream end (with the busy total as an attribute) —
	// timed only when tracing, so the untraced path makes no clock calls.
	var verifyStart time.Time
	var verifyBusy time.Duration
	var delivered int64
	for delivered < n {
		chunk := int64(len(buf))
		if rest := n - delivered; rest < chunk {
			chunk = rest
		}
		m, rerr := io.ReadFull(resp.Body, buf[:chunk])
		if m > 0 {
			if v != nil {
				var t0 time.Time
				if tspan != nil {
					t0 = time.Now()
					if verifyStart.IsZero() {
						verifyStart = t0
					}
				}
				good := v.Verify(buf[:m])
				if tspan != nil {
					verifyBusy += time.Since(t0)
				}
				if !good {
					err := fmt.Errorf("realnet: content mismatch for %s at %d", obj.Name, v.Offset())
					t.endStream(sspan, verifyStart, verifyBusy, delivered, obs.ClassFailed, err.Error())
					return false, err
				}
			}
			if fill != nil {
				fill = append(fill, buf[:m]...)
			}
			delivered += int64(m)
			h.progress.Store(delivered)
			ft.StoreBytes(delivered)
			t.emitProgress(obj, path, off, int64(m), delivered, n)
		}
		if rerr != nil {
			if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
				err := fmt.Errorf("realnet: short read %d of %d bytes", delivered, n)
				t.endStream(sspan, verifyStart, verifyBusy, delivered, obs.ClassFailed, err.Error())
				return false, err
			}
			t.endStream(sspan, verifyStart, verifyBusy, delivered, obs.ClassFailed, rerr.Error())
			return false, rerr
		}
	}
	t.endStream(sspan, verifyStart, verifyBusy, delivered, obs.ClassOK, "")
	if fill != nil {
		cache.Put(objCacheKey(obj), off, fill)
	}
	// Reusable only if the response was exactly the requested range: an
	// unknown-length body leaves the stream position undefined.
	return keep && resp.ContentLength == n, nil
}

// endStream closes a stream span and records the companion verify span
// (first check to stream end, cumulative busy time attached). No-op when
// the stream span is nil, i.e. tracing is off.
func (t *Transport) endStream(sspan *obs.ActiveSpan, verifyStart time.Time, verifyBusy time.Duration, delivered int64, class obs.ErrClass, errText string) {
	if sspan == nil {
		return
	}
	sspan.SetAttr("bytes", strconv.FormatInt(delivered, 10))
	sc := sspan.Context()
	sspan.End(class, errText)
	if !verifyStart.IsZero() {
		t.Spans.Record(obs.Span{
			Trace: sc.Trace, Parent: sc.Span,
			Service: "client", Phase: "verify",
			Start:    verifyStart.UnixNano(),
			Duration: int64(time.Since(verifyStart)),
			Class:    obs.ClassOK.String(),
			Attrs:    map[string]string{"busy_ns": strconv.FormatInt(int64(verifyBusy), 10)},
		})
	}
}

// emitProgress reports one stream chunk to the observer.
func (t *Transport) emitProgress(obj core.Object, path core.Path, off, chunk, delivered, total int64) {
	if o := t.Observer; o != nil {
		obs.EmitProgress(o, obs.Progress{
			Path: obsPathID(obj, path), Time: t.Now(),
			Offset: off, Chunk: chunk, Delivered: delivered, Total: total,
		})
	}
}

// Wait blocks until all handles complete. A handle whose context is
// canceled completes promptly (the watcher publishes the typed error and
// closes the connection), so Wait never spins out a dead transfer.
func (t *Transport) Wait(hs ...core.Handle) {
	for _, h := range hs {
		<-h.(*handle).done
	}
}

// WaitAny blocks until at least one handle completes and returns its
// index, implementing core.AnyWaiter. Like Wait, it returns promptly for
// canceled handles.
func (t *Transport) WaitAny(hs ...core.Handle) int {
	cases := make([]reflect.SelectCase, len(hs))
	for i, h := range hs {
		cases[i] = reflect.SelectCase{
			Dir:  reflect.SelectRecv,
			Chan: reflect.ValueOf(h.(*handle).done),
		}
	}
	chosen, _, _ := reflect.Select(cases)
	return chosen
}

// Stat discovers an object's size with a HEAD request to its origin, so
// clients need not know sizes out of band.
func (t *Transport) Stat(server, name string) (int64, error) {
	return t.StatCtx(context.Background(), server, name)
}

// StatCtx is Stat observing ctx for the dial and the request.
func (t *Transport) StatCtx(ctx context.Context, server, name string) (int64, error) {
	addr, ok := t.Servers[server]
	if !ok {
		return 0, fmt.Errorf("realnet: unknown server %q", server)
	}
	return relay.Head(func(network, a string) (net.Conn, error) {
		conn, err := t.dialConn(ctx, a)
		if err != nil {
			return nil, err
		}
		if dl, ok := ctx.Deadline(); ok {
			conn.SetDeadline(dl)
		}
		return conn, nil
	}, addr, name)
}

var (
	_ core.Transport          = (*Transport)(nil)
	_ core.AnyWaiter          = (*Transport)(nil)
	_ core.ContextStarter     = (*Transport)(nil)
	_ core.WarmStarter        = (*Transport)(nil)
	_ core.WarmContextStarter = (*Transport)(nil)
)
