// Package realnet implements core.Transport over real TCP connections,
// tying the selection engine to the relay/origin daemons. Where package
// httpsim measures virtual time on the fluid simulator, realnet measures
// wall-clock time on live sockets — the same engine code drives both,
// which is the point: the library a downstream user deploys is the one
// the experiments exercised.
//
// The transport is fully context-aware (core.ContextStarter and
// core.WarmContextStarter): cancelling a transfer's context closes the
// underlying connection, so a raced probe that lost is torn down within
// a round trip, and a transfer against a stalled relay fails at its
// deadline instead of hanging. Cold-connection failures are retried with
// exponential backoff and jitter, bounded by MaxRetries.
package realnet

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/httpx"
	"repro/internal/obs"
	"repro/internal/relay"
)

// DefaultDialTimeout bounds connection establishment when the transport
// does not specify one.
const DefaultDialTimeout = 10 * time.Second

// DefaultMaxRetries is how many extra cold attempts a transfer makes
// after a transient failure when MaxRetries is unset.
const DefaultMaxRetries = 2

// DefaultRetryBackoff is the base backoff before the first retry; it
// doubles per attempt, with jitter, when RetryBackoff is unset.
const DefaultRetryBackoff = 50 * time.Millisecond

// Transport fetches object ranges directly from origin servers or through
// relay daemons.
type Transport struct {
	// Servers maps origin server names (core.Object.Server) to TCP
	// addresses.
	Servers map[string]string
	// Relays maps intermediate names (core.Path.Via) to relay addresses.
	Relays map[string]string
	// Dial opens client-side connections; nil means a net.Dialer. Inject
	// a shaper.Dialer to emulate heterogeneous paths on loopback.
	Dial func(network, addr string) (net.Conn, error)
	// Verify checks received bytes against the canonical synthetic
	// content and fails transfers on corruption.
	Verify bool

	// DialTimeout bounds each connection attempt (DefaultDialTimeout
	// when 0; negative disables the bound).
	DialTimeout time.Duration
	// TransferTimeout is the per-transfer deadline applied to every
	// Start whose context does not already carry an earlier one (0 = no
	// deadline). Expiry fails the transfer with core.ErrProbeTimeout and
	// closes its connection.
	TransferTimeout time.Duration
	// MaxRetries is how many extra cold attempts a transfer makes after
	// a transient dial or I/O failure (DefaultMaxRetries when 0;
	// negative disables retry). HTTP status errors are never retried —
	// the server answered, repeating the question won't change it.
	MaxRetries int
	// RetryBackoff is the base delay before the first retry
	// (DefaultRetryBackoff when 0); it doubles per attempt with ±50%
	// jitter so synchronized clients do not stampede a recovering node.
	RetryBackoff time.Duration

	// Observer receives transport-level events: RetryScheduled for every
	// cold re-attempt (with the chosen backoff) and TransferAborted for
	// every context-death teardown. Nil disables emission. The engine's
	// probe/selection events are configured separately (core.Config);
	// pointing both at the same Metrics collector gives one unified view.
	Observer obs.Observer

	// Retries counts retry attempts performed across all transfers.
	// It is kept in lockstep with the RetryScheduled events for callers
	// that only want the number, not the stream.
	Retries atomic.Int64
	// Canceled counts transfers that ended by cancellation or deadline,
	// in lockstep with the TransferAborted events.
	Canceled atomic.Int64

	startOnce sync.Once
	start     time.Time

	// poolMu guards pool, the per-path parked keep-alive connections
	// (at most one per path) that warm continuations reuse.
	poolMu sync.Mutex
	pool   map[string]*pooledConn
}

type pooledConn struct {
	conn net.Conn
	br   *bufio.Reader
}

// Now returns seconds since the transport's first use.
func (t *Transport) Now() float64 {
	t.init()
	return time.Since(t.start).Seconds()
}

func (t *Transport) init() {
	t.startOnce.Do(func() { t.start = time.Now() })
}

func (t *Transport) dialTimeout() time.Duration {
	switch {
	case t.DialTimeout > 0:
		return t.DialTimeout
	case t.DialTimeout < 0:
		return 0
	}
	return DefaultDialTimeout
}

func (t *Transport) maxRetries() int {
	switch {
	case t.MaxRetries > 0:
		return t.MaxRetries
	case t.MaxRetries < 0:
		return 0
	}
	return DefaultMaxRetries
}

func (t *Transport) retryBackoff() time.Duration {
	if t.RetryBackoff > 0 {
		return t.RetryBackoff
	}
	return DefaultRetryBackoff
}

// StatusError reports a non-success HTTP response. It is permanent from
// the transport's point of view: the server answered, so the request is
// not retried.
type StatusError struct {
	Status int
	Reason string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("realnet: status %d %s", e.Status, e.Reason)
}

// ObsClass classifies the error for observability (core.Classer): the
// server answered, just not with the bytes.
func (e *StatusError) ObsClass() obs.ErrClass { return obs.ClassStatus }

// handle is an in-flight transfer. Its result is published exactly once
// (through finish), by whichever comes first: the fetch goroutine
// completing, or the context watcher observing cancellation. The watcher
// also closes the transfer's active connection so blocked reads unwind
// promptly — that close IS the cancellation on a real socket.
type handle struct {
	done chan struct{}
	once sync.Once

	mu  sync.Mutex
	res core.FetchResult

	connMu   sync.Mutex
	conn     net.Conn
	canceled bool
}

func (h *handle) Done() bool {
	select {
	case <-h.done:
		return true
	default:
		return false
	}
}

func (h *handle) Result() core.FetchResult {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.res
}

// finish publishes the transfer outcome; only the first caller wins.
func (h *handle) finish(end float64, err error) {
	h.once.Do(func() {
		h.mu.Lock()
		h.res.End = end
		h.res.Err = err
		h.mu.Unlock()
		close(h.done)
	})
}

// setConn registers the transfer's active connection for cancellation;
// pass nil to deregister. If cancellation already fired, the connection
// is closed immediately.
func (h *handle) setConn(c net.Conn) {
	h.connMu.Lock()
	canceled := h.canceled
	h.conn = c
	h.connMu.Unlock()
	if canceled && c != nil {
		c.Close()
	}
}

// cancel marks the handle canceled and closes whatever connection the
// transfer currently holds.
func (h *handle) cancel() {
	h.connMu.Lock()
	h.canceled = true
	c := h.conn
	h.connMu.Unlock()
	if c != nil {
		c.Close()
	}
}

// Start launches the range transfer on its own goroutine over a fresh
// connection (the cold path: TCP handshake + slow start included).
func (t *Transport) Start(obj core.Object, path core.Path, off, n int64) core.Handle {
	return t.startFetch(context.Background(), obj, path, off, n, false)
}

// StartCtx is Start observing ctx: cancellation or deadline expiry
// closes the transfer's connection and fails the handle promptly with
// core.ErrCanceled / core.ErrProbeTimeout. It implements
// core.ContextStarter.
func (t *Transport) StartCtx(ctx context.Context, obj core.Object, path core.Path, off, n int64) core.Handle {
	return t.startFetch(ctx, obj, path, off, n, false)
}

// StartWarm continues on the path's parked keep-alive connection when one
// is available: no TCP handshake, and the kernel's congestion window is
// already open — the real counterpart of the simulator's warm start. It
// implements core.WarmStarter.
func (t *Transport) StartWarm(obj core.Object, path core.Path, off, n int64) core.Handle {
	return t.startFetch(context.Background(), obj, path, off, n, true)
}

// StartWarmCtx is StartWarm observing ctx. It implements
// core.WarmContextStarter.
func (t *Transport) StartWarmCtx(ctx context.Context, obj core.Object, path core.Path, off, n int64) core.Handle {
	return t.startFetch(ctx, obj, path, off, n, true)
}

func (t *Transport) startFetch(ctx context.Context, obj core.Object, path core.Path, off, n int64, warm bool) core.Handle {
	t.init()
	h := &handle{done: make(chan struct{})}
	h.res = core.FetchResult{Path: path, Offset: off, Bytes: n, Start: t.Now()}

	ctx, cancelCtx := t.transferContext(ctx)
	go func() {
		defer cancelCtx()
		body, err := t.fetch(ctx, h, obj, path, off, n, warm)
		if err == nil {
			switch {
			case int64(len(body)) != n:
				err = fmt.Errorf("realnet: short read %d of %d bytes", len(body), n)
			case t.Verify && !relay.VerifyRange(obj.Name, off, body):
				err = fmt.Errorf("realnet: content mismatch for %s at %d", obj.Name, off)
			}
		}
		h.finish(t.Now(), err)
	}()
	// The watcher makes cancellation prompt: the instant ctx dies it
	// closes the transfer's connection and publishes the typed error, so
	// Wait/WaitAny return without spinning until the socket unwinds.
	go func() {
		select {
		case <-ctx.Done():
			h.cancel()
			t.Canceled.Add(1)
			err := core.CtxErr(ctx)
			if o := t.Observer; o != nil {
				o.TransferAborted(obs.Abort{
					Path: obsPathID(obj, path), Time: t.Now(), Class: core.ErrClassOf(err),
				})
			}
			h.finish(t.Now(), err)
		case <-h.done:
		}
	}()
	return h
}

// obsPathID is the event identity of a transfer on this transport.
func obsPathID(obj core.Object, p core.Path) obs.PathID {
	return obs.PathID{Server: obj.Server, Object: obj.Name, Via: p.Via}
}

// transferContext applies the transport's per-transfer deadline unless
// the caller's context already expires sooner.
func (t *Transport) transferContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if t.TransferTimeout <= 0 {
		return context.WithCancel(ctx)
	}
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= t.TransferTimeout {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, t.TransferTimeout)
}

// pathKey identifies a path's connection-pool slot.
func pathKey(p core.Path) string {
	if p.IsDirect() {
		return "\x00direct"
	}
	return p.Via
}

func (t *Transport) takeConn(key string) *pooledConn {
	t.poolMu.Lock()
	defer t.poolMu.Unlock()
	pc := t.pool[key]
	delete(t.pool, key)
	return pc
}

func (t *Transport) parkConn(key string, pc *pooledConn) {
	t.poolMu.Lock()
	if t.pool == nil {
		t.pool = make(map[string]*pooledConn)
	}
	prev := t.pool[key]
	t.pool[key] = pc
	t.poolMu.Unlock()
	if prev != nil {
		prev.conn.Close()
	}
}

// Close releases any parked keep-alive connections.
func (t *Transport) Close() {
	t.poolMu.Lock()
	defer t.poolMu.Unlock()
	for k, pc := range t.pool {
		pc.conn.Close()
		delete(t.pool, k)
	}
}

// dialConn opens one connection, honouring ctx and the dial timeout.
// Custom dialers (which predate contexts) run on their own goroutine so
// a dead ctx still returns promptly; a connection that arrives after
// abandonment is closed, not leaked.
func (t *Transport) dialConn(ctx context.Context, addr string) (net.Conn, error) {
	if to := t.dialTimeout(); to > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, to)
		defer cancel()
	}
	if t.Dial == nil {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}
	type dialed struct {
		c   net.Conn
		err error
	}
	ch := make(chan dialed, 1)
	go func() {
		c, err := t.Dial("tcp", addr)
		ch <- dialed{c, err}
	}()
	select {
	case d := <-ch:
		return d.c, d.err
	case <-ctx.Done():
		go func() {
			if d := <-ch; d.c != nil {
				d.c.Close()
			}
		}()
		return nil, ctx.Err()
	}
}

// retryDelay picks the backoff before retry attempt (1-based): the base
// doubles per attempt, with ±50% jitter so synchronized clients do not
// stampede a recovering node.
func (t *Transport) retryDelay(attempt int) time.Duration {
	d := t.retryBackoff() << (attempt - 1)
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// scheduleRetry counts a retry, announces it (with the chosen backoff)
// to the observer, and sleeps the backoff out — returning early with the
// typed error if ctx dies first.
func (t *Transport) scheduleRetry(ctx context.Context, obj core.Object, path core.Path, attempt int, cause error) error {
	t.Retries.Add(1)
	d := t.retryDelay(attempt)
	if o := t.Observer; o != nil {
		o.RetryScheduled(obs.Retry{
			Path: obsPathID(obj, path), Time: t.Now(),
			Attempt: attempt, Backoff: d.Seconds(), Err: cause.Error(),
		})
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return core.CtxErr(ctx)
	}
}

// fetch moves one range. Cold fetches dial; warm fetches reuse the
// path's parked keep-alive connection when one exists (falling back to a
// fresh dial if the parked connection has gone stale — that fallback is
// free and does not count against the retry budget). Transient dial and
// I/O failures are retried cold with exponential backoff; HTTP status
// errors and context death are not. Successful fetches park their
// connection for the next warm continuation.
func (t *Transport) fetch(ctx context.Context, h *handle, obj core.Object, path core.Path, off, n int64, warm bool) ([]byte, error) {
	originAddr, ok := t.Servers[obj.Server]
	if !ok {
		return nil, fmt.Errorf("realnet: unknown server %q", obj.Server)
	}
	var dialAddr, target, host string
	if path.IsDirect() {
		dialAddr, target, host = originAddr, "/"+obj.Name, originAddr
	} else {
		relayAddr, ok := t.Relays[path.Via]
		if !ok {
			return nil, fmt.Errorf("realnet: unknown relay %q", path.Via)
		}
		dialAddr, target, host = relayAddr, "http://"+originAddr+"/"+obj.Name, originAddr
	}
	key := pathKey(path)

	var pc *pooledConn
	reused := false
	if warm {
		if pc = t.takeConn(key); pc != nil {
			reused = true
		}
	}
	retries := 0
	for {
		if err := core.CtxErr(ctx); err != nil {
			return nil, err
		}
		if pc == nil {
			conn, err := t.dialConn(ctx, dialAddr)
			if err != nil {
				if cerr := core.CtxErr(ctx); cerr != nil {
					return nil, cerr
				}
				if retries >= t.maxRetries() {
					return nil, fmt.Errorf("realnet: dial %s: %w", dialAddr, err)
				}
				retries++
				if berr := t.scheduleRetry(ctx, obj, path, retries, err); berr != nil {
					return nil, berr
				}
				continue
			}
			pc = &pooledConn{conn: conn, br: bufio.NewReader(conn)}
		}
		h.setConn(pc.conn)
		if dl, ok := ctx.Deadline(); ok {
			pc.conn.SetDeadline(dl)
		}
		body, reusable, err := doRange(pc, target, host, off, n)
		h.setConn(nil)
		if err != nil {
			pc.conn.Close()
			pc = nil
			if cerr := core.CtxErr(ctx); cerr != nil {
				return nil, cerr
			}
			var se *StatusError
			if errors.As(err, &se) {
				return nil, err
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				// A connection deadline fired without the ctx (cold
				// standalone timeout): surface it as the typed expiry.
				return nil, fmt.Errorf("%w: %w", core.ErrProbeTimeout, err)
			}
			if reused {
				// The parked connection went stale; a fresh dial is the
				// normal keep-alive fallback, not a retry.
				reused = false
				continue
			}
			if retries >= t.maxRetries() {
				return nil, err
			}
			retries++
			if berr := t.scheduleRetry(ctx, obj, path, retries, err); berr != nil {
				return nil, berr
			}
			continue
		}
		pc.conn.SetDeadline(time.Time{})
		if reusable {
			t.parkConn(key, pc)
		} else {
			pc.conn.Close()
		}
		return body, nil
	}
}

// doRange issues one keep-alive range request on an open connection and
// reads the full body. It reports whether the connection remains usable.
func doRange(pc *pooledConn, target, host string, off, n int64) (body []byte, reusable bool, err error) {
	req := httpx.NewGet(target, host)
	delete(req.Header, "connection") // keep-alive
	req.SetRange(off, n)
	if err := req.Write(pc.conn); err != nil {
		return nil, false, err
	}
	resp, err := httpx.ReadResponse(pc.br)
	if err != nil {
		return nil, false, err
	}
	if resp.Status != 200 && resp.Status != 206 {
		// Drain the (bounded) body so the connection stays usable, then
		// report the failure.
		if resp.ContentLength >= 0 {
			io.Copy(io.Discard, resp.Body)
		}
		return nil, false, &StatusError{Status: resp.Status, Reason: resp.Reason}
	}
	if resp.ContentLength < 0 {
		b, err := io.ReadAll(resp.Body)
		return b, false, err
	}
	b := make([]byte, resp.ContentLength)
	if _, err := io.ReadFull(resp.Body, b); err != nil {
		return nil, false, err
	}
	return b, resp.Header["connection"] != "close", nil
}

// Wait blocks until all handles complete. A handle whose context is
// canceled completes promptly (the watcher publishes the typed error and
// closes the connection), so Wait never spins out a dead transfer.
func (t *Transport) Wait(hs ...core.Handle) {
	for _, h := range hs {
		<-h.(*handle).done
	}
}

// WaitAny blocks until at least one handle completes and returns its
// index, implementing core.AnyWaiter. Like Wait, it returns promptly for
// canceled handles.
func (t *Transport) WaitAny(hs ...core.Handle) int {
	cases := make([]reflect.SelectCase, len(hs))
	for i, h := range hs {
		cases[i] = reflect.SelectCase{
			Dir:  reflect.SelectRecv,
			Chan: reflect.ValueOf(h.(*handle).done),
		}
	}
	chosen, _, _ := reflect.Select(cases)
	return chosen
}

// Stat discovers an object's size with a HEAD request to its origin, so
// clients need not know sizes out of band.
func (t *Transport) Stat(server, name string) (int64, error) {
	return t.StatCtx(context.Background(), server, name)
}

// StatCtx is Stat observing ctx for the dial and the request.
func (t *Transport) StatCtx(ctx context.Context, server, name string) (int64, error) {
	addr, ok := t.Servers[server]
	if !ok {
		return 0, fmt.Errorf("realnet: unknown server %q", server)
	}
	return relay.Head(func(network, a string) (net.Conn, error) {
		conn, err := t.dialConn(ctx, a)
		if err != nil {
			return nil, err
		}
		if dl, ok := ctx.Deadline(); ok {
			conn.SetDeadline(dl)
		}
		return conn, nil
	}, addr, name)
}

var (
	_ core.Transport          = (*Transport)(nil)
	_ core.AnyWaiter          = (*Transport)(nil)
	_ core.ContextStarter     = (*Transport)(nil)
	_ core.WarmStarter        = (*Transport)(nil)
	_ core.WarmContextStarter = (*Transport)(nil)
)
