// Package realnet implements core.Transport over real TCP connections,
// tying the selection engine to the relay/origin daemons. Where package
// httpsim measures virtual time on the fluid simulator, realnet measures
// wall-clock time on live sockets — the same engine code drives both,
// which is the point: the library a downstream user deploys is the one
// the experiments exercised.
package realnet

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"reflect"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/httpx"
	"repro/internal/relay"
)

// Transport fetches object ranges directly from origin servers or through
// relay daemons.
type Transport struct {
	// Servers maps origin server names (core.Object.Server) to TCP
	// addresses.
	Servers map[string]string
	// Relays maps intermediate names (core.Path.Via) to relay addresses.
	Relays map[string]string
	// Dial opens client-side connections; nil means net.Dial. Inject a
	// shaper.Dialer to emulate heterogeneous paths on loopback.
	Dial func(network, addr string) (net.Conn, error)
	// Verify checks received bytes against the canonical synthetic
	// content and fails transfers on corruption.
	Verify bool

	startOnce sync.Once
	start     time.Time

	// poolMu guards pool, the per-path parked keep-alive connections
	// (at most one per path) that warm continuations reuse.
	poolMu sync.Mutex
	pool   map[string]*pooledConn
}

type pooledConn struct {
	conn net.Conn
	br   *bufio.Reader
}

// Now returns seconds since the transport's first use.
func (t *Transport) Now() float64 {
	t.init()
	return time.Since(t.start).Seconds()
}

func (t *Transport) init() {
	t.startOnce.Do(func() { t.start = time.Now() })
}

type handle struct {
	done chan struct{}
	mu   sync.Mutex
	res  core.FetchResult
}

func (h *handle) Done() bool {
	select {
	case <-h.done:
		return true
	default:
		return false
	}
}

func (h *handle) Result() core.FetchResult {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.res
}

// Start launches the range transfer on its own goroutine over a fresh
// connection (the cold path: TCP handshake + slow start included).
func (t *Transport) Start(obj core.Object, path core.Path, off, n int64) core.Handle {
	return t.startFetch(obj, path, off, n, false)
}

func (t *Transport) startFetch(obj core.Object, path core.Path, off, n int64, warm bool) core.Handle {
	t.init()
	h := &handle{done: make(chan struct{})}
	h.res = core.FetchResult{Path: path, Offset: off, Bytes: n, Start: t.Now()}

	go func() {
		defer close(h.done)
		body, err := t.fetch(obj, path, off, n, warm)
		h.mu.Lock()
		defer h.mu.Unlock()
		h.res.End = t.Now()
		if err != nil {
			h.res.Err = err
			return
		}
		if int64(len(body)) != n {
			h.res.Err = fmt.Errorf("realnet: short read %d of %d bytes", len(body), n)
			return
		}
		if t.Verify && !relay.VerifyRange(obj.Name, off, body) {
			h.res.Err = fmt.Errorf("realnet: content mismatch for %s at %d", obj.Name, off)
		}
	}()
	return h
}

// pathKey identifies a path's connection-pool slot.
func pathKey(p core.Path) string {
	if p.IsDirect() {
		return "\x00direct"
	}
	return p.Via
}

func (t *Transport) takeConn(key string) *pooledConn {
	t.poolMu.Lock()
	defer t.poolMu.Unlock()
	pc := t.pool[key]
	delete(t.pool, key)
	return pc
}

func (t *Transport) parkConn(key string, pc *pooledConn) {
	t.poolMu.Lock()
	if t.pool == nil {
		t.pool = make(map[string]*pooledConn)
	}
	prev := t.pool[key]
	t.pool[key] = pc
	t.poolMu.Unlock()
	if prev != nil {
		prev.conn.Close()
	}
}

// Close releases any parked keep-alive connections.
func (t *Transport) Close() {
	t.poolMu.Lock()
	defer t.poolMu.Unlock()
	for k, pc := range t.pool {
		pc.conn.Close()
		delete(t.pool, k)
	}
}

// fetch moves one range. Cold fetches always dial; warm fetches reuse the
// path's parked keep-alive connection when one exists (falling back to a
// fresh dial if the parked connection has gone stale). Successful fetches
// park their connection for the next warm continuation.
func (t *Transport) fetch(obj core.Object, path core.Path, off, n int64, warm bool) ([]byte, error) {
	originAddr, ok := t.Servers[obj.Server]
	if !ok {
		return nil, fmt.Errorf("realnet: unknown server %q", obj.Server)
	}
	var dialAddr, target, host string
	if path.IsDirect() {
		dialAddr, target, host = originAddr, "/"+obj.Name, originAddr
	} else {
		relayAddr, ok := t.Relays[path.Via]
		if !ok {
			return nil, fmt.Errorf("realnet: unknown relay %q", path.Via)
		}
		dialAddr, target, host = relayAddr, "http://"+originAddr+"/"+obj.Name, originAddr
	}
	key := pathKey(path)

	var pc *pooledConn
	reused := false
	if warm {
		if pc = t.takeConn(key); pc != nil {
			reused = true
		}
	}
	for attempt := 0; ; attempt++ {
		if pc == nil {
			dial := t.Dial
			if dial == nil {
				dial = net.Dial
			}
			conn, err := dial("tcp", dialAddr)
			if err != nil {
				return nil, err
			}
			pc = &pooledConn{conn: conn, br: bufio.NewReader(conn)}
		}
		body, reusable, err := doRange(pc, target, host, off, n)
		if err != nil {
			pc.conn.Close()
			if reused && attempt == 0 {
				// The parked connection went stale; retry cold once.
				pc = nil
				reused = false
				continue
			}
			return nil, err
		}
		if reusable {
			t.parkConn(key, pc)
		} else {
			pc.conn.Close()
		}
		return body, nil
	}
}

// doRange issues one keep-alive range request on an open connection and
// reads the full body. It reports whether the connection remains usable.
func doRange(pc *pooledConn, target, host string, off, n int64) (body []byte, reusable bool, err error) {
	req := httpx.NewGet(target, host)
	delete(req.Header, "connection") // keep-alive
	req.SetRange(off, n)
	if err := req.Write(pc.conn); err != nil {
		return nil, false, err
	}
	resp, err := httpx.ReadResponse(pc.br)
	if err != nil {
		return nil, false, err
	}
	if resp.Status != 200 && resp.Status != 206 {
		// Drain the (bounded) body so the connection stays usable, then
		// report the failure.
		if resp.ContentLength >= 0 {
			io.Copy(io.Discard, resp.Body)
		}
		return nil, false, fmt.Errorf("realnet: status %d %s", resp.Status, resp.Reason)
	}
	if resp.ContentLength < 0 {
		b, err := io.ReadAll(resp.Body)
		return b, false, err
	}
	b := make([]byte, resp.ContentLength)
	if _, err := io.ReadFull(resp.Body, b); err != nil {
		return nil, false, err
	}
	return b, resp.Header["connection"] != "close", nil
}

// Wait blocks until all handles complete.
func (t *Transport) Wait(hs ...core.Handle) {
	for _, h := range hs {
		<-h.(*handle).done
	}
}

// WaitAny blocks until at least one handle completes and returns its
// index, implementing core.AnyWaiter.
func (t *Transport) WaitAny(hs ...core.Handle) int {
	cases := make([]reflect.SelectCase, len(hs))
	for i, h := range hs {
		cases[i] = reflect.SelectCase{
			Dir:  reflect.SelectRecv,
			Chan: reflect.ValueOf(h.(*handle).done),
		}
	}
	chosen, _, _ := reflect.Select(cases)
	return chosen
}

// StartWarm continues on the path's parked keep-alive connection when one
// is available: no TCP handshake, and the kernel's congestion window is
// already open — the real counterpart of the simulator's warm start. It
// implements core.WarmStarter.
func (t *Transport) StartWarm(obj core.Object, path core.Path, off, n int64) core.Handle {
	return t.startFetch(obj, path, off, n, true)
}

// Stat discovers an object's size with a HEAD request to its origin, so
// clients need not know sizes out of band.
func (t *Transport) Stat(server, name string) (int64, error) {
	addr, ok := t.Servers[server]
	if !ok {
		return 0, fmt.Errorf("realnet: unknown server %q", server)
	}
	return relay.Head(t.Dial, addr, name)
}

var _ core.Transport = (*Transport)(nil)
