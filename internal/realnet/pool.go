package realnet

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// DefaultMaxIdlePerPath is how many idle keep-alive connections each path
// retains when MaxIdlePerPath is unset. Multipath striping issues several
// concurrent warm chunks per path, so one slot (the old behavior) forced
// all but one of them to dial cold.
const DefaultMaxIdlePerPath = 4

// DefaultIdleTTL is how long a parked connection may sit idle before the
// pool evicts it when IdleTTL is unset. It stays comfortably under the
// origin/relay keepAliveIdle (60 s) so the pool drops connections before
// the far end does.
const DefaultIdleTTL = 30 * time.Second

// PoolStats is a point-in-time view of the connection pool's counters.
type PoolStats struct {
	Reuses    int64 // warm fetches served from a parked connection
	Misses    int64 // warm fetches that found no usable parked connection
	Parked    int64 // connections returned to the pool after a transfer
	Evicted   int64 // idle connections dropped by TTL expiry or Close
	Discarded int64 // connections turned away because the path's slots were full
	Idle      int   // connections currently parked, across all paths
}

// idleConn is one parked connection with its park time, for TTL expiry.
type idleConn struct {
	pc    *pooledConn
	since time.Time
}

// connPool is a bounded per-path pool of idle keep-alive connections.
// Each path keeps at most maxIdle parked connections, taken LIFO (the
// most recently parked connection has the widest-open congestion window
// and the most remaining keep-alive budget). Connections idle longer than
// ttl are dropped — lazily on take, and by a background sweeper that
// starts with the first park and stops on close. All connection closes
// and notify callbacks run outside the pool lock.
type connPool struct {
	maxIdle int
	ttl     time.Duration
	// notify reports each transition for observability; nil disables.
	notify func(key string, op obs.PoolOp)

	mu       sync.Mutex
	idle     map[string][]idleConn
	closed   bool
	sweeping bool
	stop     chan struct{}

	reuses    atomic.Int64
	misses    atomic.Int64
	parked    atomic.Int64
	evicted   atomic.Int64
	discarded atomic.Int64
}

func newConnPool(maxIdle int, ttl time.Duration, notify func(string, obs.PoolOp)) *connPool {
	return &connPool{
		maxIdle: maxIdle,
		ttl:     ttl,
		notify:  notify,
		idle:    make(map[string][]idleConn),
		stop:    make(chan struct{}),
	}
}

func (p *connPool) event(key string, op obs.PoolOp) {
	if p.notify != nil {
		p.notify(key, op)
	}
}

func (p *connPool) expired(e idleConn, now time.Time) bool {
	return p.ttl > 0 && now.Sub(e.since) > p.ttl
}

// take pops the path's most recently parked connection, dropping expired
// entries it finds on the way. It returns nil (a miss) when nothing
// usable is parked.
func (p *connPool) take(key string) *pooledConn {
	now := time.Now()
	var dead []*pooledConn
	var got *pooledConn
	p.mu.Lock()
	if !p.closed {
		list := p.idle[key]
		for len(list) > 0 && got == nil {
			e := list[len(list)-1]
			list = list[:len(list)-1]
			if p.expired(e, now) {
				dead = append(dead, e.pc)
				continue
			}
			got = e.pc
		}
		if len(list) == 0 {
			delete(p.idle, key)
		} else {
			p.idle[key] = list
		}
	}
	p.mu.Unlock()
	for _, pc := range dead {
		pc.conn.Close()
		p.evicted.Add(1)
		p.event(key, obs.PoolEvict)
	}
	if got == nil {
		p.misses.Add(1)
		p.event(key, obs.PoolMiss)
		return nil
	}
	p.reuses.Add(1)
	p.event(key, obs.PoolReuse)
	return got
}

// park returns a still-usable connection to the path's idle slots,
// closing it instead when the pool is closed or the path is full.
func (p *connPool) park(key string, pc *pooledConn) {
	p.mu.Lock()
	if p.closed || p.maxIdle <= 0 || len(p.idle[key]) >= p.maxIdle {
		p.mu.Unlock()
		pc.conn.Close()
		p.discarded.Add(1)
		p.event(key, obs.PoolDiscard)
		return
	}
	p.idle[key] = append(p.idle[key], idleConn{pc: pc, since: time.Now()})
	startSweep := p.ttl > 0 && !p.sweeping
	if startSweep {
		p.sweeping = true
	}
	p.mu.Unlock()
	p.parked.Add(1)
	p.event(key, obs.PoolPark)
	if startSweep {
		go p.sweep()
	}
}

// sweep evicts TTL-expired connections every half-TTL until close.
func (p *connPool) sweep() {
	interval := p.ttl / 2
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-p.stop:
			return
		case now := <-tick.C:
			p.expire(now)
		}
	}
}

// expire drops every parked connection older than the TTL.
func (p *connPool) expire(now time.Time) {
	type victim struct {
		key string
		pc  *pooledConn
	}
	var victims []victim
	p.mu.Lock()
	for key, list := range p.idle {
		kept := list[:0]
		for _, e := range list {
			if p.expired(e, now) {
				victims = append(victims, victim{key, e.pc})
			} else {
				kept = append(kept, e)
			}
		}
		if len(kept) == 0 {
			delete(p.idle, key)
		} else {
			p.idle[key] = kept
		}
	}
	p.mu.Unlock()
	for _, v := range victims {
		v.pc.conn.Close()
		p.evicted.Add(1)
		p.event(v.key, obs.PoolEvict)
	}
}

// close evicts everything, stops the sweeper, and makes future parks
// discard. Idempotent.
func (p *connPool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	idle := p.idle
	p.idle = nil
	sweeping := p.sweeping
	p.mu.Unlock()
	if sweeping {
		close(p.stop)
	}
	for key, list := range idle {
		for _, e := range list {
			e.pc.conn.Close()
			p.evicted.Add(1)
			p.event(key, obs.PoolEvict)
		}
	}
}

func (p *connPool) stats() PoolStats {
	p.mu.Lock()
	idle := 0
	for _, list := range p.idle {
		idle += len(list)
	}
	p.mu.Unlock()
	return PoolStats{
		Reuses:    p.reuses.Load(),
		Misses:    p.misses.Load(),
		Parked:    p.parked.Load(),
		Evicted:   p.evicted.Load(),
		Discarded: p.discarded.Load(),
		Idle:      idle,
	}
}
