package realnet

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/relay"
)

// fetchOnce runs one whole transfer through tr and fails the test on a
// transfer error.
func fetchOnce(t *testing.T, tr *Transport, obj core.Object) {
	t.Helper()
	h := tr.Start(obj, core.Path{}, 0, obj.Size)
	tr.Wait(h)
	if err := h.Result().Err; err != nil {
		t.Fatalf("transfer failed: %v", err)
	}
}

// TestFlightWideEventOnFetch asserts the client-side wide event carries
// the full investigation row: path key matching the health fold key,
// phase durations for the transfer's real stages, delivered bytes,
// outcome class, and the trace ID linking it to the span timeline.
func TestFlightWideEventOnFetch(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("obj.bin", 100_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()

	rec := flight.NewRecorder(flight.Config{Ring: 16})
	spans := obs.NewSpanCollector(0)
	tr := &Transport{
		Servers: map[string]string{"origin": ol.Addr().String()},
		Flight:  rec,
		Spans:   spans,
	}
	obj := core.Object{Server: "origin", Name: "obj.bin", Size: 100_000}
	fetchOnce(t, tr, obj)

	evs := rec.Events(flight.Filter{})
	if len(evs) != 1 {
		t.Fatalf("recorded %d wide events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Service != "client" || ev.Path != "direct" || ev.Object != "obj.bin" {
		t.Fatalf("event identity = %+v", ev)
	}
	if ev.Class != "ok" || ev.Err != "" {
		t.Fatalf("event outcome = %q/%q, want ok", ev.Class, ev.Err)
	}
	if ev.Bytes != 100_000 {
		t.Fatalf("event bytes = %d, want 100000", ev.Bytes)
	}
	if ev.Duration <= 0 {
		t.Fatalf("event duration = %v", ev.Duration)
	}
	phases := map[string]bool{}
	for _, p := range ev.Phases {
		if p.Secs < 0 {
			t.Fatalf("negative phase duration: %+v", ev.Phases)
		}
		phases[p.Name] = true
	}
	for _, want := range []string{"dial", "request-write", "ttfb", "stream"} {
		if !phases[want] {
			t.Fatalf("phases %v missing %q", ev.Phases, want)
		}
	}
	if ev.Trace == "" {
		t.Fatal("event carries no trace ID despite tracing on")
	}
	// The trace ID must resolve into the recorded span set.
	found := false
	for _, s := range spans.Spans() {
		if s.Trace.String() == ev.Trace {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("event trace %q matches no recorded span", ev.Trace)
	}
	// The transfer is finished, so the active table is empty.
	if act := rec.Active(); len(act) != 0 {
		t.Fatalf("active table after finish: %+v", act)
	}
}

// TestFlightEventRecordsRetriesAndWarm asserts the retry counter and
// the warm (pooled-connection) flag land on the wide event.
func TestFlightEventRecordsRetriesAndWarm(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("obj.bin", 50_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()

	var dials atomic.Int64
	flaky := func(network, addr string) (net.Conn, error) {
		if dials.Add(1) <= 2 {
			return nil, fmt.Errorf("transient dial failure")
		}
		return net.Dial(network, addr)
	}
	rec := flight.NewRecorder(flight.Config{Ring: 16})
	tr := &Transport{
		Servers:      map[string]string{"origin": ol.Addr().String()},
		Dial:         flaky,
		MaxRetries:   2,
		RetryBackoff: time.Millisecond,
		Flight:       rec,
	}
	obj := core.Object{Server: "origin", Name: "obj.bin", Size: 50_000}
	fetchOnce(t, tr, obj)
	evs := rec.Events(flight.Filter{})
	if len(evs) != 1 || evs[0].Retries != 2 {
		t.Fatalf("events = %+v, want one with 2 retries", evs)
	}
	if evs[0].Warm {
		t.Fatalf("cold fetch marked warm: %+v", evs[0])
	}

	// A warm continuation reuses the pooled connection: marked warm, no
	// retries.
	h := tr.StartWarm(obj, core.Path{}, 0, obj.Size)
	tr.Wait(h)
	if err := h.Result().Err; err != nil {
		t.Fatalf("warm fetch failed: %v", err)
	}
	evs = rec.Events(flight.Filter{N: 1})
	if len(evs) != 1 || !evs[0].Warm || evs[0].Retries != 0 {
		t.Fatalf("warm fetch event = %+v", evs)
	}
}

// TestFlightEventRecordsClientCacheHit asserts a client-cache hit is
// recorded as cache "hit" with the delivered bytes, without a dial
// phase (the network was never touched).
func TestFlightEventRecordsClientCacheHit(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("obj.bin", 60_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()

	rec := flight.NewRecorder(flight.Config{Ring: 16})
	tr := &Transport{
		Servers:    map[string]string{"origin": ol.Addr().String()},
		CacheBytes: 1 << 20,
		Flight:     rec,
	}
	obj := core.Object{Server: "origin", Name: "obj.bin", Size: 60_000}
	fetchOnce(t, tr, obj) // fill
	fetchOnce(t, tr, obj) // hit

	evs := rec.Events(flight.Filter{N: 1})
	if len(evs) != 1 {
		t.Fatalf("events = %+v", evs)
	}
	hit := evs[0]
	if hit.Cache != "hit" || hit.Bytes != 60_000 || hit.Class != "ok" {
		t.Fatalf("cache-hit event = %+v", hit)
	}
	for _, p := range hit.Phases {
		if p.Name == "dial" {
			t.Fatalf("cache hit dialed: %+v", hit.Phases)
		}
	}
}

// TestFlightEventOnFailure asserts a failing transfer records its error
// class and detail.
func TestFlightEventOnFailure(t *testing.T) {
	rec := flight.NewRecorder(flight.Config{Ring: 16})
	tr := &Transport{
		Servers: map[string]string{"origin": "127.0.0.1:1"}, // nothing listens
		Flight:  rec,
	}
	obj := core.Object{Server: "origin", Name: "obj.bin", Size: 1000}
	h := tr.Start(obj, core.Path{}, 0, 1000)
	tr.Wait(h)
	if h.Result().Err == nil {
		t.Fatal("fetch from a dead origin succeeded")
	}
	evs := rec.Events(flight.Filter{})
	if len(evs) != 1 {
		t.Fatalf("events = %+v", evs)
	}
	if evs[0].Class == "ok" || evs[0].Err == "" {
		t.Fatalf("failure event = %+v, want class+detail", evs[0])
	}
}
