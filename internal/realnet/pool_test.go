package realnet

import (
	"bufio"
	"context"
	"errors"
	"io"
	"math"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/relay"
	"repro/internal/shaper"
)

// TestRetryDelayCapsLargeAttempts is the regression test for the backoff
// overflow: the old shift-based doubling went negative for large attempt
// numbers and fed rand.Int63n a non-positive argument, which panics. Every
// attempt number must now yield a positive delay within the jittered cap.
func TestRetryDelayCapsLargeAttempts(t *testing.T) {
	for _, backoff := range []time.Duration{0, time.Millisecond, time.Second} {
		tr := &Transport{RetryBackoff: backoff}
		for _, attempt := range []int{1, 2, 10, 64, 200, 1000, math.MaxInt32} {
			d := tr.retryDelay(attempt)
			if d <= 0 {
				t.Fatalf("backoff %v attempt %d: non-positive delay %v", backoff, attempt, d)
			}
			if max := maxRetryDelay + maxRetryDelay/2; d > max {
				t.Fatalf("backoff %v attempt %d: delay %v above jittered cap %v", backoff, attempt, d, max)
			}
		}
	}
}

// TestHugeMaxRetriesDoesNotPanic drives the real retry loop with an
// effectively unbounded retry budget against a dead address: the transfer
// must fail with the typed deadline error when its context expires, not
// blow up inside the backoff computation.
func TestHugeMaxRetriesDoesNotPanic(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close() // nothing listens here anymore
	tr := &Transport{
		Servers:      map[string]string{"origin": addr},
		MaxRetries:   math.MaxInt32,
		RetryBackoff: time.Nanosecond,
		DialTimeout:  20 * time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	h := tr.StartCtx(ctx, core.Object{Server: "origin", Name: "x", Size: 10}, core.Path{}, 0, 10)
	tr.Wait(h)
	res := h.Result()
	if res.Err == nil {
		t.Fatal("fetch against a dead address succeeded?")
	}
	if !errors.Is(res.Err, core.ErrProbeTimeout) && !errors.Is(res.Err, core.ErrCanceled) {
		t.Fatalf("err = %v, want the typed context error", res.Err)
	}
	if tr.Retries.Load() == 0 {
		t.Fatal("no retries recorded before the deadline")
	}
}

// TestStatusErrorKeepsConnWarm is the regression test for burning warm
// connections on status errors: a 404 on a pooled connection whose body
// was drained must return the connection to the pool, so the next warm
// fetch rides the same TCP connection.
func TestStatusErrorKeepsConnWarm(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("big.bin", 1_000_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()
	tr := &Transport{
		Servers: map[string]string{"origin": ol.Addr().String()},
		Verify:  true,
	}
	defer tr.Close()
	obj := core.Object{Server: "origin", Name: "big.bin", Size: 1_000_000}

	h := tr.Start(obj, core.Path{}, 0, 50_000)
	tr.Wait(h)
	if err := h.Result().Err; err != nil {
		t.Fatal(err)
	}

	// 404 on the parked connection: the error must surface, but the
	// connection survives.
	h2 := tr.StartWarm(core.Object{Server: "origin", Name: "missing.bin", Size: 10}, core.Path{}, 0, 10)
	tr.Wait(h2)
	var se *StatusError
	if err := h2.Result().Err; !errors.As(err, &se) || se.Status != 404 {
		t.Fatalf("err = %v, want a 404 StatusError", err)
	}

	h3 := tr.StartWarm(obj, core.Path{}, 50_000, 50_000)
	tr.Wait(h3)
	if err := h3.Result().Err; err != nil {
		t.Fatal(err)
	}
	if got := origin.Conns.Load(); got != 1 {
		t.Fatalf("origin accepted %d connections, want 1 (404 burned the warm conn)", got)
	}
	if st := tr.PoolStats(); st.Reuses != 2 {
		t.Fatalf("pool reuses = %d, want 2 (404 fetch + follow-up)", st.Reuses)
	}
}

// TestPoolBoundsIdlePerPath parks more connections than the per-path cap
// allows and checks the surplus is discarded, not accumulated.
func TestPoolBoundsIdlePerPath(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("big.bin", 1_000_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()
	tr := &Transport{
		Servers:        map[string]string{"origin": ol.Addr().String()},
		MaxIdlePerPath: 2,
	}
	defer tr.Close()
	obj := core.Object{Server: "origin", Name: "big.bin", Size: 1_000_000}

	// Four concurrent cold fetches: four connections finish and try to
	// park, but only two slots exist.
	var hs []core.Handle
	for i := 0; i < 4; i++ {
		hs = append(hs, tr.Start(obj, core.Path{}, int64(i)*1000, 1000))
	}
	tr.Wait(hs...)
	for _, h := range hs {
		if err := h.Result().Err; err != nil {
			t.Fatal(err)
		}
	}
	st := tr.PoolStats()
	if st.Idle != 2 {
		t.Fatalf("idle connections = %d, want 2 (the cap)", st.Idle)
	}
	if st.Parked != 2 || st.Discarded != 2 {
		t.Fatalf("parked/discarded = %d/%d, want 2/2", st.Parked, st.Discarded)
	}
}

// TestPoolTTLEvictsIdleConns parks a connection under a tiny TTL and
// waits for the background sweeper to drop it.
func TestPoolTTLEvictsIdleConns(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("big.bin", 1_000_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()
	tr := &Transport{
		Servers: map[string]string{"origin": ol.Addr().String()},
		IdleTTL: 30 * time.Millisecond,
	}
	defer tr.Close()
	obj := core.Object{Server: "origin", Name: "big.bin", Size: 1_000_000}
	h := tr.Start(obj, core.Path{}, 0, 1000)
	tr.Wait(h)
	if err := h.Result().Err; err != nil {
		t.Fatal(err)
	}
	if st := tr.PoolStats(); st.Idle != 1 {
		t.Fatalf("idle = %d right after parking, want 1", st.Idle)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		st := tr.PoolStats()
		if st.Evicted >= 1 && st.Idle == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweeper never evicted: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// countingDialer counts dials, so tests can assert connection reuse.
type countingDialer struct {
	dials atomic.Int64
	dial  func(network, addr string) (net.Conn, error)
}

func (d *countingDialer) Dial(network, addr string) (net.Conn, error) {
	d.dials.Add(1)
	if d.dial != nil {
		return d.dial(network, addr)
	}
	return net.Dial(network, addr)
}

// TestMultipathChunksReusePooledConns is the issue's pool-reuse
// acceptance test: a striped download over three paths must serve many
// chunks per dialed connection, with the reuse counter showing the warm
// continuations hitting the pool.
func TestMultipathChunksReusePooledConns(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("big.bin", 1_500_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()
	r1, r2 := &relay.Relay{}, &relay.Relay{}
	l1, err := r1.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l1.Close()
	l2, err := r2.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()

	cd := &countingDialer{}
	tr := &Transport{
		Servers: map[string]string{"origin": ol.Addr().String()},
		Relays:  map[string]string{"r1": l1.Addr().String(), "r2": l2.Addr().String()},
		Dial:    cd.Dial,
		Verify:  true,
	}
	defer tr.Close()

	obj := core.Object{Server: "origin", Name: "big.bin", Size: 1_500_000}
	dl := &core.MultipathDownloader{Transport: tr, ChunkBytes: 100_000}
	res, err := dl.Download(obj, []string{"r1", "r2"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 {
		t.Fatalf("%d chunk failures on loopback", res.Failures)
	}

	const chunks = 15 // 1.5 MB / 100 KB
	dials := cd.dials.Load()
	if dials >= chunks {
		t.Fatalf("%d dials for %d chunks: no connection reuse", dials, chunks)
	}
	st := tr.PoolStats()
	if st.Reuses < chunks/2 {
		t.Fatalf("pool reuses = %d, want at least %d of %d chunks warm", st.Reuses, chunks/2, chunks)
	}
	t.Logf("chunks=%d dials=%d pool=%+v", chunks, dials, st)
}

// TestPartialDeliveryRecorded checks the streaming pipeline's progress
// accounting: a transfer killed mid-stream reports how many bytes
// actually arrived.
func TestPartialDeliveryRecorded(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("big.bin", 4_000_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()
	d := shaper.NewDialer()
	d.SetProfile(ol.Addr().String(), shaper.PathProfile{DownloadBps: 4e6}) // 500 KB/s
	tr := &Transport{
		Servers:         map[string]string{"origin": ol.Addr().String()},
		Dial:            d.Dial,
		Verify:          true,
		TransferTimeout: 400 * time.Millisecond,
		MaxRetries:      -1,
	}
	defer tr.Close()
	obj := core.Object{Server: "origin", Name: "big.bin", Size: 4_000_000}
	h := tr.Start(obj, core.Path{}, 0, 4_000_000) // ~8 s at 500 KB/s: the deadline wins
	tr.Wait(h)
	res := h.Result()
	if res.Err == nil {
		t.Fatal("4 MB at 500 KB/s finished inside 400 ms?")
	}
	if res.Delivered <= 0 || res.Delivered >= res.Bytes {
		t.Fatalf("delivered = %d of %d, want a proper partial count", res.Delivered, res.Bytes)
	}
	if got := res.DeliveredBytes(); got != res.Delivered {
		t.Fatalf("DeliveredBytes() = %d, want %d", got, res.Delivered)
	}
}

// corruptingProxy splices client<->origin, flipping one byte of the
// server->client stream at the given position.
func corruptingProxy(t *testing.T, upstream string, flipAt int64) net.Listener {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				up, err := net.Dial("tcp", upstream)
				if err != nil {
					return
				}
				defer up.Close()
				go io.Copy(up, c)
				var pos int64
				buf := make([]byte, 4096)
				for {
					n, err := up.Read(buf)
					if n > 0 {
						if flipAt >= pos && flipAt < pos+int64(n) {
							buf[flipAt-pos] ^= 0xff
						}
						pos += int64(n)
						if _, werr := c.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}()
		}
	}()
	return l
}

// TestMidStreamCorruptionDetected checks the incremental verifier inside
// the stream loop: a byte flipped deep in the body fails the transfer
// with a content-mismatch error.
func TestMidStreamCorruptionDetected(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("big.bin", 1_000_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()
	// Flip a byte ~500 KB into the stream (well past the response head).
	proxy := corruptingProxy(t, ol.Addr().String(), 500_000)
	defer proxy.Close()
	tr := &Transport{
		Servers:    map[string]string{"origin": proxy.Addr().String()},
		Verify:     true,
		MaxRetries: -1,
	}
	defer tr.Close()
	obj := core.Object{Server: "origin", Name: "big.bin", Size: 1_000_000}
	h := tr.Start(obj, core.Path{}, 0, 800_000)
	tr.Wait(h)
	res := h.Result()
	if res.Err == nil {
		t.Fatal("corrupted stream verified clean")
	}
	if !strings.Contains(res.Err.Error(), "content mismatch") {
		t.Fatalf("err = %v, want content mismatch", res.Err)
	}
	// The clean prefix was still counted as delivered progress.
	if res.Delivered <= 0 || res.Delivered > 500_000 {
		t.Fatalf("delivered = %d, want a partial count up to the corruption", res.Delivered)
	}
}

// TestPoolCloseDiscards checks Close semantics: parked connections are
// evicted and later finishers are discarded instead of parked.
func TestPoolCloseDiscards(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("big.bin", 1_000_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()
	tr := &Transport{Servers: map[string]string{"origin": ol.Addr().String()}}
	obj := core.Object{Server: "origin", Name: "big.bin", Size: 1_000_000}
	h := tr.Start(obj, core.Path{}, 0, 1000)
	tr.Wait(h)
	if err := h.Result().Err; err != nil {
		t.Fatal(err)
	}
	tr.Close()
	st := tr.PoolStats()
	if st.Idle != 0 || st.Evicted != 1 {
		t.Fatalf("after Close: idle=%d evicted=%d, want 0/1", st.Idle, st.Evicted)
	}
	// Transfers still work, but their connections are discarded now.
	h2 := tr.Start(obj, core.Path{}, 0, 1000)
	tr.Wait(h2)
	if err := h2.Result().Err; err != nil {
		t.Fatal(err)
	}
	if st := tr.PoolStats(); st.Discarded == 0 {
		t.Fatal("post-Close connection was not discarded")
	}
	tr.Close() // idempotent
}

// TestTakeSkipsExpiredLIFO exercises the pool directly: expired entries
// found on the take path are evicted, and take prefers the most recently
// parked connection.
func TestTakeSkipsExpiredLIFO(t *testing.T) {
	p := newConnPool(4, 50*time.Millisecond, nil)
	mk := func() (*pooledConn, net.Conn) {
		a, b := net.Pipe()
		return &pooledConn{conn: a, br: bufio.NewReader(a)}, b
	}
	old, _ := mk()
	fresh, _ := mk()
	p.park("k", old)
	p.park("k", fresh)
	// Backdate the first entry past the TTL.
	p.mu.Lock()
	p.idle["k"][0].since = time.Now().Add(-time.Minute)
	p.mu.Unlock()

	if got := p.take("k"); got != fresh {
		t.Fatal("take did not return the most recently parked conn")
	}
	if got := p.take("k"); got != nil {
		t.Fatal("expired entry served instead of evicted")
	}
	st := p.stats()
	if st.Reuses != 1 || st.Evicted != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 reuse, 1 evict, 1 miss", st)
	}
	p.close()
}
