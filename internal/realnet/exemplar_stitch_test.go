package realnet

import (
	"context"
	"encoding/json"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/httpx"
	"repro/internal/obs"
	"repro/internal/relay"
	"repro/internal/shaper"
)

// TestExemplarResolvesToStitchedTrace is the acceptance path of the
// exemplar layer: real traffic flows client -> relay -> origin with all
// three processes collecting spans; the relay's /metrics is scraped
// over real HTTP in OpenMetrics mode; the exemplar on the bucket
// covering the histogram's p99 is pulled out of the exposition text;
// and that trace ID — known only from the scrape — stitches into one
// complete cross-process tree. This is the debugging loop the plane
// exists for: see a bad tail on a dashboard, follow its exemplar to the
// exact request that caused it.
func TestExemplarResolvesToStitchedTrace(t *testing.T) {
	originSpans := obs.NewSpanCollector(256)
	origin := relay.NewOriginServer(relay.WithSpans(originSpans))
	const smallSize, largeSize = int64(8 << 10), int64(2 << 20)
	origin.Put("small.bin", smallSize)
	origin.Put("large.bin", largeSize)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()

	// The relay->origin leg is shaped to ~12 Mb/s: the small objects
	// still forward in milliseconds, while the large one takes over a
	// second — landing its trace alone in a tail bucket of the relay's
	// [0,20)s latency histogram (1s coarse buckets on /metrics).
	relaySpans := obs.NewSpanCollector(256)
	r := relay.New(relay.WithSpans(relaySpans))
	sh := shaper.NewDialer()
	sh.SetProfile(ol.Addr().String(), shaper.PathProfile{DownloadBps: 12e6})
	r.Dial = sh.Dial
	rl, err := r.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()

	// The relay's metrics endpoint, wired exactly as relayd wires it.
	d := &daemon.Daemon{
		Prefix: "relay",
		Prom: func(p *obs.Prom) {
			p.Counter("relay_requests_total", "Requests handled.", float64(r.Requests.Load()))
			p.Histogram("relay_forward_latency_seconds", "Request forwarding times.", r.LatencySnapshot())
		},
	}
	ml, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ml.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go (&httpx.Server{Mux: d.Mux()}).ServeListener(ctx, ml)

	clientSpans := obs.NewSpanCollector(256)
	tr := &Transport{
		Servers: map[string]string{"origin": ol.Addr().String()},
		Relays:  map[string]string{"r1": rl.Addr().String()},
		Spans:   clientSpans,
		Verify:  true,
	}
	fetch := func(name string, size int64) {
		t.Helper()
		h := tr.Start(core.Object{Server: "origin", Name: name, Size: size},
			core.Path{Via: "r1"}, 0, size)
		tr.Wait(h)
		if err := h.Result().Err; err != nil {
			t.Fatalf("fetch %s: %v", name, err)
		}
	}
	for i := 0; i < 20; i++ {
		fetch("small.bin", smallSize)
	}
	fetch("large.bin", largeSize)

	// Scrape the relay in OpenMetrics mode over real HTTP.
	status, hdr, body, err := httpx.Get(ctx, nil, ml.Addr().String(), "/metrics",
		map[string]string{"accept": "application/openmetrics-text"}, 10*time.Second)
	if err != nil || status != 200 {
		t.Fatalf("scrape: status %d err %v", status, err)
	}
	if hdr["content-type"] != obs.OpenMetricsContentType {
		t.Fatalf("scrape content-type %q", hdr["content-type"])
	}
	if err := obs.LintOpenMetrics(body); err != nil {
		t.Fatalf("scrape not valid OpenMetrics: %v", err)
	}

	// The p99 lives in the slow transfer's bucket; find that bucket's
	// exemplar in the exposition text.
	fams, err := obs.ParseProm(body)
	if err != nil {
		t.Fatalf("scrape parse: %v", err)
	}
	hist, err := fams["relay_forward_latency_seconds"].Histogram()
	if err != nil {
		t.Fatalf("latency family: %v", err)
	}
	if hist.Total != 21 {
		t.Fatalf("relay observed %d requests, want 21", hist.Total)
	}
	if hist.P99 <= 1 {
		t.Fatalf("p99 %.3fs not in the shaped slow bucket (>1s)", hist.P99)
	}
	traceHex, exemplarValue := exemplarOnBucketCovering(t, string(body),
		"relay_forward_latency_seconds_bucket", hist.P99)
	if exemplarValue <= 1 {
		t.Fatalf("p99 exemplar value %.3fs, want the >1s slow request", exemplarValue)
	}

	// The scraped trace ID must stitch — across all three processes'
	// collectors — into one complete client -> relay -> origin tree.
	var trace obs.TraceID
	if err := json.Unmarshal([]byte(strconv.Quote(traceHex)), &trace); err != nil {
		t.Fatalf("exemplar trace_id %q: %v", traceHex, err)
	}
	all := append(clientSpans.Spans(), relaySpans.Spans()...)
	all = append(all, originSpans.Spans()...)
	roots := obs.StitchTrace(trace, all)
	if len(roots) != 1 {
		t.Fatalf("trace %s stitched to %d roots, want one complete tree", trace, len(roots))
	}
	root := roots[0]
	if root.Span.Service != "client" || root.Span.Phase != "transfer" {
		t.Fatalf("root span %s/%s, want client/transfer", root.Span.Service, root.Span.Phase)
	}
	byService := map[string]obs.Span{}
	parentOf := map[string]obs.SpanID{}
	root.Walk(func(n *obs.TraceNode, depth int) {
		key := n.Span.Service + "/" + n.Span.Phase
		byService[key] = n.Span
		parentOf[key] = n.Span.Parent
	})
	fwd, ok := byService["relay/forward"]
	if !ok {
		t.Fatalf("no relay hop in the stitched tree: %v", keysOf(byService))
	}
	if fwd.Parent != root.Span.ID {
		t.Fatal("relay forward span not parented on the client transfer span")
	}
	serve, ok := byService["origin/serve"]
	if !ok {
		t.Fatalf("no origin hop in the stitched tree: %v", keysOf(byService))
	}
	if serve.Parent != fwd.ID {
		t.Fatal("origin serve span not parented on the relay forward span")
	}
	// The slow transfer really is the one the exemplar names.
	if got := time.Duration(root.Span.Duration); got < time.Second {
		t.Fatalf("stitched root took %v, the exemplar was supposed to name the >1s transfer", got)
	}
	// The tree is complete: both sides of the relay hop recorded their
	// per-phase children.
	for _, phase := range []string{"client/ttfb", "client/stream", "relay/dial", "relay/stream"} {
		if _, ok := byService[phase]; !ok {
			t.Fatalf("stitched tree missing %s: %v", phase, keysOf(byService))
		}
	}
}

// exemplarOnBucketCovering scans OpenMetrics text for the family's
// bucket whose le edge covers quantile value q (the smallest edge >= q)
// and returns that bucket's exemplar trace ID and value.
func exemplarOnBucketCovering(t *testing.T, text, bucketName string, q float64) (traceHex string, value float64) {
	t.Helper()
	bestLE := 0.0
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, bucketName+`{le="`) {
			continue
		}
		rest := line[len(bucketName)+5:]
		leStr, _, ok := strings.Cut(rest, `"`)
		if !ok || leStr == "+Inf" {
			continue
		}
		le, err := strconv.ParseFloat(leStr, 64)
		if err != nil || le < q {
			continue
		}
		if bestLE != 0 && le >= bestLE {
			continue
		}
		// This is the lowest edge so far that still covers q; take its
		// exemplar if it carries one.
		_, ex, ok := strings.Cut(line, ` # {trace_id="`)
		if !ok {
			continue
		}
		hex, rest2, ok := strings.Cut(ex, `"}`)
		if !ok {
			continue
		}
		fields := strings.Fields(rest2)
		if len(fields) < 1 {
			continue
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			continue
		}
		bestLE, traceHex, value = le, hex, v
	}
	if traceHex == "" {
		t.Fatalf("no exemplar on any %s bucket covering %.3f:\n%s", bucketName, q, text)
	}
	return traceHex, value
}

func keysOf(m map[string]obs.Span) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
