package realnet

import (
	"bufio"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultproxy"
	"repro/internal/relay"
)

// Regression tests for the stale-pooled-connection bugs the chaos sweep
// surfaced: a parked keep-alive connection killed (or half-opened) by
// the network between requests used to surface as a spurious
// ErrProbeTimeout on the next warm fetch instead of the free fresh-dial
// fallback, and a deadline left armed by a previous transfer could cut a
// later, lazier warm fetch short.

// TestWarmFetchSurvivesSeveredPool kills the parked connection between
// requests — the proxy RSTs both sides, the classic NAT/middlebox reap —
// and checks the next warm fetch falls back to a fresh dial cleanly: no
// error, and in particular no ErrProbeTimeout charged to a path that is
// perfectly healthy.
func TestWarmFetchSurvivesSeveredPool(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("obj.bin", 1<<20)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()

	p, err := faultproxy.Listen("127.0.0.1:0", ol.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	tr := &Transport{
		Servers: map[string]string{"origin": p.Addr()},
		Verify:  true,
	}
	defer tr.Close()
	obj := core.Object{Server: "origin", Name: "obj.bin", Size: 1 << 20}

	h := tr.Start(obj, core.Path{}, 0, 64<<10)
	tr.Wait(h)
	if err := h.Result().Err; err != nil {
		t.Fatalf("cold fetch: %v", err)
	}

	// The transfer parked its connection; sever it under the pool.
	p.Sever()
	time.Sleep(20 * time.Millisecond) // let the RST land in the socket

	h2 := tr.StartWarm(obj, core.Path{}, 64<<10, 64<<10)
	tr.Wait(h2)
	if err := h2.Result().Err; err != nil {
		if errors.Is(err, core.ErrProbeTimeout) {
			t.Fatalf("severed pooled conn classified as probe timeout: %v", err)
		}
		t.Fatalf("warm fetch after sever: %v", err)
	}
	if st := tr.PoolStats(); st.Reuses != 1 {
		t.Fatalf("pool reuses = %d, want 1 (the severed conn must still be tried warm)", st.Reuses)
	}
	if got := p.Accepted(); got != 2 {
		t.Fatalf("proxy accepted %d conns, want 2 (fallback must redial)", got)
	}
}

// TestWarmFetchClearsLingeringDeadline parks a connection that still has
// an (expired) transfer deadline armed — exactly what a parked conn
// looked like when a park site skipped the deadline clear — and checks a
// warm fetch with no deadline of its own rides it successfully. The old
// loop only touched the conn deadline when its own ctx had one, so the
// leftover expiry fired on the first read and surfaced as a spurious
// ErrProbeTimeout.
func TestWarmFetchClearsLingeringDeadline(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("obj.bin", 1<<20)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()

	tr := &Transport{
		Servers: map[string]string{"origin": ol.Addr().String()},
		Verify:  true,
	}
	defer tr.Close()
	obj := core.Object{Server: "origin", Name: "obj.bin", Size: 1 << 20}

	// Hand-park a healthy connection with a deadline already in the past.
	conn, err := net.Dial("tcp", ol.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.SetDeadline(time.Now().Add(-time.Second))
	tr.idlePool().park(pathKey(core.Path{}), &pooledConn{conn: conn, br: bufio.NewReader(conn)})

	h := tr.StartWarm(obj, core.Path{}, 0, 64<<10)
	tr.Wait(h)
	if err := h.Result().Err; err != nil {
		t.Fatalf("warm fetch inherited a stale deadline: %v", err)
	}
	if st := tr.PoolStats(); st.Reuses != 1 {
		t.Fatalf("pool reuses = %d, want 1 (the parked conn was healthy)", st.Reuses)
	}
	if got := origin.Conns.Load(); got != 1 {
		t.Fatalf("origin accepted %d conns, want 1 (no redial needed)", got)
	}
}

// TestWarmFetchSurvivesDeadPooledConn parks a connection that is
// already closed — the sharpest form of staleness, where even arming a
// deadline fails — and checks the warm fetch falls straight back to a
// fresh dial instead of surfacing the socket error (or worse, writing
// into a dead conn and misclassifying the fallout as a probe timeout).
func TestWarmFetchSurvivesDeadPooledConn(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("obj.bin", 1<<20)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()

	tr := &Transport{
		Servers: map[string]string{"origin": ol.Addr().String()},
		Verify:  true,
	}
	defer tr.Close()
	obj := core.Object{Server: "origin", Name: "obj.bin", Size: 1 << 20}

	conn, err := net.Dial("tcp", ol.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	tr.idlePool().park(pathKey(core.Path{}), &pooledConn{conn: conn, br: bufio.NewReader(conn)})

	h := tr.StartWarm(obj, core.Path{}, 0, 64<<10)
	tr.Wait(h)
	if err := h.Result().Err; err != nil {
		t.Fatalf("warm fetch on a closed pooled conn: %v", err)
	}
	if errors.Is(h.Result().Err, core.ErrProbeTimeout) {
		t.Fatal("closed pooled conn classified as probe timeout")
	}
}
