package realnet

import (
	"testing"

	"repro/internal/core"
	"repro/internal/relay"
)

// benchWarmFetch measures warm range fetches of one size over loopback
// with verification on. The point of ReportAllocs here is the streaming
// pipeline's contract: allocations per transfer stay flat as the range
// grows from 64 KB to 16 MB, because bodies flow through a recycled
// 64 KB buffer instead of being materialized.
func benchWarmFetch(b *testing.B, size int64) {
	origin := relay.NewOrigin()
	origin.Put("bench.bin", 32<<20)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ol.Close()
	tr := &Transport{
		Servers: map[string]string{"origin": ol.Addr().String()},
		Verify:  true,
	}
	defer tr.Close()
	obj := core.Object{Server: "origin", Name: "bench.bin", Size: 32 << 20}

	// Prime the pool so every measured iteration is warm.
	h := tr.Start(obj, core.Path{}, 0, size)
	tr.Wait(h)
	if err := h.Result().Err; err != nil {
		b.Fatal(err)
	}

	b.SetBytes(size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := tr.StartWarm(obj, core.Path{}, 0, size)
		tr.Wait(h)
		if err := h.Result().Err; err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWarmFetch64K(b *testing.B) { benchWarmFetch(b, 64<<10) }
func BenchmarkWarmFetch1M(b *testing.B)  { benchWarmFetch(b, 1<<20) }
func BenchmarkWarmFetch16M(b *testing.B) { benchWarmFetch(b, 16<<20) }
