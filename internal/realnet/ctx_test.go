package realnet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/relay"
	"repro/internal/shaper"
)

func TestCancelClosesTransferPromptly(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("big.bin", 8_000_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()

	d := shaper.NewDialer()
	d.SetProfile(ol.Addr().String(), shaper.PathProfile{DownloadBps: 1e6}) // 8 MB would take ~64s
	tr := &Transport{
		Servers: map[string]string{"origin": ol.Addr().String()},
		Dial:    d.Dial,
	}

	ctx, cancel := context.WithCancel(context.Background())
	obj := core.Object{Server: "origin", Name: "big.bin", Size: 8_000_000}
	h := tr.StartCtx(ctx, obj, core.Path{}, 0, 8_000_000)
	time.AfterFunc(100*time.Millisecond, cancel)

	start := time.Now()
	tr.Wait(h)
	elapsed := time.Since(start)

	res := h.Result()
	if !errors.Is(res.Err, core.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", res.Err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("Wait took %v after cancellation; conn not closed?", elapsed)
	}
	if tr.Canceled.Load() == 0 {
		t.Fatal("cancellation not accounted")
	}
}

func TestProbeRaceCancelsLosingConnections(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("big.bin", 400_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()
	fast := &relay.Relay{}
	fl, err := fast.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	slow := &relay.Relay{}
	sl, err := slow.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sl.Close()

	d := shaper.NewDialer()
	d.SetProfile(ol.Addr().String(), shaper.PathProfile{DownloadBps: 4e6})
	d.SetProfile(fl.Addr().String(), shaper.PathProfile{DownloadBps: 16e6})
	// The slow loser's 200 KB probe would take ~6.4s to drain; if losers
	// are canceled when the winner commits, the whole operation finishes
	// long before that.
	d.SetProfile(sl.Addr().String(), shaper.PathProfile{DownloadBps: 0.25e6})
	tr := &Transport{
		Servers: map[string]string{"origin": ol.Addr().String()},
		Relays: map[string]string{
			"fast": fl.Addr().String(),
			"slow": sl.Addr().String(),
		},
		Dial:   d.Dial,
		Verify: true,
	}

	obj := core.Object{Server: "origin", Name: "big.bin", Size: 400_000}
	start := time.Now()
	out := core.SelectAndFetchCtx(context.Background(), tr, obj, []string{"slow", "fast"},
		core.Config{ProbeBytes: 200_000})
	elapsed := time.Since(start)

	if out.Err != nil {
		t.Fatalf("outcome error: %v", out.Err)
	}
	if out.Selected.Via != "fast" {
		t.Fatalf("selected %v, want via fast", out.Selected)
	}
	if elapsed > 4*time.Second {
		t.Fatalf("operation took %v; losing probes drained instead of being canceled", elapsed)
	}
	if tr.Canceled.Load() == 0 {
		t.Fatal("no loser cancellation accounted")
	}
}

func TestColdDialRetryWithBackoff(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("big.bin", 100_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()

	var dials atomic.Int64
	flaky := func(network, addr string) (net.Conn, error) {
		if dials.Add(1) <= 2 {
			return nil, fmt.Errorf("transient dial failure")
		}
		return net.Dial(network, addr)
	}
	tr := &Transport{
		Servers:      map[string]string{"origin": ol.Addr().String()},
		Dial:         flaky,
		MaxRetries:   2,
		RetryBackoff: time.Millisecond,
	}

	obj := core.Object{Server: "origin", Name: "big.bin", Size: 100_000}
	h := tr.Start(obj, core.Path{}, 0, 100_000)
	tr.Wait(h)
	if err := h.Result().Err; err != nil {
		t.Fatalf("transfer failed despite retries: %v", err)
	}
	if got := tr.Retries.Load(); got != 2 {
		t.Fatalf("Retries = %d, want 2", got)
	}
	if got := dials.Load(); got != 3 {
		t.Fatalf("%d dial attempts, want 3", got)
	}
}

func TestRetriesExhausted(t *testing.T) {
	tr := &Transport{
		Servers:      map[string]string{"origin": "127.0.0.1:1"},
		Dial:         func(string, string) (net.Conn, error) { return nil, fmt.Errorf("down") },
		MaxRetries:   1,
		RetryBackoff: time.Millisecond,
	}
	h := tr.Start(core.Object{Server: "origin", Name: "x", Size: 10}, core.Path{}, 0, 10)
	tr.Wait(h)
	if h.Result().Err == nil {
		t.Fatal("expected error once retries are exhausted")
	}
	if got := tr.Retries.Load(); got != 1 {
		t.Fatalf("Retries = %d, want 1", got)
	}
}

func TestTransferTimeoutOnStalledServer(t *testing.T) {
	// A server that accepts and then never responds: the per-transfer
	// deadline must fail the fetch with the typed error, promptly.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) { io.Copy(io.Discard, c) }(c) // read, never reply
		}
	}()

	tr := &Transport{
		Servers:         map[string]string{"origin": l.Addr().String()},
		TransferTimeout: 150 * time.Millisecond,
		MaxRetries:      -1,
	}
	start := time.Now()
	h := tr.Start(core.Object{Server: "origin", Name: "x", Size: 1000}, core.Path{}, 0, 1000)
	tr.Wait(h)
	elapsed := time.Since(start)

	if !errors.Is(h.Result().Err, core.ErrProbeTimeout) {
		t.Fatalf("err = %v, want ErrProbeTimeout", h.Result().Err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("stalled transfer took %v to fail a 150ms deadline", elapsed)
	}
}

func TestDeadPathsReturnTypedErrorWithinDeadline(t *testing.T) {
	// Every path refers to a dead address: the operation must come back
	// quickly with ErrAllPathsFailed, not hang or return something vague.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := dead.Addr().String()
	dead.Close()

	tr := &Transport{
		Servers:    map[string]string{"origin": addr},
		Relays:     map[string]string{"r": addr},
		MaxRetries: -1,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	out := core.SelectAndFetchCtx(ctx, tr, core.Object{Server: "origin", Name: "x", Size: 1000},
		[]string{"r"}, core.Config{ProbeBytes: 500})
	if !errors.Is(out.Err, core.ErrAllPathsFailed) {
		t.Fatalf("err = %v, want ErrAllPathsFailed", out.Err)
	}
	if elapsed := time.Since(start); elapsed > 4*time.Second {
		t.Fatalf("dead-path operation took %v", elapsed)
	}
}

// killableProxy forwards TCP to a target and can be killed mid-flight:
// the listener closes and every spliced connection is severed.
type killableProxy struct {
	l      net.Listener
	target string
	bytes  atomic.Int64

	mu    sync.Mutex
	conns []net.Conn
}

func newKillableProxy(t *testing.T, target string) *killableProxy {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &killableProxy{l: l, target: target}
	go p.serve()
	return p
}

func (p *killableProxy) addr() string { return p.l.Addr().String() }

func (p *killableProxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns = append(p.conns, c)
	p.mu.Unlock()
}

func (p *killableProxy) serve() {
	for {
		client, err := p.l.Accept()
		if err != nil {
			return
		}
		upstream, err := net.Dial("tcp", p.target)
		if err != nil {
			client.Close()
			continue
		}
		p.track(client)
		p.track(upstream)
		go func() { io.Copy(upstream, client); upstream.Close() }()
		go func() {
			// Count downstream bytes as they flow (the conns are parked
			// for reuse, so waiting for EOF would count nothing).
			io.Copy(countWriter{client, &p.bytes}, upstream)
			client.Close()
		}()
	}
}

type countWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (c countWriter) Write(b []byte) (int, error) {
	n, err := c.w.Write(b)
	c.n.Add(int64(n))
	return n, err
}

// kill severs the proxy: no new connections, all spliced ones closed.
func (p *killableProxy) kill() {
	p.l.Close()
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conns {
		c.Close()
	}
}

func TestDownloaderFailsOverWhenRelayKilledMidFetch(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("big.bin", 2_000_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()
	r := &relay.Relay{}
	rl, err := r.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()
	proxy := newKillableProxy(t, rl.Addr().String())
	defer proxy.kill()

	d := shaper.NewDialer()
	d.SetProfile(ol.Addr().String(), shaper.PathProfile{DownloadBps: 4e6})
	d.SetProfile(proxy.addr(), shaper.PathProfile{DownloadBps: 16e6})
	tr := &Transport{
		Servers:      map[string]string{"origin": ol.Addr().String()},
		Relays:       map[string]string{"r": proxy.addr()},
		Dial:         d.Dial,
		Verify:       true,
		RetryBackoff: time.Millisecond,
	}

	// Kill the relay once it has delivered the probe and the first
	// segment (~600 KB), i.e. mid-download with the relay selected.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		deadline := time.Now().Add(20 * time.Second)
		for proxy.bytes.Load() < 550_000 {
			if time.Now().After(deadline) {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		proxy.kill()
	}()

	dl := &core.Downloader{
		Transport:    tr,
		ProbeBytes:   100_000,
		SegmentBytes: 500_000,
		RefreshEvery: -1, // no voluntary re-races; only failure forces a switch
	}
	obj := core.Object{Server: "origin", Name: "big.bin", Size: 2_000_000}
	res, err := dl.DownloadCtx(context.Background(), obj, []string{"r"})
	<-killed
	if err != nil {
		t.Fatalf("download did not survive the relay dying: %v", err)
	}
	if res.Failovers == 0 {
		t.Fatal("relay was killed mid-fetch but no failover recorded")
	}
	if res.FinalPath().Via != core.Direct {
		t.Fatalf("final path %v, want direct after relay death", res.FinalPath())
	}
	var total int64
	for _, s := range res.Segments {
		total += s.Bytes
	}
	if total != obj.Size {
		t.Fatalf("segments cover %d bytes, want %d", total, obj.Size)
	}
}

func TestWaitAnyReturnsOnCancellation(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("big.bin", 8_000_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()
	d := shaper.NewDialer()
	d.SetProfile(ol.Addr().String(), shaper.PathProfile{DownloadBps: 1e6})
	tr := &Transport{
		Servers: map[string]string{"origin": ol.Addr().String()},
		Dial:    d.Dial,
	}
	obj := core.Object{Server: "origin", Name: "big.bin", Size: 8_000_000}
	ctx, cancel := context.WithCancel(context.Background())
	ctx2, cancel2 := context.WithCancel(context.Background())
	h1 := tr.StartCtx(ctx, obj, core.Path{}, 0, 8_000_000)
	h2 := tr.StartCtx(ctx2, obj, core.Path{}, 0, 8_000_000)
	time.AfterFunc(100*time.Millisecond, cancel)

	start := time.Now()
	idx := tr.WaitAny(h1, h2)
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("WaitAny took %v after cancellation", elapsed)
	}
	if idx != 0 {
		t.Fatalf("WaitAny returned %d, want 0 (the canceled handle)", idx)
	}
	if !errors.Is(h1.Result().Err, core.ErrCanceled) {
		t.Fatalf("h1 err = %v, want ErrCanceled", h1.Result().Err)
	}
	// Reap the other transfer rather than letting it run to completion.
	cancel2()
	tr.Wait(h2)
}
