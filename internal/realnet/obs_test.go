package realnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/relay"
	"repro/internal/shaper"
)

// TestRetryEventsMatchCounter asserts that every cold re-attempt emits
// one RetryScheduled event — with the attempt number and a positive
// backoff — and that the event count stays in lockstep with the legacy
// Retries counter.
func TestRetryEventsMatchCounter(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("big.bin", 100_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()

	var dials atomic.Int64
	flaky := func(network, addr string) (net.Conn, error) {
		if dials.Add(1) <= 2 {
			return nil, fmt.Errorf("transient dial failure")
		}
		return net.Dial(network, addr)
	}
	m := obs.NewMetrics()
	trace := obs.NewTracer(32)
	tr := &Transport{
		Servers:      map[string]string{"origin": ol.Addr().String()},
		Dial:         flaky,
		MaxRetries:   2,
		RetryBackoff: time.Millisecond,
		Observer:     obs.Multi(m, trace),
	}

	obj := core.Object{Server: "origin", Name: "big.bin", Size: 100_000}
	h := tr.Start(obj, core.Path{}, 0, 100_000)
	tr.Wait(h)
	if err := h.Result().Err; err != nil {
		t.Fatalf("transfer failed despite retries: %v", err)
	}

	if got, want := m.Snapshot().Retries, tr.Retries.Load(); got != want || want != 2 {
		t.Fatalf("retry events = %d, counter = %d, want both 2", got, want)
	}
	var retries []obs.Event
	for _, e := range trace.Events() {
		if e.Kind == obs.KindRetry {
			retries = append(retries, e)
		}
	}
	if len(retries) != 2 {
		t.Fatalf("traced %d retry events, want 2: %v", len(retries), trace.Events())
	}
	for i, e := range retries {
		if e.Attempt != i+1 {
			t.Fatalf("retry %d attempt = %d, want %d", i, e.Attempt, i+1)
		}
		if e.Backoff <= 0 {
			t.Fatalf("retry %d has no backoff: %+v", i, e)
		}
		if e.Err == "" {
			t.Fatalf("retry %d carries no cause", i)
		}
		if e.Path.Server != "origin" || !e.Path.Direct() {
			t.Fatalf("retry %d path = %+v", i, e.Path)
		}
	}
}

// TestAbortEventMatchesCanceledCounter asserts a context-death teardown
// emits exactly one TransferAborted (class canceled), in lockstep with
// the legacy Canceled counter.
func TestAbortEventMatchesCanceledCounter(t *testing.T) {
	origin := relay.NewOrigin()
	origin.Put("big.bin", 8_000_000)
	ol, err := origin.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ol.Close()

	d := shaper.NewDialer()
	d.SetProfile(ol.Addr().String(), shaper.PathProfile{DownloadBps: 1e6})
	m := obs.NewMetrics()
	trace := obs.NewTracer(16)
	tr := &Transport{
		Servers:  map[string]string{"origin": ol.Addr().String()},
		Dial:     d.Dial,
		Observer: obs.Multi(m, trace),
	}

	ctx, cancel := context.WithCancel(context.Background())
	obj := core.Object{Server: "origin", Name: "big.bin", Size: 8_000_000}
	h := tr.StartCtx(ctx, obj, core.Path{}, 0, 8_000_000)
	time.AfterFunc(50*time.Millisecond, cancel)
	tr.Wait(h)

	if !errors.Is(h.Result().Err, core.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", h.Result().Err)
	}
	if got, want := m.Snapshot().Aborts, tr.Canceled.Load(); got != want || want == 0 {
		t.Fatalf("abort events = %d, Canceled counter = %d, want equal and nonzero", got, want)
	}
	found := false
	for _, e := range trace.Events() {
		if e.Kind == obs.KindAbort {
			found = true
			if e.Class != obs.ClassCanceled.String() {
				t.Fatalf("abort class = %q, want canceled", e.Class)
			}
		}
	}
	if !found {
		t.Fatal("no abort event traced")
	}
}

// TestStatusErrorClassifies asserts the transport's status-line error
// reports itself as ClassStatus through the core classifier, including
// when wrapped.
func TestStatusErrorClassifies(t *testing.T) {
	err := &StatusError{Status: 404, Reason: "not found"}
	if got := core.ErrClassOf(err); got != obs.ClassStatus {
		t.Fatalf("ErrClassOf(StatusError) = %v, want ClassStatus", got)
	}
	if got := core.ErrClassOf(fmt.Errorf("fetch: %w", err)); got != obs.ClassStatus {
		t.Fatalf("wrapped StatusError class = %v, want ClassStatus", got)
	}
}

// TestRealRaceEmitsUnifiedStream wires one Metrics collector into BOTH
// the engine config and the transport, runs a selection race on a real
// loopback testbed, and checks the unified counters are coherent.
func TestRealRaceEmitsUnifiedStream(t *testing.T) {
	tr, cleanup := testbed(t)
	defer cleanup()
	m := obs.NewMetrics()
	tr.Observer = m
	obj := core.Object{Server: "origin", Name: "big.bin", Size: 2_000_000}

	out := core.SelectAndFetchCtx(context.Background(), tr, obj,
		[]string{"fast", "slow"}, core.Config{ProbeBytes: 100_000, Observer: m})
	if out.Err != nil {
		t.Fatalf("race failed: %v", out.Err)
	}

	s := m.Snapshot()
	if s.Selections != 1 || s.ProbesStarted != 3 || s.ProbesFinished != 3 {
		t.Fatalf("counters: %+v", s)
	}
	label := "direct"
	if !out.Selected.IsDirect() {
		label = out.Selected.Via
	}
	if s.Paths[label].Selected != 1 {
		t.Fatalf("winner %q not tallied: %+v", label, s.Paths)
	}
	// Each engine-canceled loser tears its connection down, so transport
	// aborts track engine cancels (a loser that squeaked in just before
	// its cancellation can make aborts fall short, never exceed).
	if s.Aborts > s.ProbesCanceled || s.Aborts == 0 {
		t.Fatalf("engine canceled %d probes but transport aborted %d transfers",
			s.ProbesCanceled, s.Aborts)
	}
}
