package traceio

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/experiment"
	"repro/internal/topo"
)

func sampleRecords() []experiment.Record {
	return []experiment.Record{
		{
			Client: "Korea", Category: topo.Low, Server: "eBay", Time: 600,
			Candidates: []string{"MIT", "Texas"}, Selected: "MIT",
			DirectTp: 0.9e6, SelectedTp: 1.4e6,
			ProbeDirectTp: 0.8e6, ProbeBestTp: 1.2e6, Improvement: 55.5,
		},
		{
			Client: "Canada", Category: topo.High, Server: "eBay", Time: 960,
			Selected: "", DirectTp: 5e6, SelectedTp: 4.9e6, Improvement: -2,
		},
		{
			Client: "France", Category: topo.Medium, Server: "Yahoo", Time: 1320,
			Err: errors.New("relay down"),
		},
	}
}

func TestRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	if err := Write(&buf, "seed=42 scale=test", recs); err != nil {
		t.Fatal(err)
	}
	got, comment, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if comment != "seed=42 scale=test" {
		t.Fatalf("comment = %q", comment)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		a, b := recs[i], got[i]
		if a.Client != b.Client || a.Category != b.Category || a.Server != b.Server ||
			a.Time != b.Time || a.Selected != b.Selected ||
			a.DirectTp != b.DirectTp || a.SelectedTp != b.SelectedTp ||
			a.Improvement != b.Improvement {
			t.Fatalf("record %d differs:\n  %+v\n  %+v", i, a, b)
		}
		if (a.Err == nil) != (b.Err == nil) {
			t.Fatalf("record %d error mismatch", i)
		}
		if len(a.Candidates) != len(b.Candidates) {
			t.Fatalf("record %d candidates mismatch", i)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(tp1, tp2 float64, imp float64, sel bool) bool {
		rec := experiment.Record{
			Client: "X", Category: topo.Low, Server: "eBay",
			DirectTp: abs(tp1), SelectedTp: abs(tp2), Improvement: imp,
		}
		if sel {
			rec.Selected = "MIT"
		}
		var buf bytes.Buffer
		if err := Write(&buf, "", []experiment.Record{rec}); err != nil {
			return false
		}
		got, _, err := Read(&buf)
		if err != nil || len(got) != 1 {
			return false
		}
		return got[0].DirectTp == rec.DirectTp &&
			got[0].SelectedTp == rec.SelectedTp &&
			(got[0].Improvement == rec.Improvement ||
				(rec.Improvement != rec.Improvement && got[0].Improvement != got[0].Improvement))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, _, err := Read(strings.NewReader("not json\n")); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("err = %v, want ErrBadHeader", err)
	}
	if _, _, err := Read(strings.NewReader(`{"schema":99,"kind":"records"}` + "\n")); !errors.Is(err, ErrBadSchema) {
		t.Fatalf("err = %v, want ErrBadSchema", err)
	}
	if _, _, err := Read(strings.NewReader(`{"schema":1,"kind":"wrong"}` + "\n")); !errors.Is(err, ErrBadSchema) {
		t.Fatalf("err = %v, want ErrBadSchema (wrong kind)", err)
	}
}

func TestReadRejectsBadCategory(t *testing.T) {
	in := `{"schema":1,"kind":"records"}
{"client":"X","category":"Wat","server":"eBay","t":0,"direct_bps":1,"selected_bps":1,"improvement_pct":0}
`
	if _, _, err := Read(strings.NewReader(in)); err == nil {
		t.Fatal("bad category accepted")
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, "empty", nil); err != nil {
		t.Fatal(err)
	}
	got, comment, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || comment != "empty" {
		t.Fatalf("got %d records, comment %q", len(got), comment)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header + 3 rows
		t.Fatalf("csv has %d lines, want 4:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "client,category,server") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "Korea") || !strings.Contains(lines[1], "MIT") {
		t.Fatalf("row = %q", lines[1])
	}
	if !strings.Contains(lines[3], "relay down") {
		t.Fatalf("error row = %q", lines[3])
	}
}

func TestTraceOfRealCampaign(t *testing.T) {
	// End-to-end: run a small campaign, archive it, reload it, and check
	// the derived statistic survives the round trip.
	study := experiment.RunStudy(experiment.StudyParams{
		Seed: 5, TransfersPerClient: 5, Servers: []string{"eBay"},
	})
	var buf bytes.Buffer
	if err := Write(&buf, "test campaign", study.Records); err != nil {
		t.Fatal(err)
	}
	got, _, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(study.Records) {
		t.Fatalf("reloaded %d of %d records", len(got), len(study.Records))
	}
	if experiment.UtilizationOf(got) != experiment.UtilizationOf(study.Records) {
		t.Fatal("utilization changed across round trip")
	}
}
