package traceio

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
)

func sampleEvents() []obs.Event {
	pid := obs.PathID{Server: "origin", Object: "large.bin", Via: "r1"}
	return []obs.Event{
		{Seq: 1, Kind: obs.KindProbeStart, Time: 0.5, Path: pid, Bytes: 100_000},
		{Seq: 2, Kind: obs.KindSelection, Time: 0.9, Path: pid, Rule: "first-finished",
			Candidates: 3, Indirect: true, Duration: 0.4},
		{Seq: 3, Kind: obs.KindRetry, Time: 1.1, Path: obs.PathID{Server: "origin", Object: "large.bin"},
			Attempt: 2, Backoff: 0.2, Err: "dial refused"},
		{Seq: 4, Kind: obs.KindTransferEnd, Time: 2.0, Path: pid, Offset: 100_000,
			Bytes: 900_000, Duration: 1.1, Warm: true, Class: "ok"},
	}
}

func TestEventsRoundTrip(t *testing.T) {
	in := sampleEvents()
	var buf bytes.Buffer
	if err := WriteEvents(&buf, "unit trace", in); err != nil {
		t.Fatal(err)
	}
	out, comment, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if comment != "unit trace" {
		t.Fatalf("comment = %q", comment)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip diverged:\n in=%+v\nout=%+v", in, out)
	}
}

// TestEventsFromTracer archives exactly what a live Tracer retained.
func TestEventsFromTracer(t *testing.T) {
	tr := obs.NewTracer(8)
	tr.ProbeStarted(obs.ProbeStart{Path: obs.PathID{Server: "s", Object: "o"}, Bytes: 100})
	tr.TransferAborted(obs.Abort{Path: obs.PathID{Server: "s", Object: "o", Via: "r"}, Class: obs.ClassCanceled})
	var buf bytes.Buffer
	if err := WriteEvents(&buf, "", tr.Events()); err != nil {
		t.Fatal(err)
	}
	out, _, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Events(), out) {
		t.Fatalf("tracer trace diverged: %+v vs %+v", tr.Events(), out)
	}
}

func TestReadEventsRejectsWrongKind(t *testing.T) {
	// A records-trace must not decode as an event trace.
	var buf bytes.Buffer
	if err := Write(&buf, "records, not events", nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadEvents(&buf); !errors.Is(err, ErrBadSchema) {
		t.Fatalf("err = %v, want ErrBadSchema", err)
	}
	if _, _, err := ReadEvents(strings.NewReader("not json\n")); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("err = %v, want ErrBadHeader", err)
	}
	// And the reverse: an event trace is not a records trace.
	buf.Reset()
	if err := WriteEvents(&buf, "", sampleEvents()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Read(&buf); !errors.Is(err, ErrBadSchema) {
		t.Fatalf("Read(events) err = %v, want ErrBadSchema", err)
	}
}
