// Package traceio persists measurement records so campaigns can be
// archived and re-analyzed without rerunning the simulator — the
// equivalent of the paper's two-month measurement logs. Records are
// stored as JSON Lines (one record per line, stream-appendable) with a
// small header line carrying schema metadata, plus a CSV export for
// spreadsheet analysis.
package traceio

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"

	"repro/internal/experiment"
	"repro/internal/topo"
)

// SchemaVersion identifies the record layout; bump on breaking changes.
const SchemaVersion = 1

// Errors surfaced by the decoder.
var (
	ErrBadHeader = errors.New("traceio: missing or malformed header")
	ErrBadSchema = errors.New("traceio: unsupported schema version")
)

type header struct {
	Schema  int    `json:"schema"`
	Kind    string `json:"kind"`
	Comment string `json:"comment,omitempty"`
}

// jsonRecord mirrors experiment.Record with stable JSON field names.
// Errors are flattened to strings: traces are for analysis, not
// resumption.
type jsonRecord struct {
	Client        string   `json:"client"`
	Category      string   `json:"category"`
	Server        string   `json:"server"`
	Time          float64  `json:"t"`
	Candidates    []string `json:"candidates,omitempty"`
	Selected      string   `json:"selected,omitempty"`
	DirectTp      float64  `json:"direct_bps"`
	SelectedTp    float64  `json:"selected_bps"`
	ProbeDirectTp float64  `json:"probe_direct_bps,omitempty"`
	ProbeBestTp   float64  `json:"probe_best_bps,omitempty"`
	Improvement   float64  `json:"improvement_pct"`
	Err           string   `json:"err,omitempty"`
}

func toJSON(r experiment.Record) jsonRecord {
	j := jsonRecord{
		Client:        r.Client,
		Category:      r.Category.String(),
		Server:        r.Server,
		Time:          r.Time,
		Candidates:    r.Candidates,
		Selected:      r.Selected,
		DirectTp:      r.DirectTp,
		SelectedTp:    r.SelectedTp,
		ProbeDirectTp: r.ProbeDirectTp,
		ProbeBestTp:   r.ProbeBestTp,
		Improvement:   r.Improvement,
	}
	if r.Err != nil {
		j.Err = r.Err.Error()
	}
	return j
}

func fromJSON(j jsonRecord) (experiment.Record, error) {
	r := experiment.Record{
		Client:        j.Client,
		Server:        j.Server,
		Time:          j.Time,
		Candidates:    j.Candidates,
		Selected:      j.Selected,
		DirectTp:      j.DirectTp,
		SelectedTp:    j.SelectedTp,
		ProbeDirectTp: j.ProbeDirectTp,
		ProbeBestTp:   j.ProbeBestTp,
		Improvement:   j.Improvement,
	}
	switch j.Category {
	case "Low":
		r.Category = topo.Low
	case "Medium":
		r.Category = topo.Medium
	case "High":
		r.Category = topo.High
	default:
		return r, fmt.Errorf("traceio: unknown category %q", j.Category)
	}
	if j.Err != "" {
		r.Err = errors.New(j.Err)
	}
	return r, nil
}

// Write streams records to w as JSONL with a header line. comment is
// free-form provenance (seed, scale, date).
func Write(w io.Writer, comment string, records []experiment.Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header{Schema: SchemaVersion, Kind: "records", Comment: comment}); err != nil {
		return err
	}
	for _, r := range records {
		if err := enc.Encode(toJSON(r)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read loads a JSONL trace written by Write, returning the records and
// the header comment.
func Read(r io.Reader) ([]experiment.Record, string, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, "", fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	if h.Schema != SchemaVersion || h.Kind != "records" {
		return nil, "", fmt.Errorf("%w: schema=%d kind=%q", ErrBadSchema, h.Schema, h.Kind)
	}
	var out []experiment.Record
	for {
		var j jsonRecord
		if err := dec.Decode(&j); err != nil {
			if errors.Is(err, io.EOF) {
				return out, h.Comment, nil
			}
			return nil, "", err
		}
		rec, err := fromJSON(j)
		if err != nil {
			return nil, "", err
		}
		out = append(out, rec)
	}
}

// csvHeader is the column layout of WriteCSV.
var csvHeader = []string{
	"client", "category", "server", "t_seconds", "selected",
	"direct_bps", "selected_bps", "probe_direct_bps", "probe_best_bps",
	"improvement_pct", "err",
}

// WriteCSV exports records as CSV for spreadsheet analysis. Candidate
// sets are omitted (they are per-round lists; use the JSONL form for
// full fidelity).
func WriteCSV(w io.Writer, records []experiment.Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, r := range records {
		errStr := ""
		if r.Err != nil {
			errStr = r.Err.Error()
		}
		row := []string{
			r.Client, r.Category.String(), r.Server, f(r.Time), r.Selected,
			f(r.DirectTp), f(r.SelectedTp), f(r.ProbeDirectTp), f(r.ProbeBestTp),
			f(r.Improvement), errStr,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
