// Span archives: the JSONL persistence of distributed-tracing spans,
// sharing the header convention of the record archives. Each process —
// fetch client, relayd, origind — writes its own collector's spans to its
// own file; readers merge any number of archives and stitch cross-process
// timelines by trace ID.

package traceio

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/obs"
)

// WriteSpans streams spans to w as JSONL with a header line. comment is
// free-form provenance (typically the recording service and address).
func WriteSpans(w io.Writer, comment string, spans []obs.Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header{Schema: SchemaVersion, Kind: "spans", Comment: comment}); err != nil {
		return err
	}
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSpans loads a span archive written by WriteSpans, returning the
// spans and the header comment.
func ReadSpans(r io.Reader) ([]obs.Span, string, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, "", fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	if h.Schema != SchemaVersion || h.Kind != "spans" {
		return nil, "", fmt.Errorf("%w: schema=%d kind=%q", ErrBadSchema, h.Schema, h.Kind)
	}
	var out []obs.Span
	for {
		var s obs.Span
		if err := dec.Decode(&s); err != nil {
			if errors.Is(err, io.EOF) {
				return out, h.Comment, nil
			}
			return nil, "", err
		}
		out = append(out, s)
	}
}
