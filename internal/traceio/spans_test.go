package traceio

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/obs"
)

func sampleSpans() []obs.Span {
	c := obs.NewSpanCollector(8)
	root := c.StartSpan(obs.SpanContext{}, "client", "select")
	child := c.StartSpan(root.Context(), "client", "transfer")
	child.SetAttr("path", "r1")
	child.End(obs.ClassCanceled, "context canceled")
	root.EndOK()
	return c.Spans()
}

func TestSpansRoundTrip(t *testing.T) {
	spans := sampleSpans()
	var buf bytes.Buffer
	if err := WriteSpans(&buf, "relayd 127.0.0.1:8081", spans); err != nil {
		t.Fatal(err)
	}
	got, comment, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if comment != "relayd 127.0.0.1:8081" {
		t.Fatalf("comment = %q", comment)
	}
	if len(got) != len(spans) {
		t.Fatalf("got %d spans, want %d", len(got), len(spans))
	}
	for i := range got {
		if got[i].Trace != spans[i].Trace || got[i].ID != spans[i].ID ||
			got[i].Parent != spans[i].Parent {
			t.Fatalf("span %d IDs changed: %+v vs %+v", i, got[i], spans[i])
		}
		if got[i].Class != spans[i].Class || got[i].Err != spans[i].Err {
			t.Fatalf("span %d outcome changed", i)
		}
	}
	// Spans land in End order, so the transfer child is first.
	if got[0].Attrs["path"] != "r1" {
		t.Fatal("attrs did not survive")
	}
}

func TestSpansEmptyArchive(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpans(&buf, "idle origind", nil); err != nil {
		t.Fatal(err)
	}
	got, comment, err := ReadSpans(&buf)
	if err != nil || len(got) != 0 || comment != "idle origind" {
		t.Fatalf("empty archive: %d spans, %q, %v", len(got), comment, err)
	}
}

func TestReadSpansRejectsWrongKind(t *testing.T) {
	// An event archive is not a span archive; the kind field keeps the
	// two JSONL dialects from being confused.
	var buf bytes.Buffer
	if err := WriteEvents(&buf, "events", nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSpans(&buf); !errors.Is(err, ErrBadSchema) {
		t.Fatalf("err = %v, want ErrBadSchema", err)
	}
	if _, _, err := ReadSpans(strings.NewReader("not json")); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("err = %v, want ErrBadHeader", err)
	}
}
