// Observer-event persistence: the normalized obs.Event stream (what a
// Tracer retains in memory) written in the same JSONL-with-header
// format as measurement records, so event traces archive and reload
// with the tooling already used for campaign logs.

package traceio

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/obs"
)

// WriteEvents streams events to w as JSONL under an "events" header.
// comment is free-form provenance (run id, seed, date).
func WriteEvents(w io.Writer, comment string, events []obs.Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header{Schema: SchemaVersion, Kind: "events", Comment: comment}); err != nil {
		return err
	}
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEvents loads a JSONL event trace written by WriteEvents,
// returning the events and the header comment.
func ReadEvents(r io.Reader) ([]obs.Event, string, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, "", fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	if h.Schema != SchemaVersion || h.Kind != "events" {
		return nil, "", fmt.Errorf("%w: schema=%d kind=%q", ErrBadSchema, h.Schema, h.Kind)
	}
	var out []obs.Event
	for {
		var e obs.Event
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) {
				return out, h.Comment, nil
			}
			return nil, "", err
		}
		out = append(out, e)
	}
}
