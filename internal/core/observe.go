package core

import (
	"errors"

	"repro/internal/obs"
)

// obsID converts an engine-level (object, path) pair into the plain-string
// path identity observability events carry.
func obsID(obj Object, p Path) obs.PathID {
	return obs.PathID{Server: obj.Server, Object: obj.Name, Via: p.Via}
}

// Classer is implemented by error types that know their own observability
// class — e.g. the real transport's status-line error reports
// obs.ClassStatus. It lets lower layers refine classification without this
// package importing them.
type Classer interface {
	ObsClass() obs.ErrClass
}

// ErrClassOf buckets an engine or transport error into the observability
// error taxonomy: the typed sentinels map to their classes, errors
// implementing Classer speak for themselves, and anything else is a plain
// failure.
func ErrClassOf(err error) obs.ErrClass {
	if err == nil {
		return obs.ClassOK
	}
	switch {
	case errors.Is(err, ErrCanceled):
		return obs.ClassCanceled
	case errors.Is(err, ErrProbeTimeout):
		return obs.ClassTimeout
	}
	var c Classer
	if errors.As(err, &c) {
		return c.ObsClass()
	}
	return obs.ClassFailed
}

func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// The emit helpers below centralize the nil check so an unobserved run
// pays one pointer comparison per event site and builds no event structs.

func emitProbeStart(o obs.Observer, t Transport, obj Object, p Path, off, n int64) {
	if o == nil {
		return
	}
	o.ProbeStarted(obs.ProbeStart{Path: obsID(obj, p), Time: t.Now(), Offset: off, Bytes: n})
}

func emitProbeEnd(o obs.Observer, obj Object, r FetchResult) {
	if o == nil {
		return
	}
	o.ProbeFinished(obs.ProbeEnd{
		Path: obsID(obj, r.Path), Time: r.End, Offset: r.Offset, Bytes: r.Bytes,
		Duration: r.Duration(), Class: ErrClassOf(r.Err), Err: errText(r.Err),
	})
}

func emitProbeCancel(o obs.Observer, t Transport, obj Object, p Path) {
	if o == nil {
		return
	}
	o.ProbeCanceled(obs.ProbeCancel{Path: obsID(obj, p), Time: t.Now()})
}

func emitSelection(o obs.Observer, t Transport, obj Object, sel Path, rule string, candidates int, probeDur float64) {
	if o == nil {
		return
	}
	o.PathSelected(obs.Selection{
		Path: obsID(obj, sel), Time: t.Now(), Rule: rule,
		Candidates: candidates, Indirect: !sel.IsDirect(), ProbeDuration: probeDur,
	})
}

func emitTransferStart(o obs.Observer, t Transport, obj Object, p Path, off, n int64, warm bool) {
	if o == nil {
		return
	}
	o.TransferStarted(obs.TransferStart{Path: obsID(obj, p), Time: t.Now(), Offset: off, Bytes: n, Warm: warm})
}

func emitTransferEnd(o obs.Observer, obj Object, r FetchResult, warm bool) {
	if o == nil {
		return
	}
	o.TransferFinished(obs.TransferEnd{
		Path: obsID(obj, r.Path), Time: r.End, Offset: r.Offset, Bytes: r.Bytes,
		Duration: r.Duration(), Warm: warm, Class: ErrClassOf(r.Err), Err: errText(r.Err),
	})
}
