package core

import (
	"sort"

	"repro/internal/randx"
)

// Policy chooses the candidate intermediates offered to the probe race for
// one transfer. The paper evaluates a static single intermediate
// (Section 3), a uniform random subset of size k (Section 4), and proposes
// utilization-weighted subsets as future work (Section 6); all three are
// implemented here.
type Policy interface {
	// Candidates returns the intermediates to probe for the next
	// transfer, drawn from full.
	Candidates(full []string, r *randx.RNG) []string
}

// StaticPolicy always proposes the same single intermediate, mirroring the
// paper's Section 3 deployment where one good indirect path was chosen a
// priori.
type StaticPolicy struct {
	Intermediate string
}

// Candidates returns the fixed intermediate (regardless of full).
func (p StaticPolicy) Candidates(full []string, _ *randx.RNG) []string {
	return []string{p.Intermediate}
}

// UniformRandomPolicy proposes a uniform random subset of K intermediates
// per transfer (the paper's Section 4 "random set"). K values at or above
// len(full) yield the full set.
type UniformRandomPolicy struct {
	K int
}

// Candidates draws K distinct intermediates uniformly at random.
func (p UniformRandomPolicy) Candidates(full []string, r *randx.RNG) []string {
	k := p.K
	if k >= len(full) {
		out := make([]string, len(full))
		copy(out, full)
		return out
	}
	if k <= 0 {
		return nil
	}
	perm := r.Perm(len(full))
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = full[perm[i]]
	}
	return out
}

// WeightedRandomPolicy proposes K intermediates sampled without
// replacement with probability proportional to (utilization + Floor),
// using the live Tracker statistics. This is the paper's Section 6
// proposal: "if a client uses the utilization data to weight the
// likelihood of a node appearing in the random set, the better nodes will
// be chosen more often". Floor keeps unexplored nodes discoverable.
type WeightedRandomPolicy struct {
	K       int
	Tracker *Tracker
	Floor   float64 // added to every weight; default 0.05 when zero
}

// Candidates draws K distinct intermediates, weighted by utilization.
func (p WeightedRandomPolicy) Candidates(full []string, r *randx.RNG) []string {
	k := p.K
	if k >= len(full) {
		out := make([]string, len(full))
		copy(out, full)
		return out
	}
	if k <= 0 {
		return nil
	}
	floor := p.Floor
	if floor == 0 {
		floor = 0.05
	}
	type cand struct {
		name string
		w    float64
	}
	pool := make([]cand, len(full))
	total := 0.0
	for i, name := range full {
		w := floor
		if p.Tracker != nil {
			w += p.Tracker.Utilization(name)
		}
		pool[i] = cand{name, w}
		total += w
	}
	out := make([]string, 0, k)
	for len(out) < k {
		x := r.Float64() * total
		idx := len(pool) - 1
		for i := range pool {
			if x < pool[i].w {
				idx = i
				break
			}
			x -= pool[i].w
		}
		out = append(out, pool[idx].name)
		total -= pool[idx].w
		pool[idx] = pool[len(pool)-1]
		pool = pool[:len(pool)-1]
	}
	return out
}

// Tracker accumulates the paper's utilization statistics: how often each
// intermediate appeared in a random set, and how often it was actually
// selected for the transfer. It is not safe for concurrent use; parallel
// workers keep private trackers and Merge them.
type Tracker struct {
	inSet  map[string]int64
	chosen map[string]int64
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{inSet: make(map[string]int64), chosen: make(map[string]int64)}
}

// Observe records one transfer: the candidate set offered and the path
// selected.
func (t *Tracker) Observe(candidates []string, selected Path) {
	for _, c := range candidates {
		t.inSet[c]++
	}
	if !selected.IsDirect() {
		t.chosen[selected.Via]++
	}
}

// Utilization returns chosen/inSet for the intermediate — the Section 4
// definition ("the ratio of the number of times it is selected for
// transfer divided by the number of times that it appears in the random
// set"). Unknown intermediates yield 0.
func (t *Tracker) Utilization(name string) float64 {
	n := t.inSet[name]
	if n == 0 {
		return 0
	}
	return float64(t.chosen[name]) / float64(n)
}

// InSet returns how many times the intermediate appeared in a candidate
// set.
func (t *Tracker) InSet(name string) int64 { return t.inSet[name] }

// Chosen returns how many times the intermediate won the probe race.
func (t *Tracker) Chosen(name string) int64 { return t.chosen[name] }

// Names returns all intermediates ever offered, sorted for deterministic
// iteration.
func (t *Tracker) Names() []string {
	names := make([]string, 0, len(t.inSet))
	for n := range t.inSet {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Merge folds another tracker's counts into t.
func (t *Tracker) Merge(o *Tracker) {
	for n, c := range o.inSet {
		t.inSet[n] += c
	}
	for n, c := range o.chosen {
		t.chosen[n] += c
	}
}
