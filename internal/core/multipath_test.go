package core

import (
	"errors"
	"testing"
)

func TestMultipathCoversObject(t *testing.T) {
	tr := &anyWaiterFake{newFake(2e6)}
	tr.rate["A"] = 4e6
	d := &MultipathDownloader{Transport: tr, ChunkBytes: 500_000}
	obj := Object{Server: "s", Name: "o", Size: 3_200_000}
	res, err := d.Download(obj, []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, s := range res.Shares {
		total += s.Bytes
	}
	if total != obj.Size {
		t.Fatalf("shares cover %d of %d", total, obj.Size)
	}
}

func TestMultipathFastPathCarriesMore(t *testing.T) {
	tr := &anyWaiterFake{newFake(1e6)}
	tr.rate["fast"] = 8e6
	d := &MultipathDownloader{Transport: tr, ChunkBytes: 250_000}
	obj := Object{Server: "s", Name: "o", Size: 8_000_000}
	res, err := d.Download(obj, []string{"fast"})
	if err != nil {
		t.Fatal(err)
	}
	var direct, fast int64
	for _, s := range res.Shares {
		if s.Path.IsDirect() {
			direct = s.Bytes
		} else {
			fast = s.Bytes
		}
	}
	if fast <= direct*3 {
		t.Fatalf("8x-faster path carried %d vs direct %d; work stealing inert", fast, direct)
	}
}

func TestMultipathAggregatesBandwidth(t *testing.T) {
	// Two comparable, independent paths: the striped download should beat
	// the better single path clearly.
	tr := &anyWaiterFake{newFake(3e6)}
	tr.rate["A"] = 3e6
	d := &MultipathDownloader{Transport: tr, ChunkBytes: 250_000}
	obj := Object{Server: "s", Name: "o", Size: 6_000_000}
	res, err := d.Download(obj, []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput() < 4.5e6 {
		t.Fatalf("aggregate throughput %.1f Mb/s, want > 4.5 (two 3 Mb/s paths)", res.Throughput()/1e6)
	}
}

func TestMultipathSurvivesPathDeath(t *testing.T) {
	tr := &dynTransport{
		rate: map[string]float64{Direct: 2e6, "A": 2e6},
		dead: map[string]bool{},
	}
	tr.schedule = append(tr.schedule, scheduledChange{at: 1.0, path: "A", kill: true})
	d := &MultipathDownloader{Transport: tr, ChunkBytes: 400_000}
	obj := Object{Server: "s", Name: "o", Size: 6_000_000}
	res, err := d.Download(obj, []string{"A"})
	if err != nil {
		t.Fatalf("multipath did not survive path death: %v", err)
	}
	if res.Failures == 0 {
		t.Fatal("no failure recorded despite path death")
	}
	var total int64
	for _, s := range res.Shares {
		total += s.Bytes
	}
	if total != obj.Size {
		t.Fatalf("covered %d of %d after failover", total, obj.Size)
	}
}

func TestMultipathAllPathsDead(t *testing.T) {
	tr := &dynTransport{
		rate: map[string]float64{Direct: 2e6, "A": 2e6},
		dead: map[string]bool{},
	}
	tr.schedule = append(tr.schedule,
		scheduledChange{at: 0.5, path: Direct, kill: true},
		scheduledChange{at: 0.5, path: "A", kill: true},
	)
	d := &MultipathDownloader{Transport: tr, ChunkBytes: 300_000, MaxFailures: 3}
	obj := Object{Server: "s", Name: "o", Size: 8_000_000}
	_, err := d.Download(obj, []string{"A"})
	if !errors.Is(err, ErrAllPathsFailed) {
		t.Fatalf("err = %v, want ErrAllPathsFailed", err)
	}
}

func TestMultipathTinyObject(t *testing.T) {
	tr := &anyWaiterFake{newFake(1e6)}
	tr.rate["A"] = 1e6
	d := &MultipathDownloader{Transport: tr}
	obj := Object{Server: "s", Name: "o", Size: 100_000} // below one chunk
	res, err := d.Download(obj, []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	chunks := 0
	for _, s := range res.Shares {
		chunks += s.Chunks
	}
	if chunks != 1 {
		t.Fatalf("chunks = %d, want 1", chunks)
	}
}
