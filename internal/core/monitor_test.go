package core

import (
	"math"
	"testing"
)

func TestMonitorObserveAndEstimate(t *testing.T) {
	m := NewMonitor()
	if _, ok := m.Estimate("s", Path{Via: "A"}); ok {
		t.Fatal("empty monitor reported an estimate")
	}
	m.Observe("s", Path{Via: "A"}, 2e6)
	if v, ok := m.Estimate("s", Path{Via: "A"}); !ok || v != 2e6 {
		t.Fatalf("first sample: %v %v", v, ok)
	}
	m.Observe("s", Path{Via: "A"}, 4e6)
	v, _ := m.Estimate("s", Path{Via: "A"})
	want := 0.7*2e6 + 0.3*4e6
	if math.Abs(v-want) > 1 {
		t.Fatalf("EWMA = %v, want %v", v, want)
	}
	if m.Samples("s", Path{Via: "A"}) != 2 {
		t.Fatalf("samples = %d", m.Samples("s", Path{Via: "A"}))
	}
}

func TestMonitorIgnoresBadSamples(t *testing.T) {
	m := NewMonitor()
	m.Observe("s", Path{Via: "A"}, 0)
	m.Observe("s", Path{Via: "A"}, -5)
	if _, ok := m.Estimate("s", Path{Via: "A"}); ok {
		t.Fatal("non-positive samples recorded")
	}
}

// TestMonitorKeysByFullPath is the regression test for the estimate map
// being keyed only by Via: observations of the direct path to two
// different origins must not collide, and a relay's estimate toward one
// origin must not leak into selections toward another.
func TestMonitorKeysByFullPath(t *testing.T) {
	m := NewMonitor()
	m.Observe("alpha", Path{Via: Direct}, 8e6)
	m.Observe("beta", Path{Via: Direct}, 1e6)

	if v, ok := m.Estimate("alpha", Path{Via: Direct}); !ok || v != 8e6 {
		t.Fatalf("alpha direct estimate = %v %v, want 8e6 (collided with beta?)", v, ok)
	}
	if v, ok := m.Estimate("beta", Path{Via: Direct}); !ok || v != 1e6 {
		t.Fatalf("beta direct estimate = %v %v, want 1e6 (collided with alpha?)", v, ok)
	}
	if m.Samples("alpha", Path{Via: Direct}) != 1 || m.Samples("beta", Path{Via: Direct}) != 1 {
		t.Fatal("cross-origin observations folded into one EWMA")
	}

	// A relay known fast toward alpha says nothing about beta: toward
	// beta only the direct path is known, so it must win.
	m.Observe("alpha", Path{Via: "R"}, 9e6)
	if best, ok := m.Best("beta", []string{"R"}); !ok || best.Via != Direct {
		t.Fatalf("beta best = %v %v, want direct (alpha's relay estimate leaked)", best, ok)
	}
	if got := m.Unknown("beta", []string{"R"}); len(got) != 1 || got[0] != "R" {
		t.Fatalf("beta unknown = %v, want [R]", got)
	}
}

func TestMonitorBestAndRanked(t *testing.T) {
	m := NewMonitor()
	if best, ok := m.Best("s", []string{"A", "B"}); ok || !best.IsDirect() {
		t.Fatalf("empty monitor best = %v, %v", best, ok)
	}
	m.Observe("s", Path{Via: Direct}, 1e6)
	m.Observe("s", Path{Via: "A"}, 3e6)
	m.Observe("s", Path{Via: "B"}, 2e6)
	best, ok := m.Best("s", []string{"A", "B"})
	if !ok || best.Via != "A" {
		t.Fatalf("best = %v", best)
	}
	ranked := m.Ranked("s", []string{"A", "B"})
	if len(ranked) != 3 || ranked[0].Via != "A" || ranked[2].Via != Direct {
		t.Fatalf("ranked = %v", ranked)
	}
}

func TestMonitorUnknown(t *testing.T) {
	m := NewMonitor()
	m.Observe("s", Path{Via: "A"}, 1e6)
	unknown := m.Unknown("s", []string{"A", "B", "C"})
	if len(unknown) != 2 || unknown[0] != "B" || unknown[1] != "C" {
		t.Fatalf("unknown = %v", unknown)
	}
}

func TestMonitorRefresh(t *testing.T) {
	tr := newFake(1e6)
	tr.rate["A"] = 4e6
	m := NewMonitor()
	obj := Object{Server: "s", Name: "o", Size: 4_000_000}
	m.Refresh(tr, obj, 100_000, []string{"A"})
	if v, ok := m.Estimate("s", Path{Via: "A"}); !ok || math.Abs(v-4e6) > 1 {
		t.Fatalf("refresh estimate = %v %v", v, ok)
	}
	if v, ok := m.Estimate("s", Path{Via: Direct}); !ok || math.Abs(v-1e6) > 1 {
		t.Fatalf("direct estimate = %v %v", v, ok)
	}
}

func TestSelectMonitoredUsesTableAndLearns(t *testing.T) {
	tr := newFake(1e6)
	tr.rate["A"] = 4e6
	m := NewMonitor()
	obj := Object{Server: "s", Name: "o", Size: 2_000_000}

	// Cold start: nothing known, falls back to direct, learns from it.
	out := SelectMonitored(tr, obj, []string{"A"}, m)
	if !out.Selected.IsDirect() || out.Err != nil {
		t.Fatalf("cold start outcome: %+v", out)
	}
	if _, ok := m.Estimate("s", Path{Via: Direct}); !ok {
		t.Fatal("cold-start transfer not observed")
	}

	// After a refresh, the faster relay is known and chosen, with no
	// probing phase in the transfer itself.
	m.Refresh(tr, obj, 100_000, []string{"A"})
	out = SelectMonitored(tr, obj, []string{"A"}, m)
	if out.Selected.Via != "A" {
		t.Fatalf("monitored selection = %v, want A", out.Selected)
	}
	if out.ProbeEnd != out.Start {
		t.Fatal("monitored transfer has a probing phase")
	}
}

func TestSelectMonitoredPropagatesError(t *testing.T) {
	tr := newFake(1e6)
	tr.fail["A"] = errTestMon
	m := NewMonitor()
	m.Observe("s", Path{Via: "A"}, 9e6) // stale belief in a dead path
	obj := Object{Server: "s", Name: "o", Size: 1_000_000}
	out := SelectMonitored(tr, obj, []string{"A"}, m)
	if out.Err == nil {
		t.Fatal("dead path error not propagated")
	}
}

var errTestMon = errSentinelMon{}

type errSentinelMon struct{}

func (errSentinelMon) Error() string { return "monitor test error" }
