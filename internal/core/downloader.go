package core

import (
	"context"
	"fmt"

	"repro/internal/obs"
)

// Downloader is the adaptive extension the paper's conclusion sketches:
// instead of committing to the probe winner for the whole remainder, the
// client downloads in segments, periodically re-races the paths (the
// re-probe doubles as useful transfer: it fetches the next x bytes of the
// object), and switches when another path is currently faster. It also
// fails over when a path dies mid-transfer, in the spirit of the
// one-hop-source-routing and MONET work the paper cites.
type Downloader struct {
	Transport Transport

	// ProbeBytes is the race size x (DefaultProbeBytes when 0).
	ProbeBytes int64

	// SegmentBytes is how much is fetched per step between re-evaluation
	// points (default 1 MB).
	SegmentBytes int64

	// RefreshEvery is how many segments are fetched on the current path
	// between re-races (default 4; 0 keeps the default, negative
	// disables re-racing).
	RefreshEvery int

	// Rule picks race winners (FirstFinished when unset).
	Rule Rule

	// MaxFailovers bounds how many path failures a download survives
	// (default 3).
	MaxFailovers int

	// Observer receives the download's lifecycle events: every re-race's
	// probes and selection, and every segment as a transfer. Nil disables
	// emission.
	Observer obs.Observer
}

// Segment records one contiguous fetch within a download.
type Segment struct {
	Path       Path
	Offset     int64
	Bytes      int64
	Throughput float64 // bits/sec
	Raced      bool    // this segment was fetched as part of a re-race
}

// DownloadResult summarizes an adaptive download.
type DownloadResult struct {
	Object     Object
	Segments   []Segment
	Start, End float64
	Switches   int // path changes after the initial selection
	Failovers  int // switches forced by errors
}

// Duration returns the download's total duration in seconds.
func (r DownloadResult) Duration() float64 { return r.End - r.Start }

// Throughput returns the overall throughput in bits/sec.
func (r DownloadResult) Throughput() float64 {
	d := r.Duration()
	if d <= 0 {
		return 0
	}
	return float64(r.Object.Size) * 8 / d
}

// FinalPath returns the path in use when the download finished.
func (r DownloadResult) FinalPath() Path {
	if len(r.Segments) == 0 {
		return Path{}
	}
	return r.Segments[len(r.Segments)-1].Path
}

func (d *Downloader) probeBytes() int64 {
	if d.ProbeBytes > 0 {
		return d.ProbeBytes
	}
	return DefaultProbeBytes
}

func (d *Downloader) segmentBytes() int64 {
	if d.SegmentBytes > 0 {
		return d.SegmentBytes
	}
	return 1_000_000
}

func (d *Downloader) refreshEvery() int {
	switch {
	case d.RefreshEvery > 0:
		return d.RefreshEvery
	case d.RefreshEvery < 0:
		return 1 << 30 // effectively never
	default:
		return 4
	}
}

func (d *Downloader) maxFailovers() int {
	if d.MaxFailovers > 0 {
		return d.MaxFailovers
	}
	return 3
}

// Download fetches obj adaptively over the direct path and the candidate
// indirect paths. It returns a result describing every segment even when
// the download ultimately fails.
func (d *Downloader) Download(obj Object, candidates []string) (DownloadResult, error) {
	return d.DownloadCtx(context.Background(), obj, candidates)
}

// DownloadCtx is Download under a context: cancellation or deadline
// expiry stops issuing segments and returns the typed error (wrapping
// ErrCanceled or ErrProbeTimeout) alongside the partial result.
func (d *Downloader) DownloadCtx(ctx context.Context, obj Object, candidates []string) (DownloadResult, error) {
	t := d.Transport
	res := DownloadResult{Object: obj, Start: t.Now()}

	alive := map[Path]bool{{Via: Direct}: true}
	paths := []Path{{Via: Direct}}
	for _, c := range candidates {
		p := Path{Via: c}
		alive[p] = true
		paths = append(paths, p)
	}

	x := d.probeBytes()
	if x > obj.Size {
		x = obj.Size
	}

	// Initial race doubles as the first x bytes of payload.
	offset := int64(0)
	current, raced, err := d.race(ctx, obj, offset, x, paths, alive, &res)
	if err != nil {
		res.End = t.Now()
		return res, err
	}
	offset += raced
	failovers := 0
	sinceRace := 0

	for offset < obj.Size {
		if err := CtxErr(ctx); err != nil {
			res.End = t.Now()
			return res, err
		}
		if sinceRace >= d.refreshEvery() {
			// Re-race the live paths over the next x bytes; the winner
			// becomes the current path and the bytes count as progress.
			n := x
			if rest := obj.Size - offset; rest < n {
				n = rest
			}
			prev := current
			next, raced, err := d.race(ctx, obj, offset, n, paths, alive, &res)
			if err != nil {
				res.End = t.Now()
				return res, err
			}
			current = next
			offset += raced
			sinceRace = 0
			if current != prev {
				res.Switches++
			}
			continue
		}

		n := d.segmentBytes()
		if rest := obj.Size - offset; rest < n {
			n = rest
		}
		// Segments continue the current path's established connection.
		emitTransferStart(d.Observer, t, obj, current, offset, n, true)
		h := startOnCtx(ctx, t, true, obj, current, offset, n)
		t.Wait(h)
		r := h.Result()
		emitTransferEnd(d.Observer, obj, r, true)
		if r.Err != nil {
			if err := CtxErr(ctx); err != nil {
				res.End = t.Now()
				return res, err
			}
			alive[current] = false
			failovers++
			res.Failovers++
			res.Switches++
			if failovers > d.maxFailovers() {
				res.End = t.Now()
				return res, fmt.Errorf("%w: too many failovers (last: %v)", ErrAllPathsFailed, r.Err)
			}
			// Re-race the survivors to pick a replacement.
			next, raced, err := d.race(ctx, obj, offset, minI64(x, obj.Size-offset), paths, alive, &res)
			if err != nil {
				res.End = t.Now()
				return res, err
			}
			current = next
			offset += raced
			sinceRace = 0
			continue
		}
		res.Segments = append(res.Segments, Segment{
			Path: current, Offset: offset, Bytes: n, Throughput: r.Throughput(),
		})
		offset += n
		sinceRace++
	}
	res.End = t.Now()
	return res, nil
}

// race fetches [off, off+n) concurrently on every live path and returns
// the winning path. The winner's fetch is recorded as a raced segment; the
// losers' duplicate bytes are measurement overhead, exactly like the
// paper's probes. Paths whose race fetch fails are marked dead.
func (d *Downloader) race(ctx context.Context, obj Object, off, n int64, paths []Path, alive map[Path]bool, res *DownloadResult) (Path, int64, error) {
	t := d.Transport
	var racers []Path
	for _, p := range paths {
		if alive[p] {
			racers = append(racers, p)
		}
	}
	if len(racers) == 0 {
		return Path{}, 0, ErrAllPathsFailed
	}
	if n <= 0 {
		return racers[0], 0, nil
	}
	raceStart := t.Now()
	handles := make([]Handle, len(racers))
	for i, p := range racers {
		emitProbeStart(d.Observer, t, obj, p, off, n)
		handles[i] = startCtx(ctx, t, obj, p, off, n)
	}
	t.Wait(handles...)

	probes := make([]ProbeResult, len(racers))
	okCount := 0
	for i, h := range handles {
		probes[i] = ProbeResult{h.Result()}
		emitProbeEnd(d.Observer, obj, probes[i].FetchResult)
		if probes[i].Err != nil {
			alive[racers[i]] = false
		} else {
			okCount++
		}
	}
	if okCount == 0 {
		if err := CtxErr(ctx); err != nil {
			return Path{}, 0, err
		}
		return Path{}, 0, fmt.Errorf("%w: race at offset %d", ErrAllPathsFailed, off)
	}
	winner := Choose(probes, d.Rule)
	emitSelection(d.Observer, t, obj, winner, d.Rule.String(), len(racers), t.Now()-raceStart)
	for _, p := range probes {
		if p.Path == winner && p.Err == nil {
			res.Segments = append(res.Segments, Segment{
				Path: winner, Offset: off, Bytes: n,
				Throughput: p.Throughput(), Raced: true,
			})
		}
	}
	return winner, n, nil
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
