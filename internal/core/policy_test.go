package core

import (
	"testing"
	"testing/quick"

	"repro/internal/randx"
)

var fullSet = []string{"A", "B", "C", "D", "E", "F", "G", "H"}

func TestStaticPolicy(t *testing.T) {
	p := StaticPolicy{Intermediate: "C"}
	got := p.Candidates(fullSet, randx.New(1))
	if len(got) != 1 || got[0] != "C" {
		t.Fatalf("candidates = %v, want [C]", got)
	}
}

func TestUniformRandomDistinct(t *testing.T) {
	p := UniformRandomPolicy{K: 4}
	r := randx.New(2)
	f := func(uint8) bool {
		got := p.Candidates(fullSet, r)
		if len(got) != 4 {
			return false
		}
		seen := map[string]bool{}
		for _, c := range got {
			if seen[c] {
				return false
			}
			seen[c] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformRandomFullAndEmpty(t *testing.T) {
	r := randx.New(3)
	if got := (UniformRandomPolicy{K: 100}).Candidates(fullSet, r); len(got) != len(fullSet) {
		t.Fatalf("K>len: got %d candidates", len(got))
	}
	if got := (UniformRandomPolicy{K: 0}).Candidates(fullSet, r); got != nil {
		t.Fatalf("K=0: got %v", got)
	}
}

func TestUniformRandomCoversAll(t *testing.T) {
	p := UniformRandomPolicy{K: 2}
	r := randx.New(4)
	counts := map[string]int{}
	for i := 0; i < 4000; i++ {
		for _, c := range p.Candidates(fullSet, r) {
			counts[c]++
		}
	}
	// Each of 8 nodes should appear ~1000 times (2/8 of 4000).
	for _, name := range fullSet {
		if counts[name] < 700 || counts[name] > 1300 {
			t.Fatalf("node %s appeared %d times, want ~1000", name, counts[name])
		}
	}
}

func TestTrackerCounts(t *testing.T) {
	tr := NewTracker()
	tr.Observe([]string{"A", "B"}, Path{Via: "A"})
	tr.Observe([]string{"A", "B"}, Path{Via: Direct})
	tr.Observe([]string{"A"}, Path{Via: "A"})
	if tr.InSet("A") != 3 || tr.InSet("B") != 2 {
		t.Fatalf("inSet A=%d B=%d", tr.InSet("A"), tr.InSet("B"))
	}
	if tr.Chosen("A") != 2 || tr.Chosen("B") != 0 {
		t.Fatalf("chosen A=%d B=%d", tr.Chosen("A"), tr.Chosen("B"))
	}
	if got := tr.Utilization("A"); got != 2.0/3 {
		t.Fatalf("utilization A = %v", got)
	}
	if got := tr.Utilization("Z"); got != 0 {
		t.Fatalf("unknown utilization = %v, want 0", got)
	}
}

func TestTrackerNamesSorted(t *testing.T) {
	tr := NewTracker()
	tr.Observe([]string{"Z", "A", "M"}, Path{})
	names := tr.Names()
	if len(names) != 3 || names[0] != "A" || names[1] != "M" || names[2] != "Z" {
		t.Fatalf("names = %v", names)
	}
}

func TestTrackerMerge(t *testing.T) {
	a, b := NewTracker(), NewTracker()
	a.Observe([]string{"A"}, Path{Via: "A"})
	b.Observe([]string{"A", "B"}, Path{Via: "B"})
	a.Merge(b)
	if a.InSet("A") != 2 || a.Chosen("B") != 1 {
		t.Fatalf("merged: inSetA=%d chosenB=%d", a.InSet("A"), a.Chosen("B"))
	}
}

func TestWeightedRandomPrefersUtilized(t *testing.T) {
	tr := NewTracker()
	// "Texas" chosen 90% of its appearances; "UCLA" 1%.
	for i := 0; i < 100; i++ {
		sel := Path{Via: Direct}
		if i < 90 {
			sel = Path{Via: "Texas"}
		}
		tr.Observe([]string{"Texas"}, sel)
		sel = Path{Via: Direct}
		if i < 1 {
			sel = Path{Via: "UCLA"}
		}
		tr.Observe([]string{"UCLA"}, sel)
	}
	p := WeightedRandomPolicy{K: 1, Tracker: tr}
	r := randx.New(5)
	full := []string{"Texas", "UCLA"}
	texas := 0
	const draws = 2000
	for i := 0; i < draws; i++ {
		got := p.Candidates(full, r)
		if len(got) != 1 {
			t.Fatalf("K=1 returned %d candidates", len(got))
		}
		if got[0] == "Texas" {
			texas++
		}
	}
	// Weights: Texas 0.95, UCLA 0.06 -> Texas ~94%.
	if frac := float64(texas) / draws; frac < 0.85 {
		t.Fatalf("Texas drawn %.2f of the time, want >= 0.85", frac)
	}
}

func TestWeightedRandomDistinctAndComplete(t *testing.T) {
	p := WeightedRandomPolicy{K: 3, Tracker: NewTracker()}
	r := randx.New(6)
	f := func(uint8) bool {
		got := p.Candidates(fullSet, r)
		if len(got) != 3 {
			return false
		}
		seen := map[string]bool{}
		for _, c := range got {
			if seen[c] {
				return false
			}
			seen[c] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	if got := (WeightedRandomPolicy{K: 99}).Candidates(fullSet, r); len(got) != len(fullSet) {
		t.Fatal("K >= len should return the full set")
	}
	if got := (WeightedRandomPolicy{K: 0}).Candidates(fullSet, r); got != nil {
		t.Fatal("K = 0 should return nil")
	}
}

func TestWeightedRandomNilTrackerUniform(t *testing.T) {
	p := WeightedRandomPolicy{K: 1}
	r := randx.New(7)
	counts := map[string]int{}
	for i := 0; i < 8000; i++ {
		counts[p.Candidates(fullSet, r)[0]]++
	}
	for _, name := range fullSet {
		if counts[name] < 700 || counts[name] > 1300 {
			t.Fatalf("nil-tracker draw skewed: %s = %d", name, counts[name])
		}
	}
}
