// Package core implements the paper's contribution: throughput-seeking
// indirect routing. A client downloading a large object probes the direct
// path and one or more indirect paths (through intermediate overlay nodes)
// with an initial range request, selects the path whose probe performed
// best, and fetches the remainder of the object over the selected path.
//
// The package is transport-agnostic: the same selection engine drives the
// virtual-time simulator (package httpsim) and the real TCP relay stack
// (package realnet). Paths are identified by the intermediate's name, with
// the empty string denoting the direct path.
package core

import "context"

// Direct is the Path.Via value denoting the default (non-relayed) route.
const Direct = ""

// Path identifies a route to the origin server: either the direct path or
// an indirect path through a named intermediate node.
type Path struct {
	Via string // intermediate name; Direct ("") for the default route
}

// IsDirect reports whether the path is the default route.
func (p Path) IsDirect() bool { return p.Via == Direct }

func (p Path) String() string {
	if p.IsDirect() {
		return "direct"
	}
	return "via " + p.Via
}

// Object names a downloadable resource of known size on an origin server.
type Object struct {
	Server string // origin server name
	Name   string // resource name
	Size   int64  // total size, bytes
}

// FetchResult describes one completed (or failed) range transfer.
type FetchResult struct {
	Path   Path
	Offset int64
	Bytes  int64 // bytes requested
	// Delivered is how many payload bytes actually arrived before a
	// failure. Streaming transports fill it in on error; it is 0 on
	// success (Bytes is authoritative then) and for transports that don't
	// track partial delivery.
	Delivered  int64
	Start, End float64 // transport timestamps, seconds
	Err        error
}

// Duration returns the transfer duration in seconds.
func (r FetchResult) Duration() float64 { return r.End - r.Start }

// DeliveredBytes returns the payload bytes that actually reached the
// client: everything requested on success, the partial count on failure.
func (r FetchResult) DeliveredBytes() int64 {
	if r.Err == nil {
		return r.Bytes
	}
	return r.Delivered
}

// Throughput returns the transfer's average throughput in bits/sec, or 0
// for failed or instantaneous transfers.
func (r FetchResult) Throughput() float64 {
	d := r.Duration()
	if r.Err != nil || d <= 0 {
		return 0
	}
	return float64(r.Bytes) * 8 / d
}

// ProbeResult is a FetchResult from the probing phase.
type ProbeResult struct {
	FetchResult
}

// Handle is an in-flight transfer started on a Transport.
type Handle interface {
	// Done reports whether the transfer has finished (or failed).
	Done() bool
	// Result returns the transfer's outcome; valid only once Done.
	Result() FetchResult
}

// Transport moves object ranges over paths. Implementations decide what
// "time" means: the simulator uses virtual seconds, the real stack uses
// wall-clock seconds. Start never blocks; Wait blocks until every given
// handle is done.
type Transport interface {
	// Start begins transferring bytes [off, off+n) of obj over path.
	Start(obj Object, path Path, off, n int64) Handle
	// Wait blocks until all handles are done.
	Wait(hs ...Handle)
	// Now returns the transport's current time in seconds.
	Now() float64
}

// AnyWaiter is an optional Transport extension that blocks until at least
// one of the given handles is done, returning its index. It lets the
// first-finished rule commit to the winning probe immediately instead of
// waiting out the losers (which is what the paper's client does: "it will
// then request the remaining n−x bytes through the indirect path" the
// moment the first probe completes). Transports without it fall back to
// waiting for all handles.
type AnyWaiter interface {
	WaitAny(hs ...Handle) int
}

// ContextStarter is an optional Transport extension for transports whose
// transfers can be abandoned: StartCtx behaves like Start, but the
// transfer observes ctx — cancellation or deadline expiry fails the
// handle promptly (wrapping ErrCanceled / ErrProbeTimeout) and releases
// whatever the transfer holds (on the real stack, the TCP connection).
//
// The extension is optional so the virtual-time simulator can stay
// virtual-time-correct: wall-clock cancellation has no meaning in
// simulated seconds, so the simulator only honours contexts that are
// already dead when the transfer starts, and losing probes drain exactly
// as the paper's real probes did.
type ContextStarter interface {
	StartCtx(ctx context.Context, obj Object, path Path, off, n int64) Handle
}

// WarmContextStarter combines ContextStarter with warm continuation: the
// transfer reuses the path's established connection and observes ctx.
type WarmContextStarter interface {
	StartWarmCtx(ctx context.Context, obj Object, path Path, off, n int64) Handle
}

// WarmStarter is an optional Transport extension for transfers that
// continue on an already-established connection: after a probe wins, the
// client requests the remainder over the same connection, paying neither
// connection setup nor a fresh slow start. The selection engine uses it
// when the chosen path matches the probed one.
type WarmStarter interface {
	// StartWarm is Start minus connection establishment and slow start.
	StartWarm(obj Object, path Path, off, n int64) Handle
}

// startOn begins a transfer on t, warm if the transport supports it and
// warm continuation was requested.
func startOn(t Transport, warm bool, obj Object, path Path, off, n int64) Handle {
	return startOnCtx(context.Background(), t, warm, obj, path, off, n)
}

// startCtx begins a cold transfer, context-aware when the transport
// supports it.
func startCtx(ctx context.Context, t Transport, obj Object, path Path, off, n int64) Handle {
	if cs, ok := t.(ContextStarter); ok {
		return cs.StartCtx(ctx, obj, path, off, n)
	}
	return t.Start(obj, path, off, n)
}

// startOnCtx begins a transfer on t, preferring the richest extension the
// transport offers: warm+ctx, then warm, then ctx, then plain Start.
func startOnCtx(ctx context.Context, t Transport, warm bool, obj Object, path Path, off, n int64) Handle {
	if warm {
		if ws, ok := t.(WarmContextStarter); ok {
			return ws.StartWarmCtx(ctx, obj, path, off, n)
		}
		if ws, ok := t.(WarmStarter); ok {
			return ws.StartWarm(obj, path, off, n)
		}
	}
	return startCtx(ctx, t, obj, path, off, n)
}
