package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/randx"
	"repro/internal/simnet"
	"repro/internal/topo"
)

// ExampleSelectAndFetch shows the paper's client operation end to end on
// the simulated network: probe the direct path and two relays with a
// 100 KB range request, commit to the winner, fetch the rest.
func ExampleSelectAndFetch() {
	scen := topo.NewScenario(topo.Params{Seed: 2007})
	client := scen.FindClient("Korea")
	server := scen.FindServer("eBay")
	inters := []*topo.Node{
		scen.FindIntermediate("Berkeley"),
		scen.FindIntermediate("Princeton"),
	}

	eng := simnet.NewEngine()
	net := simnet.NewNetwork(eng)
	inst := scen.Instantiate(net, randx.New(1), client, []*topo.Node{server}, inters)
	world := httpsim.NewWorld(inst, []*topo.Node{server}, inters)
	world.Put("eBay", "large.bin", 4_000_000)
	inst.Warmup(300)

	obj := core.Object{Server: "eBay", Name: "large.bin", Size: 4_000_000}
	out := core.SelectAndFetch(world, obj, []string{"Berkeley", "Princeton"}, core.Config{})
	fmt.Println("selected:", out.Selected)
	fmt.Println("probes run:", len(out.Probes))
	fmt.Println("completed:", out.Err == nil)
	// Output:
	// selected: direct
	// probes run: 3
	// completed: true
}

// ExampleImprovement demonstrates the paper's improvement metric.
func ExampleImprovement() {
	fmt.Printf("%.0f%%\n", core.Improvement(2e6, 1e6)) // doubled throughput
	fmt.Printf("%.0f%%\n", core.Improvement(5e5, 1e6)) // halved
	fmt.Printf("%.0f%%\n", core.Penalty(1e6, 4e6))     // 4x slower as a penalty
	// Output:
	// 100%
	// -50%
	// 300%
}

// ExampleTracker shows utilization accounting across transfers.
func ExampleTracker() {
	tr := core.NewTracker()
	tr.Observe([]string{"MIT", "Texas"}, core.Path{Via: "MIT"})
	tr.Observe([]string{"MIT", "Texas"}, core.Path{Via: core.Direct})
	tr.Observe([]string{"MIT"}, core.Path{Via: "MIT"})
	fmt.Printf("MIT utilization: %.2f\n", tr.Utilization("MIT"))
	fmt.Printf("Texas utilization: %.2f\n", tr.Utilization("Texas"))
	// Output:
	// MIT utilization: 0.67
	// Texas utilization: 0.00
}
