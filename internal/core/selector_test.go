package core

import (
	"errors"
	"math"
	"testing"
)

// fakeTransport implements Transport with a fixed throughput per path and
// an explicit clock, for testing the selection engine in isolation.
type fakeTransport struct {
	now  float64
	rate map[string]float64 // bits/sec per Path.Via ("" = direct)
	fail map[string]error
}

type fakeHandle struct {
	res  FetchResult
	done bool
}

func (h *fakeHandle) Done() bool          { return h.done }
func (h *fakeHandle) Result() FetchResult { return h.res }

func newFake(direct float64) *fakeTransport {
	return &fakeTransport{
		rate: map[string]float64{Direct: direct},
		fail: map[string]error{},
	}
}

func (t *fakeTransport) Now() float64 { return t.now }

func (t *fakeTransport) Start(obj Object, path Path, off, n int64) Handle {
	h := &fakeHandle{res: FetchResult{Path: path, Offset: off, Bytes: n, Start: t.now}}
	if err := t.fail[path.Via]; err != nil {
		h.res.Err = err
		h.res.End = t.now
		h.done = true
		return h
	}
	rate, ok := t.rate[path.Via]
	if !ok || rate <= 0 {
		h.res.Err = errors.New("no such path")
		h.res.End = t.now
		h.done = true
		return h
	}
	h.res.End = t.now + float64(n)*8/rate
	return h
}

func (t *fakeTransport) Wait(hs ...Handle) {
	maxEnd := t.now
	for _, h := range hs {
		fh := h.(*fakeHandle)
		if fh.res.End > maxEnd {
			maxEnd = fh.res.End
		}
		fh.done = true
	}
	t.now = maxEnd
}

func TestProbeOrderAndTiming(t *testing.T) {
	tr := newFake(1e6)
	tr.rate["A"] = 2e6
	tr.rate["B"] = 0.5e6
	obj := Object{Server: "s", Name: "o", Size: 4_000_000}
	probes := Probe(tr, obj, 100_000, []string{"A", "B"})
	if len(probes) != 3 {
		t.Fatalf("probes = %d, want 3 (direct + 2)", len(probes))
	}
	if !probes[0].Path.IsDirect() || probes[1].Path.Via != "A" || probes[2].Path.Via != "B" {
		t.Fatal("probe order must be direct, then candidates in order")
	}
	// A is fastest: 100KB at 2 Mb/s = 0.4s.
	if math.Abs(probes[1].End-0.4) > 1e-9 {
		t.Fatalf("A probe end = %v, want 0.4", probes[1].End)
	}
}

func TestProbeClampsToObjectSize(t *testing.T) {
	tr := newFake(1e6)
	obj := Object{Server: "s", Name: "o", Size: 50_000}
	probes := Probe(tr, obj, 100_000, nil)
	if probes[0].Bytes != 50_000 {
		t.Fatalf("probe bytes = %d, want clamped to 50000", probes[0].Bytes)
	}
}

func TestChooseFirstFinished(t *testing.T) {
	tr := newFake(1e6)
	tr.rate["fast"] = 3e6
	tr.rate["slow"] = 0.2e6
	obj := Object{Server: "s", Name: "o", Size: 4_000_000}
	probes := Probe(tr, obj, 100_000, []string{"slow", "fast"})
	sel := Choose(probes, FirstFinished)
	if sel.Via != "fast" {
		t.Fatalf("selected %q, want fast", sel.Via)
	}
}

func TestChooseMaxThroughput(t *testing.T) {
	tr := newFake(2e6)
	tr.rate["meh"] = 1e6
	obj := Object{Server: "s", Name: "o", Size: 4_000_000}
	probes := Probe(tr, obj, 100_000, []string{"meh"})
	if sel := Choose(probes, MaxThroughput); !sel.IsDirect() {
		t.Fatalf("selected %v, want direct (it is faster)", sel)
	}
}

func TestChooseSkipsFailedProbes(t *testing.T) {
	tr := newFake(1e6)
	tr.rate["good"] = 0.5e6
	tr.fail["bad"] = errors.New("relay down")
	obj := Object{Server: "s", Name: "o", Size: 4_000_000}
	probes := Probe(tr, obj, 100_000, []string{"bad", "good"})
	// bad "finishes" instantly but with an error; it must not win.
	if sel := Choose(probes, FirstFinished); sel.Via == "bad" {
		t.Fatal("failed probe won the race")
	}
}

func TestChooseAllFailedFallsBackToDirect(t *testing.T) {
	probes := []ProbeResult{
		{FetchResult{Path: Path{Via: "x"}, Err: errors.New("boom")}},
	}
	if sel := Choose(probes, FirstFinished); !sel.IsDirect() {
		t.Fatal("all-failed race must fall back to direct")
	}
}

func TestChooseEmptyIsDirect(t *testing.T) {
	if sel := Choose(nil, FirstFinished); !sel.IsDirect() {
		t.Fatal("empty probe set must select direct")
	}
}

func TestSelectAndFetchIndirectWin(t *testing.T) {
	tr := newFake(1e6)
	tr.rate["A"] = 4e6
	obj := Object{Server: "s", Name: "o", Size: 4_100_000}
	out := SelectAndFetch(tr, obj, []string{"A"}, Config{})
	if !out.SelectedIndirect() || out.Selected.Via != "A" {
		t.Fatalf("selected %v, want via A", out.Selected)
	}
	if out.Err != nil {
		t.Fatalf("unexpected error: %v", out.Err)
	}
	// Probe phase: 100KB on direct takes 0.8s (slowest probe); remainder
	// 4MB at 4 Mb/s = 8s. Total 8.8s.
	if math.Abs(out.Duration()-8.8) > 1e-9 {
		t.Fatalf("duration = %v, want 8.8", out.Duration())
	}
	wantTp := float64(obj.Size) * 8 / 8.8
	if math.Abs(out.Throughput()-wantTp) > 1e-6 {
		t.Fatalf("throughput = %v, want %v", out.Throughput(), wantTp)
	}
	if out.ProbeEnd != 0.8 {
		t.Fatalf("probe end = %v, want 0.8", out.ProbeEnd)
	}
}

func TestSelectAndFetchDirectWin(t *testing.T) {
	tr := newFake(5e6)
	tr.rate["A"] = 1e6
	obj := Object{Server: "s", Name: "o", Size: 2_000_000}
	out := SelectAndFetch(tr, obj, []string{"A"}, Config{})
	if out.SelectedIndirect() {
		t.Fatalf("selected %v, want direct", out.Selected)
	}
}

func TestSelectAndFetchTinyObject(t *testing.T) {
	// Object smaller than the probe: the probe IS the transfer; there is
	// no remainder fetch.
	tr := newFake(1e6)
	tr.rate["A"] = 2e6
	obj := Object{Server: "s", Name: "o", Size: 60_000}
	out := SelectAndFetch(tr, obj, []string{"A"}, Config{})
	if out.Remainder.Bytes != 0 {
		t.Fatalf("remainder bytes = %d, want 0", out.Remainder.Bytes)
	}
	if out.Err != nil {
		t.Fatal(out.Err)
	}
}

func TestSelectAndFetchPropagatesError(t *testing.T) {
	tr := newFake(1e6)
	tr.fail["A"] = errors.New("relay down")
	obj := Object{Server: "s", Name: "o", Size: 2_000_000}
	out := SelectAndFetch(tr, obj, []string{"A"}, Config{})
	if out.Err == nil {
		t.Fatal("probe error not propagated")
	}
	if out.SelectedIndirect() {
		t.Fatal("failed candidate should not be selected")
	}
}

func TestConfigDefaults(t *testing.T) {
	if (Config{}).probeBytes() != DefaultProbeBytes {
		t.Fatal("default probe bytes wrong")
	}
	if (Config{ProbeBytes: 5}).probeBytes() != 5 {
		t.Fatal("explicit probe bytes ignored")
	}
}

func TestImprovementMetric(t *testing.T) {
	if got := Improvement(2e6, 1e6); got != 100 {
		t.Errorf("doubling = %v, want 100", got)
	}
	if got := Improvement(0.5e6, 1e6); got != -50 {
		t.Errorf("halving = %v, want -50", got)
	}
	if got := Improvement(1e6, 0); got != 0 {
		t.Errorf("zero direct = %v, want 0", got)
	}
}

func TestPenaltyMetric(t *testing.T) {
	if got := Penalty(1e6, 4e6); got != 300 {
		t.Errorf("4x slowdown penalty = %v, want 300", got)
	}
	if got := Penalty(2e6, 1e6); got != 0 {
		t.Errorf("faster selection penalty = %v, want 0", got)
	}
	if got := Penalty(0, 1e6); got != 0 {
		t.Errorf("zero selected penalty = %v, want 0", got)
	}
}

func TestPathString(t *testing.T) {
	if (Path{}).String() != "direct" {
		t.Error("direct path string")
	}
	if (Path{Via: "MIT"}).String() != "via MIT" {
		t.Error("indirect path string")
	}
}

func TestRuleString(t *testing.T) {
	if FirstFinished.String() != "first-finished" || MaxThroughput.String() != "max-throughput" {
		t.Error("rule strings wrong")
	}
	if Rule(99).String() != "unknown" {
		t.Error("unknown rule string")
	}
}

func TestFetchResultThroughput(t *testing.T) {
	r := FetchResult{Bytes: 1_000_000, Start: 0, End: 8}
	if got := r.Throughput(); got != 1e6 {
		t.Fatalf("throughput = %v, want 1e6", got)
	}
	bad := FetchResult{Bytes: 1, Start: 0, End: 0}
	if bad.Throughput() != 0 {
		t.Fatal("instantaneous transfer should have 0 throughput")
	}
	failed := FetchResult{Bytes: 1, Start: 0, End: 5, Err: errors.New("x")}
	if failed.Throughput() != 0 {
		t.Fatal("failed transfer should have 0 throughput")
	}
}

func TestFetchResultDeliveredBytes(t *testing.T) {
	ok := FetchResult{Bytes: 1000}
	if got := ok.DeliveredBytes(); got != 1000 {
		t.Fatalf("success delivered = %d, want 1000", got)
	}
	partial := FetchResult{Bytes: 1000, Delivered: 300, Err: errors.New("reset")}
	if got := partial.DeliveredBytes(); got != 300 {
		t.Fatalf("failed delivered = %d, want 300", got)
	}
}

// TestOutcomeThroughputFailedRemainder is the regression test for the
// accounting bug where a failed operation was credited with the full
// object size: a 10 MB fetch whose remainder dies after 300 KB must
// report throughput from the ~400 KB that arrived, not all 10 MB.
func TestOutcomeThroughputFailedRemainder(t *testing.T) {
	obj := Object{Server: "origin", Name: "big.bin", Size: 10 << 20}
	sel := Path{Via: "relay1"}
	o := Outcome{
		Object:   obj,
		Selected: sel,
		Probes: []ProbeResult{
			{FetchResult{Path: Path{Via: Direct}, Bytes: 100_000, Start: 0, End: 0.3, Err: errors.New("lost race")}},
			{FetchResult{Path: sel, Bytes: 100_000, Start: 0, End: 0.2}},
		},
		Start: 0, End: 4,
		Remainder: FetchResult{Path: sel, Offset: 100_000, Bytes: obj.Size - 100_000,
			Delivered: 300_000, Start: 0.2, End: 4, Err: errors.New("connection reset")},
		Err: errors.New("connection reset"),
	}
	if got, want := o.DeliveredBytes(), int64(400_000); got != want {
		t.Fatalf("delivered = %d, want %d (probe 100k + partial 300k)", got, want)
	}
	if got, want := o.Throughput(), float64(400_000)*8/4; got != want {
		t.Fatalf("failed throughput = %v, want %v (was crediting full size: %v)",
			got, want, float64(obj.Size)*8/4)
	}

	// Success path unchanged: full object size over the duration.
	o.Err, o.Remainder.Err = nil, nil
	if got, want := o.Throughput(), float64(obj.Size)*8/4; got != want {
		t.Fatalf("success throughput = %v, want %v", got, want)
	}
}

// anyWaiterFake wraps fakeTransport with a WaitAny that completes the
// earliest-ending pending handle, advancing the clock only to that point —
// mimicking the simulator's behavior.
type anyWaiterFake struct{ *fakeTransport }

func (t *anyWaiterFake) WaitAny(hs ...Handle) int {
	best, bestEnd := -1, 0.0
	for i, h := range hs {
		fh := h.(*fakeHandle)
		if fh.done {
			return i
		}
		if best < 0 || fh.res.End < bestEnd {
			best, bestEnd = i, fh.res.End
		}
	}
	fh := hs[best].(*fakeHandle)
	fh.done = true
	if fh.res.End > t.now {
		t.now = fh.res.End
	}
	return best
}

func TestAwaitFirstSuccessEarlyCommit(t *testing.T) {
	tr := &anyWaiterFake{newFake(1e6)}
	tr.rate["fast"] = 8e6
	tr.rate["slow"] = 0.1e6
	obj := Object{Server: "s", Name: "o", Size: 4_000_000}
	_, handles := StartProbes(tr, obj, 100_000, []string{"slow", "fast"})
	win, pending := AwaitFirstSuccess(tr, handles)
	if win != 2 {
		t.Fatalf("winner index %d, want 2 (fast)", win)
	}
	if len(pending) != 2 {
		t.Fatalf("pending = %v, want the two losers", pending)
	}
	// Early commit: the clock stands at the winner's finish (0.1s), not
	// at the slowest probe's (8s).
	if tr.now > 0.2 {
		t.Fatalf("clock advanced to %v; early commit failed", tr.now)
	}
}

func TestAwaitFirstSuccessSkipsFailures(t *testing.T) {
	tr := &anyWaiterFake{newFake(1e6)}
	tr.fail["dead"] = errors.New("down")
	tr.rate["ok"] = 0.5e6
	obj := Object{Server: "s", Name: "o", Size: 1_000_000}
	paths, handles := StartProbes(tr, obj, 100_000, []string{"dead", "ok"})
	win, _ := AwaitFirstSuccess(tr, handles)
	if win < 0 || paths[win].Via == "dead" {
		t.Fatalf("winner = %d (%v); failed probe must not win", win, paths[win])
	}
}

func TestAwaitFirstSuccessAllFailed(t *testing.T) {
	tr := &anyWaiterFake{newFake(0)} // direct has no rate -> fails
	tr.fail["a"] = errors.New("down")
	obj := Object{Server: "s", Name: "o", Size: 1_000_000}
	_, handles := StartProbes(tr, obj, 100_000, []string{"a"})
	win, pending := AwaitFirstSuccess(tr, handles)
	if win != -1 || pending != nil {
		t.Fatalf("all-failed race returned %d, %v", win, pending)
	}
}

func TestAwaitFirstSuccessFallbackWithoutAnyWaiter(t *testing.T) {
	// Plain fakeTransport has no WaitAny: the fallback waits everything
	// out and picks the earliest successful End.
	tr := newFake(1e6)
	tr.rate["fast"] = 8e6
	obj := Object{Server: "s", Name: "o", Size: 4_000_000}
	paths, handles := StartProbes(tr, obj, 100_000, []string{"fast"})
	win, pending := AwaitFirstSuccess(tr, handles)
	if paths[win].Via != "fast" {
		t.Fatalf("fallback winner %v, want fast", paths[win])
	}
	if len(pending) != 1 {
		t.Fatalf("pending = %v", pending)
	}
}

func TestSelectAndFetchEarlyCommitDuration(t *testing.T) {
	// With early commit, a pathologically slow loser must not delay the
	// selecting process: duration = winner probe + remainder.
	tr := &anyWaiterFake{newFake(0.05e6)} // direct is glacial
	tr.rate["good"] = 4e6
	obj := Object{Server: "s", Name: "o", Size: 2_100_000}
	out := SelectAndFetch(tr, obj, []string{"good"}, Config{ProbeBytes: 100_000})
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if out.Selected.Via != "good" {
		t.Fatalf("selected %v", out.Selected)
	}
	// Winner probe: 0.2s; remainder 2MB at 4Mb/s: 4s. The direct probe
	// alone would take 16s.
	if out.Duration() > 5 {
		t.Fatalf("duration %.1fs; early commit failed (loser charged)", out.Duration())
	}
}

func TestSelectAndFetchAllProbesFailed(t *testing.T) {
	tr := &anyWaiterFake{newFake(0)}
	tr.fail["a"] = errors.New("down")
	obj := Object{Server: "s", Name: "o", Size: 2_000_000}
	out := SelectAndFetch(tr, obj, []string{"a"}, Config{ProbeBytes: 100_000})
	if out.Err == nil {
		t.Fatal("all-failed select did not error")
	}
	if !out.Selected.IsDirect() {
		t.Fatalf("selected %v, want direct fallback", out.Selected)
	}
	if out.Remainder.Bytes != 0 {
		t.Fatal("remainder should not start when every probe failed")
	}
}

func TestStartOnFallsBackWithoutWarmStarter(t *testing.T) {
	// fakeTransport does not implement WarmStarter: warm requests must
	// silently fall back to Start.
	tr := newFake(1e6)
	obj := Object{Server: "s", Name: "o", Size: 1_000_000}
	h := startOn(tr, true, obj, Path{}, 0, 100_000)
	tr.Wait(h)
	if h.Result().Err != nil {
		t.Fatal(h.Result().Err)
	}
}

func TestProbeSequentialOrderAndStagger(t *testing.T) {
	tr := newFake(1e6)
	tr.rate["A"] = 1e6
	obj := Object{Server: "s", Name: "o", Size: 1_000_000}
	probes := ProbeSequential(tr, obj, 100_000, []string{"A"})
	if len(probes) != 2 {
		t.Fatalf("probes = %d", len(probes))
	}
	if !probes[0].Path.IsDirect() || probes[1].Path.Via != "A" {
		t.Fatal("sequential probe order wrong")
	}
	// Sequential probes must not overlap: the second starts when the
	// first ends.
	if probes[1].Start < probes[0].End {
		t.Fatalf("probes overlap: %v < %v", probes[1].Start, probes[0].End)
	}
}
