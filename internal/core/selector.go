package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/obs"
)

// Rule is the probe-comparison rule used to select a path.
type Rule int

// Selection rules. The paper's mechanism is FirstFinished: the client
// requests the remainder over whichever path returned the probe range
// first. MaxThroughput compares measured probe throughputs instead; with
// equal probe sizes the two agree unless probes start at different times.
const (
	FirstFinished Rule = iota
	MaxThroughput
)

func (r Rule) String() string {
	switch r {
	case FirstFinished:
		return "first-finished"
	case MaxThroughput:
		return "max-throughput"
	}
	return "unknown"
}

// DefaultProbeBytes is the paper's experimentally determined probe size:
// 100 KB is large enough to out-last TCP slow start and marginalize its
// effect on the throughput estimate.
const DefaultProbeBytes = 100_000

// Config parameterizes the selection engine.
type Config struct {
	// ProbeBytes is the size x of the initial range request
	// (DefaultProbeBytes when 0).
	ProbeBytes int64
	// Rule picks the probe winner (FirstFinished when unset).
	Rule Rule
	// Sequential probes candidates one at a time instead of racing them
	// all concurrently. With large candidate sets, concurrent probes
	// contend on the client's access link and can no longer discriminate
	// paths; sequential "preliminary download tests" (the paper's
	// Section 4 wording) keep each measurement clean at the cost of a
	// longer probing phase. Sequential probing implies the MaxThroughput
	// rule, since finish order is meaningless for staggered starts.
	Sequential bool

	// Observer receives the operation's lifecycle events (probe
	// start/finish, loser cancellation, selection, remainder transfer).
	// Nil disables emission entirely; the engine then builds no event
	// values, so the unobserved hot path pays only nil checks.
	// Observation is passive — the observer sees transport timestamps but
	// never advances any clock — so the virtual-time simulator produces
	// identical results with or without one attached.
	Observer obs.Observer

	// Spans collects distributed-tracing spans. When set, each
	// SelectAndFetch operation opens a root "select" span covering the
	// whole operation and a child "race" span covering probe launch to
	// selection commit; the span context flows to the transport through
	// the operation's context, so a tracing-aware transport (realnet)
	// records its per-phase spans under the same trace. Nil — the default,
	// and always the case on the virtual-time simulator — disables tracing
	// entirely: spans carry wall-clock times and would be meaningless
	// there.
	Spans *obs.SpanCollector
}

func (c Config) probeBytes() int64 {
	if c.ProbeBytes > 0 {
		return c.ProbeBytes
	}
	return DefaultProbeBytes
}

// Outcome describes one complete select-and-fetch operation.
type Outcome struct {
	Object     Object
	Candidates []string // candidate intermediates (random set)
	Probes     []ProbeResult
	Selected   Path

	// Start is when probing began; End is when the last object byte
	// arrived over the selected path.
	Start, End float64

	// ProbeEnd is when the probing phase finished (all probes done).
	ProbeEnd float64

	// Remainder is the result of the n−x byte fetch on the selected path.
	Remainder FetchResult

	// Err is the first transfer error encountered, if any.
	Err error
}

// Duration returns the total wall (or virtual) time of the operation.
func (o Outcome) Duration() float64 { return o.End - o.Start }

// DeliveredBytes returns the payload bytes the client actually received:
// the whole object on success, and on failure the winning probe's bytes
// plus whatever the remainder delivered before dying. Failed operations
// used to be credited with the full Object.Size, inflating their
// throughput.
func (o Outcome) DeliveredBytes() int64 {
	if o.Err == nil {
		return o.Object.Size
	}
	var got int64
	for _, p := range o.Probes {
		if p.Err == nil && p.Path == o.Selected {
			got += p.DeliveredBytes()
		}
	}
	return got + o.Remainder.DeliveredBytes()
}

// Throughput returns the client-observed throughput of the operation:
// delivered bytes over the full duration including the probing phase.
// Probing overhead therefore counts against indirect routing, exactly as
// it did in the paper's deployment; failed operations count only the
// bytes that actually arrived, not the requested object size.
func (o Outcome) Throughput() float64 {
	d := o.Duration()
	if d <= 0 {
		return 0
	}
	return float64(o.DeliveredBytes()) * 8 / d
}

// SelectedIndirect reports whether an indirect path won the probe race.
func (o Outcome) SelectedIndirect() bool { return !o.Selected.IsDirect() }

// probePaths expands the candidate set into the raced path list (index 0
// is always the direct path).
func probePaths(candidates []string) []Path {
	paths := make([]Path, 0, len(candidates)+1)
	paths = append(paths, Path{Via: Direct})
	for _, c := range candidates {
		paths = append(paths, Path{Via: c})
	}
	return paths
}

// StartProbes launches an x-byte probe on the direct path and on every
// candidate indirect path concurrently, returning the paths (index 0 is
// direct) and their in-flight handles.
func StartProbes(t Transport, obj Object, x int64, candidates []string) ([]Path, []Handle) {
	paths, handles, _ := StartProbesCtx(context.Background(), t, obj, candidates, Config{ProbeBytes: x})
	return paths, handles
}

// StartProbesCtx is StartProbes with per-probe cancellation: every probe
// runs under its own child context of ctx, and the returned cancel
// functions (one per handle) let the caller abandon individual probes —
// the engine cancels the losers the moment a winner commits. On
// transports without the ContextStarter extension the cancel functions
// are inert and probes drain to completion. The probe size and observer
// come from cfg; a ProbeStarted event is emitted per launched probe.
func StartProbesCtx(ctx context.Context, t Transport, obj Object, candidates []string, cfg Config) ([]Path, []Handle, []context.CancelFunc) {
	x := cfg.probeBytes()
	if x > obj.Size {
		x = obj.Size
	}
	paths := probePaths(candidates)
	handles := make([]Handle, len(paths))
	cancels := make([]context.CancelFunc, len(paths))
	for i, p := range paths {
		pctx, cancel := context.WithCancel(ctx)
		emitProbeStart(cfg.Observer, t, obj, p, 0, x)
		handles[i] = startCtx(pctx, t, obj, p, 0, x)
		cancels[i] = cancel
	}
	return paths, handles, cancels
}

// Probe fetches the first x bytes of obj concurrently over the direct path
// and over each candidate indirect path, returning the per-path results.
// Order: index 0 is the direct probe, then one entry per candidate.
func Probe(t Transport, obj Object, x int64, candidates []string) []ProbeResult {
	return ProbeCtx(context.Background(), t, obj, candidates, Config{ProbeBytes: x})
}

// ProbeCtx is Probe under a context: cancellation or deadline expiry
// fails the outstanding probes (on context-aware transports) instead of
// waiting them out. The probe size and observer come from cfg; each probe
// emits a ProbeStarted/ProbeFinished pair.
func ProbeCtx(ctx context.Context, t Transport, obj Object, candidates []string, cfg Config) []ProbeResult {
	paths := probePaths(candidates)
	x := cfg.probeBytes()
	if x > obj.Size {
		x = obj.Size
	}
	handles := make([]Handle, len(paths))
	for i, p := range paths {
		emitProbeStart(cfg.Observer, t, obj, p, 0, x)
		handles[i] = startCtx(ctx, t, obj, p, 0, x)
	}
	t.Wait(handles...)
	probes := make([]ProbeResult, len(handles))
	for i, h := range handles {
		probes[i] = ProbeResult{h.Result()}
		emitProbeEnd(cfg.Observer, obj, probes[i].FetchResult)
	}
	return probes
}

// AwaitFirstSuccess blocks until a handle completes without error,
// returning its index and the indices still outstanding. It returns
// winner = -1 if every handle completed with an error. Transports
// implementing AnyWaiter make this an early commit: the caller can act on
// the winner while the losers are still transferring.
func AwaitFirstSuccess(t Transport, hs []Handle) (winner int, pending []int) {
	outstanding := make(map[int]Handle, len(hs))
	for i, h := range hs {
		outstanding[i] = h
	}
	aw, hasAny := t.(AnyWaiter)
	for len(outstanding) > 0 {
		// Collect already-done handles first (validation failures are
		// born done).
		doneIdx := -1
		for i, h := range outstanding {
			if h.Done() {
				doneIdx = i
				break
			}
		}
		if doneIdx < 0 {
			if hasAny {
				rest := make([]Handle, 0, len(outstanding))
				idxs := make([]int, 0, len(outstanding))
				for i, h := range outstanding {
					rest = append(rest, h)
					idxs = append(idxs, i)
				}
				doneIdx = idxs[aw.WaitAny(rest...)]
			} else {
				// Fallback: wait everything out; the earliest successful
				// End is the de-facto winner.
				all := make([]Handle, 0, len(outstanding))
				for _, h := range outstanding {
					all = append(all, h)
				}
				t.Wait(all...)
				continue
			}
		}
		h := outstanding[doneIdx]
		delete(outstanding, doneIdx)
		if h.Result().Err == nil {
			best := doneIdx
			// Another handle may have finished at the same instant (or,
			// on the wait-all fallback, all of them have); prefer the
			// earliest successful End.
			for i, o := range outstanding {
				if o.Done() && o.Result().Err == nil && o.Result().End < h.Result().End {
					best = i
				}
			}
			if best != doneIdx {
				outstanding[doneIdx] = h
				h = outstanding[best]
				delete(outstanding, best)
				doneIdx = best
			}
			for i := range outstanding {
				pending = append(pending, i)
			}
			// Map iteration order is random; losers must be reaped (and
			// their cancellations observed) in probe order.
			sort.Ints(pending)
			return doneIdx, pending
		}
	}
	return -1, nil
}

// Choose applies the selection rule to probe results, returning the
// winning path. Failed probes never win; if every probe failed, the direct
// path is returned as a fallback.
func Choose(probes []ProbeResult, rule Rule) Path {
	best := -1
	for i, p := range probes {
		if p.Err != nil {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		switch rule {
		case FirstFinished:
			if p.End < probes[best].End {
				best = i
			}
		case MaxThroughput:
			if p.Throughput() > probes[best].Throughput() {
				best = i
			}
		default:
			panic(fmt.Sprintf("core: unknown rule %d", rule))
		}
	}
	if best < 0 {
		return Path{Via: Direct}
	}
	return probes[best].Path
}

// ProbeSequential fetches the first x bytes of obj over each path one at
// a time: first the direct path, then each candidate in order. Each probe
// gets the path to itself, so measurements do not contend with each other.
// Result order matches Probe: direct first, then candidates.
func ProbeSequential(t Transport, obj Object, x int64, candidates []string) []ProbeResult {
	return ProbeSequentialCtx(context.Background(), t, obj, candidates, Config{ProbeBytes: x})
}

// ProbeSequentialCtx is ProbeSequential under a context. Once ctx dies,
// the remaining probes are not issued: their results carry the typed
// cancellation error instead, so the slice still has one entry per path.
// Probes that were never issued emit no events.
func ProbeSequentialCtx(ctx context.Context, t Transport, obj Object, candidates []string, cfg Config) []ProbeResult {
	x := cfg.probeBytes()
	if x > obj.Size {
		x = obj.Size
	}
	paths := probePaths(candidates)
	probes := make([]ProbeResult, len(paths))
	for i, p := range paths {
		if err := CtxErr(ctx); err != nil {
			now := t.Now()
			probes[i] = ProbeResult{FetchResult{Path: p, Bytes: x, Start: now, End: now, Err: err}}
			continue
		}
		emitProbeStart(cfg.Observer, t, obj, p, 0, x)
		h := startCtx(ctx, t, obj, p, 0, x)
		t.Wait(h)
		probes[i] = ProbeResult{h.Result()}
		emitProbeEnd(cfg.Observer, obj, probes[i].FetchResult)
	}
	return probes
}

// SelectAndFetch runs the paper's full client operation: probe the direct
// path and all candidates with an x-byte range request, select the winner,
// then fetch the remaining Size−x bytes over it. The returned Outcome
// carries per-phase timings for improvement accounting.
//
// Under the FirstFinished rule the client commits the moment the first
// probe completes — the remainder starts (warm, on the winner's
// connection) while the losing probes are still draining, exactly as the
// paper's client behaves. Under MaxThroughput (and sequential probing)
// all probes are measured before the decision.
func SelectAndFetch(t Transport, obj Object, candidates []string, cfg Config) Outcome {
	return SelectAndFetchCtx(context.Background(), t, obj, candidates, cfg)
}

// SelectAndFetchCtx is SelectAndFetch under a context. On context-aware
// transports the losing probes are canceled the moment the winner
// commits (their connections close within a round trip instead of
// draining), and cancellation or deadline expiry of ctx itself abandons
// the whole operation with a typed error (ErrCanceled, ErrProbeTimeout).
// On transports without the extension — notably the virtual-time
// simulator — losers drain to completion, contending for bandwidth
// exactly as the paper's real probes did.
func SelectAndFetchCtx(ctx context.Context, t Transport, obj Object, candidates []string, cfg Config) Outcome {
	x := cfg.probeBytes()
	if x > obj.Size {
		x = obj.Size
	}
	o := Outcome{Object: obj, Candidates: candidates, Start: t.Now()}
	rest := obj.Size - x

	// When tracing, the root "select" span covers the whole operation and
	// the "race" child covers probe launch through selection commit. Probes
	// run under the race span's context and the remainder under the root's,
	// so a tracing transport nests its per-phase spans accordingly — one
	// trace shows both candidate paths racing, the loser's cancellation,
	// and the winner's continuation.
	var root, race *obs.ActiveSpan
	raceCtx := ctx
	if cfg.Spans != nil {
		parent, _ := obs.SpanFromContext(ctx)
		root = cfg.Spans.StartSpan(parent, "client", "select")
		root.SetAttr("object", obj.Name)
		root.SetAttr("server", obj.Server)
		race = cfg.Spans.StartSpan(root.Context(), "client", "race")
		ctx = obs.ContextWithSpan(ctx, root.Context())
		raceCtx = obs.ContextWithSpan(ctx, race.Context())
	}

	if !cfg.Sequential && cfg.Rule == FirstFinished {
		paths, handles, cancels := StartProbesCtx(raceCtx, t, obj, candidates, cfg)
		defer func() {
			for _, c := range cancels {
				c()
			}
		}()
		win, pending := AwaitFirstSuccess(t, handles)
		o.ProbeEnd = t.Now()
		if win >= 0 {
			o.Selected = paths[win]
		} else {
			o.Selected = Path{Via: Direct} // every probe failed
		}
		emitSelection(cfg.Observer, t, obj, o.Selected, cfg.Rule.String(), len(paths), o.ProbeEnd-o.Start)
		if race != nil {
			race.SetAttr("selected", obsID(obj, o.Selected).Label())
			race.SetAttr("rule", cfg.Rule.String())
			if win >= 0 {
				race.EndOK()
			} else {
				race.End(obs.ClassFailed, "every probe failed")
			}
		}

		// Cancel the losers immediately: the winner is committed, so the
		// losing transfers are pure overhead. Context-aware transports
		// tear them down within a round trip; others drain them below.
		for _, i := range pending {
			cancels[i]()
			emitProbeCancel(cfg.Observer, t, obj, paths[i])
		}

		var rem Handle
		if rest > 0 && win >= 0 {
			emitTransferStart(cfg.Observer, t, obj, o.Selected, x, rest, true)
			rem = startOnCtx(ctx, t, true, obj, o.Selected, x, rest)
		}
		// Reap the losers alongside the remainder. On transports that
		// ignored the cancellation they still contend for bandwidth, as
		// the paper's real probes did.
		wait := make([]Handle, 0, len(pending)+1)
		for _, i := range pending {
			wait = append(wait, handles[i])
		}
		if rem != nil {
			wait = append(wait, rem)
		}
		if len(wait) > 0 {
			t.Wait(wait...)
		}
		o.Probes = make([]ProbeResult, len(handles))
		for i, h := range handles {
			o.Probes[i] = ProbeResult{h.Result()}
			emitProbeEnd(cfg.Observer, obj, o.Probes[i].FetchResult)
		}
		if rem != nil {
			o.Remainder = rem.Result()
			emitTransferEnd(cfg.Observer, obj, o.Remainder, true)
		}
	} else {
		if cfg.Sequential {
			o.Probes = ProbeSequentialCtx(raceCtx, t, obj, candidates, cfg)
			cfg.Rule = MaxThroughput
		} else {
			o.Probes = ProbeCtx(raceCtx, t, obj, candidates, cfg)
		}
		o.ProbeEnd = t.Now()
		o.Selected = Choose(o.Probes, cfg.Rule)
		emitSelection(cfg.Observer, t, obj, o.Selected, cfg.Rule.String(), len(o.Probes), o.ProbeEnd-o.Start)
		if race != nil {
			race.SetAttr("selected", obsID(obj, o.Selected).Label())
			race.SetAttr("rule", cfg.Rule.String())
			race.EndOK()
		}
		if rest > 0 {
			// The remainder continues on the winning probe's connection
			// (same path, same socket): warm when the transport supports
			// it.
			emitTransferStart(cfg.Observer, t, obj, o.Selected, x, rest, true)
			h := startOnCtx(ctx, t, true, obj, o.Selected, x, rest)
			t.Wait(h)
			o.Remainder = h.Result()
			emitTransferEnd(cfg.Observer, obj, o.Remainder, true)
		}
	}

	for _, p := range o.Probes {
		if p.Err != nil && o.Err == nil {
			// A loser the engine itself canceled is bookkeeping, not a
			// path failure; it only surfaces when the caller's own ctx
			// died.
			if errors.Is(p.Err, ErrCanceled) && ctx.Err() == nil {
				continue
			}
			o.Err = p.Err
		}
	}
	if o.Remainder.Err != nil && o.Err == nil {
		o.Err = o.Remainder.Err
	}
	if o.Err == nil {
		if err := CtxErr(ctx); err != nil {
			o.Err = err
		}
	}
	if allFailed(o.Probes) && o.Err != nil && !errors.Is(o.Err, ErrAllPathsFailed) {
		o.Err = fmt.Errorf("%w: every probe failed (first: %w)", ErrAllPathsFailed, o.Err)
	}
	// The operation ends when the last object byte arrives — losing
	// probes may still be draining after that and do not count.
	switch {
	case o.Remainder.Bytes > 0:
		o.End = o.Remainder.End
	default:
		o.End = o.ProbeEnd
	}
	if root != nil {
		root.SetAttr("selected", obsID(obj, o.Selected).Label())
		root.End(ErrClassOf(o.Err), errText(o.Err))
	}
	return o
}

// allFailed reports whether every probe in the race carried an error
// (the no-path-delivered outage case).
func allFailed(probes []ProbeResult) bool {
	for _, p := range probes {
		if p.Err == nil {
			return false
		}
	}
	return len(probes) > 0
}

// Improvement returns the paper's improvement metric in percent: the ratio
// of the difference between selected-path and direct-path throughput to
// direct-path throughput. Doubling throughput is +100%; halving is −50%.
func Improvement(selected, direct float64) float64 {
	if direct <= 0 {
		return 0
	}
	return (selected - direct) / direct * 100
}

// Penalty expresses a negative improvement as the paper's Table I penalty
// statistic: how many percent slower the selected path was than the direct
// path, relative to the selected path ((direct/selected − 1) × 100). It
// returns 0 when the selected path was not slower.
func Penalty(selected, direct float64) float64 {
	if selected <= 0 || direct <= selected {
		return 0
	}
	return (direct/selected - 1) * 100
}
