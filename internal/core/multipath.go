package core

import (
	"context"
	"fmt"

	"repro/internal/obs"
)

// MultipathDownloader stripes one object across several paths at once:
// the direct path and every candidate relay each pull chunks from a
// shared work queue, so fast paths naturally carry more of the object
// (work stealing). This is the mesh-flavored alternative the paper's
// related work (Bullet) hints at: instead of *selecting* the best path,
// aggregate them — which wins when path rates are comparable and the
// client's access link is not the shared bottleneck.
type MultipathDownloader struct {
	Transport Transport

	// ChunkBytes is the striping granularity (default 500 KB). Small
	// chunks balance better; large chunks amortize per-request overhead.
	ChunkBytes int64

	// MaxFailures bounds how many chunk failures the download tolerates
	// before giving up (default 8). A path whose chunk fails is retired;
	// its chunk is requeued for the surviving paths.
	MaxFailures int

	// Observer receives one TransferStarted/TransferFinished pair per
	// chunk. Nil disables emission.
	Observer obs.Observer
}

// PathShare reports one path's contribution to a multipath download.
type PathShare struct {
	Path   Path
	Chunks int
	Bytes  int64
}

// MultipathResult summarizes a striped download.
type MultipathResult struct {
	Object     Object
	Start, End float64
	Shares     []PathShare
	Failures   int
}

// Duration returns the download's wall (or virtual) duration.
func (r MultipathResult) Duration() float64 { return r.End - r.Start }

// Throughput returns the aggregate goodput in bits/sec.
func (r MultipathResult) Throughput() float64 {
	d := r.Duration()
	if d <= 0 {
		return 0
	}
	return float64(r.Object.Size) * 8 / d
}

func (d *MultipathDownloader) chunkBytes() int64 {
	if d.ChunkBytes > 0 {
		return d.ChunkBytes
	}
	return 500_000
}

func (d *MultipathDownloader) maxFailures() int {
	if d.MaxFailures > 0 {
		return d.MaxFailures
	}
	return 8
}

// chunk is one contiguous piece of the object.
type chunk struct {
	off, n int64
}

// Download stripes obj across the direct path and the candidates. It
// requires len(candidates) >= 1 (with none, use a plain fetch).
func (d *MultipathDownloader) Download(obj Object, candidates []string) (MultipathResult, error) {
	return d.DownloadCtx(context.Background(), obj, candidates)
}

// DownloadCtx is Download under a context: once ctx dies, no further
// chunks are issued, outstanding chunks are reaped, and the typed error
// (wrapping ErrCanceled or ErrProbeTimeout) is returned with the partial
// result.
func (d *MultipathDownloader) DownloadCtx(ctx context.Context, obj Object, candidates []string) (MultipathResult, error) {
	t := d.Transport
	res := MultipathResult{Object: obj, Start: t.Now()}

	paths := []Path{{Via: Direct}}
	for _, c := range candidates {
		paths = append(paths, Path{Via: c})
	}
	shares := make(map[Path]*PathShare, len(paths))
	for _, p := range paths {
		shares[p] = &PathShare{Path: p}
	}

	// Build the chunk queue.
	var queue []chunk
	for off := int64(0); off < obj.Size; off += d.chunkBytes() {
		n := d.chunkBytes()
		if rest := obj.Size - off; rest < n {
			n = rest
		}
		queue = append(queue, chunk{off, n})
	}

	// One outstanding chunk per live path; work-steal as chunks finish.
	type inflight struct {
		path Path
		c    chunk
		h    Handle
		warm bool
	}
	var active []inflight
	dead := map[Path]bool{}

	issue := func(p Path, warm bool) bool {
		if len(queue) == 0 || ctx.Err() != nil {
			return false
		}
		c := queue[0]
		queue = queue[1:]
		emitTransferStart(d.Observer, t, obj, p, c.off, c.n, warm)
		active = append(active, inflight{p, c, startOnCtx(ctx, t, warm, obj, p, c.off, c.n), warm})
		return true
	}
	for _, p := range paths {
		if !issue(p, false) {
			break
		}
	}

	for len(active) > 0 {
		// Wait for any outstanding chunk.
		idx := 0
		if len(active) > 1 {
			if aw, ok := t.(AnyWaiter); ok {
				hs := make([]Handle, len(active))
				for i, a := range active {
					hs[i] = a.h
				}
				idx = aw.WaitAny(hs...)
			} else {
				t.Wait(active[0].h)
			}
		} else {
			t.Wait(active[0].h)
		}
		done := active[idx]
		active = append(active[:idx], active[idx+1:]...)
		if !done.h.Done() {
			// Fallback transports may return before this handle is done;
			// wait it out.
			t.Wait(done.h)
		}

		r := done.h.Result()
		emitTransferEnd(d.Observer, obj, r, done.warm)
		if r.Err != nil {
			if err := CtxErr(ctx); err != nil {
				// The operation was abandoned: reap what is still in
				// flight and report the cancellation, not a path outage.
				for _, a := range active {
					t.Wait(a.h)
					emitTransferEnd(d.Observer, obj, a.h.Result(), a.warm)
				}
				res.End = t.Now()
				return res, err
			}
			res.Failures++
			if res.Failures > d.maxFailures() {
				res.End = t.Now()
				return res, fmt.Errorf("%w: chunk at %d: %v", ErrAllPathsFailed, done.c.off, r.Err)
			}
			dead[done.path] = true
			// Requeue the chunk for the survivors.
			queue = append([]chunk{done.c}, queue...)
			alive := false
			for _, p := range paths {
				if !dead[p] {
					alive = true
					break
				}
			}
			if !alive && len(active) == 0 {
				res.End = t.Now()
				return res, fmt.Errorf("%w: every path retired", ErrAllPathsFailed)
			}
			// If the survivors are all busy, the chunk waits for the
			// next completion.
			for _, p := range paths {
				busy := false
				for _, a := range active {
					if a.path == p {
						busy = true
						break
					}
				}
				if !dead[p] && !busy {
					issue(p, false)
					break
				}
			}
			continue
		}

		sh := shares[done.path]
		sh.Chunks++
		sh.Bytes += done.c.n
		// Continue on this (now warm) path.
		if !dead[done.path] {
			issue(done.path, true)
		}
	}

	res.End = t.Now()
	for _, p := range paths {
		res.Shares = append(res.Shares, *shares[p])
	}
	var got int64
	for _, s := range res.Shares {
		got += s.Bytes
	}
	if got != obj.Size {
		if err := CtxErr(ctx); err != nil {
			return res, err
		}
		return res, fmt.Errorf("core: multipath delivered %d of %d bytes", got, obj.Size)
	}
	return res, nil
}
