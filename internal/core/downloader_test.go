package core

import (
	"errors"
	"testing"
)

// dynTransport is a fake transport whose per-path rates can change over
// (fake) time and whose paths can be killed, for exercising the adaptive
// downloader.
type dynTransport struct {
	now  float64
	rate map[string]float64
	dead map[string]bool

	// schedule maps a fake-time threshold to rate updates applied once
	// the clock passes it.
	schedule []scheduledChange
	starts   int
}

type scheduledChange struct {
	at    float64
	path  string
	rate  float64
	kill  bool
	fired bool
}

func newDyn(direct float64) *dynTransport {
	return &dynTransport{
		rate: map[string]float64{Direct: direct},
		dead: map[string]bool{},
	}
}

func (t *dynTransport) applySchedule() {
	for i := range t.schedule {
		s := &t.schedule[i]
		if !s.fired && t.now >= s.at {
			if s.kill {
				t.dead[s.path] = true
			} else {
				t.rate[s.path] = s.rate
			}
			s.fired = true
		}
	}
}

func (t *dynTransport) Now() float64 { return t.now }

func (t *dynTransport) Start(obj Object, path Path, off, n int64) Handle {
	t.starts++
	t.applySchedule()
	h := &fakeHandle{res: FetchResult{Path: path, Offset: off, Bytes: n, Start: t.now}}
	if t.dead[path.Via] {
		h.res.Err = errors.New("path down")
		h.res.End = t.now
		h.done = true
		return h
	}
	rate := t.rate[path.Via]
	if rate <= 0 {
		h.res.Err = errors.New("no such path")
		h.res.End = t.now
		h.done = true
		return h
	}
	h.res.End = t.now + float64(n)*8/rate
	return h
}

func (t *dynTransport) Wait(hs ...Handle) {
	maxEnd := t.now
	for _, h := range hs {
		fh := h.(*fakeHandle)
		if fh.res.End > maxEnd {
			maxEnd = fh.res.End
		}
		fh.done = true
	}
	t.now = maxEnd
	t.applySchedule()
}

func TestDownloaderStaysOnBestPath(t *testing.T) {
	tr := newDyn(1e6)
	tr.rate["A"] = 4e6
	d := &Downloader{Transport: tr, ProbeBytes: 100_000, SegmentBytes: 500_000}
	obj := Object{Server: "s", Name: "o", Size: 4_100_000}
	res, err := d.Download(obj, []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalPath().Via != "A" {
		t.Fatalf("final path %v, want A", res.FinalPath())
	}
	var total int64
	for _, s := range res.Segments {
		total += s.Bytes
	}
	if total != obj.Size {
		t.Fatalf("segments cover %d bytes, want %d", total, obj.Size)
	}
	if res.Failovers != 0 {
		t.Fatalf("unexpected failovers: %d", res.Failovers)
	}
}

func TestDownloaderSwitchesWhenPathDegrades(t *testing.T) {
	tr := newDyn(2e6)
	tr.rate["A"] = 8e6
	// A collapses shortly after the download starts; direct becomes the
	// better path and the next re-race should move the download there.
	tr.schedule = append(tr.schedule, scheduledChange{at: 0.5, path: "A", rate: 0.2e6})
	d := &Downloader{Transport: tr, ProbeBytes: 100_000, SegmentBytes: 250_000, RefreshEvery: 2}
	obj := Object{Server: "s", Name: "o", Size: 5_000_000}
	res, err := d.Download(obj, []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches == 0 {
		t.Fatal("downloader never switched off the degraded path")
	}
	if res.FinalPath().Via != Direct {
		t.Fatalf("final path %v, want direct after A degraded", res.FinalPath())
	}
}

func TestDownloaderFailsOverOnError(t *testing.T) {
	tr := newDyn(1e6)
	tr.rate["A"] = 8e6
	tr.schedule = append(tr.schedule, scheduledChange{at: 0.5, path: "A", kill: true})
	d := &Downloader{Transport: tr, ProbeBytes: 50_000, SegmentBytes: 400_000, RefreshEvery: 100}
	obj := Object{Server: "s", Name: "o", Size: 4_000_000}
	res, err := d.Download(obj, []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failovers == 0 {
		t.Fatal("no failover recorded despite path death")
	}
	if res.FinalPath().Via != Direct {
		t.Fatalf("final path %v, want direct", res.FinalPath())
	}
	var total int64
	for _, s := range res.Segments {
		total += s.Bytes
	}
	if total != obj.Size {
		t.Fatalf("covered %d bytes, want %d", total, obj.Size)
	}
}

func TestDownloaderAllPathsDead(t *testing.T) {
	tr := newDyn(1e6)
	tr.rate["A"] = 2e6
	tr.schedule = append(tr.schedule,
		scheduledChange{at: 0.3, path: "A", kill: true},
		scheduledChange{at: 0.3, path: Direct, kill: true},
	)
	d := &Downloader{Transport: tr, ProbeBytes: 50_000, SegmentBytes: 200_000}
	obj := Object{Server: "s", Name: "o", Size: 4_000_000}
	_, err := d.Download(obj, []string{"A"})
	if !errors.Is(err, ErrAllPathsFailed) {
		t.Fatalf("err = %v, want ErrAllPathsFailed", err)
	}
}

func TestDownloaderTinyObject(t *testing.T) {
	tr := newDyn(1e6)
	tr.rate["A"] = 2e6
	d := &Downloader{Transport: tr}
	obj := Object{Server: "s", Name: "o", Size: 30_000} // below probe size
	res, err := d.Download(obj, []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) != 1 || res.Segments[0].Bytes != 30_000 {
		t.Fatalf("segments = %+v", res.Segments)
	}
}

func TestDownloaderNoCandidates(t *testing.T) {
	tr := newDyn(1e6)
	d := &Downloader{Transport: tr, SegmentBytes: 500_000}
	obj := Object{Server: "s", Name: "o", Size: 2_000_000}
	res, err := d.Download(obj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FinalPath().IsDirect() {
		t.Fatal("direct-only download must end on direct")
	}
}

func TestDownloaderRefreshDisabled(t *testing.T) {
	tr := newDyn(1e6)
	tr.rate["A"] = 4e6
	d := &Downloader{Transport: tr, ProbeBytes: 50_000, SegmentBytes: 100_000, RefreshEvery: -1}
	obj := Object{Server: "s", Name: "o", Size: 2_000_000}
	res, err := d.Download(obj, []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	raced := 0
	for _, s := range res.Segments {
		if s.Raced {
			raced++
		}
	}
	if raced != 1 {
		t.Fatalf("raced segments = %d, want only the initial race", raced)
	}
}

func TestDownloaderThroughputAccounting(t *testing.T) {
	tr := newDyn(4e6)
	d := &Downloader{Transport: tr, ProbeBytes: 100_000, SegmentBytes: 1_000_000, RefreshEvery: -1}
	obj := Object{Server: "s", Name: "o", Size: 4_100_000}
	res, err := d.Download(obj, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Single 4 Mb/s path: 4.1 MB should take ~8.2s.
	if res.Duration() < 8 || res.Duration() > 9 {
		t.Fatalf("duration %.2f, want ~8.2", res.Duration())
	}
	if tp := res.Throughput(); tp < 3.9e6 || tp > 4.1e6 {
		t.Fatalf("throughput %.0f, want ~4e6", tp)
	}
}
