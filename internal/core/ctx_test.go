package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

// ctxTransport is a fake context-aware transport: per-path rates over a
// fake clock, with every handle remembering its context so tests can
// observe which transfers the engine canceled.
type ctxTransport struct {
	now    float64
	rate   map[string]float64
	starts int

	// onWait runs after each Wait/WaitAny completes (e.g. to cancel a
	// context between sequential probes).
	onWait func()

	handles []*ctxHandle
}

type ctxHandle struct {
	ctx  context.Context
	res  FetchResult
	done bool
}

func (h *ctxHandle) Done() bool          { return h.done }
func (h *ctxHandle) Result() FetchResult { return h.res }

func newCtxTransport(direct float64) *ctxTransport {
	return &ctxTransport{rate: map[string]float64{Direct: direct}}
}

func (t *ctxTransport) Now() float64 { return t.now }

func (t *ctxTransport) Start(obj Object, path Path, off, n int64) Handle {
	return t.StartCtx(context.Background(), obj, path, off, n)
}

func (t *ctxTransport) StartCtx(ctx context.Context, obj Object, path Path, off, n int64) Handle {
	t.starts++
	h := &ctxHandle{ctx: ctx, res: FetchResult{Path: path, Offset: off, Bytes: n, Start: t.now}}
	t.handles = append(t.handles, h)
	if err := CtxErr(ctx); err != nil {
		h.res.Err, h.res.End, h.done = err, t.now, true
		return h
	}
	rate := t.rate[path.Via]
	if rate <= 0 {
		h.res.Err, h.res.End, h.done = errors.New("no such path"), t.now, true
		return h
	}
	h.res.End = t.now + float64(n)*8/rate
	return h
}

// finish completes one handle: canceled contexts fail it with the typed
// error at the current fake time, live ones let it run to its End.
func (t *ctxTransport) finish(h *ctxHandle) {
	if h.done {
		return
	}
	if err := CtxErr(h.ctx); err != nil {
		h.res.Err, h.res.End = err, t.now
	} else if h.res.End > t.now {
		t.now = h.res.End
	}
	h.done = true
}

func (t *ctxTransport) Wait(hs ...Handle) {
	for _, h := range hs {
		t.finish(h.(*ctxHandle))
	}
	if t.onWait != nil {
		t.onWait()
	}
}

func (t *ctxTransport) WaitAny(hs ...Handle) int {
	best, bestEnd := -1, 0.0
	for i, h := range hs {
		ch := h.(*ctxHandle)
		if ch.done {
			return i
		}
		if CtxErr(ch.ctx) != nil {
			t.finish(ch)
			return i
		}
		if best < 0 || ch.res.End < bestEnd {
			best, bestEnd = i, ch.res.End
		}
	}
	t.finish(hs[best].(*ctxHandle))
	if t.onWait != nil {
		t.onWait()
	}
	return best
}

var (
	_ Transport      = (*ctxTransport)(nil)
	_ AnyWaiter      = (*ctxTransport)(nil)
	_ ContextStarter = (*ctxTransport)(nil)
)

func TestSelectAndFetchCtxCancelsLosers(t *testing.T) {
	tr := newCtxTransport(1e6)
	tr.rate["fast"] = 8e6
	tr.rate["slow"] = 0.5e6
	obj := Object{Server: "s", Name: "o", Size: 1_000_000}

	out := SelectAndFetchCtx(context.Background(), tr, obj, []string{"fast", "slow"},
		Config{ProbeBytes: 100_000})
	if out.Err != nil {
		t.Fatalf("outcome error despite delivered object: %v", out.Err)
	}
	if out.Selected.Via != "fast" {
		t.Fatalf("selected %v, want via fast", out.Selected)
	}

	// The two losing probes (direct, slow) must have had their contexts
	// canceled the moment the winner committed, and their results must
	// carry the typed cancellation error without polluting the outcome.
	canceled := 0
	for i, p := range out.Probes {
		if p.Path.Via == "fast" {
			if p.Err != nil {
				t.Fatalf("winning probe failed: %v", p.Err)
			}
			continue
		}
		if !errors.Is(p.Err, ErrCanceled) {
			t.Fatalf("loser probe %d err = %v, want ErrCanceled", i, p.Err)
		}
		canceled++
	}
	if canceled != 2 {
		t.Fatalf("%d losers canceled, want 2", canceled)
	}
	// The probe handles' contexts really were canceled (not just results
	// marked): index 0..2 are the probes in start order.
	for _, h := range tr.handles[:3] {
		if h.res.Path.Via == "fast" {
			continue
		}
		if h.ctx.Err() == nil {
			t.Fatalf("loser %v context not canceled", h.res.Path)
		}
	}
}

func TestSelectAndFetchCtxCanceledUpFront(t *testing.T) {
	tr := newCtxTransport(1e6)
	tr.rate["r"] = 2e6
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := SelectAndFetchCtx(ctx, tr, Object{Server: "s", Name: "o", Size: 500_000},
		[]string{"r"}, Config{ProbeBytes: 100_000})
	if !errors.Is(out.Err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", out.Err)
	}
	if !errors.Is(out.Err, ErrAllPathsFailed) {
		t.Fatalf("err = %v, want ErrAllPathsFailed (nothing delivered)", out.Err)
	}
}

func TestSelectAndFetchCtxDeadline(t *testing.T) {
	tr := newCtxTransport(1e6)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	<-ctx.Done() // let the deadline expire
	out := SelectAndFetchCtx(ctx, tr, Object{Server: "s", Name: "o", Size: 500_000},
		nil, Config{ProbeBytes: 100_000})
	if !errors.Is(out.Err, ErrProbeTimeout) {
		t.Fatalf("err = %v, want ErrProbeTimeout", out.Err)
	}
	if !errors.Is(out.Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, should wrap context.DeadlineExceeded", out.Err)
	}
}

func TestProbeSequentialCtxStopsOnCancel(t *testing.T) {
	tr := newCtxTransport(1e6)
	tr.rate["a"] = 1e6
	tr.rate["b"] = 1e6
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr.onWait = cancel // dies after the first probe completes

	probes := ProbeSequentialCtx(ctx, tr, Object{Server: "s", Name: "o", Size: 500_000},
		[]string{"a", "b"}, Config{ProbeBytes: 100_000})
	if len(probes) != 3 {
		t.Fatalf("%d probe results, want 3 (one per path)", len(probes))
	}
	if probes[0].Err != nil {
		t.Fatalf("first probe failed: %v", probes[0].Err)
	}
	for i, p := range probes[1:] {
		if !errors.Is(p.Err, ErrCanceled) {
			t.Fatalf("probe %d after cancel: err = %v, want ErrCanceled", i+1, p.Err)
		}
	}
	// Only the first probe was actually issued.
	if tr.starts != 1 {
		t.Fatalf("%d transfers started after cancellation, want 1", tr.starts)
	}
}

func TestDownloaderCtxCanceled(t *testing.T) {
	tr := newCtxTransport(1e6)
	tr.rate["r"] = 2e6
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := &Downloader{Transport: tr, ProbeBytes: 100_000, SegmentBytes: 250_000}
	_, err := d.DownloadCtx(ctx, Object{Server: "s", Name: "o", Size: 1_000_000}, []string{"r"})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestMultipathCtxCanceled(t *testing.T) {
	tr := newCtxTransport(1e6)
	tr.rate["r"] = 2e6
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mp := &MultipathDownloader{Transport: tr, ChunkBytes: 250_000}
	_, err := mp.DownloadCtx(ctx, Object{Server: "s", Name: "o", Size: 1_000_000}, []string{"r"})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestCtxErrMapping(t *testing.T) {
	if err := CtxErr(context.Background()); err != nil {
		t.Fatalf("live context: %v", err)
	}
	c1, cancel1 := context.WithCancel(context.Background())
	cancel1()
	if err := CtxErr(c1); !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled: %v", err)
	}
	c2, cancel2 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel2()
	<-c2.Done()
	if err := CtxErr(c2); !errors.Is(err, ErrProbeTimeout) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline: %v", err)
	}
}

// neverTransport returns handles that only complete via cancellation —
// the misbehaving-transport case: without context support the engine
// would hang forever.
type neverTransport struct {
	ctxTransport
}

func (t *neverTransport) StartCtx(ctx context.Context, obj Object, path Path, off, n int64) Handle {
	h := t.ctxTransport.StartCtx(ctx, obj, path, off, n).(*ctxHandle)
	if !h.done {
		h.res.End = 1e18 // never reached except via ctx death
	}
	return h
}

func (t *neverTransport) Wait(hs ...Handle) {
	for _, h := range hs {
		ch := h.(*ctxHandle)
		if ch.done {
			continue
		}
		// Block (in wall time) until the transfer's context dies, as
		// realnet's watcher does, then surface the typed error.
		<-ch.ctx.Done()
		ch.res.Err, ch.res.End, ch.done = CtxErr(ch.ctx), t.now, true
	}
}

func TestProbeDeadlineOnStuckTransport(t *testing.T) {
	tr := &neverTransport{}
	tr.rate = map[string]float64{Direct: 1e6}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()

	done := make(chan []ProbeResult, 1)
	go func() {
		done <- ProbeCtx(ctx, tr, Object{Server: "s", Name: "o", Size: 500_000}, nil, Config{ProbeBytes: 100_000})
	}()
	select {
	case probes := <-done:
		if !errors.Is(probes[0].Err, ErrProbeTimeout) {
			t.Fatalf("stuck probe err = %v, want ErrProbeTimeout", probes[0].Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("probe hung despite context deadline")
	}
}
