package core

import (
	"context"
	"sort"
)

// Monitor maintains exponentially-weighted throughput estimates per path
// from any observations the client makes (probes, transfers, background
// refreshes). It enables RON-style probe-free selection — the related
// work the paper builds on keeps exactly this kind of path table — at the
// cost of acting on stale information when conditions shift between
// refreshes.
type Monitor struct {
	// Alpha is the EWMA weight of a new sample (default 0.3).
	Alpha float64

	est map[string]ewma
}

type ewma struct {
	value float64
	n     int64
}

// NewMonitor returns an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{est: make(map[string]ewma)}
}

func (m *Monitor) alpha() float64 {
	if m.Alpha > 0 && m.Alpha <= 1 {
		return m.Alpha
	}
	return 0.3
}

// Observe folds a throughput measurement (bits/sec) for the path into the
// estimate. Non-positive samples are ignored.
func (m *Monitor) Observe(path Path, throughput float64) {
	if throughput <= 0 {
		return
	}
	e, ok := m.est[path.Via]
	if !ok {
		m.est[path.Via] = ewma{value: throughput, n: 1}
		return
	}
	a := m.alpha()
	e.value = (1-a)*e.value + a*throughput
	e.n++
	m.est[path.Via] = e
}

// Estimate returns the current estimate (bits/sec) and whether the path
// has ever been observed.
func (m *Monitor) Estimate(path Path) (float64, bool) {
	e, ok := m.est[path.Via]
	return e.value, ok
}

// Samples returns how many observations back a path's estimate.
func (m *Monitor) Samples(path Path) int64 { return m.est[path.Via].n }

// Unknown returns the candidates (from the given set) that have no
// estimate yet — the ones a cold-start refresh must probe.
func (m *Monitor) Unknown(candidates []string) []string {
	var out []string
	for _, c := range candidates {
		if _, ok := m.est[c]; !ok {
			out = append(out, c)
		}
	}
	return out
}

// Best returns the path with the highest estimate among the direct path
// and the candidates. Paths without estimates are skipped; if nothing has
// an estimate, the direct path is returned (ok=false).
func (m *Monitor) Best(candidates []string) (best Path, ok bool) {
	bestVal := 0.0
	best = Path{Via: Direct}
	paths := append([]string{Direct}, candidates...)
	for _, via := range paths {
		if e, known := m.est[via]; known && (!ok || e.value > bestVal) {
			best, bestVal, ok = Path{Via: via}, e.value, true
		}
	}
	return best, ok
}

// Ranked returns all known paths among direct + candidates, best first.
func (m *Monitor) Ranked(candidates []string) []Path {
	type pe struct {
		p Path
		v float64
	}
	var known []pe
	for _, via := range append([]string{Direct}, candidates...) {
		if e, ok := m.est[via]; ok {
			known = append(known, pe{Path{Via: via}, e.value})
		}
	}
	sort.Slice(known, func(i, j int) bool {
		if known[i].v != known[j].v {
			return known[i].v > known[j].v
		}
		return known[i].p.Via < known[j].p.Via
	})
	out := make([]Path, len(known))
	for i, k := range known {
		out[i] = k.p
	}
	return out
}

// Refresh probes the direct path and every candidate with x bytes of obj
// (concurrently) and folds the measured throughputs into the monitor.
// This is the background maintenance a monitored client runs between
// transfers.
func (m *Monitor) Refresh(t Transport, obj Object, x int64, candidates []string) {
	m.RefreshCtx(context.Background(), t, obj, x, candidates)
}

// RefreshCtx is Refresh under a context: an abandoned refresh simply
// contributes no samples for the probes that did not complete.
func (m *Monitor) RefreshCtx(ctx context.Context, t Transport, obj Object, x int64, candidates []string) {
	probes := ProbeCtx(ctx, t, obj, x, candidates)
	for _, p := range probes {
		if p.Err == nil {
			m.Observe(p.Path, p.Throughput())
		}
	}
}

// SelectMonitored performs a probe-free transfer: it picks the best path
// from the monitor's table (falling back to the direct path when nothing
// is known), fetches the whole object over it, and feeds the achieved
// throughput back into the monitor. Compare with SelectAndFetch, which
// pays an in-band probe race per transfer for fresh information.
func SelectMonitored(t Transport, obj Object, candidates []string, m *Monitor) Outcome {
	return SelectMonitoredCtx(context.Background(), t, obj, candidates, m)
}

// SelectMonitoredCtx is SelectMonitored under a context: the single
// fetch observes ctx on context-aware transports.
func SelectMonitoredCtx(ctx context.Context, t Transport, obj Object, candidates []string, m *Monitor) Outcome {
	o := Outcome{Object: obj, Candidates: candidates, Start: t.Now()}
	sel, _ := m.Best(candidates)
	o.Selected = sel
	o.ProbeEnd = o.Start // no probing phase

	h := startCtx(ctx, t, obj, sel, 0, obj.Size)
	t.Wait(h)
	o.Remainder = h.Result()
	o.Err = o.Remainder.Err
	o.End = o.Remainder.End
	if o.Err == nil {
		m.Observe(sel, o.Remainder.Throughput())
	}
	return o
}
