package core

import (
	"context"
	"sort"
)

// Monitor maintains exponentially-weighted throughput estimates per path
// from any observations the client makes (probes, transfers, background
// refreshes). It enables RON-style probe-free selection — the related
// work the paper builds on keeps exactly this kind of path table — at the
// cost of acting on stale information when conditions shift between
// refreshes.
//
// Estimates are keyed by full path identity — origin server plus route —
// because a route's throughput is a property of the whole path: the
// direct path to one origin says nothing about the direct path to
// another, and one relay may shortcut the route to one origin while
// detouring the route to a second.
type Monitor struct {
	// Alpha is the EWMA weight of a new sample (default 0.3).
	Alpha float64

	est map[pathKey]ewma
}

// pathKey is the full identity of a measured path: the origin server and
// the route to it.
type pathKey struct {
	server string
	via    string
}

type ewma struct {
	value float64
	n     int64
}

// NewMonitor returns an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{est: make(map[pathKey]ewma)}
}

func (m *Monitor) alpha() float64 {
	if m.Alpha > 0 && m.Alpha <= 1 {
		return m.Alpha
	}
	return 0.3
}

// Observe folds a throughput measurement (bits/sec) for the path to the
// given origin server into the estimate. Non-positive samples are ignored.
func (m *Monitor) Observe(server string, path Path, throughput float64) {
	if throughput <= 0 {
		return
	}
	k := pathKey{server, path.Via}
	e, ok := m.est[k]
	if !ok {
		m.est[k] = ewma{value: throughput, n: 1}
		return
	}
	a := m.alpha()
	e.value = (1-a)*e.value + a*throughput
	e.n++
	m.est[k] = e
}

// Estimate returns the current estimate (bits/sec) for the path to the
// given origin server and whether that path has ever been observed.
func (m *Monitor) Estimate(server string, path Path) (float64, bool) {
	e, ok := m.est[pathKey{server, path.Via}]
	return e.value, ok
}

// Samples returns how many observations back a path's estimate.
func (m *Monitor) Samples(server string, path Path) int64 {
	return m.est[pathKey{server, path.Via}].n
}

// Unknown returns the candidates (from the given set) that have no
// estimate yet for the given origin server — the ones a cold-start
// refresh must probe.
func (m *Monitor) Unknown(server string, candidates []string) []string {
	var out []string
	for _, c := range candidates {
		if _, ok := m.est[pathKey{server, c}]; !ok {
			out = append(out, c)
		}
	}
	return out
}

// Best returns the path with the highest estimate among the direct path
// and the candidates, toward the given origin server. Paths without
// estimates are skipped; if nothing has an estimate, the direct path is
// returned (ok=false).
func (m *Monitor) Best(server string, candidates []string) (best Path, ok bool) {
	bestVal := 0.0
	best = Path{Via: Direct}
	paths := append([]string{Direct}, candidates...)
	for _, via := range paths {
		if e, known := m.est[pathKey{server, via}]; known && (!ok || e.value > bestVal) {
			best, bestVal, ok = Path{Via: via}, e.value, true
		}
	}
	return best, ok
}

// Ranked returns all known paths among direct + candidates toward the
// given origin server, best first.
func (m *Monitor) Ranked(server string, candidates []string) []Path {
	type pe struct {
		p Path
		v float64
	}
	var known []pe
	for _, via := range append([]string{Direct}, candidates...) {
		if e, ok := m.est[pathKey{server, via}]; ok {
			known = append(known, pe{Path{Via: via}, e.value})
		}
	}
	sort.Slice(known, func(i, j int) bool {
		if known[i].v != known[j].v {
			return known[i].v > known[j].v
		}
		return known[i].p.Via < known[j].p.Via
	})
	out := make([]Path, len(known))
	for i, k := range known {
		out[i] = k.p
	}
	return out
}

// Refresh probes the direct path and every candidate with x bytes of obj
// (concurrently) and folds the measured throughputs into the monitor.
// This is the background maintenance a monitored client runs between
// transfers.
func (m *Monitor) Refresh(t Transport, obj Object, x int64, candidates []string) {
	m.RefreshCtx(context.Background(), t, obj, candidates, Config{ProbeBytes: x})
}

// RefreshCtx is Refresh under a context and config: an abandoned refresh
// simply contributes no samples for the probes that did not complete, and
// cfg's observer sees the refresh probes like any others.
func (m *Monitor) RefreshCtx(ctx context.Context, t Transport, obj Object, candidates []string, cfg Config) {
	probes := ProbeCtx(ctx, t, obj, candidates, cfg)
	for _, p := range probes {
		if p.Err == nil {
			m.Observe(obj.Server, p.Path, p.Throughput())
		}
	}
}

// MonitoredRule is the Selection.Rule value emitted for probe-free picks
// from a Monitor's table.
const MonitoredRule = "monitored"

// SelectMonitored performs a probe-free transfer: it picks the best path
// from the monitor's table (falling back to the direct path when nothing
// is known), fetches the whole object over it, and feeds the achieved
// throughput back into the monitor. Compare with SelectAndFetch, which
// pays an in-band probe race per transfer for fresh information.
func SelectMonitored(t Transport, obj Object, candidates []string, m *Monitor) Outcome {
	return SelectMonitoredCtx(context.Background(), t, obj, candidates, m, Config{})
}

// SelectMonitoredCtx is SelectMonitored under a context and config: the
// single fetch observes ctx on context-aware transports, and cfg's
// observer sees the selection (rule "monitored") and the transfer.
func SelectMonitoredCtx(ctx context.Context, t Transport, obj Object, candidates []string, m *Monitor, cfg Config) Outcome {
	o := Outcome{Object: obj, Candidates: candidates, Start: t.Now()}
	sel, _ := m.Best(obj.Server, candidates)
	o.Selected = sel
	o.ProbeEnd = o.Start // no probing phase
	emitSelection(cfg.Observer, t, obj, sel, MonitoredRule, len(candidates)+1, 0)

	emitTransferStart(cfg.Observer, t, obj, sel, 0, obj.Size, false)
	h := startCtx(ctx, t, obj, sel, 0, obj.Size)
	t.Wait(h)
	o.Remainder = h.Result()
	emitTransferEnd(cfg.Observer, obj, o.Remainder, false)
	o.Err = o.Remainder.Err
	o.End = o.Remainder.End
	if o.Err == nil {
		m.Observe(obj.Server, sel, o.Remainder.Throughput())
	}
	return o
}
