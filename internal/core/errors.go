package core

import (
	"context"
	"errors"
	"fmt"
)

// Sentinel errors for the failure modes a selecting client must tell
// apart: a path that was slow enough to blow a deadline (penalty), an
// operation the caller abandoned (cancellation), and an outage where no
// path could deliver at all. All errors returned by the engine and by the
// real transport wrap one of these, so callers use errors.Is rather than
// string matching.
var (
	// ErrAllPathsFailed reports that every candidate path (including
	// direct) failed during an operation.
	ErrAllPathsFailed = errors.New("core: all paths failed")

	// ErrCanceled reports that a transfer was abandoned because its
	// context was canceled — either by the caller or by the engine
	// reaping a losing probe.
	ErrCanceled = errors.New("core: transfer canceled")

	// ErrProbeTimeout reports that a transfer's deadline expired before
	// it completed. Probes are the common case (a path too slow to probe
	// within budget is treated as failed, not waited out), but any
	// deadline-bearing transfer maps its expiry here.
	ErrProbeTimeout = errors.New("core: transfer deadline exceeded")
)

// CtxErr translates a context's termination into the package's typed
// errors: DeadlineExceeded becomes ErrProbeTimeout, Canceled becomes
// ErrCanceled. It returns nil while the context is live. Both the typed
// sentinel and the underlying context error are in the wrap chain, so
// errors.Is works against either.
func CtxErr(ctx context.Context) error {
	switch err := ctx.Err(); {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrProbeTimeout, err)
	default:
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
}
