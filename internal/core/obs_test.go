package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/obs"
)

// seqObserver records every callback as a flat kind/label sequence for
// order assertions.
type seqObserver struct {
	obs.Base
	events []string
}

func (s *seqObserver) note(kind string, p obs.PathID, extra string) {
	e := kind + ":" + p.Label()
	if extra != "" {
		e += ":" + extra
	}
	s.events = append(s.events, e)
}

func (s *seqObserver) ProbeStarted(e obs.ProbeStart) { s.note("probe-start", e.Path, "") }
func (s *seqObserver) ProbeFinished(e obs.ProbeEnd) {
	s.note("probe-end", e.Path, e.Class.String())
}
func (s *seqObserver) ProbeCanceled(e obs.ProbeCancel) { s.note("cancel", e.Path, "") }
func (s *seqObserver) PathSelected(e obs.Selection) {
	s.note("selected", e.Path, fmt.Sprintf("%s:%d", e.Rule, e.Candidates))
}
func (s *seqObserver) TransferStarted(e obs.TransferStart) {
	s.note("transfer-start", e.Path, fmt.Sprintf("warm=%v", e.Warm))
}
func (s *seqObserver) TransferFinished(e obs.TransferEnd) {
	s.note("transfer-end", e.Path, e.Class.String())
}

// TestObserverSequenceFullRace asserts the exact event order of one
// first-finished race on a context-aware transport: all probes start, the
// winner is selected, the losers are canceled, the warm remainder runs,
// every probe reports an end (losers with the canceled class), and the
// remainder finishes.
func TestObserverSequenceFullRace(t *testing.T) {
	tr := newCtxTransport(1e6)
	tr.rate["fast"] = 8e6
	tr.rate["slow"] = 0.5e6
	obj := Object{Server: "s", Name: "o", Size: 1_000_000}
	so := &seqObserver{}

	out := SelectAndFetchCtx(context.Background(), tr, obj, []string{"fast", "slow"},
		Config{ProbeBytes: 100_000, Observer: so})
	if out.Err != nil || out.Selected.Via != "fast" {
		t.Fatalf("outcome: sel=%v err=%v", out.Selected, out.Err)
	}

	want := []string{
		"probe-start:direct",
		"probe-start:fast",
		"probe-start:slow",
		"selected:fast:first-finished:3",
		"cancel:direct",
		"cancel:slow",
		"transfer-start:fast:warm=true",
		"probe-end:direct:canceled",
		"probe-end:fast:ok",
		"probe-end:slow:canceled",
		"transfer-end:fast:ok",
	}
	if len(so.events) != len(want) {
		t.Fatalf("got %d events %v, want %d", len(so.events), so.events, len(want))
	}
	for i := range want {
		if so.events[i] != want[i] {
			t.Fatalf("event %d = %q, want %q (full: %v)", i, so.events[i], want[i], so.events)
		}
	}
}

// TestObserverSequenceMaxThroughput covers the measured branch: all
// probes start and end, then selection, then the remainder. No
// cancellations.
func TestObserverSequenceMaxThroughput(t *testing.T) {
	tr := newCtxTransport(1e6)
	tr.rate["fast"] = 8e6
	obj := Object{Server: "s", Name: "o", Size: 500_000}
	so := &seqObserver{}

	out := SelectAndFetchCtx(context.Background(), tr, obj, []string{"fast"},
		Config{ProbeBytes: 100_000, Rule: MaxThroughput, Observer: so})
	if out.Err != nil || out.Selected.Via != "fast" {
		t.Fatalf("outcome: sel=%v err=%v", out.Selected, out.Err)
	}
	want := []string{
		"probe-start:direct",
		"probe-start:fast",
		"probe-end:direct:ok",
		"probe-end:fast:ok",
		"selected:fast:max-throughput:2",
		"transfer-start:fast:warm=true",
		"transfer-end:fast:ok",
	}
	if fmt.Sprint(so.events) != fmt.Sprint(want) {
		t.Fatalf("events = %v,\nwant %v", so.events, want)
	}
}

// TestMetricsMatchOutcomes runs a batch of engine operations with a
// Metrics collector attached and checks the aggregate counters against
// the returned Outcomes — the engine-level half of the acceptance
// criterion.
func TestMetricsMatchOutcomes(t *testing.T) {
	tr := newCtxTransport(1e6)
	tr.rate["fast"] = 8e6
	tr.rate["slow"] = 0.5e6
	m := obs.NewMetrics()
	cfg := Config{ProbeBytes: 100_000, Observer: m}
	cands := []string{"fast", "slow"}

	const runs = 5
	indirect, canceled := 0, 0
	selectedBy := map[string]int{}
	for i := 0; i < runs; i++ {
		obj := Object{Server: "s", Name: fmt.Sprintf("o%d", i), Size: 1_000_000}
		out := SelectAndFetchCtx(context.Background(), tr, obj, cands, cfg)
		if out.Err != nil {
			t.Fatalf("run %d: %v", i, out.Err)
		}
		if out.SelectedIndirect() {
			indirect++
		}
		selectedBy[obsID(obj, out.Selected).Label()]++
		for _, p := range out.Probes {
			if errors.Is(p.Err, ErrCanceled) {
				canceled++
			}
		}
	}

	s := m.Snapshot()
	if s.Selections != runs || s.SelectionsIndirect != int64(indirect) {
		t.Fatalf("selections = %d (%d indirect), want %d (%d)",
			s.Selections, s.SelectionsIndirect, runs, indirect)
	}
	if s.ProbesStarted != int64(runs*3) || s.ProbesFinished != s.ProbesStarted {
		t.Fatalf("probes = %d/%d, want %d", s.ProbesStarted, s.ProbesFinished, runs*3)
	}
	if s.ProbesCanceled != int64(canceled) {
		t.Fatalf("canceled = %d, want %d (from outcomes)", s.ProbesCanceled, canceled)
	}
	for label, n := range selectedBy {
		ps := s.Paths[label]
		if ps.Selected != int64(n) || ps.Probed != runs {
			t.Fatalf("path %s: %+v, want selected=%d probed=%d", label, ps, n, runs)
		}
		if got, want := ps.Utilization, float64(n)/runs; got != want {
			t.Fatalf("path %s utilization = %v, want %v", label, got, want)
		}
	}
}

// TestNilObserverUnchanged asserts a nil observer changes nothing about
// the outcome (and exercises the zero-cost emission guards).
func TestNilObserverUnchanged(t *testing.T) {
	mk := func() *ctxTransport {
		tr := newCtxTransport(1e6)
		tr.rate["fast"] = 8e6
		return tr
	}
	obj := Object{Server: "s", Name: "o", Size: 1_000_000}
	a := SelectAndFetchCtx(context.Background(), mk(), obj, []string{"fast"}, Config{ProbeBytes: 100_000})
	b := SelectAndFetchCtx(context.Background(), mk(), obj, []string{"fast"},
		Config{ProbeBytes: 100_000, Observer: obs.NewMetrics()})
	if a.Selected != b.Selected || a.End != b.End || a.Throughput() != b.Throughput() {
		t.Fatalf("observed run diverged: %+v vs %+v", a, b)
	}
}

type classyErr struct{}

func (classyErr) Error() string          { return "status 503" }
func (classyErr) ObsClass() obs.ErrClass { return obs.ClassStatus }

func TestErrClassOf(t *testing.T) {
	cases := []struct {
		err  error
		want obs.ErrClass
	}{
		{nil, obs.ClassOK},
		{ErrCanceled, obs.ClassCanceled},
		{fmt.Errorf("wrapped: %w", ErrCanceled), obs.ClassCanceled},
		{ErrProbeTimeout, obs.ClassTimeout},
		{classyErr{}, obs.ClassStatus},
		{fmt.Errorf("dial: %w", classyErr{}), obs.ClassStatus},
		{errors.New("misc"), obs.ClassFailed},
		{ErrAllPathsFailed, obs.ClassFailed},
	}
	for _, c := range cases {
		if got := ErrClassOf(c.err); got != c.want {
			t.Fatalf("ErrClassOf(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
