// Package tcpsim is a packet-level TCP Reno simulator: senders compete
// through one droptail bottleneck queue, segment-by-segment. It exists to
// validate the fluid TCP model (package tcpmodel) and the max-min fair
// sharing (package simnet) that the evaluation runs on: the fluid model
// treats a connection as a rate-capped fluid and concurrent flows as
// fair-sharing fluids, and tcpsim checks that window dynamics, queueing,
// and loss recovery actually produce those outcomes.
//
// The model: each sender maintains cwnd/ssthresh Reno state (slow start,
// congestion avoidance, triple-duplicate-ACK fast retransmit, timeout with
// exponential backoff); data segments serialize through a finite shared
// FIFO queue at the bottleneck and propagate to the receiver; cumulative
// ACKs return after the reverse propagation delay (the ACK path is assumed
// uncongested). Random i.i.d. loss can be injected on the data path in
// addition to queue overflow drops.
package tcpsim

import (
	"math"

	"repro/internal/randx"
	"repro/internal/simnet"
)

// Config describes the path and the TCP parameters.
type Config struct {
	// BottleneckBps is the bottleneck link rate in bits/sec.
	BottleneckBps float64
	// RTT is the two-way propagation delay in seconds (queueing adds to
	// it dynamically).
	RTT float64
	// QueuePackets is the droptail queue capacity (default 64).
	QueuePackets int
	// MSS is the segment size in bytes (default 1460).
	MSS int
	// InitCwnd is the initial congestion window in segments (default 8,
	// matching tcpmodel.DefaultInitSegs).
	InitCwnd int
	// MaxWindow caps the window in segments (default 1 MiB / MSS,
	// matching tcpmodel.DefaultMaxWindow).
	MaxWindow int
	// Loss is an i.i.d. drop probability applied to data segments on top
	// of queue overflow.
	Loss float64
}

func (c Config) mss() int {
	if c.MSS > 0 {
		return c.MSS
	}
	return 1460
}

func (c Config) queue() int {
	if c.QueuePackets > 0 {
		return c.QueuePackets
	}
	return 64
}

func (c Config) initCwnd() float64 {
	if c.InitCwnd > 0 {
		return float64(c.InitCwnd)
	}
	return 8
}

func (c Config) maxWindow() float64 {
	if c.MaxWindow > 0 {
		return float64(c.MaxWindow)
	}
	return float64((1 << 20) / c.mss())
}

// Result summarizes one simulated transfer.
type Result struct {
	Duration    float64 // seconds to deliver every byte in order
	Bytes       int64
	Segments    int
	Retransmits int
	Timeouts    int
	QueueDrops  int
	RandomDrops int
	MaxCwnd     float64 // peak congestion window, segments
}

// Throughput returns the goodput in bits/sec.
func (r Result) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Bytes) * 8 / r.Duration
}

// path is the bottleneck shared by all senders of one simulation.
type path struct {
	cfg Config
	eng *simnet.Engine
	rng *randx.RNG

	qLen      int
	busyUntil float64
	remaining int // senders not yet done
}

// sender is one TCP Reno connection.
type sender struct {
	p *path

	totalSegs int
	segBits   float64

	cwnd      float64
	ssthresh  float64
	nextSeq   int
	highAck   int
	dupAcks   int
	inFlight  int
	rtoTimer  *simnet.Timer
	rto       float64
	recovered int

	expected int
	buffered map[int]bool

	res  Result
	done bool
}

// Transfer simulates moving bytes over the path alone and returns the
// result. rng may be nil when cfg.Loss is zero.
func Transfer(cfg Config, bytes int64, rng *randx.RNG) Result {
	rs := TransferN(cfg, []int64{bytes}, rng)
	return rs[0]
}

// TransferN simulates len(sizes) connections starting simultaneously and
// competing through the shared bottleneck, returning per-flow results.
func TransferN(cfg Config, sizes []int64, rng *randx.RNG) []Result {
	if cfg.BottleneckBps <= 0 || cfg.RTT <= 0 {
		panic("tcpsim: BottleneckBps and RTT must be positive")
	}
	if rng == nil {
		rng = randx.New(0)
	}
	p := &path{cfg: cfg, eng: simnet.NewEngine(), rng: rng}
	mss := cfg.mss()

	senders := make([]*sender, len(sizes))
	results := make([]Result, len(sizes))
	for i, bytes := range sizes {
		if bytes <= 0 {
			continue
		}
		s := &sender{
			p:         p,
			totalSegs: int((bytes + int64(mss) - 1) / int64(mss)),
			segBits:   float64(mss) * 8,
			cwnd:      cfg.initCwnd(),
			ssthresh:  cfg.maxWindow(),
			buffered:  make(map[int]bool),
			rto:       math.Max(1.0, 2*cfg.RTT),
			recovered: -1,
		}
		s.res.Bytes = bytes
		s.res.Segments = s.totalSegs
		senders[i] = s
		p.remaining++
	}

	for _, s := range senders {
		if s != nil {
			s.pump()
			s.armRTO()
		}
	}
	for p.remaining > 0 {
		if !p.eng.Step() {
			panic("tcpsim: deadlock — no events while transfers incomplete")
		}
	}
	for i, s := range senders {
		if s != nil {
			results[i] = s.res
		}
	}
	return results
}

// window returns the current send window in whole segments.
func (s *sender) window() int {
	w := math.Min(s.cwnd, s.p.cfg.maxWindow())
	if w < 1 {
		w = 1
	}
	return int(w)
}

// pump sends new segments while the window allows.
func (s *sender) pump() {
	for s.nextSeq < s.totalSegs && s.inFlight < s.window() {
		s.send(s.nextSeq)
		s.nextSeq++
	}
}

// send puts one segment into the shared bottleneck queue (or drops it).
func (s *sender) send(seq int) {
	p := s.p
	s.inFlight++
	if p.cfg.Loss > 0 && p.rng.Float64() < p.cfg.Loss {
		s.res.RandomDrops++
		return // vanishes; recovery will resend
	}
	if p.qLen >= p.cfg.queue() {
		s.res.QueueDrops++
		return
	}
	p.qLen++
	serialize := s.segBits / p.cfg.BottleneckBps
	start := math.Max(p.eng.Now(), p.busyUntil)
	depart := start + serialize
	p.busyUntil = depart
	arrive := depart + p.cfg.RTT/2
	p.eng.At(arrive, func() {
		p.qLen--
		s.deliver(seq)
	})
}

// deliver handles a data segment reaching the receiver, which responds
// with a cumulative ACK after the reverse propagation delay.
func (s *sender) deliver(seq int) {
	if seq == s.expected {
		s.expected++
		for s.buffered[s.expected] {
			delete(s.buffered, s.expected)
			s.expected++
		}
	} else if seq > s.expected {
		s.buffered[seq] = true
	}
	ackNo := s.expected
	s.p.eng.After(s.p.cfg.RTT/2, func() { s.ack(ackNo) })
}

// ack processes a cumulative ACK at the sender.
func (s *sender) ack(ackNo int) {
	if s.done {
		return
	}
	if ackNo >= s.totalSegs {
		s.done = true
		s.res.Duration = s.p.eng.Now()
		s.p.remaining--
		if s.rtoTimer != nil {
			s.rtoTimer.Cancel()
		}
		return
	}
	if ackNo > s.highAck {
		newly := ackNo - s.highAck
		s.highAck = ackNo
		s.inFlight -= newly
		if s.inFlight < 0 {
			s.inFlight = 0
		}
		s.dupAcks = 0
		for i := 0; i < newly; i++ {
			if s.cwnd < s.ssthresh {
				s.cwnd++ // slow start
			} else {
				s.cwnd += 1 / s.cwnd // congestion avoidance
			}
		}
		if s.cwnd > s.p.cfg.maxWindow() {
			s.cwnd = s.p.cfg.maxWindow()
		}
		if s.cwnd > s.res.MaxCwnd {
			s.res.MaxCwnd = s.cwnd
		}
		s.rto = math.Max(1.0, 2*s.p.cfg.RTT) // fresh data resets backoff
		s.armRTO()
		s.pump()
		return
	}
	// Duplicate ACK.
	s.dupAcks++
	if s.dupAcks == 3 && s.highAck > s.recovered {
		// Fast retransmit + simplified fast recovery.
		s.res.Retransmits++
		s.recovered = s.highAck
		s.ssthresh = math.Max(s.cwnd/2, 2)
		s.cwnd = s.ssthresh
		s.inFlight-- // the lost segment is no longer considered in flight
		if s.inFlight < 0 {
			s.inFlight = 0
		}
		s.send(s.highAck)
		s.armRTO()
	}
}

// armRTO (re)schedules the retransmission timeout for the oldest unacked
// segment.
func (s *sender) armRTO() {
	if s.rtoTimer != nil {
		s.rtoTimer.Cancel()
	}
	s.rtoTimer = s.p.eng.After(s.rto, s.timeout)
}

// timeout fires when the oldest unacked segment was not acked in time.
func (s *sender) timeout() {
	if s.done {
		return
	}
	s.res.Timeouts++
	s.ssthresh = math.Max(s.cwnd/2, 2)
	s.cwnd = 1
	s.dupAcks = 0
	s.recovered = s.highAck
	s.inFlight = 0 // conservatively assume everything outstanding is gone
	s.nextSeq = s.highAck
	s.rto = math.Min(s.rto*2, 60)
	s.armRTO()
	s.pump()
}
