package tcpsim

import (
	"math"
	"testing"

	"repro/internal/randx"
	"repro/internal/tcpmodel"
)

func TestLossFreeUtilization(t *testing.T) {
	// A long transfer over a clean path must achieve most of the
	// bottleneck rate. Slow-start overshoot may still overflow the queue
	// (as in real TCP) — that recovery must not wreck utilization.
	cfg := Config{BottleneckBps: 4e6, RTT: 0.1}
	res := Transfer(cfg, 8_000_000, nil)
	util := res.Throughput() / cfg.BottleneckBps
	if util < 0.80 || util > 1.0+1e-9 {
		t.Fatalf("utilization %.2f, want [0.80, 1] (%+v)", util, res)
	}
}

func TestNoDropsWhenWindowFitsPipe(t *testing.T) {
	// With the window capped below BDP + queue, nothing can overflow:
	// genuinely zero-recovery operation.
	cfg := Config{BottleneckBps: 4e6, RTT: 0.1, MaxWindow: 64, QueuePackets: 256}
	res := Transfer(cfg, 8_000_000, nil)
	if res.Timeouts != 0 || res.Retransmits != 0 || res.QueueDrops != 0 {
		t.Fatalf("bounded window still suffered recovery: %+v", res)
	}
}

func TestNeverExceedsBottleneck(t *testing.T) {
	for _, bps := range []float64{0.5e6, 2e6, 10e6} {
		res := Transfer(Config{BottleneckBps: bps, RTT: 0.05}, 4_000_000, nil)
		if res.Throughput() > bps*(1+1e-9) {
			t.Fatalf("throughput %.0f exceeds bottleneck %.0f", res.Throughput(), bps)
		}
	}
}

func TestSlowStartPenalizesShortTransfers(t *testing.T) {
	cfg := Config{BottleneckBps: 8e6, RTT: 0.2}
	short := Transfer(cfg, 50_000, nil)
	long := Transfer(cfg, 8_000_000, nil)
	if short.Throughput() >= 0.5*long.Throughput() {
		t.Fatalf("short transfer rate %.0f not well below long %.0f",
			short.Throughput(), long.Throughput())
	}
}

func TestRandomLossTriggersRecovery(t *testing.T) {
	cfg := Config{BottleneckBps: 8e6, RTT: 0.05, Loss: 0.01}
	res := Transfer(cfg, 4_000_000, randx.New(1))
	if res.RandomDrops == 0 {
		t.Fatal("no random drops at 1% loss over ~2700 segments")
	}
	if res.Retransmits == 0 && res.Timeouts == 0 {
		t.Fatal("drops occurred but no recovery happened")
	}
	// Loss must cost throughput.
	clean := Transfer(Config{BottleneckBps: 8e6, RTT: 0.05}, 4_000_000, nil)
	if res.Throughput() >= clean.Throughput() {
		t.Fatalf("lossy %.0f >= clean %.0f", res.Throughput(), clean.Throughput())
	}
}

func TestMathisBallpark(t *testing.T) {
	// With moderate loss, steady-state throughput should sit within a
	// small factor of the Mathis ceiling MSS/(RTT*sqrt(2p/3)).
	p := 0.005
	cfg := Config{BottleneckBps: 100e6, RTT: 0.08, Loss: p}
	res := Transfer(cfg, 20_000_000, randx.New(2))
	mathis := tcpmodel.Params{RTT: cfg.RTT, Loss: p}.LossCeiling()
	ratio := res.Throughput() / mathis
	if ratio < 0.25 || ratio > 3.0 {
		t.Fatalf("packet-level throughput %.2f Mb/s vs Mathis %.2f Mb/s (ratio %.2f)",
			res.Throughput()/1e6, mathis/1e6, ratio)
	}
}

func TestTinyQueueLimitsThroughput(t *testing.T) {
	// A 2-packet queue forces overflow drops once the window exceeds the
	// pipe, costing throughput relative to a deep queue.
	deep := Transfer(Config{BottleneckBps: 8e6, RTT: 0.1, QueuePackets: 256}, 6_000_000, nil)
	shallow := Transfer(Config{BottleneckBps: 8e6, RTT: 0.1, QueuePackets: 2}, 6_000_000, nil)
	if shallow.QueueDrops == 0 {
		t.Fatal("no queue drops with a 2-packet buffer")
	}
	if shallow.Throughput() >= deep.Throughput() {
		t.Fatalf("shallow queue %.0f >= deep queue %.0f", shallow.Throughput(), deep.Throughput())
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{BottleneckBps: 4e6, RTT: 0.08, Loss: 0.005}
	a := Transfer(cfg, 2_000_000, randx.New(7))
	b := Transfer(cfg, 2_000_000, randx.New(7))
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

// TestFluidModelAgreement is the validation the package exists for: on a
// clean, uncontended path the fluid model's transfer time must track the
// packet-level simulation within a modest tolerance.
func TestFluidModelAgreement(t *testing.T) {
	cases := []struct {
		bps   float64
		rtt   float64
		bytes int64
	}{
		{2e6, 0.1, 4_000_000},
		{8e6, 0.05, 4_000_000},
		{1e6, 0.2, 2_000_000},
		{4e6, 0.15, 8_000_000},
	}
	for _, c := range cases {
		pkt := Transfer(Config{BottleneckBps: c.bps, RTT: c.rtt}, c.bytes, nil)
		// The fluid model caps the rate at min(window ceiling, link);
		// emulate the link cap by clamping.
		p := tcpmodel.Params{RTT: c.rtt}
		fluidCeiling := math.Min(p.Ceiling(), c.bps)
		fluid := fluidTransferTime(p, fluidCeiling, c.bytes)
		ratio := pkt.Duration / fluid
		if ratio < 0.75 || ratio > 1.6 {
			t.Errorf("bps=%.0f rtt=%.2f bytes=%d: packet %.2fs vs fluid %.2fs (ratio %.2f)",
				c.bps, c.rtt, c.bytes, pkt.Duration, fluid, ratio)
		}
	}
}

// fluidTransferTime mirrors tcpmodel.TransferTime with an explicit rate
// ceiling (the fluid simulator's link cap).
func fluidTransferTime(p tcpmodel.Params, ceiling float64, bytes int64) float64 {
	bits := float64(bytes) * 8
	rate := math.Min(p.InitialRate(), ceiling)
	const sub = 4
	interval := p.RTT / sub
	factor := math.Pow(2, 1.0/sub)
	t := 0.0
	for rate < ceiling {
		step := rate * interval
		if bits <= step {
			return t + bits/rate
		}
		bits -= step
		t += interval
		rate *= factor
	}
	return t + bits/ceiling
}

func TestZeroBytes(t *testing.T) {
	res := Transfer(Config{BottleneckBps: 1e6, RTT: 0.1}, 0, nil)
	if res.Duration != 0 || res.Segments != 0 {
		t.Fatalf("zero-byte transfer: %+v", res)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Transfer(Config{BottleneckBps: 0, RTT: 0.1}, 100, nil)
}

func TestMaxWindowCap(t *testing.T) {
	// A tiny window over a long RTT caps throughput at W/RTT.
	cfg := Config{BottleneckBps: 100e6, RTT: 0.2, MaxWindow: 10, QueuePackets: 256}
	res := Transfer(cfg, 4_000_000, nil)
	cap := 10.0 * 1460 * 8 / 0.2 // segments per RTT
	if res.Throughput() > cap*1.15 {
		t.Fatalf("throughput %.0f exceeds window cap %.0f", res.Throughput(), cap)
	}
	if res.MaxCwnd > 10+1e-9 {
		t.Fatalf("cwnd %v exceeded MaxWindow", res.MaxCwnd)
	}
}

func BenchmarkTransfer4MB(b *testing.B) {
	cfg := Config{BottleneckBps: 4e6, RTT: 0.1}
	for i := 0; i < b.N; i++ {
		Transfer(cfg, 4_000_000, nil)
	}
}

func BenchmarkTransferLossy(b *testing.B) {
	cfg := Config{BottleneckBps: 8e6, RTT: 0.05, Loss: 0.005}
	rng := randx.New(1)
	for i := 0; i < b.N; i++ {
		Transfer(cfg, 4_000_000, rng)
	}
}

func TestTwoFlowsShareRoughlyFairly(t *testing.T) {
	// Two long identical transfers through one bottleneck: each should
	// receive a comparable share, the behavior the fluid simulator's
	// max-min allocation assumes. TCP fairness is coarse — allow a wide
	// but bounded ratio.
	cfg := Config{BottleneckBps: 8e6, RTT: 0.08}
	rs := TransferN(cfg, []int64{10_000_000, 10_000_000}, randx.New(3))
	a, b := rs[0].Throughput(), rs[1].Throughput()
	ratio := a / b
	if ratio < 1 {
		ratio = 1 / ratio
	}
	if ratio > 1.6 {
		t.Fatalf("fairness ratio %.2f (flows %.2f vs %.2f Mb/s)", ratio, a/1e6, b/1e6)
	}
	// Aggregate must use the pipe well.
	agg := float64(20_000_000*8) / math.Max(rs[0].Duration, rs[1].Duration)
	if agg < 0.7*cfg.BottleneckBps {
		t.Fatalf("aggregate %.2f Mb/s underuses 8 Mb/s bottleneck", agg/1e6)
	}
}

func TestShortFlowFinishesFirstAndFreesBandwidth(t *testing.T) {
	cfg := Config{BottleneckBps: 8e6, RTT: 0.05}
	rs := TransferN(cfg, []int64{500_000, 8_000_000}, randx.New(4))
	if rs[0].Duration >= rs[1].Duration {
		t.Fatalf("short flow (%.2fs) did not finish before long flow (%.2fs)",
			rs[0].Duration, rs[1].Duration)
	}
	// The long flow should still achieve a healthy share of the pipe
	// overall (it runs alone after the short one finishes).
	if rs[1].Throughput() < 0.5*cfg.BottleneckBps {
		t.Fatalf("long flow got only %.2f Mb/s", rs[1].Throughput()/1e6)
	}
}

func TestTransferNMatchesTransferForSingleFlow(t *testing.T) {
	cfg := Config{BottleneckBps: 4e6, RTT: 0.1, Loss: 0.002}
	single := Transfer(cfg, 3_000_000, randx.New(9))
	viaN := TransferN(cfg, []int64{3_000_000}, randx.New(9))[0]
	if single != viaN {
		t.Fatalf("Transfer and TransferN diverge:\n%+v\n%+v", single, viaN)
	}
}

func TestTransferNZeroSizeSkipped(t *testing.T) {
	rs := TransferN(Config{BottleneckBps: 1e6, RTT: 0.1}, []int64{0, 100_000}, nil)
	if rs[0].Duration != 0 || rs[0].Segments != 0 {
		t.Fatalf("zero-size flow: %+v", rs[0])
	}
	if rs[1].Duration <= 0 {
		t.Fatal("real flow did not run")
	}
}

func TestFourFlowAggregateFairness(t *testing.T) {
	cfg := Config{BottleneckBps: 12e6, RTT: 0.06, QueuePackets: 128}
	sizes := []int64{6_000_000, 6_000_000, 6_000_000, 6_000_000}
	rs := TransferN(cfg, sizes, randx.New(5))
	min, max := math.Inf(1), 0.0
	for _, r := range rs {
		tp := r.Throughput()
		min = math.Min(min, tp)
		max = math.Max(max, tp)
	}
	if max/min > 2.2 {
		t.Fatalf("4-flow fairness spread %.2f too wide (%.2f..%.2f Mb/s)",
			max/min, min/1e6, max/1e6)
	}
}
