package registry

import (
	"errors"
	"testing"
	"time"
)

// clockServer returns a server on a controllable clock.
func clockServer(start time.Time) (*Server, *time.Time) {
	now := start
	s := &Server{Clock: func() time.Time { return now }}
	return s, &now
}

func TestExpiredEntryMarkedDownThenForgotten(t *testing.T) {
	s, now := clockServer(time.Unix(1000, 0))
	if err := s.Register("r1", "127.0.0.1:9000", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// Live inside the TTL.
	if got := s.List(); len(got) != 1 {
		t.Fatalf("live list = %v", got)
	}
	// TTL lapses: excluded from List but visible as down in ListAll.
	*now = now.Add(11 * time.Second)
	if got := s.List(); len(got) != 0 {
		t.Fatalf("lapsed entry still listed: %v", got)
	}
	all := s.ListAll()
	if len(all) != 1 || !all[0].Down {
		t.Fatalf("ListAll after lapse = %+v, want one down entry", all)
	}
	if s.Downs.Load() != 1 {
		t.Fatalf("Downs = %d, want 1", s.Downs.Load())
	}
	// A refresh resurrects it.
	if err := s.Register("r1", "127.0.0.1:9000", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := s.List(); len(got) != 1 || got[0].Down {
		t.Fatalf("refreshed entry not live: %v", got)
	}
	// Lapse again and outlast the grace: forgotten entirely.
	*now = now.Add(11 * time.Second)
	s.List() // marks down
	*now = now.Add(downGraceFactor*10*time.Second + time.Second)
	if all := s.ListAll(); len(all) != 0 {
		t.Fatalf("entry survived the grace period: %+v", all)
	}
}

func TestListRankedOrdersByHealth(t *testing.T) {
	s, _ := clockServer(time.Unix(1000, 0))
	check := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	check(s.RegisterHealth("mid", "a:1", time.Minute, 0.5))
	check(s.RegisterHealth("best", "a:2", time.Minute, 0.9))
	check(s.RegisterHealth("worst", "a:3", time.Minute, 0.1))
	check(s.Register("silent", "a:4", time.Minute)) // unreported ranks last

	got := s.ListRanked(0)
	want := []string{"best", "mid", "worst", "silent"}
	if len(got) != len(want) {
		t.Fatalf("ranked %d entries, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.Name != want[i] {
			t.Fatalf("rank %d = %s, want %s (full: %+v)", i, e.Name, want[i], got)
		}
	}
	if top := s.ListRanked(2); len(top) != 2 || top[0].Name != "best" || top[1].Name != "mid" {
		t.Fatalf("ListRanked(2) = %+v", top)
	}
	// LastSeen is recorded.
	if got[0].LastSeen.IsZero() {
		t.Fatal("LastSeen not recorded")
	}
}

func TestHealthClampAndValidation(t *testing.T) {
	s, _ := clockServer(time.Unix(1000, 0))
	if err := s.RegisterHealth("r", "a:1", time.Minute, 7.0); err != nil {
		t.Fatal(err)
	}
	if got := s.List()[0].Health; got != 1 {
		t.Fatalf("health clamped to %v, want 1", got)
	}
	if err := s.Register("", "a:1", time.Minute); !errors.Is(err, ErrBadName) {
		t.Fatalf("empty name accepted: %v", err)
	}
}

func TestWireRegisterHealthAndListRanked(t *testing.T) {
	s := &Server{}
	l, err := s.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	addr := l.Addr().String()

	if err := RegisterHealth(addr, "good", "127.0.0.1:1", time.Minute, 0.95); err != nil {
		t.Fatal(err)
	}
	if err := RegisterHealth(addr, "bad", "127.0.0.1:2", time.Minute, 0.2); err != nil {
		t.Fatal(err)
	}
	if err := Register(addr, "plain", "127.0.0.1:3", time.Minute); err != nil {
		t.Fatal(err)
	}

	// Plain LIST is unchanged: name-sorted, no health on the wire.
	plain, err := List(addr)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != 3 || plain[0].Name != "bad" {
		t.Fatalf("LIST = %+v", plain)
	}

	ranked, err := ListRanked(addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 2 || ranked[0].Name != "good" || ranked[1].Name != "bad" {
		t.Fatalf("LISTH 2 = %+v", ranked)
	}
	if ranked[0].Health < 0.94 || ranked[0].Health > 0.96 {
		t.Fatalf("health lost on the wire: %+v", ranked[0])
	}

	if s.Lists.Load() != 2 || s.Registrations.Load() != 3 {
		t.Fatalf("wire counters lists=%d regs=%d, want 2/3", s.Lists.Load(), s.Registrations.Load())
	}
}

func TestStartHeartbeatReportsHealthAndState(t *testing.T) {
	s := &Server{}
	l, err := s.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	stop := make(chan struct{})
	defer close(stop)
	score := 0.77
	hb, err := StartHeartbeat(l.Addr().String(), "r1", "127.0.0.1:9", 30*time.Second,
		func() float64 { return score }, stop)
	if err != nil {
		t.Fatal(err)
	}
	if !hb.OK() || hb.LastOK().IsZero() || hb.Err() != nil {
		t.Fatalf("heartbeat state after first register: ok=%v lastOK=%v err=%v",
			hb.OK(), hb.LastOK(), hb.Err())
	}
	got := s.ListRanked(0)
	if len(got) != 1 || got[0].Health != 0.77 {
		t.Fatalf("registered health = %+v, want 0.77", got)
	}
}

func TestStartHeartbeatFailsFastOnBadRegistry(t *testing.T) {
	stop := make(chan struct{})
	defer close(stop)
	hb, err := StartHeartbeat("127.0.0.1:1", "r1", "127.0.0.1:9", time.Minute, nil, stop)
	if err == nil {
		t.Fatal("expected connection error")
	}
	if hb.OK() || hb.Err() == nil {
		t.Fatalf("state after failure: ok=%v err=%v", hb.OK(), hb.Err())
	}
}
