package registry

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestRegisterAndList(t *testing.T) {
	var s Server
	if err := s.Register("a", "1.2.3.4:80", time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("b", "5.6.7.8:80", time.Minute); err != nil {
		t.Fatal(err)
	}
	got := s.List()
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "b" {
		t.Fatalf("list = %+v", got)
	}
}

func TestRegisterValidation(t *testing.T) {
	var s Server
	cases := []struct {
		name, addr string
		ttl        time.Duration
		want       error
	}{
		{"", "x:1", time.Minute, ErrBadName},
		{"a", "", time.Minute, ErrBadName},
		{"a b", "x:1", time.Minute, ErrBadName},
		{"a", "x:1\n", time.Minute, ErrBadName},
		{"a", "x:1", 0, ErrBadTTL},
		{"a", "x:1", -time.Second, ErrBadTTL},
	}
	for _, c := range cases {
		if err := s.Register(c.name, c.addr, c.ttl); !errors.Is(err, c.want) {
			t.Errorf("Register(%q,%q,%v) = %v, want %v", c.name, c.addr, c.ttl, err, c.want)
		}
	}
}

func TestExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	s := Server{Clock: func() time.Time { return now }}
	s.Register("a", "x:1", 30*time.Second)
	s.Register("b", "y:1", 120*time.Second)
	now = now.Add(60 * time.Second)
	got := s.List()
	if len(got) != 1 || got[0].Name != "b" {
		t.Fatalf("after expiry list = %+v", got)
	}
	// Expired entries are garbage collected.
	now = now.Add(120 * time.Second)
	if got := s.List(); len(got) != 0 {
		t.Fatalf("all should have lapsed: %+v", got)
	}
}

func TestRefreshExtends(t *testing.T) {
	now := time.Unix(0, 0)
	s := Server{Clock: func() time.Time { return now }}
	s.Register("a", "x:1", 30*time.Second)
	now = now.Add(20 * time.Second)
	s.Register("a", "x:1", 30*time.Second) // heartbeat
	now = now.Add(20 * time.Second)
	if got := s.List(); len(got) != 1 {
		t.Fatalf("refreshed entry lapsed: %+v", got)
	}
}

func TestRemove(t *testing.T) {
	var s Server
	s.Register("a", "x:1", time.Minute)
	s.Remove("a")
	s.Remove("ghost") // idempotent
	if got := s.List(); len(got) != 0 {
		t.Fatalf("remove failed: %+v", got)
	}
}

func TestWireProtocol(t *testing.T) {
	var s Server
	l, err := s.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	addr := l.Addr().String()

	if err := Register(addr, "campus", "10.0.0.2:8081", time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := Register(addr, "isp", "10.0.0.3:8081", time.Minute); err != nil {
		t.Fatal(err)
	}
	got, err := List(addr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("list = %+v", got)
	}
	if got[0].Name != "campus" || got[0].Addr != "10.0.0.2:8081" {
		t.Fatalf("entry = %+v", got[0])
	}
}

func TestWireRejectsBadRequests(t *testing.T) {
	var s Server
	l, err := s.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := Register(l.Addr().String(), "x y", "addr", time.Minute); err == nil {
		t.Fatal("space-containing name accepted over the wire")
	}
	// Zero TTL is rejected server-side.
	if err := Register(l.Addr().String(), "x", "addr", 100*time.Millisecond); err != nil {
		// sub-second truncates to 0s -> rejected: that is correct.
		if !errors.Is(err, ErrRejected) {
			t.Fatalf("unexpected error %v", err)
		}
	} else {
		t.Fatal("sub-second TTL should be rejected (truncates to 0)")
	}
}

func TestConcurrentRegistration(t *testing.T) {
	var s Server
	l, err := s.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		name := string(rune('a' + i))
		go func() {
			defer wg.Done()
			errs <- Register(l.Addr().String(), name, "h:1", time.Minute)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got, _ := List(l.Addr().String()); len(got) != 20 {
		t.Fatalf("registered %d of 20", len(got))
	}
}

func TestHeartbeatKeepsAlive(t *testing.T) {
	var s Server
	l, err := s.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	stop := make(chan struct{})
	defer close(stop)
	if err := Heartbeat(l.Addr().String(), "hb", "h:1", 2*time.Second, stop); err != nil {
		t.Fatal(err)
	}
	// After > TTL with heartbeats every TTL/3, the entry must survive.
	time.Sleep(2500 * time.Millisecond)
	got, err := List(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "hb" {
		t.Fatalf("heartbeat entry gone: %+v", got)
	}
}

func TestHeartbeatFailsFastOnDeadRegistry(t *testing.T) {
	stop := make(chan struct{})
	defer close(stop)
	if err := Heartbeat("127.0.0.1:1", "x", "h:1", time.Minute, stop); err == nil {
		t.Fatal("heartbeat to dead registry should fail immediately")
	}
}
