// Package registry provides relay-node discovery: relays register
// themselves (with a TTL, refreshed by heartbeats) and clients list the
// live set. This is the operational glue the paper's deployment implies —
// "the set of nodes available to a client" from which candidate policies
// draw — turned into a small service.
//
// Registration doubles as a health report: each heartbeat may carry the
// relay's self-measured health score (its HealthMonitor's view of its
// upstream paths), the registry records last-seen times, marks entries
// whose TTL lapses as down (holding them for a grace period before
// forgetting them), and LISTH serves the candidate set ranked
// healthiest-first — so a client probing only the top K exercises the
// paper's §V observation that a small, well-chosen candidate subset
// captures nearly all the attainable improvement.
//
// The wire protocol is line-based over TCP, one session per command:
//
//	REGISTER <name> <addr> <ttl-seconds> [<health 0..1>]\n  ->  OK\n
//	LIST\n                                  ->  <name> <addr>\n ... .\n
//	LISTH [<k>]\n                           ->  <name> <addr> <health> <state>\n ... .\n
//
// Names and addresses must be token-shaped (no whitespace). LISTH
// returns live entries ranked by health (best first, unreported health
// ranks below any reported score), truncated to k when given.
package registry

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Errors returned by the client helpers.
var (
	ErrBadEntry  = errors.New("registry: malformed entry")
	ErrRejected  = errors.New("registry: request rejected")
	ErrBadName   = errors.New("registry: name and addr must be non-empty tokens")
	ErrBadTTL    = errors.New("registry: ttl must be positive")
	errShortRead = errors.New("registry: short response")
)

// HealthUnreported marks an entry whose registrant never sent a health
// score; it ranks below any reported score.
const HealthUnreported = -1

// downGraceFactor scales the TTL into the post-expiry grace period: an
// entry whose TTL lapses is marked down and held for TTL×downGraceFactor
// so operators (and /debug/vars) can see the outage before the registry
// forgets the relay existed.
const downGraceFactor = 2

// Entry is one registered relay.
type Entry struct {
	Name string
	Addr string
	// Expires is when the entry lapses unless refreshed.
	Expires time.Time
	// LastSeen is when the last REGISTER for this name arrived.
	LastSeen time.Time
	// TTL is the registration's lifetime, as most recently reported.
	TTL time.Duration
	// Health is the registrant's self-reported health score in [0, 1],
	// or HealthUnreported.
	Health float64
	// Down marks an entry whose TTL lapsed without a refresh; down
	// entries are excluded from LIST/ListRanked and dropped entirely
	// once the grace period passes.
	Down bool
}

// Server is the registry service. The zero value is ready to use; set
// Clock only in tests.
type Server struct {
	// Clock returns the current time (nil means time.Now); injectable
	// for expiry tests.
	Clock func() time.Time

	// Registrations counts accepted REGISTER commands received over the
	// wire (in-process Register calls are not counted).
	Registrations atomic.Int64
	// Lists counts LIST and LISTH commands served over the wire.
	Lists atomic.Int64
	// Downs counts entries marked down by TTL expiry.
	Downs atomic.Int64

	mu      sync.Mutex
	entries map[string]Entry

	lat obs.LatencyRecorder
}

// LatencySnapshot returns the distribution of wire-command handling
// times, ready for Prometheus exposition.
func (s *Server) LatencySnapshot() obs.HistogramSnapshot { return s.lat.Snapshot() }

func (s *Server) now() time.Time {
	if s.Clock != nil {
		return s.Clock()
	}
	return time.Now()
}

// Register inserts or refreshes an entry with no health report.
func (s *Server) Register(name, addr string, ttl time.Duration) error {
	return s.RegisterHealth(name, addr, ttl, HealthUnreported)
}

// RegisterHealth inserts or refreshes an entry carrying the
// registrant's self-reported health score. A refresh clears any down
// mark — the relay is back.
func (s *Server) RegisterHealth(name, addr string, ttl time.Duration, health float64) error {
	if name == "" || addr == "" || strings.ContainsAny(name+addr, " \t\r\n") {
		return ErrBadName
	}
	if ttl <= 0 {
		return ErrBadTTL
	}
	if health != HealthUnreported {
		if health < 0 {
			health = 0
		}
		if health > 1 {
			health = 1
		}
	}
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.entries == nil {
		s.entries = make(map[string]Entry)
	}
	s.entries[name] = Entry{
		Name: name, Addr: addr,
		Expires: now.Add(ttl), LastSeen: now, TTL: ttl,
		Health: health,
	}
	return nil
}

// sweep applies TTL expiry under s.mu: lapsed entries are marked down;
// down entries past their grace are deleted.
func (s *Server) sweep(now time.Time) {
	for name, e := range s.entries {
		if e.Down {
			if now.After(e.Expires.Add(downGraceFactor * e.TTL)) {
				delete(s.entries, name)
			}
			continue
		}
		if e.Expires.Before(now) {
			e.Down = true
			s.entries[name] = e
			s.Downs.Add(1)
		}
	}
}

// List returns the live entries sorted by name. Entries whose TTL
// lapsed are excluded (marked down, then forgotten after the grace).
func (s *Server) List() []Entry {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweep(now)
	var out []Entry
	for _, e := range s.entries {
		if !e.Down {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ListAll returns every tracked entry — live and down — sorted by name,
// for the /debug/vars view.
func (s *Server) ListAll() []Entry {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweep(now)
	out := make([]Entry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ListRanked returns up to k live entries ranked healthiest-first:
// reported health descending (unreported ranks last), ties by name.
// k <= 0 means all.
func (s *Server) ListRanked(k int) []Entry {
	out := s.List()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Health != out[j].Health {
			return out[i].Health > out[j].Health
		}
		return out[i].Name < out[j].Name
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// Remove deletes an entry by name (idempotent).
func (s *Server) Remove(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.entries, name)
}

// Serve accepts registry sessions until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.handle(conn)
	}
}

// ServeAddr starts the registry on addr and returns its listener.
func (s *Server) ServeAddr(addr string) (net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go s.Serve(l)
	return l, nil
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	start := time.Now()
	defer func() { s.lat.Observe(time.Since(start)) }()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil {
		return
	}
	fields := strings.Fields(line)
	if len(fields) == 0 {
		fmt.Fprintf(conn, "ERR empty command\n")
		return
	}
	switch fields[0] {
	case "REGISTER":
		if len(fields) != 4 && len(fields) != 5 {
			fmt.Fprintf(conn, "ERR usage: REGISTER name addr ttl [health]\n")
			return
		}
		ttlSec, err := strconv.Atoi(fields[3])
		if err != nil || ttlSec <= 0 {
			fmt.Fprintf(conn, "ERR bad ttl\n")
			return
		}
		health := float64(HealthUnreported)
		if len(fields) == 5 {
			health, err = strconv.ParseFloat(fields[4], 64)
			if err != nil || health < 0 || health > 1 {
				fmt.Fprintf(conn, "ERR bad health\n")
				return
			}
		}
		if err := s.RegisterHealth(fields[1], fields[2], time.Duration(ttlSec)*time.Second, health); err != nil {
			fmt.Fprintf(conn, "ERR %v\n", err)
			return
		}
		s.Registrations.Add(1)
		fmt.Fprintf(conn, "OK\n")
	case "LIST":
		s.Lists.Add(1)
		for _, e := range s.List() {
			fmt.Fprintf(conn, "%s %s\n", e.Name, e.Addr)
		}
		fmt.Fprintf(conn, ".\n")
	case "LISTH":
		if len(fields) > 2 {
			fmt.Fprintf(conn, "ERR usage: LISTH [k]\n")
			return
		}
		k := 0
		if len(fields) == 2 {
			k, err = strconv.Atoi(fields[1])
			if err != nil || k < 0 {
				fmt.Fprintf(conn, "ERR bad k\n")
				return
			}
		}
		s.Lists.Add(1)
		for _, e := range s.ListRanked(k) {
			fmt.Fprintf(conn, "%s %s %s up\n", e.Name, e.Addr,
				strconv.FormatFloat(e.Health, 'g', 6, 64))
		}
		fmt.Fprintf(conn, ".\n")
	default:
		fmt.Fprintf(conn, "ERR unknown command %q\n", fields[0])
	}
}

// Register performs one REGISTER call against the registry at regAddr.
func Register(regAddr, name, relayAddr string, ttl time.Duration) error {
	return RegisterHealth(regAddr, name, relayAddr, ttl, HealthUnreported)
}

// RegisterHealth performs one REGISTER call carrying a health score
// (HealthUnreported omits it).
func RegisterHealth(regAddr, name, relayAddr string, ttl time.Duration, health float64) error {
	conn, err := net.Dial("tcp", regAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if health == HealthUnreported {
		fmt.Fprintf(conn, "REGISTER %s %s %d\n", name, relayAddr, int(ttl.Seconds()))
	} else {
		fmt.Fprintf(conn, "REGISTER %s %s %d %s\n", name, relayAddr, int(ttl.Seconds()),
			strconv.FormatFloat(health, 'g', 6, 64))
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return fmt.Errorf("%w: %v", errShortRead, err)
	}
	if strings.TrimSpace(line) != "OK" {
		return fmt.Errorf("%w: %s", ErrRejected, strings.TrimSpace(line))
	}
	return nil
}

// List fetches the live relay set from the registry at regAddr.
func List(regAddr string) ([]Entry, error) {
	return listWire(regAddr, "LIST\n", false)
}

// ListRanked fetches up to k live relays ranked healthiest-first from
// the registry at regAddr (k <= 0 means all).
func ListRanked(regAddr string, k int) ([]Entry, error) {
	cmd := "LISTH\n"
	if k > 0 {
		cmd = fmt.Sprintf("LISTH %d\n", k)
	}
	return listWire(regAddr, cmd, true)
}

func listWire(regAddr, cmd string, ranked bool) ([]Entry, error) {
	conn, err := net.Dial("tcp", regAddr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	fmt.Fprint(conn, cmd)
	br := bufio.NewReader(conn)
	var out []Entry
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errShortRead, err)
		}
		line = strings.TrimSpace(line)
		if line == "." {
			return out, nil
		}
		fields := strings.Fields(line)
		e := Entry{Health: HealthUnreported}
		switch {
		case !ranked && len(fields) == 2:
			e.Name, e.Addr = fields[0], fields[1]
		case ranked && len(fields) == 4:
			e.Name, e.Addr = fields[0], fields[1]
			h, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("%w: %q", ErrBadEntry, line)
			}
			e.Health = h
		default:
			return nil, fmt.Errorf("%w: %q", ErrBadEntry, line)
		}
		out = append(out, e)
	}
}

// HeartbeatState is the observable status of a background heartbeat,
// feeding the relay daemon's readiness check.
type HeartbeatState struct {
	mu     sync.Mutex
	lastOK time.Time
	err    error
	ok     bool
}

func (h *HeartbeatState) set(err error, now time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.err = err
	h.ok = err == nil
	if err == nil {
		h.lastOK = now
	}
}

// OK reports whether the most recent registration attempt succeeded.
func (h *HeartbeatState) OK() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ok
}

// LastOK returns when the registry last accepted a registration (zero
// if never).
func (h *HeartbeatState) LastOK() time.Time {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastOK
}

// Err returns the most recent registration error, nil after a success.
func (h *HeartbeatState) Err() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.err
}

// Heartbeat keeps name registered at regAddr until stop is closed,
// re-registering every ttl/3. Registration errors are retried on the next
// tick; the first registration happens immediately and its error is
// returned so callers can fail fast on misconfiguration.
func Heartbeat(regAddr, name, relayAddr string, ttl time.Duration, stop <-chan struct{}) error {
	_, err := StartHeartbeat(regAddr, name, relayAddr, ttl, nil, stop)
	return err
}

// StartHeartbeat is Heartbeat with two additions: each registration
// carries the current value of health (nil means unreported), and the
// returned HeartbeatState tracks whether the registry is still
// accepting refreshes — the relay daemon's registry-reachability
// readiness signal. The first registration happens synchronously and
// its error is returned.
func StartHeartbeat(regAddr, name, relayAddr string, ttl time.Duration, health func() float64, stop <-chan struct{}) (*HeartbeatState, error) {
	report := func() error {
		h := float64(HealthUnreported)
		if health != nil {
			h = health()
		}
		return RegisterHealth(regAddr, name, relayAddr, ttl, h)
	}
	state := &HeartbeatState{}
	err := report()
	state.set(err, time.Now())
	if err != nil {
		return state, err
	}
	go func() {
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				state.set(report(), time.Now()) // retried next tick on error
			}
		}
	}()
	return state, nil
}
