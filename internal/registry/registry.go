// Package registry provides relay-node discovery: relays register
// themselves (with a TTL, refreshed by heartbeats) and clients list the
// live set. This is the operational glue the paper's deployment implies —
// "the set of nodes available to a client" from which candidate policies
// draw — turned into a small service.
//
// The wire protocol is line-based over TCP, one session per command:
//
//	REGISTER <name> <addr> <ttl-seconds>\n   ->  OK\n
//	LIST\n                                   ->  <name> <addr>\n ... .\n
//
// Names and addresses must be token-shaped (no whitespace).
package registry

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Errors returned by the client helpers.
var (
	ErrBadEntry  = errors.New("registry: malformed entry")
	ErrRejected  = errors.New("registry: request rejected")
	ErrBadName   = errors.New("registry: name and addr must be non-empty tokens")
	ErrBadTTL    = errors.New("registry: ttl must be positive")
	errShortRead = errors.New("registry: short response")
)

// Entry is one registered relay.
type Entry struct {
	Name string
	Addr string
	// Expires is when the entry lapses unless refreshed.
	Expires time.Time
}

// Server is the registry service. The zero value is ready to use; set
// Clock only in tests.
type Server struct {
	// Clock returns the current time (nil means time.Now); injectable
	// for expiry tests.
	Clock func() time.Time

	// Registrations counts accepted REGISTER commands received over the
	// wire (in-process Register calls are not counted).
	Registrations atomic.Int64
	// Lists counts LIST commands served over the wire.
	Lists atomic.Int64

	mu      sync.Mutex
	entries map[string]Entry

	lat obs.LatencyRecorder
}

// LatencySnapshot returns the distribution of wire-command handling
// times, ready for Prometheus exposition.
func (s *Server) LatencySnapshot() obs.HistogramSnapshot { return s.lat.Snapshot() }

func (s *Server) now() time.Time {
	if s.Clock != nil {
		return s.Clock()
	}
	return time.Now()
}

// Register inserts or refreshes an entry.
func (s *Server) Register(name, addr string, ttl time.Duration) error {
	if name == "" || addr == "" || strings.ContainsAny(name+addr, " \t\r\n") {
		return ErrBadName
	}
	if ttl <= 0 {
		return ErrBadTTL
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.entries == nil {
		s.entries = make(map[string]Entry)
	}
	s.entries[name] = Entry{Name: name, Addr: addr, Expires: s.now().Add(ttl)}
	return nil
}

// List returns the live entries sorted by name, dropping lapsed ones.
func (s *Server) List() []Entry {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Entry
	for name, e := range s.entries {
		if e.Expires.Before(now) {
			delete(s.entries, name)
			continue
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Remove deletes an entry by name (idempotent).
func (s *Server) Remove(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.entries, name)
}

// Serve accepts registry sessions until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.handle(conn)
	}
}

// ServeAddr starts the registry on addr and returns its listener.
func (s *Server) ServeAddr(addr string) (net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go s.Serve(l)
	return l, nil
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	start := time.Now()
	defer func() { s.lat.Observe(time.Since(start)) }()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil {
		return
	}
	fields := strings.Fields(line)
	if len(fields) == 0 {
		fmt.Fprintf(conn, "ERR empty command\n")
		return
	}
	switch fields[0] {
	case "REGISTER":
		if len(fields) != 4 {
			fmt.Fprintf(conn, "ERR usage: REGISTER name addr ttl\n")
			return
		}
		ttlSec, err := strconv.Atoi(fields[3])
		if err != nil || ttlSec <= 0 {
			fmt.Fprintf(conn, "ERR bad ttl\n")
			return
		}
		if err := s.Register(fields[1], fields[2], time.Duration(ttlSec)*time.Second); err != nil {
			fmt.Fprintf(conn, "ERR %v\n", err)
			return
		}
		s.Registrations.Add(1)
		fmt.Fprintf(conn, "OK\n")
	case "LIST":
		s.Lists.Add(1)
		for _, e := range s.List() {
			fmt.Fprintf(conn, "%s %s\n", e.Name, e.Addr)
		}
		fmt.Fprintf(conn, ".\n")
	default:
		fmt.Fprintf(conn, "ERR unknown command %q\n", fields[0])
	}
}

// Register performs one REGISTER call against the registry at regAddr.
func Register(regAddr, name, relayAddr string, ttl time.Duration) error {
	conn, err := net.Dial("tcp", regAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	fmt.Fprintf(conn, "REGISTER %s %s %d\n", name, relayAddr, int(ttl.Seconds()))
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return fmt.Errorf("%w: %v", errShortRead, err)
	}
	if strings.TrimSpace(line) != "OK" {
		return fmt.Errorf("%w: %s", ErrRejected, strings.TrimSpace(line))
	}
	return nil
}

// List fetches the live relay set from the registry at regAddr.
func List(regAddr string) ([]Entry, error) {
	conn, err := net.Dial("tcp", regAddr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	fmt.Fprintf(conn, "LIST\n")
	br := bufio.NewReader(conn)
	var out []Entry
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errShortRead, err)
		}
		line = strings.TrimSpace(line)
		if line == "." {
			return out, nil
		}
		name, addr, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrBadEntry, line)
		}
		out = append(out, Entry{Name: name, Addr: addr})
	}
}

// Heartbeat keeps name registered at regAddr until stop is closed,
// re-registering every ttl/3. Registration errors are retried on the next
// tick; the first registration happens immediately and its error is
// returned so callers can fail fast on misconfiguration.
func Heartbeat(regAddr, name, relayAddr string, ttl time.Duration, stop <-chan struct{}) error {
	if err := Register(regAddr, name, relayAddr, ttl); err != nil {
		return err
	}
	go func() {
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				_ = Register(regAddr, name, relayAddr, ttl) // retried next tick
			}
		}
	}()
	return nil
}
