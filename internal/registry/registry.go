// Package registry provides relay-node discovery: relays register
// themselves (with a TTL, refreshed by heartbeats) and clients list the
// live set. This is the operational glue the paper's deployment implies —
// "the set of nodes available to a client" from which candidate policies
// draw — turned into a service that holds up at registry scale (100k+
// heartbeating relays) instead of a single mutex-guarded map.
//
// Registration doubles as a health report: each heartbeat may carry the
// relay's self-measured health score (its HealthMonitor's view of its
// upstream paths), the registry records last-seen times, marks entries
// whose TTL lapses as down (holding them for a grace period before
// forgetting them), and LISTH serves the candidate set ranked
// healthiest-first — so a client probing only the top K exercises the
// paper's §V observation that a small, well-chosen candidate subset
// captures nearly all the attainable improvement.
//
// Three mechanisms carry the scale:
//
//   - The table is sharded: entries stripe across NumShards partitions by
//     FNV-1a hash of the relay name, each behind its own mutex, so a
//     REGISTER storm stops serializing on one lock and full-table scans
//     (LISTH at 100k entries) hold only one shard at a time.
//
//   - Mutations are epoch-versioned: every change bumps a registry-wide
//     epoch, and LISTD serves only the entries changed since the epoch a
//     client last saw — steady-state clients keep a cached ranked set
//     (RankedSet) and re-pull deltas instead of full lists. Entries carry
//     two stamps: ChangeEpoch moves on material changes (address, health,
//     up/down state) and feeds client deltas; SeenEpoch moves on every
//     refresh and feeds peer anti-entropy, so a heartbeat that changes
//     nothing costs LISTD clients zero lines but still tells peers the
//     relay is alive.
//
//   - Registries peer: PeerSync periodically pulls SYNCD deltas from
//     each configured peer and merges them last-writer-wins on LastSeen,
//     so discovery survives a registryd loss and a heartbeat reaching
//     either peer converges on both.
//
// The wire protocol is line-based over TCP; a session may carry any
// number of commands (clients can hold a pooled connection open):
//
//	REGISTER <name> <addr> <ttl-seconds> [<health 0..1|-1> [<metrics-addr>]]\n -> OK\n
//	LIST\n                -> <name> <addr>\n ... .\n
//	LISTH [<k>]\n         -> <name> <addr> <health> <up|down> [<metrics-addr>]\n ... .\n
//	LISTD <epoch> [<k>]\n -> EPOCH <epoch> [full]\n
//	                         + <name> <addr> <health> <up|down> [<metrics-addr>]\n
//	                         - <name>\n ... .\n
//	EPOCH\n               -> EPOCH <epoch> <digest>\n
//	SYNCD <epoch>\n       -> EPOCH <epoch> [full]\n
//	                         + <name> <addr> <health> <lastseen-ns> <ttl-ns> [<metrics-addr>]\n
//	                         - <name> <lastseen-ns>\n ... .\n
//
// Names and addresses must be token-shaped (no whitespace). The
// optional trailing metrics-addr token is the relay's observability
// endpoint (its daemon HTTP address) — the fleet aggregator scrapes it;
// six-field REGISTER accepts health -1 (unreported) so a relay can
// advertise a metrics address without a score. Response lines omit the
// token when the entry never reported one, keeping old clients'
// field counts intact. LISTH
// returns entries ranked by health (best first, unreported health ranks
// below any reported score, down-marked entries rank after every live
// one and say so in the state column), truncated to k when given.
// LISTD's epoch is the client's last-synced epoch (0 for a first pull);
// the response replays adds/updates (+) and deletes (-) since then, or —
// when the epoch is unknown, from a restarted server, or older than the
// tombstone horizon — a full snapshot tagged "full". SYNCD is LISTD for
// peers: keyed by SeenEpoch and carrying the absolute LastSeen/TTL a
// last-writer-wins merge needs.
package registry

import (
	"errors"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Errors returned by the registry client (all reachable through
// errors.Is from Client method returns).
var (
	// ErrBadEntry reports a malformed response line from the server.
	ErrBadEntry = errors.New("registry: malformed entry")
	// ErrRejected reports a request the server refused (ERR response).
	ErrRejected = errors.New("registry: request rejected")
	// ErrBadName reports a name or address that is not a non-empty token.
	ErrBadName = errors.New("registry: name and addr must be non-empty tokens")
	// ErrBadTTL reports a non-positive registration TTL.
	ErrBadTTL = errors.New("registry: ttl must be positive")
	// ErrUnavailable reports that the registry and every fallback peer
	// failed; it wraps the last transport error.
	ErrUnavailable = errors.New("registry: no endpoint reachable")
	errShortRead   = errors.New("registry: short response")
)

// HealthUnreported marks an entry whose registrant never sent a health
// score; it ranks below any reported score.
const HealthUnreported = -1

// downGraceFactor scales the TTL into the post-expiry grace period: an
// entry whose TTL lapses is marked down and held for TTL×downGraceFactor
// so operators (and LISTH) can see the outage before the registry
// forgets the relay existed.
const downGraceFactor = 2

// DefaultShards is the table partition count when Server.NumShards is
// zero: enough stripes that a heartbeat storm's lock waits vanish, few
// enough that per-shard scans stay cache-friendly.
const DefaultShards = 32

// DefaultTimeout bounds one wire command (server side) and one request
// (client side) when no explicit timeout is configured.
const DefaultTimeout = 10 * time.Second

// Entry is one registered relay.
type Entry struct {
	Name string
	Addr string
	// Expires is when the entry lapses unless refreshed.
	Expires time.Time
	// LastSeen is when the last REGISTER for this name arrived (or, on a
	// peered registry, when it arrived at whichever peer saw it last).
	LastSeen time.Time
	// TTL is the registration's lifetime, as most recently reported.
	TTL time.Duration
	// Health is the registrant's self-reported health score in [0, 1],
	// or HealthUnreported.
	Health float64
	// Down marks an entry whose TTL lapsed without a refresh; down
	// entries are excluded from LIST/ListRanked, served with state
	// "down" by LISTH/LISTD during the grace period, and dropped
	// entirely once it passes.
	Down bool
	// MetricsAddr is the registrant's observability endpoint (daemon
	// HTTP address serving /metrics and /debug/*), "" when unreported.
	// The fleet aggregator scrapes it.
	MetricsAddr string
	// ChangeEpoch is the registry epoch of the entry's last material
	// change (insert, address, health, metrics address, or up/down
	// transition) — the stamp LISTD deltas filter on.
	ChangeEpoch uint64

	// seenEpoch is the epoch of the entry's last refresh of any kind
	// (material or pure heartbeat) — the stamp peer SYNCD filters on.
	seenEpoch uint64
}

// Server is the registry service. The zero value is ready to use; set
// the exported fields only before the first call.
type Server struct {
	// Clock returns the current time (nil means time.Now); injectable
	// for expiry tests.
	Clock func() time.Time
	// NumShards is the table partition count (0 = DefaultShards). Read
	// on first use; changes afterwards are ignored.
	NumShards int
	// Timeout bounds each wire command: the per-command connection
	// deadline (0 = DefaultTimeout).
	Timeout time.Duration

	// Registrations counts accepted REGISTER commands received over the
	// wire (in-process Register calls are not counted).
	Registrations atomic.Int64
	// Lists counts LIST and LISTH commands served over the wire.
	Lists atomic.Int64
	// DeltaLists counts LISTD commands served over the wire.
	DeltaLists atomic.Int64
	// FullDeltas counts LISTD/SYNCD responses that had to fall back to a
	// full snapshot (unknown or pre-horizon epoch).
	FullDeltas atomic.Int64
	// Syncs counts SYNCD commands served over the wire (peer pulls).
	Syncs atomic.Int64
	// Downs counts entries marked down by TTL expiry.
	Downs atomic.Int64

	// epoch is the registry-wide mutation counter; every change claims
	// the next value while holding the owning shard's lock, so a reader
	// that snapshots the epoch and then visits the shards cannot miss a
	// change at or below its snapshot.
	epoch atomic.Uint64
	// deltaFloor is the highest epoch of any pruned tombstone: a delta
	// request from below it could miss a delete, so it gets a full
	// snapshot instead.
	deltaFloor atomic.Uint64

	initOnce sync.Once
	shards   []*shard

	lat obs.LatencyRecorder
}

// LatencySnapshot returns the distribution of wire-command handling
// times, ready for Prometheus exposition.
func (s *Server) LatencySnapshot() obs.HistogramSnapshot { return s.lat.Snapshot() }

func (s *Server) now() time.Time {
	if s.Clock != nil {
		return s.Clock()
	}
	return time.Now()
}

// init lays out the shard table on first use.
func (s *Server) init() {
	s.initOnce.Do(func() {
		n := s.NumShards
		if n <= 0 {
			n = DefaultShards
		}
		s.shards = make([]*shard, n)
		for i := range s.shards {
			s.shards[i] = newShard()
		}
	})
}

// Epoch returns the current registry epoch: the stamp of the most
// recent mutation (0 before any).
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// Register inserts or refreshes an entry with no health report.
func (s *Server) Register(name, addr string, ttl time.Duration) error {
	return s.RegisterHealth(name, addr, ttl, HealthUnreported)
}

// RegisterHealth inserts or refreshes an entry carrying the
// registrant's self-reported health score. A refresh clears any down
// mark — the relay is back. Only material changes (a new entry, a new
// address, health value, or metrics address, an up/down transition)
// advance the entry's ChangeEpoch; a pure heartbeat refresh advances
// SeenEpoch alone, so it is invisible to LISTD clients but still
// propagates through peer sync.
func (s *Server) RegisterHealth(name, addr string, ttl time.Duration, health float64) error {
	return s.RegisterFull(name, addr, ttl, health, "")
}

// RegisterFull is RegisterHealth plus the registrant's observability
// endpoint (empty when it serves none).
func (s *Server) RegisterFull(name, addr string, ttl time.Duration, health float64, metricsAddr string) error {
	if name == "" || addr == "" || strings.ContainsAny(name+addr+metricsAddr, " \t\r\n") {
		return ErrBadName
	}
	if ttl <= 0 {
		return ErrBadTTL
	}
	if health != HealthUnreported {
		if health < 0 {
			health = 0
		}
		if health > 1 {
			health = 1
		}
	}
	s.init()
	now := s.now()
	sh := s.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.tombs, name)
	old, existed := sh.entries[name]
	e := Entry{
		Name: name, Addr: addr,
		Expires: now.Add(ttl), LastSeen: now, TTL: ttl,
		Health: health, MetricsAddr: metricsAddr,
	}
	epoch := s.epoch.Add(1)
	e.seenEpoch = epoch
	if existed && old.Addr == addr && old.Health == health &&
		old.MetricsAddr == metricsAddr && !old.Down {
		e.ChangeEpoch = old.ChangeEpoch // pure refresh: nothing a client sees moved
	} else {
		e.ChangeEpoch = epoch
	}
	sh.entries[name] = e
	return nil
}

// Remove deletes an entry by name (idempotent), leaving a tombstone so
// delta clients and peers learn about the delete.
func (s *Server) Remove(name string) {
	s.init()
	now := s.now()
	sh := s.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.entries[name]; !ok {
		return
	}
	delete(sh.entries, name)
	sh.tombs[name] = tombstone{
		Epoch:    s.epoch.Add(1),
		LastSeen: now,
		Keep:     now.Add(tombstoneKeep),
	}
}

// List returns the live entries sorted by name. Entries whose TTL
// lapsed are excluded (marked down, then forgotten after the grace).
func (s *Server) List() []Entry {
	out := s.collect(func(e Entry) bool { return !e.Down })
	sortByName(out)
	return out
}

// ListAll returns every tracked entry — live and down — sorted by name,
// for the /debug/vars view.
func (s *Server) ListAll() []Entry {
	out := s.collect(func(Entry) bool { return true })
	sortByName(out)
	return out
}

// ListRanked returns up to k live entries ranked healthiest-first:
// reported health descending (unreported ranks last), ties by name.
// k <= 0 means all.
func (s *Server) ListRanked(k int) []Entry {
	out := s.collect(func(e Entry) bool { return !e.Down })
	sortRanked(out)
	return truncate(out, k)
}

// rankedAll is the LISTH/LISTD-full view: live entries ranked
// healthiest-first, then down-marked entries (still inside their grace)
// ranked after every live one — operators see outages from the CLI
// instead of a hard-coded "up" column.
func (s *Server) rankedAll(k int) []Entry {
	out := s.collect(func(Entry) bool { return true })
	sortRanked(out)
	return truncate(out, k)
}

// collect sweeps and gathers matching entries across all shards, locking
// one shard at a time. Shard boundaries double as scheduling points: a
// full-table scan yields between shards so concurrent writers interleave
// instead of queueing behind the whole scan — the indivisible hold is
// exactly what a single-mutex table cannot avoid.
func (s *Server) collect(keep func(Entry) bool) []Entry {
	s.init()
	now := s.now()
	var out []Entry
	for _, sh := range s.shards {
		sh.mu.Lock()
		s.sweepShard(sh, now)
		for _, e := range sh.entries {
			if keep(e) {
				out = append(out, e)
			}
		}
		sh.mu.Unlock()
		runtime.Gosched()
	}
	return out
}

// Sweep applies TTL expiry across the table without collecting entries:
// lapsed entries are marked down, down entries past their grace become
// tombstones, and expired tombstones are pruned (raising the delta
// floor). List/ListRanked/ListDelta sweep as they read; long-running
// servers may also call Sweep from a ticker so epochs advance even when
// nobody is reading.
func (s *Server) Sweep() {
	s.init()
	now := s.now()
	for _, sh := range s.shards {
		sh.mu.Lock()
		s.sweepShard(sh, now)
		sh.mu.Unlock()
	}
}

func sortByName(out []Entry) {
	sortSlice(out, func(a, b Entry) bool { return a.Name < b.Name })
}

// sortRanked orders by: live before down, health descending, name.
func sortRanked(out []Entry) {
	sortSlice(out, func(a, b Entry) bool {
		if a.Down != b.Down {
			return !a.Down
		}
		if a.Health != b.Health {
			return a.Health > b.Health
		}
		return a.Name < b.Name
	})
}

func truncate(out []Entry, k int) []Entry {
	if k > 0 && k < len(out) {
		return out[:k]
	}
	return out
}

// formatHealth renders a health score for the wire.
func formatHealth(h float64) string { return strconv.FormatFloat(h, 'g', 6, 64) }

// stateWord renders the entry's state column.
func stateWord(down bool) string {
	if down {
		return "down"
	}
	return "up"
}
