package registry

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// Shard distribution: FNV-1a over realistic relay names must not pile
// everything on a few stripes, or the sharded design degenerates back
// into a global lock.
func TestShardDistribution(t *testing.T) {
	s := Server{NumShards: 32}
	s.init()
	counts := make(map[*shard]int)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.shardFor(fmt.Sprintf("relay-%05d", i))]++
	}
	if len(counts) != 32 {
		t.Fatalf("only %d of 32 shards used", len(counts))
	}
	mean := n / 32
	for sh, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Errorf("shard %p holds %d entries, mean %d — distribution badly skewed", sh, c, mean)
		}
	}
}

func TestShardForIsStable(t *testing.T) {
	s := Server{NumShards: 8}
	s.init()
	for _, name := range []string{"a", "relay-1", "campus-gw", ""} {
		if s.shardFor(name) != s.shardFor(name) {
			t.Fatalf("shardFor(%q) not stable", name)
		}
	}
}

// Zero-value Server must stay usable: daemon and experiment code build
// it as &registry.Server{} / var s registry.Server.
func TestZeroValueServer(t *testing.T) {
	var s Server
	if err := s.Register("a", "x:1", time.Minute); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Shards != DefaultShards {
		t.Fatalf("zero-value server got %d shards, want %d", st.Shards, DefaultShards)
	}
	if st.Live != 1 {
		t.Fatalf("stats live = %d, want 1", st.Live)
	}
	if st.Epoch == 0 {
		t.Fatal("registration did not advance the epoch")
	}
}

// Hammer registrations from many goroutines across overlapping names;
// run under -race this is the striped-lock safety test.
func TestConcurrentRegisterRace(t *testing.T) {
	s := Server{NumShards: 8}
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				name := fmt.Sprintf("relay-%d", i%50) // heavy name overlap
				if err := s.RegisterHealth(name, "h:1", time.Minute, float64(w%2)); err != nil {
					t.Error(err)
					return
				}
				if i%20 == 0 {
					s.ListRanked(10)
					s.ListDelta(0, 0)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := len(s.List()); got != 50 {
		t.Fatalf("table holds %d entries, want 50", got)
	}
	// Epoch must be strictly positive and at least the number of distinct
	// material changes.
	if s.Epoch() < 50 {
		t.Fatalf("epoch %d after >=50 material changes", s.Epoch())
	}
}

func TestDigestOrderIndependent(t *testing.T) {
	a := Server{NumShards: 4}
	b := Server{NumShards: 16} // different shard count, same logical table
	names := []string{"r1", "r2", "r3", "r4", "r5"}
	clock := func() time.Time { return time.Unix(5000, 0) }
	a.Clock, b.Clock = clock, clock
	for _, n := range names {
		a.RegisterHealth(n, n+":1", time.Minute, 0.5)
	}
	for i := len(names) - 1; i >= 0; i-- { // reverse insertion order
		b.RegisterHealth(names[i], names[i]+":1", time.Minute, 0.5)
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("digest depends on shard layout or order: %d vs %d", a.Digest(), b.Digest())
	}
	b.RegisterHealth("r1", "r1:1", time.Minute, 0.9) // diverge
	if a.Digest() == b.Digest() {
		t.Fatal("digest blind to a health change")
	}
}

func TestSweepDownThenTombstone(t *testing.T) {
	now := time.Unix(1000, 0)
	s := Server{Clock: func() time.Time { return now }}
	s.Register("a", "x:1", 10*time.Second)
	e0 := s.ListAll()[0]

	now = now.Add(11 * time.Second) // past TTL: down, still visible
	all := s.ListAll()
	if len(all) != 1 || !all[0].Down {
		t.Fatalf("expected down-marked entry, got %+v", all)
	}
	if all[0].ChangeEpoch <= e0.ChangeEpoch {
		t.Fatal("down transition did not bump ChangeEpoch")
	}
	if live := s.List(); len(live) != 0 {
		t.Fatalf("down entry leaked into live list: %+v", live)
	}

	now = now.Add(downGraceFactor * 10 * time.Second) // past grace: gone
	if all := s.ListAll(); len(all) != 0 {
		t.Fatalf("entry survived grace: %+v", all)
	}
	st := s.Stats()
	if st.Tombstones != 1 {
		t.Fatalf("tombstones = %d, want 1", st.Tombstones)
	}

	now = now.Add(tombstoneKeep + time.Second) // tombstone pruned
	st = s.Stats()
	if st.Tombstones != 0 {
		t.Fatalf("tombstone not pruned: %+v", st)
	}
	if st.DeltaFloor == 0 {
		t.Fatal("pruning did not raise the delta floor")
	}
}
