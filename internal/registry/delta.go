package registry

import (
	"context"
	"runtime"
	"sync"
)

// Epoch-versioned delta sync. Every mutation claims the next value of a
// registry-wide epoch counter and stamps the touched entry; LISTD
// replays only the entries whose ChangeEpoch passed the client's
// last-synced epoch, plus tombstones for deletes, so a steady-state
// client re-pulls a handful of lines (often zero — pure heartbeat
// refreshes don't move ChangeEpoch) instead of the full 100k-entry
// list. Clients hold the mirror in a RankedSet and rank locally.

// DeltaEntry is one change in a delta: an upserted entry, or a delete
// (Deleted set, only Name meaningful).
type DeltaEntry struct {
	Entry
	Deleted bool
}

// Delta is one LISTD response: the changes since Since, and the epoch
// the client should present next time. When Full is set the server
// could not serve an incremental answer (first sync, restarted server,
// or Since older than the tombstone horizon) and Entries carries the
// complete table snapshot instead (live and down, no deletes).
type Delta struct {
	Since   uint64
	Epoch   uint64
	Full    bool
	Entries []DeltaEntry
}

// ListDelta returns the changes since the given epoch. k bounds a full
// snapshot the same way LISTH's k does (healthiest-k, then down
// entries); incremental responses are always complete and ignore k,
// since a truncated delta would silently corrupt the client's mirror.
func (s *Server) ListDelta(since uint64, k int) Delta {
	s.init()
	// Snapshot the epoch before visiting shards: a mutation stamps its
	// epoch while holding the owning shard's lock, so any change at or
	// below this snapshot is either already published or will be
	// published before our per-shard lock acquisition returns.
	cur := s.epoch.Load()
	if since == 0 || since > cur || since < s.deltaFloor.Load() {
		d := Delta{Since: since, Epoch: cur, Full: true}
		for _, e := range s.rankedAll(k) {
			d.Entries = append(d.Entries, DeltaEntry{Entry: e})
		}
		return d
	}
	d := Delta{Since: since, Epoch: cur}
	now := s.now()
	for _, sh := range s.shards {
		sh.mu.Lock()
		s.sweepShard(sh, now)
		for _, e := range sh.entries {
			if e.ChangeEpoch > since {
				d.Entries = append(d.Entries, DeltaEntry{Entry: e})
			}
		}
		for name, t := range sh.tombs {
			if t.Epoch > since {
				d.Entries = append(d.Entries, DeltaEntry{Entry: Entry{Name: name}, Deleted: true})
			}
		}
		sh.mu.Unlock()
		// Yield between shards (as collect does): an incremental delta
		// sweeps the whole table, and the striped layout's shard
		// boundaries are what let writers slip in mid-scan.
		runtime.Gosched()
	}
	// The sweeps above may themselves have pruned a tombstone the client
	// still needed (raising the floor past since); an incremental answer
	// would then silently drop a delete, so fall back to a full snapshot.
	if since < s.deltaFloor.Load() {
		d = Delta{Since: since, Epoch: cur, Full: true}
		for _, e := range s.rankedAll(k) {
			d.Entries = append(d.Entries, DeltaEntry{Entry: e})
		}
		return d
	}
	// Sweeping may also have stamped epochs past the snapshot (down-marks,
	// tombstones). Those entries are included above (their epoch > since)
	// but the client must not advance past changes other shards stamped
	// concurrently, so the returned epoch stays the pre-scan snapshot;
	// anything newer arrives with the next poll.
	return d
}

// RankedSet is the client-side cached view of a registry: a full pull
// once, then LISTD deltas keyed by the last-synced epoch. Long-running
// clients (relayd picking upstreams, fetch loops, the load harness)
// call Refresh on their poll interval — when nothing material changed
// the response is a single EPOCH line — and read Top for the ranked
// candidate set the paper's top-K probing wants.
type RankedSet struct {
	mu      sync.Mutex
	entries map[string]Entry
	epoch   uint64

	refreshes int64
	fulls     int64
	changes   int64
}

// NewRankedSet returns an empty set; the first Refresh performs a full
// sync.
func NewRankedSet() *RankedSet {
	return &RankedSet{entries: make(map[string]Entry)}
}

// Refresh pulls the changes since the last call through c and applies
// them to the mirror. It is safe for concurrent use with Top.
func (r *RankedSet) Refresh(ctx context.Context, c *Client) error {
	r.mu.Lock()
	since := r.epoch
	r.mu.Unlock()
	d, err := c.ListDelta(ctx, since, 0)
	if err != nil {
		return err
	}
	r.Apply(d)
	return nil
}

// Apply folds one delta into the mirror (exported for tests and for
// callers that transport deltas themselves).
func (r *RankedSet) Apply(d Delta) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.entries == nil {
		r.entries = make(map[string]Entry)
	}
	if d.Full {
		clear(r.entries)
		r.fulls++
	}
	for _, de := range d.Entries {
		if de.Deleted {
			delete(r.entries, de.Name)
		} else {
			r.entries[de.Name] = de.Entry
		}
	}
	r.changes += int64(len(d.Entries))
	r.refreshes++
	r.epoch = d.Epoch
}

// Epoch returns the epoch the mirror is synced to.
func (r *RankedSet) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// Top returns up to k live entries ranked healthiest-first from the
// mirror (k <= 0 means all), mirroring Server.ListRanked.
func (r *RankedSet) Top(k int) []Entry {
	r.mu.Lock()
	out := make([]Entry, 0, len(r.entries))
	for _, e := range r.entries {
		if !e.Down {
			out = append(out, e)
		}
	}
	r.mu.Unlock()
	sortRanked(out)
	return truncate(out, k)
}

// All returns every mirrored entry (live and down), ranked.
func (r *RankedSet) All() []Entry {
	r.mu.Lock()
	out := make([]Entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.Unlock()
	sortRanked(out)
	return out
}

// RankedSetStats reports the mirror's sync economics: how many
// refreshes ran, how many fell back to a full snapshot, and how many
// change lines arrived in total.
type RankedSetStats struct {
	Refreshes int64  `json:"refreshes"`
	Fulls     int64  `json:"fulls"`
	Changes   int64  `json:"changes"`
	Epoch     uint64 `json:"epoch"`
	Entries   int    `json:"entries"`
}

// Stats snapshots the mirror's counters.
func (r *RankedSet) Stats() RankedSetStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RankedSetStats{
		Refreshes: r.refreshes, Fulls: r.fulls, Changes: r.changes,
		Epoch: r.epoch, Entries: len(r.entries),
	}
}
