package registry

import (
	"context"
	"time"
)

// Legacy package-level helpers. Each dials fresh per call with the
// default timeout and no retry — exactly the pre-Client behavior —
// by delegating to a throwaway Client. New code should construct a
// Client (pooling, retries, fallback peers, context cancellation) and
// will get deprecation warnings from staticcheck until it does.

// Register registers name at the registry at addr.
//
// Deprecated: use NewClient(addr).Register with a context.
func Register(addr, name, relayAddr string, ttl time.Duration) error {
	return NewClient(addr).Register(context.Background(), name, relayAddr, ttl)
}

// RegisterHealth registers name carrying a health score.
//
// Deprecated: use NewClient(addr).RegisterHealth with a context.
func RegisterHealth(addr, name, relayAddr string, ttl time.Duration, health float64) error {
	return NewClient(addr).RegisterHealth(context.Background(), name, relayAddr, ttl, health)
}

// List fetches the live relay set from the registry at addr.
//
// Deprecated: use NewClient(addr).List with a context.
func List(addr string) ([]Entry, error) {
	return NewClient(addr).List(context.Background())
}

// ListRanked fetches up to k relays ranked healthiest-first.
//
// Deprecated: use NewClient(addr).ListRanked with a context.
func ListRanked(addr string, k int) ([]Entry, error) {
	return NewClient(addr).ListRanked(context.Background(), k)
}

// Heartbeat registers name immediately (returning that first error so
// callers fail fast) and then re-registers every ttl/3 in a background
// goroutine until stop closes. Tick errors are retried next tick.
//
// Deprecated: use NewClient(addr).StartHeartbeat with a context.
func Heartbeat(regAddr, name, relayAddr string, ttl time.Duration, stop <-chan struct{}) error {
	_, err := StartHeartbeat(regAddr, name, relayAddr, ttl, nil, stop)
	return err
}

// StartHeartbeat registers name immediately and keeps it registered in
// a background goroutine until stop closes.
//
// Deprecated: use NewClient(addr).StartHeartbeat with a context.
func StartHeartbeat(regAddr, name, relayAddr string, ttl time.Duration, health func() float64, stop <-chan struct{}) (*HeartbeatState, error) {
	ctx := context.Background()
	if stop != nil {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		go func() {
			defer cancel()
			<-stop
		}()
	}
	return NewClient(regAddr).StartHeartbeat(ctx, name, relayAddr, ttl, health)
}
