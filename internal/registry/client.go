package registry

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Client is the options-first registry client, following the
// repro.Client / relay.New conventions: construct once with NewClient,
// then issue context-aware calls. Every method takes a context whose
// deadline (together with WithTimeout) bounds the call; transport
// failures walk the fallback peers and retry with backoff before
// surfacing as ErrUnavailable, while server rejections surface
// immediately as ErrRejected. A Client is safe for concurrent use.
//
//	c := registry.NewClient("10.0.0.5:8070",
//	    registry.WithTimeout(3*time.Second),
//	    registry.WithRetry(2, 100*time.Millisecond),
//	    registry.WithPooledConn(),
//	    registry.WithFallbackPeers("10.0.0.6:8070"))
//	defer c.Close()
//	relays, err := c.ListRanked(ctx, 10)
type Client struct {
	addr      string
	fallbacks []string
	timeout   time.Duration
	retries   int
	backoff   time.Duration
	pooled    bool

	mu       sync.Mutex
	conn     net.Conn
	br       *bufio.Reader
	connAddr string
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// NewClient returns a registry client for addr. Without options it
// dials fresh per call with a DefaultTimeout deadline and no retry —
// the legacy free functions' behavior, minus their hard-coding.
func NewClient(addr string, opts ...ClientOption) *Client {
	c := &Client{addr: addr, timeout: DefaultTimeout, backoff: 100 * time.Millisecond}
	for _, o := range opts {
		o(c)
	}
	return c
}

// WithTimeout bounds each request: the connection deadline is the
// sooner of now+d and the context's own deadline. Zero or negative
// keeps DefaultTimeout.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.timeout = d
		}
	}
}

// WithRetry retries a transport-failed request up to n more times,
// sleeping backoff, 2*backoff, ... between rounds. Each round tries the
// primary address and every fallback peer once. Server rejections
// (ErrRejected) are never retried — the registry answered.
func WithRetry(n int, backoff time.Duration) ClientOption {
	return func(c *Client) {
		c.retries = n
		if backoff > 0 {
			c.backoff = backoff
		}
	}
}

// WithPooledConn keeps one connection open across calls instead of
// dialing per request (the server holds sessions open; its per-command
// deadline resets on every line). A stale pooled connection — the
// server restarted, an idle timeout fired — is redialed transparently
// without consuming a retry. Heartbeating relays and delta-polling
// clients want this: steady state is one round trip with no dial.
func WithPooledConn() ClientOption {
	return func(c *Client) { c.pooled = true }
}

// WithFallbackPeers adds peer registry addresses tried in order when
// the primary is unreachable. With peered registryds (anti-entropy
// keeps them converged) this makes discovery and heartbeats survive a
// registry loss.
func WithFallbackPeers(addrs ...string) ClientOption {
	return func(c *Client) { c.fallbacks = append(c.fallbacks, addrs...) }
}

// Close releases the pooled connection, if any.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropConnLocked()
}

func (c *Client) dropConnLocked() error {
	var err error
	if c.conn != nil {
		err = c.conn.Close()
		c.conn, c.br, c.connAddr = nil, nil, ""
	}
	return err
}

// deadline computes the per-request connection deadline.
func (c *Client) deadline(ctx context.Context) time.Time {
	dl := time.Now().Add(c.timeout)
	if cd, ok := ctx.Deadline(); ok && cd.Before(dl) {
		dl = cd
	}
	return dl
}

// do runs one round-trip against the first reachable endpoint,
// retrying with backoff. roundTrip writes the request and parses the
// response; an error it wraps in ErrRejected or ErrBadEntry is a
// server answer and returns immediately.
func (c *Client) do(ctx context.Context, roundTrip func(bw *bufio.Writer, br *bufio.Reader) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	addrs := append([]string{c.addr}, c.fallbacks...)
	var lastErr error
	for attempt := 0; ; attempt++ {
		for _, addr := range addrs {
			if err := ctx.Err(); err != nil {
				return err
			}
			err := c.tryLocked(ctx, addr, roundTrip)
			if err == nil {
				return nil
			}
			if isProtocolErr(err) {
				return err
			}
			lastErr = err
		}
		if attempt >= c.retries {
			return fmt.Errorf("%w (tried %s): %v", ErrUnavailable, strings.Join(addrs, ", "), lastErr)
		}
		timer := time.NewTimer(c.backoff << attempt)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		}
	}
}

// isProtocolErr reports whether the server answered (no point retrying
// elsewhere).
func isProtocolErr(err error) bool {
	return errors.Is(err, ErrRejected) || errors.Is(err, ErrBadEntry) ||
		errors.Is(err, ErrBadName) || errors.Is(err, ErrBadTTL)
}

// tryLocked runs roundTrip against addr, reusing the pooled connection
// when possible. A reused connection that fails is discarded and the
// round-trip re-runs once on a fresh dial — a stale pooled conn (idle
// timeout, restarted server) must not burn the caller's attempt.
func (c *Client) tryLocked(ctx context.Context, addr string, roundTrip func(bw *bufio.Writer, br *bufio.Reader) error) error {
	reused := false
	if c.pooled && c.conn != nil && c.connAddr == addr {
		reused = true
	} else {
		if err := c.dialLocked(ctx, addr); err != nil {
			return err
		}
	}
	err := c.runLocked(ctx, roundTrip)
	if err == nil || isProtocolErr(err) {
		return err
	}
	c.dropConnLocked()
	if !reused {
		return err
	}
	if derr := c.dialLocked(ctx, addr); derr != nil {
		return derr
	}
	err = c.runLocked(ctx, roundTrip)
	if err != nil && !isProtocolErr(err) {
		c.dropConnLocked()
	}
	return err
}

func (c *Client) dialLocked(ctx context.Context, addr string) error {
	c.dropConnLocked()
	d := net.Dialer{Deadline: c.deadline(ctx)}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	c.conn, c.br, c.connAddr = conn, bufio.NewReader(conn), addr
	return nil
}

func (c *Client) runLocked(ctx context.Context, roundTrip func(bw *bufio.Writer, br *bufio.Reader) error) error {
	c.conn.SetDeadline(c.deadline(ctx))
	bw := bufio.NewWriter(c.conn)
	err := roundTrip(bw, c.br)
	if err == nil && !c.pooled {
		c.dropConnLocked()
	}
	return err
}

// Register inserts or refreshes name at the registry with no health
// report.
func (c *Client) Register(ctx context.Context, name, relayAddr string, ttl time.Duration) error {
	return c.RegisterHealth(ctx, name, relayAddr, ttl, HealthUnreported)
}

// RegisterHealth inserts or refreshes name carrying a self-reported
// health score (HealthUnreported omits it from the wire).
func (c *Client) RegisterHealth(ctx context.Context, name, relayAddr string, ttl time.Duration, health float64) error {
	return c.RegisterFull(ctx, name, relayAddr, "", ttl, health)
}

// RegisterFull is RegisterHealth plus the registrant's observability
// endpoint (its daemon HTTP address; "" omits it from the wire). The
// six-field form always carries an explicit health token — the -1
// sentinel when unreported — because metrics-addr is positional.
func (c *Client) RegisterFull(ctx context.Context, name, relayAddr, metricsAddr string, ttl time.Duration, health float64) error {
	if name == "" || relayAddr == "" || strings.ContainsAny(name+relayAddr+metricsAddr, " \t\r\n") {
		return ErrBadName
	}
	if ttl <= 0 {
		return ErrBadTTL
	}
	return c.do(ctx, func(bw *bufio.Writer, br *bufio.Reader) error {
		switch {
		case metricsAddr != "":
			fmt.Fprintf(bw, "REGISTER %s %s %d %s %s\n", name, relayAddr, int(ttl.Seconds()),
				formatHealth(health), metricsAddr)
		case health == HealthUnreported:
			fmt.Fprintf(bw, "REGISTER %s %s %d\n", name, relayAddr, int(ttl.Seconds()))
		default:
			fmt.Fprintf(bw, "REGISTER %s %s %d %s\n", name, relayAddr, int(ttl.Seconds()), formatHealth(health))
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		line, err := br.ReadString('\n')
		if err != nil {
			return fmt.Errorf("%w: %v", errShortRead, err)
		}
		line = strings.TrimSpace(line)
		if line != "OK" {
			return fmt.Errorf("%w: %s", ErrRejected, line)
		}
		return nil
	})
}

// List fetches the live relay set (name-sorted on the server).
func (c *Client) List(ctx context.Context) ([]Entry, error) {
	return c.list(ctx, "LIST\n", false)
}

// ListRanked fetches up to k entries ranked healthiest-first (k <= 0
// means all). Down-marked entries still inside their grace period are
// included, ranked last and flagged Down — filter them for candidate
// sets, show them for operations.
func (c *Client) ListRanked(ctx context.Context, k int) ([]Entry, error) {
	cmd := "LISTH\n"
	if k > 0 {
		cmd = fmt.Sprintf("LISTH %d\n", k)
	}
	return c.list(ctx, cmd, true)
}

func (c *Client) list(ctx context.Context, cmd string, ranked bool) ([]Entry, error) {
	var out []Entry
	err := c.do(ctx, func(bw *bufio.Writer, br *bufio.Reader) error {
		out = out[:0] // a retried round-trip must not duplicate entries
		if _, err := bw.WriteString(cmd); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				return fmt.Errorf("%w: %v", errShortRead, err)
			}
			line = strings.TrimSpace(line)
			if line == "." {
				return nil
			}
			if rest, ok := strings.CutPrefix(line, "ERR "); ok {
				return fmt.Errorf("%w: %s", ErrRejected, rest)
			}
			e, err := parseListEntry(line, ranked)
			if err != nil {
				return err
			}
			out = append(out, e)
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ListDelta fetches the changes since epoch (0 = first sync, returns a
// full snapshot). k bounds full snapshots only, as in LISTH.
// Steady-state clients should hold a RankedSet and call its Refresh
// instead of re-applying deltas by hand.
func (c *Client) ListDelta(ctx context.Context, since uint64, k int) (Delta, error) {
	cmd := fmt.Sprintf("LISTD %d\n", since)
	if k > 0 {
		cmd = fmt.Sprintf("LISTD %d %d\n", since, k)
	}
	return c.delta(ctx, cmd, parseDeltaLine)
}

// syncPull fetches a peer sync delta (SeenEpoch-keyed, absolute
// LastSeen/TTL) — the PeerSync transport.
func (c *Client) syncPull(ctx context.Context, since uint64) (Delta, error) {
	return c.delta(ctx, fmt.Sprintf("SYNCD %d\n", since), parseSyncLine)
}

func (c *Client) delta(ctx context.Context, cmd string, parseLine func(string) (DeltaEntry, error)) (Delta, error) {
	var d Delta
	err := c.do(ctx, func(bw *bufio.Writer, br *bufio.Reader) error {
		d = Delta{}
		if _, err := bw.WriteString(cmd); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		header, err := br.ReadString('\n')
		if err != nil {
			return fmt.Errorf("%w: %v", errShortRead, err)
		}
		header = strings.TrimSpace(header)
		if rest, ok := strings.CutPrefix(header, "ERR "); ok {
			return fmt.Errorf("%w: %s", ErrRejected, rest)
		}
		d.Epoch, d.Full, err = parseEpochLine(header)
		if err != nil {
			return err
		}
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				return fmt.Errorf("%w: %v", errShortRead, err)
			}
			line = strings.TrimSpace(line)
			if line == "." {
				return nil
			}
			de, err := parseLine(line)
			if err != nil {
				return err
			}
			d.Entries = append(d.Entries, de)
		}
	})
	if err != nil {
		return Delta{}, err
	}
	return d, nil
}

// Epoch fetches the registry's current epoch and table digest — the
// cheap "anything new?" probe peers and monitors use.
func (c *Client) Epoch(ctx context.Context) (epoch, digest uint64, err error) {
	err = c.do(ctx, func(bw *bufio.Writer, br *bufio.Reader) error {
		if _, werr := bw.WriteString("EPOCH\n"); werr != nil {
			return werr
		}
		if werr := bw.Flush(); werr != nil {
			return werr
		}
		line, rerr := br.ReadString('\n')
		if rerr != nil {
			return fmt.Errorf("%w: %v", errShortRead, rerr)
		}
		fields := strings.Fields(line)
		if len(fields) != 3 || fields[0] != "EPOCH" {
			return fmt.Errorf("%w: %q", ErrBadEntry, strings.TrimSpace(line))
		}
		var perr error
		if epoch, perr = strconv.ParseUint(fields[1], 10, 64); perr != nil {
			return fmt.Errorf("%w: %q", ErrBadEntry, strings.TrimSpace(line))
		}
		if digest, perr = strconv.ParseUint(fields[2], 10, 64); perr != nil {
			return fmt.Errorf("%w: %q", ErrBadEntry, strings.TrimSpace(line))
		}
		return nil
	})
	return epoch, digest, err
}

// StartHeartbeat registers name immediately (returning that first
// error, so callers fail fast on misconfiguration) and then keeps it
// registered every ttl/3 until ctx is done. Each tick re-resolves
// through the client — pooled connections redial transparently and
// fallback peers are tried — so one refused connection doesn't burn a
// tick. health is sampled per tick (nil means unreported). The
// returned HeartbeatState tracks whether the registry is still
// accepting refreshes, feeding relayd's readiness check.
func (c *Client) StartHeartbeat(ctx context.Context, name, relayAddr string, ttl time.Duration, health func() float64) (*HeartbeatState, error) {
	return c.StartHeartbeatFull(ctx, name, relayAddr, "", ttl, health)
}

// StartHeartbeatFull is StartHeartbeat with the registrant's
// observability endpoint carried on every refresh ("" omits it).
func (c *Client) StartHeartbeatFull(ctx context.Context, name, relayAddr, metricsAddr string, ttl time.Duration, health func() float64) (*HeartbeatState, error) {
	report := func() error {
		h := float64(HealthUnreported)
		if health != nil {
			h = health()
		}
		return c.RegisterFull(ctx, name, relayAddr, metricsAddr, ttl, h)
	}
	state := &HeartbeatState{}
	err := report()
	state.set(err, time.Now())
	if err != nil {
		return state, err
	}
	go func() {
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				state.set(report(), time.Now()) // retried next tick on error
			}
		}
	}()
	return state, nil
}

// HeartbeatState is the observable status of a background heartbeat,
// feeding the relay daemon's readiness check.
type HeartbeatState struct {
	mu     sync.Mutex
	lastOK time.Time
	err    error
	ok     bool
}

func (h *HeartbeatState) set(err error, now time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.err = err
	h.ok = err == nil
	if err == nil {
		h.lastOK = now
	}
}

// OK reports whether the most recent registration attempt succeeded.
func (h *HeartbeatState) OK() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ok
}

// LastOK returns when the registry last accepted a registration (zero
// if never).
func (h *HeartbeatState) LastOK() time.Time {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastOK
}

// Err returns the most recent registration error, nil after a success.
func (h *HeartbeatState) Err() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.err
}
