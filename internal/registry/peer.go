package registry

import (
	"context"
	"log/slog"
	"sync"
	"time"
)

// Peer anti-entropy: registryd instances configured with -peer pull
// SYNCD deltas from each other on an interval and merge them
// last-writer-wins on LastSeen. A heartbeat reaching either peer
// converges on both within one sync interval, and killing one registryd
// leaves discovery working against the survivor (clients fail over via
// WithFallbackPeers). Pulls are keyed by the remote's epoch (SeenEpoch
// stamps, so pure heartbeat refreshes propagate liveness), with a cheap
// EPOCH probe first so an idle peer costs one line per interval.

// SyncDelta returns the entries refreshed since the given remote-known
// epoch, carrying the absolute LastSeen/TTL a merge needs. Unlike
// ListDelta it filters on SeenEpoch, so pure heartbeat refreshes —
// invisible to LISTD clients — still reach peers.
func (s *Server) SyncDelta(since uint64) Delta {
	s.init()
	cur := s.epoch.Load()
	now := s.now()
	if since == 0 || since > cur || since < s.deltaFloor.Load() {
		d := Delta{Since: since, Epoch: cur, Full: true}
		for _, e := range s.collect(func(Entry) bool { return true }) {
			d.Entries = append(d.Entries, DeltaEntry{Entry: e})
		}
		// A full sync must carry deletes too: a peer may hold entries we
		// tombstoned while it was partitioned from us.
		for _, sh := range s.shards {
			sh.mu.Lock()
			for name, t := range sh.tombs {
				d.Entries = append(d.Entries, DeltaEntry{
					Entry: Entry{Name: name, LastSeen: t.LastSeen}, Deleted: true,
				})
			}
			sh.mu.Unlock()
		}
		return d
	}
	d := Delta{Since: since, Epoch: cur}
	for _, sh := range s.shards {
		sh.mu.Lock()
		s.sweepShard(sh, now)
		for _, e := range sh.entries {
			if e.seenEpoch > since {
				d.Entries = append(d.Entries, DeltaEntry{Entry: e})
			}
		}
		for name, t := range sh.tombs {
			if t.Epoch > since {
				d.Entries = append(d.Entries, DeltaEntry{
					Entry: Entry{Name: name, LastSeen: t.LastSeen}, Deleted: true,
				})
			}
		}
		sh.mu.Unlock()
	}
	if since < s.deltaFloor.Load() {
		return s.SyncDelta(0) // a needed tombstone was pruned mid-scan
	}
	return d
}

// Merge folds a peer's sync delta into the table, last-writer-wins on
// LastSeen (ties keep the local copy — both sides already agree after
// one direction applies). Returns how many records changed the table.
// Merged entries claim fresh local epochs, so the peer's changes flow
// onward to this server's own delta clients and peers.
func (s *Server) Merge(entries []DeltaEntry) int {
	s.init()
	now := s.now()
	applied := 0
	for _, de := range entries {
		sh := s.shardFor(de.Name)
		sh.mu.Lock()
		if de.Deleted {
			if t, ok := sh.tombs[de.Name]; ok && !t.LastSeen.Before(de.LastSeen) {
				sh.mu.Unlock()
				continue
			}
			if e, ok := sh.entries[de.Name]; ok && e.LastSeen.After(de.LastSeen) {
				sh.mu.Unlock()
				continue // heartbeat newer than the delete: the relay re-registered
			}
			delete(sh.entries, de.Name)
			sh.tombs[de.Name] = tombstone{
				Epoch:    s.epoch.Add(1),
				LastSeen: de.LastSeen,
				Keep:     now.Add(tombstoneKeep),
			}
			applied++
			sh.mu.Unlock()
			continue
		}
		if t, ok := sh.tombs[de.Name]; ok && !t.LastSeen.Before(de.LastSeen) {
			sh.mu.Unlock()
			continue // deleted at or after the remote last saw it alive
		}
		old, existed := sh.entries[de.Name]
		if existed && !old.LastSeen.Before(de.LastSeen) {
			sh.mu.Unlock()
			continue
		}
		delete(sh.tombs, de.Name)
		e := Entry{
			Name: de.Name, Addr: de.Addr, Health: de.Health,
			LastSeen: de.LastSeen, TTL: de.TTL,
			Expires:     de.LastSeen.Add(de.TTL),
			MetricsAddr: de.MetricsAddr,
		}
		e.Down = e.Expires.Before(now)
		epoch := s.epoch.Add(1)
		e.seenEpoch = epoch
		if existed && old.Addr == e.Addr && old.Health == e.Health &&
			old.MetricsAddr == e.MetricsAddr && old.Down == e.Down {
			e.ChangeEpoch = old.ChangeEpoch
		} else {
			e.ChangeEpoch = epoch
		}
		sh.entries[de.Name] = e
		applied++
		sh.mu.Unlock()
	}
	return applied
}

// PeerStats is one peer's sync state for /debug/registry.
type PeerStats struct {
	Addr    string    `json:"addr"`
	Cursor  uint64    `json:"cursor"`
	Pulls   int64     `json:"pulls"`
	Applied int64     `json:"applied"`
	Fulls   int64     `json:"fulls"`
	Skips   int64     `json:"skips"`
	Errors  int64     `json:"errors"`
	LastOK  time.Time `json:"last_ok"`
	LastErr string    `json:"last_err,omitempty"`
}

// peerState is the live sync cursor for one peer.
type peerState struct {
	client *Client
	stats  PeerStats
}

// PeerSync periodically pulls sync deltas from each configured peer
// into Server. Construct with NewPeerSync, then Run it under the
// process context.
type PeerSync struct {
	server   *Server
	interval time.Duration
	logger   *slog.Logger

	mu    sync.Mutex
	peers []*peerState
}

// NewPeerSync wires a server to its peers. Interval <= 0 defaults to
// 5 s; timeout bounds each pull (0 = DefaultTimeout); logger may be nil.
func NewPeerSync(s *Server, peers []string, interval, timeout time.Duration, logger *slog.Logger) *PeerSync {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	p := &PeerSync{server: s, interval: interval, logger: logger}
	for _, addr := range peers {
		p.peers = append(p.peers, &peerState{
			client: NewClient(addr, WithTimeout(timeout), WithPooledConn()),
			stats:  PeerStats{Addr: addr},
		})
	}
	return p
}

// Run pulls from every peer each interval until ctx is done. The first
// round runs immediately, so a freshly started replica converges
// without waiting out an interval.
func (p *PeerSync) Run(ctx context.Context) {
	p.SyncOnce(ctx)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			p.mu.Lock()
			for _, ps := range p.peers {
				ps.client.Close()
			}
			p.mu.Unlock()
			return
		case <-t.C:
			p.SyncOnce(ctx)
		}
	}
}

// SyncOnce runs one pull round against every peer (exported so tests
// and operators can force convergence without waiting out the ticker).
func (p *PeerSync) SyncOnce(ctx context.Context) {
	p.mu.Lock()
	peers := append([]*peerState(nil), p.peers...)
	p.mu.Unlock()
	for _, ps := range peers {
		p.syncPeer(ctx, ps)
	}
}

func (p *PeerSync) syncPeer(ctx context.Context, ps *peerState) {
	p.mu.Lock()
	cursor := ps.stats.Cursor
	p.mu.Unlock()

	// Cheap idle probe: one EPOCH line. Unchanged epoch means nothing to
	// pull (the digest is reported for operators; epoch equality alone is
	// sufficient because a registry's epoch moves on every mutation).
	epoch, _, err := ps.client.Epoch(ctx)
	if err == nil && epoch == cursor && cursor != 0 {
		p.record(ps, func(st *PeerStats) { st.Skips++; st.LastOK = time.Now(); st.LastErr = "" })
		return
	}
	if err != nil {
		p.record(ps, func(st *PeerStats) { st.Errors++; st.LastErr = err.Error() })
		if p.logger != nil {
			p.logger.Warn("peer sync probe failed", "peer", ps.stats.Addr, "err", err)
		}
		return
	}

	d, err := ps.client.syncPull(ctx, cursor)
	if err != nil {
		p.record(ps, func(st *PeerStats) { st.Errors++; st.LastErr = err.Error() })
		if p.logger != nil {
			p.logger.Warn("peer sync pull failed", "peer", ps.stats.Addr, "err", err)
		}
		return
	}
	applied := p.server.Merge(d.Entries)
	p.record(ps, func(st *PeerStats) {
		st.Pulls++
		st.Applied += int64(applied)
		if d.Full {
			st.Fulls++
		}
		st.Cursor = d.Epoch
		st.LastOK = time.Now()
		st.LastErr = ""
	})
	if p.logger != nil && applied > 0 {
		p.logger.Debug("peer sync applied", "peer", ps.stats.Addr,
			"changes", len(d.Entries), "applied", applied, "cursor", d.Epoch, "full", d.Full)
	}
}

func (p *PeerSync) record(ps *peerState, f func(*PeerStats)) {
	p.mu.Lock()
	f(&ps.stats)
	p.mu.Unlock()
}

// Stats snapshots every peer's sync counters.
func (p *PeerSync) Stats() []PeerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PeerStats, 0, len(p.peers))
	for _, ps := range p.peers {
		out = append(out, ps.stats)
	}
	return out
}
