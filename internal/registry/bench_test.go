package registry

import (
	"fmt"
	"testing"
	"time"
)

// Microbenchmarks behind `make bench-json` (filter: Registry). The
// shard benchmarks quantify the tentpole directly: parallel REGISTER
// throughput on one stripe vs the default 32.

func benchRegisterParallel(b *testing.B, shards int) {
	s := Server{NumShards: shards}
	// Preload so scans and registers contend on a realistic table.
	for i := 0; i < 10000; i++ {
		s.RegisterHealth(fmt.Sprintf("relay-%05d", i), "10.0.0.1:1", time.Minute, 0.5)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			s.RegisterHealth(fmt.Sprintf("relay-%05d", i%10000), "10.0.0.1:1", time.Minute, 0.5)
			i++
		}
	})
}

func BenchmarkRegistryRegisterSingleShard(b *testing.B) { benchRegisterParallel(b, 1) }
func BenchmarkRegistryRegisterSharded(b *testing.B)     { benchRegisterParallel(b, DefaultShards) }

// Registers racing a continuous full-table scanner: the case where the
// single mutex design collapses (every LISTH holds the one lock for the
// whole scan).
func benchRegisterUnderScan(b *testing.B, shards int) {
	s := Server{NumShards: shards}
	for i := 0; i < 10000; i++ {
		s.RegisterHealth(fmt.Sprintf("relay-%05d", i), "10.0.0.1:1", time.Minute, 0.5)
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				s.ListRanked(0)
			}
		}
	}()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			s.RegisterHealth(fmt.Sprintf("relay-%05d", i%10000), "10.0.0.1:1", time.Minute, 0.5)
			i++
		}
	})
}

func BenchmarkRegistryRegisterUnderScanSingleShard(b *testing.B) { benchRegisterUnderScan(b, 1) }
func BenchmarkRegistryRegisterUnderScanSharded(b *testing.B) {
	benchRegisterUnderScan(b, DefaultShards)
}

// Steady-state delta poll against a 100k table where nothing material
// changed — the response is a single EPOCH line; compare with the full
// ranked scan it replaces.
func BenchmarkRegistryListDeltaSteadyState(b *testing.B) {
	var s Server
	for i := 0; i < 100000; i++ {
		s.RegisterHealth(fmt.Sprintf("relay-%06d", i), "10.0.0.1:1", time.Minute, 0.5)
	}
	since := s.Epoch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := s.ListDelta(since, 0)
		if len(d.Entries) != 0 {
			b.Fatalf("unexpected delta: %d entries", len(d.Entries))
		}
	}
}

func BenchmarkRegistryListRankedFull100k(b *testing.B) {
	var s Server
	for i := 0; i < 100000; i++ {
		s.RegisterHealth(fmt.Sprintf("relay-%06d", i), "10.0.0.1:1", time.Minute, 0.5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.rankedAll(0); len(got) != 100000 {
			b.Fatalf("scan returned %d", len(got))
		}
	}
}

func BenchmarkRegistryShardFor(b *testing.B) {
	s := Server{}
	s.init()
	names := make([]string, 1024)
	for i := range names {
		names[i] = fmt.Sprintf("relay-%06d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.shardFor(names[i%len(names)])
	}
}
