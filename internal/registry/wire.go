package registry

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"
)

// The wire layer: a line-based protocol over TCP. Sessions carry any
// number of commands (a pooled client holds one connection open and the
// per-command deadline resets on every line), and every request and
// response line goes through the typed parsers below — the same
// functions the fuzz tests hammer — so the server and client cannot
// drift apart on grammar.

// reqKind enumerates the wire commands.
type reqKind int

const (
	reqRegister reqKind = iota
	reqList
	reqListH
	reqListD
	reqEpoch
	reqSyncD
)

// request is one parsed command line.
type request struct {
	Kind        reqKind
	Name        string        // REGISTER
	Addr        string        // REGISTER
	TTL         time.Duration // REGISTER
	Health      float64       // REGISTER (HealthUnreported when omitted)
	MetricsAddr string        // REGISTER ("" when omitted)
	K           int           // LISTH/LISTD (0 = all)
	Since       uint64        // LISTD/SYNCD
}

// parseRequest decodes one command line (without trailing newline).
// The error text is what the server sends back after "ERR ".
func parseRequest(line string) (request, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return request{}, errors.New("empty command")
	}
	switch fields[0] {
	case "REGISTER":
		if len(fields) < 4 || len(fields) > 6 {
			return request{}, errors.New("usage: REGISTER name addr ttl [health [maddr]]")
		}
		ttlSec, err := strconv.Atoi(fields[3])
		if err != nil || ttlSec <= 0 {
			return request{}, errors.New("bad ttl")
		}
		r := request{
			Kind: reqRegister, Name: fields[1], Addr: fields[2],
			TTL: time.Duration(ttlSec) * time.Second, Health: HealthUnreported,
		}
		if len(fields) >= 5 {
			h, err := strconv.ParseFloat(fields[4], 64)
			// The six-field form admits the -1 sentinel so a relay can
			// advertise a metrics address without a health score; the
			// five-field form keeps the original strict range.
			if err != nil || h > 1 || (h < 0 && !(len(fields) == 6 && h == HealthUnreported)) {
				return request{}, errors.New("bad health")
			}
			r.Health = h
		}
		if len(fields) == 6 {
			r.MetricsAddr = fields[5]
		}
		return r, nil
	case "LIST":
		if len(fields) != 1 {
			return request{}, errors.New("usage: LIST")
		}
		return request{Kind: reqList}, nil
	case "LISTH":
		if len(fields) > 2 {
			return request{}, errors.New("usage: LISTH [k]")
		}
		r := request{Kind: reqListH}
		if len(fields) == 2 {
			k, err := strconv.Atoi(fields[1])
			if err != nil || k < 0 {
				return request{}, errors.New("bad k")
			}
			r.K = k
		}
		return r, nil
	case "LISTD":
		if len(fields) != 2 && len(fields) != 3 {
			return request{}, errors.New("usage: LISTD epoch [k]")
		}
		since, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return request{}, errors.New("bad epoch")
		}
		r := request{Kind: reqListD, Since: since}
		if len(fields) == 3 {
			k, err := strconv.Atoi(fields[2])
			if err != nil || k < 0 {
				return request{}, errors.New("bad k")
			}
			r.K = k
		}
		return r, nil
	case "EPOCH":
		if len(fields) != 1 {
			return request{}, errors.New("usage: EPOCH")
		}
		return request{Kind: reqEpoch}, nil
	case "SYNCD":
		if len(fields) != 2 {
			return request{}, errors.New("usage: SYNCD epoch")
		}
		since, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return request{}, errors.New("bad epoch")
		}
		return request{Kind: reqSyncD, Since: since}, nil
	default:
		return request{}, fmt.Errorf("unknown command %q", fields[0])
	}
}

// Serve accepts registry sessions until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.handle(conn)
	}
}

// ServeAddr starts the registry on addr and returns its listener.
func (s *Server) ServeAddr(addr string) (net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go s.Serve(l)
	return l, nil
}

func (s *Server) timeout() time.Duration {
	if s.Timeout > 0 {
		return s.Timeout
	}
	return DefaultTimeout
}

// handle runs one session: commands until EOF, error, or an idle
// period longer than the per-command timeout. Legacy one-shot clients
// close after the first response; pooled clients keep going.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		conn.SetDeadline(time.Now().Add(s.timeout()))
		line, err := br.ReadString('\n')
		if err != nil {
			return
		}
		start := time.Now()
		req, perr := parseRequest(strings.TrimSuffix(line, "\n"))
		if perr != nil {
			fmt.Fprintf(bw, "ERR %v\n", perr)
			if bw.Flush() != nil {
				return
			}
			s.lat.Observe(time.Since(start))
			continue
		}
		switch req.Kind {
		case reqRegister:
			if err := s.RegisterFull(req.Name, req.Addr, req.TTL, req.Health, req.MetricsAddr); err != nil {
				fmt.Fprintf(bw, "ERR %v\n", err)
			} else {
				s.Registrations.Add(1)
				fmt.Fprintf(bw, "OK\n")
			}
		case reqList:
			s.Lists.Add(1)
			for _, e := range s.List() {
				fmt.Fprintf(bw, "%s %s\n", e.Name, e.Addr)
			}
			fmt.Fprintf(bw, ".\n")
		case reqListH:
			s.Lists.Add(1)
			for _, e := range s.rankedAll(req.K) {
				fmt.Fprintf(bw, "%s %s %s %s%s\n", e.Name, e.Addr, formatHealth(e.Health),
					stateWord(e.Down), maddrSuffix(e.MetricsAddr))
			}
			fmt.Fprintf(bw, ".\n")
		case reqListD:
			s.DeltaLists.Add(1)
			d := s.ListDelta(req.Since, req.K)
			if d.Full {
				s.FullDeltas.Add(1)
			}
			writeEpochLine(bw, d)
			for _, de := range d.Entries {
				if de.Deleted {
					fmt.Fprintf(bw, "- %s\n", de.Name)
				} else {
					fmt.Fprintf(bw, "+ %s %s %s %s%s\n", de.Name, de.Addr, formatHealth(de.Health),
						stateWord(de.Down), maddrSuffix(de.MetricsAddr))
				}
			}
			fmt.Fprintf(bw, ".\n")
		case reqEpoch:
			fmt.Fprintf(bw, "EPOCH %d %d\n", s.Epoch(), s.Digest())
		case reqSyncD:
			s.Syncs.Add(1)
			d := s.SyncDelta(req.Since)
			if d.Full {
				s.FullDeltas.Add(1)
			}
			writeEpochLine(bw, d)
			for _, de := range d.Entries {
				if de.Deleted {
					fmt.Fprintf(bw, "- %s %d\n", de.Name, de.LastSeen.UnixNano())
				} else {
					fmt.Fprintf(bw, "+ %s %s %s %d %d%s\n", de.Name, de.Addr, formatHealth(de.Health),
						de.LastSeen.UnixNano(), int64(de.TTL), maddrSuffix(de.MetricsAddr))
				}
			}
			fmt.Fprintf(bw, ".\n")
		}
		if bw.Flush() != nil {
			return
		}
		s.lat.Observe(time.Since(start))
	}
}

func writeEpochLine(bw *bufio.Writer, d Delta) {
	if d.Full {
		fmt.Fprintf(bw, "EPOCH %d full\n", d.Epoch)
	} else {
		fmt.Fprintf(bw, "EPOCH %d\n", d.Epoch)
	}
}

// --- Response-line parsers (client side) ---

// parseListEntry decodes one LIST ("name addr") or LISTH
// ("name addr health state [maddr]") body line.
func parseListEntry(line string, ranked bool) (Entry, error) {
	fields := strings.Fields(line)
	e := Entry{Health: HealthUnreported}
	switch {
	case !ranked && len(fields) == 2:
		e.Name, e.Addr = fields[0], fields[1]
	case ranked && (len(fields) == 4 || len(fields) == 5):
		e.Name, e.Addr = fields[0], fields[1]
		h, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return Entry{}, fmt.Errorf("%w: %q", ErrBadEntry, line)
		}
		e.Health = h
		down, err := parseState(fields[3])
		if err != nil {
			return Entry{}, fmt.Errorf("%w: %q", ErrBadEntry, line)
		}
		e.Down = down
		if len(fields) == 5 {
			e.MetricsAddr = fields[4]
		}
	default:
		return Entry{}, fmt.Errorf("%w: %q", ErrBadEntry, line)
	}
	return e, nil
}

func parseState(word string) (down bool, err error) {
	switch word {
	case "up":
		return false, nil
	case "down":
		return true, nil
	default:
		return false, fmt.Errorf("bad state %q", word)
	}
}

// parseEpochLine decodes the "EPOCH <epoch> [full]" header of a
// LISTD/SYNCD response.
func parseEpochLine(line string) (epoch uint64, full bool, err error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || len(fields) > 3 || fields[0] != "EPOCH" {
		return 0, false, fmt.Errorf("%w: %q", ErrBadEntry, line)
	}
	epoch, perr := strconv.ParseUint(fields[1], 10, 64)
	if perr != nil {
		return 0, false, fmt.Errorf("%w: %q", ErrBadEntry, line)
	}
	if len(fields) == 3 {
		if fields[2] != "full" {
			return 0, false, fmt.Errorf("%w: %q", ErrBadEntry, line)
		}
		full = true
	}
	return epoch, full, nil
}

// parseDeltaLine decodes one LISTD body line:
// "+ name addr health state [maddr]" or "- name".
func parseDeltaLine(line string) (DeltaEntry, error) {
	fields := strings.Fields(line)
	switch {
	case len(fields) == 2 && fields[0] == "-":
		return DeltaEntry{Entry: Entry{Name: fields[1]}, Deleted: true}, nil
	case (len(fields) == 5 || len(fields) == 6) && fields[0] == "+":
		e, err := parseListEntry(strings.Join(fields[1:], " "), true)
		if err != nil {
			return DeltaEntry{}, err
		}
		return DeltaEntry{Entry: e}, nil
	default:
		return DeltaEntry{}, fmt.Errorf("%w: %q", ErrBadEntry, line)
	}
}

// parseSyncLine decodes one SYNCD body line:
// "+ name addr health lastseen-ns ttl-ns [maddr]" or
// "- name lastseen-ns".
func parseSyncLine(line string) (DeltaEntry, error) {
	fields := strings.Fields(line)
	switch {
	case len(fields) == 3 && fields[0] == "-":
		ns, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return DeltaEntry{}, fmt.Errorf("%w: %q", ErrBadEntry, line)
		}
		return DeltaEntry{
			Entry:   Entry{Name: fields[1], LastSeen: time.Unix(0, ns)},
			Deleted: true,
		}, nil
	case (len(fields) == 6 || len(fields) == 7) && fields[0] == "+":
		h, err := strconv.ParseFloat(fields[3], 64)
		if err != nil || (h != HealthUnreported && (h < 0 || h > 1)) {
			return DeltaEntry{}, fmt.Errorf("%w: %q", ErrBadEntry, line)
		}
		ns, err := strconv.ParseInt(fields[4], 10, 64)
		if err != nil {
			return DeltaEntry{}, fmt.Errorf("%w: %q", ErrBadEntry, line)
		}
		ttl, err := strconv.ParseInt(fields[5], 10, 64)
		if err != nil || ttl <= 0 {
			return DeltaEntry{}, fmt.Errorf("%w: %q", ErrBadEntry, line)
		}
		if strings.ContainsAny(fields[1]+fields[2], " \t\r\n") || fields[1] == "" || fields[2] == "" {
			return DeltaEntry{}, fmt.Errorf("%w: %q", ErrBadEntry, line)
		}
		e := Entry{
			Name: fields[1], Addr: fields[2], Health: h,
			LastSeen: time.Unix(0, ns), TTL: time.Duration(ttl),
		}
		if len(fields) == 7 {
			e.MetricsAddr = fields[6]
		}
		return DeltaEntry{Entry: e}, nil
	default:
		return DeltaEntry{}, fmt.Errorf("%w: %q", ErrBadEntry, line)
	}
}

// maddrSuffix renders the optional trailing metrics-addr token of a
// response line: " <maddr>" when reported, "" otherwise — absent, not
// a placeholder, so pre-extension clients' field counts still match.
func maddrSuffix(maddr string) string {
	if maddr == "" {
		return ""
	}
	return " " + maddr
}
