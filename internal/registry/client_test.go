package registry

import (
	"context"
	"errors"
	"testing"
	"time"
)

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	s := &Server{}
	l, err := s.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return s, l.Addr().String()
}

func TestClientRegisterListRanked(t *testing.T) {
	_, addr := startServer(t)
	c := NewClient(addr, WithTimeout(5*time.Second))
	defer c.Close()
	ctx := context.Background()

	if err := c.RegisterHealth(ctx, "good", "10.0.0.1:1", time.Minute, 0.9); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterHealth(ctx, "bad", "10.0.0.2:1", time.Minute, 0.2); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(ctx, "mute", "10.0.0.3:1", time.Minute); err != nil {
		t.Fatal(err)
	}

	got, err := c.ListRanked(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Name != "good" || got[1].Name != "bad" || got[2].Name != "mute" {
		t.Fatalf("ranked = %+v", got)
	}
	if got[2].Health != HealthUnreported {
		t.Fatalf("unreported health came back as %v", got[2].Health)
	}
	if got[0].Down {
		t.Fatal("live entry parsed as down")
	}

	live, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 3 || live[0].Name != "bad" {
		t.Fatalf("list = %+v", live)
	}
}

// LISTH must tell the truth about down entries: served during grace
// with state "down", ranked last, parsed into Entry.Down.
func TestClientSeesDownState(t *testing.T) {
	now := time.Unix(1000, 0)
	s := &Server{Clock: func() time.Time { return now }}
	l, err := s.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c := NewClient(l.Addr().String())
	defer c.Close()
	ctx := context.Background()

	c.RegisterHealth(ctx, "dying", "x:1", 10*time.Second, 0.9)
	c.RegisterHealth(ctx, "alive", "y:1", 10*time.Minute, 0.1)
	now = now.Add(30 * time.Second) // "dying" lapses, inside grace

	got, err := c.ListRanked(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("ranked = %+v", got)
	}
	if got[0].Name != "alive" || got[0].Down {
		t.Fatalf("live entry first, up: %+v", got[0])
	}
	if got[1].Name != "dying" || !got[1].Down {
		t.Fatalf("down entry must be served last with Down set: %+v", got[1])
	}
}

func TestClientPooledConnSurvivesStaleConn(t *testing.T) {
	// A short server-side idle timeout closes the session between calls;
	// the pooled client must notice the stale conn and redial
	// transparently without burning a retry or surfacing an error.
	s := &Server{Timeout: 200 * time.Millisecond}
	l, err := s.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c := NewClient(l.Addr().String(), WithPooledConn())
	defer c.Close()
	ctx := context.Background()

	if err := c.Register(ctx, "a", "x:1", time.Minute); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond) // server idles the session out

	if err := c.Register(ctx, "b", "y:1", time.Minute); err != nil {
		t.Fatalf("pooled client did not recover from stale conn: %v", err)
	}
	if got := s.List(); len(got) != 2 {
		t.Fatalf("post-redial list = %+v", got)
	}
}

func TestClientFallbackPeers(t *testing.T) {
	s, addr := startServer(t)
	// Primary is a dead port; fallback is live.
	c := NewClient("127.0.0.1:1", WithFallbackPeers(addr), WithTimeout(2*time.Second))
	defer c.Close()
	if err := c.Register(context.Background(), "via-fallback", "x:1", time.Minute); err != nil {
		t.Fatalf("fallback not used: %v", err)
	}
	if got := s.List(); len(got) != 1 || got[0].Name != "via-fallback" {
		t.Fatalf("list = %+v", got)
	}
}

func TestClientUnavailable(t *testing.T) {
	c := NewClient("127.0.0.1:1", WithTimeout(500*time.Millisecond))
	defer c.Close()
	_, err := c.List(context.Background())
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want ErrUnavailable, got %v", err)
	}
}

func TestClientRejectionIsNotRetried(t *testing.T) {
	_, addr := startServer(t)
	c := NewClient(addr, WithRetry(3, 10*time.Millisecond))
	defer c.Close()
	start := time.Now()
	err := c.RegisterHealth(context.Background(), "bad name", "x:1", time.Minute, 0.5)
	if !errors.Is(err, ErrBadName) {
		t.Fatalf("want ErrBadName, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("client-side validation took the retry path")
	}
}

func TestClientContextCancellation(t *testing.T) {
	c := NewClient("127.0.0.1:1", WithRetry(10, time.Second))
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.List(ctx)
	if err == nil {
		t.Fatal("expected error")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatalf("cancellation did not cut the retry loop short (%v)", time.Since(start))
	}
}

func TestClientDeltaAndEpoch(t *testing.T) {
	s, addr := startServer(t)
	c := NewClient(addr, WithPooledConn())
	defer c.Close()
	ctx := context.Background()

	c.RegisterHealth(ctx, "a", "x:1", time.Minute, 0.7)
	d, err := c.ListDelta(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Full || len(d.Entries) != 1 || d.Entries[0].Name != "a" {
		t.Fatalf("first delta = %+v", d)
	}

	// Steady state: pure heartbeat, delta is empty.
	c.RegisterHealth(ctx, "a", "x:1", time.Minute, 0.7)
	d2, err := c.ListDelta(ctx, d.Epoch, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Full || len(d2.Entries) != 0 {
		t.Fatalf("steady-state delta = %+v", d2)
	}

	epoch, digest, err := c.Epoch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != s.Epoch() || digest != s.Digest() {
		t.Fatalf("EPOCH reported %d/%d, server has %d/%d", epoch, digest, s.Epoch(), s.Digest())
	}
}

func TestClientStartHeartbeat(t *testing.T) {
	s, addr := startServer(t)
	c := NewClient(addr, WithPooledConn())
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Wire TTLs are whole seconds (1500ms truncates to 1s); heartbeats
	// fire every TTL/3 = 500ms, so after 1.2s the entry survives only if
	// the ticker is refreshing it.
	hb, err := c.StartHeartbeat(ctx, "hb", "x:1", 1500*time.Millisecond, func() float64 { return 0.8 })
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(1200 * time.Millisecond)
	if got := s.List(); len(got) != 1 || got[0].Name != "hb" || got[0].Health != 0.8 {
		t.Fatalf("heartbeat entry = %+v", got)
	}
	if !hb.OK() || hb.Err() != nil || hb.LastOK().IsZero() {
		t.Fatalf("heartbeat state: ok=%v err=%v lastOK=%v", hb.OK(), hb.Err(), hb.LastOK())
	}
}

func TestRankedSetRefreshOverWire(t *testing.T) {
	_, addr := startServer(t)
	c := NewClient(addr, WithPooledConn())
	defer c.Close()
	ctx := context.Background()

	c.RegisterHealth(ctx, "a", "x:1", time.Minute, 0.9)
	m := NewRankedSet()
	if err := m.Refresh(ctx, c); err != nil {
		t.Fatal(err)
	}
	c.RegisterHealth(ctx, "b", "y:1", time.Minute, 0.3)
	if err := m.Refresh(ctx, c); err != nil {
		t.Fatal(err)
	}
	top := m.Top(0)
	if len(top) != 2 || top[0].Name != "a" {
		t.Fatalf("top = %+v", top)
	}
	st := m.Stats()
	if st.Fulls != 1 || st.Refreshes != 2 {
		t.Fatalf("stats = %+v", st)
	}
}
