package registry

import (
	"bufio"
	"net"
	"strings"
	"testing"
)

// Fuzz targets for both sides of the wire grammar. The invariants are
// crash-freedom and round-trip fidelity: anything a parser accepts must
// re-encode to a line the same parser accepts with the same meaning, so
// the server and client cannot drift apart.

func FuzzParseRequest(f *testing.F) {
	for _, seed := range []string{
		"REGISTER campus 10.0.0.2:8081 60",
		"REGISTER campus 10.0.0.2:8081 60 0.95",
		"REGISTER campus 10.0.0.2:8081 60 0.95 10.0.0.2:9081",
		"REGISTER campus 10.0.0.2:8081 60 -1 10.0.0.2:9081",
		"REGISTER campus 10.0.0.2:8081 60 -1",
		"REGISTER a b 0",
		"REGISTER a b -5 2",
		"LIST",
		"LISTH",
		"LISTH 5",
		"LISTD 0",
		"LISTD 42 10",
		"LISTD x",
		"EPOCH",
		"SYNCD 7",
		"SYNCD",
		"",
		"NOPE what",
		"REGISTER  double  spaces  60",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		req, err := parseRequest(line)
		if err != nil {
			return
		}
		switch req.Kind {
		case reqRegister:
			if req.Name == "" || req.Addr == "" || req.TTL <= 0 {
				t.Fatalf("parseRequest(%q) accepted invalid REGISTER: %+v", line, req)
			}
			if req.Health != HealthUnreported && (req.Health < 0 || req.Health > 1) {
				t.Fatalf("parseRequest(%q) accepted out-of-range health: %+v", line, req)
			}
		case reqListH, reqListD:
			if req.K < 0 {
				t.Fatalf("parseRequest(%q) accepted negative k: %+v", line, req)
			}
		}
	})
}

func FuzzParseListEntry(f *testing.F) {
	for _, seed := range []string{
		"campus 10.0.0.2:8081",
		"campus 10.0.0.2:8081 0.95 up",
		"campus 10.0.0.2:8081 0.95 up 10.0.0.2:9081",
		"campus 10.0.0.2:8081 -1 down",
		"campus 10.0.0.2:8081 0.5 sideways",
		"one",
		"a b c d e f",
	} {
		f.Add(seed, true)
		f.Add(seed, false)
	}
	f.Fuzz(func(t *testing.T, line string, ranked bool) {
		e, err := parseListEntry(line, ranked)
		if err != nil {
			return
		}
		// Round-trip: re-encode the way the server does and re-parse.
		var enc string
		if ranked {
			enc = e.Name + " " + e.Addr + " " + formatHealth(e.Health) + " " + stateWord(e.Down) +
				maddrSuffix(e.MetricsAddr)
		} else {
			enc = e.Name + " " + e.Addr
		}
		e2, err := parseListEntry(enc, ranked)
		if err != nil {
			t.Fatalf("round-trip of %q -> %q failed: %v", line, enc, err)
		}
		if e2.Name != e.Name || e2.Addr != e.Addr || e2.Down != e.Down || e2.MetricsAddr != e.MetricsAddr {
			t.Fatalf("round-trip changed meaning: %+v vs %+v", e, e2)
		}
	})
}

func FuzzParseDeltaLine(f *testing.F) {
	for _, seed := range []string{
		"+ campus 10.0.0.2:8081 0.95 up",
		"+ campus 10.0.0.2:8081 0.95 up 10.0.0.2:9081",
		"+ campus 10.0.0.2:8081 -1 down",
		"- campus",
		"- ",
		"+ short",
		"? campus x 0.5 up",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		de, err := parseDeltaLine(line)
		if err != nil {
			return
		}
		var enc string
		if de.Deleted {
			enc = "- " + de.Name
		} else {
			enc = "+ " + de.Name + " " + de.Addr + " " + formatHealth(de.Health) + " " + stateWord(de.Down) +
				maddrSuffix(de.MetricsAddr)
		}
		de2, err := parseDeltaLine(enc)
		if err != nil {
			t.Fatalf("round-trip of %q -> %q failed: %v", line, enc, err)
		}
		if de2.Name != de.Name || de2.Deleted != de.Deleted || de2.Addr != de.Addr || de2.MetricsAddr != de.MetricsAddr {
			t.Fatalf("round-trip changed meaning: %+v vs %+v", de, de2)
		}
	})
}

func FuzzParseSyncLine(f *testing.F) {
	for _, seed := range []string{
		"+ campus 10.0.0.2:8081 0.95 1722470400000000000 60000000000",
		"+ campus 10.0.0.2:8081 0.95 1722470400000000000 60000000000 10.0.0.2:9081",
		"+ campus 10.0.0.2:8081 -1 0 1",
		"- campus 1722470400000000000",
		"- campus x",
		"+ a b c d e",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		de, err := parseSyncLine(line)
		if err != nil {
			return
		}
		if !de.Deleted {
			if de.TTL <= 0 {
				t.Fatalf("parseSyncLine(%q) accepted non-positive ttl: %+v", line, de)
			}
			if strings.ContainsAny(de.Name+de.Addr, " \t\r\n") || de.Name == "" || de.Addr == "" {
				t.Fatalf("parseSyncLine(%q) accepted non-token name/addr: %+v", line, de)
			}
		}
		var enc string
		if de.Deleted {
			enc = "- " + de.Name + " " + strconv64(de.LastSeen.UnixNano())
		} else {
			enc = "+ " + de.Name + " " + de.Addr + " " + formatHealth(de.Health) + " " +
				strconv64(de.LastSeen.UnixNano()) + " " + strconv64(int64(de.TTL)) +
				maddrSuffix(de.MetricsAddr)
		}
		de2, err := parseSyncLine(enc)
		if err != nil {
			t.Fatalf("round-trip of %q -> %q failed: %v", line, enc, err)
		}
		if de2.Name != de.Name || de2.Deleted != de.Deleted || !de2.LastSeen.Equal(de.LastSeen) ||
			de2.TTL != de.TTL || de2.MetricsAddr != de.MetricsAddr {
			t.Fatalf("round-trip changed meaning: %+v vs %+v", de, de2)
		}
	})
}

func FuzzParseEpochLine(f *testing.F) {
	for _, seed := range []string{"EPOCH 0", "EPOCH 42 full", "EPOCH", "EPOCH x", "EPOCH 1 partial"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		epoch, full, err := parseEpochLine(line)
		if err != nil {
			return
		}
		enc := "EPOCH " + strconv64(int64(epoch))
		if full {
			enc += " full"
		}
		// Re-encoding only round-trips exactly for epochs that fit int64;
		// the grammar itself allows uint64, so guard the check.
		if epoch <= 1<<62 {
			e2, f2, err := parseEpochLine(enc)
			if err != nil || e2 != epoch || f2 != full {
				t.Fatalf("round-trip of %q -> %q: %v %v %v", line, enc, e2, f2, err)
			}
		}
	})
}

// Sanity check that a fuzz-shaped garbage request cannot take the wire
// handler down: the server must answer ERR and keep the session open
// for the next (valid) command on the same connection.
func TestWireSurvivesGarbageThenWorks(t *testing.T) {
	s, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	send := func(line string) string {
		if _, err := conn.Write([]byte(line + "\n")); err != nil {
			t.Fatalf("write %q: %v", line, err)
		}
		resp, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("session died after %q: %v", line, err)
		}
		return strings.TrimSpace(resp)
	}
	if resp := send("BOGUS \x00 stuff"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("garbage got %q, want ERR", resp)
	}
	if resp := send("REGISTER x y -1"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("bad ttl got %q, want ERR", resp)
	}
	if resp := send("REGISTER ok h:1 60"); resp != "OK" {
		t.Fatalf("valid command after garbage got %q", resp)
	}
	if got := s.List(); len(got) != 1 || got[0].Name != "ok" {
		t.Fatalf("list = %+v", got)
	}
}
