package registry

import (
	"context"
	"testing"
	"time"
)

// Two peered registries: an entry heartbeated to either must be visible
// on both within one sync interval, and their digests must converge.
func TestPeerSyncConvergence(t *testing.T) {
	sA, addrA := startServer(t)
	sB, addrB := startServer(t)
	psA := NewPeerSync(sA, []string{addrB}, time.Hour, 2*time.Second, nil)
	psB := NewPeerSync(sB, []string{addrA}, time.Hour, 2*time.Second, nil)
	ctx := context.Background()

	sA.RegisterHealth("only-on-a", "a:1", time.Minute, 0.9)
	sB.RegisterHealth("only-on-b", "b:1", time.Minute, 0.4)

	// One manual round each direction == "within one sync interval".
	psA.SyncOnce(ctx)
	psB.SyncOnce(ctx)

	for _, s := range []*Server{sA, sB} {
		got := s.List()
		if len(got) != 2 || got[0].Name != "only-on-a" || got[1].Name != "only-on-b" {
			t.Fatalf("after one sync round, list = %+v", got)
		}
	}
	if sA.Digest() != sB.Digest() {
		t.Fatalf("digests diverge after sync: %d vs %d", sA.Digest(), sB.Digest())
	}

	// B's merge of only-on-a moved B's epoch past A's cursor, so one
	// catch-up pull (applying nothing) brings the cursor current...
	psA.SyncOnce(ctx)
	// ...and the next round is idle: the EPOCH probe must skip the pull.
	before := psA.Stats()[0]
	psA.SyncOnce(ctx)
	after := psA.Stats()[0]
	if after.Skips != before.Skips+1 || after.Pulls != before.Pulls {
		t.Fatalf("idle round did not skip: before=%+v after=%+v", before, after)
	}
}

// Last-writer-wins: the refresh that happened later (by LastSeen) must
// survive a merge in both directions.
func TestPeerSyncLastWriterWins(t *testing.T) {
	nowA := time.Unix(1000, 0)
	nowB := time.Unix(1000, 0)
	sA := &Server{Clock: func() time.Time { return nowA }}
	sB := &Server{Clock: func() time.Time { return nowB }}

	sA.RegisterHealth("r", "addr-old:1", time.Minute, 0.2)
	nowB = nowB.Add(10 * time.Second)
	sB.RegisterHealth("r", "addr-new:1", time.Minute, 0.8) // later write

	// Merge A's copy into B: must be ignored (older).
	if n := sB.Merge(sA.SyncDelta(0).Entries); n != 0 {
		t.Fatalf("older write applied (%d entries)", n)
	}
	// Merge B's copy into A: must win.
	if n := sA.Merge(sB.SyncDelta(0).Entries); n != 1 {
		t.Fatal("newer write not applied")
	}
	got := sA.List()
	if len(got) != 1 || got[0].Addr != "addr-new:1" || got[0].Health != 0.8 {
		t.Fatalf("LWW merge result = %+v", got)
	}
}

// A delete must beat an older heartbeat, and a newer re-registration
// must beat the delete.
func TestPeerSyncDeleteSupersession(t *testing.T) {
	now := time.Unix(1000, 0)
	sA := &Server{Clock: func() time.Time { return now }}
	sB := &Server{Clock: func() time.Time { return now }}

	sA.Register("r", "x:1", time.Minute)
	sB.Merge(sA.SyncDelta(0).Entries)

	now = now.Add(5 * time.Second)
	sA.Remove("r")
	if n := sB.Merge(sA.SyncDelta(0).Entries); n == 0 {
		t.Fatal("delete not propagated")
	}
	if got := sB.List(); len(got) != 0 {
		t.Fatalf("deleted entry survives on peer: %+v", got)
	}

	// The relay comes back, registering at B after the delete.
	now = now.Add(5 * time.Second)
	sB.Register("r", "x:1", time.Minute)
	if n := sA.Merge(sB.SyncDelta(0).Entries); n == 0 {
		t.Fatal("re-registration newer than tombstone not applied")
	}
	if got := sA.List(); len(got) != 1 || got[0].Name != "r" {
		t.Fatalf("re-registration lost to stale tombstone: %+v", got)
	}
}

// Pure heartbeats are invisible to LISTD clients but MUST propagate
// liveness to peers — otherwise entries look dead on the replica.
func TestPeerSyncPropagatesHeartbeatLiveness(t *testing.T) {
	nowA := time.Unix(1000, 0)
	sA := &Server{Clock: func() time.Time { return nowA }}
	sB := &Server{Clock: func() time.Time { return nowA }}

	sA.RegisterHealth("r", "x:1", 30*time.Second, 0.5)
	sB.Merge(sA.SyncDelta(0).Entries)
	cursor := sA.Epoch()

	// Heartbeat on A: no material change, but SeenEpoch moves.
	nowA = nowA.Add(20 * time.Second)
	sA.RegisterHealth("r", "x:1", 30*time.Second, 0.5)
	d := sA.SyncDelta(cursor)
	if len(d.Entries) != 1 {
		t.Fatalf("heartbeat invisible to peer sync: %+v", d)
	}
	if n := sB.Merge(d.Entries); n != 1 {
		t.Fatal("heartbeat refresh not merged")
	}
	got := sB.ListAll()
	if len(got) != 1 || !got[0].LastSeen.Equal(nowA) {
		t.Fatalf("replica LastSeen not advanced: %+v", got)
	}
}

// The acceptance-criteria e2e: two peered registries, kill one, and
// fetch-style ranked discovery through a fallback-aware client keeps
// working against the survivor — including entries that were only ever
// heartbeated to the dead peer.
func TestPeerFailoverDiscovery(t *testing.T) {
	sA := &Server{}
	lA, err := sA.ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sB, addrB := startServer(t)
	addrA := lA.Addr().String()

	psB := NewPeerSync(sB, []string{addrA}, time.Hour, 2*time.Second, nil)
	ctx := context.Background()

	// The relay only ever talked to A.
	relayClient := NewClient(addrA)
	if err := relayClient.RegisterHealth(ctx, "survivor-relay", "10.0.0.9:1", time.Minute, 0.7); err != nil {
		t.Fatal(err)
	}
	relayClient.Close()

	psB.SyncOnce(ctx) // B pulls A before the crash

	lA.Close() // registry A dies
	time.Sleep(20 * time.Millisecond)

	// fetch -top K with -registry addrA,addrB: primary dead, fallback up.
	c := NewClient(addrA, WithFallbackPeers(addrB), WithTimeout(2*time.Second))
	defer c.Close()
	got, err := c.ListRanked(ctx, 3)
	if err != nil {
		t.Fatalf("discovery failed after losing a registry: %v", err)
	}
	if len(got) != 1 || got[0].Name != "survivor-relay" || got[0].Addr != "10.0.0.9:1" {
		t.Fatalf("survivor view = %+v", got)
	}
}

// A replica that was partitioned long enough to fall below the delta
// floor heals through a full sync that carries tombstones.
func TestPeerSyncFullCarriesTombstones(t *testing.T) {
	var sA, sB Server
	sA.Register("stale", "x:1", time.Minute)
	sB.Merge(sA.SyncDelta(0).Entries)
	sA.Remove("stale")

	d := sA.SyncDelta(0) // full sync
	if !d.Full {
		t.Fatalf("since=0 should be full: %+v", d)
	}
	sB.Merge(d.Entries)
	if got := sB.List(); len(got) != 0 {
		t.Fatalf("full sync did not carry the delete: %+v", got)
	}
}
