package registry

import (
	"sort"
	"strconv"
	"sync"
	"time"
)

// The table is striped into shards keyed by FNV-1a hash of the relay
// name. A REGISTER touches exactly one shard, so a heartbeat storm from
// 100k relays spreads its lock traffic across NumShards mutexes instead
// of serializing on one; table scans (LISTH, LISTD, peer sync) visit
// shards one at a time and never stall writers on more than 1/NumShards
// of the table. Epochs are claimed from the server-wide counter while
// holding the owning shard's lock — see Server.epoch for why readers
// cannot miss a stamped change.

// tombstoneKeep is how long a delete is remembered so delta clients and
// peers that sync within it see the removal; pruning a tombstone raises
// the server's delta floor, forcing older clients onto a full snapshot.
const tombstoneKeep = 10 * time.Minute

// tombstone records a deleted entry: the epoch of the delete (for
// LISTD/SYNCD filtering), the LastSeen it supersedes (for last-writer-
// wins peer merges), and how long to remember it.
type tombstone struct {
	Epoch    uint64
	LastSeen time.Time
	Keep     time.Time
}

// shard is one table partition. All fields are guarded by mu.
type shard struct {
	mu      sync.Mutex
	entries map[string]Entry
	tombs   map[string]tombstone
}

func newShard() *shard {
	return &shard{
		entries: make(map[string]Entry),
		tombs:   make(map[string]tombstone),
	}
}

// shardFor maps a relay name to its owning shard.
func (s *Server) shardFor(name string) *shard {
	return s.shards[int(fnv32(name)%uint32(len(s.shards)))]
}

// fnv32 is the FNV-1a hash of s (inlined to keep the hot REGISTER path
// free of hash.Hash allocation).
func fnv32(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

// sweepShard applies TTL expiry under sh.mu: lapsed entries are marked
// down (a material change — clients need to see the outage), down
// entries past their grace become tombstones, and expired tombstones
// are pruned, raising the delta floor past their epochs.
func (s *Server) sweepShard(sh *shard, now time.Time) {
	for name, e := range sh.entries {
		if e.Down {
			if now.After(e.Expires.Add(downGraceFactor * e.TTL)) {
				delete(sh.entries, name)
				sh.tombs[name] = tombstone{
					Epoch:    s.epoch.Add(1),
					LastSeen: e.LastSeen,
					Keep:     now.Add(tombstoneKeep),
				}
			}
			continue
		}
		if e.Expires.Before(now) {
			e.Down = true
			epoch := s.epoch.Add(1)
			e.ChangeEpoch = epoch
			e.seenEpoch = epoch
			sh.entries[name] = e
			s.Downs.Add(1)
		}
	}
	for name, t := range sh.tombs {
		if now.After(t.Keep) {
			delete(sh.tombs, name)
			s.raiseFloor(t.Epoch)
		}
	}
}

// raiseFloor lifts deltaFloor to at least epoch.
func (s *Server) raiseFloor(epoch uint64) {
	for {
		cur := s.deltaFloor.Load()
		if cur >= epoch || s.deltaFloor.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// ShardStats describes one shard for /debug/registry.
type ShardStats struct {
	Entries    int    `json:"entries"`
	Tombstones int    `json:"tombstones"`
	Digest     uint64 `json:"digest"`
}

// Stats is the point-in-time table view served on /debug/registry.
type Stats struct {
	Epoch      uint64       `json:"epoch"`
	DeltaFloor uint64       `json:"delta_floor"`
	Shards     int          `json:"shards"`
	Live       int          `json:"live"`
	Down       int          `json:"down"`
	Tombstones int          `json:"tombstones"`
	Digest     uint64       `json:"digest"`
	PerShard   []ShardStats `json:"per_shard"`
}

// Stats sweeps and snapshots per-shard occupancy and digests.
func (s *Server) Stats() Stats {
	s.init()
	now := s.now()
	st := Stats{Shards: len(s.shards)}
	for _, sh := range s.shards {
		sh.mu.Lock()
		s.sweepShard(sh, now)
		ss := ShardStats{Entries: len(sh.entries), Tombstones: len(sh.tombs), Digest: shardDigest(sh)}
		for _, e := range sh.entries {
			if e.Down {
				st.Down++
			} else {
				st.Live++
			}
		}
		sh.mu.Unlock()
		st.Tombstones += ss.Tombstones
		st.Digest ^= ss.Digest
		st.PerShard = append(st.PerShard, ss)
	}
	st.Epoch = s.epoch.Load()
	st.DeltaFloor = s.deltaFloor.Load()
	return st
}

// Digest returns an order-independent hash of the table's converged
// state (name, address, health, last-seen, down). Two peers whose
// digests match hold the same view; peer sync uses it to detect
// divergence and tests use it to assert convergence.
func (s *Server) Digest() uint64 {
	s.init()
	var d uint64
	for _, sh := range s.shards {
		sh.mu.Lock()
		d ^= shardDigest(sh)
		sh.mu.Unlock()
	}
	return d
}

// shardDigest XORs per-entry FNV-1a hashes (commutative, so map
// iteration order is irrelevant). Caller holds sh.mu.
func shardDigest(sh *shard) uint64 {
	var d uint64
	for _, e := range sh.entries {
		d ^= entryDigest(e)
	}
	return d
}

func entryDigest(e Entry) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff // field separator
		h *= prime64
	}
	mix(e.Name)
	mix(e.Addr)
	mix(formatHealth(e.Health))
	mix(strconv64(e.LastSeen.UnixNano()))
	mix(e.MetricsAddr)
	if e.Down {
		mix("down")
	}
	return h
}

func strconv64(v int64) string { return strconv.FormatInt(v, 10) }

// sortSlice sorts entries with the given less function.
func sortSlice(out []Entry, less func(a, b Entry) bool) {
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
}
