package registry

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestListDeltaFirstSyncIsFull(t *testing.T) {
	var s Server
	s.RegisterHealth("a", "x:1", time.Minute, 0.9)
	s.RegisterHealth("b", "y:1", time.Minute, 0.1)
	d := s.ListDelta(0, 0)
	if !d.Full || len(d.Entries) != 2 {
		t.Fatalf("first sync = %+v", d)
	}
	if d.Epoch != s.Epoch() {
		t.Fatalf("delta epoch %d, server epoch %d", d.Epoch, s.Epoch())
	}
}

func TestListDeltaIncrementalOnlyChanges(t *testing.T) {
	var s Server
	s.RegisterHealth("a", "x:1", time.Minute, 0.9)
	s.RegisterHealth("b", "y:1", time.Minute, 0.1)
	e := s.ListDelta(0, 0).Epoch

	// Pure heartbeat: same addr, same health — no client-visible change.
	s.RegisterHealth("a", "x:1", time.Minute, 0.9)
	d := s.ListDelta(e, 0)
	if d.Full || len(d.Entries) != 0 {
		t.Fatalf("pure heartbeat produced a delta: %+v", d)
	}

	// Material change: health moved.
	s.RegisterHealth("a", "x:1", time.Minute, 0.5)
	d = s.ListDelta(d.Epoch, 0)
	if d.Full || len(d.Entries) != 1 || d.Entries[0].Name != "a" || d.Entries[0].Health != 0.5 {
		t.Fatalf("health change delta = %+v", d)
	}

	// Delete arrives as a tombstone line.
	s.Remove("b")
	d = s.ListDelta(d.Epoch, 0)
	if d.Full || len(d.Entries) != 1 || !d.Entries[0].Deleted || d.Entries[0].Name != "b" {
		t.Fatalf("delete delta = %+v", d)
	}
}

func TestListDeltaUnknownEpochFallsBackToFull(t *testing.T) {
	var s Server
	s.Register("a", "x:1", time.Minute)
	d := s.ListDelta(s.Epoch()+100, 0) // from a future/other server's epoch
	if !d.Full {
		t.Fatalf("unknown epoch should force a full snapshot: %+v", d)
	}
}

func TestListDeltaBelowFloorFallsBackToFull(t *testing.T) {
	now := time.Unix(1000, 0)
	s := Server{Clock: func() time.Time { return now }}
	s.Register("a", "x:1", time.Second)
	e := s.Epoch()
	// Walk the entry through its whole afterlife: down, tombstoned, and
	// finally pruned (each stage needs its own sweep at a later time).
	now = now.Add(time.Second * 4)
	s.Sweep() // down-marked
	now = now.Add(time.Hour)
	s.Sweep() // past grace: tombstoned, kept for tombstoneKeep
	now = now.Add(time.Hour)
	s.Sweep() // tombstone pruned, delta floor raised
	s.Register("b", "y:1", time.Minute)
	d := s.ListDelta(e, 0)
	if !d.Full {
		t.Fatalf("pre-floor epoch must get a full snapshot: floor=%d d=%+v", s.deltaFloor.Load(), d)
	}
}

// The delta property test: from ANY interleaving of registrations,
// health changes, heartbeats, removals, and clock advances, a client
// that applies LISTD deltas from any starting epoch converges to the
// same view as a client that pulls the full list — the mirror never
// silently diverges.
func TestDeltaSyncPropertyReconstructsFullView(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			now := time.Unix(10_000, 0)
			s := Server{NumShards: 4, Clock: func() time.Time { return now }}
			names := make([]string, 12)
			for i := range names {
				names[i] = fmt.Sprintf("relay-%d", i)
			}

			// Several mirrors, syncing at staggered times (so each sees a
			// different interleaving of deltas), plus mirror 0 starting
			// mid-stream from a nonzero epoch.
			mirrors := make([]*RankedSet, 4)
			for i := range mirrors {
				mirrors[i] = NewRankedSet()
			}

			for step := 0; step < 400; step++ {
				name := names[rng.Intn(len(names))]
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // heartbeat / register
					s.RegisterHealth(name, name+":1", 30*time.Second, float64(rng.Intn(3))/2)
				case 4:
					s.Register(name, name+":2", 20*time.Second) // addr change
				case 5:
					s.Remove(name)
				case 6:
					now = now.Add(time.Duration(rng.Intn(10)) * time.Second)
				case 7:
					now = now.Add(time.Duration(rng.Intn(90)) * time.Second) // force expiries
				default:
					// quiet step
				}
				for i, m := range mirrors {
					if step%(3+i*5) == 0 { // staggered sync cadences
						m.Apply(s.ListDelta(m.Epoch(), 0))
					}
				}
			}

			// Final sync for every mirror, then compare against the truth.
			want := s.rankedAll(0)
			sort.Slice(want, func(i, j int) bool { return want[i].Name < want[j].Name })
			for i, m := range mirrors {
				m.Apply(s.ListDelta(m.Epoch(), 0))
				got := m.All()
				sort.Slice(got, func(a, b int) bool { return got[a].Name < got[b].Name })
				if len(got) != len(want) {
					t.Fatalf("mirror %d: %d entries, want %d\n got=%+v\nwant=%+v", i, len(got), len(want), got, want)
				}
				for j := range want {
					g, w := got[j], want[j]
					if g.Name != w.Name || g.Addr != w.Addr || g.Health != w.Health || g.Down != w.Down {
						t.Fatalf("mirror %d diverged at %q:\n got %+v\nwant %+v", i, w.Name, g, w)
					}
				}
			}
		})
	}
}

func TestRankedSetTopMatchesServerRanking(t *testing.T) {
	var s Server
	s.RegisterHealth("hi", "a:1", time.Minute, 0.9)
	s.RegisterHealth("mid", "b:1", time.Minute, 0.5)
	s.RegisterHealth("lo", "c:1", time.Minute, 0.1)
	m := NewRankedSet()
	m.Apply(s.ListDelta(0, 0))
	top := m.Top(2)
	if len(top) != 2 || top[0].Name != "hi" || top[1].Name != "mid" {
		t.Fatalf("top = %+v", top)
	}
	st := m.Stats()
	if st.Refreshes != 1 || st.Fulls != 1 || st.Entries != 3 {
		t.Fatalf("stats = %+v", st)
	}
}
