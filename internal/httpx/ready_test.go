package httpx

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// getStatus performs one GET against a live test server and returns
// the status and body.
func getStatus(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	req := NewGet(path, addr)
	if err := req.Write(conn); err != nil {
		t.Fatal(err)
	}
	resp, err := ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.Status, string(body)
}

// serveReadyMux starts a NewReadyMux server for the test's lifetime.
func serveReadyMux(t *testing.T, ready *Ready) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	srv := &Server{Mux: NewReadyMux(func() any { return map[string]int{"x": 1} }, ready)}
	done := make(chan struct{})
	go func() { defer close(done); srv.ServeListener(ctx, l) }()
	t.Cleanup(func() { cancel(); <-done })
	return l.Addr().String()
}

func TestHealthzReflectsLivenessChecks(t *testing.T) {
	ready := NewReady()
	alive := true
	ready.AddLive("listener", func() error {
		if !alive {
			return errors.New("listener closed")
		}
		return nil
	})
	addr := serveReadyMux(t, ready)

	if status, body := getStatus(t, addr, "/healthz"); status != 200 || body != "ok\n" {
		t.Fatalf("/healthz live = %d %q", status, body)
	}
	alive = false
	status, body := getStatus(t, addr, "/healthz")
	if status != 503 {
		t.Fatalf("/healthz dead = %d, want 503", status)
	}
	if !strings.Contains(body, "listener: listener closed") {
		t.Fatalf("failure body %q does not name the check", body)
	}
}

func TestReadyzDistinctFromHealthz(t *testing.T) {
	ready := NewReady()
	ready.AddLive("listener", func() error { return nil })
	registryUp := false
	ready.AddReady("registry", func() error {
		if !registryUp {
			return errors.New("no heartbeat accepted yet")
		}
		return nil
	})
	addr := serveReadyMux(t, ready)

	// Alive but not ready: the distinction the old endpoint conflated.
	if status, _ := getStatus(t, addr, "/healthz"); status != 200 {
		t.Fatalf("/healthz = %d, want 200 while only readiness fails", status)
	}
	status, body := getStatus(t, addr, "/readyz")
	if status != 503 || !strings.Contains(body, "registry:") {
		t.Fatalf("/readyz = %d %q, want 503 naming registry", status, body)
	}
	registryUp = true
	if status, body := getStatus(t, addr, "/readyz"); status != 200 || body != "ok\n" {
		t.Fatalf("/readyz after recovery = %d %q", status, body)
	}
}

func TestReadyMultipleFailuresSorted(t *testing.T) {
	ready := NewReady()
	ready.AddReady("zeta", func() error { return errors.New("z") })
	ready.AddReady("alpha", func() error { return errors.New("a") })
	addr := serveReadyMux(t, ready)
	status, body := getStatus(t, addr, "/readyz")
	if status != 503 {
		t.Fatalf("status = %d", status)
	}
	if !strings.HasPrefix(body, "alpha: a\nzeta: z") {
		t.Fatalf("failures not sorted: %q", body)
	}
	if err := ready.ReadyErr(); err == nil || !strings.Contains(err.Error(), "2 check(s)") {
		t.Fatalf("ReadyErr = %v", err)
	}
	if err := ready.Live(); err != nil {
		t.Fatalf("Live = %v, want nil (only readiness checks fail)", err)
	}
}

func TestNewVarsMuxStaysUnconditional(t *testing.T) {
	addr := serveReadyMux(t, nil)
	if status, body := getStatus(t, addr, "/healthz"); status != 200 || body != "ok\n" {
		t.Fatalf("no-check /healthz = %d %q", status, body)
	}
	if status, _ := getStatus(t, addr, "/readyz"); status != 200 {
		t.Fatalf("no-check /readyz = %d", status)
	}
	if status, body := getStatus(t, addr, "/debug/vars"); status != 200 || !strings.Contains(body, `"x": 1`) {
		t.Fatalf("/debug/vars = %d %q", status, body)
	}
}
