// Liveness and readiness: named check registries behind /healthz and
// /readyz. Liveness means "the process is up and should not be
// restarted"; readiness means "send this daemon traffic" — a relay
// whose registry heartbeats are bouncing is alive but not ready, and
// conflating the two (as the old unconditional-200 /healthz did) turns
// every partial outage invisible.
package httpx

import (
	"fmt"
	"sort"
	"sync"
)

// Check probes one readiness condition; nil means healthy, an error
// names what is wrong. Checks run per request, so they report live
// state; they must be safe for concurrent use.
type Check func() error

// Ready is a named set of liveness and readiness checks. The zero
// value is ready to use (and reports healthy until checks are added).
type Ready struct {
	mu    sync.Mutex
	live  map[string]Check
	ready map[string]Check
}

// NewReady returns an empty check set.
func NewReady() *Ready { return &Ready{} }

// AddLive registers a liveness check (also consulted by readiness: a
// dead process is never ready).
func (r *Ready) AddLive(name string, c Check) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.live == nil {
		r.live = make(map[string]Check)
	}
	r.live[name] = c
}

// AddReady registers a readiness-only check.
func (r *Ready) AddReady(name string, c Check) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ready == nil {
		r.ready = make(map[string]Check)
	}
	r.ready[name] = c
}

// run evaluates a snapshot of the given check sets, returning the
// sorted names of failing checks with their errors.
func (r *Ready) run(includeReady bool) []string {
	r.mu.Lock()
	checks := make(map[string]Check, len(r.live)+len(r.ready))
	for n, c := range r.live {
		checks[n] = c
	}
	if includeReady {
		for n, c := range r.ready {
			checks[n] = c
		}
	}
	r.mu.Unlock()
	var failing []string
	for name, c := range checks {
		if err := c(); err != nil {
			failing = append(failing, fmt.Sprintf("%s: %v", name, err))
		}
	}
	sort.Strings(failing)
	return failing
}

// Live reports liveness: nil when every liveness check passes.
func (r *Ready) Live() error { return firstFailure(r.run(false)) }

// ReadyErr reports readiness: nil when every check (liveness and
// readiness) passes.
func (r *Ready) ReadyErr() error { return firstFailure(r.run(true)) }

func firstFailure(failing []string) error {
	if len(failing) == 0 {
		return nil
	}
	return fmt.Errorf("%d check(s) failing: %v", len(failing), failing)
}

// checkHandler serves 200 "ok" when no check fails and 503 with the
// failing check names otherwise.
func (r *Ready) checkHandler(includeReady bool) Handler {
	return func(*Request) (int, map[string]string, []byte) {
		failing := r.run(includeReady)
		if len(failing) == 0 {
			return 200, map[string]string{"content-type": "text/plain"}, []byte("ok\n")
		}
		body := ""
		for _, f := range failing {
			body += f + "\n"
		}
		return 503, map[string]string{"content-type": "text/plain"}, []byte(body)
	}
}

// LiveHandler serves the /healthz endpoint from the check set.
func (r *Ready) LiveHandler() Handler { return r.checkHandler(false) }

// ReadyHandler serves the /readyz endpoint from the check set.
func (r *Ready) ReadyHandler() Handler { return r.checkHandler(true) }

// NewReadyMux returns a mux with the standard introspection endpoints
// wired to real state: /healthz (liveness checks), /readyz (liveness +
// readiness checks), and /debug/vars (vars() as JSON). A nil ready
// reports unconditionally healthy — the old NewVarsMux behavior — but
// daemons should pass their real check set.
func NewReadyMux(vars func() any, ready *Ready) *Mux {
	if ready == nil {
		ready = NewReady()
	}
	m := NewMux()
	m.Handle("/healthz", ready.LiveHandler())
	m.Handle("/readyz", ready.ReadyHandler())
	m.Handle("/debug/vars", JSONHandler(vars))
	return m
}
