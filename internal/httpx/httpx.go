// Package httpx implements the small slice of HTTP/1.1 that indirect
// routing needs, directly over net.Conn: GET requests in origin form or
// absolute form (for relaying), single-range Range headers (RFC 7233
// subset), and Content-Length-delimited responses.
//
// The paper's mechanism only ever issues two request shapes — "first x
// bytes" and "bytes x through n−1" — and measures when the bytes arrive.
// Hand-rolling the codec keeps each transfer on exactly one fresh TCP
// connection with no pooling, pipelining, or hidden buffering between the
// byte stream and the throughput clock, which is what the measurement
// needs; net/http's transport machinery would get in the way.
package httpx

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Protocol limits, generous for this use.
const (
	maxLineLen    = 8 << 10
	maxHeaderends = 64
)

// Errors surfaced by the codec.
var (
	ErrMalformed      = errors.New("httpx: malformed message")
	ErrUnsatisfiable  = errors.New("httpx: range not satisfiable")
	ErrLineTooLong    = errors.New("httpx: header line too long")
	ErrTooManyHeaders = errors.New("httpx: too many header fields")
)

// Request is an HTTP request: method, target (origin-form "/name" or
// absolute-form "http://host/name" when sent to a relay), and headers.
type Request struct {
	Method string
	Target string
	Proto  string
	Header map[string]string // canonicalized to lower-case keys
}

// NewGet builds a GET request for target with a Host header.
func NewGet(target, host string) *Request {
	return &Request{
		Method: "GET",
		Target: target,
		Proto:  "HTTP/1.1",
		Header: map[string]string{"host": host, "connection": "close"},
	}
}

// SetRange sets a single-range Range header for [off, off+n).
func (r *Request) SetRange(off, n int64) {
	r.Header["range"] = fmt.Sprintf("bytes=%d-%d", off, off+n-1)
}

// Write serializes the request.
func (r *Request) Write(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %s\r\n", r.Method, r.Target, r.Proto)
	for k, v := range r.Header {
		fmt.Fprintf(&b, "%s: %s\r\n", k, v)
	}
	b.WriteString("\r\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// ReadRequest parses a request head from br. The caller owns any body.
func ReadRequest(br *bufio.Reader) (*Request, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" ||
		!strings.HasPrefix(parts[2], "HTTP/1.") || len(parts[2]) <= len("HTTP/1.") {
		return nil, fmt.Errorf("%w: bad request line %q", ErrMalformed, line)
	}
	req := &Request{Method: parts[0], Target: parts[1], Proto: parts[2]}
	req.Header, err = readHeader(br)
	return req, err
}

// AbsoluteTarget splits an absolute-form target into (hostport, path). It
// reports ok=false for origin-form targets.
func (r *Request) AbsoluteTarget() (hostport, path string, ok bool) {
	t := r.Target
	if !strings.HasPrefix(t, "http://") {
		return "", "", false
	}
	rest := strings.TrimPrefix(t, "http://")
	i := strings.IndexByte(rest, '/')
	if i < 0 {
		return rest, "/", true
	}
	return rest[:i], rest[i:], true
}

// Response is an HTTP response head plus a length-delimited body reader.
type Response struct {
	Status int
	Reason string
	Header map[string]string

	// ContentLength is the declared body length (-1 if absent).
	ContentLength int64

	// Body reads exactly ContentLength bytes when it is >= 0.
	Body io.Reader
}

// WriteResponseHead serializes a response status line and headers.
func WriteResponseHead(w io.Writer, status int, reason string, header map[string]string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "HTTP/1.1 %d %s\r\n", status, reason)
	for k, v := range header {
		fmt.Fprintf(&b, "%s: %s\r\n", k, v)
	}
	b.WriteString("\r\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// ReadResponse parses a response head from br and wires up a bounded body
// reader.
func ReadResponse(br *bufio.Reader) (*Response, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/1.") {
		return nil, fmt.Errorf("%w: bad status line %q", ErrMalformed, line)
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("%w: bad status %q", ErrMalformed, parts[1])
	}
	resp := &Response{Status: status, ContentLength: -1}
	if len(parts) == 3 {
		resp.Reason = parts[2]
	}
	if resp.Header, err = readHeader(br); err != nil {
		return nil, err
	}
	if cl, ok := resp.Header["content-length"]; ok {
		n, err := strconv.ParseInt(cl, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("%w: bad content-length %q", ErrMalformed, cl)
		}
		resp.ContentLength = n
		resp.Body = io.LimitReader(br, n)
	} else {
		resp.Body = br
	}
	return resp, nil
}

// ParseRange parses a single-range "bytes=a-b" header against an object of
// the given size, returning the satisfiable [off, off+n) window. An empty
// header means the whole object. Suffix ranges ("bytes=-n") are supported.
func ParseRange(h string, size int64) (off, n int64, err error) {
	if h == "" {
		return 0, size, nil
	}
	spec, ok := strings.CutPrefix(h, "bytes=")
	if !ok || strings.Contains(spec, ",") {
		return 0, 0, fmt.Errorf("%w: %q", ErrMalformed, h)
	}
	dash := strings.IndexByte(spec, '-')
	if dash < 0 {
		return 0, 0, fmt.Errorf("%w: %q", ErrMalformed, h)
	}
	first, last := strings.TrimSpace(spec[:dash]), strings.TrimSpace(spec[dash+1:])
	switch {
	case first == "" && last == "":
		return 0, 0, fmt.Errorf("%w: %q", ErrMalformed, h)
	case first == "": // suffix: last n bytes
		sn, err := strconv.ParseInt(last, 10, 64)
		if err != nil || sn <= 0 {
			return 0, 0, fmt.Errorf("%w: %q", ErrMalformed, h)
		}
		if sn > size {
			sn = size
		}
		return size - sn, sn, nil
	default:
		a, err := strconv.ParseInt(first, 10, 64)
		if err != nil || a < 0 {
			return 0, 0, fmt.Errorf("%w: %q", ErrMalformed, h)
		}
		if a >= size {
			return 0, 0, ErrUnsatisfiable
		}
		b := size - 1
		if last != "" {
			if b, err = strconv.ParseInt(last, 10, 64); err != nil || b < a {
				return 0, 0, fmt.Errorf("%w: %q", ErrMalformed, h)
			}
			if b >= size {
				b = size - 1
			}
		}
		return a, b - a + 1, nil
	}
}

// ContentRange formats a Content-Range header value for [off, off+n) of
// size.
func ContentRange(off, n, size int64) string {
	return fmt.Sprintf("bytes %d-%d/%d", off, off+n-1, size)
}

func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(line) > maxLineLen {
		return "", ErrLineTooLong
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func readHeader(br *bufio.Reader) (map[string]string, error) {
	h := make(map[string]string)
	for {
		line, err := readLine(br)
		if err != nil {
			return nil, err
		}
		if line == "" {
			return h, nil
		}
		if len(h) >= maxHeaderends {
			return nil, ErrTooManyHeaders
		}
		i := strings.IndexByte(line, ':')
		if i <= 0 {
			return nil, fmt.Errorf("%w: header %q", ErrMalformed, line)
		}
		k := strings.ToLower(strings.TrimSpace(line[:i]))
		h[k] = strings.TrimSpace(line[i+1:])
	}
}
