// A one-shot GET client over the codec, for the observability plane:
// the fleet aggregator scraping relay /metrics and /debug/paths, and
// fetch -fleet browsing the aggregate. One fresh connection per
// request, the same shape the transfer paths use — no pooling to
// confuse a scrape's timing with a transfer's.

package httpx

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"time"
)

// Get fetches target ("/metrics", "/debug/paths", ...) from addr over
// one connection, with extra request headers (nil for none), bounded by
// timeout (0 means 10s). It returns the status, response headers, and
// the full body. dial may be nil for net.Dial semantics.
func Get(ctx context.Context, dial func(ctx context.Context, network, addr string) (net.Conn, error),
	addr, target string, header map[string]string, timeout time.Duration) (status int, respHeader map[string]string, body []byte, err error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	if dial == nil {
		var d net.Dialer
		dial = d.DialContext
	}
	conn, err := dial(ctx, "tcp", addr)
	if err != nil {
		return 0, nil, nil, err
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	req := NewGet(target, addr)
	for k, v := range header {
		req.Header[k] = v
	}
	if err := req.Write(conn); err != nil {
		return 0, nil, nil, fmt.Errorf("httpx get %s%s: %w", addr, target, err)
	}
	resp, err := ReadResponse(bufio.NewReader(conn))
	if err != nil {
		return 0, nil, nil, fmt.Errorf("httpx get %s%s: %w", addr, target, err)
	}
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return resp.Status, resp.Header, nil, fmt.Errorf("httpx get %s%s: body: %w", addr, target, err)
	}
	return resp.Status, resp.Header, body, nil
}
