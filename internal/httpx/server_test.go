package httpx

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// get issues one GET over a fresh connection, the way the daemons'
// metrics endpoints are consumed.
func get(t *testing.T, addr, path string) (*Response, []byte) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := NewGet(path, addr).Write(conn); err != nil {
		t.Fatal(err)
	}
	resp, err := ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func startServer(t *testing.T, s *Server) (addr string, cancel func(), done chan error) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	done = make(chan error, 1)
	go func() { done <- s.ServeListener(ctx, l) }()
	return l.Addr().String(), stop, done
}

func TestMuxRoutesAndErrors(t *testing.T) {
	var hits atomic.Int64
	mux := NewVarsMux(func() any {
		return map[string]int64{"hits": hits.Add(1)}
	})
	addr, cancel, done := startServer(t, &Server{Mux: mux})
	defer cancel()

	resp, body := get(t, addr, "/healthz")
	if resp.Status != 200 || string(body) != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.Status, body)
	}

	resp, body = get(t, addr, "/debug/vars?refresh=1")
	if resp.Status != 200 || resp.Header["content-type"] != "application/json" {
		t.Fatalf("vars: %d %v", resp.Status, resp.Header)
	}
	var vars map[string]int64
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("vars body %q: %v", body, err)
	}
	if vars["hits"] != 1 {
		t.Fatalf("vars = %v, want hits 1", vars)
	}

	if resp, _ := get(t, addr, "/nope"); resp.Status != 404 {
		t.Fatalf("unknown path: %d, want 404", resp.Status)
	}

	// Non-GET methods are rejected.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	req := &Request{Method: "POST", Target: "/healthz", Proto: "HTTP/1.1",
		Header: map[string]string{"host": addr, "content-length": "0"}}
	if err := req.Write(conn); err != nil {
		t.Fatal(err)
	}
	resp, err = ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 405 {
		t.Fatalf("POST: %d, want 405", resp.Status)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
	if _, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestShutdownForceClosesStragglers cancels the context while a handler
// is deliberately stuck and checks the drain path force-closes its
// connection instead of hanging.
func TestShutdownForceClosesStragglers(t *testing.T) {
	release := make(chan struct{})
	mux := NewMux()
	mux.Handle("/slow", func(*Request) (int, map[string]string, []byte) {
		<-release
		return 200, nil, []byte("late\n")
	})
	addr, cancel, done := startServer(t, &Server{Mux: mux, Grace: 10 * time.Millisecond})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := NewGet("/slow", addr).Write(conn); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the handler start blocking

	cancel()
	time.AfterFunc(200*time.Millisecond, func() { close(release) })
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain hung on a stuck handler")
	}
	// The straggler's connection was torn down: the client sees EOF or a
	// reset, not a clean response.
	buf := make([]byte, 64)
	if n, err := conn.Read(buf); err == nil && strings.Contains(string(buf[:n]), "200") {
		t.Fatalf("got a clean response %q after force-close", buf[:n])
	}
}

func TestStatusText(t *testing.T) {
	for code, want := range map[int]string{200: "OK", 404: "Not Found", 405: "Method Not Allowed", 418: "Status"} {
		if got := StatusText(code); got != want {
			t.Fatalf("StatusText(%d) = %q, want %q", code, got, want)
		}
	}
}
