package httpx

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

func BenchmarkRequestWrite(b *testing.B) {
	req := NewGet("/obj.bin", "origin:80")
	req.SetRange(100_000, 3_900_000)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		req.Write(&buf)
	}
}

func BenchmarkReadRequest(b *testing.B) {
	raw := "GET /obj.bin HTTP/1.1\r\nhost: origin:80\r\nrange: bytes=0-99999\r\nconnection: close\r\n\r\n"
	r := strings.NewReader(raw)
	br := bufio.NewReader(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(raw)
		br.Reset(r)
		if _, err := ReadRequest(br); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadResponse(b *testing.B) {
	raw := "HTTP/1.1 206 Partial Content\r\ncontent-length: 100000\r\ncontent-range: bytes 0-99999/4000000\r\n\r\n"
	r := strings.NewReader(raw)
	br := bufio.NewReader(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(raw)
		br.Reset(r)
		if _, err := ReadResponse(br); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseRange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := ParseRange("bytes=100000-3999999", 4_000_000); err != nil {
			b.Fatal(err)
		}
	}
}
