// HTTP server on top of the package codec: exact-path routing, a
// /debug/vars-style JSON endpoint for live counters, and graceful
// shutdown driven by a context. The daemons (origind, relayd,
// registryd) all expose their metrics through this one server instead
// of each hand-rolling listen/serve/shutdown plumbing.
//
// Like the rest of the package it deliberately avoids net/http: the
// endpoints only ever answer small GETs, and one codec for the whole
// repo keeps the wire behavior inspectable.

package httpx

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Handler answers one request: status code, extra headers (may be
// nil), and the body. The server adds content-length and
// connection: close itself.
type Handler func(req *Request) (status int, header map[string]string, body []byte)

// Mux routes requests to handlers by exact target path (any query
// string is ignored). Safe for concurrent use.
type Mux struct {
	mu     sync.RWMutex
	routes map[string]Handler
}

// NewMux returns an empty mux.
func NewMux() *Mux { return &Mux{routes: make(map[string]Handler)} }

// Handle registers h for the exact path (e.g. "/healthz").
func (m *Mux) Handle(path string, h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.routes[path] = h
}

func (m *Mux) lookup(target string) (Handler, bool) {
	if i := strings.IndexByte(target, '?'); i >= 0 {
		target = target[:i]
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	h, ok := m.routes[target]
	return h, ok
}

// JSONHandler serves whatever fn returns, marshaled as indented JSON —
// the /debug/vars idiom for live counters. fn runs per request, so it
// can snapshot atomics.
func JSONHandler(fn func() any) Handler {
	return func(*Request) (int, map[string]string, []byte) {
		b, err := json.MarshalIndent(fn(), "", "  ")
		if err != nil {
			return 500, nil, []byte(err.Error() + "\n")
		}
		return 200, map[string]string{"content-type": "application/json"}, append(b, '\n')
	}
}

// TextHandler serves a fixed plain-text body.
func TextHandler(body string) Handler {
	return func(*Request) (int, map[string]string, []byte) {
		return 200, map[string]string{"content-type": "text/plain"}, []byte(body)
	}
}

// PromHandler serves whatever fn returns as Prometheus text exposition
// format (the /metrics idiom). fn runs per request, so it renders live
// state.
func PromHandler(fn func() []byte) Handler {
	return func(*Request) (int, map[string]string, []byte) {
		return 200, map[string]string{"content-type": "text/plain; version=0.0.4; charset=utf-8"}, fn()
	}
}

// NewVarsMux returns a mux preloaded with the standard introspection
// endpoints and no checks (unconditionally healthy). Daemons with real
// readiness state should use NewReadyMux instead.
func NewVarsMux(vars func() any) *Mux {
	return NewReadyMux(vars, nil)
}

// StatusText returns the reason phrase for the status codes the server
// emits.
func StatusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 405:
		return "Method Not Allowed"
	case 500:
		return "Internal Server Error"
	case 503:
		return "Service Unavailable"
	default:
		return "Status"
	}
}

// DefaultGrace bounds how long shutdown waits for in-flight handlers
// before force-closing their connections.
const DefaultGrace = 2 * time.Second

// Server serves mux-routed requests with context-driven graceful
// shutdown: when the context is canceled the listener closes
// immediately, in-flight handlers get Grace to finish, and whatever
// remains is force-closed.
type Server struct {
	Mux *Mux

	// Grace is the drain window after shutdown begins (DefaultGrace
	// when zero).
	Grace time.Duration

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// Serve listens on addr and serves mux until ctx is canceled, then
// shuts down gracefully. It returns nil after a clean shutdown and the
// listen or accept error otherwise.
func Serve(ctx context.Context, mux *Mux, addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return (&Server{Mux: mux}).ServeListener(ctx, l)
}

// ServeListener serves s.Mux on an existing listener until ctx is
// canceled (the listener is closed either way).
func (s *Server) ServeListener(ctx context.Context, l net.Listener) error {
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			l.Close()
		case <-stop:
		}
	}()

	var wg sync.WaitGroup
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) || ctx.Err() != nil {
				return s.drain(&wg)
			}
			l.Close()
			return err
		}
		s.track(conn, true)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer s.track(conn, false)
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) track(conn net.Conn, add bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if add {
		if s.conns == nil {
			s.conns = make(map[net.Conn]struct{})
		}
		s.conns[conn] = struct{}{}
	} else {
		delete(s.conns, conn)
	}
}

// drain waits up to Grace for in-flight handlers, then force-closes
// the connections still open and waits for their goroutines to exit so
// the caller never races a handler writing to a dead socket.
func (s *Server) drain(wg *sync.WaitGroup) error {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	grace := s.Grace
	if grace <= 0 {
		grace = DefaultGrace
	}
	timer := time.NewTimer(grace)
	defer timer.Stop()
	select {
	case <-done:
		return nil
	case <-timer.C:
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	<-done
	return nil
}

func (s *Server) serveConn(conn net.Conn) {
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	req, err := ReadRequest(bufio.NewReader(conn))
	if err != nil {
		return
	}
	status, extra, body := s.respond(req)
	header := map[string]string{
		"content-length": strconv.Itoa(len(body)),
		"connection":     "close",
	}
	for k, v := range extra {
		header[strings.ToLower(k)] = v
	}
	if err := WriteResponseHead(conn, status, StatusText(status), header); err != nil {
		return
	}
	conn.Write(body)
}

func (s *Server) respond(req *Request) (int, map[string]string, []byte) {
	if req.Method != "GET" {
		return 405, nil, []byte("method not allowed\n")
	}
	h, ok := s.Mux.lookup(req.Target)
	if !ok {
		return 404, nil, []byte("not found\n")
	}
	return h(req)
}
