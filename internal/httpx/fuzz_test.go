package httpx

import (
	"bufio"
	"strings"
	"testing"
)

// The fuzz targets double as robustness tests: the codec must never
// panic on arbitrary bytes, and accepted messages must satisfy basic
// invariants. `go test` runs the seed corpus; `go test -fuzz=FuzzX`
// explores further.

func FuzzReadRequest(f *testing.F) {
	f.Add("GET / HTTP/1.1\r\nhost: h\r\n\r\n")
	f.Add("GET http://a/b HTTP/1.0\r\n\r\n")
	f.Add("HEAD /x HTTP/1.1\r\nrange: bytes=0-99\r\n\r\n")
	f.Add("")
	f.Add("\r\n\r\n")
	f.Add("GET")
	f.Add("GET / HTTP/1.1\r\n: novalue\r\n\r\n")
	f.Add(strings.Repeat("A", 9000))
	f.Fuzz(func(t *testing.T, raw string) {
		req, err := ReadRequest(bufio.NewReader(strings.NewReader(raw)))
		if err != nil {
			return
		}
		if req.Method == "" || req.Target == "" {
			t.Fatalf("accepted request with empty method/target: %+v", req)
		}
		for k := range req.Header {
			if strings.ContainsAny(k, " \r\n") || k != strings.ToLower(k) {
				t.Fatalf("header key %q not canonical", k)
			}
		}
	})
}

func FuzzReadResponse(f *testing.F) {
	f.Add("HTTP/1.1 200 OK\r\ncontent-length: 5\r\n\r\nhello")
	f.Add("HTTP/1.1 404 Not Found\r\n\r\n")
	f.Add("HTTP/1.1 206\r\ncontent-range: bytes 0-4/10\r\n\r\n")
	f.Add("garbage")
	f.Add("HTTP/1.1 99999999999999999999 X\r\n\r\n")
	f.Fuzz(func(t *testing.T, raw string) {
		resp, err := ReadResponse(bufio.NewReader(strings.NewReader(raw)))
		if err != nil {
			return
		}
		if resp.ContentLength < -1 {
			t.Fatalf("negative content length accepted: %d", resp.ContentLength)
		}
	})
}

func FuzzParseRange(f *testing.F) {
	f.Add("bytes=0-99", int64(1000))
	f.Add("bytes=-50", int64(1000))
	f.Add("bytes=500-", int64(1000))
	f.Add("", int64(10))
	f.Add("bytes=9999999999999999999-", int64(5))
	f.Add("bytes=--", int64(5))
	f.Fuzz(func(t *testing.T, h string, size int64) {
		if size < 0 {
			size = -size
		}
		if size == 0 {
			size = 1
		}
		off, n, err := ParseRange(h, size)
		if err != nil {
			return
		}
		if off < 0 || n < 0 || off+n > size {
			t.Fatalf("ParseRange(%q, %d) accepted out-of-bounds [%d, %d)", h, size, off, off+n)
		}
	})
}
