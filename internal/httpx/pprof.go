// Profiling endpoint for the daemons. This is the one place the repo
// uses net/http: the pprof handlers (goroutine dumps, heap and CPU
// profiles) are not worth hand-rolling, and they live on their own
// listener — opt-in via each daemon's -pprof flag — so the measurement
// path still speaks only the package codec.

package httpx

import (
	"context"
	"errors"
	"net/http"
	"net/http/pprof"
	"time"
)

// ServePprof serves the stdlib pprof handlers (/debug/pprof/...) on addr
// until ctx is canceled, then shuts the listener down. It returns nil
// after a clean shutdown.
func ServePprof(ctx context.Context, addr string) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Addr: addr, Handler: mux}
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(sctx)
		case <-done:
		}
	}()
	err := srv.ListenAndServe()
	close(done)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}
