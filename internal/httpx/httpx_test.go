package httpx

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestRequestRoundTrip(t *testing.T) {
	req := NewGet("/obj.bin", "origin.example:80")
	req.SetRange(100, 50)
	var buf bytes.Buffer
	if err := req.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != "GET" || got.Target != "/obj.bin" {
		t.Fatalf("parsed %+v", got)
	}
	if got.Header["range"] != "bytes=100-149" {
		t.Fatalf("range header = %q", got.Header["range"])
	}
	if got.Header["host"] != "origin.example:80" {
		t.Fatalf("host header = %q", got.Header["host"])
	}
}

func TestAbsoluteTarget(t *testing.T) {
	req := NewGet("http://origin:8080/obj", "origin:8080")
	host, path, ok := req.AbsoluteTarget()
	if !ok || host != "origin:8080" || path != "/obj" {
		t.Fatalf("got %q %q %v", host, path, ok)
	}
	req2 := NewGet("/obj", "h")
	if _, _, ok := req2.AbsoluteTarget(); ok {
		t.Fatal("origin-form flagged as absolute")
	}
	req3 := NewGet("http://bare-host", "bare-host")
	host, path, ok = req3.AbsoluteTarget()
	if !ok || host != "bare-host" || path != "/" {
		t.Fatalf("bare host: %q %q %v", host, path, ok)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	err := WriteResponseHead(&buf, 206, "Partial Content", map[string]string{
		"content-length": "5",
		"content-range":  ContentRange(10, 5, 100),
	})
	if err != nil {
		t.Fatal(err)
	}
	buf.WriteString("hello")
	resp, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 206 || resp.ContentLength != 5 {
		t.Fatalf("resp %+v", resp)
	}
	if resp.Header["content-range"] != "bytes 10-14/100" {
		t.Fatalf("content-range %q", resp.Header["content-range"])
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil || string(body) != "hello" {
		t.Fatalf("body %q err %v", body, err)
	}
}

func TestReadResponseNoLength(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\n\r\nrest"
	resp, err := ReadResponse(bufio.NewReader(strings.NewReader(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.ContentLength != -1 {
		t.Fatalf("content length = %d, want -1", resp.ContentLength)
	}
}

func TestReadRequestMalformed(t *testing.T) {
	cases := []string{
		"GARBAGE\r\n\r\n",
		"GET /x\r\n\r\n",
		"GET /x SPDY/9\r\n\r\n",
		"GET /x HTTP/1.1\r\nbadheader\r\n\r\n",
	}
	for _, c := range cases {
		if _, err := ReadRequest(bufio.NewReader(strings.NewReader(c))); err == nil {
			t.Errorf("accepted malformed request %q", c)
		}
	}
}

func TestReadResponseMalformed(t *testing.T) {
	cases := []string{
		"NOPE\r\n\r\n",
		"HTTP/1.1 abc OK\r\n\r\n",
		"HTTP/1.1 200 OK\r\ncontent-length: -3\r\n\r\n",
		"HTTP/1.1 200 OK\r\ncontent-length: xyz\r\n\r\n",
	}
	for _, c := range cases {
		if _, err := ReadResponse(bufio.NewReader(strings.NewReader(c))); err == nil {
			t.Errorf("accepted malformed response %q", c)
		}
	}
}

func TestParseRange(t *testing.T) {
	cases := []struct {
		h        string
		off, n   int64
		wantErr  bool
		unsatErr bool
	}{
		{"", 0, 1000, false, false},
		{"bytes=0-99", 0, 100, false, false},
		{"bytes=100-149", 100, 50, false, false},
		{"bytes=900-", 900, 100, false, false},
		{"bytes=900-5000", 900, 100, false, false}, // clamp to end
		{"bytes=-100", 900, 100, false, false},     // suffix
		{"bytes=-5000", 0, 1000, false, false},     // suffix clamp
		{"bytes=1000-", 0, 0, true, true},          // past end
		{"bytes=5-2", 0, 0, true, false},
		{"bytes=a-b", 0, 0, true, false},
		{"bytes=0-5,10-20", 0, 0, true, false}, // multi-range unsupported
		{"bits=0-5", 0, 0, true, false},
		{"bytes=-", 0, 0, true, false},
	}
	for _, c := range cases {
		off, n, err := ParseRange(c.h, 1000)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseRange(%q): no error", c.h)
			}
			if c.unsatErr && !errors.Is(err, ErrUnsatisfiable) {
				t.Errorf("ParseRange(%q): err = %v, want unsatisfiable", c.h, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseRange(%q): %v", c.h, err)
			continue
		}
		if off != c.off || n != c.n {
			t.Errorf("ParseRange(%q) = (%d,%d), want (%d,%d)", c.h, off, n, c.off, c.n)
		}
	}
}

func TestParseRangeSetRangeInverse(t *testing.T) {
	// SetRange followed by ParseRange must recover (off, n) whenever the
	// range is valid for the object.
	f := func(offRaw, nRaw uint16) bool {
		size := int64(100_000)
		off := int64(offRaw) % size
		n := int64(nRaw)%(size-off) + 1
		req := NewGet("/o", "h")
		req.SetRange(off, n)
		gotOff, gotN, err := ParseRange(req.Header["range"], size)
		return err == nil && gotOff == off && gotN == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestContentRange(t *testing.T) {
	if got := ContentRange(0, 10, 100); got != "bytes 0-9/100" {
		t.Fatalf("got %q", got)
	}
}

func TestHeaderLimits(t *testing.T) {
	var b strings.Builder
	b.WriteString("GET / HTTP/1.1\r\n")
	for i := 0; i < 100; i++ {
		b.WriteString("x-h-" + strings.Repeat("a", i%30) + string(rune('a'+i%26)) + ": v\r\n")
	}
	b.WriteString("\r\n")
	if _, err := ReadRequest(bufio.NewReader(strings.NewReader(b.String()))); err == nil {
		t.Fatal("accepted over-long header block")
	}
}
