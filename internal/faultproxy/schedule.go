// Package faultproxy is a fault-injecting TCP proxy for the loopback
// testbed: it splices client connections to a fixed upstream and applies
// a scripted fault schedule — partitions, mid-stream resets, slow-loris
// stalls, bandwidth throttling, corrupted byte ranges — per connection
// and per phase of the exchange. It is the live-network counterpart of
// simnet's packet-level fault layer: where the simulator models loss as
// fluid efficiency, the proxy makes a real client/relay/origin stack
// experience the same pathologies over real sockets.
//
// Faults are scripted with a line-oriented schedule DSL so chaos
// scenarios are data, not code:
//
//	conn=* phase=dial refuse            # partition: every dial dies
//	conn=2 phase=headers stall=2s       # slow-loris before first byte
//	conn=3 phase=body@4096 reset        # RST mid-body after 4 KB
//	conn=4 phase=body@0 throttle=65536  # cap at 64 KB/s from byte 0
//	conn=5 phase=body@1024 corrupt=16   # flip 16 bytes at offset 1024
//
// Phases anchor where in the exchange a rule arms: "dial" at accept
// time, "headers" before the first upstream byte is forwarded to the
// client, and "body@N" once N bytes of the upstream→client stream have
// been forwarded. (The proxy is L4: "headers" is simply offset zero of
// the server's response stream, which for the testbed's HTTP subset is
// exactly the response head.)
package faultproxy

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Action is what a rule does when its phase triggers.
type Action uint8

// Actions, in canonical serialization order.
const (
	// ActionReset severs the client side with an RST (SO_LINGER 0).
	ActionReset Action = iota
	// ActionClose half-closes cleanly with a FIN.
	ActionClose
	// ActionRefuse closes the accepted connection before dialing
	// upstream; only meaningful in the dial phase.
	ActionRefuse
	// ActionStall pauses forwarding for Dur (a slow-loris pause); Dur 0
	// stalls until the connection dies.
	ActionStall
	// ActionThrottle caps the upstream→client stream at Rate bytes/sec
	// from the trigger point on.
	ActionThrottle
	// ActionCorrupt XORs the next Len forwarded bytes with 0xFF.
	ActionCorrupt
	// ActionBlackhole keeps the connection open but forwards nothing
	// further: bytes vanish, the peer just waits.
	ActionBlackhole
)

func (a Action) String() string {
	switch a {
	case ActionReset:
		return "reset"
	case ActionClose:
		return "close"
	case ActionRefuse:
		return "refuse"
	case ActionStall:
		return "stall"
	case ActionThrottle:
		return "throttle"
	case ActionCorrupt:
		return "corrupt"
	case ActionBlackhole:
		return "blackhole"
	}
	return "unknown"
}

// Phase anchors when a rule triggers within a connection's lifetime.
type Phase uint8

// Phases, in exchange order.
const (
	PhaseDial    Phase = iota // at accept, before the upstream dial
	PhaseHeaders              // before the first upstream byte is forwarded
	PhaseBody                 // after Rule.After upstream bytes forwarded
)

// Rule is one scripted fault.
type Rule struct {
	// Conn selects the 1-based accepted-connection index the rule
	// applies to; 0 means every connection.
	Conn int
	// Phase anchors the trigger; After is the body offset for PhaseBody.
	Phase Phase
	After int64
	// Action is what happens, with its argument in the matching field.
	Action Action
	Dur    time.Duration // ActionStall
	Rate   float64       // ActionThrottle, bytes/sec
	Len    int64         // ActionCorrupt
}

// Schedule is an ordered rule list. Within one connection, rules trigger
// in stream order (dial, then headers, then body offsets ascending as
// the stream crosses them); rules at the same offset apply in list
// order.
type Schedule struct {
	Rules []Rule
}

// forConn returns the rules applying to the idx-th accepted connection.
func (s *Schedule) forConn(idx int64) []Rule {
	if s == nil {
		return nil
	}
	var out []Rule
	for _, r := range s.Rules {
		if r.Conn == 0 || int64(r.Conn) == idx {
			out = append(out, r)
		}
	}
	return out
}

// String renders the schedule in canonical DSL form: one rule per line,
// fields in fixed order, body phases always carrying their @offset.
// ParseSchedule(s.String()) reproduces s exactly, and the canonical form
// is a fixed point — the round-trip invariant the fuzz target checks.
func (s *Schedule) String() string {
	var b strings.Builder
	for _, r := range s.Rules {
		if r.Conn == 0 {
			b.WriteString("conn=*")
		} else {
			fmt.Fprintf(&b, "conn=%d", r.Conn)
		}
		switch r.Phase {
		case PhaseDial:
			b.WriteString(" phase=dial")
		case PhaseHeaders:
			b.WriteString(" phase=headers")
		case PhaseBody:
			fmt.Fprintf(&b, " phase=body@%d", r.After)
		}
		switch r.Action {
		case ActionStall:
			fmt.Fprintf(&b, " stall=%s", r.Dur)
		case ActionThrottle:
			fmt.Fprintf(&b, " throttle=%s", strconv.FormatFloat(r.Rate, 'g', -1, 64))
		case ActionCorrupt:
			fmt.Fprintf(&b, " corrupt=%d", r.Len)
		default:
			b.WriteString(" " + r.Action.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ParseSchedule parses the DSL: one rule per line, `conn=<n|*>
// phase=<dial|headers|body[@off]> <action>[=<arg>]`, with blank lines
// and #-comments skipped. Any malformed line fails the whole parse with
// a line-numbered error; garbage never panics.
func ParseSchedule(text string) (*Schedule, error) {
	s := &Schedule{}
	for ln, line := range strings.Split(text, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		r, err := parseRule(fields)
		if err != nil {
			return nil, fmt.Errorf("faultproxy: line %d: %w", ln+1, err)
		}
		s.Rules = append(s.Rules, r)
	}
	return s, nil
}

func parseRule(fields []string) (Rule, error) {
	var r Rule
	if len(fields) != 3 {
		return r, fmt.Errorf("want 3 fields (conn= phase= action), got %d", len(fields))
	}

	connArg, ok := strings.CutPrefix(fields[0], "conn=")
	if !ok {
		return r, fmt.Errorf("first field must be conn=, got %q", fields[0])
	}
	if connArg == "*" {
		r.Conn = 0
	} else {
		n, err := strconv.Atoi(connArg)
		if err != nil || n < 1 {
			return r, fmt.Errorf("conn must be * or a positive index, got %q", connArg)
		}
		r.Conn = n
	}

	phaseArg, ok := strings.CutPrefix(fields[1], "phase=")
	if !ok {
		return r, fmt.Errorf("second field must be phase=, got %q", fields[1])
	}
	switch {
	case phaseArg == "dial":
		r.Phase = PhaseDial
	case phaseArg == "headers":
		r.Phase = PhaseHeaders
	case phaseArg == "body" || strings.HasPrefix(phaseArg, "body@"):
		r.Phase = PhaseBody
		if off, ok := strings.CutPrefix(phaseArg, "body@"); ok {
			n, err := strconv.ParseInt(off, 10, 64)
			if err != nil || n < 0 {
				return r, fmt.Errorf("body offset must be a non-negative integer, got %q", off)
			}
			r.After = n
		}
	default:
		return r, fmt.Errorf("unknown phase %q", phaseArg)
	}

	action, arg, hasArg := strings.Cut(fields[2], "=")
	switch action {
	case "reset", "close", "refuse", "blackhole":
		if hasArg {
			return r, fmt.Errorf("%s takes no argument", action)
		}
		switch action {
		case "reset":
			r.Action = ActionReset
		case "close":
			r.Action = ActionClose
		case "refuse":
			r.Action = ActionRefuse
		case "blackhole":
			r.Action = ActionBlackhole
		}
	case "stall":
		if !hasArg {
			return r, fmt.Errorf("stall needs a duration argument")
		}
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return r, fmt.Errorf("bad stall duration %q", arg)
		}
		r.Action, r.Dur = ActionStall, d
	case "throttle":
		if !hasArg {
			return r, fmt.Errorf("throttle needs a bytes/sec argument")
		}
		rate, err := strconv.ParseFloat(arg, 64)
		if err != nil || math.IsNaN(rate) || rate <= 0 || rate > 1e15 {
			return r, fmt.Errorf("bad throttle rate %q", arg)
		}
		r.Action, r.Rate = ActionThrottle, rate
	case "corrupt":
		if !hasArg {
			return r, fmt.Errorf("corrupt needs a byte-count argument")
		}
		n, err := strconv.ParseInt(arg, 10, 64)
		if err != nil || n < 1 {
			return r, fmt.Errorf("bad corrupt length %q", arg)
		}
		r.Action, r.Len = ActionCorrupt, n
	default:
		return r, fmt.Errorf("unknown action %q", fields[2])
	}

	if r.Action == ActionRefuse && r.Phase != PhaseDial {
		return r, fmt.Errorf("refuse only applies to phase=dial")
	}
	return r, nil
}

// MustParse parses or panics; for schedules written inline in tests.
func MustParse(text string) *Schedule {
	s, err := ParseSchedule(text)
	if err != nil {
		panic(err)
	}
	return s
}
