package faultproxy

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestScheduleRoundTrip(t *testing.T) {
	in := strings.Join([]string{
		"conn=* phase=dial refuse",
		"conn=2 phase=dial stall=1.5s",
		"conn=3 phase=headers stall=2s",
		"conn=4 phase=body@4096 reset",
		"conn=5 phase=body@0 throttle=65536",
		"conn=6 phase=body@1024 corrupt=16",
		"conn=7 phase=body@512 close",
		"conn=8 phase=body@0 blackhole",
	}, "\n")
	s, err := ParseSchedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rules) != 8 {
		t.Fatalf("parsed %d rules, want 8", len(s.Rules))
	}
	if r := s.Rules[1]; r.Conn != 2 || r.Phase != PhaseDial || r.Action != ActionStall || r.Dur != 1500*time.Millisecond {
		t.Fatalf("rule 1 = %+v", r)
	}
	if r := s.Rules[4]; r.Conn != 5 || r.Phase != PhaseBody || r.After != 0 || r.Action != ActionThrottle || r.Rate != 65536 {
		t.Fatalf("rule 4 = %+v", r)
	}

	canon := s.String()
	s2, err := ParseSchedule(canon)
	if err != nil {
		t.Fatalf("canonical form failed to parse: %v\n%s", err, canon)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Fatalf("round trip diverged:\n%+v\n%+v", s, s2)
	}
	if s2.String() != canon {
		t.Fatalf("canonical form is not a fixed point:\n%q\n%q", canon, s2.String())
	}
}

func TestScheduleCommentsAndBlanks(t *testing.T) {
	s, err := ParseSchedule("# a partition\n\nconn=* phase=dial refuse # every dial\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rules) != 1 || s.Rules[0].Action != ActionRefuse {
		t.Fatalf("parsed %+v", s.Rules)
	}
}

func TestScheduleBodyWithoutOffset(t *testing.T) {
	s, err := ParseSchedule("conn=1 phase=body reset")
	if err != nil {
		t.Fatal(err)
	}
	if s.Rules[0].After != 0 {
		t.Fatalf("After = %d, want 0", s.Rules[0].After)
	}
	if got := s.String(); got != "conn=1 phase=body@0 reset\n" {
		t.Fatalf("canonical form %q", got)
	}
}

func TestScheduleGarbage(t *testing.T) {
	bad := []string{
		"reset",
		"conn=x phase=dial reset",
		"conn=0 phase=dial reset",
		"conn=-3 phase=dial reset",
		"conn=1 phase=nope reset",
		"conn=1 phase=body@-1 reset",
		"conn=1 phase=body@zz reset",
		"conn=1 phase=dial explode",
		"conn=1 phase=dial reset=now",
		"conn=1 phase=dial stall",
		"conn=1 phase=dial stall=fast",
		"conn=1 phase=dial stall=-2s",
		"conn=1 phase=body@0 throttle=0",
		"conn=1 phase=body@0 throttle=-5",
		"conn=1 phase=body@0 throttle=NaN",
		"conn=1 phase=body@0 throttle=+Inf",
		"conn=1 phase=body@0 corrupt=0",
		"conn=1 phase=body@0 corrupt=many",
		"conn=1 phase=body@0 refuse",
		"phase=dial conn=1 reset",
		"conn=1 phase=dial reset extra",
	}
	for _, in := range bad {
		if s, err := ParseSchedule(in); err == nil {
			t.Errorf("ParseSchedule(%q) = %+v, want error", in, s.Rules)
		}
	}
}

// FuzzParseSchedule checks the parser's crash-freedom on garbage and the
// round-trip invariant on anything it accepts: the canonical rendering
// must re-parse to an identical schedule and be a serialization fixed
// point.
func FuzzParseSchedule(f *testing.F) {
	f.Add("conn=* phase=dial refuse")
	f.Add("conn=2 phase=headers stall=2s")
	f.Add("conn=3 phase=body@4096 reset\nconn=3 phase=body@8192 close")
	f.Add("conn=5 phase=body@0 throttle=65536")
	f.Add("conn=6 phase=body@1024 corrupt=16")
	f.Add("# comment\n\nconn=1 phase=body blackhole")
	f.Add("conn=1 phase=dial stall=1h2m3.5s")
	f.Add("conn=9999999 phase=body@9223372036854775807 corrupt=9223372036854775807")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseSchedule(in)
		if err != nil {
			return
		}
		canon := s.String()
		s2, err := ParseSchedule(canon)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\n%q", err, canon)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip diverged for %q:\n%+v\n%+v", in, s, s2)
		}
		if c2 := s2.String(); c2 != canon {
			t.Fatalf("canonical form not a fixed point: %q vs %q", canon, c2)
		}
	})
}
