package faultproxy

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/shaper"
)

// Proxy is the fault-injecting splice. One Proxy fronts one upstream
// address; every accepted connection is numbered in accept order (the
// schedule's conn= index), spliced to the upstream, and run through the
// connection's matching rules. The schedule and the partition switch are
// swappable at runtime, so a chaos scenario can change the weather while
// connections are live.
type Proxy struct {
	target string
	l      net.Listener

	sched       atomic.Pointer[Schedule]
	partitioned atomic.Bool
	seq         atomic.Int64

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// Listen starts a proxy on addr (use "127.0.0.1:0" for an ephemeral
// port) forwarding to target.
func Listen(addr, target string) (*Proxy, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{target: target, l: l, conns: make(map[net.Conn]struct{})}
	go p.serve()
	return p, nil
}

// Addr returns the proxy's listen address — what clients dial in place
// of the upstream.
func (p *Proxy) Addr() string { return p.l.Addr().String() }

// Accepted returns how many connections the proxy has accepted; the
// next connection gets index Accepted()+1.
func (p *Proxy) Accepted() int64 { return p.seq.Load() }

// SetSchedule installs a fault schedule; nil clears it. Connections
// already in flight keep the rule set they started with.
func (p *Proxy) SetSchedule(s *Schedule) { p.sched.Store(s) }

// SetPartitioned flips the partition switch: while set, new connections
// are reset at accept and every live spliced connection is severed. The
// listener stays open — a partitioned path looks like dials that die,
// not an address that vanished — and clearing the switch heals the path
// for subsequent connections.
func (p *Proxy) SetPartitioned(v bool) {
	p.partitioned.Store(v)
	if v {
		p.Sever()
	}
}

// Partitioned reports the switch state.
func (p *Proxy) Partitioned() bool { return p.partitioned.Load() }

// Sever resets every live connection (both sides of every splice)
// without touching the listener: the between-requests kill that turns
// pooled keep-alive connections stale.
func (p *Proxy) Sever() {
	p.mu.Lock()
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		rst(c)
	}
}

// Flap toggles the partition switch on a cycle — down for down, then up
// for up, repeating — until the returned stop function is called. This
// is the flapping-relay fault class: the path heals and fails faster
// than a damped health monitor should chase.
func (p *Proxy) Flap(up, down time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		for {
			p.SetPartitioned(true)
			select {
			case <-done:
				return
			case <-time.After(down):
			}
			p.SetPartitioned(false)
			select {
			case <-done:
				return
			case <-time.After(up):
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done); p.SetPartitioned(false) }) }
}

// Close shuts the listener and severs all live connections.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	err := p.l.Close()
	p.Sever()
	return err
}

func (p *Proxy) serve() {
	for {
		client, err := p.l.Accept()
		if err != nil {
			return
		}
		idx := p.seq.Add(1)
		go p.handle(client, idx)
	}
}

// track registers a connection for Sever/Close; it reports false (and
// resets the connection) if the proxy is already closed.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		rst(c)
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) handle(client net.Conn, idx int64) {
	defer client.Close()
	rules := p.sched.Load().forConn(idx)

	// Dial phase: partition and dial-anchored rules run before any
	// upstream contact.
	if p.partitioned.Load() {
		rst(client)
		return
	}
	for _, r := range rules {
		if r.Phase != PhaseDial {
			continue
		}
		switch r.Action {
		case ActionRefuse, ActionClose:
			return
		case ActionReset:
			rst(client)
			return
		case ActionStall:
			if !sleepOrClosed(client, r.Dur) {
				return
			}
		case ActionBlackhole:
			// Never dial; hold the accepted conn open until the client
			// gives up.
			waitClosed(client)
			return
		}
	}

	upstream, err := net.Dial("tcp", p.target)
	if err != nil {
		rst(client)
		return
	}
	defer upstream.Close()
	if !p.track(client) || !p.track(upstream) {
		return
	}
	defer p.untrack(client)
	defer p.untrack(upstream)

	// Client→upstream is a plain splice; the scripted faults live on the
	// response stream, where the testbed's interesting bytes flow.
	go func() {
		io.Copy(upstream, client)
		// Half-close so a request-streaming upstream sees EOF, but leave
		// the response stream alone.
		if tc, ok := upstream.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()

	p.pumpDown(client, upstream, rules)
}

// pumpDown forwards the upstream→client stream, applying headers- and
// body-phase rules at their exact byte offsets: a chunk straddling a
// trigger offset is split so corruption and kills land on the scripted
// byte, not the nearest read boundary.
func (p *Proxy) pumpDown(client, upstream net.Conn, rules []Rule) {
	fired := make([]bool, len(rules))
	var (
		off        int64
		bucket     *shaper.Bucket
		corruptRem int64
		blackhole  bool
	)
	buf := make([]byte, 16<<10)
	for {
		nr, rerr := upstream.Read(buf)
		chunk := buf[:nr]
		for len(chunk) > 0 {
			// Fire every rule triggering at the current offset; find the
			// next pending trigger inside this chunk.
			next := int64(len(chunk))
			for i, r := range rules {
				if fired[i] {
					continue
				}
				var at int64
				switch r.Phase {
				case PhaseHeaders:
					at = 0
				case PhaseBody:
					at = r.After
				default:
					fired[i] = true
					continue
				}
				rel := at - off
				if rel > 0 {
					if rel < next {
						next = rel
					}
					continue
				}
				fired[i] = true
				switch r.Action {
				case ActionReset:
					rst(client)
					return
				case ActionClose:
					return
				case ActionStall:
					if !sleepOrClosed(client, r.Dur) {
						return
					}
				case ActionThrottle:
					// Small burst so even one buffer can't bypass the cap.
					bucket = shaper.NewBucket(r.Rate, 4<<10)
				case ActionCorrupt:
					corruptRem = r.Len
				case ActionBlackhole:
					blackhole = true
				}
			}

			seg := chunk
			if int64(len(seg)) > next {
				seg = seg[:next]
			}
			if corruptRem > 0 {
				n := int64(len(seg))
				if n > corruptRem {
					n = corruptRem
				}
				for i := int64(0); i < n; i++ {
					seg[i] ^= 0xff
				}
				corruptRem -= n
			}
			if blackhole {
				// Keep consuming upstream so nothing resets; deliver
				// nothing.
				off += int64(len(seg))
				chunk = chunk[len(seg):]
				continue
			}
			if bucket != nil {
				bucket.Take(len(seg))
			}
			nw, werr := client.Write(seg)
			off += int64(nw)
			if werr != nil {
				return
			}
			chunk = chunk[len(seg):]
		}
		if rerr != nil {
			if blackhole {
				// The upstream is done, but a blackholed connection must
				// not close — the whole point is that the client sees
				// silence, not an EOF, until its own deadline fires.
				waitClosed(client)
			}
			return
		}
	}
}

// rst severs a connection with an RST rather than a FIN, so the peer
// sees a hard transport failure (connection reset) instead of a clean
// close.
func rst(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

// sleepOrClosed pauses for d (forever when d == 0), returning false if
// the watched connection died first.
func sleepOrClosed(c net.Conn, d time.Duration) bool {
	if d == 0 {
		waitClosed(c)
		return false
	}
	time.Sleep(d)
	return true
}

// waitClosed blocks until the peer closes or resets the connection, by
// reading (and discarding) whatever arrives.
func waitClosed(c net.Conn) {
	io.Copy(io.Discard, c)
}
