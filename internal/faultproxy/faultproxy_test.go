package faultproxy

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// payloadServer is a minimal upstream: every accepted connection
// receives the same deterministic payload, then a clean close.
func payloadServer(t *testing.T, n int) (addr string, payload []byte) {
	t.Helper()
	payload = make([]byte, n)
	for i := range payload {
		payload[i] = byte(i*31 + 7)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				c.Write(payload)
			}(c)
		}
	}()
	return l.Addr().String(), payload
}

func newProxy(t *testing.T, target, schedule string) *Proxy {
	t.Helper()
	p, err := Listen("127.0.0.1:0", target)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	if schedule != "" {
		p.SetSchedule(MustParse(schedule))
	}
	return p
}

// fetch dials the proxy and reads until EOF/error, with a hard deadline
// so no fault class can wedge the test itself.
func fetch(t *testing.T, addr string, deadline time.Duration) ([]byte, error) {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(deadline))
	var buf bytes.Buffer
	_, err = io.Copy(&buf, c)
	return buf.Bytes(), err
}

func TestProxyCleanPassThrough(t *testing.T) {
	origin, payload := payloadServer(t, 8<<10)
	p := newProxy(t, origin, "")
	got, err := fetch(t, p.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted through clean proxy (%d bytes)", len(got))
	}
}

func TestProxyMidStreamReset(t *testing.T) {
	origin, payload := payloadServer(t, 8<<10)
	// The stall before the reset gives the client time to drain the first
	// kilobyte: an RST discards undelivered data in the receive queue, so
	// without it the delivered count would race the reset. Same-offset
	// rules apply in list order.
	p := newProxy(t, origin, "conn=* phase=body@1024 stall=200ms\nconn=* phase=body@1024 reset")
	got, err := fetch(t, p.Addr(), 5*time.Second)
	if err == nil {
		t.Fatalf("read %d bytes with no error, want a reset", len(got))
	}
	if len(got) != 1024 {
		t.Fatalf("delivered %d bytes before the reset, want exactly 1024", len(got))
	}
	if !bytes.Equal(got, payload[:1024]) {
		t.Fatal("bytes before the reset were corrupted")
	}
}

func TestProxyMidStreamClose(t *testing.T) {
	origin, payload := payloadServer(t, 8<<10)
	p := newProxy(t, origin, "conn=* phase=body@512 close")
	got, err := fetch(t, p.Addr(), 5*time.Second)
	if err != nil {
		t.Fatalf("clean close surfaced as %v", err)
	}
	if len(got) != 512 || !bytes.Equal(got, payload[:512]) {
		t.Fatalf("delivered %d bytes, want the first 512 intact", len(got))
	}
}

func TestProxyCorruptRange(t *testing.T) {
	origin, payload := payloadServer(t, 8<<10)
	p := newProxy(t, origin, "conn=* phase=body@1024 corrupt=16")
	got, err := fetch(t, p.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payload) {
		t.Fatalf("delivered %d bytes, want %d", len(got), len(payload))
	}
	for i := range got {
		want := payload[i]
		if i >= 1024 && i < 1040 {
			want ^= 0xff
		}
		if got[i] != want {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], want)
		}
	}
}

func TestProxyHeaderStall(t *testing.T) {
	origin, payload := payloadServer(t, 1<<10)
	p := newProxy(t, origin, "conn=* phase=headers stall=300ms")
	start := time.Now()
	got, err := fetch(t, p.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 250*time.Millisecond {
		t.Fatalf("first byte after %v, want a ≥300ms stall", elapsed)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted by stall")
	}
}

func TestProxyThrottle(t *testing.T) {
	origin, payload := payloadServer(t, 8<<10)
	p := newProxy(t, origin, "conn=* phase=body@0 throttle=16384")
	start := time.Now()
	got, err := fetch(t, p.Addr(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// 8 KB at 16 KB/s with a 4 KB burst: at least ~250 ms on the wire.
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("throttled transfer finished in %v", elapsed)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted by throttle")
	}
}

func TestProxyBlackhole(t *testing.T) {
	origin, _ := payloadServer(t, 1<<10)
	p := newProxy(t, origin, "conn=* phase=body@0 blackhole")
	got, err := fetch(t, p.Addr(), 300*time.Millisecond)
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("blackholed read returned (%d bytes, %v), want a timeout", len(got), err)
	}
	if len(got) != 0 {
		t.Fatalf("blackhole delivered %d bytes", len(got))
	}
}

func TestProxyPerConnRules(t *testing.T) {
	origin, payload := payloadServer(t, 2<<10)
	p := newProxy(t, origin, "conn=1 phase=dial refuse")
	if got, err := fetch(t, p.Addr(), 2*time.Second); err == nil && len(got) > 0 {
		t.Fatalf("conn 1 should have been refused, got %d bytes", len(got))
	}
	got, err := fetch(t, p.Addr(), 5*time.Second)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("conn 2 should pass clean: %d bytes, %v", len(got), err)
	}
}

func TestProxyPartitionAndHeal(t *testing.T) {
	origin, payload := payloadServer(t, 2<<10)
	p := newProxy(t, origin, "")

	p.SetPartitioned(true)
	if got, err := fetch(t, p.Addr(), 2*time.Second); err == nil && len(got) > 0 {
		t.Fatalf("partitioned fetch delivered %d bytes", len(got))
	}

	p.SetPartitioned(false)
	got, err := fetch(t, p.Addr(), 5*time.Second)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("healed fetch: %d bytes, %v", len(got), err)
	}
}

func TestProxySeverKillsLiveConns(t *testing.T) {
	// A slow origin: write half, pause, write the rest — so Sever lands
	// mid-stream.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				c.Write(make([]byte, 1024))
				time.Sleep(2 * time.Second)
				c.Write(make([]byte, 1024))
			}(c)
		}
	}()
	p := newProxy(t, l.Addr().String(), "")

	errc := make(chan error, 1)
	go func() {
		_, err := fetch(t, p.Addr(), 10*time.Second)
		errc <- err
	}()
	time.Sleep(200 * time.Millisecond) // let the first half arrive
	p.Sever()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("severed transfer completed cleanly")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("severed transfer still hanging")
	}
}
