package shaper

import (
	"io"
	"net"
	"testing"
	"time"
)

func TestBucketRateEnforcement(t *testing.T) {
	// Virtualized clock: inject now/sleep so the test is deterministic
	// and instant.
	var clock time.Duration
	b := NewBucket(1000, 100) // 1000 bytes/sec, 100 burst
	b.now = func() time.Time { return time.Unix(0, int64(clock)) }
	b.sleep = func(d time.Duration) { clock += d }
	b.last = b.now()

	b.Take(100) // burst drains instantly
	if clock != 0 {
		t.Fatalf("burst should not sleep, slept %v", clock)
	}
	b.Take(500) // 500 bytes at 1000 B/s -> 0.5s
	if clock < 450*time.Millisecond || clock > 600*time.Millisecond {
		t.Fatalf("took %v for 500 bytes at 1000 B/s, want ~0.5s", clock)
	}
}

func TestBucketUnlimited(t *testing.T) {
	b := NewBucket(0, 0)
	done := make(chan struct{})
	go func() {
		b.Take(1 << 30)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("unlimited bucket blocked")
	}
	var nilBucket *Bucket
	nilBucket.Take(100) // nil-safe
}

func TestBucketLargerThanBurst(t *testing.T) {
	var clock time.Duration
	b := NewBucket(10000, 100)
	b.now = func() time.Time { return time.Unix(0, int64(clock)) }
	b.sleep = func(d time.Duration) { clock += d }
	b.last = b.now()
	b.Take(1000) // 10x burst: must loop, ~0.09-0.1s
	if clock < 80*time.Millisecond || clock > 150*time.Millisecond {
		t.Fatalf("took %v for 1000 bytes at 10000 B/s", clock)
	}
}

func TestShapedPipeThroughput(t *testing.T) {
	// Real sockets, coarse bounds: a 64 KB transfer at 1 Mb/s (125 kB/s)
	// should take roughly 0.5s (64k - 8k burst at 125 kB/s).
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const size = 64 << 10
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, size)
		c.Write(buf)
	}()

	raw, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn := Shape(raw, PathProfile{DownloadBps: 1e6})
	defer conn.Close()
	start := time.Now()
	n, err := io.ReadFull(conn, make([]byte, size))
	if err != nil || n != size {
		t.Fatalf("read %d err %v", n, err)
	}
	elapsed := time.Since(start)
	// 64 KiB minus 64 KiB burst... burst is 64 KiB so most passes free;
	// effective expectation: at least some shaping and not absurdly slow.
	if elapsed > 3*time.Second {
		t.Fatalf("shaped read took %v, too slow", elapsed)
	}
}

func TestShapedPipeRateBound(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const size = 192 << 10 // 3x burst
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		c.Write(make([]byte, size))
	}()
	raw, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn := Shape(raw, PathProfile{DownloadBps: 4e6}) // 500 kB/s
	defer conn.Close()
	start := time.Now()
	if _, err := io.ReadFull(conn, make([]byte, size)); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start).Seconds()
	// (192-64) KiB beyond burst at 500 kB/s ≈ 0.26s minimum.
	if elapsed < 0.15 {
		t.Fatalf("shaping ineffective: %v s for %d bytes", elapsed, size)
	}
	if elapsed > 3 {
		t.Fatalf("shaping too aggressive: %v s", elapsed)
	}
}

func TestDialerProfiles(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	d := NewDialer()
	d.SetProfile(l.Addr().String(), PathProfile{DownloadBps: 1e6})
	conn, err := d.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := conn.(*Conn); !ok {
		t.Fatal("profiled dial did not shape")
	}
	conn.Close()

	// Second listener without profile passes through unshaped.
	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	go func() {
		c, _ := l2.Accept()
		if c != nil {
			c.Close()
		}
	}()
	conn2, err := d.Dial("tcp", l2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := conn2.(*Conn); ok {
		t.Fatal("unprofiled dial was shaped")
	}
	conn2.Close()
}

func TestLatencyInjection(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		c.Write([]byte("x"))
	}()
	raw, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn := Shape(raw, PathProfile{Latency: 80 * time.Millisecond})
	defer conn.Close()
	start := time.Now()
	if _, err := conn.Read(make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 70*time.Millisecond {
		t.Fatalf("first read took %v, want >= latency", elapsed)
	}
}
