// Package shaper emulates heterogeneous wide-area paths on loopback by
// wrapping net.Conn with a token-bucket rate limiter and optional one-way
// latency injection. The real-network examples and integration tests use
// it to give each relay path a different bandwidth, so the selection
// engine has something real to choose between.
package shaper

import (
	"net"
	"sync"
	"time"
)

// Bucket is a token-bucket rate limiter over bytes. It is safe for
// concurrent use.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens (bytes) per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
	sleep  func(time.Duration)
}

// NewBucket creates a bucket that refills at rate bytes/sec with the given
// burst size. A non-positive rate means unlimited.
func NewBucket(rate float64, burst int) *Bucket {
	b := &Bucket{
		rate:  rate,
		burst: float64(burst),
		now:   time.Now,
		sleep: time.Sleep,
	}
	b.tokens = b.burst
	b.last = b.now()
	return b
}

// Take consumes n tokens, sleeping until the bucket can supply them.
func (b *Bucket) Take(n int) {
	if b == nil || b.rate <= 0 || n <= 0 {
		return
	}
	for n > 0 {
		b.mu.Lock()
		now := b.now()
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		b.last = now
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		grab := float64(n)
		if grab > b.tokens {
			grab = b.tokens
		}
		if grab > 0 {
			b.tokens -= grab
			n -= int(grab)
		}
		var wait time.Duration
		if n > 0 {
			need := float64(n)
			if need > b.burst {
				need = b.burst
			}
			wait = time.Duration((need - b.tokens) / b.rate * float64(time.Second))
		}
		b.mu.Unlock()
		if wait > 0 {
			b.sleep(wait)
		}
	}
}

// Conn wraps a net.Conn, limiting read and write throughput with separate
// buckets and delaying the first byte by Latency (a crude propagation
// model, applied once per direction).
type Conn struct {
	net.Conn
	ReadBucket  *Bucket
	WriteBucket *Bucket
	Latency     time.Duration

	readDelayed, writeDelayed sync.Once
}

// Read applies latency-then-rate shaping to inbound bytes.
func (c *Conn) Read(p []byte) (int, error) {
	c.readDelayed.Do(func() {
		if c.Latency > 0 {
			time.Sleep(c.Latency)
		}
	})
	// Shape in small chunks so rates stay smooth at slow speeds.
	if len(p) > 32<<10 {
		p = p[:32<<10]
	}
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.ReadBucket.Take(n)
	}
	return n, err
}

// Write applies latency-then-rate shaping to outbound bytes.
func (c *Conn) Write(p []byte) (int, error) {
	c.writeDelayed.Do(func() {
		if c.Latency > 0 {
			time.Sleep(c.Latency)
		}
	})
	written := 0
	for written < len(p) {
		chunk := p[written:]
		if len(chunk) > 32<<10 {
			chunk = chunk[:32<<10]
		}
		c.WriteBucket.Take(len(chunk))
		n, err := c.Conn.Write(chunk)
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// PathProfile describes the emulated path for one dial target.
type PathProfile struct {
	DownloadBps float64 // download direction rate, bits/sec (0 = unlimited)
	UploadBps   float64 // upload direction rate, bits/sec (0 = unlimited)
	Latency     time.Duration
}

// Dialer dials TCP and shapes each connection according to the profile
// registered for its target address. Unregistered targets pass through
// unshaped.
type Dialer struct {
	mu       sync.Mutex
	profiles map[string]PathProfile
}

// NewDialer returns an empty Dialer.
func NewDialer() *Dialer {
	return &Dialer{profiles: make(map[string]PathProfile)}
}

// SetProfile registers (or replaces) the profile for addr.
func (d *Dialer) SetProfile(addr string, p PathProfile) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.profiles[addr] = p
}

// Dial connects to addr and applies its profile, if any.
func (d *Dialer) Dial(network, addr string) (net.Conn, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	p, ok := d.profiles[addr]
	d.mu.Unlock()
	if !ok {
		return conn, nil
	}
	return Shape(conn, p), nil
}

// Shape wraps conn with the profile's rate limits and latency. Rates are
// given in bits/sec to match the rest of the system; buckets meter bytes.
func Shape(conn net.Conn, p PathProfile) net.Conn {
	var rb, wb *Bucket
	if p.DownloadBps > 0 {
		rb = NewBucket(p.DownloadBps/8, 64<<10)
	}
	if p.UploadBps > 0 {
		wb = NewBucket(p.UploadBps/8, 64<<10)
	}
	return &Conn{Conn: conn, ReadBucket: rb, WriteBucket: wb, Latency: p.Latency}
}
