package topo

import (
	"repro/internal/randx"
	"repro/internal/simnet"
)

// Instance is one client's view of the network, realized as simnet links
// with stochastic capacity drivers attached. Experiments create one
// Instance per campaign (client × candidate intermediates × servers); the
// paper's client nodes likewise ran independent measurement processes.
type Instance struct {
	Scenario *Scenario
	Client   *Node
	Net      *simnet.Network

	Access    *simnet.Link
	direct    map[string]*simnet.Link // server -> international transit
	overlay   map[string]*simnet.Link // intermediate -> overlay link
	usTransit map[string]*simnet.Link // intermediate -> US transit toward servers
	serverAcc map[string]*simnet.Link // server -> access link

	stops []func()
}

// Instantiate builds the client's links on net, attaching capacity drivers
// seeded from rng. Only the listed intermediates and servers get links, so
// small campaigns stay cheap. The same client can be instantiated many
// times with different RNGs to realize independent measurement days.
func (s *Scenario) Instantiate(net *simnet.Network, rng *randx.RNG, client *Node, servers, inters []*Node) *Instance {
	cn := s.ClientNet(client)
	in := &Instance{
		Scenario:  s,
		Client:    client,
		Net:       net,
		direct:    make(map[string]*simnet.Link),
		overlay:   make(map[string]*simnet.Link),
		usTransit: make(map[string]*simnet.Link),
		serverAcc: make(map[string]*simnet.Link),
	}
	iv := s.P.DriveInterval

	// Client access link: fixed capacity. For shared-bottleneck clients it
	// sits barely above the direct mean, so it throttles indirect paths
	// just like the direct one.
	in.Access = net.NewLink("access/"+client.Name, cn.AccessCapacity, cn.AccessLatency, 1e-5)

	// Direct international transit per server: OU base with regime
	// congestion episodes. This is the paper's "highly variable direct
	// path".
	theta := s.P.DirectTheta
	if cn.DirectTheta > 0 {
		theta = cn.DirectTheta
	}
	for _, sv := range servers {
		mean := cn.DirectMean[sv.Name]
		l := net.NewLink("direct/"+client.Name+"->"+sv.Name, mean, cn.TransitLatency, cn.TransitLoss)
		parts := []randx.Process{
			randx.NewOU(mean, theta, cn.DirectSigma),
			randx.NewRegime(1.0, cn.BusyLevel, cn.QuietHold, cn.BusyHold),
		}
		if s.P.DiurnalAmplitude > 0 {
			phase := 2 * 3.141592653589793 * rng.Fork("phase/"+client.Name).Float64()
			parts = append(parts, &randx.Diurnal{
				Period: 86400, Amplitude: s.P.DiurnalAmplitude, Phase: phase,
			})
		}
		proc := &randx.Product{Parts: parts}
		stop := l.Drive(proc, iv, 1.0, rng.Fork("direct/"+client.Name+"/"+sv.Name))
		in.direct[sv.Name] = l
		in.stops = append(in.stops, stop)
	}

	// Overlay links to each candidate intermediate: stable OU around the
	// pair mean with rare shallow dips (paper §3.3: indirect throughput
	// shows "no discernable uptrend or downtrend", only "a few small
	// jumps").
	for _, inter := range inters {
		mean := s.PairMean(client, inter)
		lat := s.pairLatency[client.Name+"|"+inter.Name]
		l := net.NewLink("overlay/"+client.Name+"->"+inter.Name, mean, lat, 5e-5)
		proc := &randx.Product{Parts: []randx.Process{
			randx.NewOU(mean, 1.0/600, s.P.OverlaySigma),
			// Rare, short collapses: the paper attributes the residual
			// penalties on low-variability clients to indirect-path
			// throughput drops after the route decision is made.
			randx.NewRegime(1.0, 0.35, 7200, 120),
		}}
		stop := l.Drive(proc, iv, 1.0, rng.Fork("overlay/"+client.Name+"/"+inter.Name))
		in.overlay[inter.Name] = l
		in.stops = append(in.stops, stop)

		// US transit from the intermediate toward the servers: fat and
		// calm; never the indirect bottleneck (paper §3.2 argues the
		// client–intermediate hop dominates).
		usMean := (30 + 50*s.InterQuality(inter)) * mbps
		ul := net.NewLink("us/"+inter.Name, usMean, s.interLatency[inter.Name], 1e-5)
		ustop := ul.Drive(randx.NewOU(usMean, 1.0/600, 0.10), iv, 1.0,
			rng.Fork("us/"+client.Name+"/"+inter.Name))
		in.usTransit[inter.Name] = ul
		in.stops = append(in.stops, ustop)
	}

	// Server access links: production sites with ample headroom.
	for _, sv := range servers {
		in.serverAcc[sv.Name] = net.NewLink("server/"+sv.Name, 200*mbps, 0.002, 1e-6)
	}
	return in
}

// DirectPath returns the link sequence of the client's direct path to the
// server. It panics if the server was not instantiated.
func (in *Instance) DirectPath(server *Node) []*simnet.Link {
	d, ok := in.direct[server.Name]
	if !ok {
		panic("topo: server not instantiated: " + server.Name)
	}
	return []*simnet.Link{in.Access, d, in.serverAcc[server.Name]}
}

// IndirectPath returns the link sequence via the given intermediate. It
// panics if the intermediate or server was not instantiated.
func (in *Instance) IndirectPath(inter, server *Node) []*simnet.Link {
	ov, ok := in.overlay[inter.Name]
	if !ok {
		panic("topo: intermediate not instantiated: " + inter.Name)
	}
	sa, ok := in.serverAcc[server.Name]
	if !ok {
		panic("topo: server not instantiated: " + server.Name)
	}
	return []*simnet.Link{in.Access, ov, in.usTransit[inter.Name], sa}
}

// DirectLink exposes the direct transit link for inspection in tests.
func (in *Instance) DirectLink(server *Node) *simnet.Link { return in.direct[server.Name] }

// OverlayLink exposes the overlay link for inspection in tests.
func (in *Instance) OverlayLink(inter *Node) *simnet.Link { return in.overlay[inter.Name] }

// Warmup advances the network by d seconds so the stochastic drivers leave
// their deterministic starting points before measurement begins.
func (in *Instance) Warmup(d float64) { in.Net.Engine().RunFor(d) }

// Close detaches all capacity drivers, letting the engine drain.
func (in *Instance) Close() {
	for _, stop := range in.stops {
		stop()
	}
	in.stops = nil
}
