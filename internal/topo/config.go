package topo

import (
	"encoding/json"
	"fmt"
	"io"
)

// ScenarioConfig is the JSON-loadable form of Params plus optional node
// overrides, so downstream users can model their own deployment instead
// of the paper's PlanetLab set. Zero-valued fields keep the calibrated
// defaults.
//
// Example:
//
//	{
//	  "seed": 7,
//	  "num_intermediates": 12,
//	  "overlay_a": 1.1,
//	  "shared_bottleneck_frac": 0.25,
//	  "clients": [
//	    {"name": "branch-office", "category": "Low"},
//	    {"name": "datacenter", "category": "High"}
//	  ]
//	}
type ScenarioConfig struct {
	Seed                 uint64  `json:"seed"`
	NumIntermediates     int     `json:"num_intermediates,omitempty"`
	OverlayA             float64 `json:"overlay_a,omitempty"`
	OverlayGamma         float64 `json:"overlay_gamma,omitempty"`
	InterQualitySigma    float64 `json:"inter_quality_sigma,omitempty"`
	PairNoiseSigma       float64 `json:"pair_noise_sigma,omitempty"`
	PairCapFactor        float64 `json:"pair_cap_factor,omitempty"`
	DirectTheta          float64 `json:"direct_theta,omitempty"`
	OverlaySigma         float64 `json:"overlay_sigma,omitempty"`
	SharedBottleneckFrac float64 `json:"shared_bottleneck_frac,omitempty"`
	DiurnalAmplitude     float64 `json:"diurnal_amplitude,omitempty"`
	DriveInterval        float64 `json:"drive_interval,omitempty"`

	// Clients, when non-empty, replaces the paper's Table IV client set.
	Clients []NodeConfig `json:"clients,omitempty"`
}

// NodeConfig declares one custom client.
type NodeConfig struct {
	Name     string `json:"name"`
	Domain   string `json:"domain,omitempty"`
	Category string `json:"category"` // "Low", "Medium", or "High"
}

// LoadConfig parses a ScenarioConfig from JSON.
func LoadConfig(r io.Reader) (*ScenarioConfig, error) {
	var c ScenarioConfig
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("topo: bad scenario config: %w", err)
	}
	for i, n := range c.Clients {
		if n.Name == "" {
			return nil, fmt.Errorf("topo: client %d has no name", i)
		}
		if _, err := parseCategory(n.Category); err != nil {
			return nil, fmt.Errorf("topo: client %q: %w", n.Name, err)
		}
	}
	return &c, nil
}

func parseCategory(s string) (Category, error) {
	switch s {
	case "Low":
		return Low, nil
	case "Medium":
		return Medium, nil
	case "High":
		return High, nil
	}
	return 0, fmt.Errorf("unknown category %q (want Low, Medium, or High)", s)
}

// Params converts the config into scenario parameters.
func (c *ScenarioConfig) Params() Params {
	return Params{
		Seed:                 c.Seed,
		NumIntermediates:     c.NumIntermediates,
		OverlayA:             c.OverlayA,
		OverlayGamma:         c.OverlayGamma,
		InterQualitySigma:    c.InterQualitySigma,
		PairNoiseSigma:       c.PairNoiseSigma,
		PairCapFactor:        c.PairCapFactor,
		DirectTheta:          c.DirectTheta,
		OverlaySigma:         c.OverlaySigma,
		SharedBottleneckFrac: c.SharedBottleneckFrac,
		DiurnalAmplitude:     c.DiurnalAmplitude,
		DriveInterval:        c.DriveInterval,
	}
}

// Build constructs the scenario, substituting any custom client set.
func (c *ScenarioConfig) Build() (*Scenario, error) {
	s := NewScenarioWithClients(c.Params(), c.customClients())
	return s, nil
}

func (c *ScenarioConfig) customClients() []clientSpec {
	if len(c.Clients) == 0 {
		return nil
	}
	specs := make([]clientSpec, len(c.Clients))
	for i, n := range c.Clients {
		cat, _ := parseCategory(n.Category) // validated at load time
		domain := n.Domain
		if domain == "" {
			domain = n.Name + ".example.net"
		}
		specs[i] = clientSpec{name: n.Name, domain: domain, cat: cat}
	}
	return specs
}
