package topo

import (
	"math"
	"strings"
	"testing"

	"repro/internal/randx"
	"repro/internal/simnet"
)

func TestScenarioShape(t *testing.T) {
	s := NewScenario(Params{Seed: 1})
	if len(s.Clients) != 22 {
		t.Errorf("clients = %d, want 22 (paper Table IV)", len(s.Clients))
	}
	if len(s.Intermediates) != 21 {
		t.Errorf("intermediates = %d, want 21 (paper Table V)", len(s.Intermediates))
	}
	if len(s.Servers) != 4 {
		t.Errorf("servers = %d, want 4", len(s.Servers))
	}
	if len(s.Sec4Clients) != 3 {
		t.Errorf("sec4 clients = %d, want 3 (Duke, Italy, Sweden)", len(s.Sec4Clients))
	}
}

func TestScenarioFullSet(t *testing.T) {
	s := NewScenario(Params{Seed: 1, NumIntermediates: 35})
	if len(s.Intermediates) != 35 {
		t.Fatalf("intermediates = %d, want 35 (Section 4 full set)", len(s.Intermediates))
	}
}

func TestScenarioTooManyIntermediatesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewScenario(Params{Seed: 1, NumIntermediates: 99})
}

func TestScenarioDeterminism(t *testing.T) {
	a := NewScenario(Params{Seed: 7})
	b := NewScenario(Params{Seed: 7})
	for _, c := range a.Clients {
		ca, cb := a.ClientNet(c), b.ClientNet(b.FindClient(c.Name))
		if ca.DirectMean["eBay"] != cb.DirectMean["eBay"] {
			t.Fatalf("client %s directMean differs across identical scenarios", c.Name)
		}
		if ca.DirectSigma != cb.DirectSigma || ca.Variable != cb.Variable {
			t.Fatalf("client %s personality differs", c.Name)
		}
	}
	for _, in := range a.Intermediates {
		if a.InterQuality(in) != b.InterQuality(b.FindIntermediate(in.Name)) {
			t.Fatalf("intermediate %s quality differs", in.Name)
		}
	}
	pa := a.PairMean(a.Clients[0], a.Intermediates[0])
	pb := b.PairMean(b.Clients[0], b.Intermediates[0])
	if pa != pb {
		t.Fatal("pair mean differs across identical scenarios")
	}
}

func TestScenarioSeedsDiffer(t *testing.T) {
	a := NewScenario(Params{Seed: 1})
	b := NewScenario(Params{Seed: 2})
	same := 0
	for _, c := range a.Clients {
		if a.ClientNet(c).DirectMean["eBay"] == b.ClientNet(b.FindClient(c.Name)).DirectMean["eBay"] {
			same++
		}
	}
	if same == len(a.Clients) {
		t.Fatal("different seeds produced identical client means")
	}
}

func TestCategoryMeansInBand(t *testing.T) {
	s := NewScenario(Params{Seed: 3})
	for _, c := range s.Clients {
		cn := s.ClientNet(c)
		// The base mean (before per-server factors) must respect the
		// category; per-server log-normal factors can stretch it, so
		// check the geometric mean across servers within a loose band.
		gm := 1.0
		n := 0
		for _, m := range cn.DirectMean {
			gm *= m
			n++
		}
		gm = math.Pow(gm, 1/float64(n))
		switch c.Category {
		case Low:
			if gm < 0.2e6 || gm > 2.2e6 {
				t.Errorf("%s (Low): geometric mean %.2f Mb/s out of band", c.Name, gm/1e6)
			}
		case Medium:
			if gm < 1.0e6 || gm > 4.5e6 {
				t.Errorf("%s (Medium): geometric mean %.2f Mb/s out of band", c.Name, gm/1e6)
			}
		case High:
			if gm < 2.2e6 {
				t.Errorf("%s (High): geometric mean %.2f Mb/s too low", c.Name, gm/1e6)
			}
		}
	}
}

func TestOverlaySublinearInClientQuality(t *testing.T) {
	// The calibrated OverlayGamma < 1 means overlay/direct ratio falls as
	// direct mean rises: high-throughput clients gain less (paper §3.3).
	s := NewScenario(Params{Seed: 4})
	var lowRatio, highRatio []float64
	for _, c := range s.Clients {
		cn := s.ClientNet(c)
		gm := 1.0
		for _, m := range cn.DirectMean {
			gm *= m
		}
		gm = math.Pow(gm, 0.25)
		ratio := cn.OverlayBase / gm
		switch c.Category {
		case Low:
			lowRatio = append(lowRatio, ratio)
		case High:
			highRatio = append(highRatio, ratio)
		}
	}
	avg := func(xs []float64) float64 {
		sum := 0.0
		for _, x := range xs {
			sum += x
		}
		return sum / float64(len(xs))
	}
	if len(lowRatio) == 0 || len(highRatio) == 0 {
		t.Fatal("missing category representatives")
	}
	if avg(lowRatio) <= avg(highRatio) {
		t.Fatalf("overlay/direct ratio: Low %.2f <= High %.2f; want Low > High",
			avg(lowRatio), avg(highRatio))
	}
}

func TestInterQualitySpread(t *testing.T) {
	s := NewScenario(Params{Seed: 5, NumIntermediates: 35})
	minQ, maxQ := math.Inf(1), math.Inf(-1)
	for _, in := range s.Intermediates {
		q := s.InterQuality(in)
		if q <= 0 {
			t.Fatalf("quality of %s is %v", in.Name, q)
		}
		minQ = math.Min(minQ, q)
		maxQ = math.Max(maxQ, q)
	}
	if maxQ/minQ < 2 {
		t.Fatalf("intermediate quality spread %.2f too narrow for Table II popularity effects", maxQ/minQ)
	}
}

func TestFindHelpers(t *testing.T) {
	s := NewScenario(Params{Seed: 6})
	if s.FindClient("Iceland") == nil {
		t.Error("FindClient(Iceland) = nil")
	}
	if s.FindClient("Duke (client)") == nil {
		t.Error("FindClient on Section 4 client = nil")
	}
	if s.FindClient("Atlantis") != nil {
		t.Error("FindClient(Atlantis) should be nil")
	}
	if s.FindIntermediate("Texas") == nil {
		t.Error("FindIntermediate(Texas) = nil")
	}
	if s.FindServer("eBay") == nil {
		t.Error("FindServer(eBay) = nil")
	}
	if s.FindServer("AltaVista") != nil {
		t.Error("FindServer(AltaVista) should be nil")
	}
}

func TestUnknownLookupsPanic(t *testing.T) {
	s := NewScenario(Params{Seed: 6})
	ghost := &Node{Name: "Ghost"}
	for name, fn := range map[string]func(){
		"ClientNet":    func() { s.ClientNet(ghost) },
		"InterQuality": func() { s.InterQuality(ghost) },
		"PairMean":     func() { s.PairMean(ghost, ghost) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestInstantiatePaths(t *testing.T) {
	s := NewScenario(Params{Seed: 8})
	eng := simnet.NewEngine()
	net := simnet.NewNetwork(eng)
	client := s.Clients[0]
	server := s.Servers[0]
	inters := s.Intermediates[:3]
	inst := s.Instantiate(net, randx.New(1), client, []*Node{server}, inters)

	dp := inst.DirectPath(server)
	if len(dp) != 3 {
		t.Fatalf("direct path has %d links, want 3", len(dp))
	}
	if dp[0] != inst.Access {
		t.Fatal("direct path must start at the access link")
	}
	ip := inst.IndirectPath(inters[1], server)
	if len(ip) != 4 {
		t.Fatalf("indirect path has %d links, want 4", len(ip))
	}
	if ip[0] != inst.Access {
		t.Fatal("indirect path must start at the access link (shared bottleneck candidate)")
	}
	if ip[len(ip)-1] != dp[len(dp)-1] {
		t.Fatal("both paths must terminate at the server access link")
	}
}

func TestInstantiateDriversVaryCapacity(t *testing.T) {
	s := NewScenario(Params{Seed: 9})
	eng := simnet.NewEngine()
	net := simnet.NewNetwork(eng)
	client := s.Clients[0]
	server := s.Servers[0]
	inst := s.Instantiate(net, randx.New(2), client, []*Node{server}, s.Intermediates[:1])

	direct := inst.DirectLink(server)
	seen := map[float64]bool{}
	for i := 0; i < 50; i++ {
		inst.Warmup(15)
		seen[direct.Capacity()] = true
	}
	if len(seen) < 20 {
		t.Fatalf("direct capacity took %d distinct values over 50 ticks; driver inert?", len(seen))
	}
	inst.Close()
	inst.Warmup(60)
	after := direct.Capacity()
	inst.Warmup(60)
	if direct.Capacity() != after {
		t.Fatal("drivers still running after Close")
	}
}

func TestInstantiateUnknownPathPanics(t *testing.T) {
	s := NewScenario(Params{Seed: 10})
	eng := simnet.NewEngine()
	net := simnet.NewNetwork(eng)
	inst := s.Instantiate(net, randx.New(3), s.Clients[0], []*Node{s.Servers[0]}, s.Intermediates[:1])
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-instantiated server")
		}
	}()
	inst.DirectPath(s.Servers[1])
}

func TestOverlayStabilityVsDirect(t *testing.T) {
	// Sampled over a long horizon, overlay capacity must have a smaller
	// coefficient of variation than direct capacity for a typical
	// variable client — this asymmetry powers the whole paper.
	s := NewScenario(Params{Seed: 11})
	var client *Node
	for _, c := range s.Clients {
		if s.ClientNet(c).Variable {
			client = c
			break
		}
	}
	if client == nil {
		t.Skip("no variable client in this seed")
	}
	eng := simnet.NewEngine()
	net := simnet.NewNetwork(eng)
	server := s.Servers[0]
	inter := s.Intermediates[0]
	inst := s.Instantiate(net, randx.New(4), client, []*Node{server}, []*Node{inter})

	cv := func(l *simnet.Link) float64 {
		var sum, sumSq float64
		const n = 2000
		for i := 0; i < n; i++ {
			inst.Warmup(15)
			c := l.Capacity()
			sum += c
			sumSq += c * c
		}
		mean := sum / n
		return math.Sqrt(sumSq/n-mean*mean) / mean
	}
	cvDirect := cv(inst.DirectLink(server))
	// Re-instantiate to sample overlay over the same horizon shape.
	cvOverlay := cv(inst.OverlayLink(inter))
	if cvOverlay >= cvDirect {
		t.Fatalf("overlay CV %.3f >= direct CV %.3f; want overlay more stable", cvOverlay, cvDirect)
	}
}

func TestDiurnalModulation(t *testing.T) {
	// With a strong diurnal term, direct capacity averaged over opposite
	// half-days must differ; without it, the halves should be similar.
	sample := func(amp float64) (am, pm float64) {
		s := NewScenario(Params{Seed: 21, DiurnalAmplitude: amp})
		eng := simnet.NewEngine()
		net := simnet.NewNetwork(eng)
		inst := s.Instantiate(net, randx.New(9), s.Clients[0], []*Node{s.Servers[0]}, s.Intermediates[:1])
		defer inst.Close()
		link := inst.DirectLink(s.Servers[0])
		var sums [2]float64
		var counts [2]int
		for i := 0; i < 24*4; i++ { // two days, hourly, split by half-day
			inst.Warmup(3600)
			half := (i / 12) % 2
			sums[half] += link.Capacity()
			counts[half]++
		}
		return sums[0] / float64(counts[0]), sums[1] / float64(counts[1])
	}
	am, pm := sample(0.5)
	ratio := am / pm
	if ratio < 1 {
		ratio = 1 / ratio
	}
	if ratio < 1.15 {
		t.Fatalf("diurnal modulation invisible: half-day means ratio %.3f", ratio)
	}
}

func TestDiurnalDefaultOff(t *testing.T) {
	s := NewScenario(Params{Seed: 22})
	if s.P.DiurnalAmplitude != 0 {
		t.Fatal("diurnal modulation must default to off (paper methodology)")
	}
}

func TestDescribe(t *testing.T) {
	s := NewScenario(Params{Seed: 42})
	var b strings.Builder
	s.Describe(&b)
	out := b.String()
	for _, want := range []string{"Scenario seed=42", "clients:", "intermediates", "Korea", "MIT"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe output missing %q", want)
		}
	}
	b.Reset()
	s.DescribePairs(&b, s.FindClient("Korea"))
	if !strings.Contains(b.String(), "overlay pairs for Korea") {
		t.Error("DescribePairs output missing title")
	}
	// Pairs are sorted descending.
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")[1:]
	if len(lines) != 21 {
		t.Fatalf("pair lines = %d, want 21", len(lines))
	}
}
