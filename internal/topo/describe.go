package topo

import (
	"fmt"
	"io"
	"sort"
)

// Describe writes a human-readable summary of the derived scenario: every
// client's personality and every intermediate's quality, so experimenters
// can see exactly what world a seed produced.
func (s *Scenario) Describe(w io.Writer) {
	fmt.Fprintf(w, "Scenario seed=%d: %d clients, %d intermediates, %d servers\n",
		s.P.Seed, len(s.Clients), len(s.Intermediates), len(s.Servers))
	fmt.Fprintf(w, "  overlay base = %.2f * m^%.2f Mb/s (cap %.2fx), direct theta=1/%.0fs\n",
		s.P.OverlayA, s.P.OverlayGamma, s.P.PairCapFactor, 1/s.P.DirectTheta)

	fmt.Fprintln(w, "clients:")
	for _, c := range append(append([]*Node{}, s.Clients...), s.Sec4Clients...) {
		cn := s.ClientNet(c)
		flags := ""
		if cn.Variable {
			flags += " variable"
		}
		if cn.SharedBottleneck {
			flags += " shared-bottleneck"
		}
		fmt.Fprintf(w, "  %-16s %-6s direct(eBay)=%5.2f Mb/s sigma=%.2f overlayBase=%5.2f Mb/s rtt=%.0fms%s\n",
			c.Name, c.Category, cn.DirectMean["eBay"]/1e6, cn.DirectSigma,
			cn.OverlayBase/1e6, 2000*(cn.TransitLatency+cn.AccessLatency), flags)
	}

	fmt.Fprintln(w, "intermediates (quality multiplier):")
	type iq struct {
		name string
		q    float64
	}
	var iqs []iq
	for _, in := range s.Intermediates {
		iqs = append(iqs, iq{in.Name, s.InterQuality(in)})
	}
	sort.Slice(iqs, func(i, j int) bool { return iqs[i].q > iqs[j].q })
	for _, v := range iqs {
		fmt.Fprintf(w, "  %-16s %.2f\n", v.name, v.q)
	}
}

// DescribePairs writes the overlay pair means for one client, best first —
// the information a static intermediate choice is based on.
func (s *Scenario) DescribePairs(w io.Writer, client *Node) {
	type pair struct {
		inter string
		mean  float64
	}
	var ps []pair
	for _, in := range s.Intermediates {
		ps = append(ps, pair{in.Name, s.PairMean(client, in)})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].mean > ps[j].mean })
	fmt.Fprintf(w, "overlay pairs for %s (direct eBay mean %.2f Mb/s):\n",
		client.Name, s.ClientNet(client).DirectMean["eBay"]/1e6)
	for _, p := range ps {
		fmt.Fprintf(w, "  %-16s %5.2f Mb/s\n", p.inter, p.mean/1e6)
	}
}
