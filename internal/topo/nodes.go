// Package topo defines the PlanetLab-like evaluation topology of the
// indirect-routing paper: international client nodes, US intermediate
// (relay) nodes, and destination web servers, together with the stochastic
// path parameters that give each client its Low/Medium/High direct-path
// throughput character and each (client, intermediate) overlay link its
// stable quality.
//
// The node names and domains come from the paper's Tables IV and V; the
// extra intermediates needed to reach the 35-node full set of Section 4
// come from the paper's Table III plus a handful of plausible fillers.
package topo

// Role distinguishes the three kinds of nodes in the study.
type Role int

// Node roles.
const (
	RoleClient Role = iota
	RoleIntermediate
	RoleServer
)

func (r Role) String() string {
	switch r {
	case RoleClient:
		return "client"
	case RoleIntermediate:
		return "intermediate"
	case RoleServer:
		return "server"
	}
	return "unknown"
}

// Category is the paper's client classification by average direct-path
// throughput: Low 0–1.5 Mb/s, Medium 1.5–3.0 Mb/s, High > 3.0 Mb/s.
type Category int

// Client throughput categories.
const (
	Low Category = iota
	Medium
	High
)

func (c Category) String() string {
	switch c {
	case Low:
		return "Low"
	case Medium:
		return "Medium"
	case High:
		return "High"
	}
	return "unknown"
}

// Node is one participant in the study.
type Node struct {
	Name     string
	Domain   string
	Role     Role
	Category Category // meaningful for clients only
}

// clientSpec seeds the deterministic per-client parameter derivation.
type clientSpec struct {
	name, domain string
	cat          Category
}

// The paper's Table IV: 22 international client nodes. Categories are
// assigned by regional connectivity circa 2005 (the paper reports clients
// are "generally" Low, with a few better-connected exceptions).
var clientSpecs = []clientSpec{
	{"Australia 1", "plnode02.cs.mu.oz.au", Low},
	{"Australia 2", "planet-lab-1.csse.monash.edu.au", Low},
	{"Beirut", "planetlab1.aub.edu.lb", Low},
	{"Berlin", "planetlab1.info.ucl.ac.be", Medium},
	{"Brazil", "planetlab2.lsd.ufcg.edu.br", Low},
	{"Canada", "planetlab1.enel.ucalgary.ca", High},
	{"Denmark", "planetlab2.diku.dk", Medium},
	{"Finland", "planetlab2.hiit.fi", Medium},
	{"France", "planetlab2.eurecom.fr", Medium},
	{"Greece", "planetlab1.cslab.ece.ntua.gr", Low},
	{"Iceland", "planetlab1.ru.is", Low},
	{"India", "planetlab1.iiitb.ac.in", Low},
	{"Israel", "planetlab2.bgu.ac.il", Low},
	{"Italy", "planetlab1.polito.it", Medium},
	{"Korea", "arari.snu.ac.kr", Low},
	{"Norway", "planetlab1.ifi.uio.no", Medium},
	{"Russia", "planet-lab.iki.rssi.ru", Low},
	{"Singapore", "soccf-planet-001.comp.nus.edu.sg", Low},
	{"Sweden", "planetlab1.sics.se", Medium},
	{"Switzerland", "planetlab02.ethz.ch", High},
	{"Taiwan", "ent1.cs.nccu.edu.tw", Low},
	{"UK", "planetlab1.rn.informatics.scitech.susx.ac.uk", High},
}

type interSpec struct {
	name, domain string
}

// The paper's Table V (21 intermediates), then the Section 4 / Table III
// additions, then fillers up to the 35-node full set.
var interSpecs = []interSpec{
	{"CMU", "planetlab-2.cmcl.cs.cmu.edu"},
	{"Berkeley", "planetlab1.millennium.berkeley.edu"},
	{"Caltech", "planlab1.cs.caltech.edu"},
	{"Columbia", "planetlab1.comet.columbia.edu"},
	{"Duke", "planetlab1.cs.duke.edu"},
	{"Georgia Tech", "planet.cc.gt.atl.ga.us"},
	{"Harvard", "lefthand.eecs.harvard.edu"},
	{"Michigan", "planetlab1.eecs.umich.edu"},
	{"MIT", "planetlab1.csail.mit.edu"},
	{"Notre Dame", "planetlab1.cse.nd.edu"},
	{"NYU", "planet1.scs.cs.nyu.edu"},
	{"Princeton", "planetlab-1.cs.princeton.edu"},
	{"Rice", "ricepl-1.cs.rice.edu"},
	{"Stanford", "planetlab-1.stanford.edu"},
	{"Texas", "planetlab1.csres.utexas.edu"},
	{"UCLA", "planetlab2.cs.ucla.edu"},
	{"UCSD", "planetlab2.ucsd.edu"},
	{"UIUC", "planetlab1.cs.uiuc.edu"},
	{"Upenn", "planetlab1.cis.upenn.edu"},
	{"Washington", "planetlab01.cs.washington.edu"},
	{"Wisconsin", "planetlab1.cs.wisc.edu"},
	// Section 4 extras (paper Table III).
	{"Northwestern", "planetlab1.cs.northwestern.edu"},
	{"Minnesota", "planetlab1.dtc.umn.edu"},
	{"DePaul", "planetlab1.cti.depaul.edu"},
	{"Utah", "planetlab1.flux.utah.edu"},
	{"Maryland", "planetlab1.cs.umd.edu"},
	{"Wayne State", "planetlab-01.cs.wayne.edu"},
	{"UCSB", "planetlab1.cs.ucsb.edu"},
	{"Georgetown", "planetlab1.cs.georgetown.edu"},
	// Fillers to reach the 35-node full set of Section 4.
	{"Purdue", "planetlab1.cs.purdue.edu"},
	{"Cornell", "planetlab1.cs.cornell.edu"},
	{"Virginia", "planetlab1.cs.virginia.edu"},
	{"Arizona", "planetlab1.arizona.edu"},
	{"Colorado", "planetlab1.cs.colorado.edu"},
	{"Ohio State", "planetlab1.cse.ohio-state.edu"},
}

// serverSpecs are the destination web sites of the study.
var serverSpecs = []interSpec{
	{"eBay", "www.ebay.com"},
	{"Google", "www.google.com"},
	{"Microsoft", "www.microsoft.com"},
	{"Yahoo", "www.yahoo.com"},
}

// Section-4 clients: Duke, Italy, and Sweden acted as clients against the
// 35-node intermediate set during May–June 2005, a separate measurement
// period from the Table IV study — so they carry their own derived
// personalities (distinct map keys) rather than reusing the Section 3
// ones. The paper chose them "because they are in the Low or Medium
// throughput categories".
var sec4ClientSpecs = []clientSpec{
	{"Duke (client)", "planetlab1.cs.duke.edu", Low},
	{"Italy (client)", "planetlab1.polito.it", Low},
	{"Sweden (client)", "planetlab1.sics.se", Low},
}
