package topo

import (
	"fmt"
	"math"

	"repro/internal/randx"
)

// Params are the scenario-generation knobs. The defaults (see
// DefaultParams) are calibrated so that the headline statistics of the
// paper emerge: ~45% indirect-path utilization, conditional improvements
// averaging in the 33–49% band, and ~10–15% penalties concentrated on
// high-throughput, high-variability clients.
type Params struct {
	Seed uint64

	// NumIntermediates bounds the intermediate set (21 for the Section 3
	// study, 35 for the Section 4 full set).
	NumIntermediates int

	// OverlayA and OverlayGamma set the typical overlay bottleneck
	// capacity for a client with direct mean m (in Mb/s):
	// overlayBase = OverlayA * m^OverlayGamma (Mb/s). Gamma < 1 makes
	// overlay quality grow sublinearly with client quality, which is why
	// low-throughput clients benefit most (paper §3.3).
	OverlayA     float64
	OverlayGamma float64

	// InterQualitySigma is the log-sigma of the per-intermediate quality
	// multiplier: large values create the "popular intermediates" overlap
	// of Table II.
	InterQualitySigma float64

	// PairNoiseSigma is the log-sigma of the per-(client,intermediate)
	// pair multiplier.
	PairNoiseSigma float64

	// PairCapFactor bounds any overlay pair at PairCapFactor × the
	// client's OverlayBase: however good the intermediate, the overlay
	// hop still crosses the client's international transit
	// infrastructure. The cap flattens the top tier of pairs, which is
	// what makes the paper's Figure 6 level off near a random set of 10
	// instead of improving all the way to the full set.
	PairCapFactor float64

	// DirectTheta is the OU mean-reversion rate of direct-path available
	// bandwidth (1/seconds); 1/DirectTheta is the burst decay time.
	DirectTheta float64

	// OverlaySigma is the OU log-sigma of overlay links (small: the paper
	// observes indirect-path throughput is comparatively stable).
	OverlaySigma float64

	// SharedBottleneckFrac is the fraction of clients whose access link
	// is barely above their direct mean, so direct and indirect paths
	// share a bottleneck (a paper-identified penalty source).
	SharedBottleneckFrac float64

	// DiurnalAmplitude adds a time-of-day modulation (+/- this fraction,
	// 24 h period, random phase per client) to direct transit links.
	// The default 0 disables it: the paper's methodology deliberately
	// "minimizes time-of-day effects" by comparing concurrent transfers,
	// and the experiments follow suit — the knob exists to study what
	// happens when that assumption is dropped.
	DiurnalAmplitude float64

	// DriveInterval is the virtual-time spacing of link-capacity updates.
	DriveInterval float64
}

// DefaultParams returns the calibrated defaults used by the experiments.
func DefaultParams(seed uint64) Params {
	return Params{
		Seed:                 seed,
		NumIntermediates:     21,
		OverlayA:             0.96,
		OverlayGamma:         0.75,
		InterQualitySigma:    0.22,
		PairNoiseSigma:       0.18,
		PairCapFactor:        1.30,
		DirectTheta:          1.0 / 100,
		OverlaySigma:         0.09,
		SharedBottleneckFrac: 0.12,
		DriveInterval:        15,
	}
}

const mbps = 1e6

// ClientNet holds the derived network personality of one client.
type ClientNet struct {
	Category Category

	// DirectMean is the long-run mean available bandwidth (bits/sec) of
	// the client's direct transit path, per server name.
	DirectMean map[string]float64

	// DirectSigma is the OU log-sigma of direct-path bandwidth.
	DirectSigma float64

	// DirectTheta overrides the scenario-wide OU reversion rate for this
	// client when non-zero (fast reversion = short-lived dips).
	DirectTheta float64

	// Variable marks clients whose direct path additionally suffers
	// regime-switching congestion episodes.
	Variable bool

	// BusyLevel is the regime multiplier during congestion episodes;
	// QuietHold and BusyHold are the mean sojourn times (seconds).
	BusyLevel           float64
	QuietHold, BusyHold float64

	// AccessCapacity is the client's access-link capacity (bits/sec).
	AccessCapacity float64

	// SharedBottleneck marks clients whose access link is scarcely above
	// the direct mean.
	SharedBottleneck bool

	// OverlayBase is the typical overlay bottleneck (bits/sec) from this
	// client to a quality-1.0 intermediate.
	OverlayBase float64

	// TransitLatency is the one-way latency (seconds) of the client's
	// transit toward the US; AccessLatency of its access hop.
	TransitLatency float64
	AccessLatency  float64

	// TransitLoss is the direct transit path's packet loss probability.
	TransitLoss float64
}

// Scenario is a deterministic realization of the study topology: given
// equal Params it always derives identical node personalities, so
// experiments running in parallel workers agree on structure while using
// independent RNGs for temporal dynamics.
type Scenario struct {
	P Params

	Clients       []*Node
	Intermediates []*Node
	Servers       []*Node
	Sec4Clients   []*Node

	clientNets   map[string]*ClientNet
	interQuality map[string]float64
	interLatency map[string]float64 // one-way latency intermediate->server region
	pairMean     map[string]float64 // key: client|inter
	pairLatency  map[string]float64 // one-way client->intermediate
}

// NewScenario derives a scenario from params. Unset (zero) fields of p are
// filled from DefaultParams.
func NewScenario(p Params) *Scenario { return NewScenarioWithClients(p, nil) }

// NewScenarioWithClients derives a scenario with a custom client set in
// place of the paper's Table IV (nil keeps the paper's clients). Custom
// clients receive deterministic personalities exactly like the built-in
// ones.
func NewScenarioWithClients(p Params, customClients []clientSpec) *Scenario {
	d := DefaultParams(p.Seed)
	if p.NumIntermediates == 0 {
		p.NumIntermediates = d.NumIntermediates
	}
	if p.OverlayA == 0 {
		p.OverlayA = d.OverlayA
	}
	if p.OverlayGamma == 0 {
		p.OverlayGamma = d.OverlayGamma
	}
	if p.InterQualitySigma == 0 {
		p.InterQualitySigma = d.InterQualitySigma
	}
	if p.PairNoiseSigma == 0 {
		p.PairNoiseSigma = d.PairNoiseSigma
	}
	if p.PairCapFactor == 0 {
		p.PairCapFactor = d.PairCapFactor
	}
	if p.DirectTheta == 0 {
		p.DirectTheta = d.DirectTheta
	}
	if p.OverlaySigma == 0 {
		p.OverlaySigma = d.OverlaySigma
	}
	if p.SharedBottleneckFrac == 0 {
		p.SharedBottleneckFrac = d.SharedBottleneckFrac
	}
	if p.DriveInterval == 0 {
		p.DriveInterval = d.DriveInterval
	}
	if p.NumIntermediates < 1 || p.NumIntermediates > len(interSpecs) {
		panic(fmt.Sprintf("topo: NumIntermediates must be in [1, %d]", len(interSpecs)))
	}

	s := &Scenario{
		P:            p,
		clientNets:   make(map[string]*ClientNet),
		interQuality: make(map[string]float64),
		interLatency: make(map[string]float64),
		pairMean:     make(map[string]float64),
		pairLatency:  make(map[string]float64),
	}
	root := randx.New(p.Seed)

	activeClients := clientSpecs
	if customClients != nil {
		activeClients = customClients
	}
	for _, cs := range activeClients {
		s.Clients = append(s.Clients, &Node{Name: cs.name, Domain: cs.domain, Role: RoleClient, Category: cs.cat})
	}
	for _, is := range interSpecs[:p.NumIntermediates] {
		s.Intermediates = append(s.Intermediates, &Node{Name: is.name, Domain: is.domain, Role: RoleIntermediate})
	}
	for _, ss := range serverSpecs {
		s.Servers = append(s.Servers, &Node{Name: ss.name, Domain: ss.domain, Role: RoleServer})
	}
	for _, cs := range sec4ClientSpecs {
		s.Sec4Clients = append(s.Sec4Clients, &Node{Name: cs.name, Domain: cs.domain, Role: RoleClient, Category: cs.cat})
	}

	// Per-intermediate quality and latency-to-servers.
	for _, in := range s.Intermediates {
		r := root.Fork("inter/" + in.Name)
		s.interQuality[in.Name] = randx.LogNormal{Mu: 0, Sigma: p.InterQualitySigma}.Sample(r)
		// Intermediates are US nodes with "superior connectivity to the
		// destination Web servers" (paper §2.2): the i->server hop is
		// short, so the indirect path's RTT is dominated by the overlay
		// hop, like the direct path's by its transit hop.
		s.interLatency[in.Name] = 0.004 + 0.012*r.Float64()
	}

	// Per-client personalities.
	all := append(append([]*Node{}, s.Clients...), s.Sec4Clients...)
	for _, c := range all {
		s.clientNets[c.Name] = s.deriveClient(root, c)
	}
	// The Section 4 clients get stable direct paths: the paper's
	// Table III shows rare-winner improvements that are mostly small,
	// which is only possible when weak intermediates win near-ties
	// rather than deep direct-path dips — i.e. the chosen clients'
	// direct throughput was steady during the May–June campaign.
	for _, c := range s.Sec4Clients {
		cn := s.clientNets[c.Name]
		cn.Variable = false
		cn.BusyLevel = 0.80
		cn.QuietHold = 3600
		cn.BusyHold = 120
		if cn.DirectSigma > 0.32 {
			cn.DirectSigma = 0.32
		}
		// Fast reversion: a probe can catch a momentary dip, but the
		// transfer that follows sees the path near its mean again —
		// which is why the paper's rarely-chosen intermediates deliver
		// small (sometimes negative) improvements.
		cn.DirectTheta = 1.0 / 20
	}

	// Per-pair overlay means and latencies.
	for _, c := range all {
		cn := s.clientNets[c.Name]
		for _, in := range s.Intermediates {
			r := root.Fork("pair/" + c.Name + "|" + in.Name)
			noise := randx.LogNormal{Mu: 0, Sigma: p.PairNoiseSigma}.Sample(r)
			pm := cn.OverlayBase * s.interQuality[in.Name] * noise
			if hi := cn.OverlayBase * p.PairCapFactor; pm > hi {
				pm = hi
			}
			s.pairMean[c.Name+"|"+in.Name] = pm
			// The overlay hop spans the same ocean as the direct transit
			// and the relay adds a forwarding step: indirect latency is
			// never meaningfully below direct. This keeps ramp-limited
			// probe ties from systematically favoring the relay, which
			// would otherwise saddle shared-bottleneck clients with
			// chronic overhead penalties.
			s.pairLatency[c.Name+"|"+in.Name] = cn.TransitLatency * (0.79 + 0.26*r.Float64())
		}
	}
	return s
}

func (s *Scenario) deriveClient(root *randx.RNG, c *Node) *ClientNet {
	r := root.Fork("client/" + c.Name)
	cn := &ClientNet{Category: c.Category, DirectMean: make(map[string]float64)}

	var base float64
	switch c.Category {
	case Low:
		base = (0.4 + 1.0*r.Float64()) * mbps // 0.4–1.4 Mb/s
		cn.DirectSigma = 0.28 + 0.17*r.Float64()
		cn.Variable = r.Float64() < 0.25
		cn.TransitLatency = 0.085 + 0.075*r.Float64()
	case Medium:
		base = (1.6 + 1.3*r.Float64()) * mbps // 1.6–2.9 Mb/s
		cn.DirectSigma = 0.32 + 0.23*r.Float64()
		cn.Variable = r.Float64() < 0.45
		cn.TransitLatency = 0.050 + 0.040*r.Float64()
	case High:
		base = (3.5 + 4.5*r.Float64()) * mbps // 3.5–8 Mb/s
		cn.DirectSigma = 0.45 + 0.35*r.Float64()
		cn.Variable = r.Float64() < 0.85
		cn.TransitLatency = 0.040 + 0.030*r.Float64()
	}
	for _, sv := range serverSpecs {
		f := randx.LogNormal{Mu: 0, Sigma: 0.22}.Sample(r)
		cn.DirectMean[sv.name] = base * f
	}

	if cn.Variable {
		// Congestion episodes: milder for Low/Medium, deep for High —
		// the paper's penalties concentrate on high-throughput clients
		// whose direct paths swing hard.
		if c.Category == High {
			cn.BusyLevel = 0.20 + 0.25*r.Float64()
		} else {
			cn.BusyLevel = 0.50 + 0.25*r.Float64()
		}
		cn.QuietHold = 500 + 700*r.Float64()
		cn.BusyHold = 60 + 120*r.Float64()
	} else {
		// Even "stable" paths see occasional shallow dips.
		cn.BusyLevel = 0.72 + 0.15*r.Float64()
		cn.QuietHold = 2400 + 2400*r.Float64()
		cn.BusyHold = 120 + 180*r.Float64()
	}

	cn.SharedBottleneck = r.Float64() < s.P.SharedBottleneckFrac
	if cn.SharedBottleneck {
		cn.AccessCapacity = base * 1.15
	} else {
		cn.AccessCapacity = math.Max(10*mbps, 6*base)
	}
	cn.AccessLatency = 0.002 + 0.006*r.Float64()
	cn.TransitLoss = 2e-5 + 1.8e-4*r.Float64()

	baseMbps := base / mbps
	cn.OverlayBase = s.P.OverlayA * math.Pow(baseMbps, s.P.OverlayGamma) * mbps
	return cn
}

// ClientNet returns the derived personality of a client node. It panics
// for unknown clients: the set is fixed at construction.
func (s *Scenario) ClientNet(c *Node) *ClientNet {
	cn := s.clientNets[c.Name]
	if cn == nil {
		panic("topo: unknown client " + c.Name)
	}
	return cn
}

// InterQuality returns the quality multiplier of an intermediate node.
func (s *Scenario) InterQuality(in *Node) float64 {
	q, ok := s.interQuality[in.Name]
	if !ok {
		panic("topo: unknown intermediate " + in.Name)
	}
	return q
}

// PairMean returns the long-run mean overlay bottleneck bandwidth
// (bits/sec) between a client and an intermediate.
func (s *Scenario) PairMean(c, in *Node) float64 {
	m, ok := s.pairMean[c.Name+"|"+in.Name]
	if !ok {
		panic("topo: unknown pair " + c.Name + "|" + in.Name)
	}
	return m
}

// FindClient returns the client (including Section 4 clients) with the
// given name, or nil.
func (s *Scenario) FindClient(name string) *Node {
	for _, c := range s.Clients {
		if c.Name == name {
			return c
		}
	}
	for _, c := range s.Sec4Clients {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// FindIntermediate returns the intermediate with the given name, or nil.
func (s *Scenario) FindIntermediate(name string) *Node {
	for _, in := range s.Intermediates {
		if in.Name == name {
			return in
		}
	}
	return nil
}

// FindServer returns the server with the given name, or nil.
func (s *Scenario) FindServer(name string) *Node {
	for _, sv := range s.Servers {
		if sv.Name == name {
			return sv
		}
	}
	return nil
}
