package topo

import (
	"strings"
	"testing"
)

func TestLoadConfigDefaults(t *testing.T) {
	c, err := LoadConfig(strings.NewReader(`{"seed": 7}`))
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Clients) != 22 {
		t.Fatalf("default clients = %d, want the paper's 22", len(s.Clients))
	}
	if s.P.Seed != 7 {
		t.Fatalf("seed = %d", s.P.Seed)
	}
	if s.P.OverlayA != DefaultParams(7).OverlayA {
		t.Fatal("calibrated defaults not applied")
	}
}

func TestLoadConfigCustomClients(t *testing.T) {
	js := `{
	  "seed": 3,
	  "num_intermediates": 5,
	  "overlay_a": 1.2,
	  "clients": [
	    {"name": "branch-office", "category": "Low"},
	    {"name": "datacenter", "domain": "dc1.corp", "category": "High"}
	  ]
	}`
	c, err := LoadConfig(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Clients) != 2 {
		t.Fatalf("clients = %d, want 2", len(s.Clients))
	}
	if s.Clients[0].Name != "branch-office" || s.Clients[0].Category != Low {
		t.Fatalf("client 0 = %+v", s.Clients[0])
	}
	if s.Clients[1].Domain != "dc1.corp" || s.Clients[1].Category != High {
		t.Fatalf("client 1 = %+v", s.Clients[1])
	}
	if s.Clients[0].Domain != "branch-office.example.net" {
		t.Fatalf("default domain = %q", s.Clients[0].Domain)
	}
	if len(s.Intermediates) != 5 || s.P.OverlayA != 1.2 {
		t.Fatal("params not applied")
	}
	// Custom clients must have full personalities.
	cn := s.ClientNet(s.Clients[0])
	if cn.DirectMean["eBay"] <= 0 || cn.OverlayBase <= 0 {
		t.Fatalf("custom client personality missing: %+v", cn)
	}
	if s.PairMean(s.Clients[1], s.Intermediates[0]) <= 0 {
		t.Fatal("custom client pair means missing")
	}
}

func TestLoadConfigValidation(t *testing.T) {
	cases := []string{
		`{"clients": [{"name": "", "category": "Low"}]}`,
		`{"clients": [{"name": "x", "category": "Extreme"}]}`,
		`{"unknown_field": 1}`,
		`not json`,
	}
	for _, js := range cases {
		if _, err := LoadConfig(strings.NewReader(js)); err == nil {
			t.Errorf("accepted bad config %q", js)
		}
	}
}

func TestCustomScenarioDeterminism(t *testing.T) {
	js := `{"seed": 9, "clients": [{"name": "edge", "category": "Medium"}]}`
	build := func() *Scenario {
		c, err := LoadConfig(strings.NewReader(js))
		if err != nil {
			t.Fatal(err)
		}
		s, _ := c.Build()
		return s
	}
	a, b := build(), build()
	if a.ClientNet(a.Clients[0]).DirectMean["eBay"] != b.ClientNet(b.Clients[0]).DirectMean["eBay"] {
		t.Fatal("custom scenario not deterministic")
	}
}
