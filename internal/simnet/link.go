package simnet

import "repro/internal/randx"

// Link is a unidirectional network link with a time-varying capacity
// available to foreground (simulated) flows. Cross traffic is modelled by
// driving the capacity with a stochastic process rather than simulating
// competing packets: what matters to a TCP transfer is the bandwidth it
// can actually obtain.
type Link struct {
	Name string

	// Latency is the one-way propagation delay in seconds. It does not
	// delay fluid progress directly; the TCP model folds path RTT into the
	// per-flow rate cap.
	Latency float64

	// Loss is the packet loss probability on this link, consumed by the
	// TCP model's steady-state ceiling.
	Loss float64

	capacity float64 // current available capacity, bits/sec
	floor    float64 // capacity never drops below this, keeping flows live

	// efficiency is the fraction of capacity surviving as goodput under
	// packet-level faults (1 on a clean link); see InjectFaults. The
	// max-min allocation works on capacity × efficiency.
	efficiency float64

	flows map[*Flow]struct{}
	net   *Network
}

// Capacity returns the link's current available capacity in bits/sec.
func (l *Link) Capacity() float64 { return l.capacity }

// EffectiveCapacity returns the goodput-bearing capacity the fair-share
// allocation divides among flows: capacity scaled by the fault layer's
// efficiency, never below the floor.
func (l *Link) EffectiveCapacity() float64 {
	c := l.capacity * l.efficiency
	if c < l.floor {
		return l.floor
	}
	return c
}

// setEfficiency updates the goodput fraction and reallocates. Values are
// clamped to (0, 1].
func (l *Link) setEfficiency(eff float64) {
	if eff <= 0 {
		eff = minEfficiency
	}
	if eff > 1 {
		eff = 1
	}
	if eff == l.efficiency {
		return
	}
	l.efficiency = eff
	l.net.reallocate()
}

// SetCapacity updates the link's available capacity and triggers a
// network-wide rate reallocation. Values below the floor are raised to it.
func (l *Link) SetCapacity(bps float64) {
	if bps < l.floor {
		bps = l.floor
	}
	if bps == l.capacity {
		return
	}
	l.capacity = bps
	l.net.reallocate()
}

// NumFlows returns the number of flows currently crossing the link.
func (l *Link) NumFlows() int { return len(l.flows) }

// Drive attaches a stochastic capacity process to the link: every interval
// seconds of virtual time the process advances and the link capacity is
// set to scale × process value. The driver runs until the engine stops
// being stepped; it owns its RNG.
//
// Drive returns a stop function that detaches the driver.
func (l *Link) Drive(proc randx.Process, interval, scale float64, rng *randx.RNG) (stop func()) {
	if interval <= 0 {
		panic("simnet: Drive requires interval > 0")
	}
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		l.SetCapacity(scale * proc.Step(rng, interval))
		l.net.eng.After(interval, tick)
	}
	// Apply the process's current value immediately so the link starts in
	// a consistent state, then step on each tick.
	l.SetCapacity(scale * proc.Value())
	l.net.eng.After(interval, tick)
	return func() { stopped = true }
}
