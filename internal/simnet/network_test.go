package simnet

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/randx"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// newNet returns an engine+network pair.
func newNet() (*Engine, *Network) {
	e := NewEngine()
	return e, NewNetwork(e)
}

func TestSingleFlowTransferTime(t *testing.T) {
	e, n := newNet()
	l := n.NewLink("l", 8e6, 0.01, 0) // 8 Mb/s -> 1 MB/s
	done := -1.0
	n.StartFlow(FlowSpec{
		Label: "f", Links: []*Link{l}, Bytes: 2_000_000,
		OnComplete: func(f *Flow) { done = f.Finish() },
	})
	e.RunUntil(100)
	if done < 0 {
		t.Fatal("flow did not complete")
	}
	if !almost(done, 2.0, 1e-6) {
		t.Fatalf("completion at %v, want 2.0s", done)
	}
}

func TestFlowThroughputAccounting(t *testing.T) {
	e, n := newNet()
	l := n.NewLink("l", 8e6, 0.01, 0)
	var got *Flow
	n.StartFlow(FlowSpec{Links: []*Link{l}, Bytes: 1_000_000,
		OnComplete: func(f *Flow) { got = f }})
	e.RunUntil(100)
	if got == nil {
		t.Fatal("no completion")
	}
	if got.Bytes() != 1_000_000 || got.BytesMoved() != 1_000_000 {
		t.Fatalf("bytes=%d moved=%d", got.Bytes(), got.BytesMoved())
	}
	if !almost(got.Throughput(), 8e6, 1) {
		t.Fatalf("throughput=%v, want 8e6", got.Throughput())
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	e, n := newNet()
	l := n.NewLink("l", 8e6, 0.01, 0)
	var t1, t2 float64
	n.StartFlow(FlowSpec{Links: []*Link{l}, Bytes: 1_000_000,
		OnComplete: func(f *Flow) { t1 = f.Finish() }})
	n.StartFlow(FlowSpec{Links: []*Link{l}, Bytes: 1_000_000,
		OnComplete: func(f *Flow) { t2 = f.Finish() }})
	e.RunUntil(100)
	// Each gets 4 Mb/s; both finish at 2s.
	if !almost(t1, 2.0, 1e-6) || !almost(t2, 2.0, 1e-6) {
		t.Fatalf("finish times %v, %v; want 2.0, 2.0", t1, t2)
	}
}

func TestShortFlowReleasesBandwidth(t *testing.T) {
	e, n := newNet()
	l := n.NewLink("l", 8e6, 0.01, 0)
	var tBig float64
	n.StartFlow(FlowSpec{Links: []*Link{l}, Bytes: 2_000_000,
		OnComplete: func(f *Flow) { tBig = f.Finish() }})
	n.StartFlow(FlowSpec{Links: []*Link{l}, Bytes: 500_000, OnComplete: func(*Flow) {}})
	e.RunUntil(100)
	// Shared until the small flow's 0.5 MB is done at t=1 (4 Mb/s each);
	// big flow then has 1.5 MB left at 8 Mb/s -> 1.5s more. Total 2.5s.
	if !almost(tBig, 2.5, 1e-6) {
		t.Fatalf("big flow finished at %v, want 2.5", tBig)
	}
}

func TestRateCapHonored(t *testing.T) {
	e, n := newNet()
	l := n.NewLink("l", 8e6, 0.01, 0)
	var fin float64
	n.StartFlow(FlowSpec{Links: []*Link{l}, Bytes: 1_000_000, RateCap: 2e6,
		OnComplete: func(f *Flow) { fin = f.Finish() }})
	e.RunUntil(100)
	if !almost(fin, 4.0, 1e-6) {
		t.Fatalf("capped flow finished at %v, want 4.0", fin)
	}
}

func TestCappedFlowLeavesBandwidthToOthers(t *testing.T) {
	e, n := newNet()
	l := n.NewLink("l", 10e6, 0.01, 0)
	var fast float64
	n.StartFlow(FlowSpec{Links: []*Link{l}, Bytes: 10_000_000, RateCap: 2e6,
		OnComplete: func(*Flow) {}})
	n.StartFlow(FlowSpec{Links: []*Link{l}, Bytes: 1_000_000,
		OnComplete: func(f *Flow) { fast = f.Finish() }})
	e.RunUntil(100)
	// Uncapped flow gets 10-2 = 8 Mb/s -> 1s for 1 MB.
	if !almost(fast, 1.0, 1e-6) {
		t.Fatalf("uncapped flow finished at %v, want 1.0", fast)
	}
}

func TestMultiLinkBottleneck(t *testing.T) {
	e, n := newNet()
	a := n.NewLink("a", 100e6, 0.01, 0)
	b := n.NewLink("b", 4e6, 0.05, 0) // bottleneck
	c := n.NewLink("c", 100e6, 0.01, 0)
	var fin float64
	n.StartFlow(FlowSpec{Links: []*Link{a, b, c}, Bytes: 1_000_000,
		OnComplete: func(f *Flow) { fin = f.Finish() }})
	e.RunUntil(100)
	if !almost(fin, 2.0, 1e-6) {
		t.Fatalf("finished at %v, want 2.0 (4 Mb/s bottleneck)", fin)
	}
}

func TestSharedAccessLinkContention(t *testing.T) {
	// Two flows from the same client over a shared access link, diverging
	// to separate transit links: the access link is the shared bottleneck.
	e, n := newNet()
	access := n.NewLink("access", 4e6, 0.005, 0)
	t1 := n.NewLink("t1", 100e6, 0.02, 0)
	t2 := n.NewLink("t2", 100e6, 0.02, 0)
	var f1, f2 float64
	n.StartFlow(FlowSpec{Links: []*Link{access, t1}, Bytes: 1_000_000,
		OnComplete: func(f *Flow) { f1 = f.Finish() }})
	n.StartFlow(FlowSpec{Links: []*Link{access, t2}, Bytes: 1_000_000,
		OnComplete: func(f *Flow) { f2 = f.Finish() }})
	e.RunUntil(100)
	if !almost(f1, 4.0, 1e-6) || !almost(f2, 4.0, 1e-6) {
		t.Fatalf("finish times %v, %v; want 4.0 each (2 Mb/s shares)", f1, f2)
	}
}

func TestMaxMinUnequalPaths(t *testing.T) {
	// Flow X crosses links A(10) and B(4) shared with flow Y on B only,
	// plus flow Z on A only. Max-min: X and Y split B at 2 each; Z gets
	// A's remainder 8.
	e, n := newNet()
	a := n.NewLink("a", 10e6, 0.01, 0)
	b := n.NewLink("b", 4e6, 0.01, 0)
	fx := n.StartFlow(FlowSpec{Links: []*Link{a, b}, Bytes: 1 << 30})
	fy := n.StartFlow(FlowSpec{Links: []*Link{b}, Bytes: 1 << 30})
	fz := n.StartFlow(FlowSpec{Links: []*Link{a}, Bytes: 1 << 30})
	_ = e
	if !almost(fx.Rate(), 2e6, 1) {
		t.Errorf("X rate %v, want 2e6", fx.Rate())
	}
	if !almost(fy.Rate(), 2e6, 1) {
		t.Errorf("Y rate %v, want 2e6", fy.Rate())
	}
	if !almost(fz.Rate(), 8e6, 1) {
		t.Errorf("Z rate %v, want 8e6", fz.Rate())
	}
}

func TestSetRateCapMidTransfer(t *testing.T) {
	e, n := newNet()
	l := n.NewLink("l", 8e6, 0.01, 0)
	var fin float64
	f := n.StartFlow(FlowSpec{Links: []*Link{l}, Bytes: 2_000_000, RateCap: 4e6,
		OnComplete: func(f *Flow) { fin = f.Finish() }})
	e.RunUntil(1) // 0.5 MB moved at 4 Mb/s
	n.SetRateCap(f, 8e6)
	e.RunUntil(100)
	// Remaining 1.5 MB at 8 Mb/s = 1.5s; total 2.5s.
	if !almost(fin, 2.5, 1e-6) {
		t.Fatalf("finished at %v, want 2.5", fin)
	}
}

func TestLinkCapacityChangeMidTransfer(t *testing.T) {
	e, n := newNet()
	l := n.NewLink("l", 8e6, 0.01, 0)
	var fin float64
	n.StartFlow(FlowSpec{Links: []*Link{l}, Bytes: 2_000_000,
		OnComplete: func(f *Flow) { fin = f.Finish() }})
	e.RunUntil(1) // 1 MB moved
	l.SetCapacity(2e6)
	e.RunUntil(100)
	// Remaining 1 MB at 2 Mb/s = 4s; total 5s.
	if !almost(fin, 5.0, 1e-6) {
		t.Fatalf("finished at %v, want 5.0", fin)
	}
}

func TestCapacityFloor(t *testing.T) {
	_, n := newNet()
	l := n.NewLink("l", 1e6, 0.01, 0)
	l.SetCapacity(0) // floored at 0.1% of initial
	if l.Capacity() <= 0 {
		t.Fatalf("capacity %v, want > 0 (floor)", l.Capacity())
	}
}

func TestAbort(t *testing.T) {
	e, n := newNet()
	l := n.NewLink("l", 8e6, 0.01, 0)
	completed := false
	f := n.StartFlow(FlowSpec{Links: []*Link{l}, Bytes: 8_000_000,
		OnComplete: func(*Flow) { completed = true }})
	e.RunUntil(1)
	n.Abort(f)
	e.RunUntil(100)
	if completed {
		t.Fatal("aborted flow invoked OnComplete")
	}
	if !f.Done() {
		t.Fatal("aborted flow not marked done")
	}
	if got := f.BytesMoved(); !almost(float64(got), 1_000_000, 2) {
		t.Fatalf("aborted flow moved %d bytes, want ~1e6", got)
	}
	if n.ActiveFlows() != 0 {
		t.Fatalf("active flows = %d after abort", n.ActiveFlows())
	}
}

func TestCompletionStartsNewFlow(t *testing.T) {
	e, n := newNet()
	l := n.NewLink("l", 8e6, 0.01, 0)
	var second float64
	n.StartFlow(FlowSpec{Links: []*Link{l}, Bytes: 1_000_000,
		OnComplete: func(*Flow) {
			n.StartFlow(FlowSpec{Links: []*Link{l}, Bytes: 1_000_000,
				OnComplete: func(f *Flow) { second = f.Finish() }})
		}})
	e.RunUntil(100)
	if !almost(second, 2.0, 1e-6) {
		t.Fatalf("chained flow finished at %v, want 2.0", second)
	}
}

func TestZeroByteFlowCompletes(t *testing.T) {
	e, n := newNet()
	l := n.NewLink("l", 8e6, 0.01, 0)
	done := false
	n.StartFlow(FlowSpec{Links: []*Link{l}, Bytes: 0,
		OnComplete: func(*Flow) { done = true }})
	e.RunUntil(1)
	if !done {
		t.Fatal("zero-byte flow did not complete")
	}
}

func TestDriveVariesCapacity(t *testing.T) {
	e, n := newNet()
	l := n.NewLink("l", 10e6, 0.01, 0)
	proc := randx.NewOU(1.0, 0.2, 0.5)
	rng := randx.New(1)
	stop := l.Drive(proc, 5, 10e6, rng)
	caps := map[float64]bool{}
	for i := 0; i < 20; i++ {
		e.RunFor(5)
		caps[l.Capacity()] = true
	}
	if len(caps) < 10 {
		t.Fatalf("capacity took only %d distinct values in 20 ticks", len(caps))
	}
	stop()
	e.RunFor(50)
	after := l.Capacity()
	e.RunFor(50)
	if l.Capacity() != after {
		t.Fatal("driver kept running after stop")
	}
}

func TestConservationProperty(t *testing.T) {
	// Max-min allocation must never exceed any link capacity and never
	// exceed a flow's cap, for random topologies.
	f := func(seed uint64) bool {
		rng := randx.New(seed)
		_, n := newNet()
		nLinks := 2 + rng.Intn(6)
		links := make([]*Link, nLinks)
		for i := range links {
			links[i] = n.NewLink("l", 1e6+rng.Float64()*50e6, 0.01, 0)
		}
		nFlows := 1 + rng.Intn(10)
		flows := make([]*Flow, nFlows)
		for i := range flows {
			// Random subset of links (at least one).
			var fl []*Link
			for _, l := range links {
				if rng.Float64() < 0.4 {
					fl = append(fl, l)
				}
			}
			if len(fl) == 0 {
				fl = []*Link{links[rng.Intn(nLinks)]}
			}
			rc := 0.0
			if rng.Float64() < 0.5 {
				rc = 0.5e6 + rng.Float64()*20e6
			}
			flows[i] = n.StartFlow(FlowSpec{Links: fl, Bytes: 1 << 30, RateCap: rc})
		}
		// Check link conservation.
		for _, l := range links {
			sum := 0.0
			for f := range l.flows {
				sum += f.rate
			}
			if sum > l.Capacity()*(1+1e-9)+1e-6 {
				return false
			}
		}
		// Check flow caps.
		for _, f := range flows {
			if f.rate > f.rateCap*(1+1e-9)+1e-6 {
				return false
			}
			if f.rate < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxMinNoStarvationProperty(t *testing.T) {
	// Every flow must receive a strictly positive rate (links have
	// positive capacity floors).
	f := func(seed uint64) bool {
		rng := randx.New(seed)
		_, n := newNet()
		links := make([]*Link, 3)
		for i := range links {
			links[i] = n.NewLink("l", 1e6+rng.Float64()*10e6, 0.01, 0)
		}
		var flows []*Flow
		for i := 0; i < 5; i++ {
			fl := []*Link{links[rng.Intn(3)], links[rng.Intn(3)]}
			flows = append(flows, n.StartFlow(FlowSpec{Links: fl, Bytes: 1 << 30}))
		}
		for _, f := range flows {
			if f.Rate() <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStartFlowValidation(t *testing.T) {
	_, n := newNet()
	for name, fn := range map[string]func(){
		"no links":       func() { n.StartFlow(FlowSpec{Bytes: 1}) },
		"negative bytes": func() { n.StartFlow(FlowSpec{Links: []*Link{n.NewLink("l", 1e6, 0, 0)}, Bytes: -1}) },
		"zero capacity":  func() { n.NewLink("bad", 0, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMaxMinBottleneckConditionProperty(t *testing.T) {
	// The defining property of a max-min fair allocation: every flow is
	// either at its rate cap or crosses at least one saturated link
	// (otherwise its rate could be raised, contradicting max-min
	// optimality).
	f := func(seed uint64) bool {
		rng := randx.New(seed)
		_, n := newNet()
		nLinks := 2 + rng.Intn(5)
		links := make([]*Link, nLinks)
		for i := range links {
			links[i] = n.NewLink("l", 1e6+rng.Float64()*20e6, 0.01, 0)
		}
		var flows []*Flow
		for i := 0; i < 1+rng.Intn(8); i++ {
			var fl []*Link
			for _, l := range links {
				if rng.Float64() < 0.5 {
					fl = append(fl, l)
				}
			}
			if len(fl) == 0 {
				fl = []*Link{links[rng.Intn(nLinks)]}
			}
			rc := 0.0
			if rng.Float64() < 0.4 {
				rc = 0.5e6 + rng.Float64()*10e6
			}
			flows = append(flows, n.StartFlow(FlowSpec{Links: fl, Bytes: 1 << 40, RateCap: rc}))
		}
		for _, f := range flows {
			if f.Rate() >= f.RateCap()*(1-1e-6) {
				continue // capped
			}
			saturated := false
			for _, l := range f.Links() {
				sum := 0.0
				for fl := range l.flows {
					sum += fl.Rate()
				}
				if sum >= l.Capacity()*(1-1e-6) {
					saturated = true
					break
				}
			}
			if !saturated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkConservationOverTime(t *testing.T) {
	// Bytes delivered by a completed flow must equal its declared size,
	// and the sum of deliveries over a busy sequence must be exact —
	// progress charging must not create or destroy bytes under capacity
	// churn and contention.
	e, n := newNet()
	l1 := n.NewLink("l1", 6e6, 0.01, 0)
	l2 := n.NewLink("l2", 3e6, 0.02, 0)
	var delivered int64
	const flows = 24
	for i := 0; i < flows; i++ {
		links := []*Link{l1}
		if i%2 == 0 {
			links = []*Link{l1, l2}
		}
		size := int64(100_000 + 37_000*i)
		n.StartFlow(FlowSpec{Links: links, Bytes: size,
			OnComplete: func(f *Flow) { delivered += f.BytesMoved() }})
		// Capacity churn mid-stream.
		e.After(float64(i)*0.7+0.3, func() { l1.SetCapacity(2e6 + float64(i%5)*1e6) })
	}
	e.RunUntil(5000)
	if n.ActiveFlows() != 0 {
		t.Fatalf("%d flows still active", n.ActiveFlows())
	}
	var want int64
	for i := 0; i < flows; i++ {
		want += int64(100_000 + 37_000*i)
	}
	if delivered != want {
		t.Fatalf("delivered %d bytes, want %d", delivered, want)
	}
}

func TestEngineDeterminismUnderLoad(t *testing.T) {
	run := func() []float64 {
		e, n := newNet()
		l := n.NewLink("l", 5e6, 0.01, 0)
		rng := randx.New(42)
		stop := l.Drive(randx.NewOU(5e6, 1.0/30, 0.4), 5, 1.0, rng)
		defer stop()
		var finishes []float64
		for i := 0; i < 10; i++ {
			n.StartFlow(FlowSpec{Links: []*Link{l}, Bytes: int64(200_000 * (i + 1)),
				OnComplete: func(f *Flow) { finishes = append(finishes, f.Finish()) }})
		}
		e.RunUntil(100)
		return finishes
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different completion counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("finish %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
