package simnet

import "testing"

func TestSamplerCollects(t *testing.T) {
	e := NewEngine()
	v := 0.0
	e.After(25, func() { v = 10 })
	s := Sample(e, 10, func() float64 { return v })
	e.RunUntil(100)
	if s.Len() != 10 {
		t.Fatalf("collected %d samples, want 10", s.Len())
	}
	// First two samples (t=10,20) see 0; the rest see 10.
	if s.Values[0] != 0 || s.Values[1] != 0 || s.Values[2] != 10 {
		t.Fatalf("values = %v", s.Values[:3])
	}
	if s.Times[0] != 10 || s.Times[9] != 100 {
		t.Fatalf("times = %v", s.Times)
	}
}

func TestSamplerStats(t *testing.T) {
	e := NewEngine()
	i := 0.0
	s := Sample(e, 1, func() float64 { i++; return i })
	e.RunUntil(4) // samples: 1,2,3,4
	if s.Mean() != 2.5 || s.Min() != 1 || s.Max() != 4 {
		t.Fatalf("stats = %v/%v/%v", s.Mean(), s.Min(), s.Max())
	}
}

func TestSamplerStop(t *testing.T) {
	e := NewEngine()
	s := Sample(e, 1, func() float64 { return 1 })
	e.RunUntil(3)
	s.Stop()
	e.RunUntil(10)
	if s.Len() != 3 {
		t.Fatalf("sampler kept running after Stop: %d samples", s.Len())
	}
}

func TestSamplerEmptyStats(t *testing.T) {
	s := &Sampler{}
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Len() != 0 {
		t.Fatal("empty sampler stats should be zero")
	}
}

func TestSamplerBadIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Sample(NewEngine(), 0, func() float64 { return 0 })
}

func TestSamplerOnLinkCapacity(t *testing.T) {
	e := NewEngine()
	n := NewNetwork(e)
	l := n.NewLink("l", 8e6, 0.01, 0)
	s := Sample(e, 5, l.Capacity)
	e.RunUntil(20)
	l.SetCapacity(2e6)
	e.RunUntil(40)
	if s.Min() != 2e6 || s.Max() != 8e6 {
		t.Fatalf("link capacity series min/max = %v/%v", s.Min(), s.Max())
	}
}
