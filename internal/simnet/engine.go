// Package simnet is a virtual-time fluid network simulator.
//
// The simulator models a set of links whose available capacity varies over
// time (driven by stochastic processes) and a set of fluid flows, each
// crossing one or more links. Bandwidth is shared max-min fairly among the
// flows on each link, subject to a per-flow rate cap supplied by the TCP
// model (slow-start ramp, window and loss ceilings). Between events every
// flow progresses linearly at its allocated rate, so the engine only needs
// to process discrete events: flow arrivals and completions, rate-cap
// changes, and link-capacity updates.
//
// This reproduces the environment of the indirect-routing paper: wide-area
// paths with time-varying available throughput, self-contention on client
// access links, and shared bottlenecks between "direct" and "indirect"
// paths.
package simnet

import "container/heap"

// Engine is a discrete-event scheduler over a virtual clock measured in
// seconds. It is single-goroutine: callers schedule callbacks and then
// drive the clock with Step, RunUntil, or RunFor. Engines are cheap;
// parallel experiments create one engine per worker.
type Engine struct {
	now float64
	pq  eventHeap
	seq uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Timer is a handle to a scheduled callback; Cancel prevents a pending
// callback from running.
type Timer struct {
	at        float64
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 when popped
}

// Cancel prevents the timer's callback from running. Cancelling an
// already-fired or already-cancelled timer is a no-op.
func (t *Timer) Cancel() {
	if t != nil {
		t.cancelled = true
	}
}

// At schedules fn to run at absolute virtual time at. Scheduling in the
// past panics: that always indicates a simulation logic error.
func (e *Engine) At(at float64, fn func()) *Timer {
	if at < e.now {
		panic("simnet: scheduling event in the past")
	}
	e.seq++
	t := &Timer{at: at, seq: e.seq, fn: fn}
	heap.Push(&e.pq, t)
	return t
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) *Timer {
	if d < 0 {
		panic("simnet: negative delay")
	}
	return e.At(e.now+d, fn)
}

// Step runs the next pending event, advancing the clock to its timestamp.
// It returns false when no events remain.
func (e *Engine) Step() bool {
	for e.pq.Len() > 0 {
		t := heap.Pop(&e.pq).(*Timer)
		if t.cancelled {
			continue
		}
		e.now = t.at
		t.fn()
		return true
	}
	return false
}

// RunUntil processes events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled during processing are honored if
// they fall within the deadline.
func (e *Engine) RunUntil(deadline float64) {
	for e.pq.Len() > 0 {
		next := e.pq[0]
		if next.cancelled {
			heap.Pop(&e.pq)
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if deadline > e.now {
		e.now = deadline
	}
}

// RunFor advances the clock by d seconds, processing all events in the
// window.
func (e *Engine) RunFor(d float64) { e.RunUntil(e.now + d) }

// RunWhile steps the engine as long as cond() is true and events remain.
// It returns true if cond became false (the awaited state was reached) and
// false if the event queue drained first.
func (e *Engine) RunWhile(cond func() bool) bool {
	for cond() {
		if !e.Step() {
			return false
		}
	}
	return true
}

// Pending returns the number of scheduled (possibly cancelled) events.
func (e *Engine) Pending() int { return e.pq.Len() }

// eventHeap is a min-heap ordered by (at, seq) so simultaneous events run
// in scheduling order.
type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}
