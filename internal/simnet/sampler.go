package simnet

// Sampler periodically records a float-valued source (a link's capacity, a
// flow's rate, anything observable from the engine's thread) into a
// timestamped series. It is the instrumentation used to inspect path
// dynamics without perturbing them.
type Sampler struct {
	Times  []float64
	Values []float64

	stopped bool
}

// Sample attaches a sampler to eng that reads source() every interval
// seconds of virtual time, starting one interval from now. Stop it with
// (*Sampler).Stop.
func Sample(eng *Engine, interval float64, source func() float64) *Sampler {
	if interval <= 0 {
		panic("simnet: Sample requires interval > 0")
	}
	s := &Sampler{}
	var tick func()
	tick = func() {
		if s.stopped {
			return
		}
		s.Times = append(s.Times, eng.Now())
		s.Values = append(s.Values, source())
		eng.After(interval, tick)
	}
	eng.After(interval, tick)
	return s
}

// Stop detaches the sampler; the collected series remains available.
func (s *Sampler) Stop() { s.stopped = true }

// Len returns the number of samples collected.
func (s *Sampler) Len() int { return len(s.Values) }

// Mean returns the average of the collected values (0 if empty).
func (s *Sampler) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Min and Max return the extrema of the collected values (0 if empty).
func (s *Sampler) Min() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	m := s.Values[0]
	for _, v := range s.Values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest collected value (0 if empty).
func (s *Sampler) Max() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	m := s.Values[0]
	for _, v := range s.Values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
