package simnet

import (
	"testing"

	"repro/internal/randx"
)

// BenchmarkEngineSchedule measures raw event-queue throughput.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(1, func() {})
		e.Step()
	}
}

// BenchmarkEngineScheduleCancel measures the schedule+cancel pattern the
// network uses for completion timers.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := e.After(1e9, func() {})
		t.Cancel()
		if i%1024 == 0 {
			for e.Step() {
			}
		}
	}
}

// benchMaxMin measures one reallocation with n concurrent flows over a
// shared access link plus per-flow transit links — the probe-race shape.
func benchMaxMin(b *testing.B, n int) {
	e := NewEngine()
	net := NewNetwork(e)
	access := net.NewLink("access", 10e6, 0.005, 0)
	for i := 0; i < n; i++ {
		transit := net.NewLink("transit", 2e6, 0.05, 0)
		net.StartFlow(FlowSpec{Links: []*Link{access, transit}, Bytes: 1 << 40})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.reallocate()
	}
}

func BenchmarkMaxMin2Flows(b *testing.B)  { benchMaxMin(b, 2) }
func BenchmarkMaxMin8Flows(b *testing.B)  { benchMaxMin(b, 8) }
func BenchmarkMaxMin36Flows(b *testing.B) { benchMaxMin(b, 36) }

// BenchmarkTransferCycle measures a full small-transfer lifecycle: start,
// progress under a driven link, complete.
func BenchmarkTransferCycle(b *testing.B) {
	e := NewEngine()
	net := NewNetwork(e)
	l := net.NewLink("l", 8e6, 0.01, 0)
	rng := randx.New(1)
	stop := l.Drive(randx.NewOU(8e6, 1.0/60, 0.3), 15, 1.0, rng)
	defer stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := false
		net.StartFlow(FlowSpec{Links: []*Link{l}, Bytes: 100_000,
			OnComplete: func(*Flow) { done = true }})
		for !done {
			if !e.Step() {
				b.Fatal("queue drained")
			}
		}
	}
}
