package simnet

import (
	"math"
	"testing"

	"repro/internal/randx"
)

// faultTrace runs one flow over a faulted link and returns its completion
// time plus the sequence of effective-loss values sampled each second.
func faultTrace(t *testing.T, seed uint64, prof FaultProfile) (done float64, losses []float64) {
	t.Helper()
	eng := NewEngine()
	net := NewNetwork(eng)
	l := net.NewLink("wan", 8e6, 0.02, 0)
	f := l.InjectFaults(prof, 0.25, randx.New(seed))
	defer f.Stop()

	finished := -1.0
	net.StartFlow(FlowSpec{
		Label: "xfer", Links: []*Link{l}, Bytes: 4 << 20,
		OnComplete: func(fl *Flow) { finished = eng.Now() },
	})
	for i := 0; i < 60; i++ {
		eng.RunUntil(float64(i + 1))
		losses = append(losses, f.EffectiveLoss())
		if finished >= 0 {
			break
		}
	}
	if finished < 0 {
		t.Fatalf("flow never completed (seed %d)", seed)
	}
	return finished, losses
}

func TestFaultsDeterministic(t *testing.T) {
	prof := FaultProfile{
		Loss:    0.01,
		Reorder: 0.05,
		Dup:     0.02,
		Burst:   &GEParams{MeanGood: 2, MeanBad: 0.5, LossGood: 0.001, LossBad: 0.3},
	}
	d1, l1 := faultTrace(t, 7, prof)
	d2, l2 := faultTrace(t, 7, prof)
	if d1 != d2 {
		t.Fatalf("same seed, different completion times: %v vs %v", d1, d2)
	}
	if len(l1) != len(l2) {
		t.Fatalf("same seed, different trace lengths: %d vs %d", len(l1), len(l2))
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("same seed, loss traces diverge at %d: %v vs %v", i, l1[i], l2[i])
		}
	}
	d3, _ := faultTrace(t, 8, prof)
	if d3 == d1 {
		t.Fatalf("different seeds produced identical completion time %v", d1)
	}
}

func TestFaultsSlowFlows(t *testing.T) {
	eng := NewEngine()
	net := NewNetwork(eng)
	l := net.NewLink("wan", 8e6, 0.02, 0)

	run := func() float64 {
		done := -1.0
		net.StartFlow(FlowSpec{
			Label: "xfer", Links: []*Link{l}, Bytes: 1 << 20,
			OnComplete: func(fl *Flow) { done = eng.Now() - fl.Start() },
		})
		eng.RunWhile(func() bool { return done < 0 })
		return done
	}

	clean := run()

	// 20% steady loss with reorder and duplication: goodput efficiency
	// (1−0.2)·(1−0.05)·/(1.1) ≈ 0.69, so the same transfer should take
	// noticeably longer — and close to 1/efficiency times as long.
	prof := FaultProfile{Loss: 0.2, Reorder: 0.1, Dup: 0.1}
	f := l.InjectFaults(prof, 0.5, randx.New(1))
	faulted := run()
	f.Stop()

	wantRatio := 1 / prof.efficiency(0.2)
	gotRatio := faulted / clean
	if gotRatio < wantRatio*0.95 || gotRatio > wantRatio*1.05 {
		t.Fatalf("faulted/clean duration ratio = %.3f, want ≈ %.3f (clean %.3fs faulted %.3fs)",
			gotRatio, wantRatio, clean, faulted)
	}

	// After Stop the link is clean again.
	restored := run()
	if restored > clean*1.01 {
		t.Fatalf("Stop did not restore clean throughput: %.3fs vs %.3fs", restored, clean)
	}
}

func TestFaultsDriveLinkLoss(t *testing.T) {
	eng := NewEngine()
	net := NewNetwork(eng)
	l := net.NewLink("wan", 8e6, 0.02, 0)
	f := l.InjectFaults(FaultProfile{
		Loss:  0.01,
		Burst: &GEParams{MeanGood: 1, MeanBad: 1, LossGood: 0.0, LossBad: 0.5},
	}, 0.1, randx.New(3))
	defer f.Stop()

	// The link's Loss field (what tcpmodel.FromLinks consumes) must track
	// the chain: composed loss is 0.01 in the good state, 0.505 in the
	// bad state, and over 30 s of a symmetric chain both states occur.
	sawGood, sawBad := false, false
	for i := 0; i < 300; i++ {
		eng.RunUntil(float64(i) * 0.1)
		switch {
		case math.Abs(l.Loss-0.01) < 1e-12:
			sawGood = true
		case math.Abs(l.Loss-(1-0.99*0.5)) < 1e-12:
			sawBad = true
		default:
			t.Fatalf("unexpected composed loss %v", l.Loss)
		}
	}
	if !sawGood || !sawBad {
		t.Fatalf("chain never visited both states (good %v bad %v)", sawGood, sawBad)
	}
}

// TestBurstLossIsBurstier matches a Gilbert–Elliott chain against an
// independent-loss profile with the same stationary mean, and checks the
// per-window loss counts have higher variance under the chain: losses
// cluster into the bad state's sojourns instead of arriving uniformly.
func TestBurstLossIsBurstier(t *testing.T) {
	ge := &GEParams{MeanGood: 4, MeanBad: 1, LossGood: 0.0, LossBad: 0.5}
	mean := ge.MeanLoss()
	if math.Abs(mean-0.1) > 1e-12 {
		t.Fatalf("stationary mean = %v, want 0.1", mean)
	}

	variance := func(prof FaultProfile) (meanRate, varRate float64) {
		eng := NewEngine()
		net := NewNetwork(eng)
		l := net.NewLink("wan", 8e6, 0.02, 0)
		f := l.InjectFaults(prof, 0.25, randx.New(11))
		defer f.Stop()

		const windows, perWindow = 200, 50
		rates := make([]float64, 0, windows)
		for w := 0; w < windows; w++ {
			eng.RunUntil(float64(w+1) * 0.5)
			lost := 0
			for i := 0; i < perWindow; i++ {
				if f.SamplePacket() == PacketLost {
					lost++
				}
			}
			rates = append(rates, float64(lost)/perWindow)
		}
		for _, r := range rates {
			meanRate += r
		}
		meanRate /= windows
		for _, r := range rates {
			varRate += (r - meanRate) * (r - meanRate)
		}
		varRate /= windows
		return
	}

	bMean, bVar := variance(FaultProfile{Burst: ge})
	iMean, iVar := variance(FaultProfile{Loss: mean})

	if math.Abs(bMean-iMean) > 0.05 {
		t.Fatalf("mean loss rates not matched: burst %.3f vs independent %.3f", bMean, iMean)
	}
	if bVar < 3*iVar {
		t.Fatalf("burst loss not burstier: var %.5f vs independent %.5f", bVar, iVar)
	}
}

func TestSamplePacketCascade(t *testing.T) {
	eng := NewEngine()
	net := NewNetwork(eng)
	l := net.NewLink("wan", 8e6, 0.02, 0)
	f := l.InjectFaults(FaultProfile{Loss: 0.2, Reorder: 0.1, Dup: 0.1}, 1, randx.New(5))
	defer f.Stop()

	counts := map[PacketFate]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[f.SamplePacket()]++
	}
	within := func(fate PacketFate, want float64) {
		got := float64(counts[fate]) / n
		if math.Abs(got-want) > 0.015 {
			t.Errorf("fate %v: rate %.4f, want ≈ %.4f", fate, got, want)
		}
	}
	within(PacketLost, 0.2)
	within(PacketDuplicated, 0.8*0.1)
	within(PacketReordered, 0.8*0.1)
	within(PacketDelivered, 1-0.2-0.8*0.2)
}
