package simnet

import (
	"math"

	"repro/internal/randx"
)

// Packet-level fault layer: the pathologies the fluid model abstracts
// away. A real overlay path does not just vary in capacity — it drops,
// reorders, and duplicates packets, and losses arrive in bursts, not as
// independent coin flips. This file grafts those effects onto a Link in
// two complementary ways:
//
//   - Link.Loss is driven continuously, so the TCP model's Mathis
//     ceiling (MSS/(RTT·sqrt(2p/3))) prices the loss into every flow
//     that starts while the link is lossy.
//   - The link's goodput efficiency — the fraction of raw capacity that
//     survives as delivered bytes once losses are retransmitted,
//     reorder-triggered spurious retransmits are paid for, and
//     duplicates are discarded — scales its capacity in the max-min
//     allocation, so flows already in progress slow down too.
//
// Burst loss uses the classic Gilbert–Elliott two-state Markov chain:
// the link alternates between a good state (low loss) and a bad state
// (high loss) with exponential sojourn times, which reproduces the
// loss-run clustering measured on real WAN paths. Everything is seeded
// through randx so a chaos scenario replays bit-identically.

// GEParams configures a Gilbert–Elliott two-state burst-loss chain: the
// link is in the good state with loss LossGood or the bad state with
// loss LossBad, and flips between them with exponential sojourn times of
// mean MeanGood / MeanBad seconds.
type GEParams struct {
	MeanGood float64 // mean sojourn in the good state, seconds
	MeanBad  float64 // mean sojourn in the bad state, seconds
	LossGood float64 // loss probability while good
	LossBad  float64 // loss probability while bad
}

// MeanLoss returns the chain's stationary loss probability: the
// time-weighted average of the two states' loss rates. Useful for
// matching an independent-loss baseline to a bursty one.
func (g GEParams) MeanLoss() float64 {
	if g.MeanGood+g.MeanBad <= 0 {
		return 0
	}
	return (g.MeanGood*g.LossGood + g.MeanBad*g.LossBad) / (g.MeanGood + g.MeanBad)
}

// FaultProfile describes a link's packet-level pathology. All
// probabilities are per packet in [0, 1). The zero profile is a clean
// link.
type FaultProfile struct {
	// Loss is the independent per-packet loss probability, composed
	// with the burst chain's state loss when Burst is set:
	// p_eff = 1 − (1−Loss)·(1−stateLoss).
	Loss float64
	// Reorder is the probability a packet is delivered out of order.
	// Reordered packets trigger spurious fast retransmits, so half of
	// them are charged against goodput.
	Reorder float64
	// Dup is the probability a packet is duplicated in flight.
	// Duplicates consume capacity without contributing goodput.
	Dup float64
	// Burst, when non-nil, overlays a Gilbert–Elliott burst-loss chain.
	Burst *GEParams
}

// efficiency maps the profile (at effective loss p) to the fraction of
// raw link capacity that survives as goodput: lost packets are
// retransmitted (factor 1−p), half the reordered packets cost a
// spurious retransmit, and duplicates dilute the link by 1+Dup.
func (fp FaultProfile) efficiency(p float64) float64 {
	eff := (1 - p) * (1 - 0.5*fp.Reorder) / (1 + fp.Dup)
	if eff < minEfficiency {
		eff = minEfficiency
	}
	if eff > 1 {
		eff = 1
	}
	return eff
}

// minEfficiency keeps a faulted link's goodput strictly positive,
// mirroring the capacity floor: real TCP transfers stall but do not
// halt.
const minEfficiency = 1e-3

// PacketFate is the outcome of one sampled packet on a faulted link.
type PacketFate uint8

// Packet fates, in the order SamplePacket's cascade checks them.
const (
	PacketDelivered PacketFate = iota
	PacketLost
	PacketDuplicated
	PacketReordered
)

func (f PacketFate) String() string {
	switch f {
	case PacketLost:
		return "lost"
	case PacketDuplicated:
		return "duplicated"
	case PacketReordered:
		return "reordered"
	}
	return "delivered"
}

// LinkFaults is an active fault process attached to a link by
// InjectFaults. It owns two independent RNG substreams — one for the
// burst chain, one for per-packet sampling — so sampling packets never
// perturbs the chain's trajectory.
type LinkFaults struct {
	link    *Link
	prof    FaultProfile
	chain   *randx.RNG
	pkt     *randx.RNG
	bad     bool
	stopped bool
}

// InjectFaults attaches prof to the link: every interval seconds of
// virtual time the burst chain advances, the link's Loss is set to the
// composed per-packet loss (pricing new flows via the TCP model), and
// the link's goodput efficiency is updated (slowing flows already in
// progress). The returned LinkFaults exposes the current state and a
// per-packet sampler; Stop detaches the driver and restores a clean
// link.
func (l *Link) InjectFaults(prof FaultProfile, interval float64, rng *randx.RNG) *LinkFaults {
	if interval <= 0 {
		panic("simnet: InjectFaults requires interval > 0")
	}
	if rng == nil {
		panic("simnet: InjectFaults requires an RNG")
	}
	checkProb := func(p float64, what string) {
		if p < 0 || p >= 1 || math.IsNaN(p) {
			panic("simnet: fault " + what + " probability must be in [0, 1)")
		}
	}
	checkProb(prof.Loss, "loss")
	checkProb(prof.Reorder, "reorder")
	checkProb(prof.Dup, "dup")
	if g := prof.Burst; g != nil {
		checkProb(g.LossGood, "burst good-state loss")
		checkProb(g.LossBad, "burst bad-state loss")
		if g.MeanGood <= 0 || g.MeanBad <= 0 {
			panic("simnet: burst sojourn means must be > 0")
		}
	}
	f := &LinkFaults{
		link:  l,
		prof:  prof,
		chain: rng.Fork("simnet-fault-chain/" + l.Name),
		pkt:   rng.Fork("simnet-fault-packet/" + l.Name),
	}
	var tick func()
	tick = func() {
		if f.stopped {
			return
		}
		f.stepChain(interval)
		f.apply()
		l.net.eng.After(interval, tick)
	}
	f.apply()
	l.net.eng.After(interval, tick)
	return f
}

// stepChain advances the Gilbert–Elliott state across dt seconds: with
// exponential sojourn times the flip probability over dt is
// 1 − exp(−dt/mean).
func (f *LinkFaults) stepChain(dt float64) {
	g := f.prof.Burst
	if g == nil {
		return
	}
	mean := g.MeanGood
	if f.bad {
		mean = g.MeanBad
	}
	if f.chain.Float64() < 1-math.Exp(-dt/mean) {
		f.bad = !f.bad
	}
}

// apply pushes the current effective loss and goodput efficiency onto
// the link.
func (f *LinkFaults) apply() {
	p := f.EffectiveLoss()
	f.link.Loss = p
	f.link.setEfficiency(f.prof.efficiency(p))
}

// EffectiveLoss returns the composed per-packet loss probability at the
// chain's current state.
func (f *LinkFaults) EffectiveLoss() float64 {
	p := f.prof.Loss
	if g := f.prof.Burst; g != nil {
		state := g.LossGood
		if f.bad {
			state = g.LossBad
		}
		p = 1 - (1-p)*(1-state)
	}
	return p
}

// InBurst reports whether the chain is currently in the bad state.
func (f *LinkFaults) InBurst() bool { return f.bad }

// SamplePacket draws the fate of one packet at the link's current fault
// state: lost with the effective loss probability, else duplicated,
// else reordered, else delivered. The sampler's RNG substream is
// independent of the chain's, so distribution tests do not disturb the
// fluid trajectory.
func (f *LinkFaults) SamplePacket() PacketFate {
	u := f.pkt.Float64()
	p := f.EffectiveLoss()
	switch {
	case u < p:
		return PacketLost
	case u < p+(1-p)*f.prof.Dup:
		return PacketDuplicated
	case u < p+(1-p)*(f.prof.Dup+f.prof.Reorder):
		return PacketReordered
	}
	return PacketDelivered
}

// Stop detaches the fault process and restores a clean link (zero loss,
// full efficiency) at the next reallocation.
func (f *LinkFaults) Stop() {
	if f.stopped {
		return
	}
	f.stopped = true
	f.link.Loss = 0
	f.link.setEfficiency(1)
}
