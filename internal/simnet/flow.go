package simnet

// Flow is a fluid data transfer across an ordered set of links. Its
// instantaneous rate is the max-min fair share on its most constrained
// link, further capped by RateCap (the TCP model's current ceiling).
type Flow struct {
	Label string

	links   []*Link
	rateCap float64
	rate    float64

	totalBits     float64
	remainingBits float64

	started  float64
	finished float64
	lastT    float64
	done     bool

	completion *Timer
	onComplete func(*Flow)
	net        *Network
}

// Rate returns the flow's current allocated rate in bits/sec.
func (f *Flow) Rate() float64 { return f.rate }

// RateCap returns the flow's current TCP ceiling in bits/sec.
func (f *Flow) RateCap() float64 { return f.rateCap }

// Done reports whether the flow has delivered all its bytes.
func (f *Flow) Done() bool { return f.done }

// Start returns the virtual time at which the flow started.
func (f *Flow) Start() float64 { return f.started }

// Finish returns the virtual time at which the flow completed; it is only
// meaningful once Done is true.
func (f *Flow) Finish() float64 { return f.finished }

// Duration returns the transfer duration in seconds (finish − start). For
// an unfinished flow it returns elapsed time so far.
func (f *Flow) Duration() float64 {
	if f.done {
		return f.finished - f.started
	}
	return f.net.eng.Now() - f.started
}

// Bytes returns the flow's total transfer size in bytes.
func (f *Flow) Bytes() int64 { return int64(f.totalBits / 8) }

// BytesMoved returns the bytes delivered so far (all of them once done).
func (f *Flow) BytesMoved() int64 {
	return int64((f.totalBits - f.remainingBits) / 8)
}

// Throughput returns the flow's average throughput in bits/sec over its
// lifetime so far (or its whole life once done). It returns 0 before any
// time has elapsed.
func (f *Flow) Throughput() float64 {
	d := f.Duration()
	if d <= 0 {
		return 0
	}
	return float64(f.BytesMoved()) * 8 / d
}

// Links returns the links the flow traverses.
func (f *Flow) Links() []*Link { return f.links }

// advance charges progress at the current rate from f.lastT to now.
func (f *Flow) advance(now float64) {
	if f.done || now <= f.lastT {
		f.lastT = now
		return
	}
	f.remainingBits -= f.rate * (now - f.lastT)
	if f.remainingBits < 0 {
		f.remainingBits = 0
	}
	f.lastT = now
}
