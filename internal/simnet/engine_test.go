package simnet

import (
	"math"
	"testing"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.After(3, func() { order = append(order, 3) })
	e.After(1, func() { order = append(order, 1) })
	e.After(2, func() { order = append(order, 2) })
	for e.Step() {
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %v, want 3", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	e.After(1, func() { order = append(order, 1) })
	e.After(1, func() { order = append(order, 2) })
	e.After(1, func() { order = append(order, 3) })
	for e.Step() {
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	tm := e.After(1, func() { ran = true })
	tm.Cancel()
	for e.Step() {
	}
	if ran {
		t.Fatal("cancelled event ran")
	}
	tm.Cancel() // double-cancel is a no-op
	var nilTimer *Timer
	nilTimer.Cancel() // nil-safe
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, d := range []float64{1, 2, 5, 9} {
		d := d
		e.After(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(5)
	if len(fired) != 3 {
		t.Fatalf("fired = %v, want 3 events", fired)
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %v, want 5", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired = %v, want all 4", fired)
	}
}

func TestEngineRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(42)
	if e.Now() != 42 {
		t.Fatalf("clock = %v, want 42", e.Now())
	}
	e.RunUntil(10) // never goes backwards
	if e.Now() != 42 {
		t.Fatalf("clock moved backwards: %v", e.Now())
	}
}

func TestEngineEventScheduledDuringEvent(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.After(1, func() {
		e.After(1, func() { times = append(times, e.Now()) })
	})
	e.RunUntil(10)
	if len(times) != 1 || times[0] != 2 {
		t.Fatalf("nested event times = %v, want [2]", times)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.RunUntil(10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.At(5, func() {})
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative delay")
		}
	}()
	e.After(-1, func() {})
}

func TestEngineRunWhile(t *testing.T) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 5 {
			e.After(1, tick)
		}
	}
	e.After(1, tick)
	if !e.RunWhile(func() bool { return n < 3 }) {
		t.Fatal("RunWhile should reach the condition")
	}
	if n != 3 {
		t.Fatalf("n = %d, want 3", n)
	}
	if e.RunWhile(func() bool { return n < 100 }) {
		t.Fatal("RunWhile should report queue drain")
	}
}

func TestEnginePending(t *testing.T) {
	e := NewEngine()
	e.After(1, func() {})
	e.After(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
}

func TestTimerHeapStress(t *testing.T) {
	e := NewEngine()
	// Schedule and cancel a large interleaved set; verify monotone
	// dispatch times.
	last := math.Inf(-1)
	count := 0
	for i := 0; i < 1000; i++ {
		d := float64((i*7919)%100) / 10
		tm := e.After(d, func() {
			if e.Now() < last {
				t.Errorf("time went backwards: %v < %v", e.Now(), last)
			}
			last = e.Now()
			count++
		})
		if i%3 == 0 {
			tm.Cancel()
		}
	}
	for e.Step() {
	}
	if count != 666 {
		t.Fatalf("ran %d events, want 666", count)
	}
}
