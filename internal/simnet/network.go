package simnet

import "math"

// completionSlack is the margin (in bits) below which a flow is considered
// complete, absorbing floating-point drift in progress charging.
const completionSlack = 1e-6

// Network owns links and flows and keeps their rates max-min fair.
// It is bound to one Engine and, like the engine, is single-goroutine.
type Network struct {
	eng   *Engine
	links []*Link
	flows map[*Flow]struct{}

	// reallocating suppresses recursive reallocation when completion
	// handlers start new flows.
	reallocating bool
	dirty        bool

	// Reallocations counts rate recomputations, exposed for benchmarks.
	Reallocations int64
}

// NewNetwork creates an empty network bound to eng.
func NewNetwork(eng *Engine) *Network {
	return &Network{eng: eng, flows: make(map[*Flow]struct{})}
}

// Engine returns the engine the network is bound to.
func (n *Network) Engine() *Engine { return n.eng }

// NewLink adds a link with the given initial available capacity (bits/sec),
// one-way latency (seconds), and loss probability. The capacity floor is
// set to 0.1% of the initial capacity so congested flows always progress,
// mirroring how real TCP transfers stall but do not halt.
func (n *Network) NewLink(name string, capacity, latency, loss float64) *Link {
	if capacity <= 0 {
		panic("simnet: link capacity must be > 0")
	}
	l := &Link{
		Name:       name,
		Latency:    latency,
		Loss:       loss,
		capacity:   capacity,
		floor:      capacity * 0.001,
		efficiency: 1,
		flows:      make(map[*Flow]struct{}),
		net:        n,
	}
	n.links = append(n.links, l)
	return l
}

// FlowSpec describes a transfer to start.
type FlowSpec struct {
	Label      string
	Links      []*Link // links traversed, client side first
	Bytes      int64   // transfer size
	RateCap    float64 // initial TCP ceiling, bits/sec (0 = unlimited)
	OnComplete func(*Flow)
}

// StartFlow begins a fluid transfer. The flow is immediately included in
// the fair-share allocation. Zero-byte flows complete on the next event
// dispatch.
func (n *Network) StartFlow(spec FlowSpec) *Flow {
	if len(spec.Links) == 0 {
		panic("simnet: flow must traverse at least one link")
	}
	if spec.Bytes < 0 {
		panic("simnet: negative flow size")
	}
	rc := spec.RateCap
	if rc <= 0 {
		rc = math.Inf(1)
	}
	f := &Flow{
		Label:         spec.Label,
		links:         spec.Links,
		rateCap:       rc,
		totalBits:     float64(spec.Bytes) * 8,
		remainingBits: float64(spec.Bytes) * 8,
		started:       n.eng.Now(),
		lastT:         n.eng.Now(),
		onComplete:    spec.OnComplete,
		net:           n,
	}
	n.flows[f] = struct{}{}
	for _, l := range f.links {
		l.flows[f] = struct{}{}
	}
	n.reallocate()
	return f
}

// SetRateCap updates a flow's TCP ceiling (bits/sec; <= 0 means unlimited)
// and reallocates.
func (n *Network) SetRateCap(f *Flow, rc float64) {
	if f.done {
		return
	}
	if rc <= 0 {
		rc = math.Inf(1)
	}
	if rc == f.rateCap {
		return
	}
	f.rateCap = rc
	n.reallocate()
}

// Abort removes a flow before completion without invoking its completion
// callback. Progress made so far remains observable on the flow.
func (n *Network) Abort(f *Flow) {
	if f.done {
		return
	}
	f.advance(n.eng.Now())
	n.finish(f, false)
	n.reallocate()
}

// ActiveFlows returns the number of in-progress flows.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// finish marks f done and detaches it; callers reallocate afterwards.
func (n *Network) finish(f *Flow, complete bool) {
	f.done = true
	f.finished = n.eng.Now()
	if complete {
		f.remainingBits = 0
	}
	f.rate = 0
	if f.completion != nil {
		f.completion.Cancel()
		f.completion = nil
	}
	delete(n.flows, f)
	for _, l := range f.links {
		delete(l.flows, f)
	}
	if complete && f.onComplete != nil {
		f.onComplete(f)
	}
}

// reallocate recomputes max-min fair rates for all flows, charges progress
// up to the current instant, completes any flows that just finished, and
// reschedules completion events. It is the single point through which all
// state changes flow.
func (n *Network) reallocate() {
	if n.reallocating {
		// A completion callback mutated the network; redo the allocation
		// once the outer call finishes.
		n.dirty = true
		return
	}
	n.reallocating = true
	for {
		n.dirty = false
		n.reallocateOnce()
		if !n.dirty {
			break
		}
	}
	n.reallocating = false
}

func (n *Network) reallocateOnce() {
	n.Reallocations++
	now := n.eng.Now()

	// Charge progress at the previous rates and complete finished flows.
	var finished []*Flow
	for f := range n.flows {
		f.advance(now)
		if f.remainingBits <= completionSlack {
			finished = append(finished, f)
		}
	}
	for _, f := range finished {
		n.finish(f, true)
	}

	n.computeMaxMin()

	// Reschedule completion timers at the new rates.
	for f := range n.flows {
		if f.completion != nil {
			f.completion.Cancel()
			f.completion = nil
		}
		if f.rate <= 0 {
			continue // a capacity floor should prevent this; be safe
		}
		eta := f.remainingBits / f.rate
		// Clamp to a minimum that always advances the virtual clock: an
		// eta below the float ulp of now would fire at the same instant,
		// charge zero progress, and reschedule forever.
		if eta < 1e-9 {
			eta = 1e-9
		}
		f.completion = n.eng.After(eta, func() { n.reallocate() })
	}
}

// computeMaxMin assigns each active flow its max-min fair rate via
// progressive filling: rates of all unfrozen flows grow together until a
// link saturates or a flow hits its cap; affected flows freeze; repeat.
func (n *Network) computeMaxMin() {
	if len(n.flows) == 0 {
		return
	}

	// Work over the touched links only.
	type linkState struct {
		rem float64
		cap float64
		cnt int
	}
	ls := make(map[*Link]*linkState)
	unfrozen := make(map[*Flow]struct{}, len(n.flows))
	for f := range n.flows {
		f.rate = 0
		unfrozen[f] = struct{}{}
		for _, l := range f.links {
			st := ls[l]
			if st == nil {
				// Divide the goodput-bearing capacity: a faulted link
				// spends part of its raw capacity on retransmissions and
				// duplicates, which no flow gets credit for.
				ec := l.EffectiveCapacity()
				st = &linkState{rem: ec, cap: ec}
				ls[l] = st
			}
			st.cnt++
		}
	}

	// Saturation must be judged RELATIVE to magnitudes: the residue of
	// rem -= inc*cnt is on the order of ulps of the capacity, which at
	// Mb/s scales dwarfs any absolute epsilon. An absolute test here once
	// left flows frozen below their fair share (caught by the max-min
	// bottleneck-condition property test).
	const relEps = 1e-9
	for len(unfrozen) > 0 {
		// Smallest permissible uniform rate increment.
		inc := math.Inf(1)
		for _, st := range ls {
			if st.cnt > 0 {
				if share := st.rem / float64(st.cnt); share < inc {
					inc = share
				}
			}
		}
		for f := range unfrozen {
			if head := f.rateCap - f.rate; head < inc {
				inc = head
			}
		}
		if inc < 0 {
			inc = 0
		}

		// Apply the increment.
		for f := range unfrozen {
			f.rate += inc
		}
		for _, st := range ls {
			st.rem -= inc * float64(st.cnt)
			if st.rem < 0 {
				st.rem = 0
			}
		}

		// Freeze flows that hit their cap or cross a saturated link.
		progressed := false
		for f := range unfrozen {
			saturated := !math.IsInf(f.rateCap, 1) && f.rate >= f.rateCap*(1-relEps)
			if !saturated {
				for _, l := range f.links {
					if st := ls[l]; st.rem <= st.cap*relEps {
						saturated = true
						break
					}
				}
			}
			if saturated {
				delete(unfrozen, f)
				for _, l := range f.links {
					ls[l].cnt--
				}
				progressed = true
			}
		}
		if !progressed {
			// Defensive: the relative thresholds should always freeze the
			// binding constraint; bail out rather than loop forever.
			break
		}
	}
}
