package stats_test

import (
	"fmt"

	"repro/internal/randx"
	"repro/internal/stats"
)

// ExampleSummarize computes the descriptive statistics the evaluation
// reports for improvement samples.
func ExampleSummarize() {
	imps := []float64{-12, 5, 22, 37, 41, 58, 76, 103}
	s := stats.Summarize(imps)
	fmt.Printf("n=%d mean=%.1f median=%.1f\n", s.N, s.Mean, s.Median)
	fmt.Printf("negative=%.2f in[0,100]=%.2f\n", s.FracNegative, s.FracInUnit)
	// Output:
	// n=8 mean=41.2 median=39.0
	// negative=0.12 in[0,100]=0.75
}

// ExampleNewHistogram bins improvement samples like Figure 1.
func ExampleNewHistogram() {
	h := stats.NewHistogram(-100, 300, 8) // 50%-wide bins
	h.AddAll([]float64{-20, 10, 30, 45, 60, 80, 120, 350})
	fmt.Println("total:", h.Total())
	fmt.Println("overflow:", h.Overflow)
	fmt.Printf("in [0,100): %.2f\n", h.FractionBetween(0, 100))
	// Output:
	// total: 8
	// overflow: 1
	// in [0,100): 0.62
}

// ExampleOLS fits the Figure 3 trend line.
func ExampleOLS() {
	direct := []float64{0.5, 1.0, 2.0, 4.0}   // Mb/s
	improvement := []float64{90, 55, 20, -10} // percent
	fit := stats.OLS(direct, improvement)
	fmt.Printf("slope %.1f %%/Mbps (downward: %v)\n", fit.Slope, fit.Slope < 0)
	// Output:
	// slope -26.5 %/Mbps (downward: true)
}

// ExampleBootstrapMeanCI puts an error margin on a mean improvement.
func ExampleBootstrapMeanCI() {
	rng := randx.New(7)
	sample := []float64{31, 44, 29, 51, 38, 47, 35, 42, 39, 45}
	ci := stats.BootstrapMeanCI(sample, 0.95, 500, rng)
	fmt.Printf("mean %.1f, CI ordered: %v, contains mean: %v\n",
		ci.Point, ci.Lo <= ci.Hi, ci.Contains(ci.Point))
	// Output:
	// mean 40.1, CI ordered: true, contains mean: true
}
