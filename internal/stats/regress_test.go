package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOLSExactLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 + 2*x
	}
	fit := OLS(xs, ys)
	if !almost(fit.Slope, 2, 1e-12) || !almost(fit.Intercept, 3, 1e-12) {
		t.Fatalf("fit=%+v, want slope 2 intercept 3", fit)
	}
	if !almost(fit.R2, 1, 1e-12) {
		t.Fatalf("R2=%v, want 1", fit.R2)
	}
}

func TestOLSNoise(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{2.1, 3.9, 6.2, 7.8, 10.1, 11.9}
	fit := OLS(xs, ys)
	if math.Abs(fit.Slope-2) > 0.1 {
		t.Fatalf("slope=%v, want ~2", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("R2=%v, want > 0.99", fit.R2)
	}
}

func TestOLSDegenerate(t *testing.T) {
	if fit := OLS([]float64{5, 5, 5}, []float64{1, 2, 3}); fit.Slope != 0 {
		t.Fatal("constant x should give zero slope")
	}
	if fit := OLS([]float64{1}, []float64{2}); fit.Slope != 0 {
		t.Fatal("n=1 should give zero fit")
	}
	if fit := OLS(nil, nil); fit.N != 0 {
		t.Fatal("empty fit should have N=0")
	}
}

func TestOLSPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OLS([]float64{1, 2}, []float64{1})
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{10, 20, 30, 40}
	if r := Pearson(xs, ys); !almost(r, 1, 1e-12) {
		t.Fatalf("r=%v, want 1", r)
	}
	neg := []float64{40, 30, 20, 10}
	if r := Pearson(xs, neg); !almost(r, -1, 1e-12) {
		t.Fatalf("r=%v, want -1", r)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if r := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); r != 0 {
		t.Fatalf("degenerate r=%v, want 0", r)
	}
	if r := Pearson([]float64{1}, []float64{2}); r != 0 {
		t.Fatalf("n=1 r=%v, want 0", r)
	}
}

func TestPearsonBoundsProperty(t *testing.T) {
	f := func(pairs [][2]float64) bool {
		xs := make([]float64, 0, len(pairs))
		ys := make([]float64, 0, len(pairs))
		for _, p := range pairs {
			if math.IsNaN(p[0]) || math.IsNaN(p[1]) ||
				math.IsInf(p[0], 0) || math.IsInf(p[1], 0) ||
				math.Abs(p[0]) > 1e8 || math.Abs(p[1]) > 1e8 {
				continue
			}
			xs = append(xs, p[0])
			ys = append(ys, p[1])
		}
		r := Pearson(xs, ys)
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly increasing relation has Spearman rho = 1, even when
	// Pearson < 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	if rho := Spearman(xs, ys); !almost(rho, 1, 1e-12) {
		t.Fatalf("rho=%v, want 1", rho)
	}
}

func TestSpearmanTies(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	ys := []float64{10, 20, 20, 30}
	if rho := Spearman(xs, ys); !almost(rho, 1, 1e-12) {
		t.Fatalf("rho with ties=%v, want 1", rho)
	}
}

func TestRanksAveragesTies(t *testing.T) {
	r := ranks([]float64{10, 20, 20, 5})
	want := []float64{1, 2.5, 2.5, 0}
	for i := range want {
		if !almost(r[i], want[i], 1e-12) {
			t.Fatalf("ranks=%v, want %v", r, want)
		}
	}
}

func TestTrendSlopePerHour(t *testing.T) {
	// Throughput rising 1 unit per second = 3600 per hour.
	ts := []float64{0, 1, 2, 3}
	ys := []float64{0, 1, 2, 3}
	if s := TrendSlopePerHour(ts, ys); !almost(s, 3600, 1e-9) {
		t.Fatalf("slope/hr=%v, want 3600", s)
	}
}
