package stats

import (
	"sort"

	"repro/internal/randx"
)

// CI is a two-sided confidence interval for a statistic.
type CI struct {
	Point    float64 // the statistic on the original sample
	Lo, Hi   float64 // interval bounds
	Level    float64 // confidence level, e.g. 0.95
	Resample int     // number of bootstrap resamples used
}

// Width returns Hi − Lo.
func (c CI) Width() float64 { return c.Hi - c.Lo }

// Contains reports whether v lies in [Lo, Hi].
func (c CI) Contains(v float64) bool { return v >= c.Lo && v <= c.Hi }

// BootstrapMeanCI estimates a percentile-bootstrap confidence interval
// for the mean of xs at the given level (e.g. 0.95), using resamples
// bootstrap draws (default 1000 when <= 0) from the provided RNG. The
// experiment drivers use it to put error margins on the headline
// improvement numbers, which the paper reports as bare means.
func BootstrapMeanCI(xs []float64, level float64, resamples int, r *randx.RNG) CI {
	return BootstrapCI(xs, Mean, level, resamples, r)
}

// BootstrapCI is the general percentile bootstrap for any statistic.
// An empty sample yields a zero CI.
func BootstrapCI(xs []float64, stat func([]float64) float64, level float64, resamples int, r *randx.RNG) CI {
	if resamples <= 0 {
		resamples = 1000
	}
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	ci := CI{Level: level, Resample: resamples}
	if len(xs) == 0 {
		return ci
	}
	ci.Point = stat(xs)
	if len(xs) == 1 {
		ci.Lo, ci.Hi = ci.Point, ci.Point
		return ci
	}
	buf := make([]float64, len(xs))
	points := make([]float64, resamples)
	for i := 0; i < resamples; i++ {
		for j := range buf {
			buf[j] = xs[r.Intn(len(xs))]
		}
		points[i] = stat(buf)
	}
	sort.Float64s(points)
	alpha := (1 - level) / 2
	ci.Lo = Quantile(points, alpha)
	ci.Hi = Quantile(points, 1-alpha)
	return ci
}
