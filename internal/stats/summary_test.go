package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAccBasics(t *testing.T) {
	var a Acc
	for _, x := range []float64{1, 2, 3, 4, 5} {
		a.Add(x)
	}
	if a.N() != 5 {
		t.Fatalf("N=%d, want 5", a.N())
	}
	if !almost(a.Mean(), 3, 1e-12) {
		t.Errorf("mean=%v, want 3", a.Mean())
	}
	if !almost(a.Var(), 2.5, 1e-12) {
		t.Errorf("var=%v, want 2.5", a.Var())
	}
	if !almost(a.RMS(), math.Sqrt(11), 1e-12) {
		t.Errorf("rms=%v, want sqrt(11)", a.RMS())
	}
	if a.Min() != 1 || a.Max() != 5 {
		t.Errorf("min/max = %v/%v, want 1/5", a.Min(), a.Max())
	}
}

func TestAccEmpty(t *testing.T) {
	var a Acc
	if a.Mean() != 0 || a.Var() != 0 || a.RMS() != 0 || a.N() != 0 {
		t.Fatal("empty accumulator should be all zeros")
	}
}

func TestAccMergeEqualsSequential(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		var whole, left, right Acc
		for i, x := range xs {
			whole.Add(x)
			if i < len(xs)/2 {
				left.Add(x)
			} else {
				right.Add(x)
			}
		}
		left.Merge(&right)
		return left.N() == whole.N() &&
			almost(left.Mean(), whole.Mean(), 1e-6+1e-9*math.Abs(whole.Mean())) &&
			almost(left.Var(), whole.Var(), 1e-4+1e-7*whole.Var())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAccMergeIntoEmpty(t *testing.T) {
	var a, b Acc
	b.Add(4)
	b.Add(6)
	a.Merge(&b)
	if a.N() != 2 || !almost(a.Mean(), 5, 1e-12) {
		t.Fatalf("merge into empty: n=%d mean=%v", a.N(), a.Mean())
	}
	var c Acc
	b.Merge(&c) // merging empty is a no-op
	if b.N() != 2 {
		t.Fatal("merging empty changed accumulator")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{-10, 0, 10, 20, 30, 40, 50, 60, 70, 150}
	s := Summarize(xs)
	if s.N != 10 {
		t.Fatalf("N=%d", s.N)
	}
	if !almost(s.Mean, 42, 1e-12) {
		t.Errorf("mean=%v, want 42", s.Mean)
	}
	if !almost(s.Median, 35, 1e-12) {
		t.Errorf("median=%v, want 35", s.Median)
	}
	if s.Min != -10 || s.Max != 150 {
		t.Errorf("min/max=%v/%v", s.Min, s.Max)
	}
	if !almost(s.FracNegative, 0.1, 1e-12) {
		t.Errorf("fracNeg=%v, want 0.1", s.FracNegative)
	}
	if !almost(s.FracInUnit, 0.8, 1e-12) {
		t.Errorf("fracInUnit=%v, want 0.8", s.FracInUnit)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatal("empty summary should be zero")
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Summarize mutated its input")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{0, 10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 0}, {1, 40}, {0.5, 20}, {0.25, 10}, {0.125, 5}, {-1, 0}, {2, 40},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); !almost(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v)=%v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile(empty) != 0")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	sorted := []float64{1, 2, 2, 3, 8, 13, 21}
	f := func(a, b float64) bool {
		qa := math.Mod(math.Abs(a), 1)
		qb := math.Mod(math.Abs(b), 1)
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(sorted, qa) <= Quantile(sorted, qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanMedian(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty mean/median should be 0")
	}
	if !almost(Mean([]float64{1, 2, 6}), 3, 1e-12) {
		t.Fatal("mean wrong")
	}
	if !almost(Median([]float64{5, 1, 3}), 3, 1e-12) {
		t.Fatal("median wrong")
	}
	if !almost(Median([]float64{4, 1, 3, 2}), 2.5, 1e-12) {
		t.Fatal("even median wrong")
	}
}

func TestJainFairness(t *testing.T) {
	if f := JainFairness([]float64{2, 2, 2, 2}); !almost(f, 1, 1e-12) {
		t.Errorf("equal shares index = %v, want 1", f)
	}
	if f := JainFairness([]float64{4, 0, 0, 0}); !almost(f, 0.25, 1e-12) {
		t.Errorf("monopoly index = %v, want 0.25", f)
	}
	if f := JainFairness([]float64{3, 1}); !almost(f, 16.0/20, 1e-12) {
		t.Errorf("3:1 index = %v, want 0.8", f)
	}
	if JainFairness(nil) != 0 || JainFairness([]float64{0, 0}) != 0 {
		t.Error("degenerate cases should be 0")
	}
}
