package stats

import "testing"

func benchSample(n int) []float64 {
	xs := make([]float64, n)
	v := 12345.0
	for i := range xs {
		v = (v*69069 + 1) - float64(int64(v*69069+1)/1e6)*1e6
		xs[i] = v / 1e4
	}
	return xs
}

func BenchmarkAccAdd(b *testing.B) {
	var a Acc
	for i := 0; i < b.N; i++ {
		a.Add(float64(i))
	}
}

func BenchmarkSummarize1k(b *testing.B) {
	xs := benchSample(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Summarize(xs)
	}
}

func BenchmarkHistogramAdd(b *testing.B) {
	h := NewHistogram(-100, 300, 80)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(float64(i % 400))
	}
}

func BenchmarkOLS1k(b *testing.B) {
	xs := benchSample(1000)
	ys := benchSample(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OLS(xs, ys)
	}
}

func BenchmarkPearson1k(b *testing.B) {
	xs := benchSample(1000)
	ys := benchSample(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Pearson(xs, ys)
	}
}

func BenchmarkEmpiricalCDF1k(b *testing.B) {
	xs := benchSample(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EmpiricalCDF(xs)
	}
}
