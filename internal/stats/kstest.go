package stats

import (
	"math"
	"sort"
)

// KSResult is the outcome of a two-sample Kolmogorov–Smirnov comparison.
type KSResult struct {
	// D is the KS statistic: the supremum distance between the two
	// empirical CDFs.
	D float64
	// PValue approximates the probability of observing a distance at
	// least this large under the null hypothesis that both samples come
	// from the same distribution (asymptotic Kolmogorov distribution).
	PValue float64
	N1, N2 int
}

// SameDistribution reports whether the null hypothesis survives at the
// given significance level (e.g. 0.05).
func (r KSResult) SameDistribution(alpha float64) bool { return r.PValue > alpha }

// KolmogorovSmirnov runs the two-sample KS test. The experiment suite uses
// it to check that headline improvement distributions are stable across
// seeds (a reproduction that only works for one seed would be a bug, not a
// result). Empty samples yield D=0, PValue=1.
func KolmogorovSmirnov(xs, ys []float64) KSResult {
	res := KSResult{N1: len(xs), N2: len(ys), PValue: 1}
	if len(xs) == 0 || len(ys) == 0 {
		return res
	}
	a := make([]float64, len(xs))
	b := make([]float64, len(ys))
	copy(a, xs)
	copy(b, ys)
	sort.Float64s(a)
	sort.Float64s(b)

	var i, j int
	var d float64
	for i < len(a) && j < len(b) {
		// Advance past the whole tie group on whichever side(s) hold the
		// smallest remaining value, then compare the CDFs at that point.
		switch {
		case a[i] < b[j]:
			v := a[i]
			for i < len(a) && a[i] == v {
				i++
			}
		case b[j] < a[i]:
			v := b[j]
			for j < len(b) && b[j] == v {
				j++
			}
		default:
			v := a[i]
			for i < len(a) && a[i] == v {
				i++
			}
			for j < len(b) && b[j] == v {
				j++
			}
		}
		diff := math.Abs(float64(i)/float64(len(a)) - float64(j)/float64(len(b)))
		if diff > d {
			d = diff
		}
	}
	res.D = d

	// Asymptotic p-value: Q_KS(sqrt(n_e)·D) with the effective size.
	ne := float64(len(a)) * float64(len(b)) / float64(len(a)+len(b))
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	res.PValue = ksQ(lambda)
	return res
}

// ksQ is the Kolmogorov distribution tail Q(λ) = 2 Σ (−1)^{k−1} e^{−2k²λ²}.
func ksQ(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
